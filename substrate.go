package saql

import (
	"saql/internal/attack"
	"saql/internal/baseline"
	"saql/internal/collector"
	"saql/internal/replayer"
	"saql/internal/storage"
	"saql/internal/stream"
)

// This file re-exports the demonstration substrates so downstream users can
// drive the full paper scenario through the public API: the simulated data
// collection agents, the APT kill chain, the event store, the stream
// replayer, the broker, and the per-query-copy CEP baseline.

// ---------------------------------------------------------------------------
// Data collection (simulated agents)
// ---------------------------------------------------------------------------

// Host describes one simulated enterprise host.
type Host = collector.Host

// HostKind selects a host behaviour profile.
type HostKind = collector.HostKind

// Host profiles.
const (
	Workstation      = collector.Workstation
	DBServer         = collector.DBServer
	WebServer        = collector.WebServer
	MailServer       = collector.MailServer
	DomainController = collector.DomainController
)

// WorkloadConfig configures the background workload generator.
type WorkloadConfig = collector.Config

// Workload generates deterministic background system activity for a set of
// hosts, in global event-time order.
type Workload = collector.Generator

// NewWorkload creates a background workload generator.
func NewWorkload(cfg WorkloadConfig) (*Workload, error) { return collector.New(cfg) }

// ---------------------------------------------------------------------------
// APT attack scenario
// ---------------------------------------------------------------------------

// AttackScenario generates the paper's five-step APT kill chain.
type AttackScenario = attack.Scenario

// AttackStep identifies one kill-chain stage (c1..c5).
type AttackStep = attack.Step

// Kill-chain steps.
const (
	StepInitialCompromise   = attack.StepInitialCompromise
	StepMalwareInfection    = attack.StepMalwareInfection
	StepPrivilegeEscalation = attack.StepPrivilegeEscalation
	StepPenetration         = attack.StepPenetration
	StepDataExfiltration    = attack.StepDataExfiltration
)

// AttackSteps lists all steps in order.
var AttackSteps = attack.Steps

// LabeledEvent is an attack event with its ground-truth step.
type LabeledEvent = attack.Labeled

// NamedQuery pairs a SAQL query with its name, target step, and model family.
type NamedQuery = attack.NamedQuery

// AttackEventsOnly strips ground-truth labels from attack events.
func AttackEventsOnly(labeled []LabeledEvent) []*Event { return attack.EventsOnly(labeled) }

// RansomwareScenario is a second built-in attack: a payload mass-encrypting
// user documents, exercising the execute/delete operations and count-based
// behavioural queries (see its DetectionQueries method).
type RansomwareScenario = attack.RansomwareScenario

// ---------------------------------------------------------------------------
// Event store and stream replayer
// ---------------------------------------------------------------------------

// Store is the embedded append-only event store.
type Store = storage.Store

// StoreOptions configure a store.
type StoreOptions = storage.Options

// Selection filters a store scan or replay.
type Selection = storage.Selection

// OpenStore opens (creating if needed) an event store in dir.
func OpenStore(dir string, opts StoreOptions) (*Store, error) { return storage.Open(dir, opts) }

// Replayer replays stored monitoring data as a live stream.
type Replayer = replayer.Replayer

// ReplayOptions select hosts, time range, and speed for a replay.
type ReplayOptions = replayer.Options

// ReplayStats summarise one replay run.
type ReplayStats = replayer.Stats

// NewReplayer creates a replayer over store.
func NewReplayer(store *Store) *Replayer { return replayer.New(store) }

// ---------------------------------------------------------------------------
// Stream infrastructure
// ---------------------------------------------------------------------------

// Broker fans the aggregated event feed out to consumers.
type Broker = stream.Broker

// Subscription is one consumer's view of the stream.
type Subscription = stream.Subscription

// OverflowPolicy selects backpressure behaviour on full bounded buffers:
// the event broker's subscriber buffers, the engine's ingest queue
// (WithBackpressure), and alert subscriptions (Engine.Subscribe).
type OverflowPolicy = stream.OverflowPolicy

// Overflow policies.
const (
	// Block applies backpressure: the producer waits for capacity.
	Block = stream.Block
	// DropNewest discards the incoming item when the buffer is full.
	DropNewest = stream.DropNewest
)

// NewBroker creates an event broker.
func NewBroker() *Broker { return stream.NewBroker() }

// MergeStreams merges per-host time-ordered event channels into one totally
// ordered stream.
func MergeStreams(inputs ...<-chan *Event) <-chan *Event { return stream.Merge(inputs...) }

// ---------------------------------------------------------------------------
// Generic-CEP baseline (comparison experiments)
// ---------------------------------------------------------------------------

// BaselineEngine executes queries the generic-CEP way: one data copy per
// query per event, no sharing. It exists for the paper's efficiency
// comparisons; production deployments should use Engine.
type BaselineEngine = baseline.Engine

// NewBaselineEngine creates a baseline engine without error reporting.
func NewBaselineEngine() *BaselineEngine { return baseline.New(nil) }
