package saql

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Tenancy groups queries into named namespaces with per-tenant quotas — the
// production shape of the paper's multi-analyst setting, where many teams'
// rules run concurrently over one stream. A query named "acme/exfil" belongs
// to tenant "acme"; unqualified names fall into DefaultTenant. Tenants are
// implicit (registering a query creates its tenant) and carry quotas that
// degrade or reject in typed, observable ways rather than affecting other
// tenants: the alert budget suppresses (and counts) excess alerts, the
// ingest rate drops (and counts) excess source events, and the query/state
// ceilings reject Register/Apply with *QuotaError. All windowed accounting
// runs on stream (event) time, never the wall clock, so replays and live
// runs behave identically.

// DefaultTenant is the namespace of queries whose name has no "tenant/"
// prefix.
const DefaultTenant = "default"

// TenantOf reports the tenant a query name belongs to: the segment before
// the first '/', or DefaultTenant for unqualified names.
func TenantOf(queryName string) string {
	if i := strings.IndexByte(queryName, '/'); i > 0 {
		return queryName[:i]
	}
	return DefaultTenant
}

// TenantQuotas bound one tenant's resource use. Zero values mean unlimited.
type TenantQuotas struct {
	// MaxQueries caps how many queries the tenant may have registered;
	// Register and Apply fail with *QuotaError beyond it.
	MaxQueries int64
	// MaxStateBytes caps the tenant's live state footprint (the serialized
	// size of its queries' window/match state); Apply fails with
	// *QuotaError when the tenant is already over it.
	MaxStateBytes int64
	// AlertBudget caps alerts delivered per AlertWindow of stream time.
	// Over-budget alerts are suppressed and counted
	// (TenantStats.Suppressed); evaluation continues untouched.
	AlertBudget int64
	// AlertWindow is the alert-budget accounting window (default one hour).
	AlertWindow time.Duration
	// IngestRate caps events per second of stream time accepted from the
	// tenant's sources; excess events are dropped and counted
	// (TenantStats.EventsThrottled).
	IngestRate int64
}

// TenantStats is one tenant's control-plane snapshot.
type TenantStats struct {
	Name    string
	Queries int // registered queries
	Paused  int // of which paused
	// Alerts counts alerts delivered within budget; Suppressed counts
	// alerts dropped by an exhausted alert budget.
	Alerts     int64
	Suppressed int64
	// SourceEvents counts events accepted from the tenant's sources;
	// EventsThrottled counts events dropped by the ingest-rate quota.
	SourceEvents    int64
	EventsThrottled int64
	// StateBytes is the serialized live-state footprint of the tenant's
	// queries.
	StateBytes int64
	// SharingRatio is naive-per-tenant over actual evaluation work: how many
	// evaluation streams this tenant's active queries would need standalone,
	// per stream they actually consume in their (possibly cross-tenant)
	// sharing groups. 1.0 means no sharing benefit.
	SharingRatio float64
	// Degraded lists the quotas currently degrading this tenant's service
	// ("alert_budget", "ingest_rate"); empty when none.
	Degraded []string
	Quotas   TenantQuotas
}

// QuotaError reports a control-plane operation rejected by a tenant quota.
type QuotaError struct {
	Tenant string
	Quota  string // "max_queries" or "max_state_bytes"
	Limit  int64
	Need   int64
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("saql: tenant %q over %s quota (limit %d, need %d)", e.Tenant, e.Quota, e.Limit, e.Need)
}

// ringMinutes sizes the per-query alert ring: one bucket per minute of
// stream time, enough to answer "alerts in the last hour" exactly.
const ringMinutes = 61

// alertRing counts alerts per stream-time minute. Buckets are stamped with
// their unix minute and lazily reset on reuse, so the ring needs no ticker.
type alertRing struct {
	mins  [ringMinutes]int64
	count [ringMinutes]int64
}

func (r *alertRing) add(t time.Time) {
	m := t.Unix() / 60
	i := m % ringMinutes
	if i < 0 {
		i += ringMinutes
	}
	if r.mins[i] != m {
		r.mins[i] = m
		r.count[i] = 0
	}
	r.count[i]++
}

// sum counts alerts stamped within (now-window, now].
func (r *alertRing) sum(now time.Time, window time.Duration) int64 {
	if window <= 0 {
		window = time.Hour
	}
	lo := now.Add(-window).Unix() / 60
	hi := now.Unix() / 60
	var total int64
	for i := range r.mins {
		if r.count[i] > 0 && r.mins[i] > lo && r.mins[i] <= hi {
			total += r.count[i]
		}
	}
	return total
}

// tenantState is the engine-side record behind one tenant. All fields are
// guarded by Engine.tenMu.
type tenantState struct {
	quotas TenantQuotas

	// Alert budget, on stream time: winStart opens the current accounting
	// window, winCount counts alerts delivered in it.
	winStart time.Time
	winCount int64

	delivered  int64 // alerts delivered (all windows)
	suppressed int64 // alerts dropped over budget

	// Ingest rate, on stream time: rlSec is the current one-second bucket,
	// rlUsed its consumed allowance.
	rlSec     time.Time
	rlUsed    int64
	srcEvents int64 // events accepted from this tenant's sources
	throttled int64 // events dropped by the rate quota

	perQ map[string]*alertRing // per-query recent-alert rings
}

// tenantLocked returns (creating on first touch) the named tenant's state.
// Caller holds e.tenMu.
func (e *Engine) tenantLocked(name string) *tenantState {
	ts := e.tenants[name]
	if ts == nil {
		ts = &tenantState{perQ: map[string]*alertRing{}}
		e.tenants[name] = ts
	}
	return ts
}

// touchTenant ensures the named tenant exists, so registering a query makes
// its tenant visible to Tenants() even before any quota or alert activity.
func (e *Engine) touchTenant(name string) {
	e.tenMu.Lock()
	e.tenantLocked(name)
	e.tenMu.Unlock()
}

// queryStateBytesLocked reports one query's live serialized-state size.
// Caller holds e.mu (the runtime round-trip does not re-enter it).
func (e *Engine) queryStateBytesLocked(name string) int64 {
	if rt := e.rt.Load(); rt != nil {
		if qs, ok := rt.QueryStats(name); ok {
			return qs.StateBytes
		}
		return 0
	}
	if rec := e.reg[name]; rec != nil {
		return rec.q.StateBytes()
	}
	return 0
}

// SetTenantQuotas installs (or hot-updates) a tenant's quotas. Raising a
// quota takes effect immediately — an alert budget raised mid-window admits
// further alerts in the same window.
func (e *Engine) SetTenantQuotas(tenant string, q TenantQuotas) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	e.tenMu.Lock()
	e.tenantLocked(tenant).quotas = q
	e.tenMu.Unlock()
}

// TenantQuotas reports a tenant's current quotas (zero value for an unknown
// tenant).
func (e *Engine) TenantQuotas(tenant string) TenantQuotas {
	e.tenMu.Lock()
	defer e.tenMu.Unlock()
	if ts := e.tenants[tenant]; ts != nil {
		return ts.quotas
	}
	return TenantQuotas{}
}

// admitAlert is the fan-out gate (runtime.AlertFanout.SetGate): it charges
// the alert to its query's tenant and decides delivery against the alert
// budget. Over-budget alerts are suppressed and counted; the queries keep
// evaluating, so one tenant's noise never perturbs another's results. Runs
// under the fan-out's publish lock; window accounting uses the alert's
// event time (stream clock).
func (e *Engine) admitAlert(a *Alert) bool {
	e.tenMu.Lock()
	defer e.tenMu.Unlock()
	ts := e.tenantLocked(TenantOf(a.Query))
	if a.EventTime.After(e.alertMax) {
		e.alertMax = a.EventTime
	}
	if budget := ts.quotas.AlertBudget; budget > 0 {
		w := ts.quotas.AlertWindow
		if w <= 0 {
			w = time.Hour
		}
		if ts.winStart.IsZero() || !a.EventTime.Before(ts.winStart.Add(w)) {
			ts.winStart = a.EventTime.Truncate(w)
			ts.winCount = 0
		}
		if ts.winCount >= budget {
			ts.suppressed++
			return false
		}
		ts.winCount++
	}
	ts.delivered++
	ring := ts.perQ[a.Query]
	if ring == nil {
		ring = &alertRing{}
		ts.perQ[a.Query] = ring
	}
	ring.add(a.EventTime)
	return true
}

// admitEvents applies a tenant's ingest-rate quota to one batch, on stream
// time: each event charges the one-second bucket of its own timestamp.
// Excess events are dropped in place and counted. The returned slice aliases
// evs.
func (e *Engine) admitEvents(tenant string, evs []*Event) []*Event {
	if tenant == "" {
		tenant = DefaultTenant
	}
	e.tenMu.Lock()
	defer e.tenMu.Unlock()
	ts := e.tenantLocked(tenant)
	rate := ts.quotas.IngestRate
	if rate <= 0 {
		ts.srcEvents += int64(len(evs))
		return evs
	}
	kept := evs[:0]
	for _, ev := range evs {
		sec := ev.Time.Truncate(time.Second)
		if sec.After(ts.rlSec) {
			ts.rlSec = sec
			ts.rlUsed = 0
		}
		if ts.rlUsed >= rate {
			ts.throttled++
			continue
		}
		ts.rlUsed++
		kept = append(kept, ev)
	}
	ts.srcEvents += int64(len(kept))
	return kept
}

// RecentAlerts reports how many alerts the named query delivered within the
// trailing window of stream time (relative to the newest alert the engine
// has seen). Resolution is one minute; history beyond ringMinutes is gone,
// so windows longer than an hour underreport.
func (e *Engine) RecentAlerts(query string, window time.Duration) int64 {
	e.tenMu.Lock()
	defer e.tenMu.Unlock()
	ts := e.tenants[TenantOf(query)]
	if ts == nil {
		return 0
	}
	ring := ts.perQ[query]
	if ring == nil {
		return 0
	}
	return ring.sum(e.alertMax, window)
}

// TenantStats reports one tenant's control-plane snapshot.
func (e *Engine) TenantStats(tenant string) (TenantStats, bool) {
	for _, ts := range e.Tenants() {
		if ts.Name == tenant {
			return ts, true
		}
	}
	return TenantStats{}, false
}

// Tenants reports every tenant's control-plane snapshot, sorted by name. A
// tenant exists once it has a query, a source, or quotas.
func (e *Engine) Tenants() []TenantStats {
	// Registry snapshot first (own lock), then evaluation-group structure
	// and per-query state sizes (runtime control round-trips), then the
	// tenant counters — never more than one lock at a time.
	type qinfo struct {
		tenant string
		paused bool
	}
	e.mu.Lock()
	queries := make(map[string]qinfo, len(e.reg))
	for name, rec := range e.reg {
		queries[name] = qinfo{tenant: TenantOf(name), paused: rec.paused}
	}
	e.mu.Unlock()

	naive := map[string]float64{}
	stream := map[string]float64{}
	grouped := map[string]bool{}
	countGroup := func(members []string) {
		active := 0
		perTenant := map[string]int{}
		for _, m := range members {
			qi, ok := queries[m]
			if !ok || qi.paused {
				continue
			}
			active++
			perTenant[qi.tenant]++
		}
		if active == 0 {
			return
		}
		for ten, n := range perTenant {
			naive[ten] += float64(n)
			stream[ten] += float64(n) / float64(active)
		}
	}
	for master, deps := range e.Groups() {
		members := append([]string{master}, deps...)
		for _, m := range members {
			grouped[m] = true
		}
		countGroup(members)
	}
	for name := range queries {
		if !grouped[name] {
			countGroup([]string{name})
		}
	}

	stateBytes := map[string]int64{}
	for name, qi := range queries {
		if qs, ok := e.QueryStats(name); ok {
			stateBytes[qi.tenant] += qs.StateBytes
		}
	}

	e.tenMu.Lock()
	for _, qi := range queries {
		e.tenantLocked(qi.tenant)
	}
	out := make([]TenantStats, 0, len(e.tenants))
	for name, ts := range e.tenants {
		st := TenantStats{
			Name:            name,
			Alerts:          ts.delivered,
			Suppressed:      ts.suppressed,
			SourceEvents:    ts.srcEvents,
			EventsThrottled: ts.throttled,
			StateBytes:      stateBytes[name],
			Quotas:          ts.quotas,
		}
		if stream[name] > 0 {
			st.SharingRatio = naive[name] / stream[name]
		}
		if b := ts.quotas.AlertBudget; b > 0 && ts.winCount >= b {
			st.Degraded = append(st.Degraded, "alert_budget")
		}
		if r := ts.quotas.IngestRate; r > 0 && ts.rlUsed >= r {
			st.Degraded = append(st.Degraded, "ingest_rate")
		}
		out = append(out, st)
	}
	e.tenMu.Unlock()

	for i := range out {
		for _, qi := range queries {
			if qi.tenant == out[i].Name {
				out[i].Queries++
				if qi.paused {
					out[i].Paused++
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// checkQueryQuota enforces MaxQueries for adding n queries to a tenant that
// currently has have registered. Caller holds e.tenMu or accepts benign
// raciness; Register/Apply call it under e.mu with a consistent have.
func (e *Engine) checkQueryQuota(tenant string, have, adding int64) error {
	e.tenMu.Lock()
	defer e.tenMu.Unlock()
	ts := e.tenants[tenant]
	if ts == nil || ts.quotas.MaxQueries <= 0 {
		return nil
	}
	if have+adding > ts.quotas.MaxQueries {
		return &QuotaError{Tenant: tenant, Quota: "max_queries", Limit: ts.quotas.MaxQueries, Need: have + adding}
	}
	return nil
}

// checkStateQuota enforces MaxStateBytes given a tenant's current live
// footprint.
func (e *Engine) checkStateQuota(tenant string, liveBytes int64) error {
	e.tenMu.Lock()
	defer e.tenMu.Unlock()
	ts := e.tenants[tenant]
	if ts == nil || ts.quotas.MaxStateBytes <= 0 {
		return nil
	}
	if liveBytes > ts.quotas.MaxStateBytes {
		return &QuotaError{Tenant: tenant, Quota: "max_state_bytes", Limit: ts.quotas.MaxStateBytes, Need: liveBytes}
	}
	return nil
}
