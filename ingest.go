package saql

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync/atomic"

	"saql/internal/codec"
	"saql/internal/source"
)

// This file is the public face of the real-log ingestion layer: sources
// stream raw monitoring logs (auditd, Sysmon/ECS JSON, native NDJSON) into a
// running engine through SubmitBatch, with time-ordered batching and
// per-source accounting. See docs/architecture.md, "Ingestion pipeline".

// SourceStats are per-source ingestion counters (lines read, events
// decoded, decode errors, reordering/drop accounting, batches submitted).
type SourceStats = source.Stats

// Source streams one raw log input — a file, an io.Reader, or a TCP
// listener — into an Engine. Create one with NewSource, OpenLogFile, or
// ListenTCP; drive it with Run.
type Source struct {
	inner *source.Source
	ran   atomic.Bool // Run is one-shot: attach/detach must pair exactly once
}

// SourceOption configures a Source.
type SourceOption func(*source.Config)

// WithFormat selects the log format by codec name: "auditd", "sysmon", or
// "ndjson" (the default). Formats lists what is available.
func WithFormat(name string) SourceOption {
	return func(c *source.Config) { c.Format = name }
}

// WithSourceAgent sets the AgentID stamped on events whose log format (or
// individual line) carries no host field.
func WithSourceAgent(agent string) SourceOption {
	return func(c *source.Config) { c.Agent = agent }
}

// WithBatchSize sets the SubmitBatch size (default 256). The batch is also
// the reordering window: events are time-sorted within it before submission.
func WithBatchSize(n int) SourceOption {
	return func(c *source.Config) { c.BatchSize = n }
}

// WithFollow keeps a file source alive at end of file, polling for appended
// data like tail -f, until its Run context is cancelled. Other source kinds
// ignore it.
func WithFollow() SourceOption {
	return func(c *source.Config) { c.Follow = true }
}

// WithSourceTenant attributes the source's events to the named tenant, so
// the tenant's ingest-rate quota (TenantQuotas.IngestRate) applies to them
// and they count into its TenantStats. An empty name means DefaultTenant.
func WithSourceTenant(tenant string) SourceOption {
	return func(c *source.Config) { c.Tenant = tenant }
}

// WithStrictOrder drops events that arrive too late to be reordered into
// place (older than the submission watermark) instead of submitting them
// out of order. Drops are counted in SourceStats.Dropped.
func WithStrictOrder() SourceOption {
	return func(c *source.Config) { c.StrictOrder = true }
}

// WithDecodeErrorHandler observes every per-line decode error. Decode
// errors never stop a source; they are counted in SourceStats.DecodeErrors
// and the offending line is skipped.
func WithDecodeErrorHandler(fn func(error)) SourceOption {
	return func(c *source.Config) { c.OnError = fn }
}

// Formats lists the registered log format names.
func Formats() []string { return codec.Formats() }

func sourceConfig(opts []SourceOption) source.Config {
	cfg := source.Config{Format: "ndjson"}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// NewSource builds a source over an arbitrary byte stream, e.g. os.Stdin or
// a decompressing reader. Run ends when the reader reports EOF.
func NewSource(r io.Reader, opts ...SourceOption) (*Source, error) {
	s, err := source.FromReader(r, sourceConfig(opts))
	if err != nil {
		return nil, err
	}
	return &Source{inner: s}, nil
}

// OpenLogFile builds a source over a log file ("-" means standard input).
// With WithFollow the source keeps tailing the file for appended records
// until its Run context is cancelled; otherwise Run ends at EOF.
func OpenLogFile(path string, opts ...SourceOption) (*Source, error) {
	s, err := source.FromFile(path, sourceConfig(opts))
	if err != nil {
		return nil, err
	}
	return &Source{inner: s}, nil
}

// ListenTCP builds a source that accepts TCP connections on addr (e.g.
// ":6514", or ":0" to pick a free port — see Addr) and decodes each
// connection as an independent stream of the configured format. Run serves
// until its context is cancelled.
func ListenTCP(addr string, opts ...SourceOption) (*Source, error) {
	s, err := source.Listen(addr, sourceConfig(opts))
	if err != nil {
		return nil, err
	}
	return &Source{inner: s}, nil
}

// Run streams the source into the engine until the input is exhausted (or
// ctx is cancelled for follow/TCP sources). The engine must be running
// (Start), since sources ingest through SubmitBatch. The source registers
// itself with the engine for the duration of the run, so its counters
// aggregate into Stats; when Run returns the source is detached and its
// final counters are folded into the engine's cumulative totals, so they
// survive the detach. Run is one-shot: a second call fails. Run returns nil
// on a clean end of input and ctx.Err() on cancellation.
func (s *Source) Run(ctx context.Context, eng *Engine) error {
	if _, err := eng.running(); err != nil {
		return err
	}
	if !s.ran.CompareAndSwap(false, true) {
		return fmt.Errorf("saql: source already run (sources are one-shot)")
	}
	eng.attachSource(s.inner)
	defer eng.detachSource(s.inner)
	var dst source.Submitter = eng
	if ten := s.inner.Tenant(); ten != "" {
		dst = &tenantSubmitter{eng: eng, tenant: ten}
	}
	return s.inner.Run(ctx, dst)
}

// tenantSubmitter applies the owning tenant's ingest-rate quota in front of
// SubmitBatch: over-rate events are dropped (and counted in
// TenantStats.EventsThrottled) before they reach the engine.
type tenantSubmitter struct {
	eng    *Engine
	tenant string
}

func (t *tenantSubmitter) SubmitBatch(evs []*Event) error {
	kept := t.eng.admitEvents(t.tenant, evs)
	if len(kept) == 0 {
		return nil
	}
	return t.eng.SubmitBatch(kept)
}

// Stats snapshots the source's counters; safe while Run is in flight.
func (s *Source) Stats() SourceStats { return s.inner.Stats() }

// Addr reports the bound listener address of a ListenTCP source and nil for
// other source kinds.
func (s *Source) Addr() net.Addr { return s.inner.Addr() }
