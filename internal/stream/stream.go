// Package stream implements the event stream infrastructure that replaces
// the Siddhi CEP substrate of the paper: a publish/subscribe broker fanning
// the aggregated event feed out to consumers with bounded buffers and
// explicit overflow policies, plus an ordered k-way merge for combining
// per-host feeds into the single enterprise-wide stream the SAQL engine
// consumes.
package stream

import (
	"sync"
	"sync/atomic"

	"saql/internal/event"
)

// OverflowPolicy selects what Publish does when a subscriber's buffer is full.
type OverflowPolicy uint8

// Overflow policies.
const (
	// Block applies backpressure: Publish waits until the subscriber has
	// capacity. This is the default for correctness-critical consumers
	// (the anomaly engine must not observe gaps).
	Block OverflowPolicy = iota
	// DropNewest discards the incoming event for that subscriber.
	DropNewest
)

// Subscription is one consumer's view of the stream.
type Subscription struct {
	C       <-chan *event.Event
	ch      chan *event.Event
	policy  OverflowPolicy
	id      int
	dropped atomic.Int64
	closed  bool
}

// Dropped reports how many events overflow discarded for this subscriber.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Broker fans published events out to all subscribers.
type Broker struct {
	mu        sync.Mutex
	subs      map[int]*Subscription
	nextID    int
	closed    bool
	published atomic.Int64
}

// NewBroker creates an empty broker.
func NewBroker() *Broker {
	return &Broker{subs: map[int]*Subscription{}}
}

// Subscribe registers a consumer with the given buffer size and overflow
// policy. The returned subscription's channel is closed when the broker
// closes or the subscription is cancelled.
func (b *Broker) Subscribe(buf int, policy OverflowPolicy) *Subscription {
	if buf < 1 {
		buf = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	ch := make(chan *event.Event, buf)
	sub := &Subscription{ch: ch, C: ch, policy: policy, id: b.nextID}
	b.nextID++
	if b.closed {
		close(ch)
		sub.closed = true
		return sub
	}
	b.subs[sub.id] = sub
	return sub
}

// Unsubscribe cancels a subscription and closes its channel.
func (b *Broker) Unsubscribe(sub *Subscription) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if s, ok := b.subs[sub.id]; ok && s == sub {
		delete(b.subs, sub.id)
		close(sub.ch)
		sub.closed = true
	}
}

// Publish delivers ev to every subscriber according to its overflow policy.
// It is safe for concurrent use.
func (b *Broker) Publish(ev *event.Event) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	// Copy the subscriber list so blocking sends happen outside the lock.
	subs := make([]*Subscription, 0, len(b.subs))
	for _, s := range b.subs {
		subs = append(subs, s)
	}
	b.mu.Unlock()

	b.published.Add(1)
	for _, s := range subs {
		switch s.policy {
		case Block:
			s.ch <- ev
		case DropNewest:
			select {
			case s.ch <- ev:
			default:
				s.dropped.Add(1)
			}
		}
	}
}

// Published reports how many events have been published.
func (b *Broker) Published() int64 { return b.published.Load() }

// SubscriberCount reports the number of live subscriptions.
func (b *Broker) SubscriberCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Close closes the broker and all subscriber channels. Publish becomes a
// no-op afterwards.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, s := range b.subs {
		close(s.ch)
		s.closed = true
		delete(b.subs, id)
	}
}

// Merge combines per-host event channels into a single stream ordered by
// event time, assuming each input channel is itself time-ordered (true for
// collection agents and replayers). The merge is a k-way heap merge: it
// waits for one pending event per live input, so the output is totally
// ordered. The output channel closes when all inputs are exhausted.
func Merge(inputs ...<-chan *event.Event) <-chan *event.Event {
	out := make(chan *event.Event, 64)
	go func() {
		defer close(out)
		type head struct {
			ev *event.Event
			ch <-chan *event.Event
		}
		// Initialise the heap with one event per input.
		var heap []head
		push := func(h head) {
			heap = append(heap, h)
			for i := len(heap) - 1; i > 0; {
				parent := (i - 1) / 2
				if heap[i].ev.Time.Before(heap[parent].ev.Time) {
					heap[i], heap[parent] = heap[parent], heap[i]
					i = parent
				} else {
					break
				}
			}
		}
		pop := func() head {
			top := heap[0]
			last := len(heap) - 1
			heap[0] = heap[last]
			heap = heap[:last]
			for i := 0; ; {
				l, r := 2*i+1, 2*i+2
				small := i
				if l < len(heap) && heap[l].ev.Time.Before(heap[small].ev.Time) {
					small = l
				}
				if r < len(heap) && heap[r].ev.Time.Before(heap[small].ev.Time) {
					small = r
				}
				if small == i {
					break
				}
				heap[i], heap[small] = heap[small], heap[i]
				i = small
			}
			return top
		}
		for _, ch := range inputs {
			if ev, ok := <-ch; ok {
				push(head{ev: ev, ch: ch})
			}
		}
		for len(heap) > 0 {
			h := pop()
			out <- h.ev
			if ev, ok := <-h.ch; ok {
				push(head{ev: ev, ch: h.ch})
			}
		}
	}()
	return out
}

// Sequence stamps monotonically increasing IDs onto events flowing through
// it, forming the aggregated enterprise feed.
type Sequence struct {
	next atomic.Uint64
}

// Stamp assigns the next ID to ev and returns it.
func (s *Sequence) Stamp(ev *event.Event) *event.Event {
	ev.ID = s.next.Add(1)
	return ev
}
