package stream

import (
	"sync"
	"testing"
	"time"

	"saql/internal/event"
)

var base = time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)

func mkEvent(i int, at time.Time) *event.Event {
	return &event.Event{
		ID:      uint64(i),
		Time:    at,
		AgentID: "h",
		Subject: event.Process("p", 1),
		Op:      event.OpRead,
		Object:  event.File("/f"),
	}
}

func TestBrokerFanOut(t *testing.T) {
	b := NewBroker()
	s1 := b.Subscribe(16, Block)
	s2 := b.Subscribe(16, Block)
	for i := 0; i < 5; i++ {
		b.Publish(mkEvent(i, base))
	}
	b.Close()
	var n1, n2 int
	for range s1.C {
		n1++
	}
	for range s2.C {
		n2++
	}
	if n1 != 5 || n2 != 5 {
		t.Errorf("fan-out = %d/%d, want 5/5", n1, n2)
	}
	if b.Published() != 5 {
		t.Errorf("published = %d", b.Published())
	}
}

func TestBrokerBackpressure(t *testing.T) {
	b := NewBroker()
	sub := b.Subscribe(1, Block)
	done := make(chan struct{})
	go func() {
		// Two publishes: the second must block until we receive.
		b.Publish(mkEvent(1, base))
		b.Publish(mkEvent(2, base))
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("publish did not block on full buffer")
	case <-time.After(20 * time.Millisecond):
	}
	<-sub.C
	<-sub.C
	<-done
	b.Close()
}

func TestBrokerDropNewest(t *testing.T) {
	b := NewBroker()
	sub := b.Subscribe(2, DropNewest)
	for i := 0; i < 10; i++ {
		b.Publish(mkEvent(i, base))
	}
	if sub.Dropped() != 8 {
		t.Errorf("dropped = %d, want 8", sub.Dropped())
	}
	b.Close()
	var got []uint64
	for ev := range sub.C {
		got = append(got, ev.ID)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("kept = %v, want oldest two", got)
	}
}

func TestUnsubscribe(t *testing.T) {
	b := NewBroker()
	sub := b.Subscribe(4, Block)
	b.Unsubscribe(sub)
	if b.SubscriberCount() != 0 {
		t.Error("unsubscribe did not remove")
	}
	// Channel closed.
	if _, ok := <-sub.C; ok {
		t.Error("channel should be closed")
	}
	// Publishing after unsubscribe must not panic or block.
	b.Publish(mkEvent(1, base))
	// Double unsubscribe is a no-op.
	b.Unsubscribe(sub)
}

func TestSubscribeAfterClose(t *testing.T) {
	b := NewBroker()
	b.Close()
	sub := b.Subscribe(1, Block)
	if _, ok := <-sub.C; ok {
		t.Error("subscription on closed broker should be closed")
	}
	b.Publish(mkEvent(1, base)) // no-op
	b.Close()                   // idempotent
}

func TestConcurrentPublish(t *testing.T) {
	b := NewBroker()
	sub := b.Subscribe(1024, Block)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Publish(mkEvent(w*100+i, base))
			}
		}(w)
	}
	wg.Wait()
	b.Close()
	n := 0
	for range sub.C {
		n++
	}
	if n != 800 {
		t.Errorf("received %d, want 800", n)
	}
}

func TestMergeOrders(t *testing.T) {
	// Three per-host channels, each time-ordered, interleaved globally.
	chans := make([]chan *event.Event, 3)
	var inputs []<-chan *event.Event
	for i := range chans {
		chans[i] = make(chan *event.Event, 16)
		inputs = append(inputs, chans[i])
	}
	id := 0
	for step := 0; step < 5; step++ {
		for host := 0; host < 3; host++ {
			chans[host] <- mkEvent(id, base.Add(time.Duration(step*3+host)*time.Second))
			id++
		}
	}
	for _, c := range chans {
		close(c)
	}
	out := Merge(inputs...)
	var last time.Time
	n := 0
	for ev := range out {
		if n > 0 && ev.Time.Before(last) {
			t.Fatalf("merge out of order at %d: %v < %v", n, ev.Time, last)
		}
		last = ev.Time
		n++
	}
	if n != 15 {
		t.Errorf("merged %d, want 15", n)
	}
}

func TestMergeEmptyAndSingle(t *testing.T) {
	empty := make(chan *event.Event)
	close(empty)
	out := Merge((<-chan *event.Event)(empty))
	if _, ok := <-out; ok {
		t.Error("empty merge should close immediately")
	}

	one := make(chan *event.Event, 2)
	one <- mkEvent(1, base)
	one <- mkEvent(2, base.Add(time.Second))
	close(one)
	n := 0
	for range Merge((<-chan *event.Event)(one)) {
		n++
	}
	if n != 2 {
		t.Errorf("single merge = %d", n)
	}
}

func TestSequenceStamp(t *testing.T) {
	var s Sequence
	a := s.Stamp(mkEvent(0, base))
	b := s.Stamp(mkEvent(0, base))
	if a.ID != 1 || b.ID != 2 {
		t.Errorf("ids = %d, %d", a.ID, b.ID)
	}
}
