// The "ndjson" codec: the engine's native newline-delimited JSON schema, a
// direct serialization of event.Event. One JSON object per line:
//
//	{"ts":"2020-02-27T09:00:00.25Z","agent":"db-1",
//	 "subject":{"exe":"cmd.exe","pid":4120,"user":"svc","cmdline":"cmd /c dump"},
//	 "op":"start",
//	 "object":{"type":"proc","exe":"osql.exe","pid":4121},
//	 "amount":1500}
//
// Field notes:
//
//   - "ts" is RFC 3339 (fractional seconds allowed) or a Unix timestamp
//     number in seconds (fractional seconds allowed);
//   - "agent" (alias "host") defaults to Options.DefaultAgent when absent;
//   - "op" accepts every spelling event.ParseOp accepts (read, write,
//     execute/exec, start/fork, end/exit, delete/unlink, rename, connect,
//     accept, send, recv);
//   - "object.type" is "proc", "file", or "ip"; file objects carry "path",
//     ip objects carry "src_ip"/"src_port"/"dst_ip"/"dst_port"/"proto".
package codec

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"saql/internal/event"
)

func init() {
	Register("ndjson", func(opts Options) Decoder { return &ndjsonDecoder{opts: opts, tab: internTable{stats: opts.Intern}} })
}

type ndjsonDecoder struct {
	opts Options
	tab  internTable
}

// jsonEntity is the wire form of an entity for both subject and object.
type jsonEntity struct {
	Type    string `json:"type"`
	Exe     string `json:"exe"`
	PID     int32  `json:"pid"`
	User    string `json:"user"`
	CmdLine string `json:"cmdline"`
	Path    string `json:"path"`
	SrcIP   string `json:"src_ip"`
	DstIP   string `json:"dst_ip"`
	SrcPort int32  `json:"src_port"`
	DstPort int32  `json:"dst_port"`
	Proto   string `json:"proto"`
}

type jsonEvent struct {
	TS      json.RawMessage `json:"ts"`
	Agent   string          `json:"agent"`
	Host    string          `json:"host"` // alias for agent
	Subject *jsonEntity     `json:"subject"`
	Op      string          `json:"op"`
	Object  *jsonEntity     `json:"object"`
	Amount  float64         `json:"amount"`
}

func (d *ndjsonDecoder) Decode(line []byte) ([]*event.Event, error) {
	if isBlank(line) {
		return nil, nil
	}
	var rec jsonEvent
	if err := json.Unmarshal(line, &rec); err != nil {
		return nil, fmt.Errorf("ndjson: %w", err)
	}
	ts, err := parseTimestamp(rec.TS)
	if err != nil {
		return nil, fmt.Errorf("ndjson: %w", err)
	}
	if rec.Subject == nil {
		return nil, fmt.Errorf("ndjson: missing subject")
	}
	if rec.Object == nil {
		return nil, fmt.Errorf("ndjson: missing object")
	}
	op, err := event.ParseOp(rec.Op)
	if err != nil {
		return nil, fmt.Errorf("ndjson: %w", err)
	}
	subj := event.Entity{
		Type:    event.EntityProcess,
		ExeName: rec.Subject.Exe,
		PID:     rec.Subject.PID,
		User:    rec.Subject.User,
		CmdLine: rec.Subject.CmdLine,
	}
	if subj.ExeName == "" {
		return nil, fmt.Errorf("ndjson: missing subject.exe")
	}
	obj, err := rec.Object.toEntity()
	if err != nil {
		return nil, fmt.Errorf("ndjson: %w", err)
	}
	agent := rec.Agent
	if agent == "" {
		agent = rec.Host
	}
	if agent == "" {
		agent = d.opts.DefaultAgent
	}
	if agent == "" {
		agent = "ndjson"
	}
	ev := &event.Event{
		Time:    ts,
		AgentID: agent,
		Subject: subj,
		Op:      op,
		Object:  obj,
		Amount:  rec.Amount,
	}
	d.tab.intern(ev)
	return []*event.Event{ev}, nil
}

func (d *ndjsonDecoder) Flush() []*event.Event { return nil }

func (e *jsonEntity) toEntity() (event.Entity, error) {
	switch e.Type {
	case "proc", "process":
		if e.Exe == "" {
			return event.Entity{}, fmt.Errorf("object.type=proc missing exe")
		}
		return event.Entity{Type: event.EntityProcess, ExeName: e.Exe, PID: e.PID, User: e.User, CmdLine: e.CmdLine}, nil
	case "file":
		if e.Path == "" {
			return event.Entity{}, fmt.Errorf("object.type=file missing path")
		}
		return event.Entity{Type: event.EntityFile, Path: e.Path}, nil
	case "ip", "conn", "netconn":
		if e.DstIP == "" && e.SrcIP == "" {
			return event.Entity{}, fmt.Errorf("object.type=ip missing src_ip/dst_ip")
		}
		proto := e.Proto
		if proto == "" {
			proto = "tcp"
		}
		return event.Entity{
			Type:  event.EntityNetConn,
			SrcIP: e.SrcIP, SrcPort: e.SrcPort,
			DstIP: e.DstIP, DstPort: e.DstPort,
			Protocol: proto,
		}, nil
	case "":
		return event.Entity{}, fmt.Errorf("missing object.type")
	default:
		return event.Entity{}, fmt.Errorf("unknown object.type %q", e.Type)
	}
}

// parseTimestamp accepts RFC 3339 strings and Unix-seconds numbers
// (fractional seconds allowed in both).
func parseTimestamp(raw json.RawMessage) (time.Time, error) {
	if len(raw) == 0 {
		return time.Time{}, fmt.Errorf("missing ts")
	}
	if raw[0] == '"' {
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return time.Time{}, fmt.Errorf("bad ts: %w", err)
		}
		t, err := time.Parse(time.RFC3339Nano, s)
		if err != nil {
			return time.Time{}, fmt.Errorf("bad ts %q: %w", s, err)
		}
		return t, nil
	}
	secs, err := strconv.ParseFloat(string(raw), 64)
	if err != nil {
		return time.Time{}, fmt.Errorf("bad ts %s", raw)
	}
	return unixFloat(secs), nil
}

// unixFloat converts fractional Unix seconds to a UTC time, rounding to
// microseconds so repeated encode/decode round-trips are stable.
func unixFloat(secs float64) time.Time {
	sec := int64(secs)
	nsec := int64((secs - float64(sec)) * 1e9)
	return time.Unix(sec, nsec).UTC().Round(time.Microsecond)
}

func isBlank(line []byte) bool {
	for _, c := range line {
		if c != ' ' && c != '\t' && c != '\r' {
			return false
		}
	}
	return true
}
