package codec

import "saql/internal/event"

// internTable deduplicates the low-cardinality attribute strings a stream
// repeats on nearly every line — executable names, agent/host IDs, user
// names, IP addresses, transport protocols — so the millions of retained
// copies in window state, match partials, and checkpoint snapshots share one
// backing allocation per distinct value instead of one per event. Decoders
// are per-stream and single-goroutine, so the table needs no locking.
//
// High-cardinality attributes (file paths, command lines) are deliberately
// not interned: they rarely repeat, and caching them would only grow the
// table. Two safety valves bound the table even on adversarial input: values
// longer than internMaxLen bypass it, and once internMaxEntries distinct
// values have been cached, new ones pass through uncached while existing
// entries keep deduplicating.
type internTable struct {
	m map[string]string
}

const (
	internMaxEntries = 1 << 12
	internMaxLen     = 128
)

// str returns the canonical copy of s, caching it on first sight.
//
//saql:hotpath
func (t *internTable) str(s string) string {
	if s == "" || len(s) > internMaxLen {
		return s
	}
	if v, ok := t.m[s]; ok {
		return v
	}
	if len(t.m) >= internMaxEntries {
		return s
	}
	if t.m == nil {
		t.m = make(map[string]string) //saql:coldpath one-time lazy init, amortized over the stream
	}
	t.m[s] = s
	return t.m[s]
}

// entity interns an entity's hot attributes in place.
//
//saql:hotpath
func (t *internTable) entity(e *event.Entity) {
	e.ExeName = t.str(e.ExeName)
	e.User = t.str(e.User)
	e.SrcIP = t.str(e.SrcIP)
	e.DstIP = t.str(e.DstIP)
	e.Protocol = t.str(e.Protocol)
}

// intern canonicalizes one decoded event's hot strings in place.
//
//saql:hotpath
func (t *internTable) intern(ev *event.Event) {
	ev.AgentID = t.str(ev.AgentID)
	t.entity(&ev.Subject)
	t.entity(&ev.Object)
}
