package codec

import (
	"sync/atomic"

	"saql/internal/event"
	"saql/internal/symtab"
)

// InternStats counts one consumer's intern-table activity. The decoder
// goroutine writes and any goroutine may read concurrently (engine stats
// snapshots), hence the atomics. Hits and Misses mirror the process-global
// symtab counters but are scoped to the streams that share this sink;
// Entries counts distinct values cached across those streams.
type InternStats struct {
	Hits    atomic.Int64
	Misses  atomic.Int64
	Entries atomic.Int64
}

// internTable deduplicates the low-cardinality attribute strings a stream
// repeats on nearly every line — executable names, agent/host IDs, user
// names, IP addresses, transport protocols — so the millions of retained
// copies in window state, match partials, and checkpoint snapshots share one
// backing allocation per distinct value instead of one per event. Decoders
// are per-stream and single-goroutine, so the table needs no locking.
//
// Alongside the canonical copy, each entry caches the value's symbol ID from
// the process-global dictionary (internal/symtab), so decoded events carry
// small-int symbols for their hot attributes and compiled equality
// predicates compare one uint32 instead of case-folding strings. The global
// dictionary is consulted once per distinct string per stream; every repeat
// resolves from this local table.
//
// High-cardinality attributes (file paths, command lines) are deliberately
// not interned: they rarely repeat, and caching them would only grow the
// table. Two safety valves bound the table even on adversarial input: values
// longer than internMaxLen bypass it, and once internMaxEntries distinct
// values have been cached, new ones pass through uncached (symbol-less)
// while existing entries keep deduplicating.
type internTable struct {
	m     map[string]internEntry
	stats *InternStats // optional per-consumer counters (nil: globals only)
}

// internEntry is one cached value: the canonical string plus its global
// symbol ID (0 when the dictionary rejected or overflowed).
type internEntry struct {
	s   string
	sym uint32
}

const (
	internMaxEntries = 1 << 12
	internMaxLen     = 128
)

// val returns the canonical copy of s and its symbol ID, caching both on
// first sight.
//
//saql:hotpath
func (t *internTable) val(s string) (string, uint32) {
	if s == "" || len(s) > internMaxLen {
		return s, 0
	}
	if e, ok := t.m[s]; ok {
		symtab.RecordHit()
		if t.stats != nil {
			t.stats.Hits.Add(1)
		}
		return e.s, e.sym
	}
	symtab.RecordMiss()
	if t.stats != nil {
		t.stats.Misses.Add(1)
	}
	if len(t.m) >= internMaxEntries {
		return s, 0
	}
	if t.m == nil {
		t.m = make(map[string]internEntry) //saql:coldpath one-time lazy init, amortized over the stream
	}
	e := internEntry{s: s, sym: symtab.Intern(s)}
	t.m[s] = e
	if t.stats != nil {
		t.stats.Entries.Add(1)
	}
	return e.s, e.sym
}

// str returns the canonical copy of s, caching it on first sight.
//
//saql:hotpath
func (t *internTable) str(s string) string {
	v, _ := t.val(s)
	return v
}

// entity interns an entity's hot attributes in place, stamping their symbol
// IDs.
//
//saql:hotpath
func (t *internTable) entity(e *event.Entity) {
	e.ExeName, e.ExeSym = t.val(e.ExeName)
	e.User, e.UserSym = t.val(e.User)
	e.SrcIP, e.SrcIPSym = t.val(e.SrcIP)
	e.DstIP, e.DstIPSym = t.val(e.DstIP)
	e.Protocol, e.ProtoSym = t.val(e.Protocol)
}

// intern canonicalizes one decoded event's hot strings in place.
//
//saql:hotpath
func (t *internTable) intern(ev *event.Event) {
	ev.AgentID, ev.AgentSym = t.val(ev.AgentID)
	t.entity(&ev.Subject)
	t.entity(&ev.Object)
}
