// The "sysmon" codec: Sysmon operational-log records rendered as ECS-style
// JSON lines, the shape winlogbeat and compatible shippers emit. Both nested
// objects ({"process":{"pid":1}}) and dotted keys ({"process.pid":1}) are
// accepted, since both occur in the wild.
//
// The Sysmon event ID (winlog.event_id, or its string form in event.code)
// selects the mapping into the ⟨subject, operation, object⟩ model:
//
//	1  ProcessCreate      parent proc  start    child proc
//	3  NetworkConnect     proc         connect  ip
//	5  ProcessTerminate   proc         end      itself
//	11 FileCreate         proc         write    file
//	23 FileDelete         proc         delete   file
//	26 FileDeleteDetected proc         delete   file
//
// Lines without an event ID fall back to the ECS event.action keyword
// (process-creation / network-connection / file-create / file-delete /
// process-terminated and their Sysmon task spellings). Records that carry
// neither, or whose ID is outside the table, decode to no event (they are
// valid log lines that simply have no SVO projection); structurally broken
// records (unparseable JSON, a mapped ID missing its required fields) are
// errors.
package codec

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"saql/internal/event"
)

func init() {
	Register("sysmon", func(opts Options) Decoder { return &sysmonDecoder{opts: opts, tab: internTable{stats: opts.Intern}} })
}

type sysmonDecoder struct {
	opts Options
	tab  internTable
}

// ecsDoc is one parsed line with nested maps flattened to dotted keys.
type ecsDoc map[string]any

func (d *sysmonDecoder) Decode(line []byte) ([]*event.Event, error) {
	if isBlank(line) {
		return nil, nil
	}
	var raw map[string]any
	if err := json.Unmarshal(line, &raw); err != nil {
		return nil, fmt.Errorf("sysmon: %w", err)
	}
	doc := ecsDoc{}
	flattenECS("", raw, doc)

	id, ok := doc.eventID()
	if !ok {
		return nil, nil // carries no mappable event type
	}
	switch id {
	case 1, 3, 5, 11, 23, 26:
	default:
		return nil, nil // valid Sysmon record outside the SVO projection
	}

	ts, err := doc.timestamp()
	if err != nil {
		return nil, fmt.Errorf("sysmon: %w", err)
	}
	agent := doc.str("host.name")
	if agent == "" {
		agent = d.opts.DefaultAgent
	}
	if agent == "" {
		agent = "sysmon"
	}

	proc, err := doc.process("process")
	if err != nil {
		return nil, fmt.Errorf("sysmon: event_id %d: %w", id, err)
	}

	ev := &event.Event{Time: ts, AgentID: agent}
	switch id {
	case 1: // ProcessCreate: parent starts child
		parent, err := doc.process("process.parent")
		if err != nil {
			return nil, fmt.Errorf("sysmon: event_id 1: %w", err)
		}
		ev.Subject = parent
		ev.Op = event.OpStart
		ev.Object = proc
	case 3: // NetworkConnect
		dst := doc.str("destination.ip")
		if dst == "" {
			return nil, fmt.Errorf("sysmon: event_id 3: missing destination.ip")
		}
		proto := doc.str("network.transport")
		if proto == "" {
			proto = "tcp"
		}
		ev.Subject = proc
		ev.Op = event.OpConnect
		ev.Object = event.Entity{
			Type:  event.EntityNetConn,
			SrcIP: doc.str("source.ip"), SrcPort: int32(doc.num("source.port")),
			DstIP: dst, DstPort: int32(doc.num("destination.port")),
			Protocol: proto,
		}
		ev.Amount = doc.num("network.bytes")
	case 5: // ProcessTerminate
		ev.Subject = proc
		ev.Op = event.OpEnd
		ev.Object = proc
	case 11, 23, 26: // FileCreate / FileDelete / FileDeleteDetected
		path := doc.str("file.path")
		if path == "" {
			return nil, fmt.Errorf("sysmon: event_id %d: missing file.path", id)
		}
		ev.Subject = proc
		if id == 11 {
			ev.Op = event.OpWrite
		} else {
			ev.Op = event.OpDelete
		}
		ev.Object = event.Entity{Type: event.EntityFile, Path: path}
		ev.Amount = doc.num("file.size")
	}
	d.tab.intern(ev)
	return []*event.Event{ev}, nil
}

func (d *sysmonDecoder) Flush() []*event.Event { return nil }

// flattenECS folds nested JSON objects into dotted keys, leaving values
// already keyed with dots untouched, so {"process":{"pid":1}} and
// {"process.pid":1} read identically.
func flattenECS(prefix string, src map[string]any, dst ecsDoc) {
	for k, v := range src {
		key := k
		if prefix != "" {
			key = prefix + "." + k
		}
		if m, ok := v.(map[string]any); ok {
			flattenECS(key, m, dst)
			continue
		}
		dst[key] = v
	}
}

func (d ecsDoc) str(key string) string {
	s, _ := d[key].(string)
	return s
}

func (d ecsDoc) num(key string) float64 {
	switch v := d[key].(type) {
	case float64:
		return v
	case string:
		f, _ := strconv.ParseFloat(v, 64)
		return f
	}
	return 0
}

// eventID resolves the Sysmon event ID from winlog.event_id or event.code.
func (d ecsDoc) eventID() (int, bool) {
	if v, ok := d["winlog.event_id"]; ok {
		switch id := v.(type) {
		case float64:
			return int(id), true
		case string:
			if n, err := strconv.Atoi(id); err == nil {
				return n, true
			}
		}
	}
	if s := d.str("event.code"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			return n, true
		}
	}
	// ECS keyword fallback for shippers that drop the numeric ID.
	switch normalizeAction(d.str("event.action")) {
	case "processcreate", "processcreation":
		return 1, true
	case "networkconnect", "networkconnection":
		return 3, true
	case "processterminate", "processterminated":
		return 5, true
	case "filecreate":
		return 11, true
	case "filedelete", "filedeletedetected":
		return 23, true
	}
	return 0, false
}

// normalizeAction lowercases and strips separators and Sysmon's
// "(rule: ...)" suffix, so "Process Create (rule: ProcessCreate)",
// "process-creation", and "ProcessCreate" all compare equal.
func normalizeAction(s string) string {
	if i := strings.IndexByte(s, '('); i >= 0 {
		s = s[:i]
	}
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		case r >= 'a' && r <= 'z':
			b.WriteRune(r)
		}
	}
	return b.String()
}

// process builds a process entity from the ECS fields below prefix
// (process.* or process.parent.*).
func (d ecsDoc) process(prefix string) (event.Entity, error) {
	name := d.str(prefix + ".name")
	exe := d.str(prefix + ".executable")
	if name == "" {
		name = baseName(exe)
	}
	if name == "" {
		return event.Entity{}, fmt.Errorf("missing %s.name/%s.executable", prefix, prefix)
	}
	return event.Entity{
		Type:    event.EntityProcess,
		ExeName: name,
		PID:     int32(d.num(prefix + ".pid")),
		User:    d.str("user.name"),
		CmdLine: d.str(prefix + ".command_line"),
	}, nil
}

func (d ecsDoc) timestamp() (time.Time, error) {
	s := d.str("@timestamp")
	if s == "" {
		return time.Time{}, fmt.Errorf("missing @timestamp")
	}
	t, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		return time.Time{}, fmt.Errorf("bad @timestamp %q: %w", s, err)
	}
	return t, nil
}
