// Package codec turns raw monitoring-log lines into the normalized
// ⟨subject, operation, object⟩ events of internal/event. Each supported log
// format is a Decoder registered under a short name; internal/source drives
// a Decoder line by line and submits the events it emits to the engine.
//
// Three production codecs ship with the package:
//
//   - "auditd": the Linux kernel audit framework's native line format,
//     including multi-record event reassembly (SYSCALL + PATH + SOCKADDR +
//     EXECVE + CWD groups sharing one audit event ID);
//   - "sysmon": Sysmon/ECS-style JSON lines as emitted by winlogbeat and
//     compatible shippers (nested or dotted ECS field names);
//   - "ndjson": the engine's native newline-delimited JSON schema, a direct
//     serialization of event.Event for loss-free interchange.
//
// A Decoder is stateful (auditd buffers partial record groups) and therefore
// not safe for concurrent use; create one Decoder per stream.
package codec

import (
	"fmt"
	"sort"
	"sync"

	"saql/internal/event"
)

// Options configure a Decoder instance.
type Options struct {
	// DefaultAgent is the AgentID stamped on events whose format carries no
	// host field (or whose host field is absent on a line). Empty uses the
	// format's fallback (the format name itself).
	DefaultAgent string
	// Intern, when non-nil, receives this decoder's intern-table hit/miss/
	// entry counts, so callers (one source, one engine) can report symbol
	// statistics scoped to their own streams rather than the process-global
	// dictionary totals.
	Intern *InternStats
}

// Decoder consumes one raw log line at a time and emits zero or more
// completed events. Formats that spread one logical event over several lines
// (auditd) buffer internally and emit on group completion; Flush drains
// whatever is still buffered at end of stream.
type Decoder interface {
	// Decode consumes one line (without the trailing newline). It returns
	// the events completed by this line, which may be empty: the line may be
	// a non-event record, a buffered partial group, or a valid record that
	// maps to nothing in the event model. A non-nil error reports a
	// malformed or undecodable line; the decoder remains usable.
	Decode(line []byte) ([]*event.Event, error)
	// Flush emits the events of any buffered partial state (end of stream).
	// Groups too incomplete to build an event are discarded.
	Flush() []*event.Event
}

// Factory creates a fresh Decoder.
type Factory func(Options) Decoder

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register makes a decoder factory available under name. It panics on a
// duplicate name, mirroring database/sql.Register.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("codec: Register called twice for %q", name))
	}
	registry[name] = f
}

// New creates a decoder for the named format.
func New(name string, opts Options) (Decoder, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("codec: unknown format %q (have %v)", name, Formats())
	}
	return f(opts), nil
}

// Formats lists the registered format names, sorted.
func Formats() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// baseName returns the path's final element under either separator, so
// Windows executables from Sysmon and Unix paths from auditd both normalize
// to the bare image name the collector schema uses.
func baseName(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' || p[i] == '\\' {
			return p[i+1:]
		}
	}
	return p
}
