package codec

import (
	"bytes"
	"testing"
)

// The fuzz targets assert the decoder contract under arbitrary input: no
// panics, and a line that errors contributes no events. `go test` runs the
// seed corpus below on every CI run; `go test -fuzz=FuzzDecodeAuditd` (etc.)
// explores further.

func fuzzDecoder(f *testing.F, format string, seeds []string) {
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := New(format, Options{DefaultAgent: "fuzz"})
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range bytes.Split(data, []byte("\n")) {
			evs, err := dec.Decode(line)
			if err != nil && len(evs) > 1 {
				// An eviction may emit a prior group's event alongside the
				// error, but never more than one.
				t.Fatalf("Decode error carried %d events", len(evs))
			}
			for _, ev := range evs {
				if ev == nil {
					t.Fatal("Decode emitted nil event")
				}
			}
		}
		for _, ev := range dec.Flush() {
			if ev == nil {
				t.Fatal("Flush emitted nil event")
			}
		}
	})
}

func FuzzDecodeAuditd(f *testing.F) {
	fuzzDecoder(f, "auditd", []string{
		`type=SYSCALL msg=audit(1582794000.123:101): arch=c000003e syscall=59 success=yes exit=0 pid=4120 uid=1000 comm="bash" exe="/usr/bin/bash"`,
		`type=PATH msg=audit(1582794000.123:101): item=0 name="/usr/bin/mysqldump" nametype=NORMAL`,
		`type=EXECVE msg=audit(1582794000.123:101): argc=2 a0="sh" a1=2D63`,
		`type=CWD msg=audit(1582794000.123:101): cwd="/var/tmp"`,
		`type=SOCKADDR msg=audit(1582794000.123:101): saddr=020001BBAC1000810000000000000000`,
		`type=SOCKADDR msg=audit(1582794000.123:101): saddr={ fam=inet laddr=10.0.0.1 lport=80 }`,
		`node=db-1 type=EOE msg=audit(1582794000.123:101):`,
		`type=PROCTITLE msg=audit(1582794000.123:101): proctitle=6D7973716C64756D70`,
		`type=SYSCALL msg=audit(1.2:3): syscall=connect success=no exit=-111 pid=1 comm="nc" exe="/nc"`,
		"type=SYSCALL msg=audit(9:9): syscall=56 success=yes exit=77 pid=1 comm=\"b\" exe=\"/b\"\ntype=EOE msg=audit(9:9):",
		`type=SYSCALL msg=audit(`,
		`node=`,
		``,
	})
}

func FuzzDecodeSysmon(f *testing.F) {
	fuzzDecoder(f, "sysmon", []string{
		`{"@timestamp":"2020-02-27T09:00:00Z","host":{"name":"ws"},"winlog":{"event_id":1},"process":{"pid":1,"name":"a.exe","parent":{"pid":2,"name":"b.exe"}}}`,
		`{"@timestamp":"2020-02-27T09:00:00Z","winlog":{"event_id":3},"process":{"pid":1,"name":"a.exe"},"destination":{"ip":"1.2.3.4","port":443}}`,
		`{"@timestamp":"2020-02-27T09:00:00Z","event.code":"11","process.pid":1,"process.name":"a.exe","file.path":"C:\\x"}`,
		`{"@timestamp":"2020-02-27T09:00:00Z","event":{"action":"file-delete"},"process":{"pid":1,"name":"a.exe"},"file":{"path":"/tmp/x"}}`,
		`{"winlog":{"event_id":1}}`,
		`{not json`,
		`[]`,
		``,
	})
}

func FuzzDecodeNDJSON(f *testing.F) {
	fuzzDecoder(f, "ndjson", []string{
		`{"ts":"2020-02-27T09:00:00Z","agent":"db-1","subject":{"exe":"cmd.exe","pid":4120},"op":"start","object":{"type":"proc","exe":"osql.exe","pid":4121}}`,
		`{"ts":1582794001.5,"subject":{"exe":"a","pid":1},"op":"write","object":{"type":"file","path":"/x"},"amount":100}`,
		`{"ts":2,"subject":{"exe":"a","pid":1},"op":"send","object":{"type":"ip","dst_ip":"1.2.3.4","dst_port":443}}`,
		`{"ts":true,"subject":{},"op":"?","object":{}}`,
		`{"ts":"`,
		``,
	})
}
