package codec

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"saql/internal/event"
)

func TestAuditdExecveGroup(t *testing.T) {
	lines := `
type=SYSCALL msg=audit(1582794000.123:101): arch=c000003e syscall=59 success=yes exit=0 a0=55f ppid=4119 pid=4120 auid=1000 uid=1000 gid=1000 comm="mysqldump" exe="/usr/bin/mysqldump" key="exec"
type=EXECVE msg=audit(1582794000.123:101): argc=3 a0="mysqldump" a1="--all-databases" a2=2D2D726573756C742D66696C653D64756D702E73716C
type=CWD msg=audit(1582794000.123:101): cwd="/var/tmp"
type=PATH msg=audit(1582794000.123:101): item=0 name="/usr/bin/mysqldump" inode=1234 nametype=NORMAL
type=PATH msg=audit(1582794000.123:101): item=1 name="/lib64/ld-linux-x86-64.so.2" inode=99 nametype=NORMAL
type=PROCTITLE msg=audit(1582794000.123:101): proctitle=6D7973716C64756D70
type=EOE msg=audit(1582794000.123:101):`
	evs, errs := decodeAll(t, "auditd", Options{DefaultAgent: "db-1"}, lines)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(evs) != 1 {
		t.Fatalf("decoded %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Op != event.OpExecute {
		t.Errorf("op = %v, want execute", ev.Op)
	}
	if ev.Subject.ExeName != "mysqldump" || ev.Subject.PID != 4120 {
		t.Errorf("subject = %+v", ev.Subject)
	}
	// EXECVE argv joins, with the hex-encoded argument decoded.
	if ev.Subject.CmdLine != "mysqldump --all-databases --result-file=dump.sql" {
		t.Errorf("cmdline = %q", ev.Subject.CmdLine)
	}
	if ev.Object.Type != event.EntityFile || ev.Object.Path != "/usr/bin/mysqldump" {
		t.Errorf("object = %+v (want PATH item 0)", ev.Object)
	}
	if ev.AgentID != "db-1" {
		t.Errorf("agent = %q", ev.AgentID)
	}
	want := time.Unix(1582794000, 123000000).UTC()
	if !ev.Time.Equal(want) {
		t.Errorf("time = %v, want %v", ev.Time, want)
	}
}

func TestAuditdInterleavedGroups(t *testing.T) {
	// Two groups interleaved record by record, as concurrent CPUs emit them.
	// Group 102: openat CREATE (write); group 103: connect with hex saddr
	// (AF_INET 172.16.0.129:443) and a node= prefix.
	lines := `
type=SYSCALL msg=audit(1582794010.000:102): arch=c000003e syscall=257 success=yes exit=3 ppid=1 pid=500 uid=0 comm="mysqld" exe="/usr/sbin/mysqld"
node=db-1 type=SYSCALL msg=audit(1582794011.000:103): arch=c000003e syscall=42 success=yes exit=0 ppid=1 pid=600 uid=0 comm="curl" exe="/usr/bin/curl"
type=CWD msg=audit(1582794010.000:102): cwd="/var/tmp"
node=db-1 type=SOCKADDR msg=audit(1582794011.000:103): saddr=020001BBAC1000810000000000000000
type=PATH msg=audit(1582794010.000:102): item=0 name="/var/tmp" nametype=PARENT
type=PATH msg=audit(1582794010.000:102): item=1 name="dump.sql" nametype=CREATE
node=db-1 type=EOE msg=audit(1582794011.000:103):
type=EOE msg=audit(1582794010.000:102):`
	evs, errs := decodeAll(t, "auditd", Options{DefaultAgent: "fallback"}, lines)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(evs) != 2 {
		t.Fatalf("decoded %d events, want 2", len(evs))
	}
	// Group 103's EOE arrives first, so it completes first.
	conn := evs[0]
	if conn.Op != event.OpConnect || conn.Subject.ExeName != "curl" {
		t.Errorf("connect event = %s", conn)
	}
	if conn.Object.DstIP != "172.16.0.129" || conn.Object.DstPort != 443 {
		t.Errorf("sockaddr = %+v", conn.Object)
	}
	if conn.AgentID != "db-1" {
		t.Errorf("node= agent = %q", conn.AgentID)
	}
	wr := evs[1]
	if wr.Op != event.OpWrite {
		t.Errorf("openat CREATE op = %v, want write", wr.Op)
	}
	// Relative PATH name resolves against the CWD record.
	if wr.Object.Path != "/var/tmp/dump.sql" {
		t.Errorf("path = %q", wr.Object.Path)
	}
	if wr.AgentID != "fallback" {
		t.Errorf("fallback agent = %q", wr.AgentID)
	}
}

func TestAuditdInterpretedLog(t *testing.T) {
	// `ausearch -i` renders syscall names symbolically, saddr braced, and
	// the audit stamp as a date.
	lines := `
type=SYSCALL msg=audit(02/27/2020 09:00:20.500:200): arch=x86_64 syscall=connect success=yes exit=0 ppid=1 pid=700 uid=root comm="nc" exe="/usr/bin/nc"
type=SOCKADDR msg=audit(02/27/2020 09:00:20.500:200): saddr={ fam=inet laddr=10.9.8.7 lport=22 }
type=EOE msg=audit(02/27/2020 09:00:20.500:200):`
	evs, errs := decodeAll(t, "auditd", Options{}, lines)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(evs) != 1 {
		t.Fatalf("decoded %d events, want 1", len(evs))
	}
	want := time.Date(2020, 2, 27, 9, 0, 20, 500000000, time.UTC)
	if !evs[0].Time.Equal(want) {
		t.Errorf("interpreted stamp time = %v, want %v", evs[0].Time, want)
	}
	if evs[0].Object.DstIP != "10.9.8.7" || evs[0].Object.DstPort != 22 {
		t.Errorf("interpreted saddr = %+v", evs[0].Object)
	}
	if evs[0].Subject.User != "root" {
		t.Errorf("user = %q", evs[0].Subject.User)
	}
	if evs[0].AgentID != "auditd" {
		t.Errorf("default agent = %q", evs[0].AgentID)
	}
}

func TestAuditdProcessLifecycleAndAmounts(t *testing.T) {
	lines := `
type=SYSCALL msg=audit(1582794030.000:301): arch=c000003e syscall=56 success=yes exit=7002 ppid=1 pid=7001 uid=1000 comm="bash" exe="/usr/bin/bash"
type=EOE msg=audit(1582794030.000:301):
type=SYSCALL msg=audit(1582794031.000:302): arch=c000003e syscall=44 success=yes exit=524288 ppid=7001 pid=7002 uid=1000 comm="curl" exe="/usr/bin/curl"
type=SOCKADDR msg=audit(1582794031.000:302): saddr=020001BBAC1000810000000000000000
type=EOE msg=audit(1582794031.000:302):
type=SYSCALL msg=audit(1582794032.000:303): arch=c000003e syscall=87 success=yes exit=0 ppid=7001 pid=7002 uid=1000 comm="rm" exe="/usr/bin/rm"
type=CWD msg=audit(1582794032.000:303): cwd="/var/tmp"
type=PATH msg=audit(1582794032.000:303): item=0 name="/var/tmp" nametype=PARENT
type=PATH msg=audit(1582794032.000:303): item=1 name="dump.sql" nametype=DELETE
type=EOE msg=audit(1582794032.000:303):
type=SYSCALL msg=audit(1582794033.000:304): arch=c000003e syscall=231 success=yes exit=0 ppid=7001 pid=7002 uid=1000 comm="curl" exe="/usr/bin/curl"
type=EOE msg=audit(1582794033.000:304):`
	evs, errs := decodeAll(t, "auditd", Options{}, lines)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(evs) != 4 {
		t.Fatalf("decoded %d events, want 4", len(evs))
	}
	// clone: child pid comes from exit=.
	if evs[0].Op != event.OpStart || evs[0].Object.PID != 7002 || evs[0].Object.ExeName != "bash" {
		t.Errorf("clone → %s", evs[0])
	}
	// sendto: network write with the byte count from exit=.
	if evs[1].Op != event.OpWrite || evs[1].Amount != 524288 || evs[1].Object.DstIP != "172.16.0.129" {
		t.Errorf("sendto → %s", evs[1])
	}
	// unlink: delete of the DELETE-nametype path.
	if evs[2].Op != event.OpDelete || evs[2].Object.Path != "/var/tmp/dump.sql" {
		t.Errorf("unlink → %s", evs[2])
	}
	// exit_group: process end.
	if evs[3].Op != event.OpEnd || evs[3].Object.PID != 7002 {
		t.Errorf("exit_group → %s", evs[3])
	}
}

func TestAuditdSkipsAndErrors(t *testing.T) {
	dec, _ := New("auditd", Options{})

	// Failed syscalls, unmapped syscalls, and non-event record types decode
	// to nothing without error.
	silent := `
type=SYSCALL msg=audit(1582794040.000:400): arch=c000003e syscall=59 success=no exit=-13 pid=1 uid=0 comm="sh" exe="/bin/sh"
type=EOE msg=audit(1582794040.000:400):
type=SYSCALL msg=audit(1582794041.000:401): arch=c000003e syscall=39 success=yes exit=55 pid=1 uid=0 comm="sh" exe="/bin/sh"
type=EOE msg=audit(1582794041.000:401):
type=LOGIN msg=audit(1582794042.000:402): pid=1 uid=0 old-auid=4294967295 auid=1000
type=EOE msg=audit(1582794042.000:402):
type=EOE msg=audit(1582794042.000:402):`
	for _, line := range strings.Split(strings.TrimSpace(silent), "\n") {
		evs, err := dec.Decode([]byte(line))
		if err != nil || len(evs) != 0 {
			t.Errorf("Decode(%q) = %d events, err %v; want silent skip", line, len(evs), err)
		}
	}

	// Malformed lines are errors and leave the decoder usable.
	for _, line := range []string{
		`not an audit line`,
		`type=SYSCALL no-msg-field`,
		`type=SYSCALL msg=audit(couldbeanything): pid=1`,
		`type=SYSCALL msg=audit(1582794050.000:500`,
		`node=db-1`,
	} {
		if _, err := dec.Decode([]byte(line)); err == nil {
			t.Errorf("Decode(%q) should fail", line)
		}
	}

	// A group whose terminator is lost errors at completion time: an execve
	// with no PATH record cannot name its object.
	if _, err := dec.Decode([]byte(`type=SYSCALL msg=audit(1582794051.000:501): arch=c000003e syscall=59 success=yes exit=0 pid=9 uid=0 comm="sh" exe="/bin/sh"`)); err != nil {
		t.Fatalf("buffering record: %v", err)
	}
	if _, err := dec.Decode([]byte(`type=EOE msg=audit(1582794051.000:501):`)); err == nil {
		t.Error("truncated execve group should error at completion")
	}
}

func TestAuditdTruncatedGroupEviction(t *testing.T) {
	dec, _ := New("auditd", Options{})
	// A SYSCALL group that never terminates (its EOE was lost in capture).
	if _, err := dec.Decode([]byte(`type=SYSCALL msg=audit(1582794060.000:600): arch=c000003e syscall=42 success=yes exit=0 pid=5 uid=0 comm="nc" exe="/usr/bin/nc"`)); err != nil {
		t.Fatal(err)
	}
	// Push maxPendingGroups complete-but-unterminated groups behind it; the
	// orphan is evicted and surfaces as a truncated-group error (connect
	// without its SOCKADDR record).
	var sawEviction bool
	var evs []*event.Event
	for i := 0; i <= maxPendingGroups; i++ {
		line := fmt.Sprintf(`type=SYSCALL msg=audit(1582794061.000:%d): arch=c000003e syscall=231 success=yes exit=0 pid=5 uid=0 comm="x" exe="/bin/x"`, 601+i)
		out, err := dec.Decode([]byte(line))
		evs = append(evs, out...)
		if err != nil {
			if !strings.Contains(err.Error(), "truncated record group") {
				t.Fatalf("unexpected error: %v", err)
			}
			sawEviction = true
		}
	}
	if !sawEviction {
		t.Fatal("orphaned group was never evicted")
	}
	// The exit_group groups themselves all still decode (whether emitted by
	// eviction or by the final flush).
	evs = append(evs, dec.Flush()...)
	if len(evs) != maxPendingGroups+1 {
		t.Fatalf("decoded %d events, want %d", len(evs), maxPendingGroups+1)
	}
	for _, ev := range evs {
		if ev.Op != event.OpEnd {
			t.Fatalf("decoded event %s, want end", ev)
		}
	}
}

func TestAuditdMultiHostStampCollision(t *testing.T) {
	// Audit serials are per-host: two hosts can emit the same stamp. Their
	// record groups must not merge.
	lines := `
node=host-a type=SYSCALL msg=audit(1582794080.000:50): arch=c000003e syscall=42 success=yes exit=0 pid=10 uid=0 comm="curl" exe="/usr/bin/curl"
node=host-b type=SYSCALL msg=audit(1582794080.000:50): arch=c000003e syscall=231 success=yes exit=0 pid=20 uid=0 comm="sleep" exe="/usr/bin/sleep"
node=host-a type=SOCKADDR msg=audit(1582794080.000:50): saddr=020001BBAC1000810000000000000000
node=host-b type=EOE msg=audit(1582794080.000:50):
node=host-a type=EOE msg=audit(1582794080.000:50):`
	evs, errs := decodeAll(t, "auditd", Options{}, lines)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(evs) != 2 {
		t.Fatalf("decoded %d events, want 2", len(evs))
	}
	if evs[0].AgentID != "host-b" || evs[0].Op != event.OpEnd || evs[0].Subject.PID != 20 {
		t.Errorf("host-b event = %s (agent %s)", evs[0], evs[0].AgentID)
	}
	if evs[1].AgentID != "host-a" || evs[1].Op != event.OpConnect || evs[1].Object.DstIP != "172.16.0.129" {
		t.Errorf("host-a event = %s (agent %s)", evs[1], evs[1].AgentID)
	}
}

func TestAuditdHexLookalikesSurvive(t *testing.T) {
	// Interpreted logs print unquoted values; names that happen to parse as
	// hex (dd, beef) must not be decoded into garbage bytes. Genuinely
	// hex-encoded values (printable text with a space) still decode.
	lines := `
type=SYSCALL msg=audit(1582794090.000:60): arch=x86_64 syscall=execve success=yes exit=0 pid=30 uid=root comm=dd exe=/usr/bin/dd
type=EXECVE msg=audit(1582794090.000:60): argc=2 a0=dd a1=69663D2F6465762F736461206F663D78
type=PATH msg=audit(1582794090.000:60): item=0 name=/usr/bin/dd nametype=NORMAL
type=EOE msg=audit(1582794090.000:60):`
	evs, errs := decodeAll(t, "auditd", Options{}, lines)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(evs) != 1 {
		t.Fatalf("decoded %d events, want 1", len(evs))
	}
	if evs[0].Subject.ExeName != "dd" {
		t.Errorf("exe name = %q, want dd (hex decode must not fire on printable lookalikes)", evs[0].Subject.ExeName)
	}
	// a1 is a genuine hex encoding (the space forces it): it must decode;
	// a0's "dd" must stay verbatim.
	if evs[0].Subject.CmdLine != "dd if=/dev/sda of=x" {
		t.Errorf("cmdline = %q, want %q", evs[0].Subject.CmdLine, "dd if=/dev/sda of=x")
	}
}

func TestAuditdOpenForWriteFlags(t *testing.T) {
	// Overwriting an existing file: openat with O_WRONLY|O_TRUNC (0x241
	// includes O_CREAT; 0x201 does not) leaves PATH nametype=NORMAL, so the
	// access mode must drive the write classification.
	lines := `
type=SYSCALL msg=audit(1582794095.000:70): arch=c000003e syscall=257 success=yes exit=3 a0=ffffff9c a1=7ffd a2=201 a3=1b6 pid=40 uid=0 comm="mysqldump" exe="/usr/bin/mysqldump"
type=PATH msg=audit(1582794095.000:70): item=0 name="/var/tmp/dump.sql" nametype=NORMAL
type=EOE msg=audit(1582794095.000:70):
type=SYSCALL msg=audit(1582794096.000:71): arch=c000003e syscall=2 success=yes exit=3 a0=7ffd a1=0 a2=0 pid=41 uid=0 comm="cat" exe="/usr/bin/cat"
type=PATH msg=audit(1582794096.000:71): item=0 name="/var/tmp/dump.sql" nametype=NORMAL
type=EOE msg=audit(1582794096.000:71):
type=SYSCALL msg=audit(1582794097.000:72): arch=c000003e syscall=2 success=yes exit=3 a0=7ffd a1=2 a2=0 pid=42 uid=0 comm="ed" exe="/usr/bin/ed"
type=PATH msg=audit(1582794097.000:72): item=0 name="/var/tmp/dump.sql" nametype=NORMAL
type=EOE msg=audit(1582794097.000:72):`
	evs, errs := decodeAll(t, "auditd", Options{}, lines)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(evs) != 3 {
		t.Fatalf("decoded %d events, want 3", len(evs))
	}
	if evs[0].Op != event.OpWrite {
		t.Errorf("openat O_WRONLY|O_TRUNC of existing file → %v, want write", evs[0].Op)
	}
	if evs[1].Op != event.OpRead {
		t.Errorf("open O_RDONLY → %v, want read", evs[1].Op)
	}
	if evs[2].Op != event.OpWrite {
		t.Errorf("open O_RDWR → %v, want write", evs[2].Op)
	}
}

func TestAuditdSockaddrIPv6(t *testing.T) {
	// AF_INET6 (0x0a), port 443, ::1.
	lines := `
type=SYSCALL msg=audit(1582794070.000:700): arch=c000003e syscall=42 success=yes exit=0 pid=5 uid=0 comm="curl" exe="/usr/bin/curl"
type=SOCKADDR msg=audit(1582794070.000:700): saddr=0A0001BB00000000000000000000000000000000000000010000000000000000
type=EOE msg=audit(1582794070.000:700):`
	evs, errs := decodeAll(t, "auditd", Options{}, lines)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(evs) != 1 {
		t.Fatalf("decoded %d events, want 1", len(evs))
	}
	if evs[0].Object.DstIP != "0:0:0:0:0:0:0:1" || evs[0].Object.DstPort != 443 {
		t.Errorf("ipv6 saddr = %+v", evs[0].Object)
	}
}
