// The "auditd" codec: the Linux kernel audit framework's native line format.
// One logical audit event spans several records sharing the same event ID —
// the "audit(1582794000.123:101)" timestamp:serial stamp — e.g. a SYSCALL
// record plus CWD, PATH, EXECVE, and SOCKADDR records, terminated by EOE.
// The decoder reassembles record groups by event ID (tolerating interleaved
// groups), then projects each completed group onto the ⟨subject, operation,
// object⟩ model:
//
//	execve/execveat            proc execute file   (PATH item 0, EXECVE argv)
//	fork/vfork/clone/clone3    proc start   proc   (child PID from exit=)
//	exit/exit_group            proc end     itself
//	open/openat/creat         proc read    file   (write when PATH nametype=CREATE)
//	read/pread64/readv         proc read    file   (when a PATH record names it)
//	write/pwrite64/writev      proc write   file   (when a PATH record names it)
//	unlink/unlinkat            proc delete  file   (PATH nametype=DELETE)
//	rename/renameat/renameat2  proc rename  file   (PATH nametype=CREATE, the new name)
//	connect                    proc connect ip     (SOCKADDR)
//	accept/accept4             proc accept  ip     (SOCKADDR)
//	sendto/sendmsg             proc write   ip     (SOCKADDR, amount from exit=)
//	recvfrom/recvmsg           proc read    ip     (SOCKADDR, amount from exit=)
//
// Both raw logs (numeric x86-64 syscall= values, hex saddr=) and
// `ausearch -i` interpreted logs (symbolic syscall names, braced saddr,
// date-formatted audit stamps) decode. Records for failed syscalls (success=no) and audit record types
// outside the table (LOGIN, CONFIG_CHANGE, ...) are skipped without error.
// An optional leading "node=host " (audisp remote logging) sets the event's
// AgentID; otherwise Options.DefaultAgent applies.
package codec

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"time"
	"unicode/utf8"

	"saql/internal/event"
)

func init() {
	Register("auditd", func(opts Options) Decoder { return newAuditdDecoder(opts) })
}

// maxPendingGroups bounds the reassembly buffer. auditd emits a group's
// records back to back, so anything still open this many groups later is
// truncated; the oldest group is force-completed (and emits an error from
// Decode if it cannot build an event).
const maxPendingGroups = 64

type auditdDecoder struct {
	opts    Options
	pending map[string]*auditGroup
	order   []string // group keys in first-seen order
	tab     internTable
}

func newAuditdDecoder(opts Options) *auditdDecoder {
	return &auditdDecoder{opts: opts, tab: internTable{stats: opts.Intern}, pending: map[string]*auditGroup{}}
}

// auditGroup accumulates the records of one audit event ID.
type auditGroup struct {
	key     string
	time    time.Time
	node    string
	syscall map[string]string // fields of the SYSCALL record
	paths   []auditPath
	sockHex string // raw saddr= payload
	execArg []string
	cwd     string
}

type auditPath struct {
	name     string
	nametype string
	item     int
}

func (d *auditdDecoder) Decode(line []byte) ([]*event.Event, error) {
	s := strings.TrimRight(string(line), "\r")
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}

	var node string
	if rest, ok := strings.CutPrefix(s, "node="); ok {
		i := strings.IndexByte(rest, ' ')
		if i < 0 {
			return nil, fmt.Errorf("auditd: record is only a node= field")
		}
		node, s = rest[:i], rest[i+1:]
	}

	rtype, stamp, body, err := splitAuditRecord(s)
	if err != nil {
		return nil, err
	}
	ts, key, err := parseAuditStamp(stamp)
	if err != nil {
		return nil, err
	}
	// Audit serials are per-host counters, so in an aggregated multi-host
	// log (audisp remote, node= prefixes) the same stamp can name different
	// events on different hosts: the node is part of the group identity.
	if node != "" {
		key = node + "\x00" + key
	}

	g := d.pending[key]
	if g == nil {
		if rtype == "EOE" {
			return nil, nil // trailing EOE for a group already emitted
		}
		g = &auditGroup{key: key, time: ts, node: node}
		d.pending[key] = g
		d.order = append(d.order, key)
	}
	if node != "" {
		g.node = node
	}

	switch rtype {
	case "SYSCALL":
		g.syscall = parseAuditFields(body)
	case "PATH":
		f := parseAuditFields(body)
		item, _ := strconv.Atoi(f["item"])
		g.paths = append(g.paths, auditPath{name: auditString(f["name"]), nametype: f["nametype"], item: item})
	case "SOCKADDR":
		f := parseAuditFields(body)
		g.sockHex = f["saddr"]
	case "EXECVE":
		f := parseAuditFields(body)
		argc, _ := strconv.Atoi(f["argc"])
		for i := 0; i < argc; i++ {
			if a, ok := f["a"+strconv.Itoa(i)]; ok {
				g.execArg = append(g.execArg, auditString(a))
			}
		}
	case "CWD":
		f := parseAuditFields(body)
		g.cwd = auditString(f["cwd"])
	case "EOE", "PROCTITLE":
		// PROCTITLE is the last record auditd writes for a group; EOE is the
		// explicit kernel terminator. Either completes the group.
		return d.complete(key)
	default:
		// LOGIN, CONFIG_CHANGE, USER_*, ...: not part of the SVO projection.
	}

	// Evict the oldest group if the buffer is full: its terminator is lost
	// (truncated capture), so force-complete it with what arrived.
	if len(d.pending) > maxPendingGroups {
		oldest := d.order[0]
		evs, err := d.complete(oldest)
		if err != nil {
			return evs, fmt.Errorf("auditd: truncated record group %s: %w", oldest, err)
		}
		return evs, nil
	}
	return nil, nil
}

// Flush force-completes every buffered group in arrival order, dropping the
// ones too incomplete to build an event.
func (d *auditdDecoder) Flush() []*event.Event {
	keys := append([]string(nil), d.order...) // complete() mutates d.order
	var out []*event.Event
	for _, key := range keys {
		if _, ok := d.pending[key]; !ok {
			continue
		}
		evs, _ := d.complete(key)
		out = append(out, evs...)
	}
	return out
}

// complete removes the group and builds its event.
func (d *auditdDecoder) complete(key string) ([]*event.Event, error) {
	g, ok := d.pending[key]
	if !ok {
		return nil, nil
	}
	delete(d.pending, key)
	for i, k := range d.order {
		if k == key {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	return d.buildEvent(g)
}

func (d *auditdDecoder) buildEvent(g *auditGroup) ([]*event.Event, error) {
	if g.syscall == nil {
		return nil, nil // PATH/SOCKADDR records without their SYSCALL: drop
	}
	sc := g.syscall
	if sc["success"] == "no" {
		return nil, nil
	}
	name, err := syscallName(sc["syscall"])
	if err != nil {
		return nil, fmt.Errorf("auditd: group %s: %w", g.key, err)
	}

	pid64, err := strconv.ParseInt(sc["pid"], 10, 32)
	if err != nil {
		return nil, fmt.Errorf("auditd: group %s: bad pid %q", g.key, sc["pid"])
	}
	exe := auditString(sc["exe"])
	comm := auditString(sc["comm"])
	subjName := baseName(exe)
	if subjName == "" {
		subjName = comm
	}
	if subjName == "" {
		return nil, fmt.Errorf("auditd: group %s: no exe/comm in SYSCALL record", g.key)
	}
	subj := event.Entity{Type: event.EntityProcess, ExeName: subjName, PID: int32(pid64), User: sc["uid"]}

	exit, _ := strconv.ParseFloat(sc["exit"], 64)
	agent := g.node
	if agent == "" {
		agent = d.opts.DefaultAgent
	}
	if agent == "" {
		agent = "auditd"
	}
	ev := &event.Event{Time: g.time, AgentID: agent, Subject: subj}

	fileObj := func(p auditPath) event.Entity {
		return event.Entity{Type: event.EntityFile, Path: g.absPath(p.name)}
	}

	switch name {
	case "execve", "execveat":
		p, ok := g.pathItem(0)
		if !ok {
			return nil, fmt.Errorf("auditd: group %s: execve without PATH record", g.key)
		}
		ev.Op = event.OpExecute
		ev.Object = fileObj(p)
		ev.Subject.CmdLine = strings.Join(g.execArg, " ")
	case "fork", "vfork", "clone", "clone3":
		if exit <= 0 {
			return nil, fmt.Errorf("auditd: group %s: %s without child pid in exit=", g.key, name)
		}
		ev.Op = event.OpStart
		// The child starts as a copy of the parent image; a subsequent
		// execve group reports the program it becomes.
		ev.Object = event.Entity{Type: event.EntityProcess, ExeName: subjName, PID: int32(exit)}
	case "exit", "exit_group":
		ev.Op = event.OpEnd
		ev.Object = subj
	case "open", "openat", "openat2", "creat":
		p, ok := g.lastPath()
		if !ok {
			return nil, fmt.Errorf("auditd: group %s: %s without PATH record", g.key, name)
		}
		ev.Op = event.OpRead
		// Write when the file is created (PATH nametype) or opened with a
		// writable access mode (an overwrite of an existing file leaves
		// nametype=NORMAL; the flags register is the only signal).
		if name == "creat" || g.hasNametype("CREATE") || openForWrite(name, sc) {
			ev.Op = event.OpWrite
			if cp, ok := g.pathNametype("CREATE"); ok {
				p = cp
			}
		}
		ev.Object = fileObj(p)
	case "read", "pread64", "readv", "write", "pwrite64", "writev":
		p, ok := g.lastPath()
		if !ok {
			// fd-based I/O with no PATH record attached: no object to name.
			return nil, fmt.Errorf("auditd: group %s: %s without PATH record", g.key, name)
		}
		ev.Op = event.OpRead
		if strings.HasPrefix(name, "write") || strings.HasPrefix(name, "pwrite") {
			ev.Op = event.OpWrite
		}
		ev.Object = fileObj(p)
		ev.Amount = exit
	case "unlink", "unlinkat":
		p, ok := g.pathNametype("DELETE")
		if !ok {
			if p, ok = g.lastPath(); !ok {
				return nil, fmt.Errorf("auditd: group %s: %s without PATH record", g.key, name)
			}
		}
		ev.Op = event.OpDelete
		ev.Object = fileObj(p)
	case "rename", "renameat", "renameat2":
		p, ok := g.pathNametype("CREATE")
		if !ok {
			if p, ok = g.lastPath(); !ok {
				return nil, fmt.Errorf("auditd: group %s: %s without PATH record", g.key, name)
			}
		}
		ev.Op = event.OpRename
		ev.Object = fileObj(p)
	case "connect", "accept", "accept4", "sendto", "sendmsg", "recvfrom", "recvmsg":
		conn, err := parseSockaddr(g.sockHex)
		if err != nil {
			return nil, fmt.Errorf("auditd: group %s: %s: %w", g.key, name, err)
		}
		switch name {
		case "connect":
			ev.Op = event.OpConnect
		case "accept", "accept4":
			ev.Op = event.OpAccept
		case "sendto", "sendmsg":
			ev.Op = event.OpWrite
			ev.Amount = exit
		default:
			ev.Op = event.OpRead
			ev.Amount = exit
		}
		ev.Object = conn
	default:
		return nil, nil // syscall outside the event taxonomy (getpid, mmap, ...)
	}
	d.tab.intern(ev)
	return []*event.Event{ev}, nil
}

// ---------------------------------------------------------------------------
// Group helpers
// ---------------------------------------------------------------------------

func (g *auditGroup) pathItem(item int) (auditPath, bool) {
	for _, p := range g.paths {
		if p.item == item {
			return p, true
		}
	}
	return auditPath{}, false
}

func (g *auditGroup) pathNametype(nt string) (auditPath, bool) {
	for _, p := range g.paths {
		if p.nametype == nt {
			return p, true
		}
	}
	return auditPath{}, false
}

func (g *auditGroup) hasNametype(nt string) bool {
	_, ok := g.pathNametype(nt)
	return ok
}

// lastPath returns the highest-item PATH record: for open/openat the opened
// file follows its parent directory record.
func (g *auditGroup) lastPath() (auditPath, bool) {
	if len(g.paths) == 0 {
		return auditPath{}, false
	}
	best := g.paths[0]
	for _, p := range g.paths[1:] {
		if p.item >= best.item {
			best = p
		}
	}
	return best, true
}

// absPath resolves a relative PATH name against the group's CWD record.
func (g *auditGroup) absPath(name string) string {
	if name == "" || name[0] == '/' || g.cwd == "" {
		return name
	}
	return strings.TrimSuffix(g.cwd, "/") + "/" + name
}

// ---------------------------------------------------------------------------
// Record-level parsing
// ---------------------------------------------------------------------------

// splitAuditRecord splits `type=SYSCALL msg=audit(TS:SERIAL): k=v ...` into
// the record type, the audit stamp, and the field body.
func splitAuditRecord(s string) (rtype, stamp, body string, err error) {
	rest, ok := strings.CutPrefix(s, "type=")
	if !ok {
		return "", "", "", fmt.Errorf("auditd: line does not start with type=")
	}
	i := strings.IndexByte(rest, ' ')
	if i < 0 {
		return "", "", "", fmt.Errorf("auditd: record has no msg field")
	}
	rtype, rest = rest[:i], strings.TrimLeft(rest[i+1:], " ")
	msg, ok := strings.CutPrefix(rest, "msg=audit(")
	if !ok {
		return "", "", "", fmt.Errorf("auditd: record has no msg=audit(...) stamp")
	}
	j := strings.IndexByte(msg, ')')
	if j < 0 {
		return "", "", "", fmt.Errorf("auditd: unterminated audit stamp")
	}
	stamp = msg[:j]
	body = strings.TrimPrefix(msg[j+1:], ":")
	return rtype, stamp, strings.TrimSpace(body), nil
}

// parseAuditStamp splits an audit stamp into the event time and the
// reassembly key (the full stamp: serials can wrap across long captures, so
// the timestamp stays part of the identity). Raw logs use Unix seconds
// ("1582794000.123:101"); `ausearch -i` rewrites the stamp to a date form
// ("02/27/2020 09:00:00.123:101", interpreted as UTC here), so the serial
// is everything after the LAST colon.
func parseAuditStamp(stamp string) (time.Time, string, error) {
	i := strings.LastIndexByte(stamp, ':')
	if i < 0 {
		return time.Time{}, "", fmt.Errorf("auditd: bad audit stamp %q", stamp)
	}
	tsPart := stamp[:i]
	if strings.ContainsRune(tsPart, '/') {
		for _, layout := range []string{"01/02/2006 15:04:05.000", "01/02/2006 15:04:05"} {
			if t, err := time.Parse(layout, tsPart); err == nil {
				return t.UTC(), stamp, nil
			}
		}
		return time.Time{}, "", fmt.Errorf("auditd: bad interpreted audit timestamp %q", tsPart)
	}
	secs, err := strconv.ParseFloat(tsPart, 64)
	if err != nil {
		return time.Time{}, "", fmt.Errorf("auditd: bad audit timestamp %q", tsPart)
	}
	return unixFloat(secs), stamp, nil
}

// parseAuditFields splits a record body into key=value pairs. Values may be
// bare (pid=4120), double-quoted (exe="/usr/bin/bash"), braced interpreted
// forms (saddr={ fam=inet laddr=1.2.3.4 lport=443 }), or unquoted hex.
func parseAuditFields(body string) map[string]string {
	out := map[string]string{}
	for i := 0; i < len(body); {
		for i < len(body) && body[i] == ' ' {
			i++
		}
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			break
		}
		key := body[i : i+eq]
		i += eq + 1
		var val string
		switch {
		case i < len(body) && body[i] == '"':
			j := strings.IndexByte(body[i+1:], '"')
			if j < 0 {
				val = body[i:]
				i = len(body)
			} else {
				val = body[i : i+j+2]
				i += j + 2
			}
		case i < len(body) && body[i] == '{':
			j := strings.IndexByte(body[i:], '}')
			if j < 0 {
				val = body[i:]
				i = len(body)
			} else {
				val = body[i : i+j+1]
				i += j + 1
			}
		default:
			j := strings.IndexByte(body[i:], ' ')
			if j < 0 {
				val = body[i:]
				i = len(body)
			} else {
				val = body[i : i+j]
				i += j
			}
		}
		if strings.ContainsAny(key, " \t") {
			continue // resync after an unparseable run
		}
		out[key] = val
	}
	return out
}

// auditString interprets one audit field value: double-quoted strings are
// unquoted, unquoted hex runs are decoded (the kernel hex-encodes values
// containing spaces, quotes, or non-ASCII), "(null)" becomes empty.
//
// The hex decode only applies when the result is printable text (spaces and
// tabs allowed): the kernel encodes because of a space or quote far more
// often than because of control bytes, and the guard keeps legitimate
// hex-looking names in interpreted logs — comm=dd, files named "beef" —
// from being destroyed (they decode to non-printable bytes and are kept
// verbatim).
func auditString(v string) string {
	if v == "" || v == "(null)" || v == "null" {
		return ""
	}
	if v[0] == '"' {
		return strings.TrimSuffix(v[1:], `"`)
	}
	if len(v) >= 2 {
		if b, err := hex.DecodeString(v); err == nil && isPrintableText(b) {
			return string(b)
		}
	}
	return v
}

func isPrintableText(b []byte) bool {
	if len(b) == 0 || !utf8.Valid(b) {
		return false
	}
	for _, r := range string(b) {
		if (r < 0x20 && r != '\t') || r == 0x7f {
			return false
		}
	}
	return true
}

// parseSockaddr decodes a SOCKADDR saddr= value: either the kernel's raw hex
// sockaddr (family uint16 LE, then per-family layout) or ausearch's
// interpreted braced form `{ fam=inet laddr=172.16.0.129 lport=443 }`.
func parseSockaddr(saddr string) (event.Entity, error) {
	if saddr == "" {
		return event.Entity{}, fmt.Errorf("no SOCKADDR record")
	}
	conn := event.Entity{Type: event.EntityNetConn, Protocol: "tcp"}
	if saddr[0] == '{' {
		f := parseAuditFields(strings.Trim(saddr, "{} "))
		ip := f["laddr"]
		if ip == "" {
			ip = f["addr"]
		}
		port, _ := strconv.Atoi(f["lport"])
		if ip == "" {
			return event.Entity{}, fmt.Errorf("interpreted saddr %q has no address", saddr)
		}
		conn.DstIP, conn.DstPort = ip, int32(port)
		return conn, nil
	}
	raw, err := hex.DecodeString(saddr)
	if err != nil || len(raw) < 2 {
		return event.Entity{}, fmt.Errorf("bad saddr %q", saddr)
	}
	family := int(raw[0]) | int(raw[1])<<8
	switch family {
	case 2: // AF_INET: sa_family, port BE, 4-byte address
		if len(raw) < 8 {
			return event.Entity{}, fmt.Errorf("short AF_INET saddr %q", saddr)
		}
		conn.DstPort = int32(raw[2])<<8 | int32(raw[3])
		conn.DstIP = fmt.Sprintf("%d.%d.%d.%d", raw[4], raw[5], raw[6], raw[7])
	case 10: // AF_INET6: sa_family, port BE, flowinfo, 16-byte address
		if len(raw) < 24 {
			return event.Entity{}, fmt.Errorf("short AF_INET6 saddr %q", saddr)
		}
		conn.DstPort = int32(raw[2])<<8 | int32(raw[3])
		parts := make([]string, 8)
		for i := 0; i < 8; i++ {
			parts[i] = fmt.Sprintf("%x", int(raw[8+2*i])<<8|int(raw[9+2*i]))
		}
		conn.DstIP = strings.Join(parts, ":")
	default:
		return event.Entity{}, fmt.Errorf("unsupported saddr family %d", family)
	}
	return conn, nil
}

// openForWrite inspects the open/openat flags register (a1 / a2, raw hex)
// for a writable access mode: O_WRONLY (1) or O_RDWR (2). Interpreted logs
// may rewrite the registers; an unparseable register reports false and the
// PATH-nametype heuristic stands alone.
func openForWrite(name string, sc map[string]string) bool {
	var reg string
	switch name {
	case "open":
		reg = sc["a1"]
	case "openat":
		reg = sc["a2"]
	default:
		return false // openat2 passes flags in a struct, not a register
	}
	f, err := strconv.ParseUint(reg, 16, 64)
	if err != nil {
		return false
	}
	return f&0b11 == 1 || f&0b11 == 2
}

// syscallName resolves a syscall= value: symbolic names (interpreted logs)
// pass through, numeric values resolve via the x86-64 table.
func syscallName(v string) (string, error) {
	if v == "" {
		return "", fmt.Errorf("SYSCALL record has no syscall field")
	}
	if v[0] < '0' || v[0] > '9' {
		return strings.ToLower(v), nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return "", fmt.Errorf("bad syscall %q", v)
	}
	if name, ok := sysX86_64[n]; ok {
		return name, nil
	}
	return fmt.Sprintf("sys_%d", n), nil
}

// sysX86_64 maps the x86-64 syscall numbers the event taxonomy covers.
var sysX86_64 = map[int]string{
	0:   "read",
	1:   "write",
	2:   "open",
	17:  "pread64",
	18:  "pwrite64",
	19:  "readv",
	20:  "writev",
	42:  "connect",
	43:  "accept",
	44:  "sendto",
	45:  "recvfrom",
	46:  "sendmsg",
	47:  "recvmsg",
	56:  "clone",
	57:  "fork",
	58:  "vfork",
	59:  "execve",
	60:  "exit",
	82:  "rename",
	85:  "creat",
	87:  "unlink",
	231: "exit_group",
	257: "openat",
	263: "unlinkat",
	264: "renameat",
	288: "accept4",
	316: "renameat2",
	322: "execveat",
	435: "clone3",
	437: "openat2",
}
