package codec

import (
	"strings"
	"testing"

	"saql/internal/event"
)

func TestSysmonEventMapping(t *testing.T) {
	lines := `
{"@timestamp":"2020-02-27T09:00:00.000Z","host":{"name":"ws-victim"},"winlog":{"event_id":1},"process":{"pid":4120,"executable":"C:\\Windows\\System32\\wscript.exe","command_line":"wscript payload.vbs","parent":{"pid":2001,"executable":"C:\\Program Files\\Microsoft Office\\excel.exe"}},"user":{"name":"alice"}}
{"@timestamp":"2020-02-27T09:00:01Z","host":{"name":"ws-victim"},"winlog":{"event_id":3},"process":{"pid":4120,"name":"wscript.exe"},"source":{"ip":"10.0.0.5","port":49233},"destination":{"ip":"172.16.0.129","port":443},"network":{"transport":"tcp","bytes":900}}
{"@timestamp":"2020-02-27T09:00:02Z","host":{"name":"ws-victim"},"winlog":{"event_id":11},"process":{"pid":4120,"name":"wscript.exe"},"file":{"path":"C:\\Users\\alice\\AppData\\sbblv.exe"}}
{"@timestamp":"2020-02-27T09:00:03Z","host":{"name":"ws-victim"},"winlog":{"event_id":23},"process":{"pid":4120,"name":"wscript.exe"},"file":{"path":"C:\\Users\\alice\\invoice.xlsm"}}
{"@timestamp":"2020-02-27T09:00:04Z","host":{"name":"ws-victim"},"winlog":{"event_id":5},"process":{"pid":4120,"name":"wscript.exe"}}`
	evs, errs := decodeAll(t, "sysmon", Options{}, lines)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(evs) != 5 {
		t.Fatalf("decoded %d events, want 5", len(evs))
	}

	// 1: parent starts child; names fall back to executable base names.
	if evs[0].Op != event.OpStart || evs[0].Subject.ExeName != "excel.exe" || evs[0].Object.ExeName != "wscript.exe" {
		t.Errorf("event_id 1 → %s", evs[0])
	}
	if evs[0].Object.PID != 4120 || evs[0].Subject.PID != 2001 {
		t.Errorf("event_id 1 pids: subj=%d obj=%d", evs[0].Subject.PID, evs[0].Object.PID)
	}
	if evs[0].Object.User != "alice" || evs[0].Object.CmdLine != "wscript payload.vbs" {
		t.Errorf("event_id 1 object attrs: %+v", evs[0].Object)
	}

	// 3: connect with full 4-tuple and byte count.
	c := evs[1].Object
	if evs[1].Op != event.OpConnect || c.SrcIP != "10.0.0.5" || c.DstIP != "172.16.0.129" || c.DstPort != 443 {
		t.Errorf("event_id 3 → %s", evs[1])
	}
	if evs[1].Amount != 900 {
		t.Errorf("event_id 3 amount = %v", evs[1].Amount)
	}

	// 11 / 23 / 5.
	if evs[2].Op != event.OpWrite || evs[2].Object.Path != `C:\Users\alice\AppData\sbblv.exe` {
		t.Errorf("event_id 11 → %s", evs[2])
	}
	if evs[3].Op != event.OpDelete {
		t.Errorf("event_id 23 → %s", evs[3])
	}
	if evs[4].Op != event.OpEnd || evs[4].Object.ExeName != "wscript.exe" {
		t.Errorf("event_id 5 → %s", evs[4])
	}
}

func TestSysmonDottedKeysAndActionFallback(t *testing.T) {
	// winlogbeat sometimes flattens to dotted keys and drops the numeric id.
	lines := `
{"@timestamp":"2020-02-27T09:00:00Z","host.name":"ws-2","event.action":"Process Create (rule: ProcessCreate)","process.pid":77,"process.name":"cmd.exe","process.parent.pid":70,"process.parent.name":"explorer.exe"}
{"@timestamp":"2020-02-27T09:00:01Z","host.name":"ws-2","event.code":"3","process.pid":77,"process.name":"cmd.exe","destination.ip":"8.8.8.8","destination.port":"53","network.transport":"udp"}
{"@timestamp":"2020-02-27T09:00:02Z","host.name":"ws-2","event.action":"network-connection","process.pid":77,"process.name":"cmd.exe","destination.ip":"1.1.1.1"}`
	evs, errs := decodeAll(t, "sysmon", Options{}, lines)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(evs) != 3 {
		t.Fatalf("decoded %d events, want 3", len(evs))
	}
	if evs[0].Subject.ExeName != "explorer.exe" || evs[0].Object.ExeName != "cmd.exe" {
		t.Errorf("dotted ProcessCreate → %s", evs[0])
	}
	if evs[1].Object.DstPort != 53 || evs[1].Object.Protocol != "udp" {
		t.Errorf("event.code string → %s", evs[1])
	}
	if evs[2].Op != event.OpConnect || evs[2].Object.DstIP != "1.1.1.1" {
		t.Errorf("action fallback → %s", evs[2])
	}
}

func TestSysmonUnmappedAndMalformed(t *testing.T) {
	dec, _ := New("sysmon", Options{})

	// Unmapped event ids and records with no id are skipped silently.
	for _, line := range []string{
		`{"@timestamp":"2020-02-27T09:00:00Z","winlog":{"event_id":7},"process":{"pid":1,"name":"a.exe"}}`, // ImageLoad
		`{"@timestamp":"2020-02-27T09:00:00Z","message":"heartbeat"}`,
		`{}`,
	} {
		evs, err := dec.Decode([]byte(line))
		if err != nil || len(evs) != 0 {
			t.Errorf("Decode(%q) = %d events, err %v; want silent skip", line, len(evs), err)
		}
	}

	// Structurally broken records are errors.
	for _, line := range []string{
		`{"@timestamp":"2020-02-27T09:00:00Z"`,                                                              // truncated JSON
		`{"winlog":{"event_id":1},"process":{"pid":1,"name":"a.exe"},"@timestamp":"bad"}`,                   // bad timestamp
		`{"winlog":{"event_id":1},"process":{"pid":1,"name":"a.exe"}}`,                                      // no timestamp
		`{"@timestamp":"2020-02-27T09:00:00Z","winlog":{"event_id":1},"process":{"pid":4}}`,                 // no process name
		`{"@timestamp":"2020-02-27T09:00:00Z","winlog":{"event_id":1},"process":{"pid":4,"name":"x.exe"}}`,  // no parent
		`{"@timestamp":"2020-02-27T09:00:00Z","winlog":{"event_id":3},"process":{"pid":4,"name":"x.exe"}}`,  // no destination
		`{"@timestamp":"2020-02-27T09:00:00Z","winlog":{"event_id":11},"process":{"pid":4,"name":"x.exe"}}`, // no file path
	} {
		if _, err := dec.Decode([]byte(line)); err == nil {
			t.Errorf("Decode(%q) should fail", line)
		} else if !strings.HasPrefix(err.Error(), "sysmon:") {
			t.Errorf("error %v not attributed to codec", err)
		}
	}
}
