package codec

import (
	"fmt"
	"testing"
	"unsafe"

	"saql/internal/event"
)

func strData(s string) uintptr {
	return uintptr(unsafe.Pointer(unsafe.StringData(s)))
}

func TestInternTableDeduplicates(t *testing.T) {
	var tab internTable
	a := tab.str(string([]byte("svchost.exe")))
	b := tab.str(string([]byte("svchost.exe")))
	if a != b {
		t.Fatalf("intern changed value: %q vs %q", a, b)
	}
	if strData(a) != strData(b) {
		t.Fatalf("equal strings not deduplicated to one backing array")
	}
}

func TestInternTableBounds(t *testing.T) {
	var tab internTable
	if got := tab.str(""); got != "" {
		t.Fatalf("empty string: got %q", got)
	}
	long := string(make([]byte, internMaxLen+1))
	if got := tab.str(long); got != long {
		t.Fatalf("over-length string mangled")
	}
	if len(tab.m) != 0 {
		t.Fatalf("over-length string cached (%d entries)", len(tab.m))
	}

	// Fill to capacity; the table must stop growing but keep serving hits.
	for i := 0; i < internMaxEntries+100; i++ {
		tab.str(fmt.Sprintf("value-%d", i))
	}
	if len(tab.m) > internMaxEntries {
		t.Fatalf("table exceeded cap: %d > %d", len(tab.m), internMaxEntries)
	}
	first := tab.str(string([]byte("value-0")))
	if strData(first) != strData(tab.str("value-0")) {
		t.Fatalf("full table stopped deduplicating existing entries")
	}
}

// TestNDJSONDecodeInterns proves the ndjson decoder's repeated attribute
// strings share one backing allocation across lines, while distinct values
// stay distinct.
func TestNDJSONDecodeInterns(t *testing.T) {
	d, err := New("ndjson", Options{})
	if err != nil {
		t.Fatal(err)
	}
	line := `{"ts":"2020-02-27T09:00:00Z","agent":"db-1","subject":{"exe":"osql.exe","pid":%d,"user":"svc"},"op":"connect","object":{"type":"ip","dst_ip":"10.0.0.9","dst_port":1433,"proto":"tcp"}}`
	var evs []*event.Event
	for pid := 1; pid <= 3; pid++ {
		out, err := d.Decode([]byte(fmt.Sprintf(line, pid)))
		if err != nil {
			t.Fatal(err)
		}
		evs = append(evs, out...)
	}
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for _, pick := range []func(*event.Event) string{
		func(e *event.Event) string { return e.AgentID },
		func(e *event.Event) string { return e.Subject.ExeName },
		func(e *event.Event) string { return e.Subject.User },
		func(e *event.Event) string { return e.Object.DstIP },
		func(e *event.Event) string { return e.Object.Protocol },
	} {
		if strData(pick(evs[0])) != strData(pick(evs[1])) || strData(pick(evs[1])) != strData(pick(evs[2])) {
			t.Fatalf("attribute %q not interned across events", pick(evs[0]))
		}
	}
	if evs[0].Subject.PID == evs[1].Subject.PID {
		t.Fatalf("distinct events collapsed")
	}
}
