package codec

import (
	"strings"
	"testing"
	"time"

	"saql/internal/event"
)

func decodeAll(t *testing.T, format string, opts Options, lines string) ([]*event.Event, []error) {
	t.Helper()
	dec, err := New(format, opts)
	if err != nil {
		t.Fatalf("New(%q): %v", format, err)
	}
	var evs []*event.Event
	var errs []error
	for _, line := range strings.Split(lines, "\n") {
		out, err := dec.Decode([]byte(line))
		if err != nil {
			errs = append(errs, err)
		}
		evs = append(evs, out...)
	}
	evs = append(evs, dec.Flush()...)
	return evs, errs
}

func TestRegistryFormats(t *testing.T) {
	have := Formats()
	want := []string{"auditd", "ndjson", "sysmon"}
	if len(have) != len(want) {
		t.Fatalf("Formats() = %v, want %v", have, want)
	}
	for i := range want {
		if have[i] != want[i] {
			t.Fatalf("Formats() = %v, want %v", have, want)
		}
	}
	if _, err := New("syslog", Options{}); err == nil {
		t.Fatal("New(syslog) should fail")
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	lines := `
{"ts":"2020-02-27T09:00:00Z","agent":"db-1","subject":{"exe":"cmd.exe","pid":4120},"op":"start","object":{"type":"proc","exe":"osql.exe","pid":4121}}
{"ts":1582794001.5,"host":"db-1","subject":{"exe":"sqlservr.exe","pid":1680,"user":"svc"},"op":"write","object":{"type":"file","path":"C:\\db\\backup1.dmp"},"amount":52428800}
{"ts":"2020-02-27T09:00:03+00:00","subject":{"exe":"sbblv.exe","pid":5200},"op":"send","object":{"type":"ip","src_ip":"10.10.0.5","src_port":49233,"dst_ip":"172.16.0.129","dst_port":443,"proto":"udp"},"amount":1500}`
	evs, errs := decodeAll(t, "ndjson", Options{DefaultAgent: "fallback-host"}, lines)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(evs) != 3 {
		t.Fatalf("decoded %d events, want 3", len(evs))
	}

	if got := evs[0].String(); !strings.Contains(got, "proc(cmd.exe pid=4120) start proc(osql.exe pid=4121)") {
		t.Errorf("event 0 = %s", got)
	}
	if evs[0].AgentID != "db-1" {
		t.Errorf("agent = %q", evs[0].AgentID)
	}
	want := time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)
	if !evs[0].Time.Equal(want) {
		t.Errorf("time = %v, want %v", evs[0].Time, want)
	}

	// Unix-seconds timestamp with fraction, "host" alias.
	if !evs[1].Time.Equal(want.Add(1500 * time.Millisecond)) {
		t.Errorf("unix ts = %v", evs[1].Time)
	}
	if evs[1].Object.Type != event.EntityFile || evs[1].Object.Path != `C:\db\backup1.dmp` {
		t.Errorf("file object = %+v", evs[1].Object)
	}
	if evs[1].Amount != 52428800 {
		t.Errorf("amount = %v", evs[1].Amount)
	}
	if evs[1].Subject.User != "svc" {
		t.Errorf("user = %q", evs[1].Subject.User)
	}

	// Missing agent falls back to the option; "send" aliases write.
	if evs[2].AgentID != "fallback-host" {
		t.Errorf("fallback agent = %q", evs[2].AgentID)
	}
	if evs[2].Op != event.OpWrite {
		t.Errorf("op = %v", evs[2].Op)
	}
	conn := evs[2].Object
	if conn.DstIP != "172.16.0.129" || conn.DstPort != 443 || conn.SrcPort != 49233 || conn.Protocol != "udp" {
		t.Errorf("conn = %+v", conn)
	}
}

func TestNDJSONMalformedLines(t *testing.T) {
	cases := []string{
		`{not json`,
		`[1,2,3]`,
		`{"ts":"2020-02-27T09:00:00Z","op":"read","object":{"type":"file","path":"/x"}}`,                                     // no subject
		`{"ts":"2020-02-27T09:00:00Z","subject":{"exe":"a","pid":1},"op":"read"}`,                                            // no object
		`{"ts":"2020-02-27T09:00:00Z","subject":{"exe":"a","pid":1},"op":"frobnicate","object":{"type":"file","path":"/x"}}`, // bad op
		`{"ts":"2020-02-27T09:00:00Z","subject":{"exe":"a","pid":1},"op":"read","object":{"type":"widget","path":"/x"}}`,     // bad object type
		`{"ts":"not-a-time","subject":{"exe":"a","pid":1},"op":"read","object":{"type":"file","path":"/x"}}`,                 // bad ts
		`{"subject":{"exe":"a","pid":1},"op":"read","object":{"type":"file","path":"/x"}}`,                                   // missing ts
		`{"ts":"2020-02-27T09:00:00Z","subject":{"pid":1},"op":"read","object":{"type":"file","path":"/x"}}`,                 // no exe
		`{"ts":"2020-02-27T09:00:00Z","subject":{"exe":"a","pid":1},"op":"connect","object":{"type":"ip"}}`,                  // ip without addresses
	}
	dec, _ := New("ndjson", Options{})
	for _, line := range cases {
		evs, err := dec.Decode([]byte(line))
		if err == nil {
			t.Errorf("Decode(%q) should fail, got %d events", line, len(evs))
		}
		if len(evs) != 0 {
			t.Errorf("Decode(%q) emitted events alongside error", line)
		}
	}
	// The decoder stays usable after errors; blank lines are skipped.
	for _, line := range []string{"", "   ", "\t"} {
		if evs, err := dec.Decode([]byte(line)); err != nil || len(evs) != 0 {
			t.Errorf("blank line: evs=%d err=%v", len(evs), err)
		}
	}
	if evs, err := dec.Decode([]byte(`{"ts":1,"subject":{"exe":"a","pid":1},"op":"read","object":{"type":"file","path":"/x"},"amount":3}`)); err != nil || len(evs) != 1 {
		t.Fatalf("decoder unusable after errors: evs=%d err=%v", len(evs), err)
	}
}
