// Package lexer tokenizes SAQL query text. The token stream feeds the
// recursive-descent parser in internal/parser; together they replace the
// ANTLR 4 frontend the paper used.
package lexer

import "fmt"

// TokenType enumerates SAQL token kinds.
type TokenType uint8

// Token kinds. Keywords are distinguished from identifiers so the parser can
// rely on structure; entity types (proc/file/ip) and operations (read/write/
// start/...) stay ordinary identifiers because they are open sets resolved by
// the event model.
const (
	ILLEGAL TokenType = iota
	EOF

	IDENT  // p1, agentid, avg, proc, read
	NUMBER // 10, 10000, 0.5
	STRING // "%osql.exe"
	PARAM  // $threshold — a queryset parameter reference

	// Operators and punctuation.
	ASSIGN   // :=
	EQ       // =
	EQEQ     // ==
	NEQ      // !=
	LT       // <
	LE       // <=
	GT       // >
	GE       // >=
	ANDAND   // &&
	OROR     // ||
	NOT      // !
	PLUS     // +
	MINUS    // -
	STAR     // *
	SLASH    // /
	PERCENT  // %
	ARROW    // ->
	PIPE     // |
	HASH     // #
	LPAREN   // (
	RPAREN   // )
	LBRACKET // [
	RBRACKET // ]
	LBRACE   // {
	RBRACE   // }
	COMMA    // ,
	DOT      // .
	SEMI     // ;

	// Structural keywords.
	KwAs
	KwWith
	KwState
	KwGroup
	KwBy
	KwAlert
	KwReturn
	KwDistinct
	KwInvariant
	KwOffline
	KwOnline
	KwCluster
	KwUnion
	KwDiff
	KwIntersect
	KwIn
	KwEmptySet
)

var tokenNames = map[TokenType]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF", IDENT: "IDENT", NUMBER: "NUMBER", STRING: "STRING",
	PARAM:  "PARAM",
	ASSIGN: ":=", EQ: "=", EQEQ: "==", NEQ: "!=", LT: "<", LE: "<=", GT: ">", GE: ">=",
	ANDAND: "&&", OROR: "||", NOT: "!", PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/",
	PERCENT: "%", ARROW: "->", PIPE: "|", HASH: "#", LPAREN: "(", RPAREN: ")",
	LBRACKET: "[", RBRACKET: "]", LBRACE: "{", RBRACE: "}", COMMA: ",", DOT: ".", SEMI: ";",
	KwAs: "as", KwWith: "with", KwState: "state", KwGroup: "group", KwBy: "by",
	KwAlert: "alert", KwReturn: "return", KwDistinct: "distinct", KwInvariant: "invariant",
	KwOffline: "offline", KwOnline: "online", KwCluster: "cluster", KwUnion: "union",
	KwDiff: "diff", KwIntersect: "intersect", KwIn: "in", KwEmptySet: "empty_set",
}

// IsKeyword reports whether the token type is a reserved structural
// keyword (as, with, state, ...). Keyword tokens retain their source text,
// so contexts with no structural meaning — e.g. queryset query names — can
// treat them as plain words.
func (t TokenType) IsKeyword() bool { return t >= KwAs }

// String names the token type.
func (t TokenType) String() string {
	if s, ok := tokenNames[t]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", uint8(t))
}

var keywords = map[string]TokenType{
	"as": KwAs, "with": KwWith, "state": KwState, "group": KwGroup, "by": KwBy,
	"alert": KwAlert, "return": KwReturn, "distinct": KwDistinct,
	"invariant": KwInvariant, "offline": KwOffline, "online": KwOnline,
	"cluster": KwCluster, "union": KwUnion, "diff": KwDiff, "intersect": KwIntersect,
	"in": KwIn, "empty_set": KwEmptySet,
}

// Pos is a source position (1-based line and column). Off is the 0-based
// byte offset of the position in the source text, which lets consumers that
// need raw source spans (the queryset parser's parameter substitution) slice
// the input precisely.
type Pos struct {
	Line int
	Col  int
	Off  int
}

// String renders the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexed token with its source text and position.
type Token struct {
	Type  TokenType
	Text  string // raw text; for STRING, the unquoted contents
	Num   float64
	IsInt bool
	Pos   Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Type {
	case IDENT, NUMBER:
		return t.Text
	case STRING:
		return fmt.Sprintf("%q", t.Text)
	case PARAM:
		return "$" + t.Text
	default:
		return t.Type.String()
	}
}
