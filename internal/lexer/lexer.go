package lexer

import (
	"fmt"
	"strconv"
	"strings"
)

// Lexer scans SAQL source text into tokens. It skips whitespace and //
// line comments and tracks line/column positions for error reporting.
type Lexer struct {
	src  string
	pos  int // byte offset of next rune
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokenize scans the entire input, returning all tokens up to and including
// EOF, or the first lexical error.
func Tokenize(src string) ([]Token, error) {
	lx := New(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Type == EOF {
			return toks, nil
		}
	}
}

func (l *Lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekByteAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peekByteAt(1) == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next scans and returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	pos := Pos{Line: l.line, Col: l.col, Off: l.pos}
	if l.pos >= len(l.src) {
		return Token{Type: EOF, Pos: pos}, nil
	}
	c := l.peekByte()
	switch {
	case c == '$':
		// Queryset parameter reference: $name. Only meaningful inside a
		// queryset document, where the parser substitutes the parameter's
		// literal before the query is compiled.
		l.advance()
		if !isIdentStart(l.peekByte()) {
			return Token{}, fmt.Errorf("lexer: %s: '$' must be followed by a parameter name", pos)
		}
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peekByte()) {
			l.advance()
		}
		return Token{Type: PARAM, Text: l.src[start:l.pos], Pos: pos}, nil

	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peekByte()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		if kw, ok := keywords[strings.ToLower(text)]; ok {
			return Token{Type: kw, Text: text, Pos: pos}, nil
		}
		return Token{Type: IDENT, Text: text, Pos: pos}, nil

	case isDigit(c):
		start := l.pos
		isInt := true
		for l.pos < len(l.src) && isDigit(l.peekByte()) {
			l.advance()
		}
		if l.peekByte() == '.' && isDigit(l.peekByteAt(1)) {
			isInt = false
			l.advance()
			for l.pos < len(l.src) && isDigit(l.peekByte()) {
				l.advance()
			}
		}
		if l.peekByte() == 'e' || l.peekByte() == 'E' {
			// Scientific notation: 1e6, 2.5E-3.
			save := l.pos
			l.advance()
			if l.peekByte() == '+' || l.peekByte() == '-' {
				l.advance()
			}
			if isDigit(l.peekByte()) {
				isInt = false
				for l.pos < len(l.src) && isDigit(l.peekByte()) {
					l.advance()
				}
			} else {
				l.pos = save // 'e' begins an identifier, not an exponent
			}
		}
		text := l.src[start:l.pos]
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, fmt.Errorf("lexer: %s: bad number %q: %v", pos, text, err)
		}
		return Token{Type: NUMBER, Text: text, Num: f, IsInt: isInt, Pos: pos}, nil

	case c == '"' || c == '\'':
		quote := c
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("lexer: %s: unterminated string", pos)
			}
			ch := l.advance()
			if ch == quote {
				break
			}
			if ch == '\\' && l.pos < len(l.src) {
				esc := l.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '\\', '"', '\'':
					sb.WriteByte(esc)
				default:
					sb.WriteByte('\\')
					sb.WriteByte(esc)
				}
				continue
			}
			if ch == '\n' {
				return Token{}, fmt.Errorf("lexer: %s: newline in string", pos)
			}
			sb.WriteByte(ch)
		}
		return Token{Type: STRING, Text: sb.String(), Pos: pos}, nil
	}

	// Operators and punctuation.
	two := func(t TokenType, text string) (Token, error) {
		l.advance()
		l.advance()
		return Token{Type: t, Text: text, Pos: pos}, nil
	}
	one := func(t TokenType) (Token, error) {
		l.advance()
		return Token{Type: t, Text: string(c), Pos: pos}, nil
	}
	n := l.peekByteAt(1)
	switch c {
	case ':':
		if n == '=' {
			return two(ASSIGN, ":=")
		}
		return Token{}, fmt.Errorf("lexer: %s: unexpected ':'", pos)
	case '=':
		if n == '=' {
			return two(EQEQ, "==")
		}
		return one(EQ)
	case '!':
		if n == '=' {
			return two(NEQ, "!=")
		}
		return one(NOT)
	case '<':
		if n == '=' {
			return two(LE, "<=")
		}
		return one(LT)
	case '>':
		if n == '=' {
			return two(GE, ">=")
		}
		return one(GT)
	case '&':
		if n == '&' {
			return two(ANDAND, "&&")
		}
		return Token{}, fmt.Errorf("lexer: %s: unexpected '&' (did you mean '&&'?)", pos)
	case '|':
		if n == '|' {
			return two(OROR, "||")
		}
		return one(PIPE)
	case '-':
		if n == '>' {
			return two(ARROW, "->")
		}
		return one(MINUS)
	case '+':
		return one(PLUS)
	case '*':
		return one(STAR)
	case '/':
		return one(SLASH)
	case '%':
		return one(PERCENT)
	case '#':
		return one(HASH)
	case '(':
		return one(LPAREN)
	case ')':
		return one(RPAREN)
	case '[':
		return one(LBRACKET)
	case ']':
		return one(RBRACKET)
	case '{':
		return one(LBRACE)
	case '}':
		return one(RBRACE)
	case ',':
		return one(COMMA)
	case '.':
		return one(DOT)
	case ';':
		return one(SEMI)
	}
	return Token{}, fmt.Errorf("lexer: %s: unexpected character %q", pos, string(c))
}
