package lexer

import (
	"strings"
	"testing"
)

func kinds(t *testing.T, src string) []TokenType {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	out := make([]TokenType, 0, len(toks))
	for _, tok := range toks {
		out = append(out, tok.Type)
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	got := kinds(t, `proc p1["%cmd.exe"] start proc p2 as evt1`)
	want := []TokenType{IDENT, IDENT, LBRACKET, STRING, RBRACKET, IDENT, IDENT, IDENT, KwAs, IDENT, EOF}
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	src := `:= = == != < <= > >= && || ! + - * / % -> | # ( ) [ ] { } , . ;`
	want := []TokenType{ASSIGN, EQ, EQEQ, NEQ, LT, LE, GT, GE, ANDAND, OROR, NOT,
		PLUS, MINUS, STAR, SLASH, PERCENT, ARROW, PIPE, HASH, LPAREN, RPAREN,
		LBRACKET, RBRACKET, LBRACE, RBRACE, COMMA, DOT, SEMI, EOF}
	got := kinds(t, src)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKeywords(t *testing.T) {
	src := "as with state group by alert return distinct invariant offline online cluster union diff intersect in empty_set"
	want := []TokenType{KwAs, KwWith, KwState, KwGroup, KwBy, KwAlert, KwReturn,
		KwDistinct, KwInvariant, KwOffline, KwOnline, KwCluster, KwUnion, KwDiff,
		KwIntersect, KwIn, KwEmptySet, EOF}
	got := kinds(t, src)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	got := kinds(t, "ALERT Return DISTINCT")
	want := []TokenType{KwAlert, KwReturn, KwDistinct, EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	toks, err := Tokenize("10 10000 0.5 1e6 2.5e-3 3E2")
	if err != nil {
		t.Fatal(err)
	}
	wantVals := []float64{10, 10000, 0.5, 1e6, 2.5e-3, 300}
	wantInt := []bool{true, true, false, false, false, false}
	for i, wv := range wantVals {
		if toks[i].Type != NUMBER {
			t.Fatalf("token %d is %v, want NUMBER", i, toks[i].Type)
		}
		if toks[i].Num != wv {
			t.Errorf("number %d = %v, want %v", i, toks[i].Num, wv)
		}
		if toks[i].IsInt != wantInt[i] {
			t.Errorf("number %d IsInt = %v, want %v", i, toks[i].IsInt, wantInt[i])
		}
	}
}

func TestNumberFollowedByIdent(t *testing.T) {
	// "#time(10 min)" and even "10min" must split into NUMBER IDENT.
	toks, err := Tokenize("10min")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Type != NUMBER || toks[1].Type != IDENT || toks[1].Text != "min" {
		t.Errorf("10min = %v %v", toks[0], toks[1])
	}
	// A trailing 'e' with no exponent digits must not be eaten: "10 e" vs "10e".
	toks, err = Tokenize("10e")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Type != NUMBER || toks[0].Num != 10 || toks[1].Type != IDENT || toks[1].Text != "e" {
		t.Errorf("10e = %v %v", toks[0], toks[1])
	}
}

func TestStrings(t *testing.T) {
	toks, err := Tokenize(`"%osql.exe" 'single' "a\"b" "tab\tx"`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"%osql.exe", "single", `a"b`, "tab\tx"}
	for i, w := range want {
		if toks[i].Type != STRING || toks[i].Text != w {
			t.Errorf("string %d = %q (%v), want %q", i, toks[i].Text, toks[i].Type, w)
		}
	}
}

func TestStringErrors(t *testing.T) {
	if _, err := Tokenize(`"unterminated`); err == nil {
		t.Error("unterminated string should error")
	}
	if _, err := Tokenize("\"new\nline\""); err == nil {
		t.Error("newline in string should error")
	}
}

func TestComments(t *testing.T) {
	toks, err := Tokenize("a // comment here\nb // another")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Errorf("comments not skipped: %v", toks)
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("a\n  bb")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("bb at %v, want 2:3", toks[1].Pos)
	}
}

func TestIllegalCharacters(t *testing.T) {
	for _, src := range []string{"@", "$", "a & b", "a : b", "?"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) should error", src)
		}
	}
}

func TestPipeVsOror(t *testing.T) {
	toks, err := Tokenize("read || write |x|")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenType{IDENT, OROR, IDENT, PIPE, IDENT, PIPE, EOF}
	for i, w := range want {
		if toks[i].Type != w {
			t.Errorf("token %d = %v, want %v", i, toks[i].Type, w)
		}
	}
}

func TestFullQueryTokenizes(t *testing.T) {
	q := `
agentid = "db1" // SQL database server
proc p["%sqlservr.exe"] read || write ip i as evt #time(10 min)
state ss {
  amt := sum(evt.amount)
} group by i.dstip
cluster(points=all(ss.amt), distance="ed", method="DBSCAN(100000, 5)")
alert cluster.outlier && ss.amt > 1000000
return i.dstip, ss.amt
`
	toks, err := Tokenize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) < 40 {
		t.Errorf("expected many tokens, got %d", len(toks))
	}
	var sawCluster, sawAlert bool
	for _, tok := range toks {
		if tok.Type == KwCluster {
			sawCluster = true
		}
		if tok.Type == KwAlert {
			sawAlert = true
		}
	}
	if !sawCluster || !sawAlert {
		t.Error("expected cluster and alert keywords")
	}
}

func TestTokenString(t *testing.T) {
	toks, _ := Tokenize(`abc 12 "s" ->`)
	if toks[0].String() != "abc" {
		t.Errorf("ident String = %q", toks[0].String())
	}
	if toks[1].String() != "12" {
		t.Errorf("number String = %q", toks[1].String())
	}
	if toks[2].String() != `"s"` {
		t.Errorf("string String = %q", toks[2].String())
	}
	if toks[3].String() != "->" {
		t.Errorf("arrow String = %q", toks[3].String())
	}
	if !strings.Contains(Pos{Line: 3, Col: 4}.String(), "3:4") {
		t.Error("pos rendering")
	}
}
