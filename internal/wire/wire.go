// Package wire implements the binary encoding primitives shared by the
// durable layers of the engine: the event store's record payloads
// (internal/storage) and the checkpoint state blobs every stateful component
// serialises itself into (internal/snapshot and the EncodeState/DecodeState
// split across agg, window, invariant, matcher, and engine).
//
// Encoding is append-style: writers are plain functions extending a []byte,
// so state capture composes without intermediate buffers. Decoding goes
// through Reader, a bounds-checked cursor with a sticky error: decode code
// reads field after field and checks Err once at the end, and a truncated or
// corrupted input can never panic or over-allocate — length-prefixed fields
// are validated against the bytes actually remaining before any allocation.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"saql/internal/event"
	"saql/internal/value"
)

// ---------------------------------------------------------------------------
// Appenders
// ---------------------------------------------------------------------------

// AppendUvarint appends an unsigned varint.
func AppendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// AppendVarint appends a signed (zig-zag) varint.
func AppendVarint(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

// AppendString appends a length-prefixed string.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBytes appends a length-prefixed byte slice.
func AppendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// AppendBool appends a boolean as one byte.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendUint32 appends a fixed-width little-endian uint32 — the encoding of
// ownership-hash range bounds in the cluster wire protocol, where the fixed
// width keeps range maps trivially comparable byte-for-byte.
func AppendUint32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

// AppendFloat64 appends a float64 as 8 little-endian IEEE-754 bytes.
func AppendFloat64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// AppendTime appends an instant as unix nanoseconds.
func AppendTime(b []byte, t time.Time) []byte {
	return binary.AppendVarint(b, t.UnixNano())
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

// Reader is a bounds-checked decode cursor with a sticky error. Every getter
// returns its zero value once an error has occurred, so decoders can read a
// whole structure unconditionally and check Err once.
type Reader struct {
	data []byte
	pos  int
	err  error
}

// NewReader creates a reader over data.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err reports the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Len reports how many bytes remain.
func (r *Reader) Len() int { return len(r.data) - r.pos }

// Fail records a decode error (the first one sticks).
func (r *Reader) Fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: "+format+" at offset %d", append(args, r.pos)...)
	}
}

// Uvarint reads an unsigned varint.
//
//saql:hotpath
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.Fail("bad uvarint")
		return 0
	}
	r.pos += n
	return v
}

// Varint reads a signed varint.
//
//saql:hotpath
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.Fail("bad varint")
		return 0
	}
	r.pos += n
	return v
}

// Byte reads one byte.
//
//saql:hotpath
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.data) {
		r.Fail("truncated byte")
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// Bool reads a boolean byte (0 or 1; anything else is an error).
//
//saql:hotpath
func (r *Reader) Bool() bool {
	switch r.Byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Fail("bad bool")
		return false
	}
}

// String reads a length-prefixed string. The length is validated against the
// remaining input before allocating.
//
//saql:hotpath
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(r.Len()) < n {
		r.Fail("truncated string (%d < %d)", r.Len(), n)
		return ""
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

// Bytes reads a length-prefixed byte slice (a subslice of the input; copy if
// retaining past the input's lifetime).
//
//saql:hotpath
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(r.Len()) < n {
		r.Fail("truncated bytes (%d < %d)", r.Len(), n)
		return nil
	}
	p := r.data[r.pos : r.pos+int(n) : r.pos+int(n)]
	r.pos += int(n)
	return p
}

// Uint32 reads a fixed-width little-endian uint32.
//
//saql:hotpath
func (r *Reader) Uint32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.Len() < 4 {
		r.Fail("truncated uint32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v
}

// Float64 reads 8 little-endian IEEE-754 bytes.
//
//saql:hotpath
func (r *Reader) Float64() float64 {
	if r.err != nil {
		return 0
	}
	if r.Len() < 8 {
		r.Fail("truncated float64")
		return 0
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.pos:]))
	r.pos += 8
	return f
}

// Time reads an instant encoded as unix nanoseconds.
//
//saql:hotpath
func (r *Reader) Time() time.Time { return time.Unix(0, r.Varint()) }

// Count reads a uvarint element count and validates it against the remaining
// input, assuming each element costs at least min bytes. It bounds decoder
// allocations on corrupted or adversarial inputs: a claimed count that could
// not possibly fit in the remaining bytes fails immediately instead of
// driving a huge make().
//
//saql:hotpath
func (r *Reader) Count(min int) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if n > uint64(r.Len()/min)+1 {
		r.Fail("implausible count %d (only %d bytes left)", n, r.Len())
		return 0
	}
	return int(n)
}

// ---------------------------------------------------------------------------
// Value codec
// ---------------------------------------------------------------------------

// AppendValue appends a SAQL value: one kind byte plus the kind's payload.
// Set members are encoded sorted, so equal values encode identically.
func AppendValue(b []byte, v value.Value) []byte {
	b = append(b, byte(v.Kind()))
	switch v.Kind() {
	case value.KindNull:
	case value.KindString:
		b = AppendString(b, v.Str())
	case value.KindInt:
		b = AppendVarint(b, v.IntVal())
	case value.KindFloat:
		b = AppendFloat64(b, v.FloatVal())
	case value.KindBool:
		b = AppendBool(b, v.BoolVal())
	case value.KindSet:
		members := v.SetMembers()
		b = AppendUvarint(b, uint64(len(members)))
		for _, m := range members {
			b = AppendString(b, m)
		}
	}
	return b
}

// ReadValue decodes one SAQL value.
func (r *Reader) ReadValue() value.Value {
	switch k := value.Kind(r.Byte()); k {
	case value.KindNull:
		return value.Null
	case value.KindString:
		return value.String(r.String())
	case value.KindInt:
		return value.Int(r.Varint())
	case value.KindFloat:
		return value.Float(r.Float64())
	case value.KindBool:
		return value.Bool(r.Bool())
	case value.KindSet:
		n := r.Count(1)
		members := make([]string, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			members = append(members, r.String())
		}
		return value.SetOf(members...)
	default:
		if r.err == nil {
			r.Fail("unknown value kind %d", k)
		}
		return value.Null
	}
}

// ---------------------------------------------------------------------------
// Entity and event codec
// ---------------------------------------------------------------------------

// AppendEntity appends a system entity: one type byte plus the type's
// fields. This is the on-disk format of the event store's records.
func AppendEntity(b []byte, e *event.Entity) []byte {
	b = append(b, byte(e.Type))
	switch e.Type {
	case event.EntityProcess:
		b = AppendString(b, e.ExeName)
		b = AppendVarint(b, int64(e.PID))
		b = AppendString(b, e.User)
		b = AppendString(b, e.CmdLine)
	case event.EntityFile:
		b = AppendString(b, e.Path)
	case event.EntityNetConn:
		b = AppendString(b, e.SrcIP)
		b = AppendVarint(b, int64(e.SrcPort))
		b = AppendString(b, e.DstIP)
		b = AppendVarint(b, int64(e.DstPort))
		b = AppendString(b, e.Protocol)
	}
	return b
}

// ReadEntity decodes one entity.
func (r *Reader) ReadEntity() event.Entity {
	var e event.Entity
	e.Type = event.EntityType(r.Byte())
	switch e.Type {
	case event.EntityProcess:
		e.ExeName = r.String()
		e.PID = int32(r.Varint())
		e.User = r.String()
		e.CmdLine = r.String()
	case event.EntityFile:
		e.Path = r.String()
	case event.EntityNetConn:
		e.SrcIP = r.String()
		e.SrcPort = int32(r.Varint())
		e.DstIP = r.String()
		e.DstPort = int32(r.Varint())
		e.Protocol = r.String()
	default:
		if r.err == nil {
			r.Fail("unknown entity type %d", e.Type)
		}
	}
	return e
}

// AppendEvent appends a full event payload: id, time, agent, subject, op,
// object, amount. Byte-compatible with the event store's record payloads.
func AppendEvent(b []byte, ev *event.Event) []byte {
	b = AppendUvarint(b, ev.ID)
	b = AppendVarint(b, ev.Time.UnixNano())
	b = AppendString(b, ev.AgentID)
	b = AppendEntity(b, &ev.Subject)
	b = append(b, byte(ev.Op))
	b = AppendEntity(b, &ev.Object)
	b = AppendFloat64(b, ev.Amount)
	return b
}

// ReadEvent decodes one event payload.
func (r *Reader) ReadEvent() *event.Event {
	ev := &event.Event{}
	ev.ID = r.Uvarint()
	ev.Time = r.Time()
	ev.AgentID = r.String()
	ev.Subject = r.ReadEntity()
	ev.Op = event.Op(r.Byte())
	ev.Object = r.ReadEntity()
	ev.Amount = r.Float64()
	return ev
}
