package wire

import (
	"math"
	"testing"
	"time"

	"saql/internal/event"
	"saql/internal/value"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUvarint(b, 0)
	b = AppendUvarint(b, math.MaxUint64)
	b = AppendVarint(b, -1234567)
	b = AppendString(b, "héllo\x00world")
	b = AppendBytes(b, []byte{1, 2, 3})
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	b = AppendFloat64(b, math.Pi)
	b = AppendFloat64(b, math.Inf(-1))
	b = AppendTime(b, time.Unix(0, 1582794000123456789))

	r := NewReader(b)
	if got := r.Uvarint(); got != 0 {
		t.Errorf("uvarint = %d", got)
	}
	if got := r.Uvarint(); got != math.MaxUint64 {
		t.Errorf("uvarint = %d", got)
	}
	if got := r.Varint(); got != -1234567 {
		t.Errorf("varint = %d", got)
	}
	if got := r.String(); got != "héllo\x00world" {
		t.Errorf("string = %q", got)
	}
	if got := r.Bytes(); len(got) != 3 || got[0] != 1 {
		t.Errorf("bytes = %v", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("bools drifted")
	}
	if got := r.Float64(); got != math.Pi {
		t.Errorf("float = %v", got)
	}
	if got := r.Float64(); !math.IsInf(got, -1) {
		t.Errorf("float = %v", got)
	}
	if got := r.Time(); got.UnixNano() != 1582794000123456789 {
		t.Errorf("time = %v", got)
	}
	if r.Err() != nil {
		t.Fatalf("err = %v", r.Err())
	}
	if r.Len() != 0 {
		t.Errorf("%d bytes left over", r.Len())
	}
}

func TestReaderStickyErrors(t *testing.T) {
	// Truncated string: a claimed length past the end must fail without
	// allocating, and every later read must return zero values.
	b := AppendUvarint(nil, 1<<40)
	r := NewReader(b)
	if s := r.String(); s != "" {
		t.Errorf("truncated string decoded %q", s)
	}
	if r.Err() == nil {
		t.Fatal("no error after truncated string")
	}
	if v := r.Uvarint(); v != 0 {
		t.Errorf("read after error = %d", v)
	}
	if v := r.ReadValue(); !v.IsNull() {
		t.Errorf("value after error = %v", v)
	}

	// Bad bool byte.
	r = NewReader([]byte{7})
	r.Bool()
	if r.Err() == nil {
		t.Error("bool 7 accepted")
	}

	// Implausible count.
	r = NewReader(AppendUvarint(nil, 1<<50))
	r.Count(8)
	if r.Err() == nil {
		t.Error("implausible count accepted")
	}
}

func TestValueRoundTrip(t *testing.T) {
	vals := []value.Value{
		value.Null,
		value.String(""),
		value.String("x\x1fy"),
		value.Int(-42),
		value.Float(2.5),
		value.Bool(true),
		value.EmptySet(),
		value.SetOf("b", "a", "c"),
	}
	var b []byte
	for _, v := range vals {
		b = AppendValue(b, v)
	}
	r := NewReader(b)
	for i, want := range vals {
		got := r.ReadValue()
		if !got.Equal(want) || got.Kind() != want.Kind() {
			t.Errorf("value %d: got %v (%v), want %v (%v)", i, got, got.Kind(), want, want.Kind())
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}

	// Unknown kind byte fails typed, not panics.
	r = NewReader([]byte{0xEE})
	r.ReadValue()
	if r.Err() == nil {
		t.Error("unknown value kind accepted")
	}
}

func TestEventRoundTrip(t *testing.T) {
	ev := &event.Event{
		ID:      7,
		Time:    time.Unix(0, 99),
		AgentID: "db-1",
		Subject: event.Process("sqlservr.exe", 1234),
		Op:      event.OpWrite,
		Object:  event.NetConn("10.0.0.2", 1433, "172.16.0.129", 443),
		Amount:  1e7,
	}
	r := NewReader(AppendEvent(nil, ev))
	got := r.ReadEvent()
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if got.ID != ev.ID || !got.Time.Equal(ev.Time) || got.AgentID != ev.AgentID ||
		got.Subject != ev.Subject || got.Op != ev.Op || got.Object != ev.Object || got.Amount != ev.Amount {
		t.Errorf("round trip drifted: %+v vs %+v", got, ev)
	}

	// Unknown entity type fails.
	r = NewReader([]byte{0xEE})
	r.ReadEntity()
	if r.Err() == nil {
		t.Error("unknown entity type accepted")
	}
}
