// Package snapshot implements the durable checkpoint file format: a
// versioned, CRC-checked container holding one consistent cut of an engine —
// the registry (each query's source text, compile options, pause flag,
// management flag, and handle labels), the stream offset of the barrier the
// cut was taken at, and every query's encoded runtime state blobs (one per
// shard replica that held state). Snapshots are written atomically
// (temp file + rename) next to the event store's segments, so a checkpoint
// directory is self-contained: the snapshot names an offset, and the
// segments hold the journaled tail to replay from it.
//
// # File layout
//
//	magic   [8]byte  "SAQLSNAP"
//	version uint16   little-endian (see Version)
//	length  uvarint  payload byte count
//	payload []byte   wire-encoded body
//	crc     uint32   little-endian CRC-32 (IEEE) of payload
//
// Decoding is strict: bad magic, an unsupported version, a truncated
// payload, a CRC mismatch, or trailing bytes each fail with a typed error
// (*VersionError or *CorruptError) — a snapshot is never partially applied
// and never silently misread.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"time"

	"saql/internal/engine"
	"saql/internal/wire"
)

// Magic identifies a snapshot file.
const Magic = "SAQLSNAP"

// Version is the current snapshot format version. Version 1 was the
// pre-release prototype (single state blob per query, no per-shard framing);
// version 2 predates tenant metadata. Neither can be migrated to the current
// layout and both are rejected with a *VersionError, as is any version newer
// than this build understands.
const Version = 3

// FileName is the snapshot's name inside a checkpoint directory. Writes go
// through a temp file and an atomic rename, so the name always refers to a
// complete snapshot.
const FileName = "checkpoint.ckpt"

// ErrNoSnapshot reports that a checkpoint directory holds no snapshot file.
var ErrNoSnapshot = errors.New("snapshot: no checkpoint found")

// VersionError reports a snapshot whose format version this build cannot
// read. Older versions have no migration path (the v1 prototype predates
// barrier-consistent capture); newer versions come from a newer build.
type VersionError struct {
	Got       uint16
	Supported uint16
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("snapshot: format version %d not supported (this build reads version %d; older formats cannot be migrated)",
		e.Got, e.Supported)
}

// CorruptError reports a snapshot file that failed structural validation:
// bad magic, truncation, CRC mismatch, or malformed payload fields.
type CorruptError struct {
	Reason string
	Err    error
}

func (e *CorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("snapshot: corrupt: %s: %v", e.Reason, e.Err)
	}
	return fmt.Sprintf("snapshot: corrupt: %s", e.Reason)
}

func (e *CorruptError) Unwrap() error { return e.Err }

func corrupt(reason string, err error) error { return &CorruptError{Reason: reason, Err: err} }

// Snapshot is one consistent cut of an engine.
type Snapshot struct {
	// TakenAt records the wall-clock capture time (informational).
	TakenAt time.Time
	// Offset is the stream position of the capture barrier: how many
	// journaled events the state reflects. Replay resumes here.
	Offset int64
	// Shards is the shard count of the capturing runtime (informational; a
	// snapshot restores onto any shard count).
	Shards int
	// Queries is the registry at the barrier, sorted by name.
	Queries []Query
	// Tenants is the tenant control-plane metadata at the barrier, sorted by
	// name: quotas plus the budget/throttle counters that must survive a
	// restart so a restored engine keeps enforcing mid-window budgets. The
	// per-query recent-alert rings are observability-only and not persisted.
	Tenants []Tenant
}

// Tenant is one tenant's quotas and accounting counters at the barrier.
type Tenant struct {
	Name string

	// Quotas (zero = unlimited).
	MaxQueries    int64
	MaxStateBytes int64
	AlertBudget   int64
	AlertWindow   time.Duration
	IngestRate    int64

	// Alert-budget window accounting (stream time). WinStart is zero when no
	// window has opened yet.
	WinStart time.Time
	WinCount int64

	// Cumulative counters.
	Delivered  int64
	Suppressed int64
	SrcEvents  int64
	Throttled  int64
}

// Query is one registered query's registry entry plus its captured state.
type Query struct {
	Name    string
	Src     string
	Compile engine.CompileOptions
	Paused  bool
	Managed bool
	Labels  map[string]string
	// States holds the query's encoded runtime state, one blob per shard
	// replica that held it, in shard order.
	States [][]byte
}

// Encode serialises the snapshot into the file format.
func Encode(s *Snapshot) []byte {
	var p []byte
	p = wire.AppendVarint(p, s.TakenAt.UnixNano())
	p = wire.AppendVarint(p, s.Offset)
	p = wire.AppendVarint(p, int64(s.Shards))
	p = wire.AppendUvarint(p, uint64(len(s.Queries)))
	for _, q := range s.Queries {
		p = wire.AppendString(p, q.Name)
		p = wire.AppendString(p, q.Src)
		p = wire.AppendVarint(p, int64(q.Compile.MatchHorizon))
		p = wire.AppendVarint(p, int64(q.Compile.MaxPartials))
		p = wire.AppendVarint(p, int64(q.Compile.MaxDistinct))
		p = wire.AppendVarint(p, int64(q.Compile.GroupIdleWindows))
		p = wire.AppendBool(p, q.Paused)
		p = wire.AppendBool(p, q.Managed)
		p = wire.AppendUvarint(p, uint64(len(q.Labels)))
		for _, k := range sortedKeys(q.Labels) {
			p = wire.AppendString(p, k)
			p = wire.AppendString(p, q.Labels[k])
		}
		p = wire.AppendUvarint(p, uint64(len(q.States)))
		for _, blob := range q.States {
			p = wire.AppendBytes(p, blob)
		}
	}
	p = wire.AppendUvarint(p, uint64(len(s.Tenants)))
	for _, t := range s.Tenants {
		p = wire.AppendString(p, t.Name)
		p = wire.AppendVarint(p, t.MaxQueries)
		p = wire.AppendVarint(p, t.MaxStateBytes)
		p = wire.AppendVarint(p, t.AlertBudget)
		p = wire.AppendVarint(p, int64(t.AlertWindow))
		p = wire.AppendVarint(p, t.IngestRate)
		// A zero WinStart (no window opened yet) is encoded as 0, not the
		// zero time's huge negative UnixNano.
		var winNS int64
		if !t.WinStart.IsZero() {
			winNS = t.WinStart.UnixNano()
		}
		p = wire.AppendVarint(p, winNS)
		p = wire.AppendVarint(p, t.WinCount)
		p = wire.AppendVarint(p, t.Delivered)
		p = wire.AppendVarint(p, t.Suppressed)
		p = wire.AppendVarint(p, t.SrcEvents)
		p = wire.AppendVarint(p, t.Throttled)
	}

	out := make([]byte, 0, len(Magic)+2+len(p)+16)
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint16(out, Version)
	out = binary.AppendUvarint(out, uint64(len(p)))
	out = append(out, p...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(p))
	return out
}

// Decode parses and validates a snapshot file image.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(Magic)+2 {
		return nil, corrupt("file shorter than header", nil)
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, corrupt("bad magic", nil)
	}
	ver := binary.LittleEndian.Uint16(data[len(Magic):])
	if ver != Version {
		return nil, &VersionError{Got: ver, Supported: Version}
	}
	rest := data[len(Magic)+2:]
	plen, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, corrupt("bad payload length", nil)
	}
	rest = rest[n:]
	// Check plen on its own first: a near-max varint would overflow plen+4.
	if plen > uint64(len(rest)) || uint64(len(rest)) < plen+4 {
		return nil, corrupt(fmt.Sprintf("truncated payload (%d bytes left, %d claimed)", len(rest), plen), nil)
	}
	payload := rest[:plen]
	wantCRC := binary.LittleEndian.Uint32(rest[plen:])
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, corrupt("payload CRC mismatch", nil)
	}
	if uint64(len(rest)) != plen+4 {
		return nil, corrupt("trailing bytes after CRC", nil)
	}

	r := wire.NewReader(payload)
	s := &Snapshot{
		TakenAt: r.Time(),
		Offset:  r.Varint(),
		Shards:  int(r.Varint()),
	}
	nQueries := r.Count(8)
	for i := 0; i < nQueries && r.Err() == nil; i++ {
		q := Query{
			Name: r.String(),
			Src:  r.String(),
			Compile: engine.CompileOptions{
				MatchHorizon:     time.Duration(r.Varint()),
				MaxPartials:      int(r.Varint()),
				MaxDistinct:      int(r.Varint()),
				GroupIdleWindows: int(r.Varint()),
			},
			Paused:  r.Bool(),
			Managed: r.Bool(),
		}
		nLabels := r.Count(2)
		if nLabels > 0 {
			q.Labels = make(map[string]string, nLabels)
		}
		for j := 0; j < nLabels && r.Err() == nil; j++ {
			k := r.String()
			q.Labels[k] = r.String()
		}
		nStates := r.Count(1)
		for j := 0; j < nStates && r.Err() == nil; j++ {
			blob := r.Bytes()
			q.States = append(q.States, append([]byte(nil), blob...))
		}
		s.Queries = append(s.Queries, q)
	}
	nTenants := r.Count(12)
	for i := 0; i < nTenants && r.Err() == nil; i++ {
		t := Tenant{
			Name:          r.String(),
			MaxQueries:    r.Varint(),
			MaxStateBytes: r.Varint(),
			AlertBudget:   r.Varint(),
			AlertWindow:   time.Duration(r.Varint()),
			IngestRate:    r.Varint(),
		}
		if winNS := r.Varint(); winNS != 0 {
			t.WinStart = time.Unix(0, winNS)
		}
		t.WinCount = r.Varint()
		t.Delivered = r.Varint()
		t.Suppressed = r.Varint()
		t.SrcEvents = r.Varint()
		t.Throttled = r.Varint()
		s.Tenants = append(s.Tenants, t)
	}
	if r.Err() != nil {
		return nil, corrupt("malformed payload", r.Err())
	}
	if r.Len() != 0 {
		return nil, corrupt("trailing bytes in payload", nil)
	}
	if s.Offset < 0 {
		return nil, corrupt("negative stream offset", nil)
	}
	return s, nil
}

// Path returns the snapshot file path inside a checkpoint directory.
func Path(dir string) string { return filepath.Join(dir, FileName) }

// Write encodes s and atomically installs it as dir's snapshot, creating
// dir if needed. The data is fsynced before the rename and the directory
// fsynced after it, so the previous snapshot is replaced only once the new
// one is durable — a process kill or power loss mid-write never loses the
// old checkpoint.
func Write(dir string, s *Snapshot) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	path := Path(dir)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	if _, err := f.Write(Encode(s)); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("snapshot: %w", err)
	}
	// Sync the directory so the rename itself is durable; best-effort on
	// filesystems that reject directory fsync.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return path, nil
}

// Read loads and validates dir's snapshot. A missing file reports
// ErrNoSnapshot (callers distinguish "fresh directory" from corruption).
func Read(dir string) (*Snapshot, error) {
	data, err := os.ReadFile(Path(dir))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w in %s", ErrNoSnapshot, dir)
	}
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return Decode(data)
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
