package snapshot

import (
	"testing"
	"time"

	"saql/internal/engine"
)

// FuzzSnapshotDecode asserts the snapshot decoder contract under arbitrary
// input: no panics, no unbounded allocation, and every accepted input
// re-encodes losslessly (decode∘encode∘decode is the identity). `go test`
// runs the seed corpus on every CI run; `go test -fuzz=FuzzSnapshotDecode`
// explores further.
func FuzzSnapshotDecode(f *testing.F) {
	// Seeds: real snapshots (empty, registry-only, state-carrying), the
	// header alone, and assorted near-misses.
	f.Add(Encode(&Snapshot{}))
	f.Add(Encode(&Snapshot{
		TakenAt: time.Unix(0, 1582794000123456789),
		Offset:  12345,
		Shards:  8,
		Queries: []Query{{
			Name:    "exfil",
			Src:     "proc p write ip i as e\nalert e.amount > 10\nreturn p",
			Compile: engine.CompileOptions{MatchHorizon: time.Minute, MaxPartials: 64, MaxDistinct: 128, GroupIdleWindows: 9},
			Paused:  true,
			Managed: true,
			Labels:  map[string]string{"team": "secops", "sev": "high"},
			States:  [][]byte{{1, 0, 0, 0, 0, 0, 0, 0, 0, 0}, {1, 1, 2, 3}},
		}},
	}))
	f.Add([]byte(Magic))
	f.Add([]byte(Magic + "\x02\x00"))
	f.Add([]byte(Magic + "\x01\x00\x00\x00\x00\x00\x00"))
	// A payload-length varint near 2^64: plen+4 must not overflow the
	// truncation check into a panicking slice expression.
	f.Add([]byte(Magic + "\x02\x00\xfc\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Add([]byte("not a snapshot at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			if s != nil {
				t.Fatal("Decode returned both a snapshot and an error")
			}
			return
		}
		// Accepted input: the snapshot must survive a re-encode round trip.
		again, err := Decode(Encode(s))
		if err != nil {
			t.Fatalf("re-decode of accepted snapshot failed: %v", err)
		}
		if again.Offset != s.Offset || again.Shards != s.Shards || len(again.Queries) != len(s.Queries) {
			t.Fatalf("round trip drifted: %+v vs %+v", again, s)
		}
	})
}
