package snapshot

// Unit and property tests for the snapshot container: arbitrary snapshots
// round-trip encode→decode deep-equal, every truncation and every CRC flip
// is rejected with a typed error, and unsupported versions fail typed in
// both directions (older and newer).

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"saql/internal/engine"
)

func randomSnapshot(rng *rand.Rand) *Snapshot {
	s := &Snapshot{
		TakenAt: time.Unix(0, rng.Int63()),
		Offset:  rng.Int63(),
		Shards:  rng.Intn(64),
	}
	for i, n := 0, rng.Intn(4); i < n; i++ {
		q := Query{
			Name: randStr(rng),
			Src:  randStr(rng),
			Compile: engine.CompileOptions{
				MatchHorizon:     time.Duration(rng.Int63()),
				MaxPartials:      rng.Intn(1 << 16),
				MaxDistinct:      rng.Intn(1 << 16),
				GroupIdleWindows: rng.Intn(1 << 10),
			},
			Paused:  rng.Intn(2) == 0,
			Managed: rng.Intn(2) == 0,
		}
		for j, m := 0, rng.Intn(3); j < m; j++ {
			if q.Labels == nil {
				q.Labels = map[string]string{}
			}
			q.Labels[randStr(rng)] = randStr(rng)
		}
		for j, m := 0, rng.Intn(3); j < m; j++ {
			blob := make([]byte, rng.Intn(64))
			rng.Read(blob)
			q.States = append(q.States, blob)
		}
		s.Queries = append(s.Queries, q)
	}
	return s
}

func randStr(rng *rand.Rand) string {
	b := make([]byte, rng.Intn(16))
	rng.Read(b)
	return string(b)
}

func TestSnapshotRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSnapshot(rng)
		got, err := Decode(Encode(s))
		if err != nil {
			t.Logf("seed %d: decode failed: %v", seed, err)
			return false
		}
		// Normalise the one representational asymmetry: a nil and an empty
		// blob both decode as empty.
		norm := func(s *Snapshot) {
			for i := range s.Queries {
				for j, blob := range s.Queries[i].States {
					if len(blob) == 0 {
						s.Queries[i].States[j] = []byte{}
					}
				}
			}
		}
		norm(s)
		norm(got)
		if !got.TakenAt.Equal(s.TakenAt) {
			t.Logf("seed %d: TakenAt drifted", seed)
			return false
		}
		got.TakenAt, s.TakenAt = time.Time{}, time.Time{}
		if !reflect.DeepEqual(s, got) {
			t.Logf("seed %d: round trip drifted:\n  in:  %+v\n  out: %+v", seed, s, got)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := Encode(randomSnapshot(rng))
	// Every truncation fails with a typed error, never a panic or a
	// silently partial snapshot.
	for cut := 0; cut < len(data); cut++ {
		s, err := Decode(data[:cut])
		if err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded: %+v", cut, len(data), s)
		}
		var verr *VersionError
		var cerr *CorruptError
		if !errors.As(err, &cerr) && !errors.As(err, &verr) {
			t.Fatalf("truncation to %d: untyped error %v", cut, err)
		}
	}
	// Every single-bit flip past the header fails (header flips may also
	// surface as version errors; payload flips must trip the CRC).
	for i := 0; i < 400; i++ {
		flipped := append([]byte(nil), data...)
		flipped[rng.Intn(len(flipped))] ^= 1 << uint(rng.Intn(8))
		if s, err := Decode(flipped); err == nil {
			// The flip may hit a labels/source byte... but then the CRC
			// catches it. A clean decode means the flip landed nowhere —
			// impossible for a bit flip.
			t.Fatalf("bit-flipped snapshot decoded: %+v", s)
		}
	}
}

func TestSnapshotVersionBothDirections(t *testing.T) {
	for _, ver := range []uint16{0, 1, Version + 1, 0xFFFF} {
		file := append([]byte(Magic), 0, 0)
		binary.LittleEndian.PutUint16(file[len(Magic):], ver)
		file = append(file, 0)
		file = binary.LittleEndian.AppendUint32(file, 0)
		var verr *VersionError
		_, err := Decode(file)
		if !errors.As(err, &verr) {
			t.Fatalf("version %d: err = %v, want *VersionError", ver, err)
		}
		if verr.Got != ver || verr.Supported != Version {
			t.Errorf("version %d: error carries got=%d supported=%d", ver, verr.Got, verr.Supported)
		}
	}
}

func TestSnapshotWriteAtomicity(t *testing.T) {
	dir := t.TempDir()
	first := &Snapshot{Offset: 1}
	if _, err := Write(dir, first); err != nil {
		t.Fatal(err)
	}
	second := &Snapshot{Offset: 2}
	path, err := Write(dir, second)
	if err != nil {
		t.Fatal(err)
	}
	if path != Path(dir) {
		t.Errorf("path = %q, want %q", path, Path(dir))
	}
	got, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Offset != 2 {
		t.Errorf("offset = %d, want 2 (latest write wins)", got.Offset)
	}
	// No temp file left behind.
	if _, err := os.Stat(filepath.Join(dir, FileName+".tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("temp file left behind: %v", err)
	}
	// Missing directory reads as ErrNoSnapshot.
	if _, err := Read(filepath.Join(dir, "nope")); !errors.Is(err, ErrNoSnapshot) {
		t.Errorf("missing dir: err = %v, want ErrNoSnapshot", err)
	}
}
