// Package collector simulates the paper's data collection agents. The real
// SAQL deployment monitors kernel audit frameworks (auditd on Linux, ETW on
// Windows, DTrace on MacOS) across ~150 enterprise hosts; offline, this
// package generates the same ⟨subject, operation, object⟩ event schema with
// realistic per-host behaviour profiles (workstations, database servers,
// web servers, mail servers, domain controllers), deterministic under a
// seed so experiments are reproducible.
package collector

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"saql/internal/event"
)

// HostKind selects a behaviour profile for a simulated host.
type HostKind uint8

// Host profiles.
const (
	Workstation HostKind = iota
	DBServer
	WebServer
	MailServer
	DomainController
)

// String names the host kind.
func (k HostKind) String() string {
	switch k {
	case Workstation:
		return "workstation"
	case DBServer:
		return "db-server"
	case WebServer:
		return "web-server"
	case MailServer:
		return "mail-server"
	case DomainController:
		return "domain-controller"
	default:
		return "unknown"
	}
}

// Host describes one simulated host.
type Host struct {
	AgentID string
	Kind    HostKind
	// Rate is the average background event rate in events/second.
	// Zero uses the profile default.
	Rate float64
}

func (h Host) rate() float64 {
	if h.Rate > 0 {
		return h.Rate
	}
	switch h.Kind {
	case DBServer, WebServer:
		return 20
	case MailServer, DomainController:
		return 10
	default:
		return 5
	}
}

// procInfo is a background process template.
type procInfo struct {
	exe string
	pid int32
	// weights for the activity mix
	wFile, wNet, wSpawn float64
	children            []string
	files               []string
	dstIPs              []string
	netAmount           float64 // lognormal median bytes per network op
}

// Generator produces the background event stream for a set of hosts,
// deterministic under seed. Events are emitted in global time order.
type Generator struct {
	hosts []hostState
	rng   *rand.Rand
	end   time.Time
	seq   uint64
}

type hostState struct {
	host  Host
	procs []procInfo
	next  time.Time
	gap   float64 // mean inter-event gap seconds
}

// Config configures a Generator.
type Config struct {
	Hosts    []Host
	Start    time.Time
	Duration time.Duration
	Seed     int64
}

// New creates a background generator.
func New(cfg Config) (*Generator, error) {
	if len(cfg.Hosts) == 0 {
		return nil, fmt.Errorf("collector: no hosts configured")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("collector: non-positive duration %v", cfg.Duration)
	}
	g := &Generator{
		rng: rand.New(rand.NewSource(cfg.Seed)),
		end: cfg.Start.Add(cfg.Duration),
	}
	for _, h := range cfg.Hosts {
		hs := hostState{host: h, procs: profileProcs(h, g.rng), gap: 1 / h.rate()}
		// Stagger hosts' first events deterministically.
		hs.next = cfg.Start.Add(time.Duration(g.rng.Float64() * hs.gap * float64(time.Second)))
		g.hosts = append(g.hosts, hs)
	}
	return g, nil
}

// profileProcs builds the process mix for a host kind.
func profileProcs(h Host, rng *rand.Rand) []procInfo {
	pid := func() int32 { return int32(1000 + rng.Intn(30000)) }
	internal := func(n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("10.0.%d.%d", 1+rng.Intn(3), 2+rng.Intn(200))
		}
		return out
	}
	external := []string{"93.184.216.34", "151.101.1.140", "142.250.72.206", "104.16.133.229"}

	switch h.Kind {
	case DBServer:
		return []procInfo{
			{exe: "sqlservr.exe", pid: pid(), wFile: 0.3, wNet: 0.65, wSpawn: 0.05,
				children: []string{"sqlagent.exe"},
				files:    []string{`C:\db\master.mdf`, `C:\db\tempdb.mdf`, `C:\db\app.mdf`, `C:\db\app_log.ldf`},
				dstIPs:   internal(12), netAmount: 48_000},
			{exe: "svchost.exe", pid: pid(), wFile: 0.7, wNet: 0.3,
				files:  []string{`C:\Windows\System32\config\SYSTEM`, `C:\Windows\Temp\etl.log`},
				dstIPs: internal(2), netAmount: 2_000},
		}
	case WebServer:
		return []procInfo{
			{exe: "apache.exe", pid: pid(), wFile: 0.35, wNet: 0.45, wSpawn: 0.2,
				children: []string{"php-cgi.exe", "perl.exe"},
				files:    []string{`/var/www/index.php`, `/var/www/app/config.php`, `/var/log/apache/access.log`},
				dstIPs:   internal(20), netAmount: 12_000},
			{exe: "sshd", pid: pid(), wFile: 0.5, wNet: 0.5,
				files:  []string{`/var/log/auth.log`},
				dstIPs: internal(3), netAmount: 1_500},
		}
	case MailServer:
		return []procInfo{
			{exe: "exchange.exe", pid: pid(), wFile: 0.4, wNet: 0.6,
				files:  []string{`C:\mail\queue\q1.eml`, `C:\mail\store\mailbox.edb`},
				dstIPs: append(internal(8), external...), netAmount: 25_000},
			{exe: "smtpd.exe", pid: pid(), wFile: 0.3, wNet: 0.7,
				files:  []string{`C:\mail\spool\s.tmp`},
				dstIPs: append(internal(4), external...), netAmount: 8_000},
		}
	case DomainController:
		return []procInfo{
			{exe: "lsass.exe", pid: pid(), wFile: 0.5, wNet: 0.5,
				files:  []string{`C:\Windows\NTDS\ntds.dit`},
				dstIPs: internal(15), netAmount: 1_200},
			{exe: "dns.exe", pid: pid(), wFile: 0.1, wNet: 0.9,
				files:  []string{`C:\Windows\System32\dns\zone.dns`},
				dstIPs: internal(25), netAmount: 400},
		}
	default: // Workstation
		return []procInfo{
			{exe: "chrome.exe", pid: pid(), wFile: 0.25, wNet: 0.75,
				files:  []string{`C:\Users\u\AppData\Local\Chrome\Cache\f_1`, `C:\Users\u\Downloads\doc.pdf`},
				dstIPs: external, netAmount: 30_000},
			{exe: "outlook.exe", pid: pid(), wFile: 0.4, wNet: 0.6,
				files:  []string{`C:\Users\u\AppData\Outlook\inbox.ost`, `C:\Users\u\Downloads\attach.tmp`},
				dstIPs: []string{"10.0.2.10"}, netAmount: 15_000},
			{exe: "excel.exe", pid: pid(), wFile: 0.7, wNet: 0.1, wSpawn: 0.2,
				children: []string{"splwow64.exe"}, // print helper: Excel's one legitimate child
				files:    []string{`C:\Users\u\Documents\q3.xlsx`, `C:\Users\u\Documents\budget.xlsx`},
				dstIPs:   []string{"10.0.2.15"}, netAmount: 5_000},
			{exe: "explorer.exe", pid: pid(), wFile: 0.8, wSpawn: 0.2,
				children: []string{"notepad.exe", "winword.exe", "calc.exe"},
				files:    []string{`C:\Users\u\Desktop\notes.txt`},
				dstIPs:   nil, netAmount: 0},
			{exe: "svchost.exe", pid: pid(), wFile: 0.6, wNet: 0.4,
				files:  []string{`C:\Windows\Temp\upd.tmp`},
				dstIPs: []string{"10.0.2.20"}, netAmount: 1_000},
		}
	}
}

// Next returns the next background event in global time order, or false at
// the end of the configured duration.
func (g *Generator) Next() (*event.Event, bool) {
	// Pick the host with the earliest next-event time.
	hi := -1
	for i := range g.hosts {
		if g.hosts[i].next.After(g.end) {
			continue
		}
		if hi == -1 || g.hosts[i].next.Before(g.hosts[hi].next) {
			hi = i
		}
	}
	if hi == -1 {
		return nil, false
	}
	hs := &g.hosts[hi]
	ev := g.emit(hs)
	// Exponential inter-arrival with the host's mean gap.
	gap := g.expDuration(hs.gap)
	hs.next = hs.next.Add(gap)
	return ev, true
}

// Drain produces all remaining events.
func (g *Generator) Drain() []*event.Event {
	var out []*event.Event
	for {
		ev, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

func (g *Generator) expDuration(meanSeconds float64) time.Duration {
	u := g.rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return time.Duration(-math.Log(u) * meanSeconds * float64(time.Second))
}

// lognormal returns a lognormal sample with the given median.
func (g *Generator) lognormal(median float64) float64 {
	if median <= 0 {
		return 0
	}
	return median * math.Exp(g.rng.NormFloat64()*0.8)
}

func (g *Generator) emit(hs *hostState) *event.Event {
	// Pick a process weighted uniformly (profiles already encode mix via
	// their activity weights).
	p := &hs.procs[g.rng.Intn(len(hs.procs))]
	subj := event.Process(p.exe, p.pid)

	g.seq++
	at := hs.next
	r := g.rng.Float64() * (p.wFile + p.wNet + p.wSpawn)
	switch {
	case r < p.wFile && len(p.files) > 0:
		f := event.File(p.files[g.rng.Intn(len(p.files))])
		op := event.OpRead
		if g.rng.Float64() < 0.4 {
			op = event.OpWrite
		}
		return &event.Event{
			ID: g.seq, Time: at, AgentID: hs.host.AgentID,
			Subject: subj, Op: op, Object: f,
			Amount: g.lognormal(4096),
		}
	case r < p.wFile+p.wNet && len(p.dstIPs) > 0:
		dst := p.dstIPs[g.rng.Intn(len(p.dstIPs))]
		conn := event.NetConn(hostIP(hs.host.AgentID), int32(49000+g.rng.Intn(3000)), dst, wellKnownPort(g.rng))
		op := event.OpWrite
		if g.rng.Float64() < 0.45 {
			op = event.OpRead
		}
		return &event.Event{
			ID: g.seq, Time: at, AgentID: hs.host.AgentID,
			Subject: subj, Op: op, Object: conn,
			Amount: g.lognormal(p.netAmount),
		}
	case len(p.children) > 0:
		child := event.Process(p.children[g.rng.Intn(len(p.children))], int32(2000+g.rng.Intn(40000)))
		return &event.Event{
			ID: g.seq, Time: at, AgentID: hs.host.AgentID,
			Subject: subj, Op: event.OpStart, Object: child,
		}
	default:
		// Fall back to a file touch on the first file or a self loopback.
		f := event.File(`C:\Windows\Temp\idle.tmp`)
		if len(p.files) > 0 {
			f = event.File(p.files[0])
		}
		return &event.Event{
			ID: g.seq, Time: at, AgentID: hs.host.AgentID,
			Subject: subj, Op: event.OpRead, Object: f,
			Amount: g.lognormal(1024),
		}
	}
}

// hostIP derives a stable source IP from the agent id.
func hostIP(agentID string) string {
	var h uint32 = 2166136261
	for i := 0; i < len(agentID); i++ {
		h ^= uint32(agentID[i])
		h *= 16777619
	}
	return fmt.Sprintf("10.0.0.%d", 2+h%250)
}

func wellKnownPort(rng *rand.Rand) int32 {
	ports := []int32{80, 443, 445, 1433, 3306, 8080, 53, 25}
	return ports[rng.Intn(len(ports))]
}
