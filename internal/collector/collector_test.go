package collector

import (
	"testing"
	"time"

	"saql/internal/event"
)

var base = time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)

func config(seed int64) Config {
	return Config{
		Hosts: []Host{
			{AgentID: "ws-1", Kind: Workstation},
			{AgentID: "db-1", Kind: DBServer},
			{AgentID: "web-1", Kind: WebServer},
			{AgentID: "mail-1", Kind: MailServer},
			{AgentID: "dc-1", Kind: DomainController},
		},
		Start:    base,
		Duration: 2 * time.Minute,
		Seed:     seed,
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	g1, err := New(config(7))
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := New(config(7))
	a, b := g1.Drain(), g2.Drain()
	if len(a) == 0 {
		t.Fatal("no events generated")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Time.Equal(b[i].Time) || a[i].AgentID != b[i].AgentID ||
			a[i].Subject != b[i].Subject || a[i].Op != b[i].Op || a[i].Object != b[i].Object {
			t.Fatalf("event %d differs under same seed", i)
		}
	}
	g3, _ := New(config(8))
	c := g3.Drain()
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].Subject != c[i].Subject || !a[i].Time.Equal(c[i].Time) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestEventTimeOrderAndBounds(t *testing.T) {
	g, _ := New(config(1))
	var last time.Time
	n := 0
	for {
		ev, ok := g.Next()
		if !ok {
			break
		}
		if n > 0 && ev.Time.Before(last) {
			t.Fatalf("event %d out of order", n)
		}
		if ev.Time.Before(base) || ev.Time.After(base.Add(2*time.Minute)) {
			t.Fatalf("event outside duration: %v", ev.Time)
		}
		last = ev.Time
		n++
	}
	// 5 hosts at 5..20 events/s for 120s: expect thousands of events.
	if n < 1000 {
		t.Errorf("events = %d, suspiciously few", n)
	}
}

func TestHostsEmitTheirProfiles(t *testing.T) {
	g, _ := New(config(3))
	byAgent := map[string]map[string]bool{}
	types := map[event.Type]int{}
	for {
		ev, ok := g.Next()
		if !ok {
			break
		}
		if byAgent[ev.AgentID] == nil {
			byAgent[ev.AgentID] = map[string]bool{}
		}
		byAgent[ev.AgentID][ev.Subject.ExeName] = true
		types[ev.EventType()]++
		if ev.Subject.Type != event.EntityProcess {
			t.Fatal("subject must be a process")
		}
	}
	if !byAgent["db-1"]["sqlservr.exe"] {
		t.Error("db server never ran sqlservr.exe")
	}
	if !byAgent["web-1"]["apache.exe"] {
		t.Error("web server never ran apache.exe")
	}
	if !byAgent["ws-1"]["chrome.exe"] {
		t.Error("workstation never ran chrome")
	}
	// All three event categories must appear.
	for _, typ := range []event.Type{event.TypeFile, event.TypeProcess, event.TypeNetwork} {
		if types[typ] == 0 {
			t.Errorf("no %v events generated", typ)
		}
	}
}

func TestExcelSpawnsOnlyPrintHelper(t *testing.T) {
	// The invariant query's training data: Excel's benign children are
	// splwow64.exe only, so wscript.exe in the attack is a violation.
	g, _ := New(Config{
		Hosts:    []Host{{AgentID: "ws", Kind: Workstation, Rate: 50}},
		Start:    base,
		Duration: 5 * time.Minute,
		Seed:     11,
	})
	spawns := map[string]bool{}
	for {
		ev, ok := g.Next()
		if !ok {
			break
		}
		if ev.Subject.ExeName == "excel.exe" && ev.Op == event.OpStart {
			spawns[ev.Object.ExeName] = true
		}
	}
	if len(spawns) == 0 {
		t.Fatal("excel never spawned its helper (invariant training starves)")
	}
	if len(spawns) != 1 || !spawns["splwow64.exe"] {
		t.Errorf("excel children = %v, want only splwow64.exe", spawns)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Start: base, Duration: time.Minute}); err == nil {
		t.Error("no hosts accepted")
	}
	if _, err := New(Config{Hosts: []Host{{AgentID: "h"}}, Start: base}); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestHostKindString(t *testing.T) {
	kinds := map[HostKind]string{
		Workstation: "workstation", DBServer: "db-server", WebServer: "web-server",
		MailServer: "mail-server", DomainController: "domain-controller",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%v = %q, want %q", k, k.String(), want)
		}
	}
}

func TestCustomRate(t *testing.T) {
	slow, _ := New(Config{Hosts: []Host{{AgentID: "h", Kind: Workstation, Rate: 1}}, Start: base, Duration: time.Minute, Seed: 5})
	fast, _ := New(Config{Hosts: []Host{{AgentID: "h", Kind: Workstation, Rate: 50}}, Start: base, Duration: time.Minute, Seed: 5})
	ns, nf := len(slow.Drain()), len(fast.Drain())
	if nf < ns*10 {
		t.Errorf("rate scaling wrong: slow=%d fast=%d", ns, nf)
	}
}
