package pcode

import (
	"errors"
	"fmt"
	"math"

	"saql/internal/ast"
	"saql/internal/event"
	"saql/internal/expr"
	"saql/internal/value"
)

// ErrBindingMismatch is returned by Prog.Run when the event's entities do not
// have the types the program was compiled against. The engine falls back to
// the tree-walking path for that hit; under normal operation this cannot
// happen (an event only reaches a pattern's programs after matching the
// pattern's typed entity predicates).
var ErrBindingMismatch = errors.New("pcode: entity type does not match compiled binding")

// progMaxStack bounds the operand stack. Expressions deeper than this are
// rare (aggregation arguments are typically one or two operators) and keep
// the tree-walker.
const progMaxStack = 16

// Binding names the variables one pattern makes visible to its aggregation
// arguments: the subject/object entity variables with their static types,
// and the event alias. It mirrors engine.bindEnv — in particular the object
// binding shadows the subject when both use one variable name, and entity
// variables shadow the event alias.
type Binding struct {
	SubjVar  string
	ObjVar   string
	Alias    string
	SubjType event.EntityType
	ObjType  event.EntityType
}

// xOp is a stack-machine opcode.
type xOp uint8

const (
	xConst       xOp = iota // push in.val
	xSubjDefault            // push String(subject.DefaultAttr())
	xObjDefault             // push String(object.DefaultAttr())
	xSubjStr                // push String(subject.<fld>)
	xObjStr                 // push String(object.<fld>)
	xSubjInt                // push Int(subject.<fld>)
	xObjInt                 // push Int(object.<fld>)
	xEvtStr                 // push String(event.<fld>)
	xEvtInt                 // push Int(event.<fld>)
	xEvtFloat               // push Float(event.amount)
	xNot                    // pop b; push !b (error on non-boolean)
	xNeg                    // pop v; push -v (null stays null)
	xCard                   // pop v; push |v|
	xEq                     // pop r, l; push l == r (wildcard-aware)
	xNe                     // pop r, l; push l != r
	xLt                     // pop r, l; ordered comparisons (null -> false)
	xLe                     //
	xGt                     //
	xGe                     //
	xArith                  // pop r, l; push l <in.ab> r (null propagates)
	xAndJump                // pop b; false: push false, jump in.idx
	xOrJump                 // pop b; true: push true, jump in.idx
	xBool                   // pop v; push Bool(v) (error on non-boolean)
)

// xInstr is one stack-machine instruction.
type xInstr struct {
	op  xOp
	fld fld         // attribute selector for load ops
	ab  byte        // arithmetic operator for xArith ('+','-','*','/','%')
	idx int32       // jump target for xAndJump/xOrJump
	val value.Value // constant for xConst
	s   string      // operator text for xAndJump/xOrJump/xBool error messages
}

// Prog is a compiled expression: a flat instruction sequence over a fixed
// operand stack, evaluating one pattern's aggregation argument against a
// matched event without building an environment. Values are a tagged struct,
// so the stack lives in the frame and nothing boxes or allocates.
type Prog struct {
	ins      []xInstr
	needSubj bool
	needObj  bool
	subjType event.EntityType
	objType  event.EntityType
}

// CompileExpr compiles e against one pattern's bindings. It returns nil for
// any shape outside the compiled subset — calls, state/cluster/set
// operations, statically erroneous expressions, over-deep stacks — in which
// case the caller keeps the tree-walking evaluator (which owns all error
// semantics for those shapes).
func CompileExpr(e ast.Expr, b Binding) *Prog {
	c := &compiler{b: b}
	if !c.expr(e) || c.maxDepth > progMaxStack {
		return nil
	}
	return &Prog{
		ins:      c.ins,
		needSubj: c.usedSubj,
		needObj:  c.usedObj,
		subjType: b.SubjType,
		objType:  b.ObjType,
	}
}

// Run evaluates the program against one matched event. Errors are exactly
// the tree-walker's (same strings, raised under the same conditions); the
// returned value on error is always Null, which callers ignore.
//
//saql:hotpath
func (p *Prog) Run(ev *event.Event) (value.Value, error) {
	if p.needSubj && ev.Subject.Type != p.subjType {
		return value.Null, ErrBindingMismatch
	}
	if p.needObj && ev.Object.Type != p.objType {
		return value.Null, ErrBindingMismatch
	}
	var stack [progMaxStack]value.Value
	sp := 0
	ins := p.ins
	for i := 0; i < len(ins); i++ {
		in := &ins[i]
		switch in.op {
		case xConst:
			stack[sp] = in.val
			sp++
		case xSubjDefault:
			stack[sp] = value.String(ev.Subject.DefaultAttr())
			sp++
		case xObjDefault:
			stack[sp] = value.String(ev.Object.DefaultAttr())
			sp++
		case xSubjStr:
			s, _ := strField(&ev.Subject, in.fld)
			stack[sp] = value.String(s)
			sp++
		case xObjStr:
			s, _ := strField(&ev.Object, in.fld)
			stack[sp] = value.String(s)
			sp++
		case xSubjInt:
			stack[sp] = value.Int(intField(&ev.Subject, in.fld))
			sp++
		case xObjInt:
			stack[sp] = value.Int(intField(&ev.Object, in.fld))
			sp++
		case xEvtStr:
			s, _ := evtStrField(ev, in.fld)
			stack[sp] = value.String(s)
			sp++
		case xEvtInt:
			stack[sp] = value.Int(evtIntField(ev, in.fld))
			sp++
		case xEvtFloat:
			stack[sp] = value.Float(ev.Amount)
			sp++
		case xNot:
			b, ok := stack[sp-1].AsBool()
			if !ok {
				return value.Null, errNotBool(stack[sp-1].Kind())
			}
			stack[sp-1] = value.Bool(!b)
		case xNeg:
			v := stack[sp-1]
			if v.IsNull() {
				stack[sp-1] = value.Null
				break
			}
			nv, err := v.Neg()
			if err != nil {
				return value.Null, err
			}
			stack[sp-1] = nv
		case xCard:
			nv, err := card(stack[sp-1])
			if err != nil {
				return value.Null, err
			}
			stack[sp-1] = nv
		case xEq:
			stack[sp-2] = value.Bool(expr.EqualValues(stack[sp-2], stack[sp-1]))
			sp--
		case xNe:
			stack[sp-2] = value.Bool(!expr.EqualValues(stack[sp-2], stack[sp-1]))
			sp--
		case xLt, xLe, xGt, xGe:
			l, r := stack[sp-2], stack[sp-1]
			sp--
			if l.IsNull() || r.IsNull() {
				stack[sp-1] = value.Bool(false)
				break
			}
			c, err := l.Compare(r)
			if err != nil {
				return value.Null, err
			}
			var b bool
			switch in.op {
			case xLt:
				b = c < 0
			case xLe:
				b = c <= 0
			case xGt:
				b = c > 0
			default:
				b = c >= 0
			}
			stack[sp-1] = value.Bool(b)
		case xArith:
			l, r := stack[sp-2], stack[sp-1]
			sp--
			if l.IsNull() || r.IsNull() {
				stack[sp-1] = value.Null
				break
			}
			nv, err := l.Arith(in.ab, r)
			if err != nil {
				return value.Null, err
			}
			stack[sp-1] = nv
		case xAndJump:
			b, ok := stack[sp-1].AsBool()
			if !ok {
				return value.Null, errBoolOperand(in.s, stack[sp-1].Kind())
			}
			sp--
			if !b {
				stack[sp] = value.Bool(false)
				sp++
				i = int(in.idx) - 1
			}
		case xOrJump:
			b, ok := stack[sp-1].AsBool()
			if !ok {
				return value.Null, errBoolOperand(in.s, stack[sp-1].Kind())
			}
			sp--
			if b {
				stack[sp] = value.Bool(true)
				sp++
				i = int(in.idx) - 1
			}
		case xBool:
			b, ok := stack[sp-1].AsBool()
			if !ok {
				return value.Null, errBoolOperand(in.s, stack[sp-1].Kind())
			}
			stack[sp-1] = value.Bool(b)
		}
	}
	return stack[0], nil
}

// intField reads a numeric entity field at its native integer width,
// preserving the Int value kind the interpreter produces (Int/Int arithmetic
// differs from Float: '+' stays integral, '/' promotes).
//
//saql:hotpath
func intField(e *event.Entity, f fld) int64 {
	switch f {
	case fldPID:
		return int64(e.PID)
	case fldSPort:
		return int64(e.SrcPort)
	case fldDPort:
		return int64(e.DstPort)
	}
	return 0
}

// evtIntField reads an integer event attribute.
//
//saql:hotpath
func evtIntField(ev *event.Event, f fld) int64 {
	switch f {
	case fldTime:
		return ev.Time.UnixNano()
	case fldID:
		return int64(ev.ID)
	}
	return 0
}

// card implements the |...| operator exactly as the interpreter does.
func card(v value.Value) (value.Value, error) {
	switch v.Kind() {
	case value.KindSet:
		return value.Int(int64(v.SetLen())), nil
	case value.KindInt:
		iv := v.IntVal()
		if iv < 0 {
			iv = -iv
		}
		return value.Int(iv), nil
	case value.KindFloat:
		return value.Float(math.Abs(v.FloatVal())), nil
	case value.KindNull:
		return value.Int(0), nil
	default:
		return value.Null, errCard(v.Kind())
	}
}

// Error constructors live outside the hot-path functions (fmt formatting
// allocates); they fire at most once per reported evaluation error.

func errNotBool(k value.Kind) error {
	return fmt.Errorf("expr: ! requires a boolean, got %s", k)
}

func errBoolOperand(op string, k value.Kind) error {
	return fmt.Errorf("expr: %s requires boolean operands, got %s", op, k)
}

func errCard(k value.Kind) error {
	return fmt.Errorf("expr: |...| requires a set or number, got %s", k)
}

// compiler accumulates instructions and tracks operand-stack depth.
type compiler struct {
	b        Binding
	ins      []xInstr
	depth    int
	maxDepth int
	usedSubj bool
	usedObj  bool
}

func (c *compiler) emit(in xInstr, stackDelta int) {
	c.ins = append(c.ins, in)
	c.depth += stackDelta
	if c.depth > c.maxDepth {
		c.maxDepth = c.depth
	}
}

// expr compiles one node, reporting false to bail out to the tree-walker.
func (c *compiler) expr(e ast.Expr) bool {
	// Constant subtrees fold to a single push. A constant subtree that
	// evaluates with an error is NOT folded or compiled: the interpreter
	// raises that error per event, so the tree-walker keeps the expression.
	if v, isConst, err := constEval(e); isConst {
		if err != nil {
			return false
		}
		c.emit(xInstr{op: xConst, val: v}, 1)
		return true
	}

	switch x := e.(type) {
	case *ast.Ident:
		return c.ident(x.Name)

	case *ast.FieldExpr:
		return c.field(x)

	case *ast.UnaryExpr:
		if !c.expr(x.X) {
			return false
		}
		switch x.Op {
		case '!':
			c.emit(xInstr{op: xNot}, 0)
		case '-':
			c.emit(xInstr{op: xNeg}, 0)
		default:
			return false
		}
		return true

	case *ast.CardExpr:
		if !c.expr(x.X) {
			return false
		}
		c.emit(xInstr{op: xCard}, 0)
		return true

	case *ast.BinaryExpr:
		return c.binary(x)
	}
	// Calls, state indexing, and anything else stay interpreted.
	return false
}

func (c *compiler) binary(x *ast.BinaryExpr) bool {
	switch x.Op {
	case ast.OpAnd, ast.OpOr:
		return c.logical(x)

	case ast.OpEq, ast.OpNe, ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe,
		ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpDiv, ast.OpMod:
		if !c.expr(x.Left) || !c.expr(x.Right) {
			return false
		}
		switch x.Op {
		case ast.OpEq:
			c.emit(xInstr{op: xEq}, -1)
		case ast.OpNe:
			c.emit(xInstr{op: xNe}, -1)
		case ast.OpLt:
			c.emit(xInstr{op: xLt}, -1)
		case ast.OpLe:
			c.emit(xInstr{op: xLe}, -1)
		case ast.OpGt:
			c.emit(xInstr{op: xGt}, -1)
		case ast.OpGe:
			c.emit(xInstr{op: xGe}, -1)
		case ast.OpAdd:
			c.emit(xInstr{op: xArith, ab: '+'}, -1)
		case ast.OpSub:
			c.emit(xInstr{op: xArith, ab: '-'}, -1)
		case ast.OpMul:
			c.emit(xInstr{op: xArith, ab: '*'}, -1)
		case ast.OpDiv:
			c.emit(xInstr{op: xArith, ab: '/'}, -1)
		default:
			c.emit(xInstr{op: xArith, ab: '%'}, -1)
		}
		return true
	}
	// Set operators and 'in' work over window state, not per-event values.
	return false
}

// logical compiles && / || with short-circuit jump threading. A constant
// left side is resolved at compile time: the deciding value folds the whole
// node (done by constEval upstream), the pass-through value reduces the node
// to the right operand plus a boolean coercion — exactly the instruction the
// interpreter's final AsBool performs.
func (c *compiler) logical(x *ast.BinaryExpr) bool {
	opstr := x.Op.String()
	if lv, lc, lerr := constEval(x.Left); lc {
		if lerr != nil {
			return false
		}
		lb, ok := lv.AsBool()
		if !ok {
			return false // interpreter errors on every event; keep it
		}
		// (false && R) and (true || R) were folded by constEval before we
		// got here, so the left side must be the pass-through value.
		_ = lb
		if !c.expr(x.Right) {
			return false
		}
		c.emit(xInstr{op: xBool, s: opstr}, 0)
		return true
	}

	if !c.expr(x.Left) {
		return false
	}
	jmp := len(c.ins)
	op := xAndJump
	if x.Op == ast.OpOr {
		op = xOrJump
	}
	c.emit(xInstr{op: op, s: opstr}, -1)
	if !c.expr(x.Right) {
		return false
	}
	c.emit(xInstr{op: xBool, s: opstr}, 0)
	c.ins[jmp].idx = int32(len(c.ins))
	return true
}

// ident compiles a bare identifier, mirroring expr.evalIdent against the
// engine's per-hit environments (no invariant vars, no state).
func (c *compiler) ident(name string) bool {
	// Object binding shadows subject (bindEnv writes subject first, object
	// second into one map); entity variables shadow the event alias.
	if name != "" && name == c.b.ObjVar {
		c.usedObj = true
		c.emit(xInstr{op: xObjDefault}, 1)
		return true
	}
	if name != "" && name == c.b.SubjVar {
		c.usedSubj = true
		c.emit(xInstr{op: xSubjDefault}, 1)
		return true
	}
	if name != "" && name == c.b.Alias {
		return false // "event alias is not a value" — interpreter's error
	}
	// Unbound identifiers tolerate to null.
	c.emit(xInstr{op: xConst, val: value.Null}, 1)
	return true
}

// field compiles base.attr accesses, mirroring expr.evalField's resolution
// order: cluster, entity variables (object shadowing subject), event alias,
// then null for unbound bases.
func (c *compiler) field(x *ast.FieldExpr) bool {
	base, ok := x.Base.(*ast.Ident)
	if !ok {
		return false // state indexing and stranger bases stay interpreted
	}
	name := base.Name
	if name == "cluster" {
		// Per-hit environments carry no cluster view; nil resolves to null.
		c.emit(xInstr{op: xConst, val: value.Null}, 1)
		return true
	}
	if name != "" && name == c.b.ObjVar {
		return c.entityAttr(false, c.b.ObjType, x.Field)
	}
	if name != "" && name == c.b.SubjVar {
		return c.entityAttr(true, c.b.SubjType, x.Field)
	}
	if name != "" && name == c.b.Alias {
		return c.eventAttr(x.Field)
	}
	c.emit(xInstr{op: xConst, val: value.Null}, 1)
	return true
}

// entityAttr compiles a typed attribute load. Attributes invalid for the
// bound type raise an error in the interpreter, so those bail out.
func (c *compiler) entityAttr(subj bool, typ event.EntityType, attr string) bool {
	f, isStr, ok := resolveEntityAttr(typ, attr)
	if !ok {
		return false
	}
	var in xInstr
	switch {
	case subj && isStr:
		in = xInstr{op: xSubjStr, fld: f}
	case subj:
		in = xInstr{op: xSubjInt, fld: f}
	case isStr:
		in = xInstr{op: xObjStr, fld: f}
	default:
		in = xInstr{op: xObjInt, fld: f}
	}
	if subj {
		c.usedSubj = true
	} else {
		c.usedObj = true
	}
	c.emit(in, 1)
	return true
}

// eventAttr compiles an event-attribute load off the alias.
func (c *compiler) eventAttr(attr string) bool {
	f, _, ok := resolveEventAttr(attr)
	if !ok {
		return false
	}
	switch f {
	case fldAmount:
		c.emit(xInstr{op: xEvtFloat, fld: f}, 1)
	case fldAgent, fldOp:
		c.emit(xInstr{op: xEvtStr, fld: f}, 1)
	default: // time, id
		c.emit(xInstr{op: xEvtInt, fld: f}, 1)
	}
	return true
}

// constEval evaluates statically constant subtrees with the interpreter's
// exact semantics. isConst=false means the subtree reads runtime state; an
// error with isConst=true means the interpreter would raise that error on
// every evaluation (the caller then declines to compile).
func constEval(e ast.Expr) (v value.Value, isConst bool, err error) {
	switch x := e.(type) {
	case *ast.Literal:
		return x.Val, true, nil

	case *ast.UnaryExpr:
		xv, xc, xerr := constEval(x.X)
		if !xc {
			return value.Null, false, nil
		}
		if xerr != nil {
			return value.Null, true, xerr
		}
		switch x.Op {
		case '!':
			b, ok := xv.AsBool()
			if !ok {
				return value.Null, true, errNotBool(xv.Kind())
			}
			return value.Bool(!b), true, nil
		case '-':
			if xv.IsNull() {
				return value.Null, true, nil
			}
			nv, err := xv.Neg()
			return nv, true, err
		default:
			return value.Null, true, fmt.Errorf("expr: unknown unary operator %q", string(x.Op))
		}

	case *ast.CardExpr:
		xv, xc, xerr := constEval(x.X)
		if !xc {
			return value.Null, false, nil
		}
		if xerr != nil {
			return value.Null, true, xerr
		}
		nv, err := card(xv)
		return nv, true, err

	case *ast.BinaryExpr:
		return constBinary(x)
	}
	return value.Null, false, nil
}

func constBinary(x *ast.BinaryExpr) (v value.Value, isConst bool, err error) {
	if x.Op == ast.OpAnd || x.Op == ast.OpOr {
		lv, lc, lerr := constEval(x.Left)
		if !lc {
			return value.Null, false, nil
		}
		if lerr != nil {
			return value.Null, true, lerr
		}
		lb, ok := lv.AsBool()
		if !ok {
			return value.Null, true, errBoolOperand(x.Op.String(), lv.Kind())
		}
		// Short-circuit decides without the right side — exactly like the
		// interpreter, which never evaluates it (so a non-constant or even
		// erroneous right side does not matter here).
		if x.Op == ast.OpAnd && !lb {
			return value.Bool(false), true, nil
		}
		if x.Op == ast.OpOr && lb {
			return value.Bool(true), true, nil
		}
		rv, rc, rerr := constEval(x.Right)
		if !rc {
			return value.Null, false, nil
		}
		if rerr != nil {
			return value.Null, true, rerr
		}
		rb, ok := rv.AsBool()
		if !ok {
			return value.Null, true, errBoolOperand(x.Op.String(), rv.Kind())
		}
		return value.Bool(rb), true, nil
	}

	lv, lc, lerr := constEval(x.Left)
	if !lc {
		return value.Null, false, nil
	}
	if lerr != nil {
		return value.Null, true, lerr
	}
	rv, rc, rerr := constEval(x.Right)
	if !rc {
		return value.Null, false, nil
	}
	if rerr != nil {
		return value.Null, true, rerr
	}

	switch x.Op {
	case ast.OpEq, ast.OpNe:
		eq := expr.EqualValues(lv, rv)
		if x.Op == ast.OpNe {
			eq = !eq
		}
		return value.Bool(eq), true, nil

	case ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe:
		if lv.IsNull() || rv.IsNull() {
			return value.Bool(false), true, nil
		}
		c, err := lv.Compare(rv)
		if err != nil {
			return value.Null, true, err
		}
		var b bool
		switch x.Op {
		case ast.OpLt:
			b = c < 0
		case ast.OpLe:
			b = c <= 0
		case ast.OpGt:
			b = c > 0
		default:
			b = c >= 0
		}
		return value.Bool(b), true, nil

	case ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpDiv, ast.OpMod:
		if lv.IsNull() || rv.IsNull() {
			return value.Null, true, nil
		}
		var op byte
		switch x.Op {
		case ast.OpAdd:
			op = '+'
		case ast.OpSub:
			op = '-'
		case ast.OpMul:
			op = '*'
		case ast.OpDiv:
			op = '/'
		default:
			op = '%'
		}
		nv, err := lv.Arith(op, rv)
		return nv, true, err
	}
	// Set operators / 'in' never fold (the compiler bails on them anyway).
	return value.Null, false, nil
}
