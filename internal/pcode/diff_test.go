package pcode_test

// Differential correctness harness for the compiled evaluators: every
// randomized case is executed by both the pcode program and the original
// tree-walking path, and the results — value AND error — must agree exactly.
// Three surfaces are covered: entity-pattern predicates, global-constraint
// predicates, and aggregation-argument expression programs. The same
// generators drive a testing/quick property and a fuzz target whose seed
// corpus runs in CI as part of `go test`.

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"saql/internal/ast"
	"saql/internal/event"
	"saql/internal/expr"
	"saql/internal/matcher"
	"saql/internal/pcode"
	"saql/internal/symtab"
	"saql/internal/value"
)

// stringPool mixes the shapes that historically break case-folded matching:
// wildcards in both operand positions, case variants, empty strings, and
// non-ASCII values whose Unicode ToLower diverges from ASCII folding (Kelvin
// sign, dotted capital I).
var stringPool = []string{
	"", "cmd.exe", "CMD.EXE", "Cmd.Exe", "osql.exe", "%osql.exe", "sbblv.exe",
	"%", "%%", "a%b", "x", "X", "/usr/bin/curl", "C:\\Windows\\cmd.exe",
	"10.0.0.5", "192.168.1.77", "tcp", "UDP", "alice", "Bob",
	"\u212Aelvin", "\u0130stanbul", "na\u00EFve", "caf\u00E9",
}

func pick[T any](r *rand.Rand, xs []T) T { return xs[r.Intn(len(xs))] }

func genLiteral(r *rand.Rand) *ast.Literal {
	var v value.Value
	switch r.Intn(6) {
	case 0, 1:
		v = value.String(pick(r, stringPool))
	case 2:
		v = value.Int(int64(r.Intn(21) - 10))
	case 3:
		v = value.Float([]float64{-1.5, 0, 0.5, 3.25, 4096}[r.Intn(5)])
	case 4:
		v = value.Bool(r.Intn(2) == 0)
	default:
		v = value.Null
	}
	return &ast.Literal{Val: v}
}

var cmpOps = []ast.CompareOp{ast.CmpEq, ast.CmpNe, ast.CmpLt, ast.CmpLe, ast.CmpGt, ast.CmpGe}

// attrPools include every real attribute (and aliases) per entity type plus
// attributes that are invalid for the type, and "" for the default.
var (
	procAttrs = []string{"", "exe_name", "exe", "name", "pid", "user", "cmdline", "path", "dstip", "bogus"}
	fileAttrs = []string{"", "name", "path", "filename", "basename", "pid", "dstip", "bogus"}
	ipAttrs   = []string{"", "srcip", "dstip", "dip", "sport", "dport", "protocol", "exe_name", "bogus"}
	evAttrs   = []string{"amount", "bytes", "agentid", "host", "time", "id", "optype", "op", "pid", "bogus"}
)

func attrsFor(t event.EntityType) []string {
	switch t {
	case event.EntityProcess:
		return procAttrs
	case event.EntityFile:
		return fileAttrs
	default:
		return ipAttrs
	}
}

var entityTypes = []event.EntityType{event.EntityProcess, event.EntityFile, event.EntityNetConn}

func genEntityPattern(r *rand.Rand, typ event.EntityType, v string) *ast.EntityPattern {
	p := &ast.EntityPattern{Type: typ, Var: v}
	for i := r.Intn(4); i > 0; i-- {
		p.Constraints = append(p.Constraints, &ast.AttrConstraint{
			Attr: pick(r, attrsFor(typ)),
			Op:   pick(r, cmpOps),
			Val:  genLiteral(r),
		})
	}
	return p
}

// maybeSym stamps a symbol exactly the way the codec intern tables do:
// either zero (never interned) or the value's true dictionary symbol.
func maybeSym(r *rand.Rand, s string) uint32 {
	if r.Intn(2) == 0 {
		return 0
	}
	return symtab.Intern(s)
}

func genEntity(r *rand.Rand, typ event.EntityType) event.Entity {
	e := event.Entity{Type: typ}
	switch typ {
	case event.EntityProcess:
		e.ExeName = pick(r, stringPool)
		e.ExeSym = maybeSym(r, e.ExeName)
		e.PID = int32(r.Intn(8) + 1)
		e.User = pick(r, stringPool)
		e.UserSym = maybeSym(r, e.User)
		e.CmdLine = pick(r, stringPool)
	case event.EntityFile:
		e.Path = pick(r, stringPool)
	case event.EntityNetConn:
		e.SrcIP = pick(r, stringPool)
		e.SrcIPSym = maybeSym(r, e.SrcIP)
		e.DstIP = pick(r, stringPool)
		e.DstIPSym = maybeSym(r, e.DstIP)
		e.SrcPort = int32(r.Intn(1024))
		e.DstPort = int32(r.Intn(1024))
		e.Protocol = pick(r, []string{"tcp", "TCP", "udp"})
		e.ProtoSym = maybeSym(r, e.Protocol)
	}
	return e
}

var opsPool = []event.Op{event.OpRead, event.OpWrite, event.OpExecute, event.OpStart, event.OpConnect}

func genEvent(r *rand.Rand, objType event.EntityType) *event.Event {
	ev := &event.Event{
		ID:      uint64(r.Intn(1000)),
		Time:    time.Unix(1700000000, int64(r.Intn(1e9))),
		AgentID: pick(r, stringPool),
		Subject: genEntity(r, event.EntityProcess),
		Op:      pick(r, opsPool),
		Object:  genEntity(r, objType),
		Amount:  []float64{0, 1, 1024.5, 1 << 20}[r.Intn(4)],
	}
	ev.AgentSym = maybeSym(r, ev.AgentID)
	return ev
}

// diffEntity checks one random entity pattern against one random entity.
func diffEntity(r *rand.Rand) error {
	typ := pick(r, entityTypes)
	p := genEntityPattern(r, typ, "x")
	prog := pcode.CompileEntity(p, nil)
	if prog == nil {
		return nil // shape outside the compiled subset: closure retained
	}
	pred, err := matcher.CompileEntityPattern(p)
	if err != nil {
		return fmt.Errorf("interpreter rejected pattern %s: %v", p, err)
	}
	// Test against entities of the pattern's type and of others.
	for i := 0; i < 4; i++ {
		e := genEntity(r, pick(r, entityTypes))
		want, got := pred(&e), prog.Match(&e)
		if want != got {
			return fmt.Errorf("entity pattern %s on %s: interpreted=%v compiled=%v", p, e.String(), want, got)
		}
	}
	return nil
}

// diffGlobals checks random global constraints against random events.
func diffGlobals(r *rand.Rand) error {
	var cs []*ast.Constraint
	for i := r.Intn(3) + 1; i > 0; i-- {
		cs = append(cs, &ast.Constraint{
			Attr: pick(r, evAttrs),
			Op:   pick(r, cmpOps),
			Val:  genLiteral(r),
		})
	}
	prog := pcode.CompileGlobals(cs, nil)
	if prog == nil {
		return nil
	}
	pred := matcher.CompileGlobals(cs)
	for i := 0; i < 4; i++ {
		ev := genEvent(r, pick(r, entityTypes))
		want, got := pred(ev), prog.Match(ev)
		if want != got {
			return fmt.Errorf("globals %v on %s: interpreted=%v compiled=%v", cs, ev, want, got)
		}
	}
	return nil
}

// genExpr builds a random expression over the binding's variables: entity
// idents and fields (valid and invalid attributes), event-alias fields,
// unbound names, cluster fields, literals, and all compiled operators.
func genExpr(r *rand.Rand, b pcode.Binding, depth int) ast.Expr {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(8) {
		case 0:
			return &ast.Ident{Name: b.SubjVar}
		case 1:
			return &ast.Ident{Name: b.ObjVar}
		case 2:
			return &ast.Ident{Name: "unbound"}
		case 3:
			return &ast.FieldExpr{Base: &ast.Ident{Name: b.SubjVar}, Field: pick(r, attrsFor(b.SubjType)[1:])}
		case 4:
			return &ast.FieldExpr{Base: &ast.Ident{Name: b.ObjVar}, Field: pick(r, attrsFor(b.ObjType)[1:])}
		case 5:
			return &ast.FieldExpr{Base: &ast.Ident{Name: b.Alias}, Field: pick(r, evAttrs)}
		case 6:
			return &ast.FieldExpr{Base: &ast.Ident{Name: "cluster"}, Field: "outlier"}
		default:
			return genLiteral(r)
		}
	}
	switch r.Intn(10) {
	case 0:
		return &ast.UnaryExpr{Op: '!', X: genExpr(r, b, depth-1)}
	case 1:
		return &ast.UnaryExpr{Op: '-', X: genExpr(r, b, depth-1)}
	case 2:
		return &ast.CardExpr{X: genExpr(r, b, depth-1)}
	default:
		ops := []ast.BinOp{
			ast.OpAnd, ast.OpOr, ast.OpEq, ast.OpNe, ast.OpLt, ast.OpLe,
			ast.OpGt, ast.OpGe, ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpDiv, ast.OpMod,
		}
		return &ast.BinaryExpr{Op: pick(r, ops), Left: genExpr(r, b, depth-1), Right: genExpr(r, b, depth-1)}
	}
}

// bindEnvLike reproduces engine.bindEnv for the binding: subject entity
// written first, object second (shadowing a shared name), alias bound last.
func bindEnvLike(b pcode.Binding, ev *event.Event) *expr.Env {
	env := &expr.Env{Entities: map[string]*event.Entity{}, Events: map[string]*event.Event{}}
	if b.SubjVar != "" {
		s := ev.Subject
		env.Entities[b.SubjVar] = &s
	}
	if b.ObjVar != "" {
		o := ev.Object
		env.Entities[b.ObjVar] = &o
	}
	if b.Alias != "" {
		env.Events[b.Alias] = ev
	}
	return env
}

func sameValue(a, b value.Value) bool {
	return a.Kind() == b.Kind() && a.String() == b.String()
}

// diffExpr checks one random expression program against the tree-walker on
// several events, comparing value and error.
func diffExpr(r *rand.Rand) error {
	b := pcode.Binding{
		SubjVar:  "p1",
		ObjVar:   pick(r, []string{"o1", "p1"}), // sometimes shared name
		Alias:    "evt",
		SubjType: event.EntityProcess,
		ObjType:  pick(r, entityTypes),
	}
	e := genExpr(r, b, 3)
	prog := pcode.CompileExpr(e, b)
	if prog == nil {
		return nil // tree-walker retained: nothing to diverge
	}
	for i := 0; i < 4; i++ {
		// Mostly well-typed events; occasionally a mismatched object type to
		// exercise the binding guard.
		objType := b.ObjType
		if r.Intn(8) == 0 {
			objType = pick(r, entityTypes)
		}
		ev := genEvent(r, objType)
		gotV, gotErr := prog.Run(ev)
		if gotErr == pcode.ErrBindingMismatch {
			if ev.Object.Type == b.ObjType && ev.Subject.Type == b.SubjType {
				return fmt.Errorf("expr %s: spurious binding mismatch on %s", e, ev)
			}
			continue // engine falls back to the tree-walker for such hits
		}
		wantV, wantErr := expr.Eval(e, bindEnvLike(b, ev))
		if (wantErr == nil) != (gotErr == nil) {
			return fmt.Errorf("expr %s on %s: interpreted err=%v compiled err=%v", e, ev, wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				return fmt.Errorf("expr %s on %s: error text diverged:\n  interpreted: %v\n  compiled:    %v", e, ev, wantErr, gotErr)
			}
			continue
		}
		if !sameValue(wantV, gotV) {
			return fmt.Errorf("expr %s on %s: interpreted=%s(%s) compiled=%s(%s)",
				e, ev, wantV.Kind(), wantV, gotV.Kind(), gotV)
		}
	}
	return nil
}

func diffOnce(r *rand.Rand) error {
	if err := diffEntity(r); err != nil {
		return err
	}
	if err := diffGlobals(r); err != nil {
		return err
	}
	return diffExpr(r)
}

// TestCompiledEvalDifferential hammers all three compiled surfaces with a
// fixed-seed randomized sweep.
func TestCompiledEvalDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 4000; i++ {
		if err := diffOnce(r); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

// TestQuickCompiledEval states the differential property through
// testing/quick: for every generator seed, compiled and interpreted
// evaluation agree on value and error.
func TestQuickCompiledEval(t *testing.T) {
	prop := func(seed int64) bool {
		if err := diffOnce(rand.New(rand.NewSource(seed))); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// FuzzCompiledEval drives the same differential from fuzz seeds; the seed
// corpus below runs under plain `go test` in CI, and `go test -fuzz` expands
// it indefinitely.
func FuzzCompiledEval(f *testing.F) {
	for seed := int64(0); seed < 32; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := diffOnce(rand.New(rand.NewSource(seed))); err != nil {
			t.Fatal(err)
		}
	})
}
