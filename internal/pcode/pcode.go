// Package pcode compiles SAQL pattern predicates and aggregate-argument
// expressions to flat bytecode executed by small dispatch loops, replacing
// per-event AST interpretation on the engine's hot path.
//
// Three program shapes exist:
//
//   - EntityProg: an entity pattern's attribute constraints compiled to typed
//     comparison instructions. Field accesses are resolved to direct struct
//     reads at compile time (every constraint value is a literal, and
//     attribute validity depends only on the (entity type, name) pair), and
//     string equality compares interned symbol IDs (internal/symtab) when
//     both sides carry one, with a case-folding string fallback otherwise.
//   - EventProg: the same for a query's global constraints (agentid, amount,
//     optype, ...), compiled over whole events.
//   - Prog (prog.go): a stack machine for general expressions — the
//     aggregation arguments of stateful queries — compiled against one
//     pattern's variable bindings.
//
// Compilation is conservative: any shape the compiler does not fully
// understand yields a nil program and the caller keeps the existing
// tree-walking path, so error semantics and results are always preserved.
// The differential suite in this package pins compiled == interpreted on
// randomized inputs.
package pcode

import (
	"strings"
	"sync/atomic"

	"saql/internal/ast"
	"saql/internal/event"
	"saql/internal/symtab"
	"saql/internal/value"
)

// strFallbacks counts compiled string comparisons that could not use symbol
// IDs and fell back to a string compare (folded in place when both sides are
// ASCII, or the allocating value.WildcardMatch otherwise). A high rate
// relative to event volume means the stream's hot values are not reaching
// the dictionary (programmatic submission, table overflow, non-ASCII data).
// Programs compiled with an explicit sink (CompileEntity/CompileGlobals fb
// argument) count there instead, so each engine attributes fallbacks to its
// own queries; this process-wide counter is the default for standalone
// compiles.
var strFallbacks atomic.Int64

// StringFallbacks reports the process-wide fallback-to-string comparison
// count (programs compiled without an explicit sink).
func StringFallbacks() int64 { return strFallbacks.Load() }

// sinkOrGlobal resolves a fallback sink: nil selects the process-wide
// counter.
func sinkOrGlobal(fb *atomic.Int64) *atomic.Int64 {
	if fb == nil {
		return &strFallbacks
	}
	return fb
}

// fld selects one directly-readable field of an entity or event.
type fld uint8

const (
	fldNone fld = iota
	// Entity string fields.
	fldExe
	fldUser
	fldCmd
	fldPath
	fldBase // basename of Path
	fldSrcIP
	fldDstIP
	fldProto
	// Entity numeric fields.
	fldPID
	fldSPort
	fldDPort
	// Event fields (EventProg / Prog only).
	fldAmount
	fldAgent
	fldTime
	fldID
	fldOp
)

// resolveEntityAttr maps a SAQL attribute name to a field selector for one
// entity type, mirroring event.Entity.Attr exactly. str reports whether the
// field reads as a string (false: numeric). ok is false when the attribute
// does not exist for the type — in the interpreter that read fails, so
// constraint compilation turns the predicate constant-false and expression
// compilation falls back (the tree-walker owns the error).
func resolveEntityAttr(t event.EntityType, name string) (f fld, str bool, ok bool) {
	switch t {
	case event.EntityProcess:
		switch name {
		case "", "exe_name", "exename", "exe", "name":
			return fldExe, true, true
		case "pid":
			return fldPID, false, true
		case "user", "username":
			return fldUser, true, true
		case "cmdline", "cmd", "args":
			return fldCmd, true, true
		}
	case event.EntityFile:
		switch name {
		case "", "name", "path", "filename", "file_name":
			return fldPath, true, true
		case "basename":
			return fldBase, true, true
		}
	case event.EntityNetConn:
		switch name {
		case "":
			return fldDstIP, true, true
		case "srcip", "src_ip", "sip":
			return fldSrcIP, true, true
		case "dstip", "dst_ip", "dip":
			return fldDstIP, true, true
		case "sport", "src_port", "srcport":
			return fldSPort, false, true
		case "dport", "dst_port", "dstport":
			return fldDPort, false, true
		case "protocol", "proto":
			return fldProto, true, true
		}
	}
	return fldNone, false, false
}

// resolveEventAttr maps an event-level attribute name to a selector,
// mirroring event.Event.Attr. str reports string-valued selectors.
func resolveEventAttr(name string) (f fld, str bool, ok bool) {
	switch name {
	case "amount", "amt", "bytes":
		return fldAmount, false, true
	case "agentid", "agent_id", "host":
		return fldAgent, true, true
	case "time", "ts", "timestamp":
		return fldTime, false, true
	case "id":
		return fldID, false, true
	case "optype", "op", "operation":
		return fldOp, true, true
	}
	return fldNone, false, false
}

// strField reads a string field and its symbol ID (0 when the field carries
// no symbol).
//
//saql:hotpath
func strField(e *event.Entity, f fld) (string, uint32) {
	switch f {
	case fldExe:
		return e.ExeName, e.ExeSym
	case fldUser:
		return e.User, e.UserSym
	case fldCmd:
		return e.CmdLine, 0
	case fldPath:
		return e.Path, 0
	case fldBase:
		return baseName(e.Path), 0
	case fldSrcIP:
		return e.SrcIP, e.SrcIPSym
	case fldDstIP:
		return e.DstIP, e.DstIPSym
	case fldProto:
		return e.Protocol, e.ProtoSym
	}
	return "", 0
}

// numField reads a numeric entity field as float64 — the representation
// value.Value comparisons reduce numeric pairs to.
//
//saql:hotpath
func numField(e *event.Entity, f fld) float64 {
	switch f {
	case fldPID:
		return float64(e.PID)
	case fldSPort:
		return float64(e.SrcPort)
	case fldDPort:
		return float64(e.DstPort)
	}
	return 0
}

// baseName mirrors event's basename attribute without allocating.
func baseName(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' || p[i] == '\\' {
			return p[i+1:]
		}
	}
	return p
}

// eOp is an entity/event predicate opcode. Every instruction is an ANDed
// conjunct: the dispatch loop fails the predicate on the first false one.
type eOp uint8

const (
	eStrEq   eOp = iota // string equality (symbol fast path, fold fallback)
	eStrNe              // negated eStrEq
	eLike               // '%'-wildcard match
	eNotLike            // negated eLike
	eStrOrd             // ordered string comparison (case-sensitive, as value.Compare)
	eNumCmp             // numeric comparison, all six operators
)

// eInstr is one compiled constraint.
type eInstr struct {
	op   eOp
	fld  fld
	cmp  ast.CompareOp
	sym  uint32  // interned symbol of the constant (0: none)
	fold bool    // low is a valid pre-lowered ASCII form of raw
	low  string  // strings.ToLower(raw), ASCII constants only
	raw  string  // original constant (WildcardMatch fallback)
	num  float64 // numeric constant
}

// EntityProg is a compiled entity predicate: type check plus a flat conjunct
// list. never marks predicates that are statically unsatisfiable (invalid
// attribute, impossible type mix) — the interpreter returns false for those
// on every event, so the program does too, without executing anything.
type EntityProg struct {
	typ   event.EntityType
	never bool
	ins   []eInstr
	fb    *atomic.Int64 // fallback counter (never nil)
}

// CompileEntity compiles an entity pattern's constraints, or returns nil for
// shapes that must keep the interpreted closure (non-scalar constants).
// String-compare fallbacks at Match time are counted into fb (nil selects
// the process-wide counter), so engines can attribute fallbacks per query.
func CompileEntity(p *ast.EntityPattern, fb *atomic.Int64) *EntityProg {
	prog := &EntityProg{typ: p.Type, fb: sinkOrGlobal(fb)}
	for _, c := range p.Constraints {
		if prog.never {
			break // already unsatisfiable; no need to compile the rest
		}
		f, isStr, ok := resolveEntityAttr(p.Type, c.Attr)
		if !ok {
			// Attribute invalid for this type: the interpreted closure fails
			// the check on every entity of this type.
			prog.never = true
			break
		}
		in, never, drop := compileCheck(f, isStr, c.Op, c.Val.Val)
		switch {
		case in == nil && !never && !drop:
			return nil // unsupported constant kind: keep the closure
		case never:
			prog.never = true
		case drop:
			// Statically always-true (e.g. != across kinds): no instruction.
		default:
			prog.ins = append(prog.ins, *in)
		}
	}
	return prog
}

// compileCheck compiles one constraint against a resolved field. Exactly one
// of the results is meaningful: an instruction, never (statically false),
// drop (statically true), or all-zero (unsupported; caller bails).
func compileCheck(f fld, isStr bool, cmp ast.CompareOp, want value.Value) (in *eInstr, never, drop bool) {
	switch want.Kind() {
	case value.KindString:
		raw := want.Str()
		if !isStr {
			// Numeric field against a string constant: value.Equal is false
			// across kinds and value.Compare errors (compare() maps errors
			// to false), so only != passes.
			return nil, cmp != ast.CmpNe, cmp == ast.CmpNe
		}
		in := &eInstr{fld: f, cmp: cmp, raw: raw}
		if isASCII(raw) {
			in.fold = true
			in.low = strings.ToLower(raw)
		}
		switch cmp {
		case ast.CmpEq, ast.CmpNe:
			if strings.ContainsRune(raw, '%') {
				in.op = eLike
				if cmp == ast.CmpNe {
					in.op = eNotLike
				}
			} else {
				in.op = eStrEq
				if cmp == ast.CmpNe {
					in.op = eStrNe
				}
				in.sym = symtab.Intern(raw)
			}
		default:
			in.op = eStrOrd
		}
		return in, false, false

	case value.KindInt, value.KindFloat:
		if isStr {
			// String field against a numeric constant: mirror image of the
			// mixed case above.
			return nil, cmp != ast.CmpNe, cmp == ast.CmpNe
		}
		num, _ := want.AsFloat()
		return &eInstr{op: eNumCmp, fld: f, cmp: cmp, num: num}, false, false

	default:
		// Bool/set/null constants never appear in parsed constraints; keep
		// the interpreted closure for safety.
		return nil, false, false
	}
}

// Match runs the compiled predicate against one entity: the bytecode
// dispatch loop of pattern matching.
//
//saql:hotpath
func (p *EntityProg) Match(e *event.Entity) bool {
	if e.Type != p.typ || p.never {
		return false
	}
	for i := range p.ins {
		in := &p.ins[i]
		ok := false
		switch in.op {
		case eStrEq, eStrNe:
			got, gsym := strField(e, in.fld)
			var eq bool
			switch {
			case gsym != 0 && in.sym != 0:
				// Both sides interned: symbol equality IS case-folded string
				// equality (the dictionary is canonical under ToLower).
				eq = gsym == in.sym
			case in.fold && isASCII(got):
				eq = foldEqASCII(in.low, got)
				p.fb.Add(1)
			default:
				eq = value.WildcardMatch(in.raw, got)
				p.fb.Add(1)
			}
			ok = eq == (in.op == eStrEq)
		case eLike, eNotLike:
			got, _ := strField(e, in.fld)
			var m bool
			if in.fold && isASCII(got) {
				m = likeFoldASCII(in.low, got)
			} else {
				m = value.WildcardMatch(in.raw, got)
				p.fb.Add(1)
			}
			ok = m == (in.op == eLike)
		case eStrOrd:
			got, _ := strField(e, in.fld)
			ok = cmpOK(strings.Compare(got, in.raw), in.cmp)
		case eNumCmp:
			ok = numCmpOK(numField(e, in.fld), in.num, in.cmp)
		}
		if !ok {
			return false
		}
	}
	return true
}

// EventProg is a compiled global-constraint predicate over whole events.
type EventProg struct {
	never bool
	ins   []eInstr
	fb    *atomic.Int64 // fallback counter (never nil)
}

// CompileGlobals compiles a query's global constraints, or returns nil when
// a constant kind is unsupported (caller keeps the interpreted closure).
// fb receives string-fallback counts; nil selects the process-wide counter.
func CompileGlobals(globals []*ast.Constraint, fb *atomic.Int64) *EventProg {
	prog := &EventProg{fb: sinkOrGlobal(fb)}
	for _, g := range globals {
		if prog.never {
			break
		}
		f, isStr, ok := resolveEventAttr(g.Attr)
		if !ok {
			prog.never = true // unknown event attribute fails every event
			break
		}
		in, never, drop := compileCheck(f, isStr, g.Op, g.Val.Val)
		switch {
		case in == nil && !never && !drop:
			return nil
		case never:
			prog.never = true
		case drop:
		default:
			prog.ins = append(prog.ins, *in)
		}
	}
	return prog
}

// evtStrField reads a string-valued event attribute and its symbol.
//
//saql:hotpath
func evtStrField(ev *event.Event, f fld) (string, uint32) {
	switch f {
	case fldAgent:
		return ev.AgentID, ev.AgentSym
	case fldOp:
		return ev.Op.String(), 0
	}
	return "", 0
}

// evtNumField reads a numeric event attribute as float64. Time reduces
// through float64 exactly like the interpreter, which compares
// value.Int(UnixNano) via AsFloat.
//
//saql:hotpath
func evtNumField(ev *event.Event, f fld) float64 {
	switch f {
	case fldAmount:
		return ev.Amount
	case fldTime:
		return float64(ev.Time.UnixNano())
	case fldID:
		return float64(int64(ev.ID))
	}
	return 0
}

// Match runs the compiled global predicate against one event.
//
//saql:hotpath
func (p *EventProg) Match(ev *event.Event) bool {
	if p.never {
		return false
	}
	for i := range p.ins {
		in := &p.ins[i]
		ok := false
		switch in.op {
		case eStrEq, eStrNe:
			got, gsym := evtStrField(ev, in.fld)
			var eq bool
			switch {
			case gsym != 0 && in.sym != 0:
				eq = gsym == in.sym
			case in.fold && isASCII(got):
				eq = foldEqASCII(in.low, got)
				p.fb.Add(1)
			default:
				eq = value.WildcardMatch(in.raw, got)
				p.fb.Add(1)
			}
			ok = eq == (in.op == eStrEq)
		case eLike, eNotLike:
			got, _ := evtStrField(ev, in.fld)
			var m bool
			if in.fold && isASCII(got) {
				m = likeFoldASCII(in.low, got)
			} else {
				m = value.WildcardMatch(in.raw, got)
				p.fb.Add(1)
			}
			ok = m == (in.op == eLike)
		case eStrOrd:
			got, _ := evtStrField(ev, in.fld)
			ok = cmpOK(strings.Compare(got, in.raw), in.cmp)
		case eNumCmp:
			ok = numCmpOK(evtNumField(ev, in.fld), in.num, in.cmp)
		}
		if !ok {
			return false
		}
	}
	return true
}

// cmpOK applies an ordered comparison operator to a three-way compare
// result, exactly as matcher.compare does (Eq/Ne never reach here).
func cmpOK(c int, op ast.CompareOp) bool {
	switch op {
	case ast.CmpLt:
		return c < 0
	case ast.CmpLe:
		return c <= 0
	case ast.CmpGt:
		return c > 0
	case ast.CmpGe:
		return c >= 0
	}
	return false
}

// numCmpOK compares two numerics the way value.Equal/value.Compare do:
// through float64.
func numCmpOK(a, b float64, op ast.CompareOp) bool {
	switch op {
	case ast.CmpEq:
		return a == b
	case ast.CmpNe:
		return a != b
	case ast.CmpLt:
		return a < b
	case ast.CmpLe:
		return a <= b
	case ast.CmpGt:
		return a > b
	case ast.CmpGe:
		return a >= b
	}
	return false
}

// isASCII reports whether s is pure 7-bit. The fold fast paths require it:
// for ASCII strings, byte-wise case folding equals strings.ToLower, so the
// non-allocating comparisons below reproduce value.WildcardMatch exactly.
//
//saql:hotpath
func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// foldByte lowers one ASCII byte.
//
//saql:hotpath
func foldByte(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + ('a' - 'A')
	}
	return c
}

// foldEqASCII reports ToLower(s) == low for a pre-lowered ASCII low and an
// ASCII s, without allocating.
//
//saql:hotpath
func foldEqASCII(low, s string) bool {
	if len(low) != len(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if foldByte(s[i]) != low[i] {
			return false
		}
	}
	return true
}

// likeFoldASCII is value's likeMatch over a pre-lowered ASCII pattern and an
// ASCII subject folded byte-by-byte: the same two-pointer '%' backtracking,
// minus the two ToLower allocations.
//
//saql:hotpath
func likeFoldASCII(p, s string) bool {
	var pi, si int
	star := -1
	match := 0
	for si < len(s) {
		if pi < len(p) && p[pi] == foldByte(s[si]) {
			pi++
			si++
			continue
		}
		if pi < len(p) && p[pi] == '%' {
			star = pi
			match = si
			pi++
			continue
		}
		if star != -1 {
			pi = star + 1
			match++
			si = match
			continue
		}
		return false
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
