// Package analysis is a self-contained static-analysis framework for the
// SAQL engine's hand-maintained invariants — the conventions the headline
// guarantees rest on (recovery equivalence, sharded==serial, ≤2 allocs/event
// ingest) but that, before this package, only runtime hammers enforced.
//
// It deliberately mirrors the golang.org/x/tools/go/analysis surface
// (Analyzer / Pass / Diagnostic) so the analyzers read like standard vet
// passes and could be ported onto x/tools verbatim, but it is built entirely
// on the standard library (go/ast, go/types, go/importer) so the module
// stays dependency-free: package loading resolves imports through
// `go list -export` (see the load subpackage) and cmd/saql-lint speaks the
// `go vet -vettool` unitchecker protocol itself.
//
// The analyzers live in subpackages:
//
//   - codecpair:    every wire encode function's primitive sequence must
//     mirror its decode counterpart, and every codec must have both halves;
//   - hotpath:      functions annotated //saql:hotpath must not contain the
//     allocation shapes the ingest alloc gate budgets against;
//   - ctlorder:     engine state mutates only through the control-queue
//     envelope path, and lock-bearing values are never copied;
//   - determinism:  no wall-clock or unseeded randomness inside the
//     replay/checkpoint/eval cone, no map-iteration-order-dependent encoding.
//
// # Source annotations
//
// Analyzers honor magic comments (one per line, anywhere in the comment):
//
//	//saql:hotpath            function must pass the hotpath analyzer
//	//saql:ctlpath            function is part of the control-queue path
//	//saql:wallclock          genuinely wall-clock site (lease heartbeats,
//	                          informational timestamps); determinism skips it
//	//saql:coldpath           line is a one-time/amortized slow path inside a
//	                          hot function; hotpath skips it
//	//saql:codecpair-ignore   codec function excluded from pairing (give the
//	                          reason after the directive)
//
// Function-level directives go in the function's doc comment; line-level
// directives go on the flagged line or the line directly above it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name is the analyzer's identifier, as shown in diagnostics.
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Run applies the analyzer to one package, reporting findings through
	// pass.Report.
	Run func(*Pass) error
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one package's parsed and type-checked form to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver installs it.
	Report func(Diagnostic)

	// directives caches per-file line -> directive words, built lazily.
	directives map[*ast.File]map[int][]string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// DirectivePrefix introduces every SAQL analyzer annotation.
const DirectivePrefix = "//saql:"

// parseDirectives extracts the directive words ("hotpath", "wallclock", ...)
// from one comment group. A directive is a comment line whose text starts
// exactly with //saql: — anything after the word is free-form rationale.
func parseDirectives(cg *ast.CommentGroup) []string {
	if cg == nil {
		return nil
	}
	var out []string
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if !strings.HasPrefix(text, DirectivePrefix) {
			continue
		}
		word := strings.TrimPrefix(text, DirectivePrefix)
		if i := strings.IndexAny(word, " \t"); i >= 0 {
			word = word[:i]
		}
		if word != "" {
			out = append(out, word)
		}
	}
	return out
}

// FuncHasDirective reports whether fn's doc comment carries the directive
// word (e.g. "hotpath").
func FuncHasDirective(fn *ast.FuncDecl, word string) bool {
	for _, d := range parseDirectives(fn.Doc) {
		if d == word {
			return true
		}
	}
	return false
}

// fileDirectives indexes every directive comment in file by line number.
func (p *Pass) fileDirectives(file *ast.File) map[int][]string {
	if p.directives == nil {
		p.directives = map[*ast.File]map[int][]string{}
	}
	if m, ok := p.directives[file]; ok {
		return m
	}
	m := map[int][]string{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, DirectivePrefix) {
				continue
			}
			word := strings.TrimPrefix(text, DirectivePrefix)
			if i := strings.IndexAny(word, " \t"); i >= 0 {
				word = word[:i]
			}
			if word == "" {
				continue
			}
			line := p.Fset.Position(c.Pos()).Line
			m[line] = append(m[line], word)
		}
	}
	p.directives[file] = m
	return m
}

// FileFor returns the *ast.File containing pos, or nil.
func (p *Pass) FileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// Suppressed reports whether a diagnostic at pos is silenced by the given
// line-level directive: the directive sits on the same line (trailing
// comment) or on the line directly above (own-line comment).
func (p *Pass) Suppressed(pos token.Pos, word string) bool {
	file := p.FileFor(pos)
	if file == nil {
		return false
	}
	dirs := p.fileDirectives(file)
	line := p.Fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		for _, d := range dirs[l] {
			if d == word {
				return true
			}
		}
	}
	return false
}

// InTestFile reports whether pos falls in a _test.go file. The analyzers
// check production invariants; test code is exempt wholesale.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// IsEarlyExitBranch reports whether the statement list forms an early-exit
// (cold) branch: its last statement is a return or a panic call. Error
// branches in codecs and guards in hot functions end this way, and both the
// hotpath and codecpair analyzers treat them as off the measured path.
func IsEarlyExitBranch(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BranchStmt:
		return last.Tok == token.CONTINUE || last.Tok == token.BREAK || last.Tok == token.GOTO
	}
	return false
}
