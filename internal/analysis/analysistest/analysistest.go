// Package analysistest runs an analyzer over a testdata package and checks
// its diagnostics against // want "regexp" comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library.
//
// Test packages live under <analyzer>/testdata/src/<path>/ and may import
// real module packages (saql/internal/wire, ...); imports resolve through
// `go list -export` against the enclosing module, so the fixtures
// type-check exactly like production code.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"saql/internal/analysis"
	"saql/internal/analysis/load"
)

// Run loads testdata/src/<pkgpath> (relative to the calling test's
// directory), applies the analyzer, and reports mismatches between the
// diagnostics and the package's // want comments as test errors. It
// returns the diagnostics for additional assertions.
func Run(t *testing.T, a *analysis.Analyzer, pkgpath string) []analysis.Diagnostic {
	t.Helper()

	cwd, err := os.Getwd()
	if err != nil {
		t.Fatalf("analysistest: getwd: %v", err)
	}
	dir := filepath.Join(cwd, "testdata", "src", filepath.FromSlash(pkgpath))
	names, err := goFilesIn(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	if len(names) == 0 {
		t.Fatalf("analysistest: no Go files in %s", dir)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("analysistest: parse %s: %v", name, err)
		}
		files = append(files, f)
	}

	moduleRoot, err := load.ModuleRoot(cwd)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	imports := importPaths(files)
	resolver, err := load.NewResolver(moduleRoot, imports...)
	if err != nil {
		t.Fatalf("analysistest: resolving imports %v: %v", imports, err)
	}
	pkg, info, errs := load.CheckFiles(fset, pkgpath, files, resolver.Importer(fset))
	for _, e := range errs {
		t.Errorf("analysistest: type error in fixture: %v", e)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: analyzer %s: %v", a.Name, err)
	}

	checkWants(t, fset, files, diags)
	return diags
}

func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func importPaths(files []*ast.File) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	sort.Strings(out)
	return out
}

// want is one expectation parsed from a // want "re" comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`(?:\x60([^\x60]*)\x60|"((?:[^"\\]|\\.)*)")`)

// parseWants extracts expectations: a comment of the form
//
//	// want "regexp" "another"
//
// attaches to the line it sits on.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "want ")
				if !strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), "//")), "want ") {
					continue
				}
				spec := text[idx+len("want "):]
				pos := fset.Position(c.Pos())
				matches := wantRE.FindAllStringSubmatch(spec, -1)
				if len(matches) == 0 {
					t.Errorf("%s: malformed want comment: %s", pos, text)
					continue
				}
				for _, m := range matches {
					pat := m[1]
					if m[2] != "" || pat == "" {
						pat = m[2]
						// Undo the string-literal escaping used in the comment.
						pat = strings.ReplaceAll(pat, `\\`, `\`)
						pat = strings.ReplaceAll(pat, `\"`, `"`)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &want{
						file: pos.Filename,
						line: pos.Line,
						re:   re,
						raw:  pat,
					})
				}
			}
		}
	}
	return wants
}

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// NoDiagnostics asserts the run produced no findings (for clean fixtures).
func NoDiagnostics(t *testing.T, fset *token.FileSet, diags []analysis.Diagnostic) {
	t.Helper()
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s: %s", fset.Position(d.Pos), d.Message)
	}
}
