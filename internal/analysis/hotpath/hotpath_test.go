package hotpath_test

import (
	"testing"

	"saql/internal/analysis/analysistest"
	"saql/internal/analysis/hotpath"
)

// TestHot seeds one of each rejected allocation class inside a
// //saql:hotpath function and checks each is reported where seeded.
func TestHot(t *testing.T) {
	analysistest.Run(t, hotpath.Analyzer, "hot")
}

// TestClean checks the allowed shapes — value composites, slice makes,
// pointer boxing, cold branches, coldpath opt-outs, unannotated functions —
// produce no diagnostics.
func TestClean(t *testing.T) {
	analysistest.Run(t, hotpath.Analyzer, "hotclean")
}

// TestVM pins the bytecode dispatch-loop shape (internal/pcode): fixed
// operand stack, opcode switch, jump threading pass clean; maps, boxing,
// new(T), and string concat inside the loop are reported.
func TestVM(t *testing.T) {
	analysistest.Run(t, hotpath.Analyzer, "hotvm")
}
