// Package hotclean holds patterns hotpath must NOT flag: value composites,
// slice makes, pointer boxing, cold error branches, //saql:coldpath
// opt-outs, and unannotated functions.
package hotclean

import "fmt"

type point struct {
	x, y int
}

func sink(v any) { _ = v }

//saql:hotpath
func ok(s string, n int, buf []byte) []byte {
	p := point{x: n} // value composite: no heap escape
	xs := make([]int, 0, n)
	_ = xs
	if n < 0 {
		// Early-exit error branch is cold; anything goes.
		fmt.Printf("bad n %d for %s\n", n, s)
		panic("negative n")
	}
	sink(&p)                          // pointer boxing carries no payload copy
	seed := map[string]int{"init": 1} //saql:coldpath one-time table seed
	_ = seed
	return append(buf, s...)
}

// notHot is unannotated: the analyzer has no opinion about it.
func notHot() *point {
	fmt.Println("cold code allocates freely")
	return &point{}
}
