// Package hot seeds every allocation class hotpath rejects inside a
// //saql:hotpath function.
package hot

import "fmt"

type point struct {
	x, y int
}

func sink(v any) { _ = v }

//saql:hotpath
func bad(s string, n int) string {
	p := &point{x: n} // want `heap-escaping composite literal`
	_ = p
	m := make(map[string]int, n) // want `map allocation`
	_ = m
	ch := make(chan int) // want `channel allocation`
	_ = ch
	q := new(point) // want `new\(T\) allocation`
	_ = q
	lit := map[string]int{"a": 1} // want `map literal allocation`
	_ = lit
	fmt.Println(s) // want `fmt\.Println call`
	sink(n)        // want `interface boxing of int`
	return s + "!" // want `string concatenation`
}
