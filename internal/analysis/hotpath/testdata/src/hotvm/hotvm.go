// Package hotvm pins the bytecode dispatch-loop shape internal/pcode relies
// on: a fixed-size value stack, opcode switch dispatch, jump threading via
// index rewrites, and typed operand loads must all pass the analyzer clean
// — while boxing or map traffic smuggled into the same loop is still
// reported at the offending instruction.
package hotvm

type instr struct {
	op  byte
	idx int32
	num float64
	s   string
}

type prog struct {
	ins []instr
}

func sink(v any) { _ = v }

// run is the canonical dispatch shape: the analyzer must accept the whole
// loop without a single diagnostic.
//
//saql:hotpath
func (p *prog) run() float64 {
	var stack [16]float64 // fixed-size operand stack: stays on the stack
	sp := 0
	for i := 0; i < len(p.ins); i++ {
		in := p.ins[i]
		switch in.op {
		case 0: // push constant operand
			stack[sp] = in.num
			sp++
		case 1: // binary op pops two, pushes one
			sp--
			stack[sp-1] += stack[sp]
		case 2: // short-circuit jump threading: rewrite the loop index
			if stack[sp-1] == 0 {
				i = int(in.idx) - 1
			}
		case 3: // typed comparison folds to a flag push
			sp--
			if stack[sp-1] < stack[sp] {
				stack[sp-1] = 1
			} else {
				stack[sp-1] = 0
			}
		}
	}
	if sp == 0 {
		return 0
	}
	return stack[sp-1]
}

// runLeaky seeds the regressions a VM loop historically grows — per-run
// scratch maps, boxing operands into interfaces, formatting in the loop —
// and checks each is reported inside the dispatch body.
//
//saql:hotpath
func (p *prog) runLeaky() float64 {
	seen := map[int]bool{} // want `map literal allocation`
	var stack [16]float64
	sp := 0
	for i := 0; i < len(p.ins); i++ {
		in := p.ins[i]
		switch in.op {
		case 0:
			stack[sp] = in.num
			sp++
			sink(in.num) // want `interface boxing of float64`
		case 1:
			seen[i] = true
			trace := new(instr) // want `new\(T\) allocation`
			_ = trace
		case 2:
			lbl := in.s + "!" // want `string concatenation`
			_ = lbl
		}
	}
	_ = seen
	return stack[0]
}
