// Package hotpath statically backs the ingest allocation budget
// (TestIngestAllocsPerEventGate: ≤2 allocs/event): functions annotated
// //saql:hotpath — router delivery, scheduler.EvaluateBatch/IngestRouted,
// the wire.Reader decode loop, window assignment, the history ring — are
// rejected if they contain the allocation shapes that have historically
// crept into those paths:
//
//   - &T{...} composite literals (heap-escaping per-event allocation);
//   - map or channel allocation (make(map...), make(chan...), map literals);
//   - new(T);
//   - fmt.* calls (allocate for formatting and box their arguments);
//   - non-constant string concatenation;
//   - interface boxing of concrete non-pointer-shaped values (passing an
//     int or struct to an interface parameter allocates; passing a pointer,
//     map, chan or func does not).
//
// Value composite literals and slice make() are deliberately allowed: the
// hot paths amortize per-batch slice growth by design and value literals
// stay on the stack.
//
// Early-exit guards (`if err { ...; return }`) are off the measured path
// and skipped, matching how the runtime gate only measures the steady
// state. A genuinely cold line inside a hot function (a one-time lazy init)
// is suppressed with //saql:coldpath on the line or the line above.
// Function literals are not descended into: a closure's body runs on its
// own schedule and the literal itself is reported by the composite rules
// only if assigned per-event.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"saql/internal/analysis"
)

// Analyzer is the hotpath pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocation shapes in //saql:hotpath functions backing the ≤2 allocs/event ingest gate",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if pass.InTestFile(fn.Pos()) {
				continue
			}
			if !analysis.FuncHasDirective(fn, "hotpath") {
				continue
			}
			w := &walker{pass: pass, fn: fn.Name.Name}
			w.stmts(fn.Body.List)
		}
	}
	return nil
}

type walker struct {
	pass *analysis.Pass
	fn   string
}

func (w *walker) report(pos token.Pos, format string, args ...any) {
	if w.pass.Suppressed(pos, "coldpath") {
		return
	}
	args = append(args, w.fn)
	w.pass.Reportf(pos, format+" in //saql:hotpath function %s", args...)
}

// stmts walks a hot statement list, skipping early-exit guard bodies
// (`if cond { ...; return }` / panic) — those are the cold error branches
// the runtime gate never measures.
func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		w.expr(st.Cond)
		if !coldBody(st.Body.List) {
			w.stmts(st.Body.List)
		}
		if st.Else != nil {
			w.stmt(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		w.expr(st.Cond)
		if st.Post != nil {
			w.stmt(st.Post)
		}
		w.stmts(st.Body.List)
	case *ast.RangeStmt:
		w.expr(st.X)
		w.stmts(st.Body.List)
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		w.expr(st.Tag)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		w.stmt(st.Assign)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.stmt(cc.Comm)
				}
				w.stmts(cc.Body)
			}
		}
	case *ast.BlockStmt:
		w.stmts(st.List)
	case *ast.LabeledStmt:
		w.stmt(st.Stmt)
	case *ast.AssignStmt:
		if st.Tok == token.ADD_ASSIGN && len(st.Lhs) == 1 && w.isString(st.Lhs[0]) {
			w.report(st.TokPos, "string concatenation")
		}
		for _, r := range st.Rhs {
			w.expr(r)
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.expr(r)
		}
	case *ast.ExprStmt:
		w.expr(st.X)
	case *ast.SendStmt:
		w.expr(st.Chan)
		w.expr(st.Value)
	case *ast.IncDecStmt:
		w.expr(st.X)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	case *ast.DeferStmt:
		w.expr(st.Call)
	case *ast.GoStmt:
		w.expr(st.Call)
	}
}

// coldBody reports whether a guard body is an early exit (last statement is
// a return or panic), placing it off the hot path.
func coldBody(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (w *walker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					w.report(x.Pos(), "heap-escaping composite literal &%s{...}", typeLabel(w.pass, x.X))
					return false
				}
			}
		case *ast.CompositeLit:
			if tv, ok := w.pass.TypesInfo.Types[x]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					w.report(x.Pos(), "map literal allocation")
					return false
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && w.isString(x) {
				if tv, ok := w.pass.TypesInfo.Types[x]; !ok || tv.Value == nil {
					w.report(x.Pos(), "string concatenation")
				}
			}
		case *ast.CallExpr:
			w.call(x)
		}
		return true
	})
}

func (w *walker) call(call *ast.CallExpr) {
	tv, ok := w.pass.TypesInfo.Types[call.Fun]
	if ok && tv.IsType() {
		// Conversion. Converting to an interface type boxes the operand.
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at := w.typeOf(call.Args[0]); at != nil && !types.IsInterface(at) && !pointerShaped(at) {
				w.report(call.Pos(), "interface conversion boxes %s", at)
			}
		}
		return
	}

	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := w.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if len(call.Args) > 0 {
					if t := w.typeOf(call.Args[0]); t != nil {
						switch t.Underlying().(type) {
						case *types.Map:
							w.report(call.Pos(), "map allocation (make)")
						case *types.Chan:
							w.report(call.Pos(), "channel allocation (make)")
						}
					}
				}
			case "new":
				w.report(call.Pos(), "new(T) allocation")
			}
			return
		}
	}

	if fn := calleeFunc(w.pass, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		w.report(call.Pos(), "fmt.%s call", fn.Name())
		return
	}

	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	w.boxedArgs(call, sig)
}

// boxedArgs flags concrete non-pointer-shaped arguments passed to interface
// parameters — each such pass allocates (runtime.convT*).
func (w *walker) boxedArgs(call *ast.CallExpr, sig *types.Signature) {
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no per-element boxing
			}
			sl, ok := sig.Params().At(np - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = sl.Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := w.typeOf(arg)
		if at == nil || types.IsInterface(at) || pointerShaped(at) {
			continue
		}
		w.report(arg.Pos(), "interface boxing of %s", at)
	}
}

func (w *walker) typeOf(e ast.Expr) types.Type {
	tv, ok := w.pass.TypesInfo.Types[e]
	if !ok {
		return nil
	}
	if tv.Type == nil {
		return nil
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return nil
	}
	return tv.Type
}

func (w *walker) isString(e ast.Expr) bool {
	tv, ok := w.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// pointerShaped reports whether boxing a value of type t into an interface
// is allocation-free: pointers, channels, maps, and funcs fit the interface
// word directly.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := call.Fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func typeLabel(pass *analysis.Pass, e ast.Expr) string {
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Type != nil {
		return tv.Type.String()
	}
	return "T"
}
