// Package codecpair verifies the engine's encode/decode symmetry invariant:
// for every wire-format codec (the EncodeState/DecodeState split across agg,
// window, matcher, invariant, tsmodel and engine/state.go, the snapshot
// container payload, the dist frame payloads, and the wire value/entity/event
// codecs themselves), the decode half must read exactly the wire-primitive
// sequence the encode half writes, in the same order — and every codec must
// have both halves. Before this analyzer, drift between the halves only
// surfaced as a seed-dependent fuzz or conformance failure.
//
// # What is compared
//
// Encode functions (names matching Append*/append*/Encode*/encode*) are
// reduced to the ordered sequence of wire operations they perform:
//
//   - calls to the wire appenders (wire.AppendUvarint, wire.AppendString,
//     ...), normalized to a primitive kind (AppendTime is a Varint on the
//     wire; Reader.Count reads a Uvarint);
//   - raw single-byte appends (append(b, tagByte)) and []byte literals,
//     normalized to Byte;
//   - calls to other codec functions in this module (appendMembers,
//     agg.AppendState, ...), normalized to a pair key both halves share.
//
// Decode functions (Read*/read*/Decode*/decode*/Restore*/restore*) reduce
// the same way over *wire.Reader method calls. Control flow is preserved
// structurally: loops compare against loops, conditional branches against
// branches (alternatives match as a multiset, so a tag switch whose encode
// writes the tag inside each case still matches a decode that reads it once
// before switching), and error-handling branches are pruned.
//
// Container framing done with encoding/binary directly (snapshot magic and
// CRC, storage record headers, dist frame headers) is deliberately out of
// scope: those bytes are covered by the format fuzzers; this analyzer owns
// the wire-level payloads, which is where silent field drift lives.
//
// A pair can be excluded with //saql:codecpair-ignore in the function's doc
// comment (state the reason after the directive).
package codecpair

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"saql/internal/analysis"
)

// Analyzer is the codecpair pass.
var Analyzer = &analysis.Analyzer{
	Name: "codecpair",
	Doc:  "check that every wire codec's decode half reads exactly the primitive sequence its encode half writes",
	Run:  run,
}

// side distinguishes which half of a codec pair is being extracted.
type side int

const (
	encSide side = iota
	decSide
)

// Primitive kinds, post-normalization (AppendTime == Varint on the wire,
// Reader.Count == Uvarint).
const (
	kUvarint = "Uvarint"
	kVarint  = "Varint"
	kString  = "String"
	kBytes   = "Bytes"
	kBool    = "Bool"
	kUint32  = "Uint32"
	kFloat64 = "Float64"
	kByte    = "Byte"
	kValue   = "Value"
	kEntity  = "Entity"
	kEvent   = "Event"
)

// encPrims maps wire appender function names to primitive kinds.
var encPrims = map[string]string{
	"AppendUvarint": kUvarint,
	"AppendVarint":  kVarint,
	"AppendTime":    kVarint,
	"AppendString":  kString,
	"AppendBytes":   kBytes,
	"AppendBool":    kBool,
	"AppendUint32":  kUint32,
	"AppendFloat64": kFloat64,
	"AppendValue":   kValue,
	"AppendEntity":  kEntity,
	"AppendEvent":   kEvent,
}

// decPrims maps wire.Reader method names to primitive kinds.
var decPrims = map[string]string{
	"Uvarint":    kUvarint,
	"Varint":     kVarint,
	"Time":       kVarint,
	"String":     kString,
	"Bytes":      kBytes,
	"Bool":       kBool,
	"Uint32":     kUint32,
	"Float64":    kFloat64,
	"Byte":       kByte,
	"Count":      kUvarint,
	"ReadValue":  kValue,
	"ReadEntity": kEntity,
	"ReadEvent":  kEvent,
}

// leafAppenders are the wire package's own primitive definitions — excluded
// from pairing (they ARE the primitives; only the compound value/entity/event
// codecs inside wire participate as pairs).
var leafAppenders = map[string]bool{
	"AppendUvarint": true, "AppendVarint": true, "AppendTime": true,
	"AppendString": true, "AppendBytes": true, "AppendBool": true,
	"AppendUint32": true, "AppendFloat64": true,
}

// codecPackages names the packages whose Append*/Read* functions count as
// nested codec calls when referenced cross-package. Same-package calls
// always count.
var codecPackages = map[string]bool{
	"agg": true, "window": true, "matcher": true, "invariant": true,
	"tsmodel": true, "engine": true, "snapshot": true, "storage": true,
	"dist": true, "wire": true, "scheduler": true,
}

var encPrefixes = []string{"Append", "append", "Encode", "encode"}
var decPrefixes = []string{"Read", "read", "Decode", "decode", "Restore", "restore"}

// op is one node of a codec function's wire-operation tree.
type op struct {
	prim string // primitive kind; "" for structural nodes
	call string // pair key of a nested codec call; "" otherwise
	body []op   // loop body (loop node)
	alts [][]op // branch alternatives (branch node)
	pos  token.Pos
}

func (o op) isLoop() bool   { return o.body != nil }
func (o op) isBranch() bool { return o.alts != nil }

func (o op) String() string {
	switch {
	case o.prim != "":
		return o.prim
	case o.call != "":
		return "call(" + o.call + ")"
	case o.isLoop():
		return "loop{" + seqString(o.body) + "}"
	case o.isBranch():
		parts := make([]string, len(o.alts))
		for i, a := range o.alts {
			parts[i] = seqString(a)
		}
		return "branch{" + strings.Join(parts, " | ") + "}"
	}
	return "?"
}

func seqString(seq []op) string {
	parts := make([]string, len(seq))
	for i, o := range seq {
		parts[i] = o.String()
	}
	return strings.Join(parts, " ")
}

// half is one candidate codec function.
type half struct {
	fn     *ast.FuncDecl
	recv   string // receiver base type name; "" for free functions
	suffix string // name with the Append/Read/... prefix stripped
	ops    []op
	direct int // count of direct primitive ops (not nested calls)
	calls  int
}

func run(pass *analysis.Pass) error {
	ex := &extractor{pass: pass}
	encs := map[string]*half{} // key: recv + "\x00" + lower(suffix)
	decs := map[string]*half{}
	// all function names present in the package (even non-candidates), for
	// the missing-half check: recv + "\x00" + name.
	names := map[string]bool{}

	inWire := pass.Pkg != nil && pass.Pkg.Name() == "wire"

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if pass.InTestFile(fn.Pos()) {
				continue
			}
			recv := recvName(pass, fn)
			names[recv+"\x00"+fn.Name.Name] = true
			if analysis.FuncHasDirective(fn, "codecpair-ignore") {
				continue
			}
			name := fn.Name.Name
			if inWire {
				// The wire package defines the primitives; skip the leaf
				// appenders and every Reader method in the primitive table.
				if leafAppenders[name] {
					continue
				}
				if recv == "Reader" {
					if _, isPrim := decPrims[name]; isPrim {
						continue
					}
				}
			}
			if suffix, ok := stripPrefix(name, encPrefixes); ok {
				h := ex.extract(fn, recv, suffix, encSide)
				if h.direct >= 1 || h.calls >= 2 {
					encs[pairKey(recv, suffix)] = h
				}
			} else if suffix, ok := stripPrefix(name, decPrefixes); ok {
				h := ex.extract(fn, recv, suffix, decSide)
				if h.direct >= 1 || h.calls >= 2 {
					decs[pairKey(recv, suffix)] = h
				}
			}
		}
	}

	for key, enc := range encs {
		dec, ok := decs[key]
		if !ok {
			// A decode function may exist by name but fall below the
			// candidate bar (manual encoding/binary decoding): pairing is
			// then out of scope. Only a codec with no other half at all is
			// a finding.
			if !halfExists(names, enc.recv, enc.suffix, decPrefixes) {
				pass.Reportf(enc.fn.Pos(),
					"codec %s writes wire data but package %s has no matching decode (looked for %s)",
					funcLabel(enc), pass.Pkg.Name(), wantedNames(enc.suffix, decPrefixes))
			}
			continue
		}
		compareHalves(pass, enc, dec)
	}
	for key, dec := range decs {
		if _, ok := encs[key]; ok {
			continue
		}
		if !halfExists(names, dec.recv, dec.suffix, encPrefixes) {
			pass.Reportf(dec.fn.Pos(),
				"codec %s reads wire data but package %s has no matching encode (looked for %s)",
				funcLabel(dec), pass.Pkg.Name(), wantedNames(dec.suffix, encPrefixes))
		}
	}
	return nil
}

func pairKey(recv, suffix string) string {
	// Methods on wire.Reader pair with free appenders (AppendValue ↔
	// (*Reader).ReadValue).
	if recv == "Reader" {
		recv = ""
	}
	return recv + "\x00" + strings.ToLower(suffix)
}

func stripPrefix(name string, prefixes []string) (string, bool) {
	for _, p := range prefixes {
		if rest, ok := strings.CutPrefix(name, p); ok {
			// "appendix" is not an Append codec: after a lowercase prefix
			// the suffix must start a new word (or be empty).
			if rest != "" && p == strings.ToLower(p) && rest[0] >= 'a' && rest[0] <= 'z' {
				continue
			}
			return rest, true
		}
	}
	return "", false
}

func halfExists(names map[string]bool, recv, suffix string, prefixes []string) bool {
	for _, p := range prefixes {
		if names[recv+"\x00"+p+suffix] {
			return true
		}
		// Reader methods pair with free functions and vice versa.
		if recv == "" && names["Reader\x00"+p+suffix] {
			return true
		}
		if recv == "Reader" && names["\x00"+p+suffix] {
			return true
		}
	}
	return false
}

func wantedNames(suffix string, prefixes []string) string {
	parts := make([]string, len(prefixes))
	for i, p := range prefixes {
		parts[i] = p + suffix
	}
	return strings.Join(parts, "/")
}

func funcLabel(h *half) string {
	if h.recv != "" {
		return h.recv + "." + h.fn.Name.Name
	}
	return h.fn.Name.Name
}

func recvName(pass *analysis.Pass, fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// ---------------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------------

type extractor struct {
	pass *analysis.Pass
	side side
	// counters for the current extraction
	direct int
	calls  int
}

func (ex *extractor) extract(fn *ast.FuncDecl, recv, suffix string, s side) *half {
	ex.side = s
	ex.direct, ex.calls = 0, 0
	ops := normalize(ex.stmts(fn.Body.List))
	return &half{fn: fn, recv: recv, suffix: suffix, ops: ops, direct: ex.direct, calls: ex.calls}
}

// stmts extracts the op sequence of a statement list, restructuring
// early-exit guards (`if cond { ops...; return/continue }` followed by more
// statements) into explicit alternatives so encode and decode that spell the
// same optionality differently still align.
func (ex *extractor) stmts(list []ast.Stmt) []op {
	var seq []op
	for i, s := range list {
		switch st := s.(type) {
		case *ast.IfStmt:
			if st.Init != nil {
				seq = append(seq, ex.stmts([]ast.Stmt{st.Init})...)
			}
			seq = append(seq, ex.expr(st.Cond)...)
			body := ex.stmts(st.Body.List)
			var alts [][]op
			if st.Else == nil {
				if analysis.IsEarlyExitBranch(st.Body.List) {
					// Error guards (`if err != nil { return err }`) abort the
					// codec and impose no wire shape; success early exits
					// make everything after the guard conditional.
					if len(body) == 0 && ex.isFailurePath(st.Body.List) {
						continue
					}
					rest := ex.stmts(list[i+1:])
					return append(seq, branchOp(st.Pos(), body, rest))
				}
				alts = [][]op{body, nil}
			} else {
				alts = [][]op{body}
				alts = append(alts, ex.elseAlts(st.Else)...)
			}
			seq = append(seq, branchOp(st.Pos(), alts...))
		case *ast.SwitchStmt:
			if st.Init != nil {
				seq = append(seq, ex.stmts([]ast.Stmt{st.Init})...)
			}
			if st.Tag != nil {
				seq = append(seq, ex.expr(st.Tag)...)
			}
			seq = append(seq, ex.caseAlts(st.Pos(), st.Body.List)...)
		case *ast.TypeSwitchStmt:
			if st.Init != nil {
				seq = append(seq, ex.stmts([]ast.Stmt{st.Init})...)
			}
			seq = append(seq, ex.stmts([]ast.Stmt{st.Assign})...)
			seq = append(seq, ex.caseAlts(st.Pos(), st.Body.List)...)
		case *ast.ForStmt:
			if st.Init != nil {
				seq = append(seq, ex.stmts([]ast.Stmt{st.Init})...)
			}
			if st.Cond != nil {
				seq = append(seq, ex.expr(st.Cond)...)
			}
			body := ex.stmts(st.Body.List)
			if st.Post != nil {
				body = append(body, ex.stmts([]ast.Stmt{st.Post})...)
			}
			if len(body) > 0 {
				seq = append(seq, op{body: body, pos: st.Pos()})
			}
		case *ast.RangeStmt:
			seq = append(seq, ex.expr(st.X)...)
			body := ex.stmts(st.Body.List)
			if len(body) > 0 {
				seq = append(seq, op{body: body, pos: st.Pos()})
			}
		case *ast.BlockStmt:
			seq = append(seq, ex.stmts(st.List)...)
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				seq = append(seq, ex.expr(r)...)
			}
		case *ast.AssignStmt:
			// LHS index expressions can carry ops (into[r.String()] = ...)
			// and evaluate before the RHS.
			for _, l := range st.Lhs {
				seq = append(seq, ex.expr(l)...)
			}
			for _, r := range st.Rhs {
				seq = append(seq, ex.expr(r)...)
			}
		case *ast.ExprStmt:
			seq = append(seq, ex.expr(st.X)...)
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							seq = append(seq, ex.expr(v)...)
						}
					}
				}
			}
		case *ast.SendStmt:
			seq = append(seq, ex.expr(st.Value)...)
		case *ast.DeferStmt:
			seq = append(seq, ex.expr(st.Call)...)
		case *ast.GoStmt:
			seq = append(seq, ex.expr(st.Call)...)
		case *ast.LabeledStmt:
			seq = append(seq, ex.stmts([]ast.Stmt{st.Stmt})...)
		}
	}
	return seq
}

// elseAlts flattens an else branch (block or else-if chain) into
// alternatives.
func (ex *extractor) elseAlts(e ast.Stmt) [][]op {
	switch st := e.(type) {
	case *ast.BlockStmt:
		return [][]op{ex.stmts(st.List)}
	case *ast.IfStmt:
		// Fold the chained condition's ops into the alternative head.
		var head []op
		if st.Init != nil {
			head = append(head, ex.stmts([]ast.Stmt{st.Init})...)
		}
		head = append(head, ex.expr(st.Cond)...)
		alts := [][]op{append(head, ex.stmts(st.Body.List)...)}
		if st.Else != nil {
			alts = append(alts, ex.elseAlts(st.Else)...)
		} else {
			alts = append(alts, nil)
		}
		return alts
	}
	return nil
}

func (ex *extractor) caseAlts(pos token.Pos, clauses []ast.Stmt) []op {
	var alts [][]op
	hasDefault := false
	for _, c := range clauses {
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			alt := ex.stmts(cc.Body)
			// Error-path alternatives (default: return fmt.Errorf / r.Fail)
			// carry no wire data and exist on one side only; drop them so
			// they cannot block tag factoring or alternative matching.
			if len(alt) == 0 && ex.isFailurePath(cc.Body) {
				continue
			}
			alts = append(alts, alt)
		case *ast.CommClause:
			alts = append(alts, ex.stmts(cc.Body))
		}
	}
	if !hasDefault {
		alts = append(alts, nil) // implicit no-match alternative
	}
	if len(alts) == 0 {
		return nil
	}
	return []op{branchOp(pos, alts...)}
}

// isFailurePath reports whether a zero-op statement list is an error exit:
// it calls a Fail method or panic, or ends in a return whose results include
// a non-nil error-typed expression.
func (ex *extractor) isFailurePath(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	failing := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				switch f := call.Fun.(type) {
				case *ast.SelectorExpr:
					if f.Sel.Name == "Fail" {
						failing = true
					}
				case *ast.Ident:
					if f.Name == "panic" {
						failing = true
					}
				}
			}
			return true
		})
	}
	if failing {
		return true
	}
	ret, ok := stmts[len(stmts)-1].(*ast.ReturnStmt)
	if !ok {
		return false
	}
	for _, r := range ret.Results {
		if id, ok := r.(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		if tv, ok := ex.pass.TypesInfo.Types[r]; ok && tv.Type != nil && isErrorType(tv.Type) {
			return true
		}
	}
	return false
}

func branchOp(pos token.Pos, alts ...[]op) op {
	return op{alts: alts, pos: pos}
}

// isErrorType reports whether t is error or a concrete type implementing it
// (sentinel structs like *VersionError count as error exits too).
func isErrorType(t types.Type) bool {
	if t.String() == "error" {
		return true
	}
	errIface, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return errIface != nil && types.Implements(t, errIface)
}

// expr extracts ops from one expression in source order.
func (ex *extractor) expr(e ast.Expr) []op {
	var seq []op
	ex.walkExpr(e, &seq)
	return seq
}

func (ex *extractor) walkExpr(e ast.Expr, seq *[]op) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *ast.CallExpr:
		if o, ok := ex.classifyCall(x); ok {
			// Collect ops nested in the arguments first (they execute
			// before the call), then the call's own op(s).
			for _, a := range x.Args {
				ex.walkExpr(a, seq)
			}
			*seq = append(*seq, o...)
			return
		}
		ex.walkExpr(x.Fun, seq)
		for _, a := range x.Args {
			ex.walkExpr(a, seq)
		}
	case *ast.CompositeLit:
		if ex.side == encSide && ex.isByteSlice(x) {
			for _, el := range x.Elts {
				ex.direct++
				*seq = append(*seq, op{prim: kByte, pos: el.Pos()})
			}
			return
		}
		for _, el := range x.Elts {
			ex.walkExpr(el, seq)
		}
	case *ast.KeyValueExpr:
		ex.walkExpr(x.Key, seq)
		ex.walkExpr(x.Value, seq)
	case *ast.ParenExpr:
		ex.walkExpr(x.X, seq)
	case *ast.SelectorExpr:
		ex.walkExpr(x.X, seq)
	case *ast.StarExpr:
		ex.walkExpr(x.X, seq)
	case *ast.UnaryExpr:
		ex.walkExpr(x.X, seq)
	case *ast.BinaryExpr:
		ex.walkExpr(x.X, seq)
		ex.walkExpr(x.Y, seq)
	case *ast.IndexExpr:
		ex.walkExpr(x.X, seq)
		ex.walkExpr(x.Index, seq)
	case *ast.SliceExpr:
		ex.walkExpr(x.X, seq)
		ex.walkExpr(x.Low, seq)
		ex.walkExpr(x.High, seq)
		ex.walkExpr(x.Max, seq)
	case *ast.TypeAssertExpr:
		ex.walkExpr(x.X, seq)
	case *ast.FuncLit:
		// Closures execute later (or not at all); their bodies are not part
		// of this codec's linear wire sequence.
	}
}

func (ex *extractor) isByteSlice(lit *ast.CompositeLit) bool {
	tv, ok := ex.pass.TypesInfo.Types[lit]
	if !ok {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Byte
}

// classifyCall maps a call to its wire op(s), if it is one for the current
// side.
func (ex *extractor) classifyCall(call *ast.CallExpr) ([]op, bool) {
	// Raw byte appends: append(b, tagByte) on the encode side.
	if ex.side == encSide {
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && call.Ellipsis == token.NoPos && len(call.Args) >= 2 {
			if ex.exprIsByteSlice(call.Args[0]) {
				var ops []op
				allBytes := true
				for _, a := range call.Args[1:] {
					if !ex.exprIsByteLike(a) {
						allBytes = false
						break
					}
					ops = append(ops, op{prim: kByte, pos: a.Pos()})
				}
				if allBytes {
					// Nested ops inside the byte expressions still count
					// (e.g. a kind byte computed from a decoded value —
					// encode side, so none in practice).
					ex.direct += len(ops)
					return ops, true
				}
			}
		}
	}

	obj := calleeFunc(ex.pass, call)
	if obj == nil {
		return nil, false
	}
	name := obj.Name()
	pkg := obj.Pkg()

	if ex.side == encSide {
		if pkg != nil && pkg.Name() == "wire" {
			if prim, ok := encPrims[name]; ok {
				ex.direct++
				return []op{{prim: prim, pos: call.Pos()}}, true
			}
		}
	} else {
		if recvTypeName(obj) == "Reader" && pkg != nil && pkg.Name() == "wire" {
			if prim, ok := decPrims[name]; ok {
				ex.direct++
				return []op{{prim: prim, pos: call.Pos()}}, true
			}
		}
	}

	// Nested codec call: a module codec function matching the side's naming
	// convention whose signature touches []byte or *wire.Reader.
	prefixes := encPrefixes
	if ex.side == decSide {
		prefixes = decPrefixes
	}
	suffix, ok := stripPrefix(name, prefixes)
	if !ok {
		return nil, false
	}
	if pkg == nil {
		return nil, false
	}
	samePkg := ex.pass.Pkg != nil && pkg.Path() == ex.pass.Pkg.Path()
	if !samePkg && !codecPackages[pkg.Name()] {
		return nil, false
	}
	if !signatureTouchesWire(obj) {
		return nil, false
	}
	recv := recvTypeName(obj)
	if recv == "Reader" && pkg.Name() == "wire" {
		recv = ""
	}
	key := pkg.Name() + "." + recv + "." + strings.ToLower(suffix)
	ex.calls++
	return []op{{call: key, pos: call.Pos()}}, true
}

func (ex *extractor) exprIsByteSlice(e ast.Expr) bool {
	tv, ok := ex.pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Byte
}

func (ex *extractor) exprIsByteLike(e ast.Expr) bool {
	tv, ok := ex.pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch basic.Kind() {
	case types.Byte, types.Int8, types.UntypedInt, types.UntypedRune:
		return true
	}
	return false
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := call.Fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func signatureTouchesWire(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	check := func(t types.Type) bool {
		if p, ok := t.(*types.Pointer); ok {
			if n, ok := p.Elem().(*types.Named); ok &&
				n.Obj().Name() == "Reader" && n.Obj().Pkg() != nil && n.Obj().Pkg().Name() == "wire" {
				return true
			}
		}
		if sl, ok := t.Underlying().(*types.Slice); ok {
			if b, ok := sl.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Byte {
				return true
			}
		}
		return false
	}
	if sig.Recv() != nil && check(sig.Recv().Type()) {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if check(sig.Params().At(i).Type()) {
			return true
		}
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if check(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Normalization
// ---------------------------------------------------------------------------

// normalize prunes structure that carries no wire ops and collapses
// branches whose alternatives are identical.
func normalize(seq []op) []op {
	var out []op
	for _, o := range seq {
		switch {
		case o.isLoop():
			body := normalize(o.body)
			if len(body) == 0 {
				continue
			}
			out = append(out, op{body: body, pos: o.pos})
		case o.isBranch():
			var alts [][]op
			for _, a := range o.alts {
				alts = append(alts, normalize(a))
			}
			nonEmpty := 0
			for _, a := range alts {
				if len(a) > 0 {
					nonEmpty++
				}
			}
			if nonEmpty == 0 {
				continue
			}
			// All alternatives identical (and none empty): the branch is
			// wire-transparent (e.g. `if hasWM { AppendTime } else
			// { AppendVarint(0) }` — both are a Varint).
			if nonEmpty == len(alts) && allAltsEqual(alts) {
				out = append(out, alts[0]...)
				continue
			}
			out = append(out, op{alts: alts, pos: o.pos})
		default:
			out = append(out, o)
		}
	}
	return out
}

func allAltsEqual(alts [][]op) bool {
	for _, a := range alts[1:] {
		if !seqEqual(alts[0], a) {
			return false
		}
	}
	return true
}

func seqEqual(a, b []op) bool {
	c := comparer{}
	return c.compareSeq(a, b)
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

type mismatch struct {
	encPos, decPos token.Pos
	msg            string
}

type comparer struct {
	firstErr *mismatch
}

func (c *comparer) fail(encOps, decOps []op, i, j int, format string, args ...any) bool {
	if c.firstErr == nil {
		m := &mismatch{msg: fmt.Sprintf(format, args...)}
		if i < len(encOps) {
			m.encPos = encOps[i].pos
		} else if len(encOps) > 0 {
			m.encPos = encOps[len(encOps)-1].pos
		}
		if j < len(decOps) {
			m.decPos = decOps[j].pos
		} else if len(decOps) > 0 {
			m.decPos = decOps[len(decOps)-1].pos
		}
		c.firstErr = m
	}
	return false
}

// compareSeq reports whether the encode sequence enc and decode sequence dec
// describe the same wire layout.
func (c *comparer) compareSeq(enc, dec []op) bool {
	i, j := 0, 0
	for i < len(enc) && j < len(dec) {
		eo, do := enc[i], dec[j]
		switch {
		case eo.prim != "" && do.prim != "":
			if eo.prim != do.prim {
				return c.fail(enc, dec, i, j, "encode writes %s where decode reads %s", eo.prim, do.prim)
			}
		case eo.call != "" && do.call != "":
			if eo.call != do.call {
				return c.fail(enc, dec, i, j, "encode calls %s where decode calls %s", eo.call, do.call)
			}
		case eo.isLoop() && do.isLoop():
			if !c.compareSeq(eo.body, do.body) {
				return false
			}
		case eo.isBranch() && do.isBranch():
			if !c.compareBranch(eo, do) {
				return c.fail(enc, dec, i, j, "conditional encode/decode alternatives do not match: encode %s, decode %s", eo, do)
			}
		case eo.isBranch():
			// A tag written inside every encode alternative matches a tag
			// read once before the decode branch: factor it out.
			if do.prim != "" || do.call != "" {
				if stripped, ok := factorLead(eo, do); ok {
					enc = splice(enc, i, []op{stripped})
					j++
					continue
				}
			}
			// An optional branch (one non-empty alternative plus an empty
			// skip path) whose content can legally produce zero bytes —
			// loops, nested optionals — matches the other side's
			// unconditional form: a skipped `if n == 0 { return }` guard is
			// equivalent to a loop running zero times.
			if alt, ok := optionalAlt(eo); ok && allSkippable(alt) {
				enc = splice(enc, i, alt)
				continue
			}
			return c.fail(enc, dec, i, j, "encode has conditional %s where decode has %s", eo, do)
		case do.isBranch():
			if eo.prim != "" || eo.call != "" {
				if stripped, ok := factorLead(do, eo); ok {
					dec = splice(dec, j, []op{stripped})
					i++
					continue
				}
			}
			if alt, ok := optionalAlt(do); ok && allSkippable(alt) {
				dec = splice(dec, j, alt)
				continue
			}
			return c.fail(enc, dec, i, j, "decode has conditional %s where encode has %s", do, eo)
		default:
			return c.fail(enc, dec, i, j, "encode has %s where decode has %s", eo, do)
		}
		i++
		j++
	}
	for ; i < len(enc); i++ {
		if !opOptional(enc[i]) {
			return c.fail(enc, dec, i, len(dec), "encode writes %s that decode never reads", enc[i])
		}
	}
	for ; j < len(dec); j++ {
		if !opOptional(dec[j]) {
			return c.fail(enc, dec, len(enc), j, "decode reads %s that encode never writes", dec[j])
		}
	}
	return true
}

// opOptional reports whether a trailing op can legally be unmatched: a
// branch with an empty alternative may contribute nothing to the wire.
// Conservatively, nothing else is optional.
func opOptional(o op) bool {
	if !o.isBranch() {
		return false
	}
	for _, a := range o.alts {
		if len(a) != 0 {
			return false
		}
	}
	return true
}

// splice replaces seq[i] with repl, copying so callers' slices are unshared.
func splice(seq []op, i int, repl []op) []op {
	out := make([]op, 0, len(seq)-1+len(repl))
	out = append(out, seq[:i]...)
	out = append(out, repl...)
	out = append(out, seq[i+1:]...)
	return out
}

// optionalAlt returns the single non-empty alternative of a branch that also
// has at least one empty alternative — the "maybe skip this" shape produced
// by success early exits like `if n == 0 { return nil }`.
func optionalAlt(o op) ([]op, bool) {
	var alt []op
	hasEmpty := false
	for _, a := range o.alts {
		if len(a) == 0 {
			hasEmpty = true
			continue
		}
		if alt != nil {
			return nil, false
		}
		alt = a
	}
	if alt == nil || !hasEmpty {
		return nil, false
	}
	return alt, true
}

// allSkippable reports whether every op in seq can legally contribute zero
// bytes to the wire: loops (zero iterations) and optional branches of
// skippable content. Prims and calls always produce bytes.
func allSkippable(seq []op) bool {
	for _, o := range seq {
		switch {
		case o.isLoop():
			// A loop can run zero times regardless of its body.
		case o.isBranch():
			ok := true
			for _, a := range o.alts {
				if !allSkippable(a) {
					ok = false
					break
				}
			}
			if !ok {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// factorLead strips lead (a prim or call op) from the front of every
// non-empty alternative of branch b, returning the stripped branch. It
// fails if any non-empty alternative starts differently or any alternative
// is empty (an empty alternative cannot have written the lead).
func factorLead(b op, lead op) (op, bool) {
	var alts [][]op
	for _, a := range b.alts {
		if len(a) == 0 {
			return op{}, false
		}
		head := a[0]
		same := (head.prim != "" && head.prim == lead.prim) ||
			(head.call != "" && head.call == lead.call)
		if !same {
			return op{}, false
		}
		alts = append(alts, a[1:])
	}
	return op{alts: alts, pos: b.pos}, true
}

// compareBranch matches two branch nodes: every non-empty alternative on
// one side must structurally equal a distinct non-empty alternative on the
// other; empty alternatives (optionality) are tolerated on either side.
func (c *comparer) compareBranch(eo, do op) bool {
	encAlts := nonEmptyAlts(eo.alts)
	decAlts := nonEmptyAlts(do.alts)
	if len(encAlts) != len(decAlts) {
		return false
	}
	used := make([]bool, len(decAlts))
	for _, ea := range encAlts {
		found := false
		for k, da := range decAlts {
			if used[k] {
				continue
			}
			sub := comparer{}
			if sub.compareSeq(ea, da) {
				used[k] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func nonEmptyAlts(alts [][]op) [][]op {
	var out [][]op
	for _, a := range alts {
		if len(a) > 0 {
			out = append(out, a)
		}
	}
	return out
}

func compareHalves(pass *analysis.Pass, enc, dec *half) {
	c := comparer{}
	if c.compareSeq(enc.ops, dec.ops) {
		return
	}
	m := c.firstErr
	pos := m.encPos
	if pos == token.NoPos {
		pos = enc.fn.Pos()
	}
	decWhere := ""
	if m.decPos != token.NoPos {
		decWhere = fmt.Sprintf(" (decode side: %s)", pass.Fset.Position(m.decPos))
	}
	pass.Reportf(pos, "codec pair %s/%s out of sync: %s%s",
		funcLabel(enc), funcLabel(dec), m.msg, decWhere)
}
