// Package drift seeds codec pairs whose halves disagree — the bug classes
// codecpair exists to catch. Each case is a miniature of real drift: a field
// added to the encoder but not the decoder, a reordered read, a count prefix
// one half forgot, an orphaned half.
package drift

import "saql/internal/wire"

type Thing struct {
	Name string
	N    int64
	OK   bool
}

// AppendThing writes a field ReadThing never reads (the classic "added a
// field to encode, forgot decode" checkpoint drift).
func AppendThing(b []byte, t Thing) []byte {
	b = wire.AppendString(b, t.Name)
	b = wire.AppendVarint(b, t.N) // want `codec pair AppendThing/ReadThing out of sync: encode writes Varint where decode reads Bool`
	b = wire.AppendBool(b, t.OK)
	return b
}

func ReadThing(r *wire.Reader) Thing {
	var t Thing
	t.Name = r.String()
	t.OK = r.Bool()
	return t
}

type St struct {
	A int64
	K string
}

// AppendState and ReadState agree on fields but not on order.
func (s *St) AppendState(b []byte) []byte {
	b = wire.AppendVarint(b, s.A) // want `codec pair St.AppendState/St.ReadState out of sync: encode writes Varint where decode reads String`
	b = wire.AppendString(b, s.K)
	return b
}

func (s *St) ReadState(r *wire.Reader) {
	s.K = r.String()
	s.A = r.Varint()
}

// appendList writes a count prefix readList never consumes.
func appendList(b []byte, xs []string) []byte {
	b = wire.AppendUvarint(b, uint64(len(xs))) // want `codec pair appendList/readList out of sync: encode has Uvarint where decode has loop`
	for _, x := range xs {
		b = wire.AppendString(b, x)
	}
	return b
}

func readList(r *wire.Reader) []string {
	out := make([]string, 0, 4)
	for i := 0; i < 4; i++ {
		out = append(out, r.String())
	}
	return out
}

type Rec struct {
	ID   uint64
	Note string
}

// DecodeRec reads a trailing flag EncodeRec never writes.
func EncodeRec(b []byte, rec *Rec) []byte {
	b = wire.AppendUvarint(b, rec.ID)
	b = wire.AppendString(b, rec.Note) // want `codec pair EncodeRec/DecodeRec out of sync: decode reads Bool that encode never writes`
	return b
}

func DecodeRec(r *wire.Reader, rec *Rec) {
	rec.ID = r.Uvarint()
	rec.Note = r.String()
	_ = r.Bool()
}

// AppendOrphan has no decode half anywhere in the package.
func AppendOrphan(b []byte, v uint64) []byte { // want `codec AppendOrphan writes wire data but package drift has no matching decode`
	return wire.AppendUvarint(b, v)
}
