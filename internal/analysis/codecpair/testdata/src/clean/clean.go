// Package clean exercises the codec idioms the real engine uses — tag
// switches, count-prefixed loops, optional fields, watermark if/else, nested
// helper pairs — all correctly paired. codecpair must stay silent here.
package clean

import (
	"errors"

	"saql/internal/wire"
)

var errUnknown = errors.New("unknown aggregate")

const (
	tagSum  = 1
	tagHist = 2
)

type Agg interface{ agg() }

type sumAgg struct {
	sum float64
	n   int64
}

type histAgg struct {
	vals []float64
}

func (*sumAgg) agg()  {}
func (*histAgg) agg() {}

// AppendState writes a tag byte inside each alternative; ReadState reads the
// tag once before branching. The analyzer factors the lead tag out.
func AppendState(b []byte, a Agg) ([]byte, error) {
	switch ag := a.(type) {
	case *sumAgg:
		b = append(b, tagSum)
		b = wire.AppendFloat64(b, ag.sum)
		b = wire.AppendVarint(b, ag.n)
	case *histAgg:
		b = append(b, tagHist)
		b = wire.AppendUvarint(b, uint64(len(ag.vals)))
		for _, v := range ag.vals {
			b = wire.AppendFloat64(b, v)
		}
	default:
		return b, errUnknown
	}
	return b, nil
}

func ReadState(r *wire.Reader, a Agg) error {
	tag := r.Byte()
	switch ag := a.(type) {
	case *sumAgg:
		if tag != tagSum {
			return errUnknown
		}
		ag.sum = r.Float64()
		ag.n = r.Varint()
	case *histAgg:
		if tag != tagHist {
			return errUnknown
		}
		n := r.Count(1)
		ag.vals = ag.vals[:0]
		for i := 0; i < n; i++ {
			ag.vals = append(ag.vals, r.Float64())
		}
	default:
		return errUnknown
	}
	return r.Err()
}

type Manager struct {
	hasWM bool
	wm    int64
	names []string
}

// AppendState's watermark if/else writes the same shape on both arms, and
// the trailing helper call pairs with readNames on the decode side.
func (m *Manager) AppendState(b []byte) []byte {
	if m.hasWM {
		b = wire.AppendVarint(b, m.wm)
	} else {
		b = wire.AppendVarint(b, 0)
	}
	b = appendNames(b, m.names)
	return b
}

func (m *Manager) ReadState(r *wire.Reader) {
	m.wm = r.Varint()
	m.hasWM = m.wm != 0
	m.names = readNames(r)
}

func appendNames(b []byte, names []string) []byte {
	b = wire.AppendUvarint(b, uint64(len(names)))
	for _, n := range names {
		b = wire.AppendString(b, n)
	}
	return b
}

func readNames(r *wire.Reader) []string {
	n := r.Count(1)
	out := make([]string, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		out = append(out, r.String())
	}
	return out
}

type Note struct {
	Name string
}

// Optional value: presence flag plus conditional payload on both sides.
func AppendMaybe(b []byte, n *Note) []byte {
	if n == nil {
		b = wire.AppendBool(b, false)
		return b
	}
	b = wire.AppendBool(b, true)
	b = wire.AppendString(b, n.Name)
	return b
}

func ReadMaybe(r *wire.Reader) *Note {
	if !r.Bool() {
		return nil
	}
	return &Note{Name: r.String()}
}

// Count-prefixed list where only the decoder short-circuits on emptiness: a
// skipped guard is equivalent to the encoder's loop running zero times.
func appendTags(b []byte, tags []string) []byte {
	b = wire.AppendUvarint(b, uint64(len(tags)))
	for _, t := range tags {
		b = wire.AppendString(b, t)
	}
	return b
}

func readTags(r *wire.Reader) []string {
	n := r.Count(1)
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.String())
	}
	return out
}
