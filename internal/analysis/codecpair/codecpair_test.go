package codecpair_test

import (
	"testing"

	"saql/internal/analysis/analysistest"
	"saql/internal/analysis/codecpair"
)

// TestDrift seeds the drift classes the analyzer exists to catch: field
// added to one half only, reordered reads, forgotten count prefix, trailing
// extra read, orphaned half. Each must be reported at the marked position.
func TestDrift(t *testing.T) {
	analysistest.Run(t, codecpair.Analyzer, "drift")
}

// TestClean runs the analyzer over correctly-paired codecs written in the
// engine's real idioms; any diagnostic is a false positive and fails.
func TestClean(t *testing.T) {
	analysistest.Run(t, codecpair.Analyzer, "clean")
}
