// Package outside sits outside the deterministic cone (its import path
// matches no cone package), so wall-clock use is none of the analyzer's
// business.
package outside

import "time"

func Wall() time.Time { return time.Now() }

func Uptime(start time.Time) time.Duration { return time.Since(start) }
