// Package engine claims a cone import path (saql/internal/engine), so every
// determinism rule applies: wall-clock reads, global math/rand, and
// map-iteration encoding are all flagged unless annotated //saql:wallclock.
package engine

import (
	"math/rand"
	"time"

	"saql/internal/wire"
)

func snapshotAt() int64 {
	return time.Now().UnixNano() // want `wall-clock time\.Now inside the deterministic replay/checkpoint/eval cone`
}

// Bare references count too: storing the function pointer smuggles the
// clock in just as surely as calling it.
var defaultClock = time.Now // want `wall-clock time\.Now inside the deterministic`

func expiry(base time.Time) bool {
	return time.Since(base) > time.Minute // want `wall-clock time\.Since inside the deterministic`
}

func jitter() int64 {
	return rand.Int63() // want `global math/rand\.Int63 inside the deterministic cone`
}

// seeded uses an explicitly seeded generator: replay-safe, not flagged.
func seeded(r *rand.Rand) int64 {
	return r.Int63()
}

// heartbeat is annotated: wall time is genuinely intended.
//
//saql:wallclock
func heartbeat() time.Time {
	return time.Now()
}

// leaseDeadline demonstrates the line-level opt-out.
func leaseDeadline(lease time.Duration) int64 {
	return time.Now().Add(-lease).UnixNano() //saql:wallclock lease expiry is wall-time by definition
}

// encodeCounts iterates a map while encoding: byte order depends on Go's
// randomized map order, so equal states checkpoint differently.
func encodeCounts(b []byte, m map[string]int64) []byte {
	for k, v := range m {
		b = wire.AppendString(b, k) // want `wire\.AppendString inside map iteration`
		b = wire.AppendVarint(b, v) // want `wire\.AppendVarint inside map iteration`
	}
	return b
}

// encodeSorted is the deterministic form: collect, sort, then encode.
func encodeSorted(b []byte, m map[string]int64, keys []string) []byte {
	keys = keys[:0]
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		b = wire.AppendString(b, k)
		b = wire.AppendVarint(b, m[k])
	}
	return b
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
