// Package determinism guards the replay/checkpoint/eval cone — the code
// whose outputs must be byte- and alert-identical across a live run, a
// restored run, and a re-sharded run (the PR-5 recovery-equivalence and
// sharded==serial conformance guarantees). Inside that cone it forbids:
//
//   - wall-clock reads: time.Now, time.Since, time.Until, and timer/ticker
//     construction (time.After, time.Tick, time.NewTimer, time.NewTicker,
//     time.AfterFunc) — both calls and bare references (a bare time.Now
//     stored as an injectable clock default still leaks wall time into
//     replay);
//   - global math/rand and math/rand/v2 functions (methods on an explicitly
//     seeded *rand.Rand are fine — the seed is state, the global source is
//     not);
//   - wire encoding inside map iteration: ranging over a map while
//     appending wire primitives bakes Go's randomized iteration order into
//     the encoded bytes, the exact drift class the PR-5 conformance suite
//     chases. Collect and sort the keys first.
//
// Genuinely wall-clock sites (lease heartbeats, source pacing tickers,
// informational snapshot timestamps) opt out with //saql:wallclock on the
// line, the line above, or the enclosing function's doc comment — the
// annotation is the audit trail that a human decided wall time is safe
// there.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"saql/internal/analysis"
)

// Analyzer is the determinism pass.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global randomness and map-order-dependent encoding inside the replay/checkpoint/eval cone",
	Run:  run,
}

// conePackages are the import-path suffixes inside the deterministic cone.
// The collector (seeded synthetic load), the replayer (wall-clock pacing by
// design), leakcheck and the cmd/ front-ends are outside it.
var conePackages = []string{
	"saql",
	"saql/internal/agg",
	"saql/internal/codec",
	"saql/internal/dist",
	"saql/internal/engine",
	"saql/internal/invariant",
	"saql/internal/matcher",
	"saql/internal/runtime",
	"saql/internal/scheduler",
	"saql/internal/snapshot",
	"saql/internal/source",
	"saql/internal/storage",
	"saql/internal/tsmodel",
	"saql/internal/window",
	"saql/internal/wire",
}

// InCone reports whether a package path is inside the deterministic cone.
func InCone(path string) bool {
	for _, p := range conePackages {
		if path == p {
			return true
		}
	}
	return false
}

// wallClockFuncs are the time package functions that read or schedule
// against the wall clock. time.Unix/time.Date construct from explicit
// inputs and are fine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil || !InCone(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, isFn := decl.(*ast.FuncDecl)
			if isFn && fn.Body == nil {
				continue
			}
			if pass.InTestFile(decl.Pos()) {
				continue
			}
			exempt := isFn && analysis.FuncHasDirective(fn, "wallclock")
			ast.Inspect(decl, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.SelectorExpr:
					checkSelector(pass, x, exempt)
				case *ast.RangeStmt:
					checkMapRangeEncoding(pass, x)
				}
				return true
			})
		}
	}
	return nil
}

// checkSelector flags wall-clock and global-rand references, whether called
// or merely mentioned (stored in a struct field, passed as a default).
func checkSelector(pass *analysis.Pass, sel *ast.SelectorExpr, exempt bool) {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are deterministic state
	}
	var msg string
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			msg = "wall-clock time." + fn.Name() + " inside the deterministic replay/checkpoint/eval cone"
		}
	case "math/rand", "math/rand/v2":
		msg = "global " + fn.Pkg().Path() + "." + fn.Name() + " inside the deterministic cone (use an explicitly seeded *rand.Rand)"
	}
	if msg == "" {
		return
	}
	if exempt || pass.Suppressed(sel.Pos(), "wallclock") {
		return
	}
	pass.Reportf(sel.Pos(), "%s (annotate //saql:wallclock if wall time is genuinely intended here)", msg)
}

// checkMapRangeEncoding flags wire appends performed while ranging over a
// map: the encoded byte order then depends on Go's randomized map
// iteration order.
func checkMapRangeEncoding(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch f := call.Fun.(type) {
		case *ast.Ident:
			id = f
		case *ast.SelectorExpr:
			id = f.Sel
		default:
			return true
		}
		fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "wire" {
			return true
		}
		if strings.HasPrefix(fn.Name(), "Append") {
			if !pass.Suppressed(call.Pos(), "wallclock") {
				pass.Reportf(call.Pos(),
					"wire.%s inside map iteration encodes in nondeterministic order; collect and sort the keys first",
					fn.Name())
			}
		}
		return true
	})
}
