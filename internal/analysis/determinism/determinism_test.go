package determinism_test

import (
	"testing"

	"saql/internal/analysis/analysistest"
	"saql/internal/analysis/determinism"
)

// TestCone runs the analyzer over a fixture claiming a cone import path:
// wall-clock reads, bare clock references, global math/rand, and
// map-iteration encoding must each be reported where seeded, while seeded
// generators and //saql:wallclock opt-outs stay silent.
func TestCone(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "saql/internal/engine")
}

// TestOutsideCone checks a package outside the cone is left alone entirely.
func TestOutsideCone(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "outside")
}
