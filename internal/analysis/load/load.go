// Package load parses and type-checks Go packages for the analysis
// framework without any dependency outside the standard library. Import
// resolution goes through `go list -export`: the go tool (already required
// to build this module) emits the build cache's compiled export data for
// every dependency, and go/importer's gc importer reads those files through
// a lookup function. Loading is therefore fully offline and as fast as an
// incremental build.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors holds type-check problems (the package is still returned;
	// analyzers may run best-effort over partially checked code).
	TypeErrors []error
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -export -deps -json` in dir over patterns and
// decodes the JSON stream.
func goList(dir string, patterns []string) ([]*listEntry, error) {
	args := []string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,ImportMap,DepOnly,Incomplete,Error"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %s: %v: %s", strings.Join(patterns, " "), err, stderr.String())
	}
	var entries []*listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		e := &listEntry{}
		if err := dec.Decode(e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// Resolver maps import paths to compiled export data files and hands
// go/types an importer over them.
type Resolver struct {
	exports map[string]string // import path -> export file
	imports map[string]string // import-as-written -> canonical path
}

// NewResolver builds a Resolver covering patterns (and all their transitive
// dependencies), resolved by `go list` running in dir.
func NewResolver(dir string, patterns ...string) (*Resolver, error) {
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	r := &Resolver{exports: map[string]string{}, imports: map[string]string{}}
	for _, e := range entries {
		if e.Export != "" {
			r.exports[e.ImportPath] = e.Export
		}
		for from, to := range e.ImportMap {
			r.imports[from] = to
		}
	}
	return r, nil
}

// Importer returns a types.Importer reading the resolver's export data.
func (r *Resolver) Importer(fset *token.FileSet) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := r.imports[path]; ok {
			path = mapped
		}
		file, ok := r.exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// CheckFiles type-checks already-parsed files as one package.
func CheckFiles(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, []error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var errs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, _ := conf.Check(path, fset, files, info)
	return pkg, info, errs
}

// Packages loads every non-dependency package matched by patterns (go list
// syntax, e.g. "./...") rooted at dir, parsed with comments and fully
// type-checked.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	resolver := &Resolver{exports: map[string]string{}, imports: map[string]string{}}
	for _, e := range entries {
		if e.Export != "" {
			resolver.exports[e.ImportPath] = e.Export
		}
		for from, to := range e.ImportMap {
			resolver.imports[from] = to
		}
	}
	var out []*Package
	for _, e := range entries {
		if e.DepOnly || len(e.GoFiles) == 0 {
			continue
		}
		if e.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", e.ImportPath, e.Error.Err)
		}
		pkg, err := loadOne(e, resolver)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

func loadOne(e *listEntry, resolver *Resolver) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range e.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %s: %w", e.ImportPath, err)
		}
		files = append(files, f)
	}
	tpkg, info, errs := CheckFiles(fset, e.ImportPath, files, resolver.Importer(fset))
	return &Package{
		ImportPath: e.ImportPath,
		Dir:        e.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		TypeErrors: errs,
	}, nil
}

// ModuleRoot walks up from dir to the nearest directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("load: no go.mod above %s", dir)
		}
		abs = parent
	}
}
