// Package locks seeds the by-value lock copies ctlorder flags module-wide,
// alongside the pointer-based shapes it must leave alone.
package locks

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

type pooled struct {
	pool sync.Pool
	n    int
}

func byValueParam(g guarded) int { // want `parameter passes lock by value: sync\.Mutex`
	return g.n
}

func (g guarded) byValueRecv() int { // want `receiver passes lock by value: sync\.Mutex`
	return g.n
}

func byValueResult() (g guarded) { // want `result passes lock by value: sync\.Mutex`
	return
}

func copyAssign(a *guarded) int {
	b := *a // want `assignment copies lock value: sync\.Mutex`
	return b.n
}

func poolCopy(p *pooled) int {
	q := *p // want `assignment copies lock value: sync\.Pool`
	return q.n
}

func rangeCopy(gs []guarded) int {
	t := 0
	for _, g := range gs { // want `range iteration copies lock value: sync\.Mutex`
		t += g.n
	}
	return t
}

// The pointer-based equivalents are all fine.
func byPointer(g *guarded) int { return g.n }

func (g *guarded) ptrRecv() int { return g.n }

func rangeByIndex(gs []*guarded) int {
	t := 0
	for i := range gs {
		t += gs[i].n
	}
	return t
}
