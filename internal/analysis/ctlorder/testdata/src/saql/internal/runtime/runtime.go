// Package runtime mirrors the engine's control-plane shapes: an envelope
// channel per shard, mutated shard state, and a //saql:ctlpath-blessed
// submit path. The package path ends in internal/runtime, so the envelope
// discipline rules apply here.
package runtime

type envelope struct {
	seq int
}

type shard struct {
	id    int
	in    chan envelope
	ready bool
}

type Runtime struct {
	shards []*shard
}

// submit is the blessed envelope path.
//
//saql:ctlpath
func (r *Runtime) submit(env envelope) {
	for _, s := range r.shards {
		s.in <- env
	}
}

// leak sends an envelope without going through the control-queue path.
func (r *Runtime) leak(env envelope) {
	r.shards[0].in <- env // want `send of control-plane envelope outside the control-queue path`
}

// shutdown closes an envelope channel outside the blessed path.
func (r *Runtime) shutdown() {
	close(r.shards[0].in) // want `close of control-plane envelope channel outside the control-queue path`
}

// poke mutates shard state directly instead of applying an envelope.
func (r *Runtime) poke() {
	r.shards[0].ready = true // want `direct write to shard field ready outside the control-queue path`
}

// suppressed demonstrates the line-level opt-out.
func (r *Runtime) suppressed(env envelope) {
	r.shards[0].in <- env //saql:ctlpath test rig feeds the queue directly
}
