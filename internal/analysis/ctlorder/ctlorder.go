// Package ctlorder machine-checks the engine's total-order discipline: the
// sharded runtime's guarantee (sharded == serial, alert for alert) holds
// because every piece of engine state mutates only via control-queue
// envelopes that all shards observe in the same order.
//
// Inside internal/runtime and internal/scheduler the analyzer flags:
//
//   - sends on channels whose element type is a control-plane type declared
//     in those packages (envelope, control, ctlResult) from functions not
//     annotated //saql:ctlpath — a raw send bypassing the annotated
//     envelope path is exactly how an out-of-order mutation sneaks in;
//   - close() of such channels under the same rule;
//   - direct writes to fields of the runtime's shard struct outside
//     //saql:ctlpath functions (shard state must change only by applying
//     envelopes on the shard's own goroutine).
//
// Module-wide (every package), it flags lock-bearing values copied by
// value: a sync.Mutex / sync.RWMutex / sync.Pool / sync.WaitGroup /
// sync.Once / sync.Cond — or any struct or array containing one — passed,
// returned, received, assigned from an existing value, or iterated by
// value. A copied mutex silently stops excluding anything.
package ctlorder

import (
	"go/ast"
	"go/types"
	"strings"

	"saql/internal/analysis"
)

// Analyzer is the ctlorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctlorder",
	Doc:  "enforce the control-queue envelope discipline in runtime/scheduler and forbid by-value copies of lock-bearing types",
	Run:  run,
}

// ctlPackage reports whether the package is under the envelope-path rules.
func ctlPackage(path string) bool {
	return strings.HasSuffix(path, "internal/runtime") || strings.HasSuffix(path, "internal/scheduler")
}

func run(pass *analysis.Pass) error {
	ctl := pass.Pkg != nil && ctlPackage(pass.Pkg.Path())
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if pass.InTestFile(fn.Pos()) {
				continue
			}
			checkLockCopies(pass, fn)
			if ctl && !analysis.FuncHasDirective(fn, "ctlpath") {
				checkEnvelopeDiscipline(pass, fn)
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Envelope discipline (internal/runtime, internal/scheduler)
// ---------------------------------------------------------------------------

func checkEnvelopeDiscipline(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // closures are dispatched elsewhere; annotate their host
		case *ast.SendStmt:
			if t := controlElemType(pass, x.Chan); t != "" && !pass.Suppressed(x.Arrow, "ctlpath") {
				pass.Reportf(x.Arrow,
					"send of control-plane %s outside the control-queue path: annotate %s with //saql:ctlpath if it is part of the envelope path",
					t, fn.Name.Name)
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "close" && len(x.Args) == 1 {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					if t := controlElemType(pass, x.Args[0]); t != "" && !pass.Suppressed(x.Pos(), "ctlpath") {
						pass.Reportf(x.Pos(),
							"close of control-plane %s channel outside the control-queue path: annotate %s with //saql:ctlpath",
							t, fn.Name.Name)
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if isShardValue(pass, sel.X) && !pass.Suppressed(lhs.Pos(), "ctlpath") {
					pass.Reportf(lhs.Pos(),
						"direct write to shard field %s outside the control-queue path: shard state changes only by applying envelopes (//saql:ctlpath)",
						sel.Sel.Name)
				}
			}
		}
		return true
	})
}

// controlElemType returns the name of the control-plane element type carried
// by the channel expression, or "" if the channel is not control-plane. A
// control-plane type is a named type (or pointer to one) declared in
// internal/runtime or internal/scheduler.
func controlElemType(pass *analysis.Pass, ch ast.Expr) string {
	tv, ok := pass.TypesInfo.Types[ch]
	if !ok || tv.Type == nil {
		return ""
	}
	c, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return ""
	}
	elem := c.Elem()
	if p, ok := elem.(*types.Pointer); ok {
		elem = p.Elem()
	}
	named, ok := elem.(*types.Named)
	if !ok {
		return ""
	}
	pkg := named.Obj().Pkg()
	if pkg == nil || !ctlPackage(pkg.Path()) {
		return ""
	}
	return named.Obj().Name()
}

// isShardValue reports whether e is (a pointer to) the runtime's shard
// struct.
func isShardValue(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return named.Obj().Name() == "shard" && pkg != nil && strings.HasSuffix(pkg.Path(), "internal/runtime")
}

// ---------------------------------------------------------------------------
// Lock copies (module-wide)
// ---------------------------------------------------------------------------

func checkLockCopies(pass *analysis.Pass, fn *ast.FuncDecl) {
	// By-value receiver or parameters of lock-bearing type.
	if fn.Recv != nil {
		for _, f := range fn.Recv.List {
			reportLockField(pass, f, "receiver")
		}
	}
	if fn.Type.Params != nil {
		for _, f := range fn.Type.Params.List {
			reportLockField(pass, f, "parameter")
		}
	}
	if fn.Type.Results != nil {
		for _, f := range fn.Type.Results.List {
			reportLockField(pass, f, "result")
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range x.Rhs {
				if !readsExistingValue(rhs) {
					continue
				}
				if name := lockPath(pass.TypesInfo, rhs); name != "" {
					pass.Reportf(rhs.Pos(), "assignment copies lock value: %s", name)
				}
			}
		case *ast.RangeStmt:
			if x.Value != nil {
				if tv, ok := pass.TypesInfo.Types[x.Value]; ok && tv.Type != nil {
					if name := lockName(tv.Type); name != "" {
						pass.Reportf(x.Value.Pos(), "range iteration copies lock value: %s", name)
					}
				} else if id, ok := x.Value.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						if name := lockName(obj.Type()); name != "" {
							pass.Reportf(x.Value.Pos(), "range iteration copies lock value: %s", name)
						}
					}
				}
			}
		}
		return true
	})
}

func reportLockField(pass *analysis.Pass, f *ast.Field, what string) {
	tv, ok := pass.TypesInfo.Types[f.Type]
	if !ok || tv.Type == nil {
		return
	}
	if _, isPtr := tv.Type.(*types.Pointer); isPtr {
		return
	}
	if name := lockName(tv.Type); name != "" {
		pass.Reportf(f.Type.Pos(), "%s passes lock by value: %s", what, name)
	}
}

// readsExistingValue reports whether the expression reads a value that
// already exists elsewhere (so assigning it makes a copy). Fresh values —
// composite literals, calls that construct, & — are fine.
func readsExistingValue(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return readsExistingValue(x.X)
	}
	return false
}

// lockPath returns a description if the expression's type carries a lock.
func lockPath(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	return lockName(tv.Type)
}

// lockName returns the name of the lock type contained (transitively, by
// value) in t, or "".
func lockName(t types.Type) string {
	return lockNameRec(t, map[types.Type]bool{})
}

var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "Pool": true,
	"WaitGroup": true, "Once": true, "Cond": true, "Map": true,
}

func lockNameRec(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return "sync." + obj.Name()
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := lockNameRec(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockNameRec(u.Elem(), seen)
	case *types.Named:
		return lockNameRec(u, seen)
	}
	return ""
}
