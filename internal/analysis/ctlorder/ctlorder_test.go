package ctlorder_test

import (
	"testing"

	"saql/internal/analysis/analysistest"
	"saql/internal/analysis/ctlorder"
)

// TestEnvelopeDiscipline checks the control-queue rules inside a package
// whose import path ends in internal/runtime: raw envelope sends, channel
// closes, and direct shard-field writes are flagged unless the enclosing
// function carries //saql:ctlpath (or the line is suppressed).
func TestEnvelopeDiscipline(t *testing.T) {
	analysistest.Run(t, ctlorder.Analyzer, "saql/internal/runtime")
}

// TestLockCopies checks the module-wide by-value lock rules: receivers,
// parameters, results, assignments, and range copies of lock-bearing
// structs are flagged; pointer forms are not.
func TestLockCopies(t *testing.T) {
	analysistest.Run(t, ctlorder.Analyzer, "locks")
}
