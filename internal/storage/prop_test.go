package storage

// Property-based tests for the segment record codec and the offset cursors:
// arbitrary events round-trip encode→decode losslessly, truncated records
// and corrupted CRCs are rejected cleanly (no panic, no partial event), and
// ScanFrom/Count agree with append order for every offset.

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"saql/internal/event"
)

// randomEntity draws a structurally valid entity.
func randomEntity(rng *rand.Rand) event.Entity {
	switch rng.Intn(3) {
	case 0:
		return event.Entity{
			Type:    event.EntityProcess,
			ExeName: randomString(rng),
			PID:     int32(rng.Uint32()),
			User:    randomString(rng),
			CmdLine: randomString(rng),
		}
	case 1:
		return event.Entity{Type: event.EntityFile, Path: randomString(rng)}
	default:
		return event.Entity{
			Type:     event.EntityNetConn,
			SrcIP:    randomString(rng),
			SrcPort:  int32(rng.Uint32()),
			DstIP:    randomString(rng),
			DstPort:  int32(rng.Uint32()),
			Protocol: randomString(rng),
		}
	}
}

func randomString(rng *rand.Rand) string {
	n := rng.Intn(24)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return string(b)
}

func randomEvent(rng *rand.Rand) *event.Event {
	return &event.Event{
		ID:      rng.Uint64(),
		Time:    time.Unix(0, rng.Int63()-rng.Int63()),
		AgentID: randomString(rng),
		Subject: randomEntity(rng),
		Op:      event.Op(rng.Intn(9)),
		Object:  randomEntity(rng),
		Amount:  rng.NormFloat64() * 1e9,
	}
}

func eventsEqual(a, b *event.Event) bool {
	return a.ID == b.ID &&
		a.Time.Equal(b.Time) &&
		a.AgentID == b.AgentID &&
		a.Subject == b.Subject &&
		a.Op == b.Op &&
		a.Object == b.Object &&
		(a.Amount == b.Amount || (a.Amount != a.Amount && b.Amount != b.Amount)) // NaN-safe
}

func TestEventCodecRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ev := randomEvent(rng)
		rec := EncodeEvent(ev)
		got, n, err := DecodeEvent(rec)
		if err != nil {
			t.Logf("seed %d: decode failed: %v", seed, err)
			return false
		}
		if n != len(rec) {
			t.Logf("seed %d: consumed %d of %d bytes", seed, n, len(rec))
			return false
		}
		if !eventsEqual(ev, got) {
			t.Logf("seed %d: round trip drifted:\n  in:  %+v\n  out: %+v", seed, ev, got)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEventCodecRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		rec := EncodeEvent(randomEvent(rng))
		// Every truncation must fail cleanly.
		cut := rng.Intn(len(rec))
		if ev, _, err := DecodeEvent(rec[:cut]); err == nil && cut < len(rec) {
			t.Fatalf("truncated record (%d of %d bytes) decoded to %+v", cut, len(rec), ev)
		}
		// Any single-byte payload flip must be caught by the CRC (flips in
		// the length prefix may legally surface as truncation errors
		// instead; either way no event comes back).
		flipped := append([]byte(nil), rec...)
		flipped[rng.Intn(len(flipped))] ^= 1 << uint(rng.Intn(8))
		if ev, _, err := DecodeEvent(flipped); err == nil {
			// A flip in the trailing CRC of a record whose recomputed CRC
			// still matches is impossible; a flip that leaves a valid
			// shorter record is possible only if lengths collapsed, which
			// the CRC again guards. Decoding "successfully" is a bug.
			t.Fatalf("corrupted record decoded to %+v", ev)
		}
	}
}

func TestScanFromOffsetsProperty(t *testing.T) {
	dir := t.TempDir()
	// A small segment size forces rotation, so offset skipping crosses
	// segment boundaries and exercises the sidecar-count fast path.
	s, err := Open(dir, Options{MaxSegmentSize: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	const n = 300
	var all []*event.Event
	for i := 0; i < n; i++ {
		ev := randomEvent(rng)
		ev.ID = uint64(i) // make order observable
		all = append(all, ev)
		if err := s.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if count, err := s.Count(); err != nil || count != n {
		t.Fatalf("Count = %d, %v; want %d", count, err, n)
	}
	for _, offset := range []int64{0, 1, 99, 150, 299, 300, 301} {
		got, err := s.ReadFrom(offset, Selection{})
		if err != nil {
			t.Fatalf("ReadFrom(%d): %v", offset, err)
		}
		want := 0
		if offset < n {
			want = n - int(offset)
		}
		if len(got) != want {
			t.Fatalf("ReadFrom(%d) yielded %d events, want %d", offset, len(got), want)
		}
		for i, ev := range got {
			if ev.ID != uint64(int(offset)+i) {
				t.Fatalf("ReadFrom(%d)[%d].ID = %d, want %d (order broken)", offset, i, ev.ID, int(offset)+i)
			}
		}
	}
}

// TestScanFromWithSelection pins the interaction between the offset cursor
// and sidecar-index segment pruning: a pruned segment (whole time range or
// host set outside the selection) must still advance the record cursor by
// its count, so offsets keep indexing the global append order.
func TestScanFromWithSelection(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxSegmentSize: 1 << 9})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(0, 0)
	const n = 200
	var all []*event.Event
	for i := 0; i < n; i++ {
		host := "a"
		if i%2 == 1 {
			host = "b"
		}
		ev := &event.Event{
			ID:      uint64(i),
			Time:    base.Add(time.Duration(i) * time.Second),
			AgentID: host,
			Subject: event.Process("x", 1),
			Op:      event.OpWrite,
			Object:  event.File("/f"),
		}
		all = append(all, ev)
		if err := s.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	sel := Selection{
		Hosts: []string{"b"},
		From:  base.Add(50 * time.Second),
		To:    base.Add(150 * time.Second),
	}
	hosts := sel.hostSet()
	for _, offset := range []int64{0, 37, 100, 149, 199} {
		got, err := s.ReadFrom(offset, sel)
		if err != nil {
			t.Fatalf("ReadFrom(%d): %v", offset, err)
		}
		var want []uint64
		for i, ev := range all {
			if int64(i) >= offset && sel.matches(ev, hosts) {
				want = append(want, ev.ID)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("ReadFrom(%d) yielded %d events, want %d", offset, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i] {
				t.Fatalf("ReadFrom(%d)[%d].ID = %d, want %d", offset, i, got[i].ID, want[i])
			}
		}
	}
}

// TestRepairTornTail pins crash recovery of the journal file itself: a
// torn record at the end of the unsealed final segment (what an unsynced
// append leaves after a power loss) is trimmed by Repair, after which the
// durable prefix scans cleanly; corruption inside a sealed, indexed
// segment is never trimmed.
func TestRepairTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	const n = 25
	for i := 0; i < n; i++ {
		ev := randomEvent(rng)
		ev.ID = uint64(i)
		if err := s.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the crash: no seal, and a torn half-record at the tail.
	segs, err := s.listSegments()
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v, %v", segs, err)
	}
	path := filepath.Join(dir, segs[0])
	full := EncodeEvent(randomEvent(rng))
	torn := full[:len(full)/2]
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Before repair, the torn tail is a hard error.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Count(); err == nil {
		t.Fatal("Count over a torn tail succeeded")
	}
	dropped, err := s2.Repair()
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if dropped != int64(len(torn)) {
		t.Errorf("Repair dropped %d bytes, want %d", dropped, len(torn))
	}
	if cnt, err := s2.Count(); err != nil || cnt != n {
		t.Fatalf("Count after repair = %d, %v; want %d", cnt, err, n)
	}
	// Idempotent on a clean journal.
	if dropped, err := s2.Repair(); err != nil || dropped != 0 {
		t.Errorf("second Repair = %d, %v; want 0, nil", dropped, err)
	}

	// Corruption in a sealed (indexed) segment must not be trimmed:
	// MaxSegmentSize 1 seals every segment at append time, so the final
	// segment carries a sidecar index.
	dir2 := t.TempDir()
	sealed, err := Open(dir2, Options{MaxSegmentSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := sealed.Append(randomEvent(rng)); err != nil {
			t.Fatal(err)
		}
	}
	segs2, err := sealed.listSegments()
	if err != nil || len(segs2) != 3 {
		t.Fatalf("segments = %v, %v", segs2, err)
	}
	lastPath := filepath.Join(dir2, segs2[len(segs2)-1])
	data, err := os.ReadFile(lastPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0xFF
	if err := os.WriteFile(lastPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s3.Repair(); err == nil {
		t.Fatal("Repair trimmed a sealed corrupt segment")
	}
}
