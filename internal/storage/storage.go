// Package storage implements the event store behind the stream replayer.
// The paper stores collected monitoring data in databases so attack traces
// can be replayed on demand; this package provides the equivalent embedded
// store: append-only segment files holding length-prefixed, CRC-checked
// binary event records, with per-segment time/host metadata so range scans
// touch only relevant segments.
package storage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"saql/internal/event"
)

const (
	segmentPrefix  = "events-"
	segmentSuffix  = ".seg"
	metaSuffix     = ".idx"
	defaultSegSize = 8 << 20 // rotate segments at 8 MiB
)

// segMeta is the sidecar index of a sealed segment.
type segMeta struct {
	MinTime int64           `json:"min_time"`
	MaxTime int64           `json:"max_time"`
	Count   int64           `json:"count"`
	Hosts   map[string]bool `json:"hosts"`
}

// Store is an append-only event store rooted at a directory.
type Store struct {
	dir        string
	maxSegSize int64

	active     *os.File
	activeName string
	activeSize int64
	activeMeta segMeta
	nextSeg    int
}

// Options configure a store.
type Options struct {
	// MaxSegmentSize rotates the active segment beyond this many bytes;
	// zero uses 8 MiB.
	MaxSegmentSize int64
}

// Open opens (creating if needed) a store in dir.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	s := &Store{dir: dir, maxSegSize: opts.MaxSegmentSize}
	if s.maxSegSize <= 0 {
		s.maxSegSize = defaultSegSize
	}
	segs, err := s.listSegments()
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		n, err := segNumber(last)
		if err != nil {
			return nil, err
		}
		s.nextSeg = n + 1
	} else {
		s.nextSeg = 1
	}
	return s, nil
}

// Append writes one event to the active segment, rotating as needed.
func (s *Store) Append(ev *event.Event) error {
	if s.active == nil {
		if err := s.openSegment(); err != nil {
			return err
		}
	}
	rec := encodeEvent(ev)
	n, err := s.active.Write(rec)
	if err != nil {
		return fmt.Errorf("storage: append: %w", err)
	}
	s.activeSize += int64(n)
	ts := ev.Time.UnixNano()
	if s.activeMeta.Count == 0 || ts < s.activeMeta.MinTime {
		s.activeMeta.MinTime = ts
	}
	if s.activeMeta.Count == 0 || ts > s.activeMeta.MaxTime {
		s.activeMeta.MaxTime = ts
	}
	s.activeMeta.Count++
	s.activeMeta.Hosts[ev.AgentID] = true
	if s.activeSize >= s.maxSegSize {
		return s.seal()
	}
	return nil
}

// AppendAll appends a batch of events.
func (s *Store) AppendAll(evs []*event.Event) error {
	for _, ev := range evs {
		if err := s.Append(ev); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) openSegment() error {
	name := fmt.Sprintf("%s%06d%s", segmentPrefix, s.nextSeg, segmentSuffix)
	s.nextSeg++
	f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: open segment: %w", err)
	}
	s.active = f
	s.activeName = name
	s.activeSize = 0
	s.activeMeta = segMeta{Hosts: map[string]bool{}}
	return nil
}

// seal closes the active segment and writes its sidecar index.
func (s *Store) seal() error {
	if s.active == nil {
		return nil
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("storage: sync: %w", err)
	}
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("storage: close: %w", err)
	}
	meta, err := json.Marshal(s.activeMeta)
	if err != nil {
		return fmt.Errorf("storage: meta: %w", err)
	}
	metaPath := filepath.Join(s.dir, strings.TrimSuffix(s.activeName, segmentSuffix)+metaSuffix)
	if err := os.WriteFile(metaPath, meta, 0o644); err != nil {
		return fmt.Errorf("storage: meta: %w", err)
	}
	s.active = nil
	s.activeName = ""
	return nil
}

// Close seals the active segment and closes the store.
func (s *Store) Close() error { return s.seal() }

func (s *Store) listSegments() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	var segs []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, segmentPrefix) && strings.HasSuffix(name, segmentSuffix) {
			segs = append(segs, name)
		}
	}
	sort.Strings(segs)
	return segs, nil
}

func segNumber(name string) (int, error) {
	num := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
	var n int
	if _, err := fmt.Sscanf(num, "%d", &n); err != nil {
		return 0, fmt.Errorf("storage: bad segment name %q", name)
	}
	return n, nil
}

// Selection filters a scan.
type Selection struct {
	// Hosts restricts to these agent ids; empty means all hosts.
	Hosts []string
	// From/To bound event time (inclusive from, exclusive to). Zero values
	// mean unbounded.
	From time.Time
	To   time.Time
}

func (sel *Selection) hostSet() map[string]bool {
	if len(sel.Hosts) == 0 {
		return nil
	}
	m := make(map[string]bool, len(sel.Hosts))
	for _, h := range sel.Hosts {
		m[h] = true
	}
	return m
}

func (sel *Selection) matches(ev *event.Event, hosts map[string]bool) bool {
	if hosts != nil && !hosts[ev.AgentID] {
		return false
	}
	if !sel.From.IsZero() && ev.Time.Before(sel.From) {
		return false
	}
	if !sel.To.IsZero() && !ev.Time.Before(sel.To) {
		return false
	}
	return true
}

// segmentOverlaps consults the sidecar index (if present) to skip segments
// entirely outside the selection.
func (sel *Selection) segmentOverlaps(meta *segMeta) bool {
	if meta == nil {
		return true
	}
	if !sel.From.IsZero() && meta.MaxTime < sel.From.UnixNano() {
		return false
	}
	if !sel.To.IsZero() && meta.MinTime >= sel.To.UnixNano() {
		return false
	}
	if len(sel.Hosts) > 0 {
		any := false
		for _, h := range sel.Hosts {
			if meta.Hosts[h] {
				any = true
				break
			}
		}
		if !any {
			return false
		}
	}
	return true
}

// Scan reads all stored events matching sel, in storage order (which is
// append order; collection agents append in time order), invoking yield for
// each. A yield error aborts the scan.
func (s *Store) Scan(sel Selection, yield func(*event.Event) error) error {
	// Seal the active segment so its data is visible to the scan.
	if err := s.seal(); err != nil {
		return err
	}
	segs, err := s.listSegments()
	if err != nil {
		return err
	}
	hosts := sel.hostSet()
	for _, seg := range segs {
		meta := s.readMeta(seg)
		if !sel.segmentOverlaps(meta) {
			continue
		}
		if err := s.scanSegment(seg, sel, hosts, yield); err != nil {
			return err
		}
	}
	return nil
}

// ReadAll collects all events matching sel.
func (s *Store) ReadAll(sel Selection) ([]*event.Event, error) {
	var out []*event.Event
	err := s.Scan(sel, func(ev *event.Event) error {
		out = append(out, ev)
		return nil
	})
	return out, err
}

func (s *Store) readMeta(seg string) *segMeta {
	metaPath := filepath.Join(s.dir, strings.TrimSuffix(seg, segmentSuffix)+metaSuffix)
	data, err := os.ReadFile(metaPath)
	if err != nil {
		return nil
	}
	var m segMeta
	if err := json.Unmarshal(data, &m); err != nil {
		return nil
	}
	return &m
}

func (s *Store) scanSegment(seg string, sel Selection, hosts map[string]bool, yield func(*event.Event) error) error {
	f, err := os.Open(filepath.Join(s.dir, seg))
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return fmt.Errorf("storage: read %s: %w", seg, err)
	}
	off := 0
	for off < len(data) {
		ev, n, err := decodeEvent(data[off:])
		if err != nil {
			return fmt.Errorf("storage: segment %s offset %d: %w", seg, off, err)
		}
		off += n
		if sel.matches(ev, hosts) {
			if err := yield(ev); err != nil {
				return err
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------

// encodeEvent produces: uvarint payloadLen | payload | crc32(payload).
func encodeEvent(ev *event.Event) []byte {
	payload := make([]byte, 0, 128)
	payload = binary.AppendUvarint(payload, ev.ID)
	payload = binary.AppendVarint(payload, ev.Time.UnixNano())
	payload = appendString(payload, ev.AgentID)
	payload = appendEntity(payload, &ev.Subject)
	payload = append(payload, byte(ev.Op))
	payload = appendEntity(payload, &ev.Object)
	payload = binary.LittleEndian.AppendUint64(payload, uint64(float64bits(ev.Amount)))

	rec := binary.AppendUvarint(nil, uint64(len(payload)))
	rec = append(rec, payload...)
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
	return rec
}

func decodeEvent(data []byte) (*event.Event, int, error) {
	plen, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, 0, fmt.Errorf("bad record length")
	}
	total := n + int(plen) + 4
	if len(data) < total {
		return nil, 0, fmt.Errorf("truncated record (%d < %d)", len(data), total)
	}
	payload := data[n : n+int(plen)]
	wantCRC := binary.LittleEndian.Uint32(data[n+int(plen):])
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, 0, fmt.Errorf("crc mismatch")
	}

	ev := &event.Event{}
	off := 0
	id, k := binary.Uvarint(payload[off:])
	if k <= 0 {
		return nil, 0, fmt.Errorf("bad id")
	}
	off += k
	ev.ID = id
	ts, k := binary.Varint(payload[off:])
	if k <= 0 {
		return nil, 0, fmt.Errorf("bad time")
	}
	off += k
	ev.Time = time.Unix(0, ts)
	agent, k, err := readString(payload[off:])
	if err != nil {
		return nil, 0, err
	}
	off += k
	ev.AgentID = agent
	subj, k, err := readEntity(payload[off:])
	if err != nil {
		return nil, 0, err
	}
	off += k
	ev.Subject = subj
	if off >= len(payload) {
		return nil, 0, fmt.Errorf("truncated op")
	}
	ev.Op = event.Op(payload[off])
	off++
	obj, k, err := readEntity(payload[off:])
	if err != nil {
		return nil, 0, err
	}
	off += k
	ev.Object = obj
	if len(payload[off:]) < 8 {
		return nil, 0, fmt.Errorf("truncated amount")
	}
	ev.Amount = float64frombits(binary.LittleEndian.Uint64(payload[off:]))
	return ev, total, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readString(b []byte) (string, int, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 || len(b) < n+int(l) {
		return "", 0, fmt.Errorf("bad string")
	}
	return string(b[n : n+int(l)]), n + int(l), nil
}

func appendEntity(b []byte, e *event.Entity) []byte {
	b = append(b, byte(e.Type))
	switch e.Type {
	case event.EntityProcess:
		b = appendString(b, e.ExeName)
		b = binary.AppendVarint(b, int64(e.PID))
		b = appendString(b, e.User)
		b = appendString(b, e.CmdLine)
	case event.EntityFile:
		b = appendString(b, e.Path)
	case event.EntityNetConn:
		b = appendString(b, e.SrcIP)
		b = binary.AppendVarint(b, int64(e.SrcPort))
		b = appendString(b, e.DstIP)
		b = binary.AppendVarint(b, int64(e.DstPort))
		b = appendString(b, e.Protocol)
	}
	return b
}

func readEntity(b []byte) (event.Entity, int, error) {
	var e event.Entity
	if len(b) == 0 {
		return e, 0, fmt.Errorf("truncated entity")
	}
	e.Type = event.EntityType(b[0])
	off := 1
	str := func() (string, error) {
		s, n, err := readString(b[off:])
		off += n
		return s, err
	}
	num := func() (int64, error) {
		v, n := binary.Varint(b[off:])
		if n <= 0 {
			return 0, fmt.Errorf("bad varint")
		}
		off += n
		return v, nil
	}
	var err error
	switch e.Type {
	case event.EntityProcess:
		if e.ExeName, err = str(); err != nil {
			return e, 0, err
		}
		pid, err := num()
		if err != nil {
			return e, 0, err
		}
		e.PID = int32(pid)
		if e.User, err = str(); err != nil {
			return e, 0, err
		}
		if e.CmdLine, err = str(); err != nil {
			return e, 0, err
		}
	case event.EntityFile:
		if e.Path, err = str(); err != nil {
			return e, 0, err
		}
	case event.EntityNetConn:
		if e.SrcIP, err = str(); err != nil {
			return e, 0, err
		}
		sp, err := num()
		if err != nil {
			return e, 0, err
		}
		e.SrcPort = int32(sp)
		if e.DstIP, err = str(); err != nil {
			return e, 0, err
		}
		dp, err := num()
		if err != nil {
			return e, 0, err
		}
		e.DstPort = int32(dp)
		if e.Protocol, err = str(); err != nil {
			return e, 0, err
		}
	default:
		return e, 0, fmt.Errorf("unknown entity type %d", e.Type)
	}
	return e, off, nil
}

func float64bits(f float64) uint64     { return math.Float64bits(f) }
func float64frombits(u uint64) float64 { return math.Float64frombits(u) }
