// Package storage implements the event store behind the stream replayer.
// The paper stores collected monitoring data in databases so attack traces
// can be replayed on demand; this package provides the equivalent embedded
// store: append-only segment files holding length-prefixed, CRC-checked
// binary event records, with per-segment time/host metadata so range scans
// touch only relevant segments.
package storage

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"saql/internal/event"
	"saql/internal/wire"
)

const (
	segmentPrefix  = "events-"
	segmentSuffix  = ".seg"
	metaSuffix     = ".idx"
	defaultSegSize = 8 << 20 // rotate segments at 8 MiB
)

// ErrActiveStore reports a Repair attempted on a store that has already
// opened an active segment for appending.
var ErrActiveStore = errors.New("storage: repair requires a store with no active segment")

// segMeta is the sidecar index of a sealed segment.
type segMeta struct {
	MinTime int64           `json:"min_time"`
	MaxTime int64           `json:"max_time"`
	Count   int64           `json:"count"`
	Hosts   map[string]bool `json:"hosts"`
}

// Store is an append-only event store rooted at a directory.
type Store struct {
	dir        string
	maxSegSize int64

	active     *os.File
	activeName string
	activeSize int64
	activeMeta segMeta
	nextSeg    int

	// failed latches the store after a torn write that could not be rolled
	// back: appending past torn bytes would poison every later scan, so the
	// store refuses further appends instead.
	failed error
}

// Options configure a store.
type Options struct {
	// MaxSegmentSize rotates the active segment beyond this many bytes;
	// zero uses 8 MiB.
	MaxSegmentSize int64
}

// Open opens (creating if needed) a store in dir.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	s := &Store{dir: dir, maxSegSize: opts.MaxSegmentSize}
	if s.maxSegSize <= 0 {
		s.maxSegSize = defaultSegSize
	}
	segs, err := s.listSegments()
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		n, err := segNumber(last)
		if err != nil {
			return nil, err
		}
		s.nextSeg = n + 1
	} else {
		s.nextSeg = 1
	}
	return s, nil
}

// Append writes one event to the active segment, rotating as needed.
func (s *Store) Append(ev *event.Event) error {
	if s.failed != nil {
		return s.failed
	}
	if s.active == nil {
		if err := s.openSegment(); err != nil {
			return err
		}
	}
	if err := s.writeRecords(encodeEvent(ev)); err != nil {
		return err
	}
	s.foldMeta(ev)
	if s.activeSize >= s.maxSegSize {
		return s.seal()
	}
	return nil
}

// writeRecords appends encoded record bytes to the active segment. A failed
// or short write is rolled back by truncating the file to its pre-write
// size, so torn bytes never sit in front of later records; if the rollback
// itself fails the store latches failed (scans stay valid, appends stop).
func (s *Store) writeRecords(buf []byte) error {
	start := s.activeSize
	n, err := s.active.Write(buf)
	if err == nil && n == len(buf) {
		s.activeSize += int64(n)
		return nil
	}
	if err == nil {
		err = io.ErrShortWrite
	}
	if terr := s.active.Truncate(start); terr != nil {
		s.failed = fmt.Errorf("storage: segment %s poisoned: write: %v; rollback: %v", s.activeName, err, terr)
		return s.failed
	}
	return fmt.Errorf("storage: append: %w", err)
}

// AppendAll appends a batch of events with one file write per segment
// rather than per event: it sits on the engine's journaling hot path, where
// every submitter serialises behind the append, so record encoding is
// buffered and flushed in bulk (and at rotation boundaries). The sidecar
// metadata for buffered events is folded in only after their bytes hit the
// file, so a failed write can never leave the index claiming records the
// segment does not hold — a torn tail record then fails its CRC on read
// (fail-stop), it is never silently skipped over.
func (s *Store) AppendAll(evs []*event.Event) error {
	if s.failed != nil {
		return s.failed
	}
	var buf []byte
	var staged []*event.Event // events encoded into buf, metadata pending
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		err := s.writeRecords(buf)
		buf = buf[:0]
		if err != nil {
			staged = staged[:0]
			return err
		}
		for _, ev := range staged {
			s.foldMeta(ev)
		}
		staged = staged[:0]
		return nil
	}
	for _, ev := range evs {
		if s.active == nil {
			if err := s.openSegment(); err != nil {
				return err
			}
		}
		buf = append(buf, encodeEvent(ev)...)
		staged = append(staged, ev)
		if s.activeSize+int64(len(buf)) >= s.maxSegSize {
			if err := flush(); err != nil {
				return err
			}
			if err := s.seal(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// foldMeta records one durably written event in the active segment's
// sidecar metadata.
func (s *Store) foldMeta(ev *event.Event) {
	ts := ev.Time.UnixNano()
	if s.activeMeta.Count == 0 || ts < s.activeMeta.MinTime {
		s.activeMeta.MinTime = ts
	}
	if s.activeMeta.Count == 0 || ts > s.activeMeta.MaxTime {
		s.activeMeta.MaxTime = ts
	}
	s.activeMeta.Count++
	s.activeMeta.Hosts[ev.AgentID] = true
}

func (s *Store) openSegment() error {
	name := fmt.Sprintf("%s%06d%s", segmentPrefix, s.nextSeg, segmentSuffix)
	s.nextSeg++
	f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: open segment: %w", err)
	}
	s.active = f
	s.activeName = name
	s.activeSize = 0
	s.activeMeta = segMeta{Hosts: map[string]bool{}}
	return nil
}

// seal closes the active segment and writes its sidecar index.
func (s *Store) seal() error {
	if s.active == nil {
		return nil
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("storage: sync: %w", err)
	}
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("storage: close: %w", err)
	}
	meta, err := json.Marshal(s.activeMeta)
	if err != nil {
		return fmt.Errorf("storage: meta: %w", err)
	}
	metaPath := filepath.Join(s.dir, strings.TrimSuffix(s.activeName, segmentSuffix)+metaSuffix)
	if err := os.WriteFile(metaPath, meta, 0o644); err != nil {
		return fmt.Errorf("storage: meta: %w", err)
	}
	s.active = nil
	s.activeName = ""
	return nil
}

// Repair truncates a torn tail record from the final, unsealed segment —
// the shape an unsynced append leaves behind after a power loss — and
// reports how many bytes were dropped (0 when the journal is clean). Only
// the last segment without a sidecar index is eligible: a decode failure in
// a sealed segment (whose records were fsynced and counted at seal time) is
// genuine corruption and reported as an error, never trimmed. Call it once
// on a journal recovered from a crash, before scanning or appending.
func (s *Store) Repair() (int64, error) {
	if s.active != nil {
		return 0, fmt.Errorf("%w (call before appending)", ErrActiveStore)
	}
	segs, err := s.listSegments()
	if err != nil {
		return 0, err
	}
	if len(segs) == 0 {
		return 0, nil
	}
	last := segs[len(segs)-1]
	path := filepath.Join(s.dir, last)
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("storage: repair: %w", err)
	}
	off := 0
	for off < len(data) {
		_, n, err := decodeEvent(data[off:])
		if err != nil {
			if s.readMeta(last) != nil {
				return 0, fmt.Errorf("storage: sealed segment %s corrupt at offset %d: %w", last, off, err)
			}
			dropped := int64(len(data) - off)
			if err := os.Truncate(path, int64(off)); err != nil {
				return 0, fmt.Errorf("storage: repair: %w", err)
			}
			return dropped, nil
		}
		off += n
	}
	return 0, nil
}

// Sync flushes the active segment's appended records to stable storage
// without sealing it. The checkpoint path calls it (under the journal
// lock) before installing a snapshot, so every record a snapshot's offset
// covers is durable before the snapshot that names it.
func (s *Store) Sync() error {
	if s.active == nil {
		return nil
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("storage: sync: %w", err)
	}
	return nil
}

// Close seals the active segment and closes the store.
func (s *Store) Close() error { return s.seal() }

func (s *Store) listSegments() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	var segs []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, segmentPrefix) && strings.HasSuffix(name, segmentSuffix) {
			segs = append(segs, name)
		}
	}
	sort.Strings(segs)
	return segs, nil
}

func segNumber(name string) (int, error) {
	num := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
	var n int
	if _, err := fmt.Sscanf(num, "%d", &n); err != nil {
		return 0, fmt.Errorf("storage: bad segment name %q", name)
	}
	return n, nil
}

// Selection filters a scan.
type Selection struct {
	// Hosts restricts to these agent ids; empty means all hosts.
	Hosts []string
	// From/To bound event time (inclusive from, exclusive to). Zero values
	// mean unbounded.
	From time.Time
	To   time.Time
}

func (sel *Selection) hostSet() map[string]bool {
	if len(sel.Hosts) == 0 {
		return nil
	}
	m := make(map[string]bool, len(sel.Hosts))
	for _, h := range sel.Hosts {
		m[h] = true
	}
	return m
}

func (sel *Selection) matches(ev *event.Event, hosts map[string]bool) bool {
	if hosts != nil && !hosts[ev.AgentID] {
		return false
	}
	if !sel.From.IsZero() && ev.Time.Before(sel.From) {
		return false
	}
	if !sel.To.IsZero() && !ev.Time.Before(sel.To) {
		return false
	}
	return true
}

// segmentOverlaps consults the sidecar index (if present) to skip segments
// entirely outside the selection.
func (sel *Selection) segmentOverlaps(meta *segMeta) bool {
	if meta == nil {
		return true
	}
	if !sel.From.IsZero() && meta.MaxTime < sel.From.UnixNano() {
		return false
	}
	if !sel.To.IsZero() && meta.MinTime >= sel.To.UnixNano() {
		return false
	}
	if len(sel.Hosts) > 0 {
		any := false
		for _, h := range sel.Hosts {
			if meta.Hosts[h] {
				any = true
				break
			}
		}
		if !any {
			return false
		}
	}
	return true
}

// Scan reads all stored events matching sel, in storage order (which is
// append order; collection agents append in time order), invoking yield for
// each. A yield error aborts the scan.
func (s *Store) Scan(sel Selection, yield func(*event.Event) error) error {
	return s.ScanFrom(0, sel, yield)
}

// ScanFrom reads stored events starting at the global record offset — the
// cursor coordinate the engine's checkpoints record: record 0 is the first
// event ever appended, and offsets count every record in storage order
// regardless of sel. Sealed segments whose sidecar index shows they end
// before the offset are skipped without being read; sel then filters the
// yielded tail. A yield error aborts the scan.
func (s *Store) ScanFrom(offset int64, sel Selection, yield func(*event.Event) error) error {
	// Seal the active segment so its data is visible to the scan.
	if err := s.seal(); err != nil {
		return err
	}
	segs, err := s.listSegments()
	if err != nil {
		return err
	}
	hosts := sel.hostSet()
	var pos int64 // records before the current segment
	for _, seg := range segs {
		meta := s.readMeta(seg)
		if meta != nil && pos+meta.Count <= offset {
			// Whole segment precedes the cursor: skip without reading.
			pos += meta.Count
			continue
		}
		if meta != nil && !sel.segmentOverlaps(meta) {
			// The sidecar index proves no record matches the selection; the
			// count still advances the offset cursor.
			pos += meta.Count
			continue
		}
		skip := offset - pos
		if skip < 0 {
			skip = 0
		}
		n, err := s.scanSegment(seg, sel, hosts, skip, yield)
		pos += n
		if err != nil {
			return err
		}
	}
	return nil
}

// Count reports how many event records the store holds (the offset the next
// append lands at). Sealed segments are counted from their sidecar index;
// an unsealed or index-less segment is scanned.
func (s *Store) Count() (int64, error) {
	if err := s.seal(); err != nil {
		return 0, err
	}
	segs, err := s.listSegments()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, seg := range segs {
		if meta := s.readMeta(seg); meta != nil {
			total += meta.Count
			continue
		}
		n, err := s.scanSegment(seg, Selection{}, nil, 0, func(*event.Event) error { return nil })
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// ReadFrom collects all events from the global record offset onward that
// match sel: the checkpoint-replay tail.
func (s *Store) ReadFrom(offset int64, sel Selection) ([]*event.Event, error) {
	var out []*event.Event
	err := s.ScanFrom(offset, sel, func(ev *event.Event) error {
		out = append(out, ev)
		return nil
	})
	return out, err
}

// ReadAll collects all events matching sel.
func (s *Store) ReadAll(sel Selection) ([]*event.Event, error) {
	var out []*event.Event
	err := s.Scan(sel, func(ev *event.Event) error {
		out = append(out, ev)
		return nil
	})
	return out, err
}

func (s *Store) readMeta(seg string) *segMeta {
	metaPath := filepath.Join(s.dir, strings.TrimSuffix(seg, segmentSuffix)+metaSuffix)
	data, err := os.ReadFile(metaPath)
	if err != nil {
		return nil
	}
	var m segMeta
	if err := json.Unmarshal(data, &m); err != nil {
		return nil
	}
	return &m
}

// scanSegment yields the segment's events past the first skip records,
// reporting how many records the segment holds in total.
func (s *Store) scanSegment(seg string, sel Selection, hosts map[string]bool, skip int64, yield func(*event.Event) error) (int64, error) {
	f, err := os.Open(filepath.Join(s.dir, seg))
	if err != nil {
		return 0, fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, fmt.Errorf("storage: read %s: %w", seg, err)
	}
	off := 0
	var count int64
	for off < len(data) {
		ev, n, err := decodeEvent(data[off:])
		if err != nil {
			return count, fmt.Errorf("storage: segment %s offset %d: %w", seg, off, err)
		}
		off += n
		count++
		if count <= skip {
			continue
		}
		if sel.matches(ev, hosts) {
			if err := yield(ev); err != nil {
				return count, err
			}
		}
	}
	return count, nil
}

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------

// EncodeEvent produces one store record: uvarint payloadLen | payload |
// crc32(payload), with the payload encoded by the shared wire codec.
func EncodeEvent(ev *event.Event) []byte {
	payload := wire.AppendEvent(make([]byte, 0, 128), ev)
	rec := binary.AppendUvarint(nil, uint64(len(payload)))
	rec = append(rec, payload...)
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
	return rec
}

// DecodeEvent decodes one store record from the front of data, returning the
// event and the record's total length. Truncated records and CRC mismatches
// are rejected before any payload field is interpreted.
func DecodeEvent(data []byte) (*event.Event, int, error) {
	plen, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, 0, fmt.Errorf("bad record length")
	}
	if plen > uint64(len(data)) {
		return nil, 0, fmt.Errorf("truncated record (%d < %d)", len(data), plen)
	}
	total := n + int(plen) + 4
	if len(data) < total {
		return nil, 0, fmt.Errorf("truncated record (%d < %d)", len(data), total)
	}
	payload := data[n : n+int(plen)]
	wantCRC := binary.LittleEndian.Uint32(data[n+int(plen):])
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, 0, fmt.Errorf("crc mismatch")
	}
	r := wire.NewReader(payload)
	ev := r.ReadEvent()
	if r.Err() != nil {
		return nil, 0, r.Err()
	}
	if r.Len() != 0 {
		return nil, 0, fmt.Errorf("trailing garbage in record payload")
	}
	return ev, total, nil
}

func encodeEvent(ev *event.Event) []byte { return EncodeEvent(ev) }

func decodeEvent(data []byte) (*event.Event, int, error) { return DecodeEvent(data) }
