package storage

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"saql/internal/event"
)

var base = time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)

func sampleEvents(n int) []*event.Event {
	out := make([]*event.Event, n)
	for i := range out {
		agent := "host-a"
		if i%3 == 0 {
			agent = "host-b"
		}
		out[i] = &event.Event{
			ID:      uint64(i + 1),
			Time:    base.Add(time.Duration(i) * time.Second),
			AgentID: agent,
			Subject: event.Process("sqlservr.exe", 1680),
			Op:      event.OpWrite,
			Object:  event.NetConn("10.0.0.2", 1433, "10.0.1.5", 49000),
			Amount:  float64(i) * 100,
		}
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := sampleEvents(100)
	if err := s.AppendAll(want); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadAll(Selection{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.ID != w.ID || !g.Time.Equal(w.Time) || g.AgentID != w.AgentID ||
			g.Op != w.Op || g.Amount != w.Amount ||
			g.Subject != w.Subject || g.Object != w.Object {
			t.Fatalf("event %d mismatch:\n got %+v\nwant %+v", i, g, w)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSelectionFilters(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{})
	evs := sampleEvents(90)
	if err := s.AppendAll(evs); err != nil {
		t.Fatal(err)
	}

	onlyB, err := s.ReadAll(Selection{Hosts: []string{"host-b"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(onlyB) != 30 {
		t.Errorf("host-b events = %d, want 30", len(onlyB))
	}
	for _, ev := range onlyB {
		if ev.AgentID != "host-b" {
			t.Fatal("host filter leaked")
		}
	}

	slice, err := s.ReadAll(Selection{From: base.Add(10 * time.Second), To: base.Add(20 * time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if len(slice) != 10 {
		t.Errorf("time slice = %d events, want 10", len(slice))
	}
	for _, ev := range slice {
		if ev.Time.Before(base.Add(10*time.Second)) || !ev.Time.Before(base.Add(20*time.Second)) {
			t.Fatal("time filter leaked")
		}
	}

	none, err := s.ReadAll(Selection{Hosts: []string{"host-z"}})
	if err != nil || len(none) != 0 {
		t.Errorf("unknown host = %d events, %v", len(none), err)
	}
}

func TestSegmentRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{MaxSegmentSize: 1024})
	if err := s.AppendAll(sampleEvents(200)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	var segs, idxs int
	for _, e := range entries {
		switch filepath.Ext(e.Name()) {
		case ".seg":
			segs++
		case ".idx":
			idxs++
		}
	}
	if segs < 2 {
		t.Errorf("segments = %d, want rotation", segs)
	}
	if idxs != segs {
		t.Errorf("idx sidecars = %d, segments = %d", idxs, segs)
	}

	// Re-open and keep appending; old data must survive.
	s2, err := Open(dir, Options{MaxSegmentSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	extra := sampleEvents(10)
	for _, ev := range extra {
		ev.Time = base.Add(time.Hour)
	}
	if err := s2.AppendAll(extra); err != nil {
		t.Fatal(err)
	}
	all, err := s2.ReadAll(Selection{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 210 {
		t.Errorf("total after reopen = %d, want 210", len(all))
	}
}

func TestScanAbort(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{})
	_ = s.AppendAll(sampleEvents(50))
	n := 0
	err := s.Scan(Selection{}, func(*event.Event) error {
		n++
		if n == 10 {
			return os.ErrClosed
		}
		return nil
	})
	if err == nil || n != 10 {
		t.Errorf("scan abort: n=%d err=%v", n, err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{})
	_ = s.AppendAll(sampleEvents(5))
	_ = s.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	data, _ := os.ReadFile(segs[0])
	data[len(data)/2] ^= 0xFF // flip a bit mid-file
	_ = os.WriteFile(segs[0], data, 0o644)

	s2, _ := Open(dir, Options{})
	if _, err := s2.ReadAll(Selection{}); err == nil {
		t.Error("corrupted segment read without error")
	}
}

func TestAllEntityTypesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{})
	proc := event.Process("x.exe", 42)
	proc.User = "alice"
	proc.CmdLine = "x.exe -v"
	evs := []*event.Event{
		{ID: 1, Time: base, AgentID: "h", Subject: proc, Op: event.OpStart, Object: event.Process("y.exe", 43)},
		{ID: 2, Time: base.Add(time.Second), AgentID: "h", Subject: proc, Op: event.OpWrite, Object: event.File(`C:\a b\f.txt`), Amount: 12.5},
		{ID: 3, Time: base.Add(2 * time.Second), AgentID: "h", Subject: proc, Op: event.OpConnect, Object: event.NetConn("1.2.3.4", 555, "5.6.7.8", 443)},
	}
	_ = s.AppendAll(evs)
	got, err := s.ReadAll(Selection{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range evs {
		if got[i].Subject != evs[i].Subject || got[i].Object != evs[i].Object {
			t.Errorf("event %d entities mismatch: %+v vs %+v", i, got[i], evs[i])
		}
	}
}

// Property: encode/decode round-trips arbitrary events.
func TestCodecProperty(t *testing.T) {
	f := func(id uint64, ns int64, agent, exe string, pid int32, path string, amount float64) bool {
		ev := &event.Event{
			ID:      id,
			Time:    time.Unix(0, ns),
			AgentID: agent,
			Subject: event.Process(exe, pid),
			Op:      event.OpWrite,
			Object:  event.File(path),
			Amount:  amount,
		}
		rec := encodeEvent(ev)
		got, n, err := decodeEvent(rec)
		if err != nil || n != len(rec) {
			return false
		}
		return got.ID == ev.ID && got.Time.Equal(ev.Time) && got.AgentID == ev.AgentID &&
			got.Subject == ev.Subject && got.Object == ev.Object &&
			(got.Amount == ev.Amount || (got.Amount != got.Amount && ev.Amount != ev.Amount))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
