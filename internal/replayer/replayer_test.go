package replayer

import (
	"context"
	"errors"
	"testing"
	"time"

	"saql/internal/event"
	"saql/internal/storage"
)

var base = time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)

func storeWith(t *testing.T, evs []*event.Event) *storage.Store {
	t.Helper()
	s, err := storage.Open(t.TempDir(), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendAll(evs); err != nil {
		t.Fatal(err)
	}
	return s
}

func events(n int, agents ...string) []*event.Event {
	if len(agents) == 0 {
		agents = []string{"h1"}
	}
	out := make([]*event.Event, n)
	for i := range out {
		out[i] = &event.Event{
			ID:      uint64(i + 1),
			Time:    base.Add(time.Duration(i) * time.Second),
			AgentID: agents[i%len(agents)],
			Subject: event.Process("p", 1),
			Op:      event.OpRead,
			Object:  event.File("/f"),
		}
	}
	return out
}

func TestReplayMaxSpeedOrdered(t *testing.T) {
	r := New(storeWith(t, events(50, "h1", "h2")))
	var got []*event.Event
	stats, err := r.Replay(context.Background(), Options{Speed: 0}, func(ev *event.Event) error {
		got = append(got, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != 50 || len(got) != 50 {
		t.Fatalf("events = %d", stats.Events)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time.Before(got[i-1].Time) {
			t.Fatal("replay out of order")
		}
	}
	if stats.EventSpan() != 49*time.Second {
		t.Errorf("span = %v", stats.EventSpan())
	}
}

func TestReplaySelection(t *testing.T) {
	r := New(storeWith(t, events(60, "h1", "h2", "h3")))
	stats, err := r.Replay(context.Background(), Options{
		Hosts: []string{"h2"},
		From:  base.Add(10 * time.Second),
		To:    base.Add(40 * time.Second),
	}, func(ev *event.Event) error {
		if ev.AgentID != "h2" {
			t.Fatalf("wrong host %s", ev.AgentID)
		}
		if ev.Time.Before(base.Add(10*time.Second)) || !ev.Time.Before(base.Add(40*time.Second)) {
			t.Fatalf("out of range %v", ev.Time)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != 10 {
		t.Errorf("selected = %d, want 10", stats.Events)
	}
}

func TestReplayPacing(t *testing.T) {
	// 10 events spanning 9s of event time at speed 100. With the no-op
	// injected sleep, the wall clock never advances, so each event i
	// requests its full due offset i×10ms: 0+10+...+90 = 450ms total.
	r := New(storeWith(t, events(10)))
	var slept time.Duration
	r.SetSleep(func(d time.Duration) { slept += d })
	if _, err := r.Replay(context.Background(), Options{Speed: 100}, func(*event.Event) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if slept < 400*time.Millisecond || slept > 460*time.Millisecond {
		t.Errorf("paced sleep = %v, want ~450ms", slept)
	}
	// Faster speed requests proportionally less sleep.
	r2 := New(storeWith(t, events(10)))
	var slept2 time.Duration
	r2.SetSleep(func(d time.Duration) { slept2 += d })
	if _, err := r2.Replay(context.Background(), Options{Speed: 1000}, func(*event.Event) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if slept2 >= slept/5 {
		t.Errorf("speed 1000 slept %v, speed 100 slept %v", slept2, slept)
	}
}

func TestReplayNegativeSpeed(t *testing.T) {
	r := New(storeWith(t, events(1)))
	if _, err := r.Replay(context.Background(), Options{Speed: -1}, func(*event.Event) error { return nil }); err == nil {
		t.Error("negative speed accepted")
	}
}

func TestReplayEmitError(t *testing.T) {
	r := New(storeWith(t, events(10)))
	boom := errors.New("boom")
	n := 0
	_, err := r.Replay(context.Background(), Options{}, func(*event.Event) error {
		n++
		if n == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestReplayCancellation(t *testing.T) {
	r := New(storeWith(t, events(1000)))
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	_, err := r.Replay(ctx, Options{}, func(*event.Event) error {
		n++
		if n == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
	if n >= 1000 {
		t.Error("cancellation ignored")
	}
}

func TestReplayChan(t *testing.T) {
	r := New(storeWith(t, events(25)))
	ch, wait := r.ReplayChan(context.Background(), Options{}, 8)
	n := 0
	for range ch {
		n++
	}
	stats, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	if n != 25 || stats.Events != 25 {
		t.Errorf("chan replay = %d/%d", n, stats.Events)
	}
}

func TestReplayEmptySelection(t *testing.T) {
	r := New(storeWith(t, events(5)))
	stats, err := r.Replay(context.Background(), Options{Hosts: []string{"none"}}, func(*event.Event) error {
		t.Fatal("unexpected event")
		return nil
	})
	if err != nil || stats.Events != 0 {
		t.Errorf("empty replay: %v %v", stats, err)
	}
	if stats.Speedup() != 0 || stats.EventSpan() != 0 {
		t.Error("zero stats expected")
	}
}
