// Package replayer implements the paper's stream replayer: it reads stored
// system monitoring data for a selection of hosts and a start/end time and
// replays it as a live event stream at a configurable speed multiplier, so
// attack traces can be reproduced on demand against different queries
// (Figure 4 of the paper).
package replayer

import (
	"context"
	"fmt"
	"sort"
	"time"

	"saql/internal/event"
	"saql/internal/storage"
)

// Options select what to replay and how fast.
type Options struct {
	// Hosts restricts replay to these agents; empty replays all.
	Hosts []string
	// From/To bound the replayed time range.
	From time.Time
	To   time.Time
	// Speed is the time compression factor: 1 = real time, 10 = 10×
	// faster, 0 = as fast as possible.
	Speed float64
}

// Stats summarise one replay run.
type Stats struct {
	Events     int64
	FirstEvent time.Time
	LastEvent  time.Time
	Wall       time.Duration
}

// EventSpan is the event-time span covered.
func (s Stats) EventSpan() time.Duration {
	if s.Events == 0 {
		return 0
	}
	return s.LastEvent.Sub(s.FirstEvent)
}

// Speedup is the achieved time compression (event span / wall time).
func (s Stats) Speedup() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.EventSpan()) / float64(s.Wall)
}

// Replayer replays events from a store.
type Replayer struct {
	store *storage.Store
	// sleep is injectable for tests.
	sleep func(time.Duration)
}

// New creates a replayer over store.
func New(store *storage.Store) *Replayer {
	return &Replayer{store: store, sleep: time.Sleep}
}

// SetSleep overrides the pacing sleep (tests).
func (r *Replayer) SetSleep(f func(time.Duration)) { r.sleep = f }

// Replay streams the selected events in event-time order to emit, pacing
// them by the speed multiplier. It returns replay statistics.
func (r *Replayer) Replay(ctx context.Context, opts Options, emit func(*event.Event) error) (Stats, error) {
	var stats Stats
	evs, err := r.store.ReadAll(storage.Selection{Hosts: opts.Hosts, From: opts.From, To: opts.To})
	if err != nil {
		return stats, err
	}
	// Storage order is per-segment append order; restore global event-time
	// order across hosts.
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time.Before(evs[j].Time) })
	if len(evs) == 0 {
		return stats, nil
	}
	if opts.Speed < 0 {
		return stats, fmt.Errorf("replayer: negative speed %g", opts.Speed)
	}

	start := time.Now()
	base := evs[0].Time
	for _, ev := range evs {
		select {
		case <-ctx.Done():
			stats.Wall = time.Since(start)
			return stats, ctx.Err()
		default:
		}
		if opts.Speed > 0 {
			// Pace: the event is due after (eventTime-base)/speed of
			// wall time.
			due := time.Duration(float64(ev.Time.Sub(base)) / opts.Speed)
			if ahead := due - time.Since(start); ahead > 0 {
				r.sleep(ahead)
			}
		}
		if err := emit(ev); err != nil {
			stats.Wall = time.Since(start)
			return stats, err
		}
		if stats.Events == 0 {
			stats.FirstEvent = ev.Time
		}
		stats.LastEvent = ev.Time
		stats.Events++
	}
	stats.Wall = time.Since(start)
	return stats, nil
}

// ReplayChan is Replay with a channel interface: it returns the event
// channel and a function that blocks until replay completes.
func (r *Replayer) ReplayChan(ctx context.Context, opts Options, buf int) (<-chan *event.Event, func() (Stats, error)) {
	if buf < 1 {
		buf = 64
	}
	ch := make(chan *event.Event, buf)
	type result struct {
		stats Stats
		err   error
	}
	done := make(chan result, 1)
	go func() {
		defer close(ch)
		stats, err := r.Replay(ctx, opts, func(ev *event.Event) error {
			select {
			case ch <- ev:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		})
		done <- result{stats, err}
	}()
	return ch, func() (Stats, error) {
		res := <-done
		return res.stats, res.err
	}
}
