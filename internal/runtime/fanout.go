package runtime

import (
	"sync"
	"sync/atomic"

	"saql/internal/engine"
	"saql/internal/stream"
)

// AlertSubscription is one consumer's live feed of alerts. Alerts arrive on
// C in delivery order; C is closed when the subscription or the engine
// closes. A subscriber using stream.Block must keep draining C until it
// closes, or it backpressures the whole runtime.
type AlertSubscription struct {
	// C delivers alerts. Closed when the subscription or engine closes.
	C <-chan *engine.Alert

	ch      chan *engine.Alert
	done    chan struct{} // closed on unsubscribe, releases blocked senders
	policy  stream.OverflowPolicy
	filter  func(*engine.Alert) bool // nil = every alert
	id      int
	dropped atomic.Int64
	fan     *AlertFanout
	closed  bool  // guarded by fan.mu
	err     error // guarded by fan.mu; why the stream ended (see Err)
}

// Dropped reports how many alerts overflow discarded for this subscriber
// (stream.DropNewest policy only).
func (s *AlertSubscription) Dropped() int64 { return s.dropped.Load() }

// Err reports why the subscription's channel was closed by its producer:
// ErrClosed when the engine closed (or the subscription was created on an
// already-closed engine), the query-closed sentinel when the owning query
// handle closed, and nil while the subscription is live or after the
// subscriber cancelled it itself. It lets callers distinguish "I closed
// this" from "the engine ended my stream" — previously a subscription
// handed out by a closed engine was dead with no way to tell.
func (s *AlertSubscription) Err() error {
	s.fan.mu.Lock()
	defer s.fan.mu.Unlock()
	return s.err
}

// Close cancels the subscription and closes C. It is safe to call more than
// once and after the engine has closed.
func (s *AlertSubscription) Close() { s.fan.end(s, nil) }

// Ended reports whether the subscription's channel has been closed (by the
// subscriber, the query handle, or the engine).
func (s *AlertSubscription) Ended() bool {
	s.fan.mu.Lock()
	defer s.fan.mu.Unlock()
	return s.closed
}

// AlertFanout fans alerts out to any number of subscribers plus an optional
// serialized callback. It is the alert-side counterpart of stream.Broker.
type AlertFanout struct {
	onAlert func(*engine.Alert)

	// gate, when set, decides per alert whether it is delivered at all
	// (callback, subscribers, delivered counter). The engine installs its
	// tenant alert-budget check here before any publishing goroutine exists;
	// the gate runs under pubMu, so it is serialised like the callback.
	gate func(*engine.Alert) bool

	// pubMu serialises Publish: the callback is never invoked concurrently
	// and every subscriber observes alerts in one global order.
	pubMu sync.Mutex

	mu        sync.Mutex
	subs      map[int]*AlertSubscription
	nextID    int
	closed    bool
	delivered atomic.Int64
}

// NewAlertFanout creates a fan-out. onAlert may be nil; when set it is
// invoked serially for every published alert.
func NewAlertFanout(onAlert func(*engine.Alert)) *AlertFanout {
	return &AlertFanout{onAlert: onAlert, subs: map[int]*AlertSubscription{}}
}

// Subscribe registers a consumer with the given buffer size and overflow
// policy. Subscribing to a closed fan-out returns a subscription whose
// channel is already closed and whose Err reports ErrClosed.
func (f *AlertFanout) Subscribe(buf int, policy stream.OverflowPolicy) *AlertSubscription {
	return f.SubscribeFunc(buf, policy, nil)
}

// SubscribeFunc registers a consumer that receives only the alerts filter
// accepts (nil means all). Filters run inside Publish and must be fast and
// side-effect free; per-query subscriptions are filters on Alert.Query.
func (f *AlertFanout) SubscribeFunc(buf int, policy stream.OverflowPolicy, filter func(*engine.Alert) bool) *AlertSubscription {
	if buf < 1 {
		buf = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ch := make(chan *engine.Alert, buf)
	sub := &AlertSubscription{
		ch: ch, C: ch, done: make(chan struct{}), policy: policy, filter: filter, id: f.nextID, fan: f,
	}
	f.nextID++
	if f.closed {
		close(ch)
		sub.closed = true
		sub.err = ErrClosed
		return sub
	}
	f.subs[sub.id] = sub
	return sub
}

// ClosedSubscription returns a born-closed subscription whose Err reports
// err: what Subscribe hands out when the subscribed-to object (engine or
// query handle) is already gone.
func (f *AlertFanout) ClosedSubscription(err error) *AlertSubscription {
	ch := make(chan *engine.Alert)
	close(ch)
	return &AlertSubscription{ch: ch, C: ch, done: make(chan struct{}), fan: f, closed: true, err: err}
}

// End cancels a subscription on behalf of its producer, recording err as the
// reason (exposed through Err). A query handle uses it to end its per-query
// streams when the handle closes.
func (f *AlertFanout) End(s *AlertSubscription, err error) { f.end(s, err) }

func (f *AlertFanout) end(s *AlertSubscription, err error) {
	f.mu.Lock()
	if s.closed {
		f.mu.Unlock()
		return
	}
	delete(f.subs, s.id)
	s.closed = true
	s.err = err
	close(s.done) // release any Publish blocked on s.ch
	f.mu.Unlock()

	// Wait for in-flight Publish to leave s.ch before closing it.
	f.pubMu.Lock()
	close(s.ch)
	f.pubMu.Unlock()
}

// Publish delivers alerts to the callback and every subscriber whose filter
// accepts them. Safe for concurrent use; deliveries are serialised.
func (f *AlertFanout) Publish(alerts []*engine.Alert) {
	if len(alerts) == 0 {
		return
	}
	f.pubMu.Lock()
	defer f.pubMu.Unlock()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	subs := make([]*AlertSubscription, 0, len(f.subs))
	for _, s := range f.subs {
		subs = append(subs, s)
	}
	f.mu.Unlock()

	for _, a := range alerts {
		if f.gate != nil && !f.gate(a) {
			continue
		}
		f.delivered.Add(1)
		if f.onAlert != nil {
			f.onAlert(a)
		}
		for _, s := range subs {
			if s.filter != nil && !s.filter(a) {
				continue
			}
			switch s.policy {
			case stream.Block:
				select {
				case s.ch <- a:
				case <-s.done: // subscriber cancelled mid-delivery
				}
			case stream.DropNewest:
				select {
				case s.ch <- a:
				default:
					s.dropped.Add(1)
				}
			}
		}
	}
}

// SetGate installs the per-alert admission check (nil for none). It must be
// set before the fan-out is first published to — the engine constructor —
// since Publish reads the field without synchronisation.
func (f *AlertFanout) SetGate(gate func(*engine.Alert) bool) { f.gate = gate }

// Delivered reports how many alerts have been published.
func (f *AlertFanout) Delivered() int64 { return f.delivered.Load() }

// SubscriberCount reports the number of live subscriptions.
func (f *AlertFanout) SubscriberCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.subs)
}

// Close closes the fan-out and every subscriber channel (each subscriber's
// Err reports ErrClosed). Publish becomes a no-op afterwards.
func (f *AlertFanout) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	subs := make([]*AlertSubscription, 0, len(f.subs))
	for id, s := range f.subs {
		subs = append(subs, s)
		s.closed = true
		s.err = ErrClosed
		close(s.done)
		delete(f.subs, id)
	}
	f.mu.Unlock()

	f.pubMu.Lock()
	for _, s := range subs {
		close(s.ch)
	}
	f.pubMu.Unlock()
}
