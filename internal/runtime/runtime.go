// Package runtime implements the concurrent sharded ingestion runtime
// beneath the public saql.Engine API: a bounded ingest queue with a
// configurable backpressure policy, a router establishing one total event
// order and pre-evaluating pattern hits once per event, N shard workers
// each owning a private scheduler, and an alert fan-out merging every
// shard's detections into subscriptions.
//
// # Shared evaluation
//
// The router owns an evaluation-only scheduler holding an unfiltered
// replica of every registered query. Before routing an event it runs
// the shard-agnostic half of the master–dependent scheme exactly once —
// each group's master pattern predicates, refined into per-dependent
// residual hit sets — and attaches the resulting immutable HitSet to every
// delivery of that event. Shards never evaluate pattern predicates: they go
// straight to owned-state folding via scheduler.IngestRouted, with the
// entry's watermark stamp advancing each query before the fold so windows
// close at the same instants everywhere. Per-event pattern work is
// therefore O(patterns), not O(shards × patterns). Control operations
// (add/swap/remove/pause) are applied to the evaluation scheduler by the
// router at the moment their envelope passes through it — before any later
// event — and every HitSet is stamped with the layout it was computed
// under, so hot-swap stays consistent: a shard resolves hit-set slots
// against exactly the registry state the router evaluated with.
//
// # Shard placement and partitioned routing
//
// The router establishes one total event order and partitions delivery by
// state ownership (see router.go): an event reaches only the shards that
// own state it would fold into —
//
//   - by-group queries (stateful, group-by, no clustering, no distinct)
//     replicate onto every shard, and each group-by key is owned by exactly
//     one shard (FNV hash of the key); non-owning replicas receive
//     lightweight touch entries so window cadence stays identical;
//   - by-event queries (stateless single-pattern rules) replicate onto
//     every shard, and each event is owned by exactly one shard (hash of
//     the subject entity);
//   - pinned queries (multievent rules, outlier/clustering queries,
//     global-group stateful queries, `return distinct`) live on a single
//     home shard, assigned round-robin, which receives every event the
//     query's patterns hit.
//
// Deliveries accumulate into per-shard batch buffers flushed on size
// threshold, queue idleness, and before every control envelope. Control
// operations (add/remove query, flush, stats snapshots, checkpoints) ride
// the same queue as events and are broadcast behind a full buffer flush, so
// they take effect at a consistent point of the stream on every shard.
package runtime

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"saql/internal/engine"
	"saql/internal/event"
	"saql/internal/scheduler"
	"saql/internal/stream"
)

// ErrClosed is returned by operations on a runtime that has been closed.
var ErrClosed = errors.New("saql: engine closed")

// Config assembles a runtime.
type Config struct {
	// Shards is the number of shard workers (>= 1).
	Shards int
	// QueueSize bounds the ingest queue (in submissions, not events).
	QueueSize int
	// Overflow selects Submit's behaviour when the queue is full:
	// stream.Block applies backpressure, stream.DropNewest discards.
	Overflow stream.OverflowPolicy
	// Sharing enables the master–dependent-query scheme on each shard.
	Sharing bool
	// Reporter receives runtime query errors (may be nil).
	Reporter *engine.ErrorReporter
	// Fan receives every alert raised by any shard.
	Fan *AlertFanout
	// Journal, when set, durably records every accepted event batch before
	// it is enqueued, in exactly the order the router will process it — the
	// append order is the replay order a checkpoint offset indexes into.
	// Setting Journal forces the Block overflow policy: a journaled event
	// must never be dropped, or replay would reprocess events the original
	// run skipped.
	Journal func([]*event.Event) error
	// BaseOffset seeds the stream-offset counter: a restored runtime
	// continues counting from the snapshot's offset, so its next checkpoint
	// records positions in the same journal coordinate space.
	BaseOffset int64
	// Owns, when set, restricts this runtime to the slice of the 32-bit
	// FNV-1a ownership hash space it owns — the distributed-worker case.
	// By-group and by-event replicas fold only owned state (cluster
	// ownership composes with the per-shard split, and the partitioned
	// router delivers unowned keys nowhere locally), and a pinned query
	// materialises only when the runtime owns the hash of its name. Every
	// runtime in a cluster still observes every event in the same order, and
	// within a runtime watermark stamps and touch entries advance every
	// replica, so watermarks and window boundaries stay identical across a
	// cluster.
	Owns func(uint32) bool
}

// Runtime is the concurrent ingestion core. One Runtime serves one started
// engine; it is safe for concurrent use.
type Runtime struct {
	cfg    Config
	ingest chan envelope
	quit   chan struct{} // closed by Close: releases blocked Submits, stops router
	done   chan struct{} // closed when shutdown (drain + flush) completed
	shards []*shard

	routerDone  chan struct{}
	workersDone sync.WaitGroup

	closed    atomic.Bool
	closeOnce sync.Once

	// submitMu lets Close erect a barrier against in-flight Submits: once
	// Close holds the write side, no submitter can still be mid-enqueue,
	// so the final drain provably sees every accepted event.
	submitMu sync.RWMutex

	events  atomic.Int64 // events accepted into the queue
	dropped atomic.Int64 // events discarded by DropNewest overflow

	// jmu serialises journal appends with queue insertion when Journal is
	// set, pinning the journal order to the routing order.
	jmu sync.Mutex
	// routed counts event envelopes the routing goroutine has taken off the
	// queue; it is written only by that goroutine (the router, then Close's
	// final drain) and snapshotted into checkpoint barriers, where it is the
	// stream offset: every journaled event before it has been fully
	// processed, nothing after it has been touched.
	routed int64

	// mu serialises control operations against each other and Close, so a
	// control envelope can never be enqueued after the router drained.
	mu      sync.Mutex
	queries map[string]*queryInfo
	nextPin int

	// evalSched is the shared-evaluation scheduler: an unfiltered replica
	// of every registered query, mutated only by the routing goroutine (the
	// router, then Close's final drain) as control envelopes pass through
	// it. Its own mutex makes concurrent Stats/Groups snapshots safe.
	evalSched *scheduler.Scheduler
	// preEval gates the shared-evaluation stage. With a single shard there
	// is no redundant work to share — the one shard runs the full
	// scheduler, and skipping the extra router hop keeps the degenerate
	// configuration as fast as the serial engine.
	preEval bool
	// part is the partitioned-routing state (nil when preEval is off, or
	// beyond the 64-shard mask width, where envelopes broadcast instead).
	// Confined to the routing goroutine.
	part *partitioner

	// testObserve, when set before any event flows, observes every routed
	// entry a shard receives (tests pin the ownership-routing invariants
	// with it). Never set in production.
	testObserve func(shard int, e *routedEntry)
}

type shard struct {
	id    int
	in    chan envelope
	sched *scheduler.Scheduler
}

// envelope is one queue item: an event batch or a control operation. For
// event batches the router fills hits (parallel to evs) with the
// pre-evaluated pattern-hit sets before broadcasting; a nil entry means the
// event matched no query. HitSets are immutable and shared read-only by
// every shard.
type envelope struct {
	evs   []*event.Event
	hits  []*scheduler.HitSet
	ctl   *control
	batch *shardBatch // partitioned delivery (router.go); nil otherwise
}

type ctlKind uint8

const (
	ctlAdd ctlKind = iota
	ctlRemove
	ctlFlush
	ctlStats
	ctlPause
	ctlSwap
	ctlCheckpoint
	ctlRestore
)

type control struct {
	kind     ctlKind
	name     string
	replicas []*engine.Query // per-shard replica (nil = not placed), ctlAdd/ctlSwap
	eval     *engine.Query   // unfiltered replica for the router's evaluation scheduler
	paused   bool            // ctlPause: target state
	carry    bool            // ctlSwap: adopt the old replica's window state

	// The router stamps the stream offset (events routed before this
	// control) here before broadcasting; the coordinator reads it after
	// collecting the acks, so the write happens-before the read. For
	// ctlCheckpoint it is the barrier's journal position; for ctlAdd and
	// ctlStats it anchors the events-offered counter under partitioned
	// routing, where no single replica observes every event.
	offset int64
	// ctlRestore: per-query state blobs (in capture-shard order) and the
	// shard id granted each query's single-owner state.
	restore    map[string][][]byte
	statsShard map[string]int

	ack chan ctlResult
}

type ctlResult struct {
	shard   int
	err     error
	removed bool
	alerts  []*engine.Alert
	stats   engine.QueryStats
	found   bool
	states  map[string][]byte // ctlCheckpoint: this shard's per-query state
}

type queryInfo struct {
	name      string
	placement engine.Placement
	replicas  []*engine.Query // indexed by shard; nil where absent
	// addedAt is the stream offset at which the query's add control passed
	// the router: QueryStats derives events-offered from it, since under
	// partitioned routing no replica is offered every event.
	addedAt int64
}

// Start spins up the runtime: one router plus cfg.Shards workers.
func Start(cfg Config) *Runtime {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.QueueSize < 1 {
		cfg.QueueSize = 1024
	}
	if cfg.Fan == nil {
		cfg.Fan = NewAlertFanout(nil)
	}
	if cfg.Journal != nil {
		// A journaled event must be processed: dropping it would desync the
		// journal from the stream offsets checkpoints record.
		cfg.Overflow = stream.Block
	}
	r := &Runtime{
		cfg:        cfg,
		ingest:     make(chan envelope, cfg.QueueSize),
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
		routerDone: make(chan struct{}),
		queries:    map[string]*queryInfo{},
		evalSched:  scheduler.New(cfg.Reporter, cfg.Sharing),
		preEval:    cfg.Shards > 1,
	}
	for i := 0; i < cfg.Shards; i++ {
		s := &shard{
			id:    i,
			in:    make(chan envelope, 128),
			sched: scheduler.New(cfg.Reporter, cfg.Sharing),
		}
		r.shards = append(r.shards, s)
	}
	if r.preEval && cfg.Shards <= maxPartitionedShards {
		r.part = newPartitioner(r)
	}
	for _, s := range r.shards {
		r.workersDone.Add(1)
		go r.worker(s)
	}
	go r.router()
	return r
}

// Shards reports the shard count.
func (r *Runtime) Shards() int { return len(r.shards) }

// ---------------------------------------------------------------------------
// Ingestion
// ---------------------------------------------------------------------------

// Submit enqueues one event. Under stream.Block it waits for queue space;
// under stream.DropNewest it discards the event when the queue is full
// (counted by Dropped). The engine owns the event after Submit returns.
func (r *Runtime) Submit(ev *event.Event) error {
	return r.SubmitBatch([]*event.Event{ev})
}

// SubmitBatch enqueues a batch of events as one queue item: batching
// amortises queue traffic for high-rate feeds. Under DropNewest overflow
// the whole batch is discarded together.
func (r *Runtime) SubmitBatch(evs []*event.Event) error {
	return r.submitBatch(evs, true)
}

// Replay enqueues a batch of already-journaled events: the checkpoint-replay
// path, identical to SubmitBatch except the journal is not appended to
// (the events are being read back out of it).
func (r *Runtime) Replay(evs []*event.Event) error {
	return r.submitBatch(evs, false)
}

// submitBatch is the front of the envelope path: journal (if configured),
// then enqueue on the ingest queue in the same order.
//
//saql:ctlpath
func (r *Runtime) submitBatch(evs []*event.Event, journal bool) error {
	if len(evs) == 0 {
		return nil
	}
	r.submitMu.RLock()
	defer r.submitMu.RUnlock()
	if r.closed.Load() {
		return ErrClosed
	}
	journaled := false
	if journal && r.cfg.Journal != nil {
		// Journal, then enqueue, under one lock hold: the journal's append
		// order is exactly the queue order, so a checkpoint offset indexes
		// the journal correctly. Journal mode forces Block overflow (see
		// Start), so an appended event is always also accepted.
		r.jmu.Lock()
		defer r.jmu.Unlock()
		if err := r.cfg.Journal(evs); err != nil {
			return fmt.Errorf("saql: journal: %w", err)
		}
		journaled = true
	}
	env := envelope{evs: evs}
	if r.cfg.Overflow == stream.DropNewest {
		select {
		case r.ingest <- env:
			r.events.Add(int64(len(evs)))
		default:
			r.dropped.Add(int64(len(evs)))
		}
		return nil
	}
	select {
	case r.ingest <- env:
		r.events.Add(int64(len(evs)))
		return nil
	case <-r.quit:
		if journaled {
			// The batch is durably journaled past the final checkpoint's
			// offset but the runtime died before processing it: it is
			// accepted — a restore from this journal replays it exactly
			// once. Returning ErrClosed here would tell the producer the
			// events were rejected while the journal disagrees.
			return nil
		}
		return ErrClosed
	}
}

// WithJournalLock runs f while holding the journal-order lock, so callers
// can fsync the journal at a moment no append is in flight (the checkpoint
// path: records covered by a barrier offset must be durable before the
// snapshot naming that offset is installed).
func (r *Runtime) WithJournalLock(f func() error) error {
	r.jmu.Lock()
	defer r.jmu.Unlock()
	return f()
}

// Events reports how many events have been accepted into the queue.
func (r *Runtime) Events() int64 { return r.events.Load() }

// Dropped reports how many events DropNewest overflow discarded.
func (r *Runtime) Dropped() int64 { return r.dropped.Load() }

// ---------------------------------------------------------------------------
// Router and workers
// ---------------------------------------------------------------------------

func (r *Runtime) router() {
	defer close(r.routerDone)
	for {
		select {
		case <-r.quit:
			// Stop pulling; Close performs the final drain after it has
			// barriered out every in-flight Submit (a submitter racing
			// Close could otherwise enqueue an accepted event after a
			// drain here and have it silently lost). Buffered entries are
			// not lost either: Close flushes after the drain.
			return
		case env := <-r.ingest:
			r.route(env)
			// Keep routing while the queue has work, then flush the
			// per-shard buffers once it goes idle: batches amortise channel
			// traffic under load without adding latency when there is none.
		drain:
			for {
				select {
				case env := <-r.ingest:
					r.route(env)
				case <-r.quit:
					return
				default:
					break drain
				}
			}
			if r.part != nil {
				r.part.flushAll()
			}
		}
	}
}

// route is the shared-evaluation stage: control envelopes update the
// evaluation scheduler (so the hit-set layout changes at exactly this point
// of the total order), event envelopes get their pattern hits computed
// once, here, before fan-out. Called only from the routing goroutine — the
// router, then Close's final drain.
func (r *Runtime) route(env envelope) {
	if env.ctl != nil {
		if r.part != nil {
			// Flush buffered deliveries first: the control must broadcast
			// behind everything routed before it (FIFO per shard channel),
			// so it keeps cutting the stream at one consistent point even
			// though shards see disjoint event subsets.
			r.part.flushAll()
		}
		// The control's stream offset: for checkpoints, the barrier
		// position (every event routed before this envelope, and only
		// those, is covered by the snapshot); for add/stats, the anchor of
		// the events-offered counter.
		env.ctl.offset = r.cfg.BaseOffset + r.routed
		r.applyEval(env.ctl)
		r.broadcast(env)
		return
	}
	r.routed += int64(len(env.evs))
	if !r.preEval {
		r.broadcast(env)
		return
	}
	if len(env.evs) > 0 {
		env.hits = r.evalSched.EvaluateBatch(env.evs)
	}
	if r.part == nil {
		// Beyond the partitioned mask width: broadcast like before.
		r.broadcast(env)
		return
	}
	for i, ev := range env.evs {
		r.part.routeEvent(ev, env.hits[i])
	}
}

// applyEval applies a control operation to the evaluation scheduler. The
// registry-level preconditions (duplicate names, unknown names) were
// checked under r.mu before the envelope was enqueued, so errors here are
// unreachable; the results that matter flow back through the shard acks.
func (r *Runtime) applyEval(c *control) {
	if !r.preEval {
		// Single shard: no evaluation scheduler to maintain.
		return
	}
	if r.part != nil {
		r.part.applyCtl(c)
	}
	switch c.kind {
	case ctlAdd:
		if c.eval != nil {
			_ = r.evalSched.Add(c.eval)
		}
	case ctlRemove:
		r.evalSched.Remove(c.name)
	case ctlSwap:
		if c.eval != nil {
			// Evaluation replicas hold no window state: never carry.
			_ = r.evalSched.Swap(c.name, c.eval, false)
		} else {
			r.evalSched.Remove(c.name)
		}
	case ctlPause:
		// Pause must reach the evaluation scheduler too: a fully paused
		// group stops being evaluated (and counted) at the same stream
		// point where the shards stop ingesting it.
		r.evalSched.SetPaused(c.name, c.paused)
	}
}

// broadcast forwards one envelope to every shard in shard order, so all
// shards observe the identical total order.
//
//saql:ctlpath
func (r *Runtime) broadcast(env envelope) {
	for _, s := range r.shards {
		s.in <- env
	}
}

func (r *Runtime) worker(s *shard) {
	defer r.workersDone.Done()
	for env := range s.in {
		if env.ctl != nil {
			s.apply(env.ctl, r.cfg.Fan)
			continue
		}
		if env.batch != nil {
			r.processBatch(s, env.batch)
			continue
		}
		if env.hits == nil {
			// Pre-evaluation bypassed (single shard): run the full
			// scheduler here, batch-columnar over the shard's own compiled
			// queries — the same programs and evaluation order the pre-eval
			// stage would use, with no second compile and no divergence onto
			// the per-event interpreter path.
			if alerts := s.sched.ProcessBatch(env.evs); len(alerts) > 0 {
				r.cfg.Fan.Publish(alerts)
			}
			continue
		}
		for i, ev := range env.evs {
			if alerts := s.sched.ProcessWithHits(ev, env.hits[i]); len(alerts) > 0 {
				r.cfg.Fan.Publish(alerts)
			}
		}
	}
	// Shutdown: close all open windows.
	r.cfg.Fan.Publish(s.sched.Flush())
}

// apply executes one control envelope on the shard's own goroutine and
// acks the result — the only place shard state may change.
//
//saql:ctlpath
func (s *shard) apply(c *control, fan *AlertFanout) {
	res := ctlResult{shard: s.id}
	switch c.kind {
	case ctlAdd:
		if q := c.replicas[s.id]; q != nil {
			res.err = s.sched.Add(q)
		}
	case ctlRemove:
		res.removed = s.sched.Remove(c.name)
	case ctlPause:
		res.found = s.sched.SetPaused(c.name, c.paused)
	case ctlSwap:
		// Swap is atomic per shard and, because the control envelope is
		// broadcast in the single total order, every shard swaps at the
		// same point of the stream: sharded hot-swap remains
		// alert-for-alert equivalent to a serial remove+add.
		if q := c.replicas[s.id]; q != nil {
			res.err = s.sched.Swap(c.name, q, c.carry)
		} else {
			res.removed = s.sched.Remove(c.name)
		}
	case ctlFlush:
		res.alerts = s.sched.Flush()
		fan.Publish(res.alerts)
	case ctlStats:
		// Query stats are worker-confined; snapshotting them here is what
		// makes Runtime.QueryStats race-free. StateBytes is computed at the
		// same consistent point (it serialises the replica's live state).
		for _, q := range s.queriesByName(c.name) {
			res.stats = q.Stats()
			res.stats.StateBytes = q.StateBytes()
			res.found = true
		}
	case ctlCheckpoint:
		// The barrier: every event broadcast before this envelope has been
		// fully folded into this shard's state, nothing after it has been
		// touched. Encoding is the deep copy — the shard resumes mutating
		// its state the moment the ack is sent.
		res.states, _, res.err = s.sched.CaptureStates()
	case ctlRestore:
		for _, name := range sortedNames(c.restore) {
			if _, ok := s.sched.Query(name); !ok {
				continue // query not placed on this shard
			}
			disjoint := c.statsShard[name] == s.id
			for _, blob := range c.restore[name] {
				if err := s.sched.RestoreQueryState(name, blob, disjoint); err != nil {
					res.err = err
					break
				}
			}
			if res.err != nil {
				break
			}
		}
	}
	c.ack <- res
}

func sortedNames(m map[string][][]byte) []string {
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (s *shard) queriesByName(name string) []*engine.Query {
	// The scheduler owns the replicas; resolve through its registry.
	if q, ok := s.sched.Query(name); ok {
		return []*engine.Query{q}
	}
	return nil
}

// control enqueues a control envelope and waits for every shard's ack.
// Caller must hold r.mu.
//
//saql:ctlpath
func (r *Runtime) control(c *control) ([]ctlResult, error) {
	if r.closed.Load() {
		return nil, ErrClosed
	}
	c.ack = make(chan ctlResult, len(r.shards))
	select {
	case r.ingest <- envelope{ctl: c}:
	case <-r.quit:
		return nil, ErrClosed
	}
	results := make([]ctlResult, 0, len(r.shards))
	for range r.shards {
		results = append(results, <-c.ack)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].shard < results[j].shard })
	return results, nil
}

// ---------------------------------------------------------------------------
// Query management
// ---------------------------------------------------------------------------

// buildReplicas lays a query out across the shards: one home shard for
// pinned placements (pinnedHome, or round-robin when negative), a filtered
// replica per shard otherwise. The caller holds r.mu.
func (r *Runtime) buildReplicas(primary *engine.Query, clone func() (*engine.Query, error), pinnedHome int) ([]*engine.Query, error) {
	n := len(r.shards)
	placement := primary.Placement()
	replicas := make([]*engine.Query, n)
	owns := r.cfg.Owns
	if n == 1 && owns == nil {
		// Single shard owning the whole key space: every placement
		// degenerates to the serial engine.
		replicas[0] = primary
		return replicas, nil
	}
	switch placement {
	case engine.PlacePinned:
		if owns != nil && !owns(hashString(primary.Name)) {
			// Another cluster worker owns this query's home hash. The name
			// stays registered (control ops and stats keep a consistent
			// registry) but no replica folds state or raises alerts here.
			return replicas, nil
		}
		home := pinnedHome
		if home < 0 || home >= n {
			home = r.nextPin % n
			r.nextPin++
		}
		replicas[home] = primary
	case engine.PlaceByGroup, engine.PlaceByEvent:
		for i := 0; i < n; i++ {
			q := primary
			if i > 0 {
				var err error
				if q, err = clone(); err != nil {
					return nil, err
				}
			}
			own := composeOwner(ownerFilter(i, n), owns)
			if placement == engine.PlaceByGroup {
				q.SetGroupFilter(func(key string) bool { return own(hashString(key)) })
			} else {
				q.SetEventFilter(func(ev *event.Event) bool { return own(hashSubject(ev)) })
			}
			replicas[i] = q
		}
	}
	return replicas, nil
}

// composeOwner narrows a per-shard ownership predicate by the runtime's
// cluster-level key-range ownership, when configured.
func composeOwner(shard, owns func(uint32) bool) func(uint32) bool {
	if owns == nil {
		return shard
	}
	return func(h uint32) bool { return owns(h) && shard(h) }
}

// Add registers a compiled query across the shards. primary becomes one of
// the live replicas; clone compiles an identical fresh replica for each
// additional shard a distributed placement needs.
func (r *Runtime) Add(primary *engine.Query, clone func() (*engine.Query, error)) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := primary.Name
	if _, dup := r.queries[name]; dup {
		return fmt.Errorf("saql: duplicate query name %q", name)
	}
	replicas, err := r.buildReplicas(primary, clone, -1)
	if err != nil {
		return err
	}
	// The router's evaluation scheduler needs its own unfiltered replica:
	// shard replicas carry ownership filters and are worker-confined. A
	// single-shard runtime skips the pre-eval stage and pays for none.
	var evalQ *engine.Query
	if r.preEval {
		if evalQ, err = clone(); err != nil {
			return err
		}
	}

	c := &control{kind: ctlAdd, name: name, replicas: replicas, eval: evalQ}
	results, err := r.control(c)
	if err != nil {
		return err
	}
	for _, res := range results {
		if res.err != nil {
			// Roll the partial registration back so shards stay consistent.
			_, _ = r.control(&control{kind: ctlRemove, name: name})
			return res.err
		}
	}
	r.queries[name] = &queryInfo{name: name, placement: primary.Placement(), replicas: replicas, addedAt: c.offset}
	return nil
}

// Swap atomically replaces the query registered under primary.Name with
// primary, at one consistent point of the event stream on every shard. A
// pinned replacement keeps the old query's home shard, so the swap happens
// "in place" from the stream's point of view. When carry is set, each new
// replica adopts its predecessor's sliding-window state on that shard (the
// caller has verified engine.Query.CanCarryStateFrom; per-shard group
// ownership is deterministic, so carried state lands on the shard that owns
// it).
func (r *Runtime) Swap(primary *engine.Query, clone func() (*engine.Query, error), carry bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := primary.Name
	qi, ok := r.queries[name]
	if !ok {
		return fmt.Errorf("saql: unknown query %q", name)
	}
	pinnedHome := -1
	if qi.placement == engine.PlacePinned && primary.Placement() == engine.PlacePinned {
		for i, q := range qi.replicas {
			if q != nil {
				pinnedHome = i
			}
		}
	}
	replicas, err := r.buildReplicas(primary, clone, pinnedHome)
	if err != nil {
		return err
	}
	var evalQ *engine.Query
	if r.preEval {
		if evalQ, err = clone(); err != nil {
			return err
		}
	}

	c := &control{kind: ctlSwap, name: name, replicas: replicas, eval: evalQ, carry: carry}
	results, err := r.control(c)
	if err != nil {
		return err
	}
	for _, res := range results {
		if res.err != nil {
			// A shard failed to install its replacement (practically
			// unreachable: the old entry was just removed under the same
			// control). Retire the name everywhere so shards stay
			// consistent rather than half-swapped.
			_, _ = r.control(&control{kind: ctlRemove, name: name})
			delete(r.queries, name)
			return res.err
		}
	}
	// The replacement's counters start fresh, exactly like a serial
	// remove+add, so events-offered anchors at the swap point.
	r.queries[name] = &queryInfo{name: name, placement: primary.Placement(), replicas: replicas, addedAt: c.offset}
	return nil
}

// Pause marks a query paused or active on every shard, at one consistent
// point of the stream, reporting whether the name was found.
func (r *Runtime) Pause(name string, paused bool) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.queries[name]; !ok {
		return false, nil
	}
	results, err := r.control(&control{kind: ctlPause, name: name, paused: paused})
	if err != nil {
		return false, err
	}
	for _, res := range results {
		if res.found {
			return true, nil
		}
	}
	return false, nil
}

// Remove unregisters a query from every shard it is placed on.
func (r *Runtime) Remove(name string) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.queries[name]; !ok {
		return false, nil
	}
	results, err := r.control(&control{kind: ctlRemove, name: name})
	if err != nil {
		return false, err
	}
	delete(r.queries, name)
	for _, res := range results {
		if res.removed {
			return true, nil
		}
	}
	return false, nil
}

// Placement reports where a registered query runs.
func (r *Runtime) Placement(name string) (engine.Placement, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	qi, ok := r.queries[name]
	if !ok {
		return 0, false
	}
	return qi.placement, true
}

// QueryStats aggregates a query's runtime counters across its replicas.
// Windows closed aggregates by max (replicas observe identical window
// cadence); disjoint counters (hits, matches, alerts) sum. Under partitioned
// routing no replica is offered every event, so events-offered is derived
// from the router's stream offsets (events routed while the query was
// registered — pause periods included) rather than any replica's counter. It
// keeps working after Close (counters freeze at their final values).
func (r *Runtime) QueryStats(name string) (engine.QueryStats, bool) {
	r.mu.Lock()
	qi, ok := r.queries[name]
	if !ok {
		r.mu.Unlock()
		return engine.QueryStats{}, false
	}
	c := &control{kind: ctlStats, name: name}
	results, err := r.control(c)
	r.mu.Unlock()
	offset := c.offset
	if err != nil {
		// Runtime closed: once the drain finishes the workers are gone,
		// so the worker-confined replicas (and the routing goroutine's
		// final offset) can be read directly.
		<-r.done
		offset = r.cfg.BaseOffset + r.routed
		results = results[:0]
		for i, q := range qi.replicas {
			if q != nil {
				st := q.Stats()
				st.StateBytes = q.StateBytes()
				results = append(results, ctlResult{shard: i, stats: st, found: true})
			}
		}
	}
	var out engine.QueryStats
	found := false
	for _, res := range results {
		if !res.found {
			continue
		}
		found = true
		s := res.stats
		if s.Events > out.Events {
			out.Events = s.Events
		}
		if s.WindowsClosed > out.WindowsClosed {
			out.WindowsClosed = s.WindowsClosed
		}
		out.PatternHits += s.PatternHits
		out.Matches += s.Matches
		out.Alerts += s.Alerts
		out.Suppressed += s.Suppressed
		out.EvalErrors += s.EvalErrors
		out.StateBytes += s.StateBytes
	}
	if r.part != nil && found {
		out.Events = offset - qi.addedAt
	}
	return out, found
}

// Flush closes all open windows on every shard at a consistent point of the
// stream (after everything submitted before the call). The resulting alerts
// are published to subscribers and returned in shard order.
func (r *Runtime) Flush() ([]*engine.Alert, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	results, err := r.control(&control{kind: ctlFlush})
	if err != nil {
		return nil, err
	}
	var alerts []*engine.Alert
	for _, res := range results {
		alerts = append(alerts, res.alerts...)
	}
	return alerts, nil
}

// SchedStats reports the scheduler counters. Pattern evaluation and
// stream-copy work happens exactly once per event in the router's shared
// evaluation stage, so those counters come straight from the evaluation
// scheduler — they reflect total work performed, independent of the shard
// count. Alerts are raised on the shards (disjointly, by state ownership)
// and summed.
func (r *Runtime) SchedStats() scheduler.Stats {
	if !r.preEval {
		// Single shard, no shared-evaluation stage: the one shard's
		// scheduler performed (and counted) all the work itself.
		var out scheduler.Stats
		for _, s := range r.shards {
			st := s.sched.Stats()
			out.Events += st.Events
			out.StreamCopies += st.StreamCopies
			out.NaiveCopies += st.NaiveCopies
			out.PatternEvals += st.PatternEvals
			out.NaivePatternEvals += st.NaivePatternEvals
			out.Alerts += st.Alerts
		}
		return out
	}
	out := r.evalSched.Stats()
	for _, s := range r.shards {
		out.Alerts += s.sched.Stats().Alerts
	}
	return out
}

// Groups reports the master–dependent grouping of the router's evaluation
// scheduler, which holds an unfiltered replica of every registered query —
// the same grouping a serial engine would compute. A single-shard runtime
// has no evaluation scheduler; its one shard holds every query.
func (r *Runtime) Groups() map[string][]string {
	if !r.preEval {
		return r.shards[0].sched.Groups()
	}
	return r.evalSched.Groups()
}

// GroupCount reports the evaluation scheduler's group count (the single
// shard's on a one-shard runtime).
func (r *Runtime) GroupCount() int {
	if !r.preEval {
		return r.shards[0].sched.GroupCount()
	}
	return r.evalSched.GroupCount()
}

// ---------------------------------------------------------------------------
// Shutdown
// ---------------------------------------------------------------------------

// Close drains the queue, flushes every shard (publishing final alerts to
// subscribers), closes all subscriptions, and waits for the workers to
// exit. Safe to call more than once; later calls wait for the first.
func (r *Runtime) Close() {
	r.closeOnce.Do(func() {
		r.closed.Store(true)
		r.mu.Lock() // wait out any in-flight control operation
		close(r.quit)
		r.mu.Unlock()
		<-r.routerDone
		// Barrier: after this, no Submit is mid-enqueue and every later
		// Submit observes the closed flag, so the queue can no longer
		// grow and the drain below sees every accepted event.
		r.submitMu.Lock()
		r.submitMu.Unlock() //nolint:staticcheck // barrier, not critical section
		for {
			select {
			case env := <-r.ingest:
				// route, not broadcast: drained events still need their
				// hits computed (the router has already exited).
				r.route(env)
				continue
			default:
			}
			break
		}
		if r.part != nil {
			// Deliver whatever the drain (or the router, pre-quit) left
			// buffered before the channels close.
			r.part.flushAll()
		}
		for _, s := range r.shards {
			close(s.in)
		}
		r.workersDone.Wait()
		r.cfg.Fan.Close()
		close(r.done)
	})
	<-r.done
}

// ---------------------------------------------------------------------------
// Ownership hashing
// ---------------------------------------------------------------------------

// ownerFilter returns a predicate reporting whether a hash belongs to shard
// i of n.
func ownerFilter(i, n int) func(uint32) bool {
	return func(h uint32) bool { return int(h%uint32(n)) == i }
}

// HashKey exposes the ownership hash (32-bit FNV-1a) of a group-by key or
// query name — the value Config.Owns predicates observe for by-group and
// pinned placements. The distributed layer splits this hash space into
// worker key ranges.
func HashKey(s string) uint32 { return hashString(s) }

// HashEventKey exposes the ownership hash of an event's subject entity —
// the value Config.Owns predicates observe for by-event placements.
func HashEventKey(ev *event.Event) uint32 { return hashSubject(ev) }

// hashString is 32-bit FNV-1a.
func hashString(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// hashSubject hashes the subject entity identity without allocating.
func hashSubject(ev *event.Event) uint32 {
	h := hashString(ev.Subject.ExeName)
	pid := uint32(ev.Subject.PID)
	h ^= pid
	h *= 16777619
	return h
}
