package runtime

// Ownership-routing property battery: for random event streams and shard
// counts 1/2/4/8, every event must reach exactly the shards the placement
// rules say own it — no over-delivery (the point of partitioned routing) and
// no under-delivery (the correctness bar). The reference owner sets are
// computed independently from the placement rules and the exported ownership
// hashes; the runtime's actual deliveries are captured with the testObserve
// hook, which sees every routed entry exactly as a shard worker processes it.

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"saql/internal/engine"
	"saql/internal/event"
	"saql/internal/scheduler"
)

// routingQueries covers every placement mode plus the slow-path broadcast
// fallback. Write events hit the first four (by-group fast-key, by-event,
// two pinned); read events hit only the slow-key by-group query, whose
// group-by expression defeats the fast-key compiler.
var routingQueries = []struct{ name, src string }{
	{"grp-fast", `proc p write ip i as e #time(1 h)
state ss { amt := sum(e.amount) } group by p
alert ss.amt > 1000000000000
return p, ss.amt`},
	{"by-event", `proc p write ip i as e
alert e.amount > 1000000000000
return p`},
	{"pinned-global", `proc p write ip i as e #time(1 h)
state ss { total := sum(e.amount) }
alert ss.total > 1000000000000000
return ss.total`},
	{"pinned-distinct", `proc p write ip i as e
alert e.amount > 1000000000000
return distinct p`},
	{"grp-slow", `proc p read file f as e #time(1 h)
state ss { amt := sum(e.amount) } group by p.pid + 0
alert ss.amt > 1000000000000
return ss.amt`},
}

// obsRecord is what the hook captured for one event (keyed by its HitSet,
// which the evaluation stage allocates once per hit event).
type obsRecord struct {
	ev       *event.Event
	deliver  []int // shards that received the event itself
	touch    []int // shards that received a touch-only entry
	touchAt  []time.Time
	deliverN map[int]int // delivery multiplicity per shard
}

type observer struct {
	mu   sync.Mutex
	recs map[*scheduler.HitSet]*obsRecord
}

func (o *observer) hook(shard int, e *routedEntry) {
	o.mu.Lock()
	defer o.mu.Unlock()
	rec := o.recs[e.hits]
	if rec == nil {
		rec = &obsRecord{deliverN: map[int]int{}}
		o.recs[e.hits] = rec
	}
	if e.ev != nil {
		rec.ev = e.ev
		rec.deliver = append(rec.deliver, shard)
		rec.deliverN[shard]++
	} else {
		rec.touch = append(rec.touch, shard)
		rec.touchAt = append(rec.touchAt, e.at)
	}
}

func compileRouting(t *testing.T, name, src string) (*engine.Query, func() (*engine.Query, error)) {
	t.Helper()
	q, err := engine.Compile(name, src, engine.CompileOptions{})
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return q, func() (*engine.Query, error) { return engine.Compile(name, src, engine.CompileOptions{}) }
}

// routingWorkload builds a random stream: mostly write events (hit the four
// write queries), some read events (hit only the slow-path query), and some
// connect events that hit nothing at all.
func routingWorkload(rng *rand.Rand, n int) []*event.Event {
	base := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	exes := []string{"nginx", "sshd", "osql.exe", "cmd.exe", "postgres", "redis-server", "curl"}
	evs := make([]*event.Event, 0, n)
	for i := 0; i < n; i++ {
		ev := &event.Event{
			Time:    base.Add(time.Duration(i) * 37 * time.Millisecond), // monotone
			AgentID: "host-1",
			Subject: event.Entity{
				Type:    event.EntityProcess,
				ExeName: exes[rng.Intn(len(exes))],
				PID:     int32(100 + rng.Intn(40)),
			},
			Amount: float64(rng.Intn(5000)),
		}
		switch rng.Intn(10) {
		case 0, 1: // read file: slow-path query only
			ev.Op = event.OpRead
			ev.Object = event.Entity{Type: event.EntityFile, Path: "/var/log/syslog"}
		case 2: // connect: matches no registered query
			ev.Op = event.OpConnect
			ev.Object = event.Entity{Type: event.EntityNetConn, DstIP: "10.0.0.9", DstPort: 443, Protocol: "tcp"}
		default: // write ip: the four write queries
			ev.Op = event.OpWrite
			ev.Object = event.Entity{Type: event.EntityNetConn, DstIP: "10.0.0.9", DstPort: 443, Protocol: "tcp"}
		}
		evs = append(evs, ev)
	}
	return evs
}

// expectedMasks computes the reference owner sets for one event from the
// placement rules alone: which shards must receive the event, and which must
// receive a touch-only entry.
func expectedMasks(ev *event.Event, n int, homes map[string]int) (deliver, touch uint64) {
	all := uint64(1)<<n - 1
	switch ev.Op {
	case event.OpWrite:
		// grp-fast: owner of the subject's group key.
		deliver |= 1 << (HashKey(ev.Subject.ExeName) % uint32(n))
		// by-event: owner of the subject entity hash.
		deliver |= 1 << (HashEventKey(ev) % uint32(n))
		// pinned queries: their home shards.
		deliver |= 1 << homes["pinned-global"]
		deliver |= 1 << homes["pinned-distinct"]
		// A by-group query hit, so all non-delivered shards must be touched.
		touch = all &^ deliver
	case event.OpRead:
		// grp-slow has no fast key extractor: broadcast fallback.
		deliver = all
	}
	return deliver, touch
}

func maskOf(shards []int) uint64 {
	var m uint64
	for _, s := range shards {
		m |= 1 << s
	}
	return m
}

func runRoutingCase(t *testing.T, seed int64, shards int) {
	rng := rand.New(rand.NewSource(seed))
	evs := routingWorkload(rng, 240+rng.Intn(120))

	obs := &observer{recs: map[*scheduler.HitSet]*obsRecord{}}
	r := Start(Config{Shards: shards, Sharing: true})
	r.testObserve = obs.hook
	defer r.Close()

	homes := map[string]int{}
	for _, qs := range routingQueries {
		primary, clone := compileRouting(t, qs.name, qs.src)
		if err := r.Add(primary, clone); err != nil {
			t.Fatalf("seed %d shards %d: add %s: %v", seed, shards, qs.name, err)
		}
		if primary.Placement() == engine.PlacePinned {
			qi := r.queries[qs.name]
			for i, q := range qi.replicas {
				if q != nil {
					homes[qs.name] = i
				}
			}
		}
	}
	// Sanity: the slow-path query really has no fast key extractor.
	if slow := r.queries["grp-slow"].replicas; true {
		for _, q := range slow {
			if q == nil {
				continue
			}
			if _, ok := q.HitGroupKeys(nil, evs[0], []int{0}); ok {
				t.Fatalf("grp-slow unexpectedly compiled a fast group key; the broadcast-fallback path is untested")
			}
			break
		}
	}

	// Random submission batch sizes keep the per-shard ring buffers in
	// assorted fill states across flushes.
	for i := 0; i < len(evs); {
		j := i + 1 + rng.Intn(16)
		if j > len(evs) {
			j = len(evs)
		}
		if err := r.SubmitBatch(evs[i:j]); err != nil {
			t.Fatalf("seed %d shards %d: submit: %v", seed, shards, err)
		}
		i = j
	}
	total := int64(len(evs))
	for _, qs := range routingQueries {
		st, ok := r.QueryStats(qs.name)
		if !ok {
			t.Fatalf("seed %d shards %d: %s: stats missing", seed, shards, qs.name)
		}
		if st.Events != total {
			t.Errorf("seed %d shards %d: %s: events offered = %d, want %d", seed, shards, qs.name, st.Events, total)
		}
		if st.EvalErrors != 0 {
			t.Errorf("seed %d shards %d: %s: %d eval errors", seed, shards, qs.name, st.EvalErrors)
		}
	}
	r.Close()

	if shards == 1 {
		// Single shard runs the unpartitioned path: nothing observed, and the
		// stats assertions above already pin full delivery to the one shard.
		if len(obs.recs) != 0 {
			t.Fatalf("seed %d: 1-shard runtime produced routed batches", seed)
		}
		return
	}

	// Index observations by event; an event whose HitSet was never buffered
	// anywhere (no-hit events) must simply be absent.
	byEvent := map[*event.Event]*obsRecord{}
	for _, rec := range obs.recs {
		if rec.ev != nil {
			byEvent[rec.ev] = rec
		}
	}
	for _, ev := range evs {
		wantDeliver, wantTouch := expectedMasks(ev, shards, homes)
		rec := byEvent[ev]
		if rec == nil {
			if wantDeliver != 0 {
				t.Fatalf("seed %d shards %d: event %v op=%v delivered nowhere, want shard mask %b", seed, shards, ev.Time, ev.Op, wantDeliver)
			}
			continue
		}
		if got := maskOf(rec.deliver); got != wantDeliver {
			t.Fatalf("seed %d shards %d: event %v op=%v delivered to mask %b, want %b", seed, shards, ev.Time, ev.Op, got, wantDeliver)
		}
		if got := maskOf(rec.touch); got != wantTouch {
			t.Fatalf("seed %d shards %d: event %v op=%v touched mask %b, want %b", seed, shards, ev.Time, ev.Op, got, wantTouch)
		}
		for shard, cnt := range rec.deliverN {
			if cnt != 1 {
				t.Fatalf("seed %d shards %d: event %v delivered %d times to shard %d", seed, shards, ev.Time, cnt, shard)
			}
		}
		for i := range rec.touchAt {
			if !rec.touchAt[i].Equal(ev.Time) {
				t.Fatalf("seed %d shards %d: touch entry stamped %v, want event time %v", seed, shards, rec.touchAt[i], ev.Time)
			}
		}
		if wantDeliver != 0 && bits.OnesCount64(wantDeliver|wantTouch) > shards {
			t.Fatalf("seed %d shards %d: mask wider than shard count", seed, shards)
		}
	}

	// Touch entries must never outnumber shards-1 per event, and total
	// delivery volume must be strictly below broadcast for mixed workloads
	// (the point of the exercise).
	var delivered, broadcast int
	for _, ev := range evs {
		wantDeliver, _ := expectedMasks(ev, shards, homes)
		if wantDeliver != 0 {
			broadcast += shards
			delivered += bits.OnesCount64(wantDeliver)
		}
	}
	// At 2 shards the two pinned homes alone already span every shard, so the
	// reduction only has room to appear at wider configurations.
	if shards >= 4 && delivered >= broadcast {
		t.Fatalf("seed %d shards %d: partitioned routing delivered %d event copies, broadcast would be %d", seed, shards, delivered, broadcast)
	}
}

// TestRoutingOwnershipProperty drives the battery through testing/quick:
// each generated seed produces a fresh random workload, checked at every
// shard width. The failing seed is part of the error value quick reports.
func TestRoutingOwnershipProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 8}
	if testing.Short() {
		cfg.MaxCount = 2
	}
	property := func(seed int64) bool {
		for _, shards := range []int{1, 2, 4, 8} {
			ok := t.Run(fmt.Sprintf("seed=%d/shards=%d", seed, shards), func(t *testing.T) {
				runRoutingCase(t, seed, shards)
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}
