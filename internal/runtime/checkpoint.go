package runtime

// Checkpoint/restore coordination. A checkpoint is a control envelope riding
// the ingest queue: it reaches every shard in the same total order as
// events, pause, and hot-swap, so the states the shards encode are one
// consistent cut of the stream — every event before the barrier fully
// folded, nothing after it touched — and the offset the router stamps on the
// barrier indexes exactly that cut in the journal. Restore is the mirrored
// control op, applied to a freshly started runtime before any event flows:
// each shard folds the blobs through its replicas' own ownership filters, so
// one logical state re-splits across whatever shard count the restored
// engine runs with.

// CheckpointState is one consistent cut of the runtime's query state.
type CheckpointState struct {
	// Offset is the stream position of the barrier: the number of journaled
	// events fully processed by every shard at the cut.
	Offset int64
	// States holds each query's encoded state blobs, one per shard that
	// held a replica, in shard order.
	States map[string][][]byte
}

// Checkpoint captures a consistent snapshot of every registered query's
// state at a control-queue barrier. It serialises against other control
// operations (the registry cannot change between the barrier and the
// caller's use of the result).
func (r *Runtime) Checkpoint() (*CheckpointState, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := &control{kind: ctlCheckpoint}
	results, err := r.control(c)
	if err != nil {
		return nil, err
	}
	out := &CheckpointState{Offset: c.offset, States: map[string][][]byte{}}
	for _, res := range results { // already sorted by shard
		if res.err != nil {
			return nil, res.err
		}
		for name, blob := range res.states {
			out.States[name] = append(out.States[name], blob)
		}
	}
	return out, nil
}

// RestoreStates folds captured state blobs into the registered queries, at a
// control-queue barrier. Every blob is offered to every shard; group-keyed
// state lands only where the replica's ownership filter accepts it, and each
// query's single-owner state (counters, distinct table, partial matches) is
// granted to its lowest-numbered shard holding a replica.
func (r *Runtime) RestoreStates(states map[string][][]byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	statsShard := make(map[string]int, len(states))
	for name := range states {
		statsShard[name] = -1
		if qi, ok := r.queries[name]; ok {
			for i, q := range qi.replicas {
				if q != nil {
					statsShard[name] = i
					break
				}
			}
		}
	}
	results, err := r.control(&control{kind: ctlRestore, restore: states, statsShard: statsShard})
	if err != nil {
		return err
	}
	for _, res := range results {
		if res.err != nil {
			return res.err
		}
	}
	return nil
}
