package runtime

// Partitioned envelope routing. The broadcast router shipped every
// (event, hit-set) envelope to every shard; this file implements its
// replacement: each event is delivered only to the shards that own state for
// it, derived from the same 32-bit FNV ownership hashing that checkpoint
// re-split and the distributed cluster's Config.Owns already define —
//
//   - pinned queries: the home shard holding the query;
//   - by-event queries: hash of the event's subject entity;
//   - by-group queries: hash of each hit pattern's group-by key, extracted
//     with the engine's compiled fast-key path (queries whose keys need full
//     expression evaluation fall back to delivery on every shard, so key
//     evaluation errors keep surfacing through the replicas);
//
// and instead of a channel send per event, entries accumulate into per-shard
// ring buffers (reusable slabs recycled through a sync.Pool) flushed on a
// size threshold, when the ingest queue goes idle, and always before a
// control envelope, so control operations — including checkpoint barriers —
// still cut the stream at one consistent point even though shards now see
// disjoint event subsets.
//
// Two lightweight mechanisms replace what broadcast provided implicitly:
//
//   - Touch entries: a stateful by-group query's replicas live on every
//     shard, and window existence/close cadence must stay identical on all
//     of them (alert history backfill and checkpoint re-split depend on it).
//     Shards holding replicas of a hit query but not owning the event's
//     group receive a touch-only entry — time plus shared hit set, no fold.
//
//   - Watermark stamps: every entry carries the stream watermark the router
//     observed before its event, applied to the target query before folding;
//     every flushed batch carries the router's running watermark, applied to
//     all active queries at the batch boundary (AdvanceAll). Together these
//     reproduce the serial engine's per-query watermark at every fold point
//     and close windows promptly on shards that received no events.
//
// For streams with out-of-order timestamps, one deliberate divergence from
// serial remains: a query resumed from pause advances to the global stream
// watermark, where the serial engine's watermark would exclude events offered
// while it was paused. In-order streams (and all conformance workloads)
// behave identically; the trade buys O(owners) instead of O(shards) delivery.

import (
	"math/bits"
	"sync"
	"time"

	"saql/internal/engine"
	"saql/internal/event"
	"saql/internal/scheduler"
)

// flushThreshold caps how many entries a per-shard buffer accumulates before
// it is flushed regardless of queue pressure, bounding both batch latency
// and buffer memory under sustained load.
const flushThreshold = 256

// maxPartitionedShards bounds the shard bitmask width. Runtimes wider than
// 64 shards keep the broadcast path (they are far past the point where
// per-event mask routing is the bottleneck).
const maxPartitionedShards = 64

// routedEntry is one buffered delivery for one shard: a full (event,
// hit-set) delivery when ev is non-nil, a touch-only entry otherwise. wm is
// the stream watermark the router had observed before this event.
type routedEntry struct {
	ev    *event.Event
	at    time.Time // event time (touch-only entries)
	hits  *scheduler.HitSet
	wm    time.Time
	hasWM bool
}

// shardBatch is one flushed slab of routed entries. wm is the router's
// running stream watermark at flush time; the receiving shard applies it to
// every active query after the entries (scheduler.AdvanceAll), which is the
// partitioned replacement for "every shard sees every event's time".
type shardBatch struct {
	entries []routedEntry
	wm      time.Time
	hasWM   bool
}

// routeInfo is the router's per-query placement record, maintained by the
// routing goroutine as control envelopes pass through it — the same stream
// point at which the evaluation scheduler's layout changes, so the slot
// cache below can never pair a stale placement with a fresh hit set.
type routeInfo struct {
	placement engine.Placement
	home      int // pinned home shard; -1 when no local replica exists
	evalQ     *engine.Query
}

// partitioner holds the routing goroutine's confined state. Only the router
// (and Close's final drain, which runs after the router exits) touches it.
type partitioner struct {
	r    *Runtime
	n    int
	owns func(uint32) bool

	routes   map[string]*routeInfo
	slots    []*routeInfo // slot index -> routeInfo, cached per layout
	slotsFor *scheduler.Layout

	bufs   []*shardBatch
	lastWM []time.Time // watermark last flushed to each shard

	streamWM time.Time
	hasWM    bool

	keys []string // HitGroupKeys scratch
	pool sync.Pool
}

func newPartitioner(r *Runtime) *partitioner {
	p := &partitioner{
		r:      r,
		n:      len(r.shards),
		owns:   r.cfg.Owns,
		routes: map[string]*routeInfo{},
		bufs:   make([]*shardBatch, len(r.shards)),
		lastWM: make([]time.Time, len(r.shards)),
	}
	p.pool.New = func() any {
		return &shardBatch{entries: make([]routedEntry, 0, flushThreshold)}
	}
	for i := range p.bufs {
		p.bufs[i] = p.get()
	}
	return p
}

//saql:hotpath
func (p *partitioner) get() *shardBatch { return p.pool.Get().(*shardBatch) }

// put recycles a processed batch. Called by shard workers, hence the pool:
// entries are cleared so the slab retains no event or hit-set references.
//
//saql:hotpath
func (p *partitioner) put(b *shardBatch) {
	clear(b.entries)
	b.entries = b.entries[:0]
	b.wm, b.hasWM = time.Time{}, false
	p.pool.Put(b)
}

// applyCtl keeps the routing table in lockstep with the evaluation
// scheduler: both mutate at the moment the control envelope passes through
// the routing goroutine, before any later event.
func (p *partitioner) applyCtl(c *control) {
	switch c.kind {
	case ctlAdd, ctlSwap:
		if c.eval == nil {
			delete(p.routes, c.name)
			break
		}
		ri := &routeInfo{placement: c.eval.Placement(), home: -1, evalQ: c.eval}
		if ri.placement == engine.PlacePinned {
			for i, q := range c.replicas {
				if q != nil {
					ri.home = i
				}
			}
		}
		p.routes[c.name] = ri
	case ctlRemove:
		delete(p.routes, c.name)
	}
	p.slotsFor = nil // registry changed: re-resolve against the next layout
}

// resolveSlots refreshes the slot -> routeInfo cache for a hit-set layout.
// Layouts change only on registry mutations, so this is never per-event work.
func (p *partitioner) resolveSlots(layout *scheduler.Layout) {
	if p.slotsFor == layout {
		return
	}
	p.slots = make([]*routeInfo, len(layout.Slots))
	for name, slot := range layout.Slots {
		p.slots[slot] = p.routes[name]
	}
	p.slotsFor = layout
}

//saql:hotpath
func (p *partitioner) allMask() uint64 {
	if p.n == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << p.n) - 1
}

// routeEvent buffers one evaluated event into the per-shard slabs it needs
// to reach. Events that matched nothing buffer nowhere: the next flush's
// batch watermark is all any shard needs from them.
//
//saql:hotpath
func (p *partitioner) routeEvent(ev *event.Event, hs *scheduler.HitSet) {
	wm, hasWM := p.streamWM, p.hasWM
	if !p.hasWM || ev.Time.After(p.streamWM) {
		p.streamWM = ev.Time
		p.hasWM = true
	}
	if hs == nil {
		return
	}
	p.resolveSlots(hs.Layout)
	all := p.allMask()
	var deliver uint64
	groupTouch := false
	for slot, h := range hs.Hits {
		if len(h) == 0 {
			continue
		}
		ri := p.slots[slot]
		if ri == nil {
			continue
		}
		switch ri.placement {
		case engine.PlacePinned:
			if ri.home >= 0 {
				deliver |= uint64(1) << ri.home
			}
		case engine.PlaceByEvent:
			h32 := hashSubject(ev)
			if p.owns == nil || p.owns(h32) {
				deliver |= uint64(1) << (h32 % uint32(p.n))
			}
		case engine.PlaceByGroup:
			// Replicas live on every shard: non-owners still need a touch so
			// their window cadence matches, even when the cluster-level Owns
			// filter keeps every local shard from folding the group.
			groupTouch = true
			keys, ok := ri.evalQ.HitGroupKeys(p.keys[:0], ev, h)
			if !ok {
				// No fast key extractor: deliver everywhere so each replica
				// evaluates (and error-reports) the key itself.
				deliver = all
				continue
			}
			for _, k := range keys {
				h32 := hashString(k)
				if p.owns == nil || p.owns(h32) {
					deliver |= uint64(1) << (h32 % uint32(p.n))
				}
			}
			p.keys = keys[:0]
		}
	}
	var touch uint64
	if groupTouch {
		touch = all &^ deliver
	}
	rem := deliver | touch
	for rem != 0 {
		i := bits.TrailingZeros64(rem)
		rem &^= uint64(1) << i
		e := routedEntry{hits: hs, wm: wm, hasWM: hasWM}
		if deliver&(uint64(1)<<i) != 0 {
			e.ev = ev
		} else {
			e.at = ev.Time
		}
		b := p.bufs[i]
		b.entries = append(b.entries, e)
		if len(b.entries) >= flushThreshold {
			p.flushShard(i)
		}
	}
}

// flushShard seals shard i's buffer with the running stream watermark and
// hands it to the shard's channel (one send per batch, not per event).
//
//saql:ctlpath
//saql:hotpath
func (p *partitioner) flushShard(i int) {
	b := p.bufs[i]
	b.wm, b.hasWM = p.streamWM, p.hasWM
	p.bufs[i] = p.get()
	p.lastWM[i] = p.streamWM
	p.r.shards[i].in <- envelope{batch: b}
}

// flushAll drains every per-shard buffer, including watermark-only batches
// for shards whose buffers are empty but whose queries must still observe
// that time has passed (windows close promptly even on shards owning none of
// the recent events). Called when the ingest queue goes idle and before
// every control envelope — the latter is what keeps checkpoint barriers a
// consistent cut: everything routed before the barrier is in a shard channel
// before the barrier is, and channels are FIFO.
//
//saql:hotpath
func (p *partitioner) flushAll() {
	for i := range p.bufs {
		if len(p.bufs[i].entries) > 0 || (p.hasWM && p.streamWM.After(p.lastWM[i])) {
			p.flushShard(i)
		}
	}
}

// processBatch applies one routed batch to a shard: deliveries fold, touch
// entries open windows, and the batch watermark advances every active query.
// Runs on the shard's worker goroutine.
//
//saql:hotpath
func (r *Runtime) processBatch(s *shard, b *shardBatch) {
	for i := range b.entries {
		e := &b.entries[i]
		if r.testObserve != nil {
			r.testObserve(s.id, e)
		}
		var alerts []*engine.Alert
		if e.ev != nil {
			alerts = s.sched.IngestRouted(e.ev, e.hits, e.wm, e.hasWM)
		} else {
			alerts = s.sched.TouchRouted(e.at, e.hits, e.wm, e.hasWM)
		}
		if len(alerts) > 0 {
			r.cfg.Fan.Publish(alerts)
		}
	}
	if b.hasWM {
		if alerts := s.sched.AdvanceAll(b.wm); len(alerts) > 0 {
			r.cfg.Fan.Publish(alerts)
		}
	}
	r.part.put(b)
}
