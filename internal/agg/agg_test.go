package agg

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"saql/internal/value"
)

func mustNew(t *testing.T, name string, params ...value.Value) Aggregator {
	t.Helper()
	a, err := New(name, params)
	if err != nil {
		t.Fatalf("New(%s): %v", name, err)
	}
	return a
}

func addFloats(t *testing.T, a Aggregator, vals ...float64) {
	t.Helper()
	for _, v := range vals {
		if err := a.Add(value.Float(v)); err != nil {
			t.Fatal(err)
		}
	}
}

func resultFloat(t *testing.T, a Aggregator) float64 {
	t.Helper()
	f, ok := a.Result().AsFloat()
	if !ok {
		t.Fatalf("result %v is not numeric", a.Result())
	}
	return f
}

func TestAvg(t *testing.T) {
	a := mustNew(t, "avg")
	addFloats(t, a, 10, 20, 30)
	if got := resultFloat(t, a); got != 20 {
		t.Errorf("avg = %v, want 20", got)
	}
	a.Reset()
	if got := resultFloat(t, a); got != 0 {
		t.Errorf("avg after reset = %v, want 0", got)
	}
}

func TestSumAndCount(t *testing.T) {
	s := mustNew(t, "sum")
	addFloats(t, s, 1.5, 2.5)
	if got := resultFloat(t, s); got != 4 {
		t.Errorf("sum = %v", got)
	}
	c := mustNew(t, "count")
	// count accepts any value kind.
	_ = c.Add(value.String("x"))
	_ = c.Add(value.Int(1))
	_ = c.Add(value.Null)
	if got := c.Result().IntVal(); got != 3 {
		t.Errorf("count = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	mn := mustNew(t, "min")
	mx := mustNew(t, "max")
	addFloats(t, mn, 5, -2, 9)
	addFloats(t, mx, 5, -2, 9)
	if got := resultFloat(t, mn); got != -2 {
		t.Errorf("min = %v", got)
	}
	if got := resultFloat(t, mx); got != 9 {
		t.Errorf("max = %v", got)
	}
	empty := mustNew(t, "min")
	if !empty.Result().IsNull() {
		t.Error("min of empty input should be null")
	}
}

func TestSetAndDistinct(t *testing.T) {
	s := mustNew(t, "set")
	for _, v := range []string{"a", "b", "a", "c"} {
		_ = s.Add(value.String(v))
	}
	res := s.Result()
	if res.SetLen() != 3 || !res.SetContains("b") {
		t.Errorf("set = %v", res)
	}
	d := mustNew(t, "distinct")
	for _, v := range []string{"a", "b", "a"} {
		_ = d.Add(value.String(v))
	}
	if got := d.Result().IntVal(); got != 2 {
		t.Errorf("distinct = %v", got)
	}
}

func TestStddevVariance(t *testing.T) {
	sd := mustNew(t, "stddev")
	addFloats(t, sd, 2, 4, 4, 4, 5, 5, 7, 9)
	// Sample stddev of this classic dataset is ~2.138.
	if got := resultFloat(t, sd); math.Abs(got-2.138089935299395) > 1e-9 {
		t.Errorf("stddev = %v", got)
	}
	va := mustNew(t, "variance")
	addFloats(t, va, 2, 4, 4, 4, 5, 5, 7, 9)
	if got := resultFloat(t, va); math.Abs(got-4.571428571428571) > 1e-9 {
		t.Errorf("variance = %v", got)
	}
	one := mustNew(t, "stddev")
	addFloats(t, one, 5)
	if got := resultFloat(t, one); got != 0 {
		t.Errorf("stddev of single value = %v, want 0", got)
	}
}

func TestMedianAndPercentile(t *testing.T) {
	m := mustNew(t, "median")
	addFloats(t, m, 9, 1, 5)
	if got := resultFloat(t, m); got != 5 {
		t.Errorf("median = %v", got)
	}
	p95 := mustNew(t, "percentile", value.Int(95))
	for i := 1; i <= 100; i++ {
		addFloats(t, p95, float64(i))
	}
	if got := resultFloat(t, p95); math.Abs(got-95.05) > 0.01 {
		t.Errorf("p95 = %v", got)
	}
	if _, err := New("percentile", nil); err == nil {
		t.Error("percentile without parameter should fail")
	}
	if _, err := New("percentile", []value.Value{value.Int(200)}); err == nil {
		t.Error("percentile(200) should fail")
	}
}

func TestFirstLast(t *testing.T) {
	f := mustNew(t, "first")
	l := mustNew(t, "last")
	for _, v := range []string{"a", "b", "c"} {
		_ = f.Add(value.String(v))
		_ = l.Add(value.String(v))
	}
	if f.Result().Str() != "a" || l.Result().Str() != "c" {
		t.Errorf("first/last = %v/%v", f.Result(), l.Result())
	}
}

func TestNumericAggRejectsStrings(t *testing.T) {
	for _, name := range []string{"avg", "sum", "min", "max", "stddev", "variance", "median"} {
		a := mustNew(t, name)
		if err := a.Add(value.String("x")); err == nil {
			t.Errorf("%s should reject string input", name)
		}
	}
}

func TestRegistry(t *testing.T) {
	if !IsAggregator("avg") || IsAggregator("nope") {
		t.Error("IsAggregator misbehaving")
	}
	if _, err := New("nope", nil); err == nil {
		t.Error("unknown aggregator should fail")
	}
	if _, err := New("avg", []value.Value{value.Int(1)}); err == nil {
		t.Error("avg with parameters should fail")
	}
	names := Names()
	if !sort.StringsAreSorted(names) || len(names) < 10 {
		t.Errorf("Names() = %v", names)
	}
}

// Property: avg is always between min and max of the inputs.
func TestAvgBoundsProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		a := mustNewQuick("avg")
		mn := mustNewQuick("min")
		mx := mustNewQuick("max")
		for _, r := range raw {
			v := value.Float(float64(r))
			_ = a.Add(v)
			_ = mn.Add(v)
			_ = mx.Add(v)
		}
		av, _ := a.Result().AsFloat()
		lo, _ := mn.Result().AsFloat()
		hi, _ := mx.Result().AsFloat()
		return av >= lo-1e-9 && av <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: sum equals count times avg.
func TestSumAvgCountConsistency(t *testing.T) {
	f := func(raw []int16) bool {
		s := mustNewQuick("sum")
		a := mustNewQuick("avg")
		c := mustNewQuick("count")
		for _, r := range raw {
			v := value.Float(float64(r))
			_ = s.Add(v)
			_ = a.Add(v)
			_ = c.Add(v)
		}
		sv, _ := s.Result().AsFloat()
		av, _ := a.Result().AsFloat()
		cv := float64(c.Result().IntVal())
		return math.Abs(sv-av*cv) < 1e-6*(1+math.Abs(sv))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: set cardinality equals the number of distinct string inputs.
func TestSetCardinalityProperty(t *testing.T) {
	f := func(raw []string) bool {
		s := mustNewQuick("set")
		uniq := map[string]bool{}
		for _, r := range raw {
			_ = s.Add(value.String(r))
			uniq[value.String(r).String()] = true
		}
		return s.Result().SetLen() == len(uniq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mustNewQuick(name string) Aggregator {
	a, err := New(name, nil)
	if err != nil {
		panic(err)
	}
	return a
}
