package agg

// Checkpoint support: every aggregator can serialise its accumulator state
// into the wire format and restore it later, so open windows survive an
// engine restart byte-exactly. The codec is keyed by a one-byte tag per
// concrete aggregator type; the decoder validates the tag against the
// aggregator it is restoring into (recreated from the same FieldSpec), so a
// snapshot produced under a different state schema fails loudly instead of
// folding garbage.

import (
	"fmt"
	"sort"

	"saql/internal/wire"
)

// State tags, one per concrete aggregator type.
const (
	tagMean byte = iota + 1
	tagSum
	tagCount
	tagMinMax
	tagSet
	tagDistinct
	tagVariance
	tagPercentile
	tagFirstLast
)

// AppendState appends a's accumulator state to b.
func AppendState(b []byte, a Aggregator) ([]byte, error) {
	switch ag := a.(type) {
	case *meanAgg:
		b = append(b, tagMean)
		b = wire.AppendFloat64(b, ag.sum)
		b = wire.AppendVarint(b, int64(ag.n))
	case *sumAgg:
		b = append(b, tagSum)
		b = wire.AppendFloat64(b, ag.sum)
	case *countAgg:
		b = append(b, tagCount)
		b = wire.AppendVarint(b, ag.n)
	case *minMaxAgg:
		b = append(b, tagMinMax)
		b = wire.AppendFloat64(b, ag.cur)
		b = wire.AppendBool(b, ag.seen)
	case *setAgg:
		b = append(b, tagSet)
		b = appendMembers(b, ag.members)
	case *distinctAgg:
		b = append(b, tagDistinct)
		b = appendMembers(b, ag.set.members)
	case *varianceAgg:
		b = append(b, tagVariance)
		b = wire.AppendVarint(b, int64(ag.n))
		b = wire.AppendFloat64(b, ag.mean)
		b = wire.AppendFloat64(b, ag.m2)
	case *percentileAgg:
		b = append(b, tagPercentile)
		b = wire.AppendUvarint(b, uint64(len(ag.vals)))
		for _, v := range ag.vals {
			b = wire.AppendFloat64(b, v)
		}
	case *firstLastAgg:
		b = append(b, tagFirstLast)
		b = wire.AppendBool(b, ag.seen)
		b = wire.AppendValue(b, ag.val)
	default:
		return b, fmt.Errorf("agg: cannot snapshot aggregator type %T", a)
	}
	return b, nil
}

func appendMembers(b []byte, members map[string]struct{}) []byte {
	sorted := make([]string, 0, len(members))
	for m := range members {
		sorted = append(sorted, m)
	}
	sort.Strings(sorted)
	b = wire.AppendUvarint(b, uint64(len(sorted)))
	for _, m := range sorted {
		b = wire.AppendString(b, m)
	}
	return b
}

// ReadState restores a's accumulator state from r. a must be the same
// aggregator type that produced the state (recreated from the FieldSpec the
// snapshot was taken under).
func ReadState(r *wire.Reader, a Aggregator) error {
	tag := r.Byte()
	switch ag := a.(type) {
	case *meanAgg:
		if tag != tagMean {
			return tagErr("avg", tag)
		}
		ag.sum = r.Float64()
		ag.n = int(r.Varint())
	case *sumAgg:
		if tag != tagSum {
			return tagErr("sum", tag)
		}
		ag.sum = r.Float64()
	case *countAgg:
		if tag != tagCount {
			return tagErr("count", tag)
		}
		ag.n = r.Varint()
	case *minMaxAgg:
		if tag != tagMinMax {
			return tagErr("min/max", tag)
		}
		ag.cur = r.Float64()
		ag.seen = r.Bool()
	case *setAgg:
		if tag != tagSet {
			return tagErr("set", tag)
		}
		readMembers(r, ag.members)
	case *distinctAgg:
		if tag != tagDistinct {
			return tagErr("distinct", tag)
		}
		readMembers(r, ag.set.members)
	case *varianceAgg:
		if tag != tagVariance {
			return tagErr("stddev/variance", tag)
		}
		ag.n = int(r.Varint())
		ag.mean = r.Float64()
		ag.m2 = r.Float64()
	case *percentileAgg:
		if tag != tagPercentile {
			return tagErr("percentile/median", tag)
		}
		n := r.Count(8)
		ag.vals = ag.vals[:0]
		for i := 0; i < n && r.Err() == nil; i++ {
			ag.vals = append(ag.vals, r.Float64())
		}
	case *firstLastAgg:
		if tag != tagFirstLast {
			return tagErr("first/last", tag)
		}
		ag.seen = r.Bool()
		ag.val = r.ReadValue()
	default:
		return fmt.Errorf("agg: cannot restore aggregator type %T", a)
	}
	return r.Err()
}

func readMembers(r *wire.Reader, into map[string]struct{}) {
	n := r.Count(1)
	for i := 0; i < n && r.Err() == nil; i++ {
		into[r.String()] = struct{}{}
	}
}

func tagErr(want string, got byte) error {
	return fmt.Errorf("agg: state tag %d does not match %s aggregator", got, want)
}
