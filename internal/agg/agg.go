// Package agg implements the aggregation functions available inside SAQL
// state blocks: avg, sum, count, min, max, set, distinct (count), stddev,
// variance, median, percentile, first, and last. The state maintainer creates
// one aggregator per state field per group per window and streams matched
// event attribute values into it; Result is taken when the window closes.
package agg

import (
	"fmt"
	"math"
	"sort"

	"saql/internal/value"
)

// Aggregator accumulates values for one state field within one window.
type Aggregator interface {
	// Add folds one value into the aggregate. Non-numeric values are an
	// error for numeric aggregators; set aggregators stringify.
	Add(v value.Value) error
	// Result returns the aggregate for the closing window.
	Result() value.Value
	// Reset clears the aggregator for reuse in the next window.
	Reset()
}

// Factory creates fresh aggregators; params are the extra literal arguments
// of the call (e.g. the 95 in percentile(x, 95)).
type Factory func(params []value.Value) (Aggregator, error)

var registry = map[string]Factory{
	"avg":   func(p []value.Value) (Aggregator, error) { return noParams("avg", p, &meanAgg{}) },
	"mean":  func(p []value.Value) (Aggregator, error) { return noParams("mean", p, &meanAgg{}) },
	"sum":   func(p []value.Value) (Aggregator, error) { return noParams("sum", p, &sumAgg{}) },
	"count": func(p []value.Value) (Aggregator, error) { return noParams("count", p, &countAgg{}) },
	"min":   func(p []value.Value) (Aggregator, error) { return noParams("min", p, &minMaxAgg{isMin: true}) },
	"max":   func(p []value.Value) (Aggregator, error) { return noParams("max", p, &minMaxAgg{}) },
	"set":   func(p []value.Value) (Aggregator, error) { return noParams("set", p, newSetAgg()) },
	"distinct": func(p []value.Value) (Aggregator, error) {
		return noParams("distinct", p, &distinctAgg{set: newSetAgg()})
	},
	"stddev": func(p []value.Value) (Aggregator, error) {
		return noParams("stddev", p, &varianceAgg{sample: true, sqrt: true})
	},
	"variance": func(p []value.Value) (Aggregator, error) { return noParams("variance", p, &varianceAgg{sample: true}) },
	"median":   func(p []value.Value) (Aggregator, error) { return noParams("median", p, &percentileAgg{pct: 50}) },
	"first":    func(p []value.Value) (Aggregator, error) { return noParams("first", p, &firstLastAgg{first: true}) },
	"last":     func(p []value.Value) (Aggregator, error) { return noParams("last", p, &firstLastAgg{}) },
	"percentile": func(p []value.Value) (Aggregator, error) {
		if len(p) != 1 {
			return nil, fmt.Errorf("agg: percentile requires one parameter, got %d", len(p))
		}
		pct, ok := p[0].AsFloat()
		if !ok || pct < 0 || pct > 100 {
			return nil, fmt.Errorf("agg: percentile parameter must be a number in [0,100], got %v", p[0])
		}
		return &percentileAgg{pct: pct}, nil
	},
}

func noParams(name string, p []value.Value, a Aggregator) (Aggregator, error) {
	if len(p) != 0 {
		return nil, fmt.Errorf("agg: %s takes no extra parameters, got %d", name, len(p))
	}
	return a, nil
}

// IsAggregator reports whether name is a registered aggregation function.
func IsAggregator(name string) bool {
	_, ok := registry[name]
	return ok
}

// New creates an aggregator by name.
func New(name string, params []value.Value) (Aggregator, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("agg: unknown aggregation function %q", name)
	}
	return f(params)
}

// Names returns the sorted list of registered aggregation function names.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// --------------------------------------------------------------------------

type meanAgg struct {
	sum float64
	n   int
}

func (a *meanAgg) Add(v value.Value) error {
	f, ok := v.AsFloat()
	if !ok {
		return fmt.Errorf("agg: avg requires numeric input, got %s", v.Kind())
	}
	a.sum += f
	a.n++
	return nil
}

func (a *meanAgg) Result() value.Value {
	if a.n == 0 {
		return value.Float(0)
	}
	return value.Float(a.sum / float64(a.n))
}

func (a *meanAgg) Reset() { a.sum, a.n = 0, 0 }

type sumAgg struct{ sum float64 }

func (a *sumAgg) Add(v value.Value) error {
	f, ok := v.AsFloat()
	if !ok {
		return fmt.Errorf("agg: sum requires numeric input, got %s", v.Kind())
	}
	a.sum += f
	return nil
}

func (a *sumAgg) Result() value.Value { return value.Float(a.sum) }
func (a *sumAgg) Reset()              { a.sum = 0 }

type countAgg struct{ n int64 }

func (a *countAgg) Add(value.Value) error { a.n++; return nil }
func (a *countAgg) Result() value.Value   { return value.Int(a.n) }
func (a *countAgg) Reset()                { a.n = 0 }

type minMaxAgg struct {
	isMin bool
	cur   float64
	seen  bool
}

func (a *minMaxAgg) Add(v value.Value) error {
	f, ok := v.AsFloat()
	if !ok {
		return fmt.Errorf("agg: min/max requires numeric input, got %s", v.Kind())
	}
	if !a.seen {
		a.cur, a.seen = f, true
		return nil
	}
	if (a.isMin && f < a.cur) || (!a.isMin && f > a.cur) {
		a.cur = f
	}
	return nil
}

func (a *minMaxAgg) Result() value.Value {
	if !a.seen {
		return value.Null
	}
	return value.Float(a.cur)
}

func (a *minMaxAgg) Reset() { a.cur, a.seen = 0, false }

type setAgg struct{ members map[string]struct{} }

func newSetAgg() *setAgg { return &setAgg{members: map[string]struct{}{}} }

func (a *setAgg) Add(v value.Value) error {
	a.members[v.String()] = struct{}{}
	return nil
}

func (a *setAgg) Result() value.Value {
	out := make([]string, 0, len(a.members))
	for m := range a.members {
		out = append(out, m)
	}
	return value.SetOf(out...)
}

func (a *setAgg) Reset() { a.members = map[string]struct{}{} }

type distinctAgg struct{ set *setAgg }

func (a *distinctAgg) Add(v value.Value) error { return a.set.Add(v) }
func (a *distinctAgg) Result() value.Value     { return value.Int(int64(len(a.set.members))) }
func (a *distinctAgg) Reset()                  { a.set.Reset() }

// varianceAgg implements Welford's online algorithm for numeric stability.
type varianceAgg struct {
	sample bool // sample (n-1) vs population (n)
	sqrt   bool // stddev vs variance
	n      int
	mean   float64
	m2     float64
}

func (a *varianceAgg) Add(v value.Value) error {
	f, ok := v.AsFloat()
	if !ok {
		return fmt.Errorf("agg: stddev/variance requires numeric input, got %s", v.Kind())
	}
	a.n++
	d := f - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (f - a.mean)
	return nil
}

func (a *varianceAgg) Result() value.Value {
	if a.n < 2 {
		return value.Float(0)
	}
	div := float64(a.n)
	if a.sample {
		div = float64(a.n - 1)
	}
	v := a.m2 / div
	if a.sqrt {
		v = math.Sqrt(v)
	}
	return value.Float(v)
}

func (a *varianceAgg) Reset() { a.n, a.mean, a.m2 = 0, 0, 0 }

type percentileAgg struct {
	pct  float64
	vals []float64
}

func (a *percentileAgg) Add(v value.Value) error {
	f, ok := v.AsFloat()
	if !ok {
		return fmt.Errorf("agg: percentile/median requires numeric input, got %s", v.Kind())
	}
	a.vals = append(a.vals, f)
	return nil
}

func (a *percentileAgg) Result() value.Value {
	if len(a.vals) == 0 {
		return value.Float(0)
	}
	s := make([]float64, len(a.vals))
	copy(s, a.vals)
	sort.Float64s(s)
	// Linear interpolation between closest ranks.
	rank := a.pct / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return value.Float(s[lo])
	}
	frac := rank - float64(lo)
	return value.Float(s[lo]*(1-frac) + s[hi]*frac)
}

func (a *percentileAgg) Reset() { a.vals = a.vals[:0] }

type firstLastAgg struct {
	first bool
	val   value.Value
	seen  bool
}

func (a *firstLastAgg) Add(v value.Value) error {
	if a.first && a.seen {
		return nil
	}
	a.val, a.seen = v, true
	return nil
}

func (a *firstLastAgg) Result() value.Value {
	if !a.seen {
		return value.Null
	}
	return a.val
}

func (a *firstLastAgg) Reset() { a.val, a.seen = value.Null, false }
