package baseline

import (
	"testing"
	"time"

	"saql/internal/engine"
	"saql/internal/event"
	"saql/internal/value"
)

var base = time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)

func TestMaterializeCoversAttributes(t *testing.T) {
	ev := &event.Event{
		ID: 7, Time: base, AgentID: "db-1",
		Subject: event.Process("sqlservr.exe", 1680),
		Op:      event.OpWrite,
		Object:  event.NetConn("10.0.0.2", 1433, "10.0.1.5", 49000),
		Amount:  1234,
	}
	tup := Materialize(ev)
	checks := map[string]value.Value{
		"agentid":       value.String("db-1"),
		"optype":        value.String("write"),
		"amount":        value.Float(1234),
		"subj_exe_name": value.String("sqlservr.exe"),
		"obj_dstip":     value.String("10.0.1.5"),
	}
	for k, want := range checks {
		if got, ok := tup[k]; !ok || !got.Equal(want) {
			t.Errorf("tuple[%q] = %v, want %v", k, got, want)
		}
	}

	file := Materialize(&event.Event{Subject: event.Process("p", 1), Op: event.OpWrite, Object: event.File("/x")})
	if file["obj_path"].Str() != "/x" {
		t.Error("file tuple missing obj_path")
	}
	proc := Materialize(&event.Event{Subject: event.Process("p", 1), Op: event.OpStart, Object: event.Process("c", 2)})
	if proc["obj_exe_name"].Str() != "c" {
		t.Error("proc tuple missing obj_exe_name")
	}
}

func TestBaselineMatchesEngineAlerts(t *testing.T) {
	const src = `proc p["%cmd.exe"] start proc q2 as e return p, q2`
	direct, err := engine.Compile("direct", src, engine.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	viaBase, err := engine.Compile("via-baseline", src, engine.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b := New(nil)
	b.Add(viaBase)

	var nDirect, nBase int
	for i := 0; i < 10; i++ {
		parent := "cmd.exe"
		if i%2 == 0 {
			parent = "explorer.exe"
		}
		ev := &event.Event{
			Time:    base.Add(time.Duration(i) * time.Second),
			AgentID: "h",
			Subject: event.Process(parent, int32(i)),
			Op:      event.OpStart,
			Object:  event.Process("child.exe", int32(100+i)),
		}
		nDirect += len(direct.Process(ev, nil))
		nBase += len(b.Process(ev))
	}
	if nDirect != nBase {
		t.Errorf("baseline alerts = %d, direct = %d", nBase, nDirect)
	}
	if nBase != 5 {
		t.Errorf("alerts = %d, want 5", nBase)
	}
}

func TestCopyAccounting(t *testing.T) {
	b := New(nil)
	for i := 0; i < 4; i++ {
		q, err := engine.Compile(
			string(rune('a'+i)),
			`proc p start proc q2 as e return p`,
			engine.CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b.Add(q)
	}
	ev := &event.Event{Time: base, Subject: event.Process("x", 1), Op: event.OpStart, Object: event.Process("y", 2)}
	for i := 0; i < 10; i++ {
		b.Process(ev)
	}
	if b.Events != 10 {
		t.Errorf("events = %d", b.Events)
	}
	if b.TupleCopies != 40 {
		t.Errorf("tuple copies = %d, want queries×events = 40", b.TupleCopies)
	}
	if b.QueryCount() != 4 {
		t.Errorf("queries = %d", b.QueryCount())
	}
}

func TestFlush(t *testing.T) {
	q, err := engine.Compile("stateful", `
proc p write ip i as e #time(1 min)
state ss { amt := sum(e.amount) } group by p
alert ss.amt > 10
return p, ss.amt`, engine.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b := New(nil)
	b.Add(q)
	ev := &event.Event{
		Time: base, AgentID: "h",
		Subject: event.Process("x", 1), Op: event.OpWrite,
		Object: event.NetConn("1.1.1.1", 1, "2.2.2.2", 2), Amount: 100,
	}
	if got := b.Process(ev); len(got) != 0 {
		t.Errorf("window still open, alerts = %d", len(got))
	}
	if got := b.Flush(); len(got) != 1 {
		t.Errorf("flush alerts = %d, want 1", len(got))
	}
}
