// Package baseline implements the per-query-copy execution model of generic
// stream engines (Siddhi, Esper, Flink as the paper characterises them):
// "to support multiple concurrent queries that access different attributes
// of the data, these systems have to make multiple copies of the data for
// the queries". Every registered query receives its own materialised
// generic tuple of every event — the memory and CPU cost the
// master–dependent-query scheme eliminates. It is the comparator for
// experiment E3.
package baseline

import (
	"saql/internal/engine"
	"saql/internal/event"
	"saql/internal/value"
)

// Tuple is the generic attribute map a schema-agnostic engine materialises
// per query per event.
type Tuple map[string]value.Value

// Materialize converts an event into a generic tuple, copying every
// security-relevant attribute (this is the per-query data copy).
func Materialize(ev *event.Event) Tuple {
	t := make(Tuple, 16)
	t["id"] = value.Int(int64(ev.ID))
	t["time"] = value.Int(ev.Time.UnixNano())
	t["agentid"] = value.String(ev.AgentID)
	t["optype"] = value.String(ev.Op.String())
	t["amount"] = value.Float(ev.Amount)
	t["subj_exe_name"] = value.String(ev.Subject.ExeName)
	t["subj_pid"] = value.Int(int64(ev.Subject.PID))
	t["subj_user"] = value.String(ev.Subject.User)
	switch ev.Object.Type {
	case event.EntityProcess:
		t["obj_exe_name"] = value.String(ev.Object.ExeName)
		t["obj_pid"] = value.Int(int64(ev.Object.PID))
	case event.EntityFile:
		t["obj_path"] = value.String(ev.Object.Path)
	case event.EntityNetConn:
		t["obj_srcip"] = value.String(ev.Object.SrcIP)
		t["obj_sport"] = value.Int(int64(ev.Object.SrcPort))
		t["obj_dstip"] = value.String(ev.Object.DstIP)
		t["obj_dport"] = value.Int(int64(ev.Object.DstPort))
		t["obj_protocol"] = value.String(ev.Object.Protocol)
	}
	return t
}

// Engine executes queries the generic-CEP way: no sharing, one event copy
// and one tuple materialisation per query per event.
type Engine struct {
	queries  []*engine.Query
	reporter *engine.ErrorReporter

	// Stats.
	Events      int64
	TupleCopies int64
	Alerts      int64
}

// New creates a baseline engine. reporter may be nil.
func New(reporter *engine.ErrorReporter) *Engine {
	return &Engine{reporter: reporter}
}

// Add registers a compiled query.
func (e *Engine) Add(q *engine.Query) { e.queries = append(e.queries, q) }

// QueryCount reports the number of registered queries.
func (e *Engine) QueryCount() int { return len(e.queries) }

// Process delivers ev to every query, materialising a private copy for each
// (struct copy + generic tuple), exactly as a per-query-stream engine would.
func (e *Engine) Process(ev *event.Event) []*engine.Alert {
	e.Events++
	report := e.reportFn()
	var alerts []*engine.Alert
	for _, q := range e.queries {
		// The per-query data copy: a full struct copy plus the generic
		// attribute-map materialisation that schema-agnostic engines
		// perform so each query can bind its own attribute view.
		copyEv := *ev
		tuple := Materialize(&copyEv)
		_ = tuple // retained for the duration of query evaluation
		e.TupleCopies++
		alerts = append(alerts, q.Process(&copyEv, report)...)
	}
	e.Alerts += int64(len(alerts))
	return alerts
}

// Flush closes all open windows on every query.
func (e *Engine) Flush() []*engine.Alert {
	report := e.reportFn()
	var alerts []*engine.Alert
	for _, q := range e.queries {
		alerts = append(alerts, q.Flush(report)...)
	}
	e.Alerts += int64(len(alerts))
	return alerts
}

func (e *Engine) reportFn() func(error) {
	if e.reporter == nil {
		return func(error) {}
	}
	return func(err error) {
		if qe, ok := err.(*engine.QueryError); ok {
			e.reporter.Report(qe.Query, qe.Err)
			return
		}
		e.reporter.Report("", err)
	}
}
