// Package scheduler implements SAQL's concurrent query scheduler with the
// master–dependent-query scheme. Concurrent queries are divided into groups
// by semantic compatibility; each group has one master query and any number
// of dependent queries. Only the master has direct access to the stream: it
// evaluates the (expensive) event-pattern predicates once per event, and the
// dependents reuse its intermediate results — they re-examine only the
// events the master already matched, applying their residual (stricter)
// constraints. The scheme means one logical copy of the stream per group
// rather than per query, which is the data-copy reduction the paper claims
// over generic stream engines.
package scheduler

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"time"

	"saql/internal/ast"
	"saql/internal/engine"
	"saql/internal/event"
)

// Stats aggregates scheduler-level accounting across all events processed.
// All sharing counters (copies and pattern evaluations, actual and naive)
// count only active — non-paused — queries, so SharingRatio stays honest
// while parts of a group are paused.
type Stats struct {
	Events int64
	// StreamCopies counts per-event data copies under the scheme: one per
	// group in which any active query examined the event.
	StreamCopies int64
	// NaiveCopies counts what a per-query engine would have used: one copy
	// per active query per event.
	NaiveCopies int64
	// PatternEvals counts pattern-predicate evaluations actually performed
	// (masters on all events; dependents only on master-matched events).
	PatternEvals int64
	// NaivePatternEvals counts what per-query execution would have
	// performed (every active query evaluates every pattern on every
	// event).
	NaivePatternEvals int64
	Alerts            int64
}

// SharingRatio reports NaiveCopies / StreamCopies (≥ 1; higher is better).
func (s Stats) SharingRatio() float64 {
	if s.StreamCopies == 0 {
		return 0
	}
	return float64(s.NaiveCopies) / float64(s.StreamCopies)
}

// Layout is the immutable slot assignment of a HitSet: every registered
// query name maps to one index of HitSet.Hits. A scheduler rebuilds (and
// versions) its layout on every Add/Remove/Swap, so a HitSet produced
// before a registry change can never be misread against the registry that
// follows it — consumers re-resolve their slot caches whenever the layout
// pointer changes.
type Layout struct {
	Version int64
	Slots   map[string]int
}

// slot reports name's index in l, or -1 when absent.
func (l *Layout) slot(name string) int {
	if l == nil {
		return -1
	}
	if i, ok := l.Slots[name]; ok {
		return i
	}
	return -1
}

// HitSet carries one event's pattern-hit sets, computed once by an
// evaluating scheduler (Evaluate) and consumed by any number of ingesting
// schedulers (ProcessWithHits). Hits is indexed by Layout slot; a nil entry
// means the query matched nothing. A HitSet is immutable after Evaluate
// returns and safe to share across shards.
type HitSet struct {
	Layout *Layout
	Hits   [][]int
}

// dependent is a query executing against its master's intermediate results.
type dependent struct {
	q *engine.Query
	// equal marks dependents whose constraint sets equal the master's:
	// their hits are exactly the master's, so the residual re-examination
	// is skipped entirely (the concurrent-analyst case of same patterns
	// with different alert thresholds).
	equal bool
	// slot is the query's index in the layout the scheduler last resolved
	// against (see resolveSlotsLocked); -1 when absent from that layout.
	slot int
}

// group is one master–dependent group.
type group struct {
	sig        string
	master     *engine.Query
	dependents []*dependent
	// slot is the master's index in the last-resolved layout.
	slot int
}

// Scheduler routes events to query groups.
type Scheduler struct {
	mu       sync.Mutex
	groups   []*group
	queries  map[string]*engine.Query
	reporter *engine.ErrorReporter
	stats    Stats
	// Sharing can be disabled to obtain the per-query-copy baseline
	// behaviour for experiments (every query becomes its own master).
	sharing bool

	// layout is this scheduler's own slot assignment (what Evaluate stamps
	// onto HitSets); resolvedFor is the layout the group/dependent slot
	// caches currently reflect — own layout when evaluating, the producer's
	// layout when consuming foreign HitSets via ProcessWithHits.
	layout      *Layout
	resolvedFor *Layout
	// bySlot inverts the resolved layout: slot index -> locally registered
	// query (nil where the slot's query is not placed on this scheduler).
	// The partitioned ingestion paths walk a HitSet's non-empty slots
	// directly instead of iterating every group.
	bySlot []*engine.Query
	// procScratch is Process's reusable slot table: the serial path
	// consumes the hits under the same lock hold, so the table never
	// escapes and one zeroed buffer serves every event.
	procScratch [][]int
	// report adapts the error reporter once at construction so the per-event
	// paths don't allocate a closure per call.
	report func(error)
}

// New creates a scheduler. reporter may be nil. sharing enables the
// master–dependent-query scheme; with sharing=false every query is executed
// independently (the configuration E3 uses as the SAQL-side ablation).
func New(reporter *engine.ErrorReporter, sharing bool) *Scheduler {
	s := &Scheduler{
		queries:  map[string]*engine.Query{},
		reporter: reporter,
		sharing:  sharing,
	}
	s.report = s.reportFn()
	return s
}

// Add registers a compiled query, assigning it to a compatible group or
// creating a new one.
func (s *Scheduler) Add(q *engine.Query) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.queries[q.Name]; dup {
		return fmt.Errorf("scheduler: duplicate query name %q", q.Name)
	}
	s.queries[q.Name] = q
	s.addLocked(q)
	s.rebuildLayoutLocked()
	return nil
}

// Remove unregisters a query by name. Removing a master promotes its first
// dependent; removing the last query of a group drops the group.
func (s *Scheduler) Remove(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	ok := s.removeLocked(name)
	if ok {
		s.rebuildLayoutLocked()
	}
	return ok
}

func (s *Scheduler) removeLocked(name string) bool {
	if _, ok := s.queries[name]; !ok {
		return false
	}
	delete(s.queries, name)
	for gi, g := range s.groups {
		if g.master.Name == name {
			if len(g.dependents) == 0 {
				s.groups = append(s.groups[:gi], s.groups[gi+1:]...)
			} else {
				// Promote the weakest dependent that subsumes the rest;
				// fall back to re-adding all dependents.
				deps := g.dependents
				s.groups = append(s.groups[:gi], s.groups[gi+1:]...)
				for _, d := range deps {
					delete(s.queries, d.q.Name)
				}
				for _, d := range deps {
					// Re-add through the normal path (lock is held;
					// inline the body).
					s.queries[d.q.Name] = d.q
					s.addLocked(d.q)
				}
			}
			return true
		}
		for di, d := range g.dependents {
			if d.q.Name == name {
				g.dependents = append(g.dependents[:di], g.dependents[di+1:]...)
				return true
			}
		}
	}
	return false
}

// addLocked assigns q to a group; the caller holds s.mu and has already
// registered q in s.queries.
func (s *Scheduler) addLocked(q *engine.Query) {
	if !s.sharing {
		s.groups = append(s.groups, &group{sig: q.Name, master: q})
		return
	}
	sig := signature(q.AST)
	for _, g := range s.groups {
		if g.sig != sig {
			continue
		}
		if subsumes(g.master.AST, q.AST) {
			// The master's matches cover q's: q joins as a dependent.
			g.dependents = append(g.dependents, &dependent{
				q: q, equal: subsumes(q.AST, g.master.AST),
			})
			return
		}
		if subsumes(q.AST, g.master.AST) {
			// q is weaker than the current master: q becomes the new
			// master and the old master a dependent. All existing
			// dependents remain covered (old master ⊆ new master), but
			// their equality is relative to the new, weaker master.
			g.dependents = append(g.dependents, &dependent{q: g.master})
			g.master = q
			for _, d := range g.dependents {
				d.equal = subsumes(d.q.AST, q.AST)
			}
			return
		}
	}
	s.groups = append(s.groups, &group{sig: sig, master: q})
}

// Swap atomically replaces the query registered under name with q (which
// must carry the same name): alert-for-alert it is Remove(name) followed by
// Add(q), executed under one lock hold so no event can be processed between
// the two halves. When carry is set and the old query exists, q adopts the
// old query's sliding-window state first (the caller has verified
// CanCarryStateFrom). Group membership is recomputed: the new query joins
// whichever master–dependent group its constraints now place it in.
func (s *Scheduler) Swap(name string, q *engine.Query, carry bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.queries[name]
	if old != nil {
		s.removeLocked(name)
	}
	if _, dup := s.queries[q.Name]; dup {
		// Unreachable when q.Name == name; guards misuse.
		return fmt.Errorf("scheduler: duplicate query name %q", q.Name)
	}
	if carry && old != nil {
		q.CarryStateFrom(old)
	}
	s.queries[q.Name] = q
	s.addLocked(q)
	s.rebuildLayoutLocked()
	return nil
}

// rebuildLayoutLocked re-derives the slot assignment after a registry
// change, bumping the version so in-flight HitSets stamped with the old
// layout are never resolved against the new registry. The caller holds
// s.mu.
func (s *Scheduler) rebuildLayoutLocked() {
	ver := int64(1)
	if s.layout != nil {
		ver = s.layout.Version + 1
	}
	slots := make(map[string]int, len(s.queries))
	n := 0
	for _, g := range s.groups {
		slots[g.master.Name] = n
		n++
		for _, d := range g.dependents {
			slots[d.q.Name] = n
			n++
		}
	}
	s.layout = &Layout{Version: ver, Slots: slots}
	s.resolvedFor = nil
}

// resolveSlotsLocked refreshes the per-group slot caches against target.
// It is a no-op when the caches already reflect target, so the map lookups
// happen once per layout change, never per event.
func (s *Scheduler) resolveSlotsLocked(target *Layout) {
	if s.resolvedFor == target {
		return
	}
	n := 0
	if target != nil {
		n = len(target.Slots)
	}
	s.bySlot = make([]*engine.Query, n)
	for _, g := range s.groups {
		g.slot = target.slot(g.master.Name)
		if g.slot >= 0 {
			s.bySlot[g.slot] = g.master
		}
		for _, d := range g.dependents {
			d.slot = target.slot(d.q.Name)
			if d.slot >= 0 {
				s.bySlot[d.slot] = d.q
			}
		}
	}
	s.resolvedFor = target
}

// SetPaused marks a registered query paused or active, reporting whether the
// name was found. The flag flips under the scheduler lock, so it takes
// effect between events — never mid-ingest.
func (s *Scheduler) SetPaused(name string, paused bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queries[name]
	if !ok {
		return false
	}
	q.SetPaused(paused)
	return true
}

// Groups reports the current grouping as master name -> dependent names.
func (s *Scheduler) Groups() map[string][]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[string][]string{}
	for _, g := range s.groups {
		deps := make([]string, 0, len(g.dependents))
		for _, d := range g.dependents {
			deps = append(deps, d.q.Name)
		}
		sort.Strings(deps)
		out[g.master.Name] = deps
	}
	return out
}

// Query returns the registered query by name.
func (s *Scheduler) Query(name string) (*engine.Query, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queries[name]
	return q, ok
}

// QueryCount reports the number of registered queries.
func (s *Scheduler) QueryCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queries)
}

// GroupCount reports the number of master–dependent groups.
func (s *Scheduler) GroupCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.groups)
}

// Process feeds one event through every group and returns all alerts
// raised: the serial path, equivalent to Evaluate followed by
// ProcessWithHits under one lock hold.
func (s *Scheduler) Process(ev *event.Event) []*engine.Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Events++
	arena := s.procScratch
	h := s.evaluateLocked(ev, &arena, 1)
	alerts := s.ingestLocked(ev, s.layout, h)
	if h != nil {
		// The carved table was consumed above; zero it and keep it as the
		// scratch for the next event (it grows with the layout on demand).
		for i := range h {
			h[i] = nil
		}
		s.procScratch = h
	}
	return alerts
}

// Evaluate computes the shard-agnostic half of Process: every group's
// master pattern hits (once), refined into per-dependent residual hit sets.
// It mutates no query state — only the sharing counters — so a single
// evaluating scheduler can feed any number of ingesting schedulers that
// hold replicas of the same queries. Returns nil when no query matched
// (consumers treat a nil HitSet as all-empty).
func (s *Scheduler) Evaluate(ev *event.Event) *HitSet {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Events++
	var arena [][]int
	if h := s.evaluateLocked(ev, &arena, 1); h != nil {
		return &HitSet{Layout: s.layout, Hits: h}
	}
	return nil
}

// EvaluateBatch evaluates a whole submission batch under one lock hold,
// returning one HitSet per event (nil entries where nothing matched). The
// HitSet headers and hit-slot slices are slab-allocated per batch, so the
// pre-evaluation stage costs O(1) allocations per batch rather than per
// event — it sits on the router's hot path in front of every shard.
//
// Evaluation runs in pattern-major (columnar) order: each group's master
// sweeps its compiled patterns across the whole batch before the next group
// runs (see evaluateBatchLocked), rather than re-touching every group's
// programs once per event.
func (s *Scheduler) EvaluateBatch(evs []*event.Event) []*HitSet {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Events += int64(len(evs))
	return s.evaluateBatchLocked(evs)
}

// ProcessBatch is the serial (single-shard) counterpart of the pre-eval +
// ProcessWithHits split: it evaluates the whole batch in the same columnar
// order as EvaluateBatch — reusing this scheduler's own compiled programs —
// then folds each event into query state in stream order. Alert-for-alert
// and counter-for-counter it equals calling Process once per event: pattern
// evaluation is stateless, and pause flags only flip under the scheduler
// lock, which is held for the whole batch.
func (s *Scheduler) ProcessBatch(evs []*event.Event) []*engine.Alert {
	if len(evs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Events += int64(len(evs))
	hsets := s.evaluateBatchLocked(evs)
	var alerts []*engine.Alert
	for i, ev := range evs {
		var layout *Layout
		var hits [][]int
		if hsets[i] != nil {
			layout = hsets[i].Layout
			hits = hsets[i].Hits
		}
		alerts = append(alerts, s.ingestLocked(ev, layout, hits)...)
	}
	return alerts
}

// evaluateBatchLocked is the columnar core of EvaluateBatch/ProcessBatch.
// For each group, the master's patterns sweep the entire batch first
// (engine.MatchBatch writes per-event hit bitmasks, materialised into
// arena-carved index slices), then each dependent refines the master's hits
// across the batch. The hit sets, slot tables, and HitSet headers for the
// whole batch come from three slab allocations. Counters are maintained
// exactly as the event-major loop did — per-group constants multiplied by
// the batch length, residual evaluations counted as they happen — so stats
// are bit-identical to processing the batch event by event. The caller
// holds s.mu and has already counted Events.
//
//saql:hotpath
func (s *Scheduler) evaluateBatchLocked(evs []*event.Event) []*HitSet {
	n := len(evs)
	if n == 0 {
		return nil
	}
	s.resolveSlotsLocked(s.layout)
	nSlots := 0
	if s.layout != nil {
		nSlots = len(s.layout.Slots)
	}
	out := make([]*HitSet, n)
	var slab []HitSet    // one header per event with hits, carved on demand
	var tblArena [][]int // per-event slot tables
	put := func(i, slot int, h []int) {
		if len(h) == 0 || slot < 0 {
			return
		}
		if out[i] == nil {
			if slab == nil {
				slab = make([]HitSet, 0, n)
				tblArena = make([][]int, n*nSlots)
			}
			tbl := tblArena[:nSlots:nSlots]
			tblArena = tblArena[nSlots:]
			slab = append(slab, HitSet{Layout: s.layout, Hits: tbl})
			out[i] = &slab[len(slab)-1]
		}
		out[i].Hits[slot] = h
	}

	masterHits := make([][]int, n) // this group's master hits per event
	var masks []uint64             // per-event pattern bitmasks (≤64 patterns)
	var globalOK []bool

	for _, g := range s.groups {
		masterActive := !g.master.Paused()
		active := 0
		if masterActive {
			active++
		}
		for _, d := range g.dependents {
			if !d.q.Paused() {
				active++
			}
		}
		if active == 0 {
			continue
		}
		// Per-event counter bumps fold into one multiplication: the flags
		// they depend on cannot change while the lock is held.
		s.stats.StreamCopies += int64(n)
		s.stats.NaiveCopies += int64(active) * int64(n)
		nPat := len(g.master.Patterns())
		s.stats.PatternEvals += int64(nPat) * int64(n)
		if masterActive {
			s.stats.NaivePatternEvals += int64(nPat) * int64(n)
		}

		if nPat <= 64 {
			// Columnar sweep: one pattern across all events before the next.
			if masks == nil {
				masks = make([]uint64, n)
				globalOK = make([]bool, n)
			} else {
				for i := range masks {
					masks[i] = 0
				}
			}
			g.master.MatchBatch(evs, masks, globalOK)
			total := 0
			for _, m := range masks {
				total += bits.OnesCount64(m)
			}
			var buf []int
			if total > 0 {
				buf = make([]int, 0, total)
			}
			for i, m := range masks {
				if m == 0 {
					masterHits[i] = nil
					continue
				}
				start := len(buf)
				for m != 0 {
					buf = append(buf, bits.TrailingZeros64(m))
					m &= m - 1
				}
				mh := buf[start:len(buf):len(buf)]
				masterHits[i] = mh
				put(i, g.slot, mh)
			}
		} else {
			for i, ev := range evs {
				mh := g.master.Hits(ev)
				masterHits[i] = mh
				put(i, g.slot, mh)
			}
		}

		for _, d := range g.dependents {
			if d.q.Paused() {
				continue
			}
			s.stats.NaivePatternEvals += int64(len(d.q.Patterns())) * int64(n)
			if d.equal {
				// Equal constraint sets: the master's hits are exactly this
				// dependent's, no residual re-examination needed.
				for i, mh := range masterHits {
					if len(mh) == 0 {
						continue
					}
					put(i, d.slot, mh)
				}
				continue
			}
			for i, mh := range masterHits {
				if len(mh) == 0 {
					continue
				}
				dh, evals := d.q.ResidualHits(evs[i], mh)
				s.stats.PatternEvals += int64(evals)
				put(i, d.slot, dh)
			}
		}
	}
	return out
}

// ProcessWithHits is the ingestion half of Process: it folds one event into
// every active query's state using hit sets computed elsewhere (by an
// evaluating scheduler over replicas of the same queries, at the same point
// of the same total event order). Queries absent from the HitSet's layout
// ingest with no hits — for stateful queries that is exactly the watermark
// Touch that keeps window cadence identical on every shard.
func (s *Scheduler) ProcessWithHits(ev *event.Event, hs *HitSet) []*engine.Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Events++
	if hs == nil {
		return s.ingestLocked(ev, nil, nil)
	}
	return s.ingestLocked(ev, hs.Layout, hs.Hits)
}

// evaluateLocked computes the per-slot hit sets for ev and maintains the
// sharing counters. Only active queries count toward the naive baselines,
// and a fully paused group is skipped outright (a paused master still
// evaluates its patterns when an active dependent needs the shared hits).
// Hit-slot slices are carved out of *arena (grown to cover up to remaining
// further events) so batch evaluation allocates once, not per event. The
// caller holds s.mu.
//
//saql:hotpath
func (s *Scheduler) evaluateLocked(ev *event.Event, arena *[][]int, remaining int) [][]int {
	s.resolveSlotsLocked(s.layout)
	var hits [][]int // carved from the arena on the first non-empty hit set
	put := func(slot int, h []int) {
		if len(h) == 0 || slot < 0 {
			return
		}
		if hits == nil {
			n := len(s.layout.Slots)
			if len(*arena) < n {
				*arena = make([][]int, n*remaining)
			}
			hits = (*arena)[:n:n]
			*arena = (*arena)[n:]
		}
		hits[slot] = h
	}
	for _, g := range s.groups {
		masterActive := !g.master.Paused()
		active := 0
		if masterActive {
			active++
		}
		for _, d := range g.dependents {
			if !d.q.Paused() {
				active++
			}
		}
		if active == 0 {
			continue
		}
		s.stats.StreamCopies++
		s.stats.NaiveCopies += int64(active)
		nPat := int64(len(g.master.Patterns()))
		s.stats.PatternEvals += nPat
		if masterActive {
			s.stats.NaivePatternEvals += nPat
		}

		mh := g.master.Hits(ev)
		put(g.slot, mh)

		for _, d := range g.dependents {
			if d.q.Paused() {
				continue
			}
			s.stats.NaivePatternEvals += int64(len(d.q.Patterns()))
			if len(mh) == 0 {
				continue
			}
			if d.equal {
				// Equal constraint sets: the master's hits are exactly this
				// dependent's, no residual re-examination needed.
				put(d.slot, mh)
				continue
			}
			dh, evals := d.q.ResidualHits(ev, mh)
			s.stats.PatternEvals += int64(evals)
			put(d.slot, dh)
		}
	}
	return hits
}

// ingestLocked folds ev into every active query using the per-slot hit
// sets (hits may be nil: no query matched). Every active query ingests
// even with no hits — stateful queries must observe the watermark so
// windows close on time. The caller holds s.mu.
//
//saql:hotpath
func (s *Scheduler) ingestLocked(ev *event.Event, layout *Layout, hits [][]int) []*engine.Alert {
	if hits != nil {
		s.resolveSlotsLocked(layout)
	}
	get := func(slot int) []int {
		if slot < 0 || slot >= len(hits) {
			return nil
		}
		return hits[slot]
	}
	var alerts []*engine.Alert
	for _, g := range s.groups {
		if !g.master.Paused() {
			alerts = append(alerts, g.master.Ingest(ev, get(g.slot), s.report)...)
		}
		for _, d := range g.dependents {
			if d.q.Paused() {
				continue
			}
			alerts = append(alerts, d.q.Ingest(ev, get(d.slot), s.report)...)
		}
	}
	s.stats.Alerts += int64(len(alerts))
	return alerts
}

// IngestRouted folds one delivered event into exactly the queries its hit
// set names: the partitioned router's ingestion path, where a shard receives
// only the events whose state it owns. Each stateful target is first
// advanced to wm — the stream watermark the router observed just before this
// event — so windows close at the same stream points as in the serial
// engine, where every event advances every query's watermark. Queries with
// no hits are left alone here; AdvanceAll at the batch boundary brings them
// to the stream watermark.
//
//saql:hotpath
func (s *Scheduler) IngestRouted(ev *event.Event, hs *HitSet, wm time.Time, hasWM bool) []*engine.Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Events++
	s.resolveSlotsLocked(hs.Layout)
	var alerts []*engine.Alert
	for slot, h := range hs.Hits {
		if len(h) == 0 {
			continue
		}
		q := s.bySlot[slot]
		if q == nil || q.Paused() {
			continue
		}
		if hasWM {
			alerts = append(alerts, q.AdvanceWatermark(wm, s.report)...)
		}
		alerts = append(alerts, q.Ingest(ev, h, s.report)...)
	}
	s.stats.Alerts += int64(len(alerts))
	return alerts
}

// TouchRouted opens (and later closes) windows for the stateful queries a
// hit set names without folding any state: the partitioned router sends it
// to the shards that hold a replica of a hit query but do not own the
// event's group, replacing the full envelope the broadcast router shipped.
// Window cadence — open instants, close counts, empty-snapshot backfill —
// thereby stays identical on every replica.
//
//saql:hotpath
func (s *Scheduler) TouchRouted(at time.Time, hs *HitSet, wm time.Time, hasWM bool) []*engine.Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resolveSlotsLocked(hs.Layout)
	var alerts []*engine.Alert
	for slot, h := range hs.Hits {
		if len(h) == 0 {
			continue
		}
		q := s.bySlot[slot]
		if q == nil || q.Paused() || !q.Stateful() {
			continue
		}
		if hasWM {
			alerts = append(alerts, q.AdvanceWatermark(wm, s.report)...)
		}
		alerts = append(alerts, q.TouchAt(at, s.report)...)
	}
	s.stats.Alerts += int64(len(alerts))
	return alerts
}

// AdvanceAll advances every active query's watermark to wm, closing finished
// windows: the batch-boundary watermark broadcast of the partitioned router.
// Paused queries are skipped — their watermarks freeze exactly as they do in
// the serial engine, which stops offering them events entirely.
//
//saql:hotpath
func (s *Scheduler) AdvanceAll(wm time.Time) []*engine.Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	var alerts []*engine.Alert
	for _, g := range s.groups {
		if !g.master.Paused() {
			alerts = append(alerts, g.master.AdvanceWatermark(wm, s.report)...)
		}
		for _, d := range g.dependents {
			if d.q.Paused() {
				continue
			}
			alerts = append(alerts, d.q.AdvanceWatermark(wm, s.report)...)
		}
	}
	s.stats.Alerts += int64(len(alerts))
	return alerts
}

// Flush closes all open windows on every query (end of stream).
func (s *Scheduler) Flush() []*engine.Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	var alerts []*engine.Alert
	for _, g := range s.groups {
		alerts = append(alerts, g.master.Flush(s.report)...)
		for _, d := range g.dependents {
			alerts = append(alerts, d.q.Flush(s.report)...)
		}
	}
	s.stats.Alerts += int64(len(alerts))
	return alerts
}

func (s *Scheduler) reportFn() func(error) {
	if s.reporter == nil {
		return func(error) {}
	}
	return func(err error) {
		if qe, ok := err.(*engine.QueryError); ok {
			s.reporter.Report(qe.Query, qe.Err)
			return
		}
		s.reporter.Report("", err)
	}
}

// Stats returns a snapshot of the scheduler counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ---------------------------------------------------------------------------
// Semantic compatibility
// ---------------------------------------------------------------------------

// signature canonicalises the structural shape shared hits depend on: the
// ordered list of (subject type, operations, object type) per pattern.
// Constraints are deliberately excluded — subsumption handles them.
func signature(q *ast.Query) string {
	var sb strings.Builder
	for _, p := range q.Patterns {
		sb.WriteString(p.Subject.Type.String())
		sb.WriteByte(':')
		ops := make([]string, len(p.Ops))
		for i, o := range p.Ops {
			ops[i] = o.String()
		}
		sort.Strings(ops)
		sb.WriteString(strings.Join(ops, "|"))
		sb.WriteByte(':')
		sb.WriteString(p.Object.Type.String())
		sb.WriteByte(';')
	}
	return sb.String()
}

// subsumes reports whether master's matches are a superset of dep's for
// every pattern: master's constraints (global and per-entity) must all
// appear in dep's constraint sets, so every event dep would match, master
// matches too. Patterns are compared positionally (same signature).
func subsumes(master, dep *ast.Query) bool {
	if len(master.Patterns) != len(dep.Patterns) {
		return false
	}
	if !constraintSubset(globalStrings(master), globalStrings(dep)) {
		return false
	}
	for i := range master.Patterns {
		mp, dp := master.Patterns[i], dep.Patterns[i]
		if !constraintSubset(entityConstraintStrings(mp.Subject), entityConstraintStrings(dp.Subject)) {
			return false
		}
		if !constraintSubset(entityConstraintStrings(mp.Object), entityConstraintStrings(dp.Object)) {
			return false
		}
	}
	return true
}

func globalStrings(q *ast.Query) []string {
	out := make([]string, 0, len(q.Globals))
	for _, g := range q.Globals {
		out = append(out, g.String())
	}
	return out
}

func entityConstraintStrings(e *ast.EntityPattern) []string {
	out := make([]string, 0, len(e.Constraints))
	for _, c := range e.Constraints {
		out = append(out, c.String())
	}
	return out
}

// constraintSubset reports a ⊆ b by canonical string equality.
func constraintSubset(a, b []string) bool {
	if len(a) > len(b) {
		return false
	}
	set := make(map[string]bool, len(b))
	for _, s := range b {
		set[s] = true
	}
	for _, s := range a {
		if !set[s] {
			return false
		}
	}
	return true
}
