// Package scheduler implements SAQL's concurrent query scheduler with the
// master–dependent-query scheme. Concurrent queries are divided into groups
// by semantic compatibility; each group has one master query and any number
// of dependent queries. Only the master has direct access to the stream: it
// evaluates the (expensive) event-pattern predicates once per event, and the
// dependents reuse its intermediate results — they re-examine only the
// events the master already matched, applying their residual (stricter)
// constraints. The scheme means one logical copy of the stream per group
// rather than per query, which is the data-copy reduction the paper claims
// over generic stream engines.
package scheduler

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"saql/internal/ast"
	"saql/internal/engine"
	"saql/internal/event"
)

// Stats aggregates scheduler-level accounting across all events processed.
type Stats struct {
	Events int64
	// StreamCopies counts per-event data copies under the scheme: one per
	// group whose master examined the event.
	StreamCopies int64
	// NaiveCopies counts what a per-query engine would have used: one copy
	// per registered query per event.
	NaiveCopies int64
	// PatternEvals counts pattern-predicate evaluations actually performed
	// (masters on all events; dependents only on master-matched events).
	PatternEvals int64
	// NaivePatternEvals counts what per-query execution would have
	// performed (every query evaluates every pattern on every event).
	NaivePatternEvals int64
	Alerts            int64
}

// SharingRatio reports NaiveCopies / StreamCopies (≥ 1; higher is better).
func (s Stats) SharingRatio() float64 {
	if s.StreamCopies == 0 {
		return 0
	}
	return float64(s.NaiveCopies) / float64(s.StreamCopies)
}

// dependent is a query executing against its master's intermediate results.
type dependent struct {
	q *engine.Query
	// equal marks dependents whose constraint sets equal the master's:
	// their hits are exactly the master's, so the residual re-examination
	// is skipped entirely (the concurrent-analyst case of same patterns
	// with different alert thresholds).
	equal bool
}

// group is one master–dependent group.
type group struct {
	sig        string
	master     *engine.Query
	dependents []*dependent
}

// Scheduler routes events to query groups.
type Scheduler struct {
	mu       sync.Mutex
	groups   []*group
	queries  map[string]*engine.Query
	reporter *engine.ErrorReporter
	stats    Stats
	// Sharing can be disabled to obtain the per-query-copy baseline
	// behaviour for experiments (every query becomes its own master).
	sharing bool
}

// New creates a scheduler. reporter may be nil. sharing enables the
// master–dependent-query scheme; with sharing=false every query is executed
// independently (the configuration E3 uses as the SAQL-side ablation).
func New(reporter *engine.ErrorReporter, sharing bool) *Scheduler {
	return &Scheduler{
		queries:  map[string]*engine.Query{},
		reporter: reporter,
		sharing:  sharing,
	}
}

// Add registers a compiled query, assigning it to a compatible group or
// creating a new one.
func (s *Scheduler) Add(q *engine.Query) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.queries[q.Name]; dup {
		return fmt.Errorf("scheduler: duplicate query name %q", q.Name)
	}
	s.queries[q.Name] = q
	s.addLocked(q)
	return nil
}

// Remove unregisters a query by name. Removing a master promotes its first
// dependent; removing the last query of a group drops the group.
func (s *Scheduler) Remove(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.removeLocked(name)
}

func (s *Scheduler) removeLocked(name string) bool {
	if _, ok := s.queries[name]; !ok {
		return false
	}
	delete(s.queries, name)
	for gi, g := range s.groups {
		if g.master.Name == name {
			if len(g.dependents) == 0 {
				s.groups = append(s.groups[:gi], s.groups[gi+1:]...)
			} else {
				// Promote the weakest dependent that subsumes the rest;
				// fall back to re-adding all dependents.
				deps := g.dependents
				s.groups = append(s.groups[:gi], s.groups[gi+1:]...)
				for _, d := range deps {
					delete(s.queries, d.q.Name)
				}
				for _, d := range deps {
					// Re-add through the normal path (lock is held;
					// inline the body).
					s.queries[d.q.Name] = d.q
					s.addLocked(d.q)
				}
			}
			return true
		}
		for di, d := range g.dependents {
			if d.q.Name == name {
				g.dependents = append(g.dependents[:di], g.dependents[di+1:]...)
				return true
			}
		}
	}
	return false
}

// addLocked assigns q to a group; the caller holds s.mu and has already
// registered q in s.queries.
func (s *Scheduler) addLocked(q *engine.Query) {
	if !s.sharing {
		s.groups = append(s.groups, &group{sig: q.Name, master: q})
		return
	}
	sig := signature(q.AST)
	for _, g := range s.groups {
		if g.sig != sig {
			continue
		}
		if subsumes(g.master.AST, q.AST) {
			// The master's matches cover q's: q joins as a dependent.
			g.dependents = append(g.dependents, &dependent{
				q: q, equal: subsumes(q.AST, g.master.AST),
			})
			return
		}
		if subsumes(q.AST, g.master.AST) {
			// q is weaker than the current master: q becomes the new
			// master and the old master a dependent. All existing
			// dependents remain covered (old master ⊆ new master), but
			// their equality is relative to the new, weaker master.
			g.dependents = append(g.dependents, &dependent{q: g.master})
			g.master = q
			for _, d := range g.dependents {
				d.equal = subsumes(d.q.AST, q.AST)
			}
			return
		}
	}
	s.groups = append(s.groups, &group{sig: sig, master: q})
}

// Swap atomically replaces the query registered under name with q (which
// must carry the same name): alert-for-alert it is Remove(name) followed by
// Add(q), executed under one lock hold so no event can be processed between
// the two halves. When carry is set and the old query exists, q adopts the
// old query's sliding-window state first (the caller has verified
// CanCarryStateFrom). Group membership is recomputed: the new query joins
// whichever master–dependent group its constraints now place it in.
func (s *Scheduler) Swap(name string, q *engine.Query, carry bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.queries[name]
	if old != nil {
		s.removeLocked(name)
	}
	if _, dup := s.queries[q.Name]; dup {
		// Unreachable when q.Name == name; guards misuse.
		return fmt.Errorf("scheduler: duplicate query name %q", q.Name)
	}
	if carry && old != nil {
		q.CarryStateFrom(old)
	}
	s.queries[q.Name] = q
	s.addLocked(q)
	return nil
}

// SetPaused marks a registered query paused or active, reporting whether the
// name was found. The flag flips under the scheduler lock, so it takes
// effect between events — never mid-ingest.
func (s *Scheduler) SetPaused(name string, paused bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queries[name]
	if !ok {
		return false
	}
	q.SetPaused(paused)
	return true
}

// Groups reports the current grouping as master name -> dependent names.
func (s *Scheduler) Groups() map[string][]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[string][]string{}
	for _, g := range s.groups {
		deps := make([]string, 0, len(g.dependents))
		for _, d := range g.dependents {
			deps = append(deps, d.q.Name)
		}
		sort.Strings(deps)
		out[g.master.Name] = deps
	}
	return out
}

// Query returns the registered query by name.
func (s *Scheduler) Query(name string) (*engine.Query, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queries[name]
	return q, ok
}

// QueryCount reports the number of registered queries.
func (s *Scheduler) QueryCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queries)
}

// GroupCount reports the number of master–dependent groups.
func (s *Scheduler) GroupCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.groups)
}

// Process feeds one event through every group and returns all alerts raised.
func (s *Scheduler) Process(ev *event.Event) []*engine.Alert {
	s.mu.Lock()
	defer s.mu.Unlock()

	s.stats.Events++
	s.stats.NaiveCopies += int64(len(s.queries))
	var alerts []*engine.Alert
	report := s.reportFn()

	for _, g := range s.groups {
		// Paused queries skip ingestion entirely. A paused master still
		// evaluates its patterns when an active dependent needs the shared
		// hits; a fully paused group costs nothing per event.
		masterActive := !g.master.Paused()
		depsActive := false
		for _, d := range g.dependents {
			if !d.q.Paused() {
				depsActive = true
				break
			}
		}
		if !masterActive && !depsActive {
			continue
		}
		s.stats.StreamCopies++
		nPat := int64(len(g.master.Patterns()))
		s.stats.PatternEvals += nPat
		s.stats.NaivePatternEvals += nPat

		hits := g.master.Hits(ev)
		if masterActive {
			alerts = append(alerts, g.master.Ingest(ev, hits, report)...)
		}

		for _, d := range g.dependents {
			if d.q.Paused() {
				continue
			}
			s.stats.NaivePatternEvals += int64(len(d.q.Patterns()))
			var depHits []int
			if len(hits) > 0 && d.equal {
				// Equal constraint sets: the master's hits are exactly this
				// dependent's, no residual re-examination needed.
				depHits = hits
			} else if len(hits) > 0 && d.q.GlobalMatches(ev) {
				pats := d.q.Patterns()
				for _, hi := range hits {
					s.stats.PatternEvals++
					if pats[hi].Matches(ev) {
						depHits = append(depHits, hi)
					}
				}
			}
			// Always ingest: stateful dependents must observe the
			// watermark even when no pattern matched.
			alerts = append(alerts, d.q.Ingest(ev, depHits, report)...)
		}
	}
	s.stats.Alerts += int64(len(alerts))
	return alerts
}

// Flush closes all open windows on every query (end of stream).
func (s *Scheduler) Flush() []*engine.Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	report := s.reportFn()
	var alerts []*engine.Alert
	for _, g := range s.groups {
		alerts = append(alerts, g.master.Flush(report)...)
		for _, d := range g.dependents {
			alerts = append(alerts, d.q.Flush(report)...)
		}
	}
	s.stats.Alerts += int64(len(alerts))
	return alerts
}

func (s *Scheduler) reportFn() func(error) {
	if s.reporter == nil {
		return func(error) {}
	}
	return func(err error) {
		if qe, ok := err.(*engine.QueryError); ok {
			s.reporter.Report(qe.Query, qe.Err)
			return
		}
		s.reporter.Report("", err)
	}
}

// Stats returns a snapshot of the scheduler counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ---------------------------------------------------------------------------
// Semantic compatibility
// ---------------------------------------------------------------------------

// signature canonicalises the structural shape shared hits depend on: the
// ordered list of (subject type, operations, object type) per pattern.
// Constraints are deliberately excluded — subsumption handles them.
func signature(q *ast.Query) string {
	var sb strings.Builder
	for _, p := range q.Patterns {
		sb.WriteString(p.Subject.Type.String())
		sb.WriteByte(':')
		ops := make([]string, len(p.Ops))
		for i, o := range p.Ops {
			ops[i] = o.String()
		}
		sort.Strings(ops)
		sb.WriteString(strings.Join(ops, "|"))
		sb.WriteByte(':')
		sb.WriteString(p.Object.Type.String())
		sb.WriteByte(';')
	}
	return sb.String()
}

// subsumes reports whether master's matches are a superset of dep's for
// every pattern: master's constraints (global and per-entity) must all
// appear in dep's constraint sets, so every event dep would match, master
// matches too. Patterns are compared positionally (same signature).
func subsumes(master, dep *ast.Query) bool {
	if len(master.Patterns) != len(dep.Patterns) {
		return false
	}
	if !constraintSubset(globalStrings(master), globalStrings(dep)) {
		return false
	}
	for i := range master.Patterns {
		mp, dp := master.Patterns[i], dep.Patterns[i]
		if !constraintSubset(entityConstraintStrings(mp.Subject), entityConstraintStrings(dp.Subject)) {
			return false
		}
		if !constraintSubset(entityConstraintStrings(mp.Object), entityConstraintStrings(dp.Object)) {
			return false
		}
	}
	return true
}

func globalStrings(q *ast.Query) []string {
	out := make([]string, 0, len(q.Globals))
	for _, g := range q.Globals {
		out = append(out, g.String())
	}
	return out
}

func entityConstraintStrings(e *ast.EntityPattern) []string {
	out := make([]string, 0, len(e.Constraints))
	for _, c := range e.Constraints {
		out = append(out, c.String())
	}
	return out
}

// constraintSubset reports a ⊆ b by canonical string equality.
func constraintSubset(a, b []string) bool {
	if len(a) > len(b) {
		return false
	}
	set := make(map[string]bool, len(b))
	for _, s := range b {
		set[s] = true
	}
	for _, s := range a {
		if !set[s] {
			return false
		}
	}
	return true
}
