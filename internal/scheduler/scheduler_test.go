package scheduler

import (
	"fmt"
	"testing"
	"time"

	"saql/internal/engine"
	"saql/internal/event"
)

var base = time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)

func compile(t *testing.T, name, src string) *engine.Query {
	t.Helper()
	q, err := engine.Compile(name, src, engine.CompileOptions{})
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return q
}

// Compatible query family: same pattern structure, increasingly strict
// constraints. q0 (no constraint) subsumes q1 subsumes q2.
const (
	qAnyStart = `proc p start proc q2 as e return p, q2`
	qCmdStart = `proc p["%cmd.exe"] start proc q2 as e return p, q2`
	qCmdOsql  = `proc p["%cmd.exe"] start proc q2["%osql.exe"] as e return p, q2`
	qWriteIP  = `proc p write ip i as e return p`
)

func TestGroupingBySubsumption(t *testing.T) {
	s := New(nil, true)
	if err := s.Add(compile(t, "strict", qCmdOsql)); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(compile(t, "mid", qCmdStart)); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(compile(t, "weak", qAnyStart)); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(compile(t, "other", qWriteIP)); err != nil {
		t.Fatal(err)
	}
	if s.GroupCount() != 2 {
		t.Fatalf("groups = %d, want 2 (start-family + write-ip)", s.GroupCount())
	}
	groups := s.Groups()
	deps, ok := groups["weak"]
	if !ok {
		t.Fatalf("weakest query should be master: %v", groups)
	}
	if len(deps) != 2 {
		t.Errorf("dependents = %v, want strict+mid", deps)
	}
}

func TestMasterPromotion(t *testing.T) {
	s := New(nil, true)
	_ = s.Add(compile(t, "strict", qCmdOsql))
	// Weaker query arrives later: must take over as master.
	_ = s.Add(compile(t, "weak", qAnyStart))
	groups := s.Groups()
	if _, ok := groups["weak"]; !ok {
		t.Fatalf("weak should be master: %v", groups)
	}
}

func TestSharingProducesSameAlerts(t *testing.T) {
	events := startEvents()

	shared := New(nil, true)
	_ = shared.Add(compile(t, "weak", qAnyStart))
	_ = shared.Add(compile(t, "mid", qCmdStart))
	_ = shared.Add(compile(t, "strict", qCmdOsql))

	solo := New(nil, false)
	_ = solo.Add(compile(t, "weak", qAnyStart))
	_ = solo.Add(compile(t, "mid", qCmdStart))
	_ = solo.Add(compile(t, "strict", qCmdOsql))

	countByQuery := func(s *Scheduler) map[string]int {
		got := map[string]int{}
		for _, ev := range events {
			for _, a := range s.Process(ev) {
				got[a.Query]++
			}
		}
		for _, a := range s.Flush() {
			got[a.Query]++
		}
		return got
	}
	a, b := countByQuery(shared), countByQuery(solo)
	for k := range a {
		if a[k] != b[k] {
			t.Errorf("query %s: shared=%d solo=%d", k, a[k], b[k])
		}
	}
	if a["weak"] == 0 || a["strict"] == 0 {
		t.Errorf("expected alerts from both ends of the family: %v", a)
	}
	// Stricter queries must alert on a subset.
	if !(a["weak"] >= a["mid"] && a["mid"] >= a["strict"]) {
		t.Errorf("subsumption violated in alert counts: %v", a)
	}
}

func startEvents() []*event.Event {
	var out []*event.Event
	procs := []struct {
		parent, child string
	}{
		{"cmd.exe", "osql.exe"},
		{"cmd.exe", "ping.exe"},
		{"explorer.exe", "notepad.exe"},
		{"cmd.exe", "osql.exe"},
		{"bash", "ls"},
	}
	for i, pc := range procs {
		out = append(out, &event.Event{
			Time:    base.Add(time.Duration(i) * time.Second),
			AgentID: "h1",
			Subject: event.Process(pc.parent, int32(100+i)),
			Op:      event.OpStart,
			Object:  event.Process(pc.child, int32(200+i)),
		})
	}
	return out
}

func TestCopyAccounting(t *testing.T) {
	s := New(nil, true)
	_ = s.Add(compile(t, "weak", qAnyStart))
	_ = s.Add(compile(t, "mid", qCmdStart))
	_ = s.Add(compile(t, "strict", qCmdOsql))
	evs := startEvents()
	// Non-matching noise: dependents never see these events at all — only
	// the master evaluates them. This is where the scheme saves CPU.
	for i := 0; i < 5; i++ {
		evs = append(evs, &event.Event{
			Time:    base.Add(time.Duration(10+i) * time.Second),
			AgentID: "h1",
			Subject: event.Process("svchost.exe", 9),
			Op:      event.OpWrite,
			Object:  event.File(`C:\Windows\log`),
		})
	}
	for _, ev := range evs {
		s.Process(ev)
	}
	st := s.Stats()
	if st.Events != 10 {
		t.Errorf("events = %d", st.Events)
	}
	// One group: copies = events; naive = 3× events.
	if st.StreamCopies != 10 || st.NaiveCopies != 30 {
		t.Errorf("copies = %d/%d, want 10/30", st.StreamCopies, st.NaiveCopies)
	}
	if got := st.SharingRatio(); got != 3 {
		t.Errorf("sharing ratio = %v, want 3", got)
	}
	// Dependents evaluate patterns only on master hits, so pattern evals
	// must be below the naive count: master 10 + 2 deps × 5 hits = 20 < 30.
	if st.PatternEvals >= st.NaivePatternEvals {
		t.Errorf("pattern evals = %d, naive = %d: no saving", st.PatternEvals, st.NaivePatternEvals)
	}
}

func TestNoSharingMode(t *testing.T) {
	s := New(nil, false)
	_ = s.Add(compile(t, "a", qAnyStart))
	_ = s.Add(compile(t, "b", qCmdStart))
	if s.GroupCount() != 2 {
		t.Errorf("groups = %d, want 2 without sharing", s.GroupCount())
	}
	st := s.Stats()
	_ = st
	for _, ev := range startEvents() {
		s.Process(ev)
	}
	st = s.Stats()
	if st.StreamCopies != st.NaiveCopies {
		t.Errorf("no-sharing copies %d != naive %d", st.StreamCopies, st.NaiveCopies)
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	s := New(nil, true)
	_ = s.Add(compile(t, "a", qAnyStart))
	if err := s.Add(compile(t, "a", qCmdStart)); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestRemove(t *testing.T) {
	s := New(nil, true)
	_ = s.Add(compile(t, "weak", qAnyStart))
	_ = s.Add(compile(t, "strict", qCmdOsql))
	if !s.Remove("strict") {
		t.Fatal("remove dependent failed")
	}
	if s.QueryCount() != 1 || s.GroupCount() != 1 {
		t.Errorf("after remove: queries=%d groups=%d", s.QueryCount(), s.GroupCount())
	}
	// Removing the master re-groups survivors.
	_ = s.Add(compile(t, "strict", qCmdOsql))
	_ = s.Add(compile(t, "mid", qCmdStart))
	if !s.Remove("weak") {
		t.Fatal("remove master failed")
	}
	if s.QueryCount() != 2 {
		t.Errorf("queries = %d, want 2", s.QueryCount())
	}
	groups := s.Groups()
	if _, ok := groups["mid"]; !ok {
		t.Errorf("mid should be promoted master: %v", groups)
	}
	if s.Remove("nope") {
		t.Error("removing unknown query succeeded")
	}
}

func TestDependentWindowsAdvance(t *testing.T) {
	// A stateful dependent must close windows even when the master's hits
	// never match it.
	s := New(nil, true)
	_ = s.Add(compile(t, "master", `proc p write ip i as e return p`))
	_ = s.Add(compile(t, "dep", `proc p["%never.exe"] write ip i as e #time(1 min)
state ss { n := count(e) } group by p
alert ss.n > 100
return p`))
	if s.GroupCount() != 1 {
		t.Fatalf("groups = %d, want 1", s.GroupCount())
	}
	conn := event.NetConn("1.1.1.1", 1, "2.2.2.2", 2)
	for i := 0; i < 10; i++ {
		alerts := s.Process(&event.Event{
			Time:    base.Add(time.Duration(i) * 20 * time.Second),
			AgentID: "h", Subject: event.Process("x.exe", 1), Op: event.OpWrite, Object: conn, Amount: 10,
		})
		// The master (a plain rule query) alerts on every match; the
		// stateful dependent must stay silent but still observe the
		// watermark (no stuck windows, no panic).
		for _, a := range alerts {
			if a.Query == "dep" {
				t.Fatalf("dependent alerted: %v", a)
			}
		}
	}
	if got := s.Stats().Alerts; got != 10 {
		t.Errorf("master alerts = %d, want 10", got)
	}
}

func TestManyQueriesScale(t *testing.T) {
	// 64 variants in one family must form one group.
	s := New(nil, true)
	_ = s.Add(compile(t, "master", qAnyStart))
	for i := 0; i < 63; i++ {
		src := fmt.Sprintf(`proc p["%%cmd.exe"] start proc q2[pid > %d] as e return p, q2`, i)
		if err := s.Add(compile(t, fmt.Sprintf("v%d", i), src)); err != nil {
			t.Fatal(err)
		}
	}
	if s.GroupCount() != 1 {
		t.Errorf("groups = %d, want 1", s.GroupCount())
	}
	for _, ev := range startEvents() {
		s.Process(ev)
	}
	st := s.Stats()
	if st.SharingRatio() < 50 {
		t.Errorf("sharing ratio = %.1f, want ~64", st.SharingRatio())
	}
}
