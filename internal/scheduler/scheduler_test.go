package scheduler

import (
	"fmt"
	"testing"
	"time"

	"saql/internal/engine"
	"saql/internal/event"
)

var base = time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)

func compile(t *testing.T, name, src string) *engine.Query {
	t.Helper()
	q, err := engine.Compile(name, src, engine.CompileOptions{})
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return q
}

// Compatible query family: same pattern structure, increasingly strict
// constraints. q0 (no constraint) subsumes q1 subsumes q2.
const (
	qAnyStart = `proc p start proc q2 as e return p, q2`
	qCmdStart = `proc p["%cmd.exe"] start proc q2 as e return p, q2`
	qCmdOsql  = `proc p["%cmd.exe"] start proc q2["%osql.exe"] as e return p, q2`
	qWriteIP  = `proc p write ip i as e return p`
)

func TestGroupingBySubsumption(t *testing.T) {
	s := New(nil, true)
	if err := s.Add(compile(t, "strict", qCmdOsql)); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(compile(t, "mid", qCmdStart)); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(compile(t, "weak", qAnyStart)); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(compile(t, "other", qWriteIP)); err != nil {
		t.Fatal(err)
	}
	if s.GroupCount() != 2 {
		t.Fatalf("groups = %d, want 2 (start-family + write-ip)", s.GroupCount())
	}
	groups := s.Groups()
	deps, ok := groups["weak"]
	if !ok {
		t.Fatalf("weakest query should be master: %v", groups)
	}
	if len(deps) != 2 {
		t.Errorf("dependents = %v, want strict+mid", deps)
	}
}

func TestMasterPromotion(t *testing.T) {
	s := New(nil, true)
	_ = s.Add(compile(t, "strict", qCmdOsql))
	// Weaker query arrives later: must take over as master.
	_ = s.Add(compile(t, "weak", qAnyStart))
	groups := s.Groups()
	if _, ok := groups["weak"]; !ok {
		t.Fatalf("weak should be master: %v", groups)
	}
}

func TestSharingProducesSameAlerts(t *testing.T) {
	events := startEvents()

	shared := New(nil, true)
	_ = shared.Add(compile(t, "weak", qAnyStart))
	_ = shared.Add(compile(t, "mid", qCmdStart))
	_ = shared.Add(compile(t, "strict", qCmdOsql))

	solo := New(nil, false)
	_ = solo.Add(compile(t, "weak", qAnyStart))
	_ = solo.Add(compile(t, "mid", qCmdStart))
	_ = solo.Add(compile(t, "strict", qCmdOsql))

	countByQuery := func(s *Scheduler) map[string]int {
		got := map[string]int{}
		for _, ev := range events {
			for _, a := range s.Process(ev) {
				got[a.Query]++
			}
		}
		for _, a := range s.Flush() {
			got[a.Query]++
		}
		return got
	}
	a, b := countByQuery(shared), countByQuery(solo)
	for k := range a {
		if a[k] != b[k] {
			t.Errorf("query %s: shared=%d solo=%d", k, a[k], b[k])
		}
	}
	if a["weak"] == 0 || a["strict"] == 0 {
		t.Errorf("expected alerts from both ends of the family: %v", a)
	}
	// Stricter queries must alert on a subset.
	if !(a["weak"] >= a["mid"] && a["mid"] >= a["strict"]) {
		t.Errorf("subsumption violated in alert counts: %v", a)
	}
}

func startEvents() []*event.Event {
	var out []*event.Event
	procs := []struct {
		parent, child string
	}{
		{"cmd.exe", "osql.exe"},
		{"cmd.exe", "ping.exe"},
		{"explorer.exe", "notepad.exe"},
		{"cmd.exe", "osql.exe"},
		{"bash", "ls"},
	}
	for i, pc := range procs {
		out = append(out, &event.Event{
			Time:    base.Add(time.Duration(i) * time.Second),
			AgentID: "h1",
			Subject: event.Process(pc.parent, int32(100+i)),
			Op:      event.OpStart,
			Object:  event.Process(pc.child, int32(200+i)),
		})
	}
	return out
}

func TestCopyAccounting(t *testing.T) {
	s := New(nil, true)
	_ = s.Add(compile(t, "weak", qAnyStart))
	_ = s.Add(compile(t, "mid", qCmdStart))
	_ = s.Add(compile(t, "strict", qCmdOsql))
	evs := startEvents()
	// Non-matching noise: dependents never see these events at all — only
	// the master evaluates them. This is where the scheme saves CPU.
	for i := 0; i < 5; i++ {
		evs = append(evs, &event.Event{
			Time:    base.Add(time.Duration(10+i) * time.Second),
			AgentID: "h1",
			Subject: event.Process("svchost.exe", 9),
			Op:      event.OpWrite,
			Object:  event.File(`C:\Windows\log`),
		})
	}
	for _, ev := range evs {
		s.Process(ev)
	}
	st := s.Stats()
	if st.Events != 10 {
		t.Errorf("events = %d", st.Events)
	}
	// One group: copies = events; naive = 3× events.
	if st.StreamCopies != 10 || st.NaiveCopies != 30 {
		t.Errorf("copies = %d/%d, want 10/30", st.StreamCopies, st.NaiveCopies)
	}
	if got := st.SharingRatio(); got != 3 {
		t.Errorf("sharing ratio = %v, want 3", got)
	}
	// Dependents evaluate patterns only on master hits, so pattern evals
	// must be below the naive count: master 10 + 2 deps × 5 hits = 20 < 30.
	if st.PatternEvals >= st.NaivePatternEvals {
		t.Errorf("pattern evals = %d, naive = %d: no saving", st.PatternEvals, st.NaivePatternEvals)
	}
}

// Sharing stats must count only active queries, consistently across
// NaiveCopies, StreamCopies, and NaivePatternEvals: pausing half a group
// must not inflate SharingRatio.
func TestPausedStatsConsistency(t *testing.T) {
	s := New(nil, true)
	_ = s.Add(compile(t, "weak", qAnyStart))
	_ = s.Add(compile(t, "mid", qCmdStart))
	_ = s.Add(compile(t, "strict", qCmdOsql))
	evs := startEvents() // 5 events, all matching the master

	if !s.SetPaused("mid", true) {
		t.Fatal("pause mid failed")
	}
	for _, ev := range evs {
		s.Process(ev)
	}
	st := s.Stats()
	// 2 of 3 queries active: naive copies count exactly those.
	if st.NaiveCopies != 2*int64(len(evs)) {
		t.Errorf("NaiveCopies = %d, want %d", st.NaiveCopies, 2*len(evs))
	}
	if st.StreamCopies != int64(len(evs)) {
		t.Errorf("StreamCopies = %d, want %d", st.StreamCopies, len(evs))
	}
	if got := st.SharingRatio(); got != 2 {
		t.Errorf("SharingRatio = %v, want 2 (paused query must not count)", got)
	}
	// Each query has 1 pattern: naive = active queries × events.
	if st.NaivePatternEvals != 2*int64(len(evs)) {
		t.Errorf("NaivePatternEvals = %d, want %d", st.NaivePatternEvals, 2*len(evs))
	}

	// Fully pausing the group freezes every sharing counter.
	for _, name := range []string{"weak", "strict"} {
		if !s.SetPaused(name, true) {
			t.Fatalf("pause %s failed", name)
		}
	}
	for _, ev := range evs {
		s.Process(ev)
	}
	st2 := s.Stats()
	if st2.NaiveCopies != st.NaiveCopies || st2.StreamCopies != st.StreamCopies ||
		st2.PatternEvals != st.PatternEvals || st2.NaivePatternEvals != st.NaivePatternEvals {
		t.Errorf("fully paused group still counted: %+v -> %+v", st, st2)
	}
	if st2.Events != 2*int64(len(evs)) {
		t.Errorf("Events = %d, want %d", st2.Events, 2*len(evs))
	}
}

// A paused master still evaluates patterns for its active dependents, and
// the naive baseline then counts only the dependents.
func TestPausedMasterStillFeedsDependents(t *testing.T) {
	s := New(nil, true)
	_ = s.Add(compile(t, "weak", qAnyStart))
	_ = s.Add(compile(t, "strict", qCmdOsql))
	_ = s.SetPaused("weak", true)
	evs := startEvents()
	var strictAlerts, weakAlerts int
	for _, ev := range evs {
		for _, a := range s.Process(ev) {
			switch a.Query {
			case "strict":
				strictAlerts++
			case "weak":
				weakAlerts++
			}
		}
	}
	if weakAlerts != 0 {
		t.Errorf("paused master alerted %d times", weakAlerts)
	}
	if strictAlerts != 2 {
		t.Errorf("dependent alerts = %d, want 2 (cmd->osql pairs)", strictAlerts)
	}
	st := s.Stats()
	if st.NaiveCopies != int64(len(evs)) {
		t.Errorf("NaiveCopies = %d, want %d (only the dependent is active)", st.NaiveCopies, len(evs))
	}
	// The master's pattern work is real and still counted.
	if st.PatternEvals < int64(len(evs)) {
		t.Errorf("PatternEvals = %d, want >= %d", st.PatternEvals, len(evs))
	}
}

// Evaluate + ProcessWithHits across replica schedulers must be
// alert-for-alert identical to serial Process, with pattern evaluation
// counted only on the evaluating side.
func TestEvaluateProcessWithHitsEquivalence(t *testing.T) {
	mk := func() *Scheduler {
		s := New(nil, true)
		_ = s.Add(compile(t, "weak", qAnyStart))
		_ = s.Add(compile(t, "mid", qCmdStart))
		_ = s.Add(compile(t, "strict", qCmdOsql))
		_ = s.Add(compile(t, "other", qWriteIP))
		return s
	}
	serial, evalSide, ingestSide := mk(), mk(), mk()

	got := map[string]int{}
	want := map[string]int{}
	for _, ev := range startEvents() {
		for _, a := range serial.Process(ev) {
			want[a.Query]++
		}
		hs := evalSide.Evaluate(ev)
		for _, a := range ingestSide.ProcessWithHits(ev, hs) {
			got[a.Query]++
		}
	}
	if len(want) == 0 {
		t.Fatal("serial run produced no alerts")
	}
	for k := range want {
		if got[k] != want[k] {
			t.Errorf("query %s: split=%d serial=%d", k, got[k], want[k])
		}
	}
	es, is := evalSide.Stats(), ingestSide.Stats()
	if es.PatternEvals != serial.Stats().PatternEvals {
		t.Errorf("eval-side PatternEvals = %d, serial = %d", es.PatternEvals, serial.Stats().PatternEvals)
	}
	if is.PatternEvals != 0 {
		t.Errorf("ingest-side PatternEvals = %d, want 0", is.PatternEvals)
	}
}

// A registry change between Evaluate and a later event re-stamps the
// layout; hit sets computed under the old layout must still resolve
// correctly on a consumer that applied the same change.
func TestHitSetLayoutVersioning(t *testing.T) {
	evalSide := New(nil, true)
	ingestSide := New(nil, true)
	for _, s := range []*Scheduler{evalSide, ingestSide} {
		_ = s.Add(compile(t, "weak", qAnyStart))
		_ = s.Add(compile(t, "strict", qCmdOsql))
	}
	evs := startEvents()
	hs1 := evalSide.Evaluate(evs[0])
	if hs1 == nil || hs1.Layout == nil {
		t.Fatal("no hits for a matching event")
	}
	v1 := hs1.Layout.Version

	// Swap strict for a different residual constraint on both sides.
	repl := compile(t, "strict", qCmdStart)
	if err := evalSide.Swap("strict", repl, false); err != nil {
		t.Fatal(err)
	}
	repl2 := compile(t, "strict", qCmdStart)
	if err := ingestSide.Swap("strict", repl2, false); err != nil {
		t.Fatal(err)
	}
	hs2 := evalSide.Evaluate(evs[0])
	if hs2 == nil || hs2.Layout.Version <= v1 {
		t.Fatalf("layout version not bumped by swap: %v -> %v", v1, hs2.Layout.Version)
	}
	if hs2.Layout == hs1.Layout {
		t.Fatal("swap must produce a fresh layout")
	}
	// The consumer resolves against whichever layout each HitSet carries.
	if alerts := ingestSide.ProcessWithHits(evs[0], hs2); len(alerts) != 2 {
		t.Errorf("alerts after swap = %d, want 2 (weak + swapped strict)", len(alerts))
	}
}

func TestNoSharingMode(t *testing.T) {
	s := New(nil, false)
	_ = s.Add(compile(t, "a", qAnyStart))
	_ = s.Add(compile(t, "b", qCmdStart))
	if s.GroupCount() != 2 {
		t.Errorf("groups = %d, want 2 without sharing", s.GroupCount())
	}
	st := s.Stats()
	_ = st
	for _, ev := range startEvents() {
		s.Process(ev)
	}
	st = s.Stats()
	if st.StreamCopies != st.NaiveCopies {
		t.Errorf("no-sharing copies %d != naive %d", st.StreamCopies, st.NaiveCopies)
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	s := New(nil, true)
	_ = s.Add(compile(t, "a", qAnyStart))
	if err := s.Add(compile(t, "a", qCmdStart)); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestRemove(t *testing.T) {
	s := New(nil, true)
	_ = s.Add(compile(t, "weak", qAnyStart))
	_ = s.Add(compile(t, "strict", qCmdOsql))
	if !s.Remove("strict") {
		t.Fatal("remove dependent failed")
	}
	if s.QueryCount() != 1 || s.GroupCount() != 1 {
		t.Errorf("after remove: queries=%d groups=%d", s.QueryCount(), s.GroupCount())
	}
	// Removing the master re-groups survivors.
	_ = s.Add(compile(t, "strict", qCmdOsql))
	_ = s.Add(compile(t, "mid", qCmdStart))
	if !s.Remove("weak") {
		t.Fatal("remove master failed")
	}
	if s.QueryCount() != 2 {
		t.Errorf("queries = %d, want 2", s.QueryCount())
	}
	groups := s.Groups()
	if _, ok := groups["mid"]; !ok {
		t.Errorf("mid should be promoted master: %v", groups)
	}
	if s.Remove("nope") {
		t.Error("removing unknown query succeeded")
	}
}

func TestDependentWindowsAdvance(t *testing.T) {
	// A stateful dependent must close windows even when the master's hits
	// never match it.
	s := New(nil, true)
	_ = s.Add(compile(t, "master", `proc p write ip i as e return p`))
	_ = s.Add(compile(t, "dep", `proc p["%never.exe"] write ip i as e #time(1 min)
state ss { n := count(e) } group by p
alert ss.n > 100
return p`))
	if s.GroupCount() != 1 {
		t.Fatalf("groups = %d, want 1", s.GroupCount())
	}
	conn := event.NetConn("1.1.1.1", 1, "2.2.2.2", 2)
	for i := 0; i < 10; i++ {
		alerts := s.Process(&event.Event{
			Time:    base.Add(time.Duration(i) * 20 * time.Second),
			AgentID: "h", Subject: event.Process("x.exe", 1), Op: event.OpWrite, Object: conn, Amount: 10,
		})
		// The master (a plain rule query) alerts on every match; the
		// stateful dependent must stay silent but still observe the
		// watermark (no stuck windows, no panic).
		for _, a := range alerts {
			if a.Query == "dep" {
				t.Fatalf("dependent alerted: %v", a)
			}
		}
	}
	if got := s.Stats().Alerts; got != 10 {
		t.Errorf("master alerts = %d, want 10", got)
	}
}

func TestManyQueriesScale(t *testing.T) {
	// 64 variants in one family must form one group.
	s := New(nil, true)
	_ = s.Add(compile(t, "master", qAnyStart))
	for i := 0; i < 63; i++ {
		src := fmt.Sprintf(`proc p["%%cmd.exe"] start proc q2[pid > %d] as e return p, q2`, i)
		if err := s.Add(compile(t, fmt.Sprintf("v%d", i), src)); err != nil {
			t.Fatal(err)
		}
	}
	if s.GroupCount() != 1 {
		t.Errorf("groups = %d, want 1", s.GroupCount())
	}
	for _, ev := range startEvents() {
		s.Process(ev)
	}
	st := s.Stats()
	if st.SharingRatio() < 50 {
		t.Errorf("sharing ratio = %.1f, want ~64", st.SharingRatio())
	}
}
