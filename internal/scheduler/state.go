package scheduler

// Checkpoint support: state capture and restore ride the scheduler lock, so
// they happen between events — the same consistency point every other
// control operation (add/remove/swap/pause) uses. On the sharded runtime a
// checkpoint control envelope reaches each shard's scheduler through the
// ingest queue's total order, so every shard captures at the identical
// stream position.

import "fmt"

// CaptureStates encodes the runtime state of every registered query, keyed
// by query name, and reports how many events this scheduler had processed at
// the cut. It runs under the scheduler lock: the capture is a consistent cut
// between two events, and the event count is exact for that cut (the serial
// engine's stream offset).
func (s *Scheduler) CaptureStates() (map[string][]byte, int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]byte, len(s.queries))
	for name, q := range s.queries {
		blob, err := q.EncodeState()
		if err != nil {
			return nil, 0, fmt.Errorf("scheduler: capture %q: %w", name, err)
		}
		out[name] = blob
	}
	return out, s.stats.Events, nil
}

// RestoreQueryState folds one state blob into the registered query name.
// disjoint marks this scheduler as the single owner of the blob's global
// state (counters, distinct table, partial matches); group-keyed state is
// filtered by the query replica's own shard ownership. Unknown names report
// an error: restore plans are built from the same registry snapshot the
// blobs were captured from.
func (s *Scheduler) RestoreQueryState(name string, blob []byte, disjoint bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queries[name]
	if !ok {
		return fmt.Errorf("scheduler: restore: unknown query %q", name)
	}
	return q.RestoreState(blob, disjoint)
}
