// Package cluster implements the clustering algorithms behind SAQL's
// outlier-based anomaly model: DBSCAN (the method used by the paper's
// Query 4) and k-means as an ablation alternative, over arbitrary-dimension
// points with pluggable distance metrics (euclidean "ed", manhattan "md",
// chebyshev "cd", cosine "cos").
package cluster

import (
	"fmt"
	"math"
)

// Distance computes the distance between two points of equal dimension.
type Distance func(a, b []float64) float64

// Euclidean is the L2 distance ("ed" in SAQL cluster specs).
func Euclidean(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Manhattan is the L1 distance ("md").
func Manhattan(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// Chebyshev is the L∞ distance ("cd").
func Chebyshev(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// Cosine is the cosine distance 1 - cos(a, b) ("cos"). Zero vectors are at
// distance 1 from everything except another zero vector.
func Cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 && nb == 0 {
		return 0
	}
	if na == 0 || nb == 0 {
		return 1
	}
	c := dot / (math.Sqrt(na) * math.Sqrt(nb))
	// Clamp for floating error.
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return 1 - c
}

// ByName resolves a SAQL distance name to a Distance.
func ByName(name string) (Distance, error) {
	switch name {
	case "ed", "euclidean":
		return Euclidean, nil
	case "md", "manhattan":
		return Manhattan, nil
	case "cd", "chebyshev":
		return Chebyshev, nil
	case "cos", "cosine":
		return Cosine, nil
	default:
		return nil, fmt.Errorf("cluster: unknown distance %q", name)
	}
}

// Noise is the label DBSCAN assigns to outlier points.
const Noise = -1

// Result labels each input point. Labels[i] is the cluster id of point i
// (>= 0) or Noise. Outlier[i] is the SAQL-facing outlier flag.
type Result struct {
	Labels   []int
	Outlier  []bool
	Clusters int // number of clusters found (excluding noise)
}

// Size returns the number of points in cluster label (0 for Noise queries
// use the Outlier slice instead).
func (r *Result) Size(label int) int {
	n := 0
	for _, l := range r.Labels {
		if l == label {
			n++
		}
	}
	return n
}

// DBSCAN clusters points with parameters eps (neighbourhood radius) and
// minPts (minimum neighbourhood size, inclusive of the point itself, to
// form a core point). Points labelled Noise are outliers.
//
// The implementation is the standard region-growing algorithm with an
// O(n²) neighbourhood scan, which is appropriate for the per-window group
// counts SAQL clusters (one point per group-by key, typically tens to a few
// thousands).
func DBSCAN(points [][]float64, eps float64, minPts int, dist Distance) (*Result, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("cluster: DBSCAN eps must be positive, got %g", eps)
	}
	if minPts < 1 {
		return nil, fmt.Errorf("cluster: DBSCAN minPts must be >= 1, got %d", minPts)
	}
	if dist == nil {
		dist = Euclidean
	}
	if err := checkDims(points); err != nil {
		return nil, err
	}
	n := len(points)
	const unvisited = -2
	labels := make([]int, n)
	for i := range labels {
		labels[i] = unvisited
	}

	neighbours := func(i int) []int {
		var out []int
		for j := 0; j < n; j++ {
			if dist(points[i], points[j]) <= eps {
				out = append(out, j)
			}
		}
		return out
	}

	cluster := 0
	for i := 0; i < n; i++ {
		if labels[i] != unvisited {
			continue
		}
		nb := neighbours(i)
		if len(nb) < minPts {
			labels[i] = Noise
			continue
		}
		// Start a new cluster and grow it.
		labels[i] = cluster
		queue := append([]int(nil), nb...)
		for len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			if labels[j] == Noise {
				labels[j] = cluster // border point
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = cluster
			jnb := neighbours(j)
			if len(jnb) >= minPts {
				queue = append(queue, jnb...)
			}
		}
		cluster++
	}

	out := &Result{Labels: labels, Outlier: make([]bool, n), Clusters: cluster}
	for i, l := range labels {
		out.Outlier[i] = l == Noise
	}
	return out, nil
}

// KMeans clusters points into k clusters using Lloyd's algorithm with
// deterministic farthest-first seeding, then flags as outliers the points
// whose distance to their centroid exceeds mean + 3·stddev of all such
// distances. It is provided as the ablation comparator for DBSCAN in the
// outlier-model experiments.
func KMeans(points [][]float64, k int, dist Distance) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("cluster: k must be >= 1, got %d", k)
	}
	if dist == nil {
		dist = Euclidean
	}
	if err := checkDims(points); err != nil {
		return nil, err
	}
	n := len(points)
	if n == 0 {
		return &Result{}, nil
	}
	if k > n {
		k = n
	}
	dim := len(points[0])

	// Farthest-first seeding: deterministic and spread out.
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, append([]float64(nil), points[0]...))
	for len(centroids) < k {
		best, bestD := 0, -1.0
		for i, p := range points {
			d := math.Inf(1)
			for _, c := range centroids {
				if dd := dist(p, c); dd < d {
					d = dd
				}
			}
			if d > bestD {
				best, bestD = i, d
			}
		}
		centroids = append(centroids, append([]float64(nil), points[best]...))
	}

	labels := make([]int, n)
	for iter := 0; iter < 100; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, cen := range centroids {
				if d := dist(p, cen); d < bestD {
					best, bestD = c, d
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		sums := make([][]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range points {
			c := labels[i]
			counts[c]++
			for d := 0; d < dim; d++ {
				sums[c][d] += p[d]
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue
			}
			for d := 0; d < dim; d++ {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
		if !changed {
			break
		}
	}

	// Outliers: distance to own centroid > mean + 3σ.
	dists := make([]float64, n)
	var mean float64
	for i, p := range points {
		dists[i] = dist(p, centroids[labels[i]])
		mean += dists[i]
	}
	mean /= float64(n)
	var variance float64
	for _, d := range dists {
		variance += (d - mean) * (d - mean)
	}
	variance /= float64(n)
	sd := math.Sqrt(variance)

	out := &Result{Labels: labels, Outlier: make([]bool, n), Clusters: k}
	for i, d := range dists {
		out.Outlier[i] = sd > 0 && d > mean+3*sd
	}
	return out, nil
}

// Run dispatches by method name ("dbscan" or "kmeans") with the numeric
// parameters from the SAQL cluster spec.
func Run(method string, params []float64, points [][]float64, dist Distance) (*Result, error) {
	switch method {
	case "dbscan":
		if len(params) != 2 {
			return nil, fmt.Errorf("cluster: DBSCAN requires (eps, minPts)")
		}
		return DBSCAN(points, params[0], int(params[1]), dist)
	case "kmeans":
		if len(params) != 1 {
			return nil, fmt.Errorf("cluster: KMEANS requires (k)")
		}
		return KMeans(points, int(params[0]), dist)
	default:
		return nil, fmt.Errorf("cluster: unknown method %q", method)
	}
}

func checkDims(points [][]float64) error {
	if len(points) == 0 {
		return nil
	}
	dim := len(points[0])
	if dim == 0 {
		return fmt.Errorf("cluster: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return fmt.Errorf("cluster: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	return nil
}
