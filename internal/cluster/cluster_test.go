package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

func pts1d(vals ...float64) [][]float64 {
	out := make([][]float64, len(vals))
	for i, v := range vals {
		out[i] = []float64{v}
	}
	return out
}

func TestDistances(t *testing.T) {
	a, b := []float64{0, 0}, []float64{3, 4}
	if d := Euclidean(a, b); d != 5 {
		t.Errorf("euclidean = %v", d)
	}
	if d := Manhattan(a, b); d != 7 {
		t.Errorf("manhattan = %v", d)
	}
	if d := Chebyshev(a, b); d != 4 {
		t.Errorf("chebyshev = %v", d)
	}
	if d := Cosine([]float64{1, 0}, []float64{0, 1}); math.Abs(d-1) > 1e-12 {
		t.Errorf("cosine orthogonal = %v", d)
	}
	if d := Cosine([]float64{2, 2}, []float64{4, 4}); math.Abs(d) > 1e-12 {
		t.Errorf("cosine parallel = %v", d)
	}
	if d := Cosine([]float64{0, 0}, []float64{1, 1}); d != 1 {
		t.Errorf("cosine zero vector = %v", d)
	}
	if d := Cosine([]float64{0, 0}, []float64{0, 0}); d != 0 {
		t.Errorf("cosine both zero = %v", d)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"ed", "euclidean", "md", "manhattan", "cd", "chebyshev", "cos", "cosine"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("hamming"); err == nil {
		t.Error("unknown distance should fail")
	}
}

func TestDBSCANOutlier(t *testing.T) {
	// Paper Query 4 shape: peer IPs transfer ~50KB; one transfers 50MB.
	points := pts1d(50000, 50100, 50200, 49900, 50050, 5e7)
	res, err := DBSCAN(points, 100000, 3, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 1 {
		t.Errorf("clusters = %d, want 1", res.Clusters)
	}
	for i := 0; i < 5; i++ {
		if res.Outlier[i] {
			t.Errorf("point %d wrongly flagged", i)
		}
	}
	if !res.Outlier[5] {
		t.Error("exfiltration point not flagged")
	}
	if res.Labels[5] != Noise {
		t.Errorf("outlier label = %d, want Noise", res.Labels[5])
	}
	if res.Size(0) != 5 {
		t.Errorf("cluster 0 size = %d", res.Size(0))
	}
}

func TestDBSCANTwoClusters(t *testing.T) {
	points := pts1d(1, 2, 3, 100, 101, 102, 500)
	res, err := DBSCAN(points, 5, 2, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 2 {
		t.Errorf("clusters = %d, want 2", res.Clusters)
	}
	if res.Labels[0] == res.Labels[3] {
		t.Error("separate clusters merged")
	}
	if !res.Outlier[6] {
		t.Error("isolated point not noise")
	}
}

func TestDBSCANBorderPoint(t *testing.T) {
	// 0 and 2 are within eps of 1; 1 is core (3 neighbours incl. itself).
	// 0 and 2 are border points: assigned to the cluster, not noise.
	points := pts1d(0, 1, 2)
	res, err := DBSCAN(points, 1, 3, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outlier {
		if o {
			t.Errorf("point %d flagged, want all clustered", i)
		}
	}
}

func TestDBSCANAllNoise(t *testing.T) {
	points := pts1d(0, 100, 200, 300)
	res, err := DBSCAN(points, 1, 2, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 0 {
		t.Errorf("clusters = %d", res.Clusters)
	}
	for i, o := range res.Outlier {
		if !o {
			t.Errorf("point %d not noise", i)
		}
	}
}

func TestDBSCANValidation(t *testing.T) {
	if _, err := DBSCAN(pts1d(1), 0, 1, nil); err == nil {
		t.Error("eps=0 should fail")
	}
	if _, err := DBSCAN(pts1d(1), 1, 0, nil); err == nil {
		t.Error("minPts=0 should fail")
	}
	if _, err := DBSCAN([][]float64{{1}, {1, 2}}, 1, 1, nil); err == nil {
		t.Error("ragged dimensions should fail")
	}
	res, err := DBSCAN(nil, 1, 1, nil)
	if err != nil || len(res.Labels) != 0 {
		t.Errorf("empty input: %v %v", res, err)
	}
}

func TestKMeansBasic(t *testing.T) {
	points := pts1d(1, 2, 3, 100, 101, 102)
	res, err := KMeans(points, 2, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[0] != res.Labels[1] || res.Labels[0] != res.Labels[2] {
		t.Error("low cluster split")
	}
	if res.Labels[3] != res.Labels[4] || res.Labels[3] != res.Labels[5] {
		t.Error("high cluster split")
	}
	if res.Labels[0] == res.Labels[3] {
		t.Error("clusters merged")
	}
}

func TestKMeansKClamp(t *testing.T) {
	res, err := KMeans(pts1d(1, 2), 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != 2 {
		t.Errorf("labels = %v", res.Labels)
	}
	if _, err := KMeans(pts1d(1), 0, nil); err == nil {
		t.Error("k=0 should fail")
	}
	empty, err := KMeans(nil, 2, nil)
	if err != nil || len(empty.Labels) != 0 {
		t.Errorf("empty kmeans: %v %v", empty, err)
	}
}

func TestRunDispatch(t *testing.T) {
	if _, err := Run("dbscan", []float64{10, 2}, pts1d(1, 2, 3), nil); err != nil {
		t.Errorf("dbscan dispatch: %v", err)
	}
	if _, err := Run("kmeans", []float64{2}, pts1d(1, 2, 3), nil); err != nil {
		t.Errorf("kmeans dispatch: %v", err)
	}
	if _, err := Run("dbscan", []float64{10}, pts1d(1), nil); err == nil {
		t.Error("dbscan with 1 param should fail")
	}
	if _, err := Run("kmeans", nil, pts1d(1), nil); err == nil {
		t.Error("kmeans without params should fail")
	}
	if _, err := Run("spectral", nil, pts1d(1), nil); err == nil {
		t.Error("unknown method should fail")
	}
}

// Property: DBSCAN labels are a partition — every point is either noise or
// in a cluster in [0, Clusters); and core points are never noise when they
// have >= minPts neighbours.
func TestDBSCANLabelRangeProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 || len(raw) > 200 {
			return true
		}
		points := make([][]float64, len(raw))
		for i, r := range raw {
			points[i] = []float64{float64(r)}
		}
		res, err := DBSCAN(points, 10, 3, Euclidean)
		if err != nil {
			return false
		}
		for i, l := range res.Labels {
			if l == Noise {
				if !res.Outlier[i] {
					return false
				}
				continue
			}
			if l < 0 || l >= res.Clusters || res.Outlier[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: distances are symmetric and non-negative.
func TestDistanceProperties(t *testing.T) {
	dists := []Distance{Euclidean, Manhattan, Chebyshev, Cosine}
	f := func(a, b [4]int8) bool {
		av := []float64{float64(a[0]), float64(a[1]), float64(a[2]), float64(a[3])}
		bv := []float64{float64(b[0]), float64(b[1]), float64(b[2]), float64(b[3])}
		for _, d := range dists {
			ab, ba := d(av, bv), d(bv, av)
			if ab < -1e-12 || math.Abs(ab-ba) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
