// Package matcher implements the multievent matcher of the SAQL engine: it
// compiles event patterns into fast predicates and matches the event stream
// against multi-pattern rule queries, enforcing per-pattern attribute
// constraints, global constraints, cross-pattern entity joins (the same
// variable bound in several patterns must denote the same entity), and the
// temporal order required by the `with evt1 -> evt2` clause.
package matcher

import (
	"fmt"
	"sync/atomic"
	"time"

	"saql/internal/ast"
	"saql/internal/event"
	"saql/internal/pcode"
	"saql/internal/value"
)

// EntityPred is a compiled predicate over an entity.
type EntityPred func(*event.Entity) bool

// CompileEntityPattern compiles an entity pattern (type + constraints) into
// a predicate.
func CompileEntityPattern(p *ast.EntityPattern) (EntityPred, error) {
	typ := p.Type
	type check struct {
		attr string // "" = default attribute
		op   ast.CompareOp
		val  value.Value
	}
	checks := make([]check, 0, len(p.Constraints))
	for _, c := range p.Constraints {
		checks = append(checks, check{attr: c.Attr, op: c.Op, val: c.Val.Val})
	}
	return func(e *event.Entity) bool {
		if e.Type != typ {
			return false
		}
		for _, c := range checks {
			var got value.Value
			if c.attr == "" {
				got = value.String(e.DefaultAttr())
			} else {
				v, ok := e.Attr(c.attr)
				if !ok {
					return false
				}
				got = v
			}
			if !compare(got, c.op, c.val) {
				return false
			}
		}
		return true
	}, nil
}

// compare applies a constraint comparison, with % wildcards on string
// equality (SQL-LIKE semantics, as in ["%osql.exe"]).
func compare(got value.Value, op ast.CompareOp, want value.Value) bool {
	switch op {
	case ast.CmpEq, ast.CmpNe:
		var eq bool
		if got.Kind() == value.KindString && want.Kind() == value.KindString {
			eq = value.WildcardMatch(want.Str(), got.Str())
		} else {
			eq = got.Equal(want)
		}
		if op == ast.CmpNe {
			return !eq
		}
		return eq
	default:
		c, err := got.Compare(want)
		if err != nil {
			return false
		}
		switch op {
		case ast.CmpLt:
			return c < 0
		case ast.CmpLe:
			return c <= 0
		case ast.CmpGt:
			return c > 0
		case ast.CmpGe:
			return c >= 0
		}
		return false
	}
}

// GlobalPred is a compiled predicate over a whole event (global constraints
// such as agentid = "db-1").
type GlobalPred func(*event.Event) bool

// CompileGlobalsWith compiles the query's global constraints, preferring a
// pcode program over the interpreting closure unless interpret forces the
// tree-walking path (the A/B baseline and differential tests). fb receives
// string-fallback counts; nil selects the process-wide counter.
func CompileGlobalsWith(globals []*ast.Constraint, interpret bool, fb *atomic.Int64) GlobalPred {
	if !interpret && len(globals) > 0 {
		if prog := pcode.CompileGlobals(globals, fb); prog != nil {
			return prog.Match
		}
	}
	return CompileGlobals(globals)
}

// CompileGlobals compiles the query's global constraints.
func CompileGlobals(globals []*ast.Constraint) GlobalPred {
	if len(globals) == 0 {
		return func(*event.Event) bool { return true }
	}
	type check struct {
		attr string
		op   ast.CompareOp
		val  value.Value
	}
	checks := make([]check, 0, len(globals))
	for _, g := range globals {
		checks = append(checks, check{attr: g.Attr, op: g.Op, val: g.Val.Val})
	}
	return func(ev *event.Event) bool {
		for _, c := range checks {
			got, ok := ev.Attr(c.attr)
			if !ok {
				return false
			}
			if !compare(got, c.op, c.val) {
				return false
			}
		}
		return true
	}
}

// Pattern is a compiled event pattern.
type Pattern struct {
	Index    int
	Alias    string
	SubjVar  string
	ObjVar   string
	ops      map[event.Op]bool
	subjPred EntityPred
	objPred  EntityPred

	// Compiled fast path: when opsMask is non-zero the operation check is a
	// bit test, and the pcode programs (when compilable) replace the
	// interpreting closures. All nil/zero under CompileOptions.Interpret,
	// which pins the pre-compilation evaluation path.
	opsMask  uint32
	fastSubj *pcode.EntityProg
	fastObj  *pcode.EntityProg
}

// Compile compiles an AST event pattern to the interpreting predicates.
func Compile(idx int, p *ast.EventPattern) (*Pattern, error) {
	sp, err := CompileEntityPattern(p.Subject)
	if err != nil {
		return nil, err
	}
	op, err := CompileEntityPattern(p.Object)
	if err != nil {
		return nil, err
	}
	ops := make(map[event.Op]bool, len(p.Ops))
	for _, o := range p.Ops {
		ops[o] = true
	}
	return &Pattern{
		Index:    idx,
		Alias:    p.Alias,
		SubjVar:  p.Subject.Var,
		ObjVar:   p.Object.Var,
		ops:      ops,
		subjPred: sp,
		objPred:  op,
	}, nil
}

// CompileWith compiles an AST event pattern, additionally attaching the
// pcode fast path unless interpret is set. The interpreting closures are
// always built too: they are the fallback for constraint shapes pcode
// declines, and the reference path for differential testing. fb receives
// string-fallback counts; nil selects the process-wide counter.
func CompileWith(idx int, p *ast.EventPattern, interpret bool, fb *atomic.Int64) (*Pattern, error) {
	cp, err := Compile(idx, p)
	if err != nil || interpret {
		return cp, err
	}
	var mask uint32
	for _, o := range p.Ops {
		mask |= 1 << uint(o)
	}
	cp.opsMask = mask
	cp.fastSubj = pcode.CompileEntity(p.Subject, fb)
	cp.fastObj = pcode.CompileEntity(p.Object, fb)
	return cp, nil
}

// Matches reports whether ev satisfies the pattern's operation set and both
// entity predicates.
//
//saql:hotpath
func (p *Pattern) Matches(ev *event.Event) bool {
	if p.opsMask != 0 {
		if p.opsMask&(1<<uint(ev.Op)) == 0 {
			return false
		}
		if p.fastSubj != nil {
			if !p.fastSubj.Match(&ev.Subject) {
				return false
			}
		} else if !p.subjPred(&ev.Subject) {
			return false
		}
		if p.fastObj != nil {
			return p.fastObj.Match(&ev.Object)
		}
		return p.objPred(&ev.Object)
	}
	if !p.ops[ev.Op] {
		return false
	}
	return p.subjPred(&ev.Subject) && p.objPred(&ev.Object)
}

// Match is a completed multi-pattern match: one event per pattern plus the
// consistent entity bindings.
type Match struct {
	Events   []*event.Event           // indexed by pattern index
	Entities map[string]*event.Entity // var -> entity
	At       time.Time                // time of the completing event
}

// partial is an in-flight multi-pattern match.
type partial struct {
	events   []*event.Event
	bindings map[string]string // var -> entity key
	matched  int               // bitmask of matched pattern indices
	nOrdered int               // how many of the ordered patterns are matched
	lastTime time.Time
	created  time.Time
}

// SeqMatcher matches a conjunction of patterns with optional temporal
// ordering over a subset of them, maintaining a bounded partial-match table.
type SeqMatcher struct {
	patterns []*Pattern
	global   GlobalPred
	// orderPos[i] = position of pattern i in the temporal order, or -1.
	orderPos []int
	nOrdered int
	horizon  time.Duration // partial matches older than this expire
	maxPart  int           // cap on live partials

	partials []*partial

	// Stats.
	Expired int64 // partials dropped by horizon
	Dropped int64 // partials dropped by capacity
}

// Config bounds the matcher's partial-match table.
type Config struct {
	// Horizon is the maximum age of a partial match; zero means 10 minutes.
	Horizon time.Duration
	// MaxPartials caps the number of live partial matches; zero means 4096.
	MaxPartials int
}

// NewSeqMatcher builds a sequence matcher for the compiled patterns.
// temporalOrder lists pattern indices that must occur in time order (may be
// empty for an unordered conjunctive match).
func NewSeqMatcher(patterns []*Pattern, global GlobalPred, temporalOrder []int, cfg Config) (*SeqMatcher, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("matcher: no patterns")
	}
	if len(patterns) > 63 {
		return nil, fmt.Errorf("matcher: too many patterns (%d > 63)", len(patterns))
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 10 * time.Minute
	}
	if cfg.MaxPartials <= 0 {
		cfg.MaxPartials = 4096
	}
	orderPos := make([]int, len(patterns))
	for i := range orderPos {
		orderPos[i] = -1
	}
	for pos, idx := range temporalOrder {
		if idx < 0 || idx >= len(patterns) {
			return nil, fmt.Errorf("matcher: temporal order references pattern %d of %d", idx, len(patterns))
		}
		if orderPos[idx] != -1 {
			return nil, fmt.Errorf("matcher: pattern %d appears twice in temporal order", idx)
		}
		orderPos[idx] = pos
	}
	if global == nil {
		global = func(*event.Event) bool { return true }
	}
	return &SeqMatcher{
		patterns: patterns,
		global:   global,
		orderPos: orderPos,
		nOrdered: len(temporalOrder),
		horizon:  cfg.Horizon,
		maxPart:  cfg.MaxPartials,
	}, nil
}

// Patterns returns the compiled patterns.
func (m *SeqMatcher) Patterns() []*Pattern { return m.patterns }

// PartialCount reports the live partial-match table size.
func (m *SeqMatcher) PartialCount() int { return len(m.partials) }

// Observe feeds one event and returns any completed matches.
func (m *SeqMatcher) Observe(ev *event.Event) []*Match {
	if !m.global(ev) {
		return nil
	}

	// Which patterns does this event satisfy?
	var hits []int
	for i, p := range m.patterns {
		if p.Matches(ev) {
			hits = append(hits, i)
		}
	}
	return m.ObserveHits(ev, hits)
}

// ObserveHits is Observe with the pattern-hit set precomputed — the entry
// point used by the master–dependent-query scheme, where the master query
// evaluates the patterns once and dependents reuse the hit set.
func (m *SeqMatcher) ObserveHits(ev *event.Event, hits []int) []*Match {
	if len(hits) == 0 {
		return nil
	}

	// Single-pattern queries complete immediately.
	if len(m.patterns) == 1 {
		p := m.patterns[0]
		match := &Match{Events: []*event.Event{ev}, Entities: map[string]*event.Entity{}, At: ev.Time}
		bindEntities(match.Entities, p, ev)
		return []*Match{match}
	}

	m.expire(ev.Time)

	var complete []*Match
	var created []*partial
	for _, hit := range hits {
		bit := 1 << uint(hit)
		// Try to extend existing partials.
		for _, pt := range m.partials {
			if pt.matched&bit != 0 {
				continue // pattern already matched in this partial
			}
			if !m.orderAllows(pt, hit) {
				continue
			}
			if !bindingsCompatible(pt.bindings, m.patterns[hit], ev) {
				continue
			}
			np := m.extend(pt, hit, ev)
			if np.matched == (1<<uint(len(m.patterns)))-1 {
				complete = append(complete, m.finish(np))
			} else {
				created = append(created, np)
			}
		}
		// Seed a fresh partial if this pattern can start one (unordered
		// patterns always can; ordered ones only from position 0).
		if m.orderPos[hit] <= 0 {
			np := m.extend(&partial{
				bindings: map[string]string{},
				events:   make([]*event.Event, len(m.patterns)),
				created:  ev.Time,
			}, hit, ev)
			if np.matched == (1<<uint(len(m.patterns)))-1 {
				complete = append(complete, m.finish(np))
			} else {
				created = append(created, np)
			}
		}
	}

	// Admit new partials under the capacity cap.
	for _, np := range created {
		if len(m.partials) >= m.maxPart {
			m.Dropped++
			continue
		}
		m.partials = append(m.partials, np)
	}
	return complete
}

// orderAllows checks whether pattern idx may match now given the temporal
// positions already filled in pt.
func (m *SeqMatcher) orderAllows(pt *partial, idx int) bool {
	pos := m.orderPos[idx]
	if pos == -1 {
		return true // unordered pattern
	}
	return pos == pt.nOrdered // next required position
}

func (m *SeqMatcher) extend(pt *partial, idx int, ev *event.Event) *partial {
	np := &partial{
		events:   make([]*event.Event, len(m.patterns)),
		bindings: make(map[string]string, len(pt.bindings)+2),
		matched:  pt.matched | 1<<uint(idx),
		nOrdered: pt.nOrdered,
		lastTime: ev.Time,
		created:  pt.created,
	}
	copy(np.events, pt.events)
	for k, v := range pt.bindings {
		np.bindings[k] = v
	}
	np.events[idx] = ev
	p := m.patterns[idx]
	if p.SubjVar != "" {
		np.bindings[p.SubjVar] = ev.Subject.Key()
	}
	if p.ObjVar != "" {
		np.bindings[p.ObjVar] = ev.Object.Key()
	}
	if m.orderPos[idx] != -1 {
		np.nOrdered++
	}
	return np
}

func (m *SeqMatcher) finish(pt *partial) *Match {
	match := &Match{
		Events:   pt.events,
		Entities: map[string]*event.Entity{},
		At:       pt.lastTime,
	}
	for i, ev := range pt.events {
		if ev == nil {
			continue
		}
		bindEntities(match.Entities, m.patterns[i], ev)
	}
	return match
}

func bindEntities(dst map[string]*event.Entity, p *Pattern, ev *event.Event) {
	if p.SubjVar != "" {
		s := ev.Subject
		dst[p.SubjVar] = &s
	}
	if p.ObjVar != "" {
		o := ev.Object
		dst[p.ObjVar] = &o
	}
}

// bindingsCompatible verifies that binding the event's entities into the
// partial would not conflict with existing bindings (entity join).
func bindingsCompatible(bindings map[string]string, p *Pattern, ev *event.Event) bool {
	if p.SubjVar != "" {
		if key, ok := bindings[p.SubjVar]; ok && key != ev.Subject.Key() {
			return false
		}
	}
	if p.ObjVar != "" {
		if key, ok := bindings[p.ObjVar]; ok && key != ev.Object.Key() {
			return false
		}
	}
	return true
}

// expire drops partials older than the horizon.
func (m *SeqMatcher) expire(now time.Time) {
	cutoff := now.Add(-m.horizon)
	kept := m.partials[:0]
	for _, pt := range m.partials {
		if pt.created.Before(cutoff) {
			m.Expired++
			continue
		}
		kept = append(kept, pt)
	}
	m.partials = kept
}
