package matcher

import (
	"fmt"
	"testing"
	"time"

	"saql/internal/ast"
	"saql/internal/event"
	"saql/internal/parser"
)

var base = time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)

// patternsOf compiles the patterns of a parsed query.
func patternsOf(t *testing.T, src string) ([]*Pattern, *ast.Query) {
	t.Helper()
	q, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var out []*Pattern
	for i, p := range q.Patterns {
		cp, err := Compile(i, p)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, cp)
	}
	return out, q
}

func TestEntityPatternPredicates(t *testing.T) {
	pats, _ := patternsOf(t, `proc p["%osql.exe", pid > 100] write file f["%.dmp"] return p`)
	p := pats[0]

	good := &event.Event{
		Subject: event.Process(`C:\tools\osql.exe`, 500),
		Op:      event.OpWrite,
		Object:  event.File(`C:\db\x.dmp`),
	}
	if !p.Matches(good) {
		t.Error("matching event rejected")
	}
	badPID := *good
	badPID.Subject = event.Process("osql.exe", 50)
	if p.Matches(&badPID) {
		t.Error("pid constraint ignored")
	}
	badExe := *good
	badExe.Subject = event.Process("sqlcmd.exe", 500)
	if p.Matches(&badExe) {
		t.Error("exe wildcard ignored")
	}
	badOp := *good
	badOp.Op = event.OpRead
	if p.Matches(&badOp) {
		t.Error("op ignored")
	}
	badObj := *good
	badObj.Object = event.File(`C:\db\x.txt`)
	if p.Matches(&badObj) {
		t.Error("object constraint ignored")
	}
	badType := *good
	badType.Object = event.Process("x", 1)
	if p.Matches(&badType) {
		t.Error("object type ignored")
	}
}

func TestOpAlternation(t *testing.T) {
	pats, _ := patternsOf(t, `proc p read || write ip i return p`)
	conn := event.NetConn("1.1.1.1", 1, "2.2.2.2", 2)
	for _, op := range []event.Op{event.OpRead, event.OpWrite} {
		if !pats[0].Matches(&event.Event{Subject: event.Process("x", 1), Op: op, Object: conn}) {
			t.Errorf("op %v should match", op)
		}
	}
	if pats[0].Matches(&event.Event{Subject: event.Process("x", 1), Op: event.OpConnect, Object: conn}) {
		t.Error("connect should not match read||write")
	}
}

func TestCompileGlobals(t *testing.T) {
	q, err := parser.Parse(`agentid = "db-1"
proc p start proc q2 return p`)
	if err != nil {
		t.Fatal(err)
	}
	pred := CompileGlobals(q.Globals)
	if !pred(&event.Event{AgentID: "db-1"}) {
		t.Error("matching agent rejected")
	}
	if pred(&event.Event{AgentID: "db-2"}) {
		t.Error("wrong agent accepted")
	}
	if !CompileGlobals(nil)(&event.Event{}) {
		t.Error("empty globals should always match")
	}
}

func seqOf(t *testing.T, src string, cfg Config) *SeqMatcher {
	t.Helper()
	pats, q := patternsOf(t, src)
	var order []int
	if q.Temporal != nil {
		aliases := map[string]int{}
		for i, p := range q.Patterns {
			if p.Alias != "" {
				aliases[p.Alias] = i
			}
		}
		for _, a := range q.Temporal.Order {
			order = append(order, aliases[a])
		}
	}
	m, err := NewSeqMatcher(pats, CompileGlobals(q.Globals), order, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

const twoStep = `
proc p1["%cmd.exe"] start proc p2 as e1
proc p2 write ip i[dstip="9.9.9.9"] as e2
with e1 -> e2
return p1`

func TestSequenceJoinOnSubject(t *testing.T) {
	m := seqOf(t, twoStep, Config{})
	cmd := event.Process("cmd.exe", 10)
	child := event.Process("evil.exe", 11)
	other := event.Process("other.exe", 99)
	conn := event.NetConn("1.1.1.1", 1, "9.9.9.9", 443)

	// e1: cmd starts child.
	if got := m.Observe(&event.Event{Time: base, Subject: cmd, Op: event.OpStart, Object: child}); len(got) != 0 {
		t.Fatalf("premature match: %v", got)
	}
	// A DIFFERENT process writing must not complete (p2 join).
	if got := m.Observe(&event.Event{Time: base.Add(time.Second), Subject: other, Op: event.OpWrite, Object: conn}); len(got) != 0 {
		t.Fatal("join violated")
	}
	// The child writing completes the sequence.
	got := m.Observe(&event.Event{Time: base.Add(2 * time.Second), Subject: child, Op: event.OpWrite, Object: conn})
	if len(got) != 1 {
		t.Fatalf("matches = %d, want 1", len(got))
	}
	if got[0].Entities["p2"].ExeName != "evil.exe" {
		t.Errorf("p2 binding = %v", got[0].Entities["p2"])
	}
	if got[0].At != base.Add(2*time.Second) {
		t.Errorf("match time = %v", got[0].At)
	}
}

func TestSequenceOrderEnforced(t *testing.T) {
	m := seqOf(t, twoStep, Config{})
	cmd := event.Process("cmd.exe", 10)
	child := event.Process("evil.exe", 11)
	conn := event.NetConn("1.1.1.1", 1, "9.9.9.9", 443)
	// e2 first: cannot seed (ordered position 1).
	m.Observe(&event.Event{Time: base, Subject: child, Op: event.OpWrite, Object: conn})
	// e1 next: seeds a partial.
	m.Observe(&event.Event{Time: base.Add(time.Second), Subject: cmd, Op: event.OpStart, Object: child})
	if m.PartialCount() != 1 {
		t.Errorf("partials = %d, want 1", m.PartialCount())
	}
	// Now e2 again completes.
	got := m.Observe(&event.Event{Time: base.Add(2 * time.Second), Subject: child, Op: event.OpWrite, Object: conn})
	if len(got) != 1 {
		t.Errorf("matches = %d", len(got))
	}
}

func TestUnorderedConjunction(t *testing.T) {
	m := seqOf(t, `
proc p1 write file f["%a.txt"] as e1
proc p1 write file g["%b.txt"] as e2
return p1`, Config{})
	p := event.Process("x.exe", 1)
	// Reverse order still matches (no temporal clause).
	m.Observe(&event.Event{Time: base, Subject: p, Op: event.OpWrite, Object: event.File("b.txt")})
	got := m.Observe(&event.Event{Time: base.Add(time.Second), Subject: p, Op: event.OpWrite, Object: event.File("a.txt")})
	if len(got) != 1 {
		t.Errorf("unordered match = %d, want 1", len(got))
	}
}

func TestHorizonExpiry(t *testing.T) {
	m := seqOf(t, twoStep, Config{Horizon: time.Minute})
	cmd := event.Process("cmd.exe", 10)
	child := event.Process("evil.exe", 11)
	conn := event.NetConn("1.1.1.1", 1, "9.9.9.9", 443)
	m.Observe(&event.Event{Time: base, Subject: cmd, Op: event.OpStart, Object: child})
	// Two minutes later the partial has expired.
	got := m.Observe(&event.Event{Time: base.Add(2 * time.Minute), Subject: child, Op: event.OpWrite, Object: conn})
	if len(got) != 0 {
		t.Error("expired partial completed")
	}
	if m.Expired == 0 {
		t.Error("expiry not counted")
	}
}

func TestPartialCapacity(t *testing.T) {
	m := seqOf(t, twoStep, Config{MaxPartials: 3})
	// Seed many partials with distinct children.
	for i := 0; i < 10; i++ {
		cmd := event.Process("cmd.exe", 10)
		child := event.Process(fmt.Sprintf("c%d.exe", i), int32(100+i))
		m.Observe(&event.Event{Time: base.Add(time.Duration(i) * time.Second), Subject: cmd, Op: event.OpStart, Object: child})
	}
	if m.PartialCount() > 3 {
		t.Errorf("partials = %d, cap 3", m.PartialCount())
	}
	if m.Dropped == 0 {
		t.Error("drops not counted")
	}
}

func TestSinglePatternImmediate(t *testing.T) {
	m := seqOf(t, `proc p["%gsecdump.exe"] read file f return p`, Config{})
	got := m.Observe(&event.Event{Time: base, Subject: event.Process("gsecdump.exe", 5), Op: event.OpRead, Object: event.File("SAM")})
	if len(got) != 1 {
		t.Fatalf("single-pattern match = %d", len(got))
	}
	if got[0].Entities["p"].ExeName != "gsecdump.exe" {
		t.Error("binding missing")
	}
}

func TestObserveHitsSkipsMatching(t *testing.T) {
	m := seqOf(t, `proc p read file f return p`, Config{})
	ev := &event.Event{Time: base, Subject: event.Process("x", 1), Op: event.OpRead, Object: event.File("f")}
	// Even a non-matching event completes if the caller says pattern 0 hit
	// (the master's verdict is trusted).
	if got := m.ObserveHits(&event.Event{Time: base, Subject: event.Process("x", 1), Op: event.OpWrite, Object: event.File("f")}, []int{0}); len(got) != 1 {
		t.Error("ObserveHits should trust provided hits")
	}
	if got := m.ObserveHits(ev, nil); len(got) != 0 {
		t.Error("no hits should mean no matches")
	}
}

func TestNewSeqMatcherValidation(t *testing.T) {
	pats, _ := patternsOf(t, `proc p read file f return p`)
	if _, err := NewSeqMatcher(nil, nil, nil, Config{}); err == nil {
		t.Error("no patterns should fail")
	}
	if _, err := NewSeqMatcher(pats, nil, []int{5}, Config{}); err == nil {
		t.Error("bad order index should fail")
	}
	if _, err := NewSeqMatcher(pats, nil, []int{0, 0}, Config{}); err == nil {
		t.Error("duplicate order index should fail")
	}
}
