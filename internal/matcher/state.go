package matcher

// Checkpoint support: the multievent matcher's partial-match table — the
// in-flight joins a crash would otherwise forget mid-kill-chain — and its
// expiry/drop counters serialise into the wire format. Decoding appends, so
// restoring into a fresh matcher reproduces the table and restoring several
// per-shard blobs merges them (multievent queries are pinned, so in practice
// exactly one blob carries partials).

import (
	"fmt"
	"sort"

	"saql/internal/event"
	"saql/internal/wire"
)

// AppendState appends the matcher's runtime state.
func (m *SeqMatcher) AppendState(b []byte) []byte {
	b = wire.AppendVarint(b, m.Expired)
	b = wire.AppendVarint(b, m.Dropped)
	b = wire.AppendUvarint(b, uint64(len(m.partials)))
	for _, pt := range m.partials {
		b = wire.AppendUvarint(b, uint64(pt.matched))
		b = wire.AppendVarint(b, int64(pt.nOrdered))
		b = wire.AppendTime(b, pt.lastTime)
		b = wire.AppendTime(b, pt.created)
		b = wire.AppendUvarint(b, uint64(len(pt.events)))
		for _, ev := range pt.events {
			if ev == nil {
				b = wire.AppendBool(b, false)
				continue
			}
			b = wire.AppendBool(b, true)
			b = wire.AppendEvent(b, ev)
		}
		keys := make([]string, 0, len(pt.bindings))
		for k := range pt.bindings {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b = wire.AppendUvarint(b, uint64(len(keys)))
		for _, k := range keys {
			b = wire.AppendString(b, k)
			b = wire.AppendString(b, pt.bindings[k])
		}
	}
	return b
}

// ReadState folds an encoded matcher state into m: counters accumulate and
// partials append. The encoded per-partial event-slot count must match m's
// pattern count (the restoring matcher was compiled from the same source the
// snapshot was taken under).
func (m *SeqMatcher) ReadState(r *wire.Reader) error {
	m.Expired += r.Varint()
	m.Dropped += r.Varint()
	n := r.Count(4)
	for i := 0; i < n && r.Err() == nil; i++ {
		pt := &partial{
			matched:  int(r.Uvarint()),
			nOrdered: int(r.Varint()),
			lastTime: r.Time(),
			created:  r.Time(),
		}
		slots := r.Count(1)
		if r.Err() != nil {
			return r.Err()
		}
		if slots != len(m.patterns) {
			return fmt.Errorf("matcher: snapshot partial has %d event slots, matcher has %d patterns", slots, len(m.patterns))
		}
		pt.events = make([]*event.Event, slots)
		for j := 0; j < slots && r.Err() == nil; j++ {
			if r.Bool() {
				pt.events[j] = r.ReadEvent()
			}
		}
		nBind := r.Count(2)
		pt.bindings = make(map[string]string, nBind)
		for j := 0; j < nBind && r.Err() == nil; j++ {
			k := r.String()
			pt.bindings[k] = r.String()
		}
		if r.Err() == nil {
			m.partials = append(m.partials, pt)
		}
	}
	return r.Err()
}
