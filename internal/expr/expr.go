// Package expr evaluates SAQL expressions against an environment of bound
// entity variables, event aliases, sliding-window states, invariant
// variables, and clustering results. The engine uses it for alert
// conditions, return items, group-by keys, aggregation arguments, and
// invariant updates.
//
// Null propagation follows SAQL's tolerant semantics: comparing against a
// missing value (e.g. ss[2] before three windows have closed) is false
// rather than an error, and arithmetic over null yields null, so alert
// conditions simply do not fire until enough state exists.
package expr

import (
	"fmt"
	"math"
	"strings"

	"saql/internal/ast"
	"saql/internal/event"
	"saql/internal/value"
)

// StateView resolves sliding-window state fields: histIndex 0 is the current
// (most recently closed) window, 1 the one before it, and so on.
type StateView interface {
	StateField(histIndex int, field string) (value.Value, bool)
}

// ClusterView resolves cluster.* fields for the group under evaluation
// ("outlier", "cluster_id", "size").
type ClusterView interface {
	ClusterField(field string) (value.Value, bool)
}

// Env is the evaluation environment. Any component may be nil/empty; lookups
// then miss and resolve to null per SAQL tolerance rules.
type Env struct {
	Entities  map[string]*event.Entity // entity var -> bound entity
	Events    map[string]*event.Event  // event alias -> bound event
	StateName string                   // e.g. "ss"
	State     StateView
	Vars      map[string]value.Value // invariant variables
	Cluster   ClusterView
}

// Eval evaluates e in env.
func Eval(e ast.Expr, env *Env) (value.Value, error) {
	switch x := e.(type) {
	case *ast.Literal:
		return x.Val, nil

	case *ast.Ident:
		return evalIdent(x, env)

	case *ast.FieldExpr:
		return evalField(x, env)

	case *ast.IndexExpr:
		return value.Null, fmt.Errorf("expr: state index %s must be followed by a field access", x)

	case *ast.CallExpr:
		return evalCall(x, env)

	case *ast.UnaryExpr:
		v, err := Eval(x.X, env)
		if err != nil {
			return value.Null, err
		}
		switch x.Op {
		case '!':
			b, ok := v.AsBool()
			if !ok {
				return value.Null, fmt.Errorf("expr: ! requires a boolean, got %s", v.Kind())
			}
			return value.Bool(!b), nil
		case '-':
			if v.IsNull() {
				return value.Null, nil
			}
			return v.Neg()
		default:
			return value.Null, fmt.Errorf("expr: unknown unary operator %q", string(x.Op))
		}

	case *ast.CardExpr:
		v, err := Eval(x.X, env)
		if err != nil {
			return value.Null, err
		}
		switch v.Kind() {
		case value.KindSet:
			return value.Int(int64(v.SetLen())), nil
		case value.KindInt:
			iv := v.IntVal()
			if iv < 0 {
				iv = -iv
			}
			return value.Int(iv), nil
		case value.KindFloat:
			return value.Float(math.Abs(v.FloatVal())), nil
		case value.KindNull:
			return value.Int(0), nil
		default:
			return value.Null, fmt.Errorf("expr: |...| requires a set or number, got %s", v.Kind())
		}

	case *ast.BinaryExpr:
		return evalBinary(x, env)
	}
	return value.Null, fmt.Errorf("expr: unsupported expression %T", e)
}

// EvalBool evaluates e and coerces the result to a boolean condition.
func EvalBool(e ast.Expr, env *Env) (bool, error) {
	v, err := Eval(e, env)
	if err != nil {
		return false, err
	}
	b, ok := v.AsBool()
	if !ok {
		return false, fmt.Errorf("expr: condition %s is %s, not boolean", e, v.Kind())
	}
	return b, nil
}

func evalIdent(x *ast.Ident, env *Env) (value.Value, error) {
	// Invariant variables shadow everything else.
	if env.Vars != nil {
		if v, ok := env.Vars[x.Name]; ok {
			return v, nil
		}
	}
	// Context-aware shortcut: a bare entity variable means its default
	// attribute (p1 -> p1.exe_name, i1 -> i1.dstip, f1 -> f1.name).
	if env.Entities != nil {
		if ent, ok := env.Entities[x.Name]; ok {
			return value.String(ent.DefaultAttr()), nil
		}
	}
	if env.Events != nil {
		if _, ok := env.Events[x.Name]; ok {
			return value.Null, fmt.Errorf("expr: event alias %q is not a value; access an attribute like %s.amount", x.Name, x.Name)
		}
	}
	if x.Name == env.StateName {
		return value.Null, fmt.Errorf("expr: state %q is not a value; access a field like %s.field", x.Name, x.Name)
	}
	// Unbound identifiers resolve to null: the entity may simply not be
	// bound for this group/window.
	return value.Null, nil
}

func evalField(x *ast.FieldExpr, env *Env) (value.Value, error) {
	switch base := x.Base.(type) {
	case *ast.Ident:
		name := base.Name
		if name == "cluster" {
			if env.Cluster == nil {
				return value.Null, nil
			}
			if v, ok := env.Cluster.ClusterField(x.Field); ok {
				return v, nil
			}
			return value.Null, fmt.Errorf("expr: unknown cluster field %q", x.Field)
		}
		if name == env.StateName && env.State != nil {
			if v, ok := env.State.StateField(0, x.Field); ok {
				return v, nil
			}
			return value.Null, nil
		}
		if env.Entities != nil {
			if ent, ok := env.Entities[name]; ok {
				if v, ok := ent.Attr(x.Field); ok {
					return v, nil
				}
				return value.Null, fmt.Errorf("expr: entity %q (%s) has no attribute %q", name, ent.Type, x.Field)
			}
		}
		if env.Events != nil {
			if ev, ok := env.Events[name]; ok {
				if v, ok := ev.Attr(x.Field); ok {
					return v, nil
				}
				return value.Null, fmt.Errorf("expr: event %q has no attribute %q", name, x.Field)
			}
		}
		// Unbound base: tolerate as null (group may not bind this var).
		return value.Null, nil

	case *ast.IndexExpr:
		id, ok := base.Base.(*ast.Ident)
		if !ok {
			return value.Null, fmt.Errorf("expr: cannot index %s", base.Base)
		}
		if id.Name != env.StateName {
			return value.Null, fmt.Errorf("expr: %q is not the state variable (%q)", id.Name, env.StateName)
		}
		if env.State == nil {
			return value.Null, nil
		}
		if v, ok := env.State.StateField(base.Index, x.Field); ok {
			return v, nil
		}
		return value.Null, nil

	default:
		return value.Null, fmt.Errorf("expr: unsupported field base %T", x.Base)
	}
}

func evalCall(x *ast.CallExpr, env *Env) (value.Value, error) {
	args := make([]value.Value, len(x.Args))
	for i, a := range x.Args {
		v, err := Eval(a, env)
		if err != nil {
			return value.Null, err
		}
		args[i] = v
	}
	return CallScalar(x.Func, args)
}

// CallScalar invokes a built-in scalar function. Aggregation functions are
// rejected here; they are only valid inside state blocks, where the engine
// intercepts them.
func CallScalar(name string, args []value.Value) (value.Value, error) {
	num1 := func() (float64, error) {
		if len(args) != 1 {
			return 0, fmt.Errorf("expr: %s takes 1 argument, got %d", name, len(args))
		}
		if args[0].IsNull() {
			return math.NaN(), nil
		}
		f, ok := args[0].AsFloat()
		if !ok {
			return 0, fmt.Errorf("expr: %s requires a number, got %s", name, args[0].Kind())
		}
		return f, nil
	}
	wrap := func(f float64) (value.Value, error) {
		if math.IsNaN(f) {
			return value.Null, nil
		}
		return value.Float(f), nil
	}
	switch name {
	case "abs":
		f, err := num1()
		if err != nil {
			return value.Null, err
		}
		return wrap(math.Abs(f))
	case "sqrt":
		f, err := num1()
		if err != nil {
			return value.Null, err
		}
		if f < 0 {
			return value.Null, fmt.Errorf("expr: sqrt of negative number %g", f)
		}
		return wrap(math.Sqrt(f))
	case "log":
		f, err := num1()
		if err != nil {
			return value.Null, err
		}
		if f <= 0 {
			return value.Null, fmt.Errorf("expr: log of non-positive number %g", f)
		}
		return wrap(math.Log(f))
	case "floor":
		f, err := num1()
		if err != nil {
			return value.Null, err
		}
		return wrap(math.Floor(f))
	case "ceil":
		f, err := num1()
		if err != nil {
			return value.Null, err
		}
		return wrap(math.Ceil(f))
	case "pow":
		if len(args) != 2 {
			return value.Null, fmt.Errorf("expr: pow takes 2 arguments, got %d", len(args))
		}
		a, ok1 := args[0].AsFloat()
		b, ok2 := args[1].AsFloat()
		if !ok1 || !ok2 {
			return value.Null, fmt.Errorf("expr: pow requires numbers")
		}
		return value.Float(math.Pow(a, b)), nil
	case "len", "size":
		if len(args) != 1 {
			return value.Null, fmt.Errorf("expr: %s takes 1 argument, got %d", name, len(args))
		}
		switch args[0].Kind() {
		case value.KindSet:
			return value.Int(int64(args[0].SetLen())), nil
		case value.KindString:
			return value.Int(int64(len(args[0].Str()))), nil
		case value.KindNull:
			return value.Int(0), nil
		default:
			return value.Null, fmt.Errorf("expr: %s requires a set or string", name)
		}
	case "contains":
		if len(args) != 2 {
			return value.Null, fmt.Errorf("expr: contains takes 2 arguments, got %d", len(args))
		}
		switch args[0].Kind() {
		case value.KindSet:
			return value.Bool(args[0].SetContains(args[1].String())), nil
		case value.KindString:
			return value.Bool(strings.Contains(strings.ToLower(args[0].Str()), strings.ToLower(args[1].String()))), nil
		case value.KindNull:
			return value.Bool(false), nil
		default:
			return value.Null, fmt.Errorf("expr: contains requires a set or string")
		}
	case "avg", "sum", "count", "min", "max", "set", "distinct", "stddev",
		"variance", "median", "percentile", "first", "last", "mean":
		return value.Null, fmt.Errorf("expr: aggregation function %q is only valid inside a state block", name)
	}
	return value.Null, fmt.Errorf("expr: unknown function %q", name)
}

func evalBinary(x *ast.BinaryExpr, env *Env) (value.Value, error) {
	// Short-circuit logical operators.
	switch x.Op {
	case ast.OpAnd, ast.OpOr:
		lv, err := Eval(x.Left, env)
		if err != nil {
			return value.Null, err
		}
		lb, ok := lv.AsBool()
		if !ok {
			return value.Null, fmt.Errorf("expr: %s requires boolean operands, got %s", x.Op, lv.Kind())
		}
		if x.Op == ast.OpAnd && !lb {
			return value.Bool(false), nil
		}
		if x.Op == ast.OpOr && lb {
			return value.Bool(true), nil
		}
		rv, err := Eval(x.Right, env)
		if err != nil {
			return value.Null, err
		}
		rb, ok := rv.AsBool()
		if !ok {
			return value.Null, fmt.Errorf("expr: %s requires boolean operands, got %s", x.Op, rv.Kind())
		}
		return value.Bool(rb), nil
	}

	lv, err := Eval(x.Left, env)
	if err != nil {
		return value.Null, err
	}
	rv, err := Eval(x.Right, env)
	if err != nil {
		return value.Null, err
	}

	switch x.Op {
	case ast.OpEq, ast.OpNe:
		eq := equalWithWildcards(lv, rv)
		if x.Op == ast.OpNe {
			eq = !eq
		}
		return value.Bool(eq), nil

	case ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe:
		// Ordered comparison against null is false, never an error:
		// this is what makes ss[2]-referencing alerts silent before
		// enough windows exist.
		if lv.IsNull() || rv.IsNull() {
			return value.Bool(false), nil
		}
		c, err := lv.Compare(rv)
		if err != nil {
			return value.Null, err
		}
		switch x.Op {
		case ast.OpLt:
			return value.Bool(c < 0), nil
		case ast.OpLe:
			return value.Bool(c <= 0), nil
		case ast.OpGt:
			return value.Bool(c > 0), nil
		default:
			return value.Bool(c >= 0), nil
		}

	case ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpDiv, ast.OpMod:
		if lv.IsNull() || rv.IsNull() {
			return value.Null, nil
		}
		var op byte
		switch x.Op {
		case ast.OpAdd:
			op = '+'
		case ast.OpSub:
			op = '-'
		case ast.OpMul:
			op = '*'
		case ast.OpDiv:
			op = '/'
		default:
			op = '%'
		}
		return lv.Arith(op, rv)

	case ast.OpUnion:
		return setOp(lv, rv, "union")
	case ast.OpDiff:
		return setOp(lv, rv, "diff")
	case ast.OpIntersect:
		return setOp(lv, rv, "intersect")

	case ast.OpIn:
		if rv.Kind() == value.KindSet {
			return value.Bool(rv.SetContains(lv.String())), nil
		}
		if rv.IsNull() {
			return value.Bool(false), nil
		}
		return value.Null, fmt.Errorf("expr: 'in' requires a set on the right, got %s", rv.Kind())
	}
	return value.Null, fmt.Errorf("expr: unsupported binary operator %s", x.Op)
}

func setOp(l, r value.Value, op string) (value.Value, error) {
	// Null-tolerance: treat null as the empty set so invariant updates work
	// on the first window.
	if l.IsNull() {
		l = value.EmptySet()
	}
	if r.IsNull() {
		r = value.EmptySet()
	}
	switch op {
	case "union":
		return l.Union(r)
	case "diff":
		return l.Diff(r)
	default:
		return l.Intersect(r)
	}
}

// EqualValues reports SAQL equality between two values — the semantics of
// the == and != expression operators. Exported for the compiled evaluator
// (internal/pcode), which must reproduce interpretation bit for bit.
func EqualValues(l, r value.Value) bool { return equalWithWildcards(l, r) }

// equalWithWildcards implements SAQL equality: exact for non-strings, and
// SQL-LIKE '%' wildcards when either string operand contains '%' (the
// paper's constraints and alert conditions use "%osql.exe" patterns).
func equalWithWildcards(l, r value.Value) bool {
	if l.Kind() == value.KindString && r.Kind() == value.KindString {
		ls, rs := l.Str(), r.Str()
		lw, rw := strings.Contains(ls, "%"), strings.Contains(rs, "%")
		switch {
		case rw && !lw:
			return value.WildcardMatch(rs, ls)
		case lw && !rw:
			return value.WildcardMatch(ls, rs)
		default:
			return strings.EqualFold(ls, rs)
		}
	}
	return l.Equal(r)
}
