package expr

import (
	"strings"
	"testing"

	"saql/internal/ast"
	"saql/internal/event"
	"saql/internal/parser"
	"saql/internal/value"
)

// exprOf parses src as a query alert expression for convenient test setup.
func exprOf(t *testing.T, src string) ast.Expr {
	t.Helper()
	q, err := parser.Parse("proc p start proc q as e alert " + src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q.Alerts[0]
}

type fakeState map[int]map[string]value.Value

func (f fakeState) StateField(idx int, field string) (value.Value, bool) {
	if w, ok := f[idx]; ok {
		if v, ok := w[field]; ok {
			return v, true
		}
	}
	return value.Null, true
}

type fakeCluster struct{ outlier bool }

func (f fakeCluster) ClusterField(field string) (value.Value, bool) {
	switch field {
	case "outlier":
		return value.Bool(f.outlier), true
	case "cluster_id":
		return value.Int(2), true
	}
	return value.Null, false
}

func env() *Env {
	p := event.Process("osql.exe", 42)
	f := event.File(`C:\db\backup1.dmp`)
	ev := &event.Event{AgentID: "db-1", Subject: p, Op: event.OpWrite, Object: f, Amount: 1234}
	return &Env{
		Entities:  map[string]*event.Entity{"p1": &p, "f1": &f},
		Events:    map[string]*event.Event{"evt": ev},
		StateName: "ss",
		State: fakeState{
			0: {"amt": value.Float(5000), "procs": value.SetOf("a", "b")},
			1: {"amt": value.Float(100)},
		},
		Vars:    map[string]value.Value{"a": value.SetOf("a")},
		Cluster: fakeCluster{outlier: true},
	}
}

func evalStr(t *testing.T, src string) value.Value {
	t.Helper()
	v, err := Eval(exprOf(t, src), env())
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestLiteralsAndArithmetic(t *testing.T) {
	cases := map[string]float64{
		"1 + 2 * 3":   7,
		"(1 + 2) * 3": 9,
		"10 / 4":      2.5,
		"7 % 3":       1,
		"-3 + 5":      2,
		"2 * 3 - 1":   5,
		"abs(0 - 5)":  5,
		"sqrt(16)":    4,
		"pow(2, 10)":  1024,
		"floor(2.7)":  2,
		"ceil(2.1)":   3,
	}
	for src, want := range cases {
		got, ok := evalStr(t, src).AsFloat()
		if !ok || got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestEntityShortcutsAndAttrs(t *testing.T) {
	if got := evalStr(t, `p1`); got.Str() != "osql.exe" {
		t.Errorf("p1 shortcut = %v", got)
	}
	if got := evalStr(t, `p1.exe_name`); got.Str() != "osql.exe" {
		t.Errorf("p1.exe_name = %v", got)
	}
	if got := evalStr(t, `p1.pid`); got.IntVal() != 42 {
		t.Errorf("p1.pid = %v", got)
	}
	if got := evalStr(t, `f1`); !strings.Contains(got.Str(), "backup1.dmp") {
		t.Errorf("f1 shortcut = %v", got)
	}
	if got := evalStr(t, `evt.amount`); got.FloatVal() != 1234 {
		t.Errorf("evt.amount = %v", got)
	}
	if got := evalStr(t, `evt.agentid`); got.Str() != "db-1" {
		t.Errorf("evt.agentid = %v", got)
	}
}

func TestStateAccess(t *testing.T) {
	if got := evalStr(t, `ss.amt`); got.FloatVal() != 5000 {
		t.Errorf("ss.amt = %v", got)
	}
	if got := evalStr(t, `ss[0].amt`); got.FloatVal() != 5000 {
		t.Errorf("ss[0].amt = %v", got)
	}
	if got := evalStr(t, `ss[1].amt`); got.FloatVal() != 100 {
		t.Errorf("ss[1].amt = %v", got)
	}
	// Missing history index resolves to null; comparison false.
	if got := evalStr(t, `ss[2].amt > 0`); got.BoolVal() {
		t.Error("missing history comparison should be false")
	}
	// Null arithmetic propagates then compares false.
	if got := evalStr(t, `ss[2].amt + 5 > 0`); got.BoolVal() {
		t.Error("null arithmetic comparison should be false")
	}
}

func TestClusterAccess(t *testing.T) {
	if got := evalStr(t, `cluster.outlier`); !got.BoolVal() {
		t.Error("cluster.outlier should be true")
	}
	if got := evalStr(t, `cluster.cluster_id`); got.IntVal() != 2 {
		t.Errorf("cluster.cluster_id = %v", got)
	}
}

func TestSetExpressions(t *testing.T) {
	if got := evalStr(t, `|ss.procs diff a|`); got.IntVal() != 1 {
		t.Errorf("|procs diff a| = %v", got)
	}
	if got := evalStr(t, `|ss.procs union a|`); got.IntVal() != 2 {
		t.Errorf("|procs union a| = %v", got)
	}
	if got := evalStr(t, `|ss.procs intersect a|`); got.IntVal() != 1 {
		t.Errorf("|procs intersect a| = %v", got)
	}
	if got := evalStr(t, `"b" in ss.procs`); !got.BoolVal() {
		t.Error("b in procs should be true")
	}
	if got := evalStr(t, `"z" in ss.procs`); got.BoolVal() {
		t.Error("z in procs should be false")
	}
	if got := evalStr(t, `|empty_set|`); got.IntVal() != 0 {
		t.Errorf("|empty_set| = %v", got)
	}
	if got := evalStr(t, `len(ss.procs)`); got.IntVal() != 2 {
		t.Errorf("len = %v", got)
	}
	if got := evalStr(t, `contains(ss.procs, "a")`); !got.BoolVal() {
		t.Error("contains should be true")
	}
}

func TestCardAbs(t *testing.T) {
	if got := evalStr(t, `|0 - 7|`); got.IntVal() != 7 {
		t.Errorf("|0-7| = %v", got)
	}
	if got := evalStr(t, `|ss[1].amt - ss.amt|`); got.FloatVal() != 4900 {
		t.Errorf("|100-5000| = %v", got)
	}
}

func TestWildcardEquality(t *testing.T) {
	if got := evalStr(t, `p1.exe_name == "%osql%"`); !got.BoolVal() {
		t.Error("wildcard equality should match")
	}
	if got := evalStr(t, `p1.exe_name != "%osql%"`); got.BoolVal() {
		t.Error("wildcard inequality should be false")
	}
	if got := evalStr(t, `p1.exe_name == "OSQL.EXE"`); !got.BoolVal() {
		t.Error("string equality is case-insensitive")
	}
}

func TestLogicShortCircuit(t *testing.T) {
	// The right side would error (unknown function), but short-circuiting
	// must prevent evaluation.
	v, err := Eval(exprOf(t, `false && nosuch(1)`), env())
	if err != nil || v.BoolVal() {
		t.Errorf("short-circuit && failed: %v %v", v, err)
	}
	v, err = Eval(exprOf(t, `true || nosuch(1)`), env())
	if err != nil || !v.BoolVal() {
		t.Errorf("short-circuit || failed: %v %v", v, err)
	}
	if got := evalStr(t, `!(1 > 2)`); !got.BoolVal() {
		t.Error("!(1>2) should be true")
	}
}

func TestEvalErrors(t *testing.T) {
	bad := []string{
		`1 / 0`,
		`nosuch(1)`,
		`avg(1)`, // aggregation outside state block
		`p1.no_attr`,
		`evt.no_attr`,
		`1 && true`,
		`!5`,
		`sqrt(0 - 1)`,
		`log(0)`,
		`"x" + 1`,
		`|true|`,
	}
	for _, src := range bad {
		if _, err := Eval(exprOf(t, src), env()); err == nil {
			t.Errorf("eval %q should fail", src)
		}
	}
}

func TestEvalBool(t *testing.T) {
	ok, err := EvalBool(exprOf(t, `1 < 2`), env())
	if err != nil || !ok {
		t.Errorf("EvalBool(1<2) = %v, %v", ok, err)
	}
	if _, err := EvalBool(exprOf(t, `1 + 1`), env()); err == nil {
		t.Error("numeric condition should fail EvalBool")
	}
}

func TestUnboundIdentifiersAreNull(t *testing.T) {
	// Unbound entity variables tolerate as null (group-dependent binding).
	if got := evalStr(t, `zz.exe_name == "x"`); got.BoolVal() {
		t.Error("unbound base should compare false")
	}
	v, err := Eval(&ast.Ident{Name: "unbound"}, env())
	if err != nil || !v.IsNull() {
		t.Errorf("unbound ident = %v, %v", v, err)
	}
}

func TestEventAliasNotAValue(t *testing.T) {
	if _, err := Eval(exprOf(t, `evt == 1`), env()); err == nil {
		t.Error("event alias used as value should error")
	}
}
