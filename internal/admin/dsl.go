// Package admin is the agent-facing control plane: a compact query DSL over
// HTTP that exposes the engine's registry, tenants, and stats for listing
// and mutation. It is deliberately outside the deterministic replay cone —
// it observes and steers the engine but never sits on the event path.
//
// One request is one call:
//
//	list(queries){id tenant paused alerts_1h}
//	list(tenants, limit=10, after=acme){name alerts suppressed degraded}
//	get(query, id=acme/exfil)
//	pause(acme/exfil)
//	resume(acme/exfil)
//	update(acme/exfil)            // new source text in the request body
//	apply()                       // queryset document in the request body
//	quota(acme, alert_budget=100, alert_window=30m)
//
// Reads go over GET /q?q=<call>; mutations over POST /q?q=<call>&confirm=1
// (a mutation without confirm=1 is rejected with 409, so an agent must
// explicitly acknowledge it is changing live state). The optional trailing
// {field field ...} block selects which fields each result item carries.
package admin

import (
	"fmt"
	"strings"
)

// Call is one parsed DSL call.
type Call struct {
	Verb string
	// Pos holds positional arguments in order; Named holds key=value
	// arguments. `list(queries, limit=5)` has Pos=["queries"],
	// Named={"limit":"5"}.
	Pos   []string
	Named map[string]string
	// Fields is the {…} selection; nil means the verb's default set.
	Fields []string
}

// Arg returns the named argument, or the positional argument at pos when the
// name is absent, or "" when neither is present.
func (c *Call) Arg(name string, pos int) string {
	if v, ok := c.Named[name]; ok {
		return v
	}
	if pos >= 0 && pos < len(c.Pos) {
		return c.Pos[pos]
	}
	return ""
}

// IsMutation reports whether the verb changes engine state (and therefore
// requires POST + confirm).
func IsMutation(verb string) bool {
	switch verb {
	case "pause", "resume", "update", "apply", "quota":
		return true
	}
	return false
}

// dsl tokens: atoms (identifiers, numbers, names with '/', '-', '.', '_'),
// double-quoted strings, and the punctuation ( ) { } = ,
type dslToken struct {
	kind byte // 'a' atom, 's' string, or the punctuation byte itself
	text string
	off  int
}

func lexDSL(s string) ([]dslToken, error) {
	var toks []dslToken
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == '{' || c == '}' || c == '=' || c == ',':
			toks = append(toks, dslToken{kind: c, text: string(c), off: i})
			i++
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < len(s) && s[j] != '"' {
				if s[j] == '\\' && j+1 < len(s) {
					j++
				}
				sb.WriteByte(s[j])
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("admin: unterminated string at offset %d", i)
			}
			toks = append(toks, dslToken{kind: 's', text: sb.String(), off: i})
			i = j + 1
		case isAtomByte(c):
			j := i
			for j < len(s) && isAtomByte(s[j]) {
				j++
			}
			toks = append(toks, dslToken{kind: 'a', text: s[i:j], off: i})
			i = j
		default:
			return nil, fmt.Errorf("admin: unexpected character %q at offset %d", c, i)
		}
	}
	return toks, nil
}

func isAtomByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '-' || c == '.' || c == '/' || c == ':' || c == '*'
}

// Parse parses one DSL call: verb '(' args? ')' ('{' fields '}')?
func Parse(input string) (*Call, error) {
	toks, err := lexDSL(input)
	if err != nil {
		return nil, err
	}
	i := 0
	peek := func() dslToken {
		if i < len(toks) {
			return toks[i]
		}
		return dslToken{kind: 0, text: "end of input", off: len(input)}
	}
	expect := func(kind byte, what string) (dslToken, error) {
		t := peek()
		if t.kind != kind {
			return t, fmt.Errorf("admin: expected %s, found %q at offset %d", what, t.text, t.off)
		}
		i++
		return t, nil
	}

	verb, err := expect('a', "a verb")
	if err != nil {
		return nil, err
	}
	c := &Call{Verb: strings.ToLower(verb.text), Named: map[string]string{}}
	if _, err := expect('(', "'('"); err != nil {
		return nil, err
	}
	for peek().kind != ')' {
		t := peek()
		if t.kind != 'a' && t.kind != 's' {
			return nil, fmt.Errorf("admin: expected an argument, found %q at offset %d", t.text, t.off)
		}
		i++
		if t.kind == 'a' && peek().kind == '=' {
			i++
			v := peek()
			if v.kind != 'a' && v.kind != 's' {
				return nil, fmt.Errorf("admin: expected a value for %s=, found %q at offset %d", t.text, v.text, v.off)
			}
			i++
			key := strings.ToLower(t.text)
			if _, dup := c.Named[key]; dup {
				return nil, fmt.Errorf("admin: duplicate argument %q", key)
			}
			c.Named[key] = v.text
		} else {
			c.Pos = append(c.Pos, t.text)
		}
		if peek().kind == ',' {
			i++
		} else if peek().kind != ')' {
			return nil, fmt.Errorf("admin: expected ',' or ')', found %q at offset %d", peek().text, peek().off)
		}
	}
	i++ // ')'
	if peek().kind == '{' {
		i++
		for peek().kind != '}' {
			f, err := expect('a', "a field name")
			if err != nil {
				return nil, err
			}
			c.Fields = append(c.Fields, strings.ToLower(f.text))
			if peek().kind == ',' { // commas between fields are optional
				i++
			}
		}
		i++ // '}'
		if len(c.Fields) == 0 {
			return nil, fmt.Errorf("admin: empty field selection {}")
		}
	}
	if i != len(toks) {
		return nil, fmt.Errorf("admin: trailing input after call: %q", toks[i].text)
	}
	return c, nil
}
