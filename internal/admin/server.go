package admin

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"saql"
)

// defaultLimit caps list pages when the call names no limit.
const defaultLimit = 100

// maxBody bounds mutation request bodies (query sources and queryset
// documents), so a misbehaving client cannot balloon the server.
const maxBody = 4 << 20

// Response is the JSON envelope every /q call answers with.
type Response struct {
	Items  []map[string]any `json:"items,omitempty"`
	Item   map[string]any   `json:"item,omitempty"`
	Next   string           `json:"next,omitempty"`
	OK     bool             `json:"ok,omitempty"`
	Report map[string]any   `json:"report,omitempty"`
	Error  string           `json:"error,omitempty"`
}

// Server serves the admin DSL over HTTP for one engine.
type Server struct {
	eng *saql.Engine
}

// NewServer wraps an engine.
func NewServer(eng *saql.Engine) *Server { return &Server{eng: eng} }

// Handler returns the HTTP handler: GET/POST /q with the call in the q
// parameter. Mutating verbs require POST and confirm=1 (409 otherwise).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/q", s.handleQ)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, resp *Response) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(resp)
}

func fail(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, &Response{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleQ(w http.ResponseWriter, r *http.Request) {
	q := r.FormValue("q")
	if q == "" {
		fail(w, http.StatusBadRequest, "missing q parameter (the DSL call)")
		return
	}
	call, err := Parse(q)
	if err != nil {
		fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if IsMutation(call.Verb) {
		if r.Method != http.MethodPost {
			fail(w, http.StatusMethodNotAllowed, "%s mutates engine state: use POST", call.Verb)
			return
		}
		if r.FormValue("confirm") != "1" {
			fail(w, http.StatusConflict, "%s mutates engine state: pass confirm=1 to proceed", call.Verb)
			return
		}
	}
	switch call.Verb {
	case "list":
		s.handleList(w, call)
	case "get":
		s.handleGet(w, call)
	case "pause", "resume":
		s.handlePauseResume(w, call)
	case "update":
		s.handleUpdate(w, r, call)
	case "apply":
		s.handleApply(w, r, call)
	case "quota":
		s.handleQuota(w, call)
	default:
		fail(w, http.StatusBadRequest, "unknown verb %q (want list, get, pause, resume, update, apply, or quota)", call.Verb)
	}
}

// queryFields are the selectable fields of a query item, in render order.
var queryFields = []string{
	"id", "tenant", "paused", "kind", "labels", "source",
	"events", "pattern_hits", "matches", "alerts", "suppressed",
	"eval_errors", "state_bytes", "alerts_1h",
}

var defaultQueryFields = []string{"id", "tenant", "paused", "alerts"}

// tenantFields are the selectable fields of a tenant item.
var tenantFields = []string{
	"name", "queries", "paused", "alerts", "suppressed",
	"source_events", "events_throttled", "state_bytes", "sharing_ratio",
	"degraded", "max_queries", "max_state_bytes", "alert_budget",
	"alert_window", "ingest_rate",
}

var defaultTenantFields = []string{"name", "queries", "alerts", "suppressed", "degraded"}

func checkFields(sel, known []string) error {
	for _, f := range sel {
		found := false
		for _, k := range known {
			if f == k {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown field %q (want one of %s)", f, strings.Join(known, ", "))
		}
	}
	return nil
}

func (s *Server) queryItem(h *saql.QueryHandle, fields []string) map[string]any {
	name := h.Name()
	var st saql.QueryStats
	if qs, err := h.Stats(); err == nil {
		st = qs
	}
	item := map[string]any{}
	for _, f := range fields {
		switch f {
		case "id":
			item[f] = name
		case "tenant":
			item[f] = saql.TenantOf(name)
		case "paused":
			item[f] = h.Paused()
		case "kind":
			item[f] = h.Kind().String()
		case "labels":
			item[f] = h.Labels()
		case "source":
			item[f] = h.Source()
		case "events":
			item[f] = st.Events
		case "pattern_hits":
			item[f] = st.PatternHits
		case "matches":
			item[f] = st.Matches
		case "alerts":
			item[f] = st.Alerts
		case "suppressed":
			item[f] = st.Suppressed
		case "eval_errors":
			item[f] = st.EvalErrors
		case "state_bytes":
			item[f] = st.StateBytes
		case "alerts_1h":
			item[f] = s.eng.RecentAlerts(name, time.Hour)
		}
	}
	return item
}

func tenantItem(ts saql.TenantStats, fields []string) map[string]any {
	item := map[string]any{}
	for _, f := range fields {
		switch f {
		case "name":
			item[f] = ts.Name
		case "queries":
			item[f] = ts.Queries
		case "paused":
			item[f] = ts.Paused
		case "alerts":
			item[f] = ts.Alerts
		case "suppressed":
			item[f] = ts.Suppressed
		case "source_events":
			item[f] = ts.SourceEvents
		case "events_throttled":
			item[f] = ts.EventsThrottled
		case "state_bytes":
			item[f] = ts.StateBytes
		case "sharing_ratio":
			item[f] = ts.SharingRatio
		case "degraded":
			item[f] = ts.Degraded
		case "max_queries":
			item[f] = ts.Quotas.MaxQueries
		case "max_state_bytes":
			item[f] = ts.Quotas.MaxStateBytes
		case "alert_budget":
			item[f] = ts.Quotas.AlertBudget
		case "alert_window":
			item[f] = ts.Quotas.AlertWindow.String()
		case "ingest_rate":
			item[f] = ts.Quotas.IngestRate
		}
	}
	return item
}

// paginate sorts names, drops everything at or before the after cursor,
// truncates to limit, and returns the next cursor ("" when the page is the
// last).
func paginate(names []string, after string, limit int) (page []string, next string) {
	sort.Strings(names)
	if after != "" {
		i := sort.SearchStrings(names, after)
		if i < len(names) && names[i] == after {
			i++
		}
		names = names[i:]
	}
	if limit <= 0 {
		limit = defaultLimit
	}
	if len(names) > limit {
		return names[:limit], names[limit-1]
	}
	return names, ""
}

func (s *Server) handleList(w http.ResponseWriter, call *Call) {
	what := call.Arg("", 0)
	limit := 0
	if v := call.Named["limit"]; v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			fail(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		limit = n
	}
	after := call.Named["after"]
	switch what {
	case "queries":
		fields := call.Fields
		if fields == nil {
			fields = defaultQueryFields
		}
		if err := checkFields(fields, queryFields); err != nil {
			fail(w, http.StatusBadRequest, "%v", err)
			return
		}
		handles := map[string]*saql.QueryHandle{}
		var names []string
		for _, h := range s.eng.Queries() {
			if t := call.Named["tenant"]; t != "" && saql.TenantOf(h.Name()) != t {
				continue
			}
			handles[h.Name()] = h
			names = append(names, h.Name())
		}
		page, next := paginate(names, after, limit)
		resp := &Response{Items: []map[string]any{}, Next: next}
		for _, name := range page {
			resp.Items = append(resp.Items, s.queryItem(handles[name], fields))
		}
		writeJSON(w, http.StatusOK, resp)
	case "tenants":
		fields := call.Fields
		if fields == nil {
			fields = defaultTenantFields
		}
		if err := checkFields(fields, tenantFields); err != nil {
			fail(w, http.StatusBadRequest, "%v", err)
			return
		}
		all := s.eng.Tenants()
		byName := map[string]saql.TenantStats{}
		var names []string
		for _, ts := range all {
			byName[ts.Name] = ts
			names = append(names, ts.Name)
		}
		page, next := paginate(names, after, limit)
		resp := &Response{Items: []map[string]any{}, Next: next}
		for _, name := range page {
			resp.Items = append(resp.Items, tenantItem(byName[name], fields))
		}
		writeJSON(w, http.StatusOK, resp)
	default:
		fail(w, http.StatusBadRequest, "list what? (want list(queries) or list(tenants))")
	}
}

func (s *Server) handleGet(w http.ResponseWriter, call *Call) {
	if t := call.Named["tenant"]; t != "" {
		fields := call.Fields
		if fields == nil {
			fields = tenantFields // get returns the full record by default
		}
		if err := checkFields(fields, tenantFields); err != nil {
			fail(w, http.StatusBadRequest, "%v", err)
			return
		}
		ts, ok := s.eng.TenantStats(t)
		if !ok {
			fail(w, http.StatusNotFound, "unknown tenant %q", t)
			return
		}
		writeJSON(w, http.StatusOK, &Response{Item: tenantItem(ts, fields)})
		return
	}
	name := call.Arg("id", 0)
	if name == "" {
		fail(w, http.StatusBadRequest, "get needs a query name (get(tenant/query)) or tenant=name")
		return
	}
	fields := call.Fields
	if fields == nil {
		fields = queryFields
	}
	if err := checkFields(fields, queryFields); err != nil {
		fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	h, ok := s.eng.Query(name)
	if !ok {
		fail(w, http.StatusNotFound, "unknown query %q", name)
		return
	}
	writeJSON(w, http.StatusOK, &Response{Item: s.queryItem(h, fields)})
}

func (s *Server) handlePauseResume(w http.ResponseWriter, call *Call) {
	name := call.Arg("id", 0)
	if name == "" {
		fail(w, http.StatusBadRequest, "%s needs a query name", call.Verb)
		return
	}
	h, ok := s.eng.Query(name)
	if !ok {
		fail(w, http.StatusNotFound, "unknown query %q", name)
		return
	}
	var err error
	if call.Verb == "pause" {
		err = h.Pause()
	} else {
		err = h.Resume()
	}
	if err != nil {
		fail(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, &Response{OK: true, Item: map[string]any{"id": name, "paused": h.Paused()}})
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request, call *Call) {
	name := call.Arg("id", 0)
	if name == "" {
		fail(w, http.StatusBadRequest, "update needs a query name")
		return
	}
	src, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err != nil || len(src) == 0 {
		fail(w, http.StatusBadRequest, "update needs the new query source as the request body")
		return
	}
	h, ok := s.eng.Query(name)
	if !ok {
		fail(w, http.StatusNotFound, "unknown query %q", name)
		return
	}
	if err := h.Update(string(src)); err != nil {
		fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, &Response{OK: true, Item: map[string]any{"id": name}})
}

func (s *Server) handleApply(w http.ResponseWriter, r *http.Request, call *Call) {
	doc, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err != nil || len(doc) == 0 {
		fail(w, http.StatusBadRequest, "apply needs a queryset document as the request body")
		return
	}
	set, err := saql.ParseQuerySet(string(doc))
	if err != nil {
		fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	report, err := s.eng.Apply(context.Background(), set)
	if err != nil {
		fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, &Response{OK: true, Report: map[string]any{
		"added": report.Added, "updated": report.Updated,
		"unchanged": report.Unchanged, "removed": report.Removed,
	}})
}

func (s *Server) handleQuota(w http.ResponseWriter, call *Call) {
	tenant := call.Arg("tenant", 0)
	if tenant == "" {
		fail(w, http.StatusBadRequest, "quota needs a tenant name")
		return
	}
	q := s.eng.TenantQuotas(tenant)
	for key, val := range call.Named {
		if key == "tenant" {
			continue
		}
		var dst *int64
		switch key {
		case "max_queries":
			dst = &q.MaxQueries
		case "max_state_bytes":
			dst = &q.MaxStateBytes
		case "alert_budget":
			dst = &q.AlertBudget
		case "ingest_rate":
			dst = &q.IngestRate
		case "alert_window":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				fail(w, http.StatusBadRequest, "bad alert_window %q (want a positive Go duration like 30m)", val)
				return
			}
			q.AlertWindow = d
			continue
		default:
			fail(w, http.StatusBadRequest, "unknown quota %q (want max_queries, max_state_bytes, alert_budget, alert_window, or ingest_rate)", key)
			return
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil || n < 0 {
			fail(w, http.StatusBadRequest, "bad %s value %q (want a non-negative integer; 0 means unlimited)", key, val)
			return
		}
		*dst = n
	}
	s.eng.SetTenantQuotas(tenant, q)
	ts, _ := s.eng.TenantStats(tenant)
	writeJSON(w, http.StatusOK, &Response{OK: true, Item: tenantItem(ts, tenantFields)})
}
