package admin

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"text/tabwriter"
)

// FieldsFor reports the field order a call's result items render with: the
// explicit {…} selection, or the verb's default set.
func FieldsFor(c *Call) []string {
	if c.Fields != nil {
		return c.Fields
	}
	switch c.Verb {
	case "list":
		if c.Arg("", 0) == "tenants" {
			return defaultTenantFields
		}
		return defaultQueryFields
	case "get", "quota":
		if c.Named["tenant"] != "" || c.Verb == "quota" {
			return tenantFields
		}
		return queryFields
	}
	return nil
}

// Query sends one DSL call to the admin server at addr (host:port) and
// decodes the response. Mutating verbs go over POST with confirm=1 when
// confirm is true (and without it when false, so callers can surface the
// server's refusal); body carries the request payload for update/apply.
func Query(addr, dsl string, confirm bool, body io.Reader) (*Response, error) {
	call, err := Parse(dsl)
	if err != nil {
		return nil, err
	}
	vals := url.Values{"q": {dsl}}
	method := http.MethodGet
	if IsMutation(call.Verb) {
		method = http.MethodPost
		if confirm {
			vals.Set("confirm", "1")
		}
	}
	u := fmt.Sprintf("http://%s/q?%s", addr, vals.Encode())
	req, err := http.NewRequest(method, u, body)
	if err != nil {
		return nil, err
	}
	httpResp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	var resp Response
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("admin: bad response (%s): %w", httpResp.Status, err)
	}
	if resp.Error != "" {
		return &resp, fmt.Errorf("admin: %s", resp.Error)
	}
	return &resp, nil
}

// RenderTable writes the response's items as an aligned table with one
// column per field. Single items (get) render as one row; mutation acks
// render their report or item as key=value lines.
func RenderTable(w io.Writer, resp *Response, fields []string) {
	items := resp.Items
	if items == nil && resp.Item != nil {
		items = []map[string]any{resp.Item}
	}
	if items == nil {
		if resp.Report != nil {
			keys := make([]string, 0, len(resp.Report))
			for k := range resp.Report {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(w, "%s=%s\n", k, renderCell(resp.Report[k]))
			}
		} else if resp.OK {
			fmt.Fprintln(w, "ok")
		}
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.ToUpper(strings.Join(fields, "\t")))
	for _, item := range items {
		cells := make([]string, len(fields))
		for i, f := range fields {
			cells[i] = renderCell(item[f])
		}
		fmt.Fprintln(tw, strings.Join(cells, "\t"))
	}
	tw.Flush()
	if resp.Next != "" {
		fmt.Fprintf(w, "(more: after=%s)\n", resp.Next)
	}
}

func renderCell(v any) string {
	switch x := v.(type) {
	case nil:
		return "-"
	case string:
		if x == "" {
			return "-"
		}
		return x
	case float64:
		if x == float64(int64(x)) {
			return fmt.Sprintf("%d", int64(x))
		}
		return fmt.Sprintf("%.2f", x)
	case []any:
		if len(x) == 0 {
			return "-"
		}
		parts := make([]string, len(x))
		for i, e := range x {
			parts[i] = renderCell(e)
		}
		return strings.Join(parts, ",")
	case map[string]any:
		if len(x) == 0 {
			return "-"
		}
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = k + "=" + renderCell(x[k])
		}
		return strings.Join(parts, ",")
	default:
		return fmt.Sprint(x)
	}
}
