package admin

import (
	"net/http/httptest"
	"strings"
	"testing"

	"saql"
)

const minimalQuery = `proc p read file f return p`

func newTestServer(t *testing.T) (*saql.Engine, string) {
	t.Helper()
	eng := saql.New()
	t.Cleanup(func() { eng.Close() })
	for _, name := range []string{"acme/exfil", "globex/watch", "solo"} {
		if _, err := eng.Register(name, minimalQuery); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(NewServer(eng).Handler())
	t.Cleanup(srv.Close)
	return eng, strings.TrimPrefix(srv.URL, "http://")
}

func TestServerList(t *testing.T) {
	_, addr := newTestServer(t)

	resp, err := Query(addr, `list(queries){id tenant paused}`, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 3 {
		t.Fatalf("items = %d, want 3", len(resp.Items))
	}
	// Sorted by id; field selection limits keys.
	if id := resp.Items[0]["id"]; id != "acme/exfil" {
		t.Errorf("first id = %v", id)
	}
	if ten := resp.Items[0]["tenant"]; ten != "acme" {
		t.Errorf("tenant = %v", ten)
	}
	if ten := resp.Items[2]["tenant"]; ten != "default" {
		t.Errorf("unqualified query tenant = %v, want default", ten)
	}
	if _, has := resp.Items[0]["alerts"]; has {
		t.Error("unselected field present in item")
	}

	// Tenant filter.
	resp, err = Query(addr, `list(queries, tenant=acme){id}`, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 1 || resp.Items[0]["id"] != "acme/exfil" {
		t.Errorf("filtered items = %v", resp.Items)
	}

	// Pagination: limit=2 leaves a cursor; following it drains the rest.
	resp, err = Query(addr, `list(queries, limit=2){id}`, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 2 || resp.Next != "globex/watch" {
		t.Errorf("page = %v next = %q", resp.Items, resp.Next)
	}
	resp, err = Query(addr, `list(queries, limit=2, after=globex/watch){id}`, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 1 || resp.Items[0]["id"] != "solo" || resp.Next != "" {
		t.Errorf("second page = %v next = %q", resp.Items, resp.Next)
	}

	// Tenants listing covers every namespace with a query.
	resp, err = Query(addr, `list(tenants){name queries}`, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 3 {
		t.Fatalf("tenants = %v", resp.Items)
	}
	if resp.Items[0]["name"] != "acme" || resp.Items[1]["name"] != "default" {
		t.Errorf("tenant order = %v", resp.Items)
	}

	// Unknown fields are rejected with the known list, not ignored.
	if _, err := Query(addr, `list(queries){id bogus}`, false, nil); err == nil ||
		!strings.Contains(err.Error(), `unknown field "bogus"`) {
		t.Errorf("unknown field error = %v", err)
	}
}

func TestServerGet(t *testing.T) {
	_, addr := newTestServer(t)
	resp, err := Query(addr, `get(acme/exfil){id tenant kind}`, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Item["id"] != "acme/exfil" || resp.Item["tenant"] != "acme" {
		t.Errorf("item = %v", resp.Item)
	}
	if _, err := Query(addr, `get(nope)`, false, nil); err == nil {
		t.Error("get of unknown query succeeded")
	}
	resp, err = Query(addr, `get(tenant=acme){name queries}`, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Item["name"] != "acme" {
		t.Errorf("tenant item = %v", resp.Item)
	}
}

func TestServerMutationsNeedConfirm(t *testing.T) {
	eng, addr := newTestServer(t)

	// Without confirm: refused, nothing changes.
	_, err := Query(addr, `pause(acme/exfil)`, false, nil)
	if err == nil || !strings.Contains(err.Error(), "confirm=1") {
		t.Fatalf("unconfirmed pause error = %v", err)
	}
	if h, _ := eng.Query("acme/exfil"); h.Paused() {
		t.Fatal("unconfirmed pause took effect")
	}

	// With confirm: applied.
	resp, err := Query(addr, `pause(acme/exfil)`, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Item["paused"] != true {
		t.Errorf("pause ack = %+v", resp)
	}
	if h, _ := eng.Query("acme/exfil"); !h.Paused() {
		t.Fatal("confirmed pause did not take effect")
	}
	if _, err := Query(addr, `resume(acme/exfil)`, true, nil); err != nil {
		t.Fatal(err)
	}
	if h, _ := eng.Query("acme/exfil"); h.Paused() {
		t.Fatal("resume did not take effect")
	}
}

func TestServerQuotaAndApply(t *testing.T) {
	eng, addr := newTestServer(t)

	resp, err := Query(addr, `quota(acme, alert_budget=5, alert_window=30m, max_queries=7)`, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Errorf("quota ack = %+v", resp)
	}
	q := eng.TenantQuotas("acme")
	if q.AlertBudget != 5 || q.MaxQueries != 7 || q.AlertWindow.Minutes() != 30 {
		t.Errorf("installed quotas = %+v", q)
	}

	// A second quota call merges: it must not wipe the earlier settings.
	if _, err := Query(addr, `quota(acme, ingest_rate=100)`, true, nil); err != nil {
		t.Fatal(err)
	}
	q = eng.TenantQuotas("acme")
	if q.AlertBudget != 5 || q.IngestRate != 100 {
		t.Errorf("merged quotas = %+v", q)
	}

	doc := `tenant fresh {
  quota max_queries = 3
  query probe { proc p read file f return p }
}`
	resp, err = Query(addr, `apply()`, true, strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	added, _ := resp.Report["added"].([]any)
	if len(added) != 1 || added[0] != "fresh/probe" {
		t.Errorf("apply report = %v", resp.Report)
	}
	if got := eng.TenantQuotas("fresh").MaxQueries; got != 3 {
		t.Errorf("applied tenant quota = %d, want 3", got)
	}
}

func TestServerUpdate(t *testing.T) {
	eng, addr := newTestServer(t)
	newSrc := `proc p write file f return p`
	if _, err := Query(addr, `update(solo)`, true, strings.NewReader(newSrc)); err != nil {
		t.Fatal(err)
	}
	h, _ := eng.Query("solo")
	if h.Source() != newSrc {
		t.Errorf("source after update = %q", h.Source())
	}
	// A bad body is rejected without touching the query.
	if _, err := Query(addr, `update(solo)`, true, strings.NewReader("not saql")); err == nil {
		t.Error("bad update succeeded")
	}
	if h.Source() != newSrc {
		t.Errorf("failed update changed source: %q", h.Source())
	}
}

func TestRenderTable(t *testing.T) {
	_, addr := newTestServer(t)
	dsl := `list(queries){id tenant paused}`
	resp, err := Query(addr, dsl, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	call, _ := Parse(dsl)
	var sb strings.Builder
	RenderTable(&sb, resp, FieldsFor(call))
	out := sb.String()
	for _, want := range []string{"ID", "TENANT", "PAUSED", "acme/exfil", "globex/watch", "solo"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
