package admin

import (
	"strings"
	"testing"
)

func TestParseDSL(t *testing.T) {
	c, err := Parse(`list(queries){id tenant paused alerts_1h}`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Verb != "list" || len(c.Pos) != 1 || c.Pos[0] != "queries" {
		t.Errorf("call = %+v", c)
	}
	want := []string{"id", "tenant", "paused", "alerts_1h"}
	if len(c.Fields) != len(want) {
		t.Fatalf("fields = %v, want %v", c.Fields, want)
	}
	for i, f := range want {
		if c.Fields[i] != f {
			t.Errorf("field %d = %q, want %q", i, c.Fields[i], f)
		}
	}

	c, err = Parse(`list(tenants, limit=5, after=acme)`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Named["limit"] != "5" || c.Named["after"] != "acme" {
		t.Errorf("named = %v", c.Named)
	}
	if c.Fields != nil {
		t.Errorf("fields = %v, want nil (defaults)", c.Fields)
	}

	c, err = Parse(`pause(acme/exfil-volume)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Arg("id", 0); got != "acme/exfil-volume" {
		t.Errorf("target = %q", got)
	}

	c, err = Parse(`quota(acme, alert_budget=100, alert_window=30m)`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Named["alert_budget"] != "100" || c.Named["alert_window"] != "30m" {
		t.Errorf("named = %v", c.Named)
	}

	// Quoted strings carry arbitrary values.
	c, err = Parse(`get("acme/odd name")`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Pos[0] != "acme/odd name" {
		t.Errorf("pos = %v", c.Pos)
	}
}

func TestParseDSLErrors(t *testing.T) {
	cases := []struct{ src, wantErr string }{
		{``, "expected a verb"},
		{`list`, "expected '('"},
		{`list(queries`, "expected ',' or ')'"},
		{`list(queries){}`, "empty field selection"},
		{`list(queries) extra()`, "trailing input"},
		{`list(queries, limit=)`, "expected a value"},
		{`list(queries, limit=1, limit=2)`, "duplicate argument"},
		{`get("unterminated)`, "unterminated string"},
		{`list(qu#eries)`, "unexpected character"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("Parse(%q) error = %v, want containing %q", c.src, err, c.wantErr)
		}
	}
}

func TestIsMutation(t *testing.T) {
	for _, v := range []string{"pause", "resume", "update", "apply", "quota"} {
		if !IsMutation(v) {
			t.Errorf("%s should be a mutation", v)
		}
	}
	for _, v := range []string{"list", "get"} {
		if IsMutation(v) {
			t.Errorf("%s should not be a mutation", v)
		}
	}
}
