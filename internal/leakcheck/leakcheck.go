// Package leakcheck asserts that a test leaves no goroutines behind. The
// engine's lifecycle contract is that Close joins every goroutine it
// started — shard workers, the router, fan-out subscribers, ingestion
// sources, cluster readers — so any test that starts engine machinery can
// call Check first and get the contract enforced at teardown.
package leakcheck

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// Check records the current goroutine count and registers a cleanup that
// fails the test if, after a grace period, more goroutines exist than did
// at the call. Call it at the top of the test, before starting any
// engines, sources, workers, or coordinators. Not meant for t.Parallel
// tests — concurrent tests see each other's goroutines.
func Check(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		// Goroutines unwind asynchronously after Close returns (deferred
		// conn.Close, exiting readers); poll before declaring a leak.
		deadline := time.Now().Add(5 * time.Second)
		for {
			if runtime.NumGoroutine() <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d goroutines at teardown, %d at start\n%s",
			n, base, condense(string(buf)))
	})
}

// condense trims the full stack dump to the goroutine headers plus their
// top frames, which is what identifies a leak without drowning the log.
func condense(stacks string) string {
	var b strings.Builder
	for _, g := range strings.Split(stacks, "\n\n") {
		lines := strings.Split(g, "\n")
		max := 5
		if len(lines) < max {
			max = len(lines)
		}
		b.WriteString(strings.Join(lines[:max], "\n"))
		b.WriteString("\n\n")
	}
	return b.String()
}
