package ast

import (
	"strings"
	"testing"
	"time"

	"saql/internal/event"
	"saql/internal/lexer"
	"saql/internal/value"
)

func TestWindowSpecString(t *testing.T) {
	cases := []struct {
		spec WindowSpec
		want string
	}{
		{WindowSpec{Length: 10 * time.Minute}, "#time(10 min)"},
		{WindowSpec{Length: 10 * time.Second}, "#time(10 s)"},
		{WindowSpec{Length: 2 * time.Hour}, "#time(2 h)"},
		{WindowSpec{Length: 24 * time.Hour}, "#time(1 day)"},
		{WindowSpec{Length: 500 * time.Millisecond}, "#time(500 ms)"},
		{WindowSpec{Length: 90 * time.Second}, "#time(90 s)"},
		{WindowSpec{Length: 10 * time.Minute, Hop: 2 * time.Minute}, "#time(10 min, 2 min)"},
		{WindowSpec{Length: time.Minute, Hop: time.Minute}, "#time(1 min)"},
	}
	for _, c := range cases {
		if got := c.spec.String(); got != c.want {
			t.Errorf("WindowSpec%v = %q, want %q", c.spec, got, c.want)
		}
	}
}

func TestEffectiveHop(t *testing.T) {
	w := WindowSpec{Length: time.Minute}
	if w.EffectiveHop() != time.Minute {
		t.Error("tumbling hop should equal length")
	}
	w.Hop = 10 * time.Second
	if w.EffectiveHop() != 10*time.Second {
		t.Error("explicit hop ignored")
	}
}

func TestExprStrings(t *testing.T) {
	// (ss[0].amt + 5) > |procs diff a| && !cluster.outlier
	e := &BinaryExpr{
		Op: OpAnd,
		Left: &BinaryExpr{
			Op: OpGt,
			Left: &BinaryExpr{
				Op:    OpAdd,
				Left:  &FieldExpr{Base: &IndexExpr{Base: &Ident{Name: "ss"}, Index: 0}, Field: "amt"},
				Right: &Literal{Val: value.Int(5)},
			},
			Right: &CardExpr{X: &BinaryExpr{
				Op:    OpDiff,
				Left:  &Ident{Name: "procs"},
				Right: &Ident{Name: "a"},
			}},
		},
		Right: &UnaryExpr{Op: '!', X: &FieldExpr{Base: &Ident{Name: "cluster"}, Field: "outlier"}},
	}
	got := e.String()
	for _, want := range []string{"ss[0].amt", "|", "diff", "!cluster.outlier", "&&"} {
		if !strings.Contains(got, want) {
			t.Errorf("expr string %q missing %q", got, want)
		}
	}
}

func TestLiteralString(t *testing.T) {
	if got := (&Literal{Val: value.String("x%y")}).String(); got != `"x%y"` {
		t.Errorf("string literal = %q", got)
	}
	if got := (&Literal{Val: value.EmptySet()}).String(); got != "empty_set" {
		t.Errorf("empty set literal = %q", got)
	}
	if got := (&Literal{Val: value.Float(2.5)}).String(); got != "2.5" {
		t.Errorf("float literal = %q", got)
	}
}

func TestQueryString(t *testing.T) {
	q := &Query{
		Globals: []*Constraint{{Attr: "agentid", Op: CmpEq, Val: &Literal{Val: value.String("db-1")}}},
		Patterns: []*EventPattern{{
			Subject: &EntityPattern{Type: event.EntityProcess, Var: "p",
				Constraints: []*AttrConstraint{{Op: CmpEq, Val: &Literal{Val: value.String("%osql.exe")}}}},
			Ops:    []event.Op{event.OpRead, event.OpWrite},
			Object: &EntityPattern{Type: event.EntityNetConn, Var: "i"},
			Alias:  "evt",
		}},
		Window: &WindowSpec{Length: 10 * time.Minute},
		State: &StateBlock{
			History: 3, Name: "ss",
			Fields:  []*StateField{{Name: "amt", Expr: &CallExpr{Func: "sum", Args: []Expr{&FieldExpr{Base: &Ident{Name: "evt"}, Field: "amount"}}}}},
			GroupBy: []Expr{&Ident{Name: "p"}},
		},
		Alerts: []Expr{&BinaryExpr{Op: OpGt,
			Left:  &FieldExpr{Base: &Ident{Name: "ss"}, Field: "amt"},
			Right: &Literal{Val: value.Int(1000)}}},
		Return: &ReturnClause{Distinct: true, Items: []*ReturnItem{{Expr: &Ident{Name: "p"}, Alias: "proc"}}},
	}
	s := q.String()
	for _, want := range []string{
		`agentid = "db-1"`, "read || write", "as evt", "#time(10 min)",
		"state[3] ss", "sum(evt.amount)", "group by p", "alert", "return distinct", "p as proc",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("query string missing %q:\n%s", want, s)
		}
	}
	if !q.IsStateful() {
		t.Error("query with state block should be stateful")
	}
}

func TestInvariantAndClusterStrings(t *testing.T) {
	inv := &InvariantBlock{
		TrainWindows: 10, Offline: true,
		Inits:   []*InvariantStmt{{Var: "a", Expr: &Literal{Val: value.EmptySet()}, Init: true}},
		Updates: []*InvariantStmt{{Var: "a", Expr: &BinaryExpr{Op: OpUnion, Left: &Ident{Name: "a"}, Right: &FieldExpr{Base: &Ident{Name: "ss"}, Field: "s"}}}},
	}
	s := inv.String()
	if !strings.Contains(s, "invariant[10][offline]") || !strings.Contains(s, "a := empty_set") {
		t.Errorf("invariant string = %q", s)
	}
	online := &InvariantBlock{TrainWindows: 5, Offline: false, Inits: inv.Inits}
	if !strings.Contains(online.String(), "[online]") {
		t.Errorf("online invariant string = %q", online.String())
	}
	cl := &ClusterSpec{
		Points:   &FieldExpr{Base: &Ident{Name: "ss"}, Field: "amt"},
		Distance: "ed",
		Method:   "DBSCAN(100000, 5)",
	}
	if got := cl.String(); !strings.Contains(got, `all(ss.amt)`) || !strings.Contains(got, `"DBSCAN(100000, 5)"`) {
		t.Errorf("cluster string = %q", got)
	}
}

func TestTemporalString(t *testing.T) {
	tc := &TemporalClause{Order: []string{"e1", "e2", "e3"}}
	if tc.String() != "with e1 -> e2 -> e3" {
		t.Errorf("temporal string = %q", tc.String())
	}
}

func TestWalkVisitsAll(t *testing.T) {
	e := &BinaryExpr{
		Op:   OpAnd,
		Left: &CallExpr{Func: "abs", Args: []Expr{&UnaryExpr{Op: '-', X: &Ident{Name: "x"}}}},
		Right: &CardExpr{X: &FieldExpr{
			Base: &IndexExpr{Base: &Ident{Name: "ss"}, Index: 1}, Field: "f"}},
	}
	var kinds []string
	Walk(e, func(n Expr) {
		switch n.(type) {
		case *BinaryExpr:
			kinds = append(kinds, "bin")
		case *CallExpr:
			kinds = append(kinds, "call")
		case *UnaryExpr:
			kinds = append(kinds, "unary")
		case *Ident:
			kinds = append(kinds, "ident")
		case *CardExpr:
			kinds = append(kinds, "card")
		case *FieldExpr:
			kinds = append(kinds, "field")
		case *IndexExpr:
			kinds = append(kinds, "index")
		}
	})
	want := map[string]int{"bin": 1, "call": 1, "unary": 1, "ident": 2, "card": 1, "field": 1, "index": 1}
	got := map[string]int{}
	for _, k := range kinds {
		got[k]++
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("walk visited %d %s nodes, want %d", got[k], k, n)
		}
	}
	Walk(nil, func(Expr) { t.Error("walk of nil should not visit") })
}

func TestCompareOpStrings(t *testing.T) {
	ops := map[CompareOp]string{
		CmpEq: "=", CmpNe: "!=", CmpLt: "<", CmpLe: "<=", CmpGt: ">", CmpGe: ">=",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%v = %q", op, op.String())
		}
	}
	binOps := map[BinOp]string{
		OpOr: "||", OpAnd: "&&", OpUnion: "union", OpDiff: "diff", OpIn: "in", OpMod: "%",
	}
	for op, want := range binOps {
		if op.String() != want {
			t.Errorf("%v = %q", op, op.String())
		}
	}
}

func TestPositions(t *testing.T) {
	pos := lexer.Pos{Line: 3, Col: 7}
	nodes := []Node{
		&Literal{LitPos: pos},
		&Ident{IdPos: pos},
		&CallExpr{CallPos: pos},
		&UnaryExpr{UPos: pos},
		&CardExpr{CPos: pos},
		&Constraint{ConstPos: pos},
		&EventPattern{PatPos: pos},
		&EntityPattern{EntPos: pos},
		&TemporalClause{TemPos: pos},
		&WindowSpec{WinPos: pos},
		&StateBlock{StatePos: pos},
		&InvariantBlock{InvPos: pos},
		&ClusterSpec{CluPos: pos},
		&ReturnClause{RetPos: pos},
	}
	for _, n := range nodes {
		if n.Pos() != pos {
			t.Errorf("%T.Pos() = %v", n, n.Pos())
		}
	}
}
