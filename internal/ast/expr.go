package ast

import (
	"fmt"
	"strconv"
	"strings"

	"saql/internal/lexer"
	"saql/internal/value"
)

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// CompareOp enumerates comparison operators.
type CompareOp uint8

// Comparison operators. CmpEq covers both `=` and `==` (SAQL treats them
// identically in constraint position); string equality applies % wildcards.
const (
	CmpInvalid CompareOp = iota
	CmpEq
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// String renders the operator.
func (o CompareOp) String() string {
	switch o {
	case CmpEq:
		return "="
	case CmpNe:
		return "!="
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	default:
		return "?"
	}
}

// BinOp enumerates binary expression operators.
type BinOp uint8

// Binary operators, including set operators union/diff/intersect and the
// membership test `in`.
const (
	OpInvalid BinOp = iota
	OpOr            // ||
	OpAnd           // &&
	OpEq            // ==, =
	OpNe            // !=
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpUnion
	OpDiff
	OpIntersect
	OpIn
)

var binOpNames = map[BinOp]string{
	OpOr: "||", OpAnd: "&&", OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=",
	OpGt: ">", OpGe: ">=", OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpMod: "%", OpUnion: "union", OpDiff: "diff", OpIntersect: "intersect", OpIn: "in",
}

// String renders the operator.
func (o BinOp) String() string {
	if s, ok := binOpNames[o]; ok {
		return s
	}
	return "?"
}

// Literal is a constant: string, number, boolean, or empty_set.
type Literal struct {
	Val    value.Value
	LitPos lexer.Pos
}

// Pos implements Node.
func (l *Literal) Pos() lexer.Pos { return l.LitPos }
func (l *Literal) exprNode()      {}

// String renders the literal; strings are quoted.
func (l *Literal) String() string {
	if l.Val.Kind() == value.KindString {
		return strconv.Quote(l.Val.Str())
	}
	if l.Val.Kind() == value.KindSet && l.Val.SetLen() == 0 {
		return "empty_set"
	}
	return l.Val.String()
}

// Ident references an entity variable (p1), event alias (evt), state name
// (ss), invariant variable (a), or the special `cluster` namespace.
type Ident struct {
	Name  string
	IdPos lexer.Pos
}

// Pos implements Node.
func (i *Ident) Pos() lexer.Pos { return i.IdPos }
func (i *Ident) exprNode()      {}

// String renders the identifier.
func (i *Ident) String() string { return i.Name }

// FieldExpr accesses an attribute or state field: p1.exe_name, ss.set_proc,
// cluster.outlier, or (with Index) ss[0].avg_amount.
type FieldExpr struct {
	Base  Expr // Ident or IndexExpr
	Field string
}

// Pos implements Node.
func (f *FieldExpr) Pos() lexer.Pos { return f.Base.Pos() }
func (f *FieldExpr) exprNode()      {}

// String renders the access.
func (f *FieldExpr) String() string { return f.Base.String() + "." + f.Field }

// IndexExpr is state-history indexing: ss[0], ss[2].
type IndexExpr struct {
	Base  Expr
	Index int
}

// Pos implements Node.
func (x *IndexExpr) Pos() lexer.Pos { return x.Base.Pos() }
func (x *IndexExpr) exprNode()      {}

// String renders the indexing.
func (x *IndexExpr) String() string { return fmt.Sprintf("%s[%d]", x.Base, x.Index) }

// CallExpr is a function or aggregation call: avg(evt.amount), set(p2.exe_name),
// abs(x), all(ss.amt).
type CallExpr struct {
	Func    string
	Args    []Expr
	CallPos lexer.Pos
}

// Pos implements Node.
func (c *CallExpr) Pos() lexer.Pos { return c.CallPos }
func (c *CallExpr) exprNode()      {}

// String renders the call.
func (c *CallExpr) String() string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	return c.Func + "(" + strings.Join(args, ", ") + ")"
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op    BinOp
	Left  Expr
	Right Expr
}

// Pos implements Node.
func (b *BinaryExpr) Pos() lexer.Pos { return b.Left.Pos() }
func (b *BinaryExpr) exprNode()      {}

// String renders the operation fully parenthesised.
func (b *BinaryExpr) String() string {
	return "(" + b.Left.String() + " " + b.Op.String() + " " + b.Right.String() + ")"
}

// UnaryExpr is !x or -x.
type UnaryExpr struct {
	Op   byte // '!' or '-'
	X    Expr
	UPos lexer.Pos
}

// Pos implements Node.
func (u *UnaryExpr) Pos() lexer.Pos { return u.UPos }
func (u *UnaryExpr) exprNode()      {}

// String renders the operation.
func (u *UnaryExpr) String() string { return string(u.Op) + u.X.String() }

// CardExpr is the set-cardinality form |expr|, as in `|ss.set_proc diff a| > 0`.
type CardExpr struct {
	X    Expr
	CPos lexer.Pos
}

// Pos implements Node.
func (c *CardExpr) Pos() lexer.Pos { return c.CPos }
func (c *CardExpr) exprNode()      {}

// String renders the form.
func (c *CardExpr) String() string { return "|" + c.X.String() + "|" }

// Walk visits e and all sub-expressions in depth-first order, calling fn for
// each. Walk is used by sema for reference checking and by the scheduler for
// signature extraction.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *FieldExpr:
		Walk(x.Base, fn)
	case *IndexExpr:
		Walk(x.Base, fn)
	case *CallExpr:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	case *BinaryExpr:
		Walk(x.Left, fn)
		Walk(x.Right, fn)
	case *UnaryExpr:
		Walk(x.X, fn)
	case *CardExpr:
		Walk(x.X, fn)
	}
}
