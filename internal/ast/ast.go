// Package ast defines the abstract syntax tree of the SAQL language: event
// patterns with entity/attribute constraints, global constraints, temporal
// relationships, sliding-window specs, state blocks with aggregation and
// grouping, invariant blocks, cluster specs, alert conditions, and return
// clauses. The parser produces these nodes; sema validates them; the engine
// compiles them into executable queries.
package ast

import (
	"fmt"
	"strings"
	"time"

	"saql/internal/event"
	"saql/internal/lexer"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() lexer.Pos
	String() string
}

// ---------------------------------------------------------------------------
// Query
// ---------------------------------------------------------------------------

// Query is a complete parsed SAQL query.
type Query struct {
	Name       string        // optional, set by the caller for scheduling/UI
	Globals    []*Constraint // e.g. agentid = "db-server-1"
	Patterns   []*EventPattern
	Temporal   *TemporalClause // with evt1 -> evt2 -> ...
	Window     *WindowSpec     // #time(10 min) — shared by all patterns
	State      *StateBlock
	Invariant  *InvariantBlock
	Cluster    *ClusterSpec
	Alerts     []Expr // each alert line; any true condition raises an alert
	Return     *ReturnClause
	SourcePos  lexer.Pos
	SourceText string // original query text, for UI echo
}

// Pos implements Node.
func (q *Query) Pos() lexer.Pos { return q.SourcePos }

// IsStateful reports whether the query maintains sliding-window state (as
// opposed to a pure rule-based pattern query).
func (q *Query) IsStateful() bool { return q.State != nil }

// String reconstructs a normalised form of the query.
func (q *Query) String() string {
	var sb strings.Builder
	for _, g := range q.Globals {
		sb.WriteString(g.String())
		sb.WriteByte('\n')
	}
	for i, p := range q.Patterns {
		sb.WriteString(p.String())
		if i == len(q.Patterns)-1 && q.Window != nil {
			sb.WriteString(" " + q.Window.String())
		}
		sb.WriteByte('\n')
	}
	if q.Temporal != nil {
		sb.WriteString(q.Temporal.String() + "\n")
	}
	if q.State != nil {
		sb.WriteString(q.State.String() + "\n")
	}
	if q.Invariant != nil {
		sb.WriteString(q.Invariant.String() + "\n")
	}
	if q.Cluster != nil {
		sb.WriteString(q.Cluster.String() + "\n")
	}
	for _, a := range q.Alerts {
		sb.WriteString("alert " + a.String() + "\n")
	}
	if q.Return != nil {
		sb.WriteString(q.Return.String() + "\n")
	}
	return sb.String()
}

// Constraint is a global attribute constraint such as `agentid = "xxx"`.
type Constraint struct {
	Attr     string
	Op       CompareOp
	Val      *Literal
	ConstPos lexer.Pos
}

// Pos implements Node.
func (c *Constraint) Pos() lexer.Pos { return c.ConstPos }

// String renders the constraint.
func (c *Constraint) String() string {
	return fmt.Sprintf("%s %s %s", c.Attr, c.Op, c.Val)
}

// ---------------------------------------------------------------------------
// Event patterns
// ---------------------------------------------------------------------------

// EventPattern is one event clause: `proc p1["%cmd.exe"] start proc p2 as evt1`.
type EventPattern struct {
	Subject *EntityPattern
	Ops     []event.Op // alternation: read || write
	Object  *EntityPattern
	Alias   string // `as evt1`; may be empty
	PatPos  lexer.Pos
}

// Pos implements Node.
func (p *EventPattern) Pos() lexer.Pos { return p.PatPos }

// String renders the pattern.
func (p *EventPattern) String() string {
	ops := make([]string, len(p.Ops))
	for i, o := range p.Ops {
		ops[i] = o.String()
	}
	s := fmt.Sprintf("%s %s %s", p.Subject, strings.Join(ops, " || "), p.Object)
	if p.Alias != "" {
		s += " as " + p.Alias
	}
	return s
}

// EntityPattern is an entity occurrence with optional variable binding and
// attribute constraints: `proc p1["%cmd.exe"]`, `ip i1[dstip="10.0.0.1"]`.
type EntityPattern struct {
	Type        event.EntityType
	Var         string // may be empty (anonymous entity)
	Constraints []*AttrConstraint
	EntPos      lexer.Pos
}

// Pos implements Node.
func (e *EntityPattern) Pos() lexer.Pos { return e.EntPos }

// String renders the entity pattern.
func (e *EntityPattern) String() string {
	s := e.Type.String()
	if e.Var != "" {
		s += " " + e.Var
	}
	if len(e.Constraints) > 0 {
		cs := make([]string, len(e.Constraints))
		for i, c := range e.Constraints {
			cs[i] = c.String()
		}
		s += "[" + strings.Join(cs, ", ") + "]"
	}
	return s
}

// AttrConstraint constrains one attribute of an entity. A bare string
// constraint ("%osql.exe") leaves Attr empty and matches the entity's
// default attribute with % wildcards.
type AttrConstraint struct {
	Attr string // empty means default attribute
	Op   CompareOp
	Val  *Literal
}

// String renders the constraint.
func (c *AttrConstraint) String() string {
	if c.Attr == "" {
		return c.Val.String()
	}
	return fmt.Sprintf("%s %s %s", c.Attr, c.Op, c.Val)
}

// TemporalClause is `with evt1 -> evt2 -> evt3`, requiring the named events
// to occur in time order.
type TemporalClause struct {
	Order  []string // event aliases in required order
	TemPos lexer.Pos
}

// Pos implements Node.
func (t *TemporalClause) Pos() lexer.Pos { return t.TemPos }

// String renders the clause.
func (t *TemporalClause) String() string {
	return "with " + strings.Join(t.Order, " -> ")
}

// WindowSpec is `#time(L)` or `#time(L, H)`: window length and hop. Hop == 0
// means tumbling (hop == length).
type WindowSpec struct {
	Length time.Duration
	Hop    time.Duration
	WinPos lexer.Pos
}

// Pos implements Node.
func (w *WindowSpec) Pos() lexer.Pos { return w.WinPos }

// EffectiveHop returns the hop, defaulting to the length (tumbling window).
func (w *WindowSpec) EffectiveHop() time.Duration {
	if w.Hop > 0 {
		return w.Hop
	}
	return w.Length
}

// String renders the window spec using SAQL duration syntax (e.g. "10 min").
func (w *WindowSpec) String() string {
	if w.Hop > 0 && w.Hop != w.Length {
		return fmt.Sprintf("#time(%s, %s)", formatDuration(w.Length), formatDuration(w.Hop))
	}
	return fmt.Sprintf("#time(%s)", formatDuration(w.Length))
}

// formatDuration renders a duration in the largest SAQL unit that divides it
// exactly, so that WindowSpec.String() re-parses.
func formatDuration(d time.Duration) string {
	type unit struct {
		d    time.Duration
		name string
	}
	units := []unit{
		{24 * time.Hour, "day"},
		{time.Hour, "h"},
		{time.Minute, "min"},
		{time.Second, "s"},
		{time.Millisecond, "ms"},
	}
	for _, u := range units {
		if d >= u.d && d%u.d == 0 {
			return fmt.Sprintf("%d %s", d/u.d, u.name)
		}
	}
	// Sub-millisecond or irregular: fall back to fractional seconds.
	return fmt.Sprintf("%g s", d.Seconds())
}

// ---------------------------------------------------------------------------
// State, invariant, cluster blocks
// ---------------------------------------------------------------------------

// StateBlock is `state[3] ss { avg_amount := avg(evt.amount) } group by p`.
type StateBlock struct {
	History  int    // number of past windows retained (state[3]); >= 1
	Name     string // state variable name, e.g. ss
	Fields   []*StateField
	GroupBy  []Expr
	StatePos lexer.Pos
}

// Pos implements Node.
func (s *StateBlock) Pos() lexer.Pos { return s.StatePos }

// String renders the block.
func (s *StateBlock) String() string {
	var sb strings.Builder
	sb.WriteString("state")
	if s.History > 1 {
		fmt.Fprintf(&sb, "[%d]", s.History)
	}
	sb.WriteString(" " + s.Name + " {\n")
	for _, f := range s.Fields {
		fmt.Fprintf(&sb, "  %s := %s\n", f.Name, f.Expr)
	}
	sb.WriteString("}")
	if len(s.GroupBy) > 0 {
		gs := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			gs[i] = g.String()
		}
		sb.WriteString(" group by " + strings.Join(gs, ", "))
	}
	return sb.String()
}

// StateField is one computed state field: `avg_amount := avg(evt.amount)`.
type StateField struct {
	Name string
	Expr Expr // normally an aggregation call
}

// InvariantBlock is:
//
//	invariant[10][offline] {
//	  a := empty_set          // init
//	  a = a union ss.set_proc // update, applied per closed window
//	}
type InvariantBlock struct {
	TrainWindows int  // number of training windows
	Offline      bool // offline: freeze after training; online: keep updating
	Inits        []*InvariantStmt
	Updates      []*InvariantStmt
	InvPos       lexer.Pos
}

// Pos implements Node.
func (b *InvariantBlock) Pos() lexer.Pos { return b.InvPos }

// String renders the block.
func (b *InvariantBlock) String() string {
	mode := "online"
	if b.Offline {
		mode = "offline"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "invariant[%d][%s] {\n", b.TrainWindows, mode)
	for _, s := range b.Inits {
		fmt.Fprintf(&sb, "  %s := %s\n", s.Var, s.Expr)
	}
	for _, s := range b.Updates {
		fmt.Fprintf(&sb, "  %s = %s\n", s.Var, s.Expr)
	}
	sb.WriteString("}")
	return sb.String()
}

// InvariantStmt assigns an invariant variable; Init distinguishes `:=` from `=`.
type InvariantStmt struct {
	Var  string
	Expr Expr
	Init bool
}

// ClusterSpec is:
//
//	cluster(points=all(ss.amt), distance="ed", method="DBSCAN(100000, 5)")
type ClusterSpec struct {
	Points   Expr   // argument of all(...): one coordinate vector per group
	Distance string // "ed" euclidean, "md" manhattan, "cd" chebyshev, "cos" cosine
	Method   string // e.g. `DBSCAN(100000, 5)` or `KMEANS(3)`
	CluPos   lexer.Pos
}

// Pos implements Node.
func (c *ClusterSpec) Pos() lexer.Pos { return c.CluPos }

// String renders the spec.
func (c *ClusterSpec) String() string {
	return fmt.Sprintf("cluster(points=all(%s), distance=%q, method=%q)", c.Points, c.Distance, c.Method)
}

// ReturnClause is `return distinct p1, p2, ss[0].avg_amount`.
type ReturnClause struct {
	Distinct bool
	Items    []*ReturnItem
	RetPos   lexer.Pos
}

// Pos implements Node.
func (r *ReturnClause) Pos() lexer.Pos { return r.RetPos }

// String renders the clause.
func (r *ReturnClause) String() string {
	items := make([]string, len(r.Items))
	for i, it := range r.Items {
		items[i] = it.String()
	}
	s := "return "
	if r.Distinct {
		s += "distinct "
	}
	return s + strings.Join(items, ", ")
}

// ReturnItem is one returned expression with an optional alias.
type ReturnItem struct {
	Expr  Expr
	Alias string
}

// String renders the item.
func (r *ReturnItem) String() string {
	if r.Alias != "" {
		return r.Expr.String() + " as " + r.Alias
	}
	return r.Expr.String()
}
