package engine

import "saql/internal/event"

// Placement classifies how a query's runtime state may be distributed
// across parallel scheduler shards. The sharded runtime establishes one
// total event order and routes each event to the shards owning state for
// it, with watermark-bearing touch entries and batch stamps keeping window
// boundaries identical everywhere; placement decides which shard(s)
// actually fold an event into query state — and therefore which shards the
// router must deliver it to.
type Placement uint8

const (
	// PlacePinned marks queries whose semantics need the total event order
	// in one place: multievent rule queries (matches join events across
	// entities), outlier queries (clustering peers across all groups of a
	// window), stateful queries without a group-by (a single global group),
	// and any query using `return distinct` (global suppression table).
	// Pinned queries run on exactly one shard.
	PlacePinned Placement = iota
	// PlaceByGroup marks stateful queries whose per-group state is
	// independent across groups: every shard holds a replica, and each
	// group-by key is owned by exactly one shard.
	PlaceByGroup
	// PlaceByEvent marks stateless single-pattern rule queries: each event
	// produces alerts independently, so events are split across shards by
	// subject entity.
	PlaceByEvent
)

// String names the placement.
func (p Placement) String() string {
	switch p {
	case PlacePinned:
		return "pinned"
	case PlaceByGroup:
		return "by-group"
	case PlaceByEvent:
		return "by-event"
	default:
		return "unknown"
	}
}

// Placement reports how this query may be distributed across shards.
func (q *Query) Placement() Placement {
	if q.distinct != nil {
		// `return distinct` keeps one global suppression table.
		return PlacePinned
	}
	if q.stateful {
		if q.hasCluster {
			// Clustering compares all groups of a window against each other.
			return PlacePinned
		}
		if len(q.groupBy) == 0 {
			return PlacePinned
		}
		return PlaceByGroup
	}
	if len(q.patterns) == 1 {
		// Single-pattern rule queries complete a match per event with no
		// cross-event partial state.
		return PlaceByEvent
	}
	return PlacePinned
}

// SetGroupFilter restricts a by-group replica to the group-by keys it owns:
// events whose group key is rejected are still observed (the watermark must
// advance identically on every shard) but fold no state. Pass nil to own
// every group (the serial engine's behaviour).
func (q *Query) SetGroupFilter(f func(groupKey string) bool) { q.groupFilter = f }

// SetEventFilter restricts a by-event replica to the events it owns. Pass
// nil to own every event.
func (q *Query) SetEventFilter(f func(*event.Event) bool) { q.eventFilter = f }
