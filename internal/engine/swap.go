package engine

// Hot-swap support: pausing a query in place and carrying sliding-window
// state from an old compiled query into its replacement. Both operations are
// driven by the scheduler (serial engine) or a shard worker (sharded
// runtime) at a consistent point of the event stream; neither is safe to
// call concurrently with Ingest on the same query.

// SetPaused marks the query paused or active. A paused query ingests no
// events — no pattern matching, no state folding, no watermark advance — but
// keeps all accumulated state (open windows, histories, invariants, partial
// matches), so Resume continues exactly where Pause left off. Flush still
// closes a paused query's open windows.
func (q *Query) SetPaused(p bool) { q.paused = p }

// Paused reports whether the query is paused.
func (q *Query) Paused() bool { return q.paused }

// CanCarryStateFrom reports whether this query can adopt old's sliding-window
// state in a hot-swap: both stateful, with identical window spec, state
// block (fields, grouping, history depth — including the depth implied by
// ss[k] references in alert/return clauses), and invariant block. Pattern
// constraints, alert thresholds, return clauses, and cluster specs may all
// differ: those are evaluated against the carried state, which is exactly
// the live-tuning use case. The check is AST-level only, so it is safe to
// call before the swap is scheduled.
func (q *Query) CanCarryStateFrom(old *Query) bool {
	if old == nil || !q.stateful || !old.stateful {
		return false
	}
	if q.AST.Window == nil || old.AST.Window == nil {
		return false
	}
	if q.AST.Window.Length != old.AST.Window.Length || q.AST.Window.Hop != old.AST.Window.Hop {
		return false
	}
	if q.AST.State.String() != old.AST.State.String() {
		return false
	}
	if q.historyLen != old.historyLen {
		return false
	}
	newInv, oldInv := q.AST.Invariant, old.AST.Invariant
	if (newInv == nil) != (oldInv == nil) {
		return false
	}
	if newInv != nil && newInv.String() != oldInv.String() {
		return false
	}
	return true
}

// CarryStateFrom moves old's runtime state into q: the window manager (open
// windows and watermark), every group's history ring and invariant state,
// and the runtime counters (WindowsClosed drives history backfill for
// late-appearing groups, so it must travel with the windows it counted).
// The `return distinct` suppression table carries only when the return
// clause is textually unchanged — different return items key differently.
// Callers must have established CanCarryStateFrom and must run at a point
// where neither query is ingesting events.
func (q *Query) CarryStateFrom(old *Query) {
	q.winMgr = old.winMgr
	q.groups = old.groups
	q.stats = old.stats
	if q.distinct != nil && old.distinct != nil &&
		q.AST.Return.String() == old.AST.Return.String() {
		q.distinct = old.distinct
	}
}
