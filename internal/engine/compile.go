package engine

import (
	"fmt"
	"sync/atomic"
	"time"

	"saql/internal/ast"
	"saql/internal/cluster"
	"saql/internal/event"
	"saql/internal/invariant"
	"saql/internal/matcher"
	"saql/internal/parser"
	"saql/internal/pcode"
	"saql/internal/sema"
	"saql/internal/value"
	"saql/internal/window"
)

// CompileOptions tune a compiled query's resource bounds.
type CompileOptions struct {
	// MatchHorizon bounds how long a partial multievent match may wait for
	// its next event. Zero uses the query's #time window, or 10 minutes.
	MatchHorizon time.Duration
	// MaxPartials caps the multievent matcher's partial-match table.
	MaxPartials int
	// MaxDistinct caps the `return distinct` suppression table.
	MaxDistinct int
	// GroupIdleWindows is how many consecutive empty windows a group's
	// state survives before it is evicted. Zero derives it from the
	// query's history/training depth.
	GroupIdleWindows int
	// Interpret disables bytecode compilation (internal/pcode) entirely,
	// pinning every predicate and aggregation argument to the tree-walking
	// evaluators. It exists for the interpreted-vs-compiled benchmark
	// baseline and the differential correctness suites; production paths
	// leave it false.
	Interpret bool
	// Fallbacks, when non-nil, receives this query's string-fallback
	// comparison counts instead of the process-wide pcode counter, so each
	// engine attributes fallbacks to its own queries. Engine-internal
	// plumbing: the snapshot codec serialises CompileOptions field by field
	// and deliberately omits this pointer.
	Fallbacks *atomic.Int64
}

func (o CompileOptions) withDefaults() CompileOptions {
	if o.MaxPartials <= 0 {
		o.MaxPartials = 4096
	}
	if o.MaxDistinct <= 0 {
		o.MaxDistinct = 1 << 16
	}
	return o
}

// Query is a compiled, executable SAQL query. A Query is not safe for
// concurrent use; the engine serialises event delivery per query.
type Query struct {
	Name string
	AST  *ast.Query
	Info *sema.Info
	Kind ModelKind

	opts CompileOptions

	// Pattern matching.
	patterns []*matcher.Pattern
	global   matcher.GlobalPred
	seq      *matcher.SeqMatcher // nil for stateful queries

	// Stateful execution.
	stateful  bool
	winMgr    *window.Manager
	fieldArgs []ast.Expr // aggregation argument per state field
	groupBy   []ast.Expr
	fastKeys  []keyFn // per-pattern fast group-key extractor (may be nil)
	// fastArgs[pattern][field] is the compiled aggregation-argument program
	// for one pattern's bindings; a nil row means that pattern keeps the
	// tree-walker for all fields (all-or-nothing per pattern). Only built
	// when fastKeys exists, so the hot ingest path can skip environment
	// construction entirely.
	fastArgs   [][]*pcode.Prog
	historyLen int
	idleLimit  int
	groups     map[string]*groupRuntime

	// Invariant model.
	invSpec  invariant.Spec
	invInits map[string]value.Value
	hasInv   bool

	// Outlier model.
	hasCluster  bool
	clusterDist cluster.Distance
	clusterName string
	clusterArgs []float64
	pointsExpr  ast.Expr

	// Output.
	alerts   []ast.Expr
	returnC  *ast.ReturnClause
	distinct map[string]struct{}

	// Shard ownership filters (nil outside the sharded runtime).
	groupFilter func(string) bool
	eventFilter func(*event.Event) bool

	// paused gates event ingestion (see SetPaused). It is mutated only at
	// consistent stream points, under the owning scheduler's lock.
	paused bool

	stats QueryStats
	now   func() time.Time
}

// QueryStats counts a query's runtime activity.
type QueryStats struct {
	Events        int64 // events offered
	PatternHits   int64 // pattern-level matches
	Matches       int64 // completed multievent matches
	WindowsClosed int64
	Alerts        int64
	Suppressed    int64 // alerts dropped by `return distinct`
	EvalErrors    int64
	StateBytes    int64 // serialized live-state estimate (see Query.StateBytes)
}

// groupRuntime is the persistent per-group state across windows.
type groupRuntime struct {
	key     string
	history *window.History
	inv     *invariant.State
	// Latest non-empty bindings, used to evaluate alert/return expressions
	// for windows in which the group had activity.
	idleWindows int
}

// Compile parses, checks, and compiles SAQL source into an executable query.
func Compile(name, src string, opts CompileOptions) (*Query, error) {
	q, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	q.Name = name
	return CompileAST(name, q, opts)
}

// CompileAST checks and compiles a parsed query.
func CompileAST(name string, q *ast.Query, opts CompileOptions) (*Query, error) {
	info, err := sema.Check(q)
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()

	cq := &Query{
		Name:    name,
		AST:     q,
		Info:    info,
		opts:    opts,
		global:  matcher.CompileGlobalsWith(q.Globals, opts.Interpret, opts.Fallbacks),
		alerts:  q.Alerts,
		returnC: q.Return,
		now:     time.Now, //saql:wallclock injectable clock default; feeds Alert.Detected only, never evaluation
		groups:  map[string]*groupRuntime{},
	}
	if q.Return != nil && q.Return.Distinct {
		cq.distinct = map[string]struct{}{}
	}

	// Compile patterns.
	for i, p := range q.Patterns {
		cp, err := matcher.CompileWith(i, p, opts.Interpret, opts.Fallbacks)
		if err != nil {
			return nil, err
		}
		cq.patterns = append(cq.patterns, cp)
	}

	cq.stateful = q.State != nil
	if !cq.stateful {
		// Rule-based query: build the sequence matcher.
		var order []int
		if q.Temporal != nil {
			for _, alias := range q.Temporal.Order {
				order = append(order, info.Aliases[alias])
			}
		}
		horizon := opts.MatchHorizon
		if horizon == 0 && q.Window != nil {
			horizon = q.Window.Length
		}
		seq, err := matcher.NewSeqMatcher(cq.patterns, cq.global, order, matcher.Config{
			Horizon:     horizon,
			MaxPartials: opts.MaxPartials,
		})
		if err != nil {
			return nil, err
		}
		cq.seq = seq
		cq.Kind = KindRule
		return cq, nil
	}

	// Stateful query: window manager and aggregation plumbing.
	spec := window.Spec{Length: q.Window.Length, Hop: q.Window.Hop}
	fields := make([]window.FieldSpec, 0, len(q.State.Fields))
	for _, f := range q.State.Fields {
		call := f.Expr.(*ast.CallExpr) // guaranteed by sema
		fs := window.FieldSpec{Name: f.Name, AggName: call.Func}
		for _, extra := range call.Args[1:] {
			fs.AggParams = append(fs.AggParams, extra.(*ast.Literal).Val)
		}
		fields = append(fields, fs)
		cq.fieldArgs = append(cq.fieldArgs, rewriteBareAlias(call.Args[0], info))
	}
	mgr, err := window.NewManager(spec, fields)
	if err != nil {
		return nil, err
	}
	cq.winMgr = mgr
	cq.groupBy = q.State.GroupBy
	cq.fastKeys = compileFastGroupKeys(q)
	if !opts.Interpret && cq.fastKeys != nil {
		cq.fastArgs = compileFastArgs(q, cq.fieldArgs)
	}

	cq.historyLen = q.State.History
	if cq.historyLen < info.MaxStateIndex+1 {
		cq.historyLen = info.MaxStateIndex + 1
	}

	if q.Invariant != nil {
		cq.hasInv = true
		mode := invariant.Offline
		if !q.Invariant.Offline {
			mode = invariant.Online
		}
		cq.invSpec = invariant.Spec{TrainWindows: q.Invariant.TrainWindows, Mode: mode}
		// Initial values are constant expressions; evaluate once.
		cq.invInits = map[string]value.Value{}
		for _, st := range q.Invariant.Inits {
			lit, ok := st.Expr.(*ast.Literal)
			if !ok {
				return nil, fmt.Errorf("engine: invariant init %q must be a literal (e.g. empty_set)", st.Var)
			}
			cq.invInits[st.Var] = lit.Val
		}
	}

	if q.Cluster != nil {
		cq.hasCluster = true
		dist, err := cluster.ByName(q.Cluster.Distance)
		if err != nil {
			return nil, err
		}
		cq.clusterDist = dist
		cq.clusterName = info.ClusterMethod
		cq.clusterArgs = info.ClusterParams
		cq.pointsExpr = q.Cluster.Points
	}

	cq.idleLimit = opts.GroupIdleWindows
	if cq.idleLimit <= 0 {
		cq.idleLimit = cq.historyLen + 8
		if cq.hasInv && cq.invSpec.TrainWindows+8 > cq.idleLimit {
			cq.idleLimit = cq.invSpec.TrainWindows + 8
		}
	}

	switch {
	case cq.hasCluster:
		cq.Kind = KindOutlier
	case cq.hasInv:
		cq.Kind = KindInvariant
	case info.MaxStateIndex > 0 || q.State.History > 1:
		cq.Kind = KindTimeSeries
	default:
		cq.Kind = KindStateful
	}
	return cq, nil
}

// compileFastArgs compiles each aggregation argument against each pattern's
// bindings. A pattern's row is kept only if every field compiles, so one hit
// evaluates either all-compiled or all-interpreted (simplifying the per-hit
// error accounting). Returns nil when no pattern compiled.
func compileFastArgs(q *ast.Query, args []ast.Expr) [][]*pcode.Prog {
	out := make([][]*pcode.Prog, len(q.Patterns))
	any := false
	for pi, p := range q.Patterns {
		b := pcode.Binding{
			SubjVar:  p.Subject.Var,
			ObjVar:   p.Object.Var,
			Alias:    p.Alias,
			SubjType: p.Subject.Type,
			ObjType:  p.Object.Type,
		}
		progs := make([]*pcode.Prog, len(args))
		ok := true
		for ai, a := range args {
			if progs[ai] = pcode.CompileExpr(a, b); progs[ai] == nil {
				ok = false
				break
			}
		}
		if ok {
			out[pi] = progs
			any = true
		}
	}
	if !any {
		return nil
	}
	return out
}

// rewriteBareAlias rewrites a bare event-alias argument (count(evt)) into
// the literal 1, so counting aggregators count occurrences.
func rewriteBareAlias(e ast.Expr, info *sema.Info) ast.Expr {
	if id, ok := e.(*ast.Ident); ok {
		if _, isAlias := info.Aliases[id.Name]; isAlias {
			return &ast.Literal{Val: value.Int(1), LitPos: id.Pos()}
		}
	}
	return e
}

// Stats returns a snapshot of the query's runtime counters.
func (q *Query) Stats() QueryStats { return q.stats }

// Patterns exposes the compiled event patterns (used by the scheduler to
// build dependent-query residual filters).
func (q *Query) Patterns() []*matcher.Pattern { return q.patterns }

// GlobalMatches reports whether ev satisfies the query's global constraints.
func (q *Query) GlobalMatches(ev *event.Event) bool { return q.global(ev) }

// Stateful reports whether the query folds windowed state (as opposed to a
// rule query completing matches per event).
func (q *Query) Stateful() bool { return q.stateful }

// GroupCount reports how many groups currently hold state (stateful queries).
func (q *Query) GroupCount() int { return len(q.groups) }

// StateBytes estimates the query's live state footprint as the length of its
// serialized checkpoint state (EncodeState). It is an estimate — the codec's
// framing is compact but not the in-memory layout — yet it moves with the
// real state (partial matches, window history, distinct tables), which is
// what quota enforcement needs. Returns 0 when encoding fails.
func (q *Query) StateBytes() int64 {
	blob, err := q.EncodeState()
	if err != nil {
		return 0
	}
	return int64(len(blob))
}

// SetClock overrides the wall clock used for Alert.Detected (tests and the
// replayer's virtual time).
func (q *Query) SetClock(now func() time.Time) { q.now = now }
