package engine

import (
	"fmt"
	"strings"
	"time"

	"saql/internal/ast"
	"saql/internal/cluster"
	"saql/internal/event"
	"saql/internal/expr"
	"saql/internal/invariant"
	"saql/internal/matcher"
	"saql/internal/pcode"
	"saql/internal/value"
	"saql/internal/window"
)

// Hits returns the indices of the query's patterns that ev satisfies,
// including the query's global constraints. It is the expensive matching
// phase that the master–dependent-query scheme executes once per group.
func (q *Query) Hits(ev *event.Event) []int {
	if !q.global(ev) {
		return nil
	}
	var hits []int
	for i, p := range q.patterns {
		if p.Matches(ev) {
			hits = append(hits, i)
		}
	}
	return hits
}

// ResidualHits refines a master query's hit set down to the patterns this
// (stricter) query itself matches: the dependent-side half of the
// master–dependent scheme, decoupled from ingestion so it can run once in a
// shared pre-evaluation stage rather than on every shard. evals reports how
// many pattern predicates were actually evaluated (for sharing accounting).
func (q *Query) ResidualHits(ev *event.Event, masterHits []int) (hits []int, evals int) {
	if len(masterHits) == 0 || !q.global(ev) {
		return nil, 0
	}
	for _, hi := range masterHits {
		evals++
		if q.patterns[hi].Matches(ev) {
			hits = append(hits, hi)
		}
	}
	return hits, evals
}

// MatchBatch evaluates the query's patterns across a whole batch in
// pattern-major (columnar) order: one compiled pattern sweeps all events
// before the next pattern runs, keeping its programs hot in cache. Bit p of
// masks[i] is set iff pattern p matches evs[i] (and the event passed the
// global constraints). masks and globalOK are caller-owned scratch of
// len(evs); masks must arrive zeroed. Requires at most 64 patterns — the
// scheduler falls back to per-event Hits beyond that.
//
//saql:hotpath
func (q *Query) MatchBatch(evs []*event.Event, masks []uint64, globalOK []bool) {
	for i, ev := range evs {
		globalOK[i] = q.global(ev)
	}
	for pi, p := range q.patterns {
		bit := uint64(1) << uint(pi)
		for i, ev := range evs {
			if globalOK[i] && p.Matches(ev) {
				masks[i] |= bit
			}
		}
	}
}

// Process feeds one event through the full pipeline (matching + ingestion)
// and returns any alerts raised.
func (q *Query) Process(ev *event.Event, report func(error)) []*Alert {
	return q.Ingest(ev, q.Hits(ev), report)
}

// Ingest advances the query with an event whose pattern hits were already
// computed (by this query or by its master in a scheduler group). report
// receives runtime evaluation errors; it may be nil.
func (q *Query) Ingest(ev *event.Event, hits []int, report func(error)) []*Alert {
	q.stats.Events++
	if report == nil {
		report = func(error) {}
	}
	if q.stateful {
		return q.ingestStateful(ev, hits, report)
	}
	return q.ingestRule(ev, hits, report)
}

// ---------------------------------------------------------------------------
// Rule-based execution
// ---------------------------------------------------------------------------

func (q *Query) ingestRule(ev *event.Event, hits []int, report func(error)) []*Alert {
	if len(hits) == 0 {
		return nil
	}
	if q.eventFilter != nil && !q.eventFilter(ev) {
		// By-event sharding: another shard owns this event.
		return nil
	}
	q.stats.PatternHits += int64(len(hits))
	matches := q.seq.ObserveHits(ev, hits)
	if len(matches) == 0 {
		return nil
	}
	var alerts []*Alert
	for _, m := range matches {
		q.stats.Matches++
		env := &expr.Env{Entities: m.Entities, Events: map[string]*event.Event{}}
		for alias, idx := range q.Info.Aliases {
			if m.Events[idx] != nil {
				env.Events[alias] = m.Events[idx]
			}
		}
		// A rule query with no explicit alert clause alerts on every
		// completed match (Query 1); explicit clauses filter matches.
		fire := len(q.alerts) == 0
		for _, a := range q.alerts {
			ok, err := expr.EvalBool(a, env)
			if err != nil {
				q.stats.EvalErrors++
				report(&QueryError{Query: q.Name, Err: err})
				continue
			}
			if ok {
				fire = true
				break
			}
		}
		if !fire {
			continue
		}
		al := &Alert{
			Query:     q.Name,
			Kind:      q.Kind,
			EventTime: m.At,
			Detected:  q.now(),
			Events:    m.Events,
		}
		al.Values = q.evalReturn(env, report)
		if q.admit(al) {
			alerts = append(alerts, al)
		}
	}
	return alerts
}

// ---------------------------------------------------------------------------
// Stateful execution
// ---------------------------------------------------------------------------

func (q *Query) ingestStateful(ev *event.Event, hits []int, report func(error)) []*Alert {
	touched := false
	for _, hi := range hits {
		p := q.patterns[hi]
		var env *expr.Env
		var key string
		var progs []*pcode.Prog
		if q.fastKeys != nil {
			// Fast path: extract the group key straight from the event, so
			// shard replicas reject non-owned groups before paying for the
			// binding environment.
			key = q.fastKeys[hi](ev)
			if q.groupFilter != nil && !q.groupFilter(key) {
				touched = true
				continue
			}
			if q.fastArgs != nil {
				progs = q.fastArgs[hi]
			}
			if progs == nil {
				env = q.bindEnv(p, ev)
			}
			// With compiled argument programs the environment is not built
			// at all: the programs read the event directly, and the group's
			// representative bindings are written by bindGroupRep below.
		} else {
			env = q.bindEnv(p, ev)
			var err error
			key, err = q.groupKey(env)
			if err != nil {
				q.stats.EvalErrors++
				report(&QueryError{Query: q.Name, Err: err})
				continue
			}
			if q.groupFilter != nil && !q.groupFilter(key) {
				touched = true
				continue
			}
		}
		q.stats.PatternHits++

		for _, g := range q.winMgr.GroupFor(ev.Time, key) {
			g.Count++
			// Remember representative bindings for alert/return output.
			if env == nil {
				q.bindGroupRep(p, ev, g)
			} else {
				for k, v := range env.Entities {
					if _, ok := g.Entities[k]; !ok {
						g.Entities[k] = v
					}
				}
				for k, v := range env.Events {
					if _, ok := g.Events[k]; !ok {
						g.Events[k] = v
					}
				}
			}
			for i, arg := range q.fieldArgs {
				var v value.Value
				var err error
				if progs != nil {
					v, err = progs[i].Run(ev)
					if err == pcode.ErrBindingMismatch {
						// The event's entity types do not match the compiled
						// binding (cannot happen for events that matched this
						// pattern, but stay safe): interpret this hit instead.
						progs = nil
					}
				}
				if progs == nil {
					if env == nil {
						env = q.bindEnv(p, ev)
					}
					v, err = expr.Eval(arg, env)
				}
				if err != nil {
					q.stats.EvalErrors++
					report(&QueryError{Query: q.Name, Err: err})
					continue
				}
				if err := g.Aggs[i].Add(v); err != nil {
					q.stats.EvalErrors++
					report(&QueryError{Query: q.Name, Err: err})
				}
			}
		}
	}

	if touched {
		// By-group sharding rejected some hit: another shard owns the
		// group, but the window must still exist (and later close) here so
		// close counts and empty-snapshot cadence match the serial engine
		// on every shard.
		q.winMgr.Touch(ev.Time)
	}

	// Advance the watermark and close any finished windows. This happens
	// even for events that match no pattern: time always flows.
	var alerts []*Alert
	for _, closed := range q.winMgr.Advance(ev.Time) {
		alerts = append(alerts, q.closeWindow(closed, report)...)
	}
	return alerts
}

// bindGroupRep records the group's representative bindings straight from the
// event, reproducing exactly what copying bindEnv's maps would store: the
// object binding wins when subject and object share a variable name (bindEnv
// writes the subject first and the object over it).
func (q *Query) bindGroupRep(p *matcher.Pattern, ev *event.Event, g *window.Group) {
	if p.ObjVar != "" {
		if _, ok := g.Entities[p.ObjVar]; !ok {
			o := ev.Object
			g.Entities[p.ObjVar] = &o
		}
	}
	if p.SubjVar != "" && p.SubjVar != p.ObjVar {
		if _, ok := g.Entities[p.SubjVar]; !ok {
			s := ev.Subject
			g.Entities[p.SubjVar] = &s
		}
	}
	if p.Alias != "" {
		if _, ok := g.Events[p.Alias]; !ok {
			g.Events[p.Alias] = ev
		}
	}
}

// bindEnv builds the expression environment for one pattern's bindings.
func (q *Query) bindEnv(p *matcher.Pattern, ev *event.Event) *expr.Env {
	env := &expr.Env{Entities: map[string]*event.Entity{}, Events: map[string]*event.Event{}}
	if p.SubjVar != "" {
		s := ev.Subject
		env.Entities[p.SubjVar] = &s
	}
	if p.ObjVar != "" {
		o := ev.Object
		env.Entities[p.ObjVar] = &o
	}
	if p.Alias != "" {
		env.Events[p.Alias] = ev
	}
	return env
}

// AdvanceWatermark advances a stateful query's watermark to t, closing any
// windows that end at or before it, without folding or touching state. The
// partitioned router uses it to keep replicas' window-close cadence aligned
// with the serial engine now that a replica no longer observes every event:
// before folding a delivered event the replica first advances to the stream
// watermark the router saw just before that event, and at every batch
// boundary it advances to the router's running watermark. No-op for rule
// queries and for t at or behind the current watermark.
func (q *Query) AdvanceWatermark(t time.Time, report func(error)) []*Alert {
	if !q.stateful {
		return nil
	}
	if report == nil {
		report = func(error) {}
	}
	var alerts []*Alert
	for _, closed := range q.winMgr.Advance(t) {
		alerts = append(alerts, q.closeWindow(closed, report)...)
	}
	return alerts
}

// TouchAt opens the windows containing t without folding any state, then
// advances the watermark to t: the non-owning replica's half of stateful
// ingestion, applied when the event itself was delivered only to the shards
// owning its group state. Window existence, close counts, and empty-snapshot
// cadence therefore stay identical on every replica — which alert history
// (ss[k]) backfill and checkpoint re-splitting both depend on.
func (q *Query) TouchAt(t time.Time, report func(error)) []*Alert {
	if !q.stateful {
		return nil
	}
	q.winMgr.Touch(t)
	return q.AdvanceWatermark(t, report)
}

// Flush closes all open windows (end of stream) and returns final alerts.
func (q *Query) Flush(report func(error)) []*Alert {
	if report == nil {
		report = func(error) {}
	}
	if !q.stateful {
		return nil
	}
	var alerts []*Alert
	for _, closed := range q.winMgr.Flush() {
		alerts = append(alerts, q.closeWindow(closed, report)...)
	}
	return alerts
}

func (q *Query) groupKey(env *expr.Env) (string, error) {
	if len(q.groupBy) == 0 {
		return "", nil
	}
	var sb strings.Builder
	for i, g := range q.groupBy {
		v, err := expr.Eval(g, env)
		if err != nil {
			return "", err
		}
		if i > 0 {
			sb.WriteByte('\x1f')
		}
		sb.WriteString(v.String())
	}
	return sb.String(), nil
}

// clusterView exposes one group's clustering outcome to expressions.
type clusterView struct {
	outlier bool
	label   int
	size    int
	valid   bool
}

// ClusterField implements expr.ClusterView.
func (c *clusterView) ClusterField(field string) (value.Value, bool) {
	if !c.valid {
		// Group not clustered this window (e.g. too few points).
		switch field {
		case "outlier":
			return value.Bool(false), true
		case "cluster_id":
			return value.Int(-1), true
		case "size":
			return value.Int(0), true
		}
		return value.Null, false
	}
	switch field {
	case "outlier":
		return value.Bool(c.outlier), true
	case "cluster_id":
		return value.Int(int64(c.label)), true
	case "size":
		return value.Int(int64(c.size)), true
	}
	return value.Null, false
}

func (q *Query) closeWindow(closed window.Closed, report func(error)) []*Alert {
	q.stats.WindowsClosed++

	// 1. Snapshot groups present in this window; push empty snapshots for
	// known-but-quiet groups so ss[k] history stays contiguous.
	present := map[string]*window.Snapshot{}
	for key, g := range closed.Groups {
		snap := q.winMgr.SnapshotGroup(closed.ID, g)
		present[key] = snap
		rt, ok := q.groups[key]
		if !ok {
			rt = &groupRuntime{key: key, history: window.NewHistory(q.historyLen)}
			if q.hasInv {
				rt.inv = invariant.NewState(q.invSpec, q.invInits)
			}
			// Backfill the history with empty states for windows that
			// closed before this group first appeared: past-window state
			// for an inactive group is zero activity, not "missing". A
			// new process that immediately moves huge volumes therefore
			// spikes against a zero moving average (how the paper's
			// time-series query catches the fresh exfiltration process),
			// while windows before the stream began stay null.
			backfill := int(q.stats.WindowsClosed - 1)
			if backfill > q.historyLen-1 {
				backfill = q.historyLen - 1
			}
			for i := 0; i < backfill; i++ {
				rt.history.Push(q.winMgr.EmptySnapshot(closed.ID))
			}
			q.groups[key] = rt
		}
		rt.history.Push(snap)
		rt.idleWindows = 0
	}
	for key, rt := range q.groups {
		if _, ok := present[key]; ok {
			continue
		}
		rt.history.Push(q.winMgr.EmptySnapshot(closed.ID))
		rt.idleWindows++
		if rt.idleWindows > q.idleLimit {
			delete(q.groups, key)
		}
	}

	// 2. Clustering over the groups present in this window.
	views := map[string]*clusterView{}
	if q.hasCluster && len(present) > 0 {
		keys := make([]string, 0, len(present))
		points := make([][]float64, 0, len(present))
		for key := range present {
			rt := q.groups[key]
			env := &expr.Env{StateName: q.AST.State.Name, State: rt.history}
			v, err := expr.Eval(q.pointsExpr, env)
			if err != nil {
				q.stats.EvalErrors++
				report(&QueryError{Query: q.Name, Err: err})
				continue
			}
			f, ok := v.AsFloat()
			if !ok {
				q.stats.EvalErrors++
				report(&QueryError{Query: q.Name, Err: fmt.Errorf("cluster point for group %q is %s, not numeric", key, v.Kind())})
				continue
			}
			keys = append(keys, key)
			points = append(points, []float64{f})
		}
		if len(points) > 0 {
			res, err := cluster.Run(q.clusterName, q.clusterArgs, points, q.clusterDist)
			if err != nil {
				q.stats.EvalErrors++
				report(&QueryError{Query: q.Name, Err: err})
			} else {
				for i, key := range keys {
					views[key] = &clusterView{
						outlier: res.Outlier[i],
						label:   res.Labels[i],
						size:    res.Size(res.Labels[i]),
						valid:   true,
					}
				}
			}
		}
	}

	// 3. Per present group: invariant update, then alert evaluation.
	var alerts []*Alert
	for key, snap := range present {
		rt := q.groups[key]
		env := &expr.Env{
			Entities:  snap.Entities,
			Events:    snap.Events,
			StateName: q.AST.State.Name,
			State:     rt.history,
		}
		if cv, ok := views[key]; ok {
			env.Cluster = cv
		} else if q.hasCluster {
			env.Cluster = &clusterView{}
		}

		detecting := true
		if q.hasInv {
			// The alert must see the invariant as it stood BEFORE this
			// window is folded in: an unseen process alerts even though
			// the (online) update would absorb it. Snapshot the
			// variables, then apply updates to the live state.
			pre := make(map[string]value.Value, len(rt.inv.Vars()))
			for k, v := range rt.inv.Vars() {
				pre[k] = v
			}
			env.Vars = pre
			var newVars map[string]value.Value
			if rt.inv.ShouldUpdate() {
				newVars = map[string]value.Value{}
				for _, st := range q.AST.Invariant.Updates {
					v, err := expr.Eval(st.Expr, env)
					if err != nil {
						q.stats.EvalErrors++
						report(&QueryError{Query: q.Name, Err: err})
						continue
					}
					newVars[st.Var] = v
				}
			}
			detecting = !rt.inv.Training()
			rt.inv.Observe(newVars)
		}
		if !detecting {
			continue
		}

		for _, a := range q.alerts {
			ok, err := expr.EvalBool(a, env)
			if err != nil {
				q.stats.EvalErrors++
				report(&QueryError{Query: q.Name, Err: err})
				continue
			}
			if !ok {
				continue
			}
			al := &Alert{
				Query:     q.Name,
				Kind:      q.Kind,
				EventTime: closed.End,
				Detected:  q.now(),
				GroupKey:  key,
			}
			al.Values = q.evalReturn(env, report)
			if q.admit(al) {
				alerts = append(alerts, al)
			}
			break // one alert per group per window
		}
	}
	return alerts
}

// evalReturn evaluates the return clause in env.
func (q *Query) evalReturn(env *expr.Env, report func(error)) []NamedValue {
	if q.returnC == nil {
		return nil
	}
	out := make([]NamedValue, 0, len(q.returnC.Items))
	for _, item := range q.returnC.Items {
		name := item.Alias
		if name == "" {
			name = returnName(item.Expr)
		}
		v, err := expr.Eval(item.Expr, env)
		if err != nil {
			q.stats.EvalErrors++
			report(&QueryError{Query: q.Name, Err: err})
			v = value.Null
		}
		out = append(out, NamedValue{Name: name, Val: v})
	}
	return out
}

// returnName derives the display name of an unaliased return item, applying
// the paper's context-aware shortcut naming (p1 -> p1.exe_name is displayed
// as "p1").
func returnName(e ast.Expr) string { return e.String() }

// admit applies `return distinct` suppression and counts the alert.
func (q *Query) admit(a *Alert) bool {
	if q.distinct != nil {
		k := a.key()
		if _, seen := q.distinct[k]; seen {
			q.stats.Suppressed++
			return false
		}
		if len(q.distinct) < q.opts.MaxDistinct {
			q.distinct[k] = struct{}{}
		}
	}
	q.stats.Alerts++
	return true
}
