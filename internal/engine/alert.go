// Package engine implements the SAQL anomaly query engine: it compiles
// checked queries into executable form and evaluates them over the system
// event stream — multievent matching for rule-based queries, sliding-window
// state maintenance for stateful queries, invariant training/detection,
// window clustering for outlier queries, and alert generation. The
// concurrent query scheduler (internal/scheduler) drives engine queries in
// master–dependent groups.
package engine

import (
	"fmt"
	"strings"
	"time"

	"saql/internal/event"
	"saql/internal/value"
)

// ModelKind classifies a query by the anomaly model it expresses, mirroring
// the paper's four families.
type ModelKind uint8

// Anomaly model kinds.
const (
	KindRule ModelKind = iota
	KindTimeSeries
	KindInvariant
	KindOutlier
	KindStateful // windowed aggregation without history/invariant/cluster
)

// String names the model kind.
func (k ModelKind) String() string {
	switch k {
	case KindRule:
		return "rule"
	case KindTimeSeries:
		return "time-series"
	case KindInvariant:
		return "invariant"
	case KindOutlier:
		return "outlier"
	case KindStateful:
		return "stateful"
	default:
		return "unknown"
	}
}

// NamedValue is one returned attribute of an alert.
type NamedValue struct {
	Name string
	Val  value.Value
}

// Alert is a detection produced by a query.
type Alert struct {
	Query     string
	Kind      ModelKind
	EventTime time.Time // event time of the trigger (window end for stateful queries)
	Detected  time.Time // wall-clock time the engine raised the alert
	GroupKey  string    // group-by key for stateful queries; empty for rule queries
	Values    []NamedValue
	Events    []*event.Event // the matched events (rule queries)
}

// Latency is the detection delay: wall-clock detection time minus the event
// time of the triggering activity.
func (a *Alert) Latency() time.Duration { return a.Detected.Sub(a.EventTime) }

// String renders the alert as the command-line UI prints it.
func (a *Alert) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ALERT [%s] query=%s at=%s", a.Kind, a.Query, a.EventTime.Format("15:04:05.000"))
	if a.GroupKey != "" {
		fmt.Fprintf(&sb, " group=%s", a.GroupKey)
	}
	for _, nv := range a.Values {
		fmt.Fprintf(&sb, " %s=%s", nv.Name, nv.Val)
	}
	return sb.String()
}

// key returns the distinct-suppression key for `return distinct`.
func (a *Alert) key() string {
	var sb strings.Builder
	for _, nv := range a.Values {
		sb.WriteString(nv.Val.String())
		sb.WriteByte('\x1f')
	}
	return sb.String()
}
