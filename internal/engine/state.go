package engine

// Checkpoint support: a compiled query serialises its complete runtime state
// — counters, the multievent partial-match table, open windows with their
// aggregator accumulators, per-group history rings, invariant training
// state, and the `return distinct` suppression table — into one opaque wire
// blob, and restores it into a freshly compiled query of the same source.
//
// This is the state half of the evaluate/ingest split: EncodeState touches
// exactly the structures Ingest mutates, nothing the (stateless) evaluation
// side reads. Blobs are captured per shard replica at a runtime barrier and
// applied per replica on restore; RestoreState therefore uses merge
// semantics, filtering group-keyed state through the replica's own shard
// ownership filter so one logical state re-splits cleanly across a
// different shard count:
//
//   - shared state every replica observes identically (watermark, open
//     window set, Events/WindowsClosed counters) merges by max/union on
//     every replica — WindowsClosed drives history backfill for
//     late-appearing groups, so it must be identical everywhere;
//   - group-keyed state (window accumulators, history rings, invariants)
//     folds only into a replica that owns the key under its group filter;
//   - disjoint counters (hits, matches, alerts) and global tables (distinct
//     suppression, partial matches) are restored where disjoint=true, which
//     the restoring side grants to exactly one replica per query.

import (
	"fmt"
	"sort"

	"saql/internal/invariant"
	"saql/internal/window"
	"saql/internal/wire"
)

// stateBlobVersion guards the per-query blob layout (the snapshot file has
// its own format version on top; this one catches blobs routed to a query
// compiled under different semantics).
const stateBlobVersion = 1

// EncodeState serialises the query's complete runtime state into one blob.
// It must run at a point where the query is not ingesting events (a
// scheduler lock hold or a runtime control barrier).
func (q *Query) EncodeState() ([]byte, error) {
	b := []byte{stateBlobVersion}
	b = wire.AppendBool(b, q.stateful)

	// Runtime counters.
	b = wire.AppendVarint(b, q.stats.Events)
	b = wire.AppendVarint(b, q.stats.PatternHits)
	b = wire.AppendVarint(b, q.stats.Matches)
	b = wire.AppendVarint(b, q.stats.WindowsClosed)
	b = wire.AppendVarint(b, q.stats.Alerts)
	b = wire.AppendVarint(b, q.stats.Suppressed)
	b = wire.AppendVarint(b, q.stats.EvalErrors)

	// `return distinct` suppression table.
	b = wire.AppendBool(b, q.distinct != nil)
	if q.distinct != nil {
		keys := make([]string, 0, len(q.distinct))
		for k := range q.distinct {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b = wire.AppendUvarint(b, uint64(len(keys)))
		for _, k := range keys {
			b = wire.AppendString(b, k)
		}
	}

	if !q.stateful {
		b = q.seq.AppendState(b)
		return b, nil
	}

	var err error
	if b, err = q.winMgr.AppendState(b); err != nil {
		return nil, err
	}

	keys := make([]string, 0, len(q.groups))
	for k := range q.groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b = wire.AppendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		rt := q.groups[k]
		b = wire.AppendString(b, k)
		b = wire.AppendVarint(b, int64(rt.idleWindows))
		b = rt.history.AppendState(b)
		b = wire.AppendBool(b, rt.inv != nil)
		if rt.inv != nil {
			b = rt.inv.AppendState(b)
		}
	}
	return b, nil
}

// RestoreState folds one encoded state blob into q (freshly compiled from
// the same source the blob was captured under). disjoint selects whether
// this replica also absorbs the blob's single-owner state: the disjoint
// counters, the distinct table, the partial-match table, and the late-event
// count. Group-keyed state is filtered through q's shard ownership filter.
// RestoreState may be called once per blob when a checkpoint captured
// several shards' states; the merges compose.
func (q *Query) RestoreState(blob []byte, disjoint bool) error {
	r := wire.NewReader(blob)
	if v := r.Byte(); r.Err() == nil && v != stateBlobVersion {
		return fmt.Errorf("engine: query %q: unknown state blob version %d", q.Name, v)
	}
	stateful := r.Bool()
	if r.Err() != nil {
		return fmt.Errorf("engine: query %q: %w", q.Name, r.Err())
	}
	if stateful != q.stateful {
		return fmt.Errorf("engine: query %q: snapshot is %s but query compiled %s",
			q.Name, statefulWord(stateful), statefulWord(q.stateful))
	}

	var st QueryStats
	st.Events = r.Varint()
	st.PatternHits = r.Varint()
	st.Matches = r.Varint()
	st.WindowsClosed = r.Varint()
	st.Alerts = r.Varint()
	st.Suppressed = r.Varint()
	st.EvalErrors = r.Varint()
	if r.Err() != nil {
		return fmt.Errorf("engine: query %q: %w", q.Name, r.Err())
	}
	// Shared counters: identical on every replica at the barrier, so max
	// merges blobs idempotently.
	if st.Events > q.stats.Events {
		q.stats.Events = st.Events
	}
	if st.WindowsClosed > q.stats.WindowsClosed {
		q.stats.WindowsClosed = st.WindowsClosed
	}
	if disjoint {
		q.stats.PatternHits += st.PatternHits
		q.stats.Matches += st.Matches
		q.stats.Alerts += st.Alerts
		q.stats.Suppressed += st.Suppressed
		q.stats.EvalErrors += st.EvalErrors
	}

	if r.Bool() { // distinct table present
		n := r.Count(1)
		for i := 0; i < n && r.Err() == nil; i++ {
			k := r.String()
			if disjoint && q.distinct != nil {
				q.distinct[k] = struct{}{}
			}
		}
	}
	if r.Err() != nil {
		return fmt.Errorf("engine: query %q: %w", q.Name, r.Err())
	}

	if !stateful {
		// Partial matches exist only for multievent queries, which are
		// pinned to a single replica; single-pattern (by-event) queries
		// encode an empty table, so unconditional application is exact.
		if err := q.seq.ReadState(r); err != nil {
			return fmt.Errorf("engine: query %q: %w", q.Name, err)
		}
		return nil
	}

	if err := q.winMgr.ReadState(r, q.groupFilter, disjoint); err != nil {
		return fmt.Errorf("engine: query %q: %w", q.Name, err)
	}

	nGroups := r.Count(2)
	for i := 0; i < nGroups && r.Err() == nil; i++ {
		key := r.String()
		idle := int(r.Varint())
		hist := window.NewHistory(q.historyLen)
		if err := hist.ReadState(r); err != nil {
			return fmt.Errorf("engine: query %q group %q: %w", q.Name, key, err)
		}
		hasInv := r.Bool()
		if hasInv != q.hasInv {
			return fmt.Errorf("engine: query %q group %q: snapshot invariant presence %v, query %v",
				q.Name, key, hasInv, q.hasInv)
		}
		var inv *invariant.State
		if hasInv {
			inv = invariant.NewState(q.invSpec, q.invInits)
			if err := inv.ReadState(r); err != nil {
				return fmt.Errorf("engine: query %q group %q: %w", q.Name, key, err)
			}
		}
		if q.groupFilter == nil || q.groupFilter(key) {
			q.groups[key] = &groupRuntime{key: key, history: hist, inv: inv, idleWindows: idle}
		}
	}
	if r.Err() != nil {
		return fmt.Errorf("engine: query %q: %w", q.Name, r.Err())
	}
	return nil
}

func statefulWord(s bool) string {
	if s {
		return "stateful"
	}
	return "rule-based"
}
