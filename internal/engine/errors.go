package engine

import (
	"fmt"
	"sync"
	"time"
)

// QueryError is a runtime error attributed to a query.
type QueryError struct {
	Query string
	Time  time.Time
	Err   error
}

// Error implements the error interface.
func (e *QueryError) Error() string {
	return fmt.Sprintf("query %q: %v", e.Query, e.Err)
}

// Unwrap supports errors.Is/As.
func (e *QueryError) Unwrap() error { return e.Err }

// ErrorReporter collects runtime errors raised during query execution (the
// paper's error reporter component). It retains a bounded ring of recent
// errors and a total count; an optional callback observes every error.
type ErrorReporter struct {
	mu      sync.Mutex
	recent  []*QueryError
	max     int
	total   int64
	onError func(*QueryError)
	now     func() time.Time
}

// NewErrorReporter creates a reporter retaining up to max recent errors.
func NewErrorReporter(max int, onError func(*QueryError)) *ErrorReporter {
	if max <= 0 {
		max = 128
	}
	return &ErrorReporter{max: max, onError: onError, now: time.Now} //saql:wallclock injectable clock default; error timestamps are informational
}

// Report records a runtime error for query.
func (r *ErrorReporter) Report(query string, err error) {
	if err == nil {
		return
	}
	qe := &QueryError{Query: query, Time: r.now(), Err: err}
	r.mu.Lock()
	r.total++
	r.recent = append(r.recent, qe)
	if len(r.recent) > r.max {
		r.recent = r.recent[len(r.recent)-r.max:]
	}
	cb := r.onError
	r.mu.Unlock()
	if cb != nil {
		cb(qe)
	}
}

// Recent returns a copy of the retained recent errors, oldest first.
func (r *ErrorReporter) Recent() []*QueryError {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*QueryError, len(r.recent))
	copy(out, r.recent)
	return out
}

// Total returns the number of errors ever reported.
func (r *ErrorReporter) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
