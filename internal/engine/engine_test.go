package engine

import (
	"strings"
	"testing"
	"time"

	"saql/internal/event"
	"saql/internal/value"
)

var t0 = time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC) // aligned to 10-minute windows

func ev(at time.Time, agent string, subj event.Entity, op event.Op, obj event.Entity, amount float64) *event.Event {
	return &event.Event{Time: at, AgentID: agent, Subject: subj, Op: op, Object: obj, Amount: amount}
}

func compile(t *testing.T, name, src string) *Query {
	t.Helper()
	q, err := Compile(name, src, CompileOptions{})
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return q
}

func processAll(q *Query, events []*event.Event) []*Alert {
	var alerts []*Alert
	for _, e := range events {
		alerts = append(alerts, q.Process(e, nil)...)
	}
	return alerts
}

// --- Rule-based (paper Query 1) ------------------------------------------

const exfilQuery = `
agentid = "db-server"
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
proc p4["%sbblv.exe"] read file f1 as evt3
proc p4 read || write ip i1[dstip="172.16.0.129"] as evt4
with evt1 -> evt2 -> evt3 -> evt4
return distinct p1, p2, p3, f1, p4, i1
`

func exfilEvents(agent string, start time.Time) []*event.Event {
	cmd := event.Process("cmd.exe", 100)
	osql := event.Process("osql.exe", 101)
	sql := event.Process("sqlservr.exe", 50)
	mal := event.Process("sbblv.exe", 200)
	dump := event.File(`C:\db\backup1.dmp`)
	exfil := event.NetConn("10.0.0.2", 49000, "172.16.0.129", 8080)
	return []*event.Event{
		ev(start, agent, cmd, event.OpStart, osql, 0),
		ev(start.Add(30*time.Second), agent, sql, event.OpWrite, dump, 5e6),
		ev(start.Add(60*time.Second), agent, mal, event.OpRead, dump, 5e6),
		ev(start.Add(90*time.Second), agent, mal, event.OpWrite, exfil, 5e6),
	}
}

func TestRuleQueryDetectsExfiltration(t *testing.T) {
	q := compile(t, "exfil", exfilQuery)
	if q.Kind != KindRule {
		t.Fatalf("kind = %v, want rule", q.Kind)
	}
	alerts := processAll(q, exfilEvents("db-server", t0))
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	a := alerts[0]
	got := map[string]string{}
	for _, nv := range a.Values {
		got[nv.Name] = nv.Val.String()
	}
	if got["p1"] != "cmd.exe" || got["p2"] != "osql.exe" || got["p3"] != "sqlservr.exe" {
		t.Errorf("process attributes wrong: %v", got)
	}
	if got["i1"] != "172.16.0.129" {
		t.Errorf("i1 = %q, want exfil IP (context-aware dstip shortcut)", got["i1"])
	}
	if !strings.Contains(got["f1"], "backup1.dmp") {
		t.Errorf("f1 = %q", got["f1"])
	}
}

func TestRuleQueryEnforcesTemporalOrder(t *testing.T) {
	q := compile(t, "exfil", exfilQuery)
	evs := exfilEvents("db-server", t0)
	// Swap steps 2 and 3: sbblv reads the dump before sqlservr writes it.
	evs[1], evs[2] = evs[2], evs[1]
	evs[1].Time, evs[2].Time = evs[2].Time, evs[1].Time
	if alerts := processAll(q, evs); len(alerts) != 0 {
		t.Errorf("out-of-order sequence should not match, got %d alerts", len(alerts))
	}
}

func TestRuleQueryEnforcesEntityJoin(t *testing.T) {
	q := compile(t, "exfil", exfilQuery)
	evs := exfilEvents("db-server", t0)
	// sbblv reads a DIFFERENT file than sqlservr wrote: f1 join must fail.
	evs[2].Object = event.File(`C:\db\backup1.dmp.copy`)
	if alerts := processAll(q, evs); len(alerts) != 0 {
		t.Errorf("broken f1 join should not match, got %d alerts", len(alerts))
	}
	// p4 join: a different process exfiltrates.
	evs2 := exfilEvents("db-server", t0)
	evs2[3].Subject = event.Process("other.exe", 999)
	if alerts := processAll(q, evs2); len(alerts) != 0 {
		t.Errorf("broken p4 join should not match, got %d alerts", len(alerts))
	}
}

func TestRuleQueryGlobalConstraint(t *testing.T) {
	q := compile(t, "exfil", exfilQuery)
	if alerts := processAll(q, exfilEvents("workstation-7", t0)); len(alerts) != 0 {
		t.Errorf("events from another agent must not match, got %d alerts", len(alerts))
	}
}

func TestRuleQueryDistinctSuppression(t *testing.T) {
	q := compile(t, "exfil", exfilQuery)
	evs := exfilEvents("db-server", t0)
	evs = append(evs, exfilEvents("db-server", t0.Add(2*time.Minute))...)
	alerts := processAll(q, evs)
	if len(alerts) != 1 {
		t.Errorf("distinct should suppress the repeat (same entities), got %d", len(alerts))
	}
	if q.Stats().Suppressed == 0 {
		t.Error("suppression counter should be > 0")
	}
}

func TestRuleQueryInterleavedNoise(t *testing.T) {
	q := compile(t, "exfil", exfilQuery)
	evs := exfilEvents("db-server", t0)
	noise := []*event.Event{
		ev(t0.Add(10*time.Second), "db-server", event.Process("svchost.exe", 9), event.OpWrite, event.File(`C:\Windows\log`), 100),
		ev(t0.Add(40*time.Second), "db-server", event.Process("chrome.exe", 10), event.OpWrite, event.NetConn("10.0.0.2", 1, "8.8.8.8", 443), 2000),
		ev(t0.Add(70*time.Second), "db-server", event.Process("cmd.exe", 11), event.OpStart, event.Process("ping.exe", 12), 0),
	}
	all := []*event.Event{evs[0], noise[0], evs[1], noise[1], evs[2], noise[2], evs[3]}
	alerts := processAll(q, all)
	if len(alerts) != 1 {
		t.Errorf("alerts = %d, want 1 despite noise", len(alerts))
	}
}

// --- Time-series (paper Query 2) ------------------------------------------

const smaQuery = `
proc p write ip i as evt #time(10 min)
state[3] ss {
  avg_amount := avg(evt.amount)
} group by p
alert (ss[0].avg_amount > (ss[0].avg_amount + ss[1].avg_amount + ss[2].avg_amount) / 3) && (ss[0].avg_amount > 10000)
return p, ss[0].avg_amount, ss[1].avg_amount, ss[2].avg_amount
`

// netWrites emits one network write of the given amount per window for proc.
func netWrites(agent string, proc event.Entity, amounts []float64, start time.Time, winLen time.Duration) []*event.Event {
	conn := event.NetConn("10.0.0.5", 40000, "172.16.0.129", 443)
	var out []*event.Event
	for i, amt := range amounts {
		out = append(out, ev(start.Add(time.Duration(i)*winLen).Add(winLen/2), agent, proc, event.OpWrite, conn, amt))
	}
	return out
}

func TestTimeSeriesSpikesDetected(t *testing.T) {
	q := compile(t, "sma", smaQuery)
	if q.Kind != KindTimeSeries {
		t.Fatalf("kind = %v, want time-series", q.Kind)
	}
	sql := event.Process("sqlservr.exe", 50)
	// Three calm windows then a massive spike in window 4.
	evs := netWrites("db", sql, []float64{1000, 1200, 900, 900000, 800}, t0, 10*time.Minute)
	alerts := processAll(q, evs)
	// Window 4 (the spike) closes when the window-5 event advances the
	// watermark past its end.
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want exactly 1 (the spike window)", len(alerts))
	}
	a := alerts[0]
	if a.Values[0].Val.String() != "sqlservr.exe" {
		t.Errorf("return p = %v", a.Values[0].Val)
	}
	if got, _ := a.Values[1].Val.AsFloat(); got != 900000 {
		t.Errorf("ss[0].avg_amount = %v, want 900000", a.Values[1].Val)
	}
	if got, _ := a.Values[2].Val.AsFloat(); got != 900 {
		t.Errorf("ss[1].avg_amount = %v, want 900 (previous window)", a.Values[2].Val)
	}
}

func TestTimeSeriesNoAlertBeforeHistory(t *testing.T) {
	q := compile(t, "sma", smaQuery)
	sql := event.Process("sqlservr.exe", 50)
	// A big first window must not alert: ss[1]/ss[2] do not exist yet and
	// null comparisons are false.
	evs := netWrites("db", sql, []float64{900000, 800}, t0, 10*time.Minute)
	if alerts := processAll(q, evs); len(alerts) != 0 {
		t.Errorf("alerts before history filled = %d, want 0", len(alerts))
	}
}

func TestTimeSeriesSmallSpikeBelowFloorIgnored(t *testing.T) {
	q := compile(t, "sma", smaQuery)
	p := event.Process("notepad.exe", 7)
	// Spike shape but absolute value below the 10000 floor.
	evs := netWrites("ws", p, []float64{10, 12, 9, 5000, 8}, t0, 10*time.Minute)
	if alerts := processAll(q, evs); len(alerts) != 0 {
		t.Errorf("sub-floor spike should not alert, got %d", len(alerts))
	}
}

func TestTimeSeriesPerGroupIsolation(t *testing.T) {
	q := compile(t, "sma", smaQuery)
	sql := event.Process("sqlservr.exe", 50)
	chrome := event.Process("chrome.exe", 60)
	evs := append(netWrites("db", sql, []float64{1000, 1100, 1000, 1000, 1000}, t0, 10*time.Minute),
		netWrites("db", chrome, []float64{2000, 2100, 1900, 990000, 1000}, t0, 10*time.Minute)...)
	// Interleave by time.
	alerts := processAll(q, sortByTime(evs))
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1 (chrome only)", len(alerts))
	}
	if alerts[0].Values[0].Val.String() != "chrome.exe" {
		t.Errorf("alert group = %v, want chrome.exe", alerts[0].Values[0].Val)
	}
}

func sortByTime(evs []*event.Event) []*event.Event {
	out := append([]*event.Event(nil), evs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Time.Before(out[j-1].Time); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// --- Invariant (paper Query 3) --------------------------------------------

const invariantQuery = `
proc p1["%apache.exe"] start proc p2 as evt #time(10 s)
state ss {
  set_proc := set(p2.exe_name)
} group by p1
invariant[3][offline] {
  a := empty_set
  a = a union ss.set_proc
}
alert |ss.set_proc diff a| > 0
return p1, ss.set_proc
`

func apacheSpawn(child string, at time.Time) *event.Event {
	return ev(at, "web", event.Process("apache.exe", 30), event.OpStart, event.Process(child, 31), 0)
}

func TestInvariantDetectsUnseenChild(t *testing.T) {
	q := compile(t, "inv", invariantQuery)
	if q.Kind != KindInvariant {
		t.Fatalf("kind = %v, want invariant", q.Kind)
	}
	evs := []*event.Event{
		// Training windows 1..3: normal CGI children.
		apacheSpawn("php-cgi.exe", t0.Add(1*time.Second)),
		apacheSpawn("php-cgi.exe", t0.Add(11*time.Second)),
		apacheSpawn("perl.exe", t0.Add(21*time.Second)),
		// Window 4: apache spawns a shell — never seen in training.
		apacheSpawn("cmd.exe", t0.Add(31*time.Second)),
		// Window 5 advances the watermark so window 4 closes.
		apacheSpawn("php-cgi.exe", t0.Add(41*time.Second)),
	}
	alerts := processAll(q, evs)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	if !alerts[0].Values[1].Val.SetContains("cmd.exe") {
		t.Errorf("alert set = %v, want cmd.exe member", alerts[0].Values[1].Val)
	}
}

func TestInvariantNoAlertDuringTraining(t *testing.T) {
	q := compile(t, "inv", invariantQuery)
	evs := []*event.Event{
		apacheSpawn("php-cgi.exe", t0.Add(1*time.Second)),
		apacheSpawn("weird1.exe", t0.Add(11*time.Second)), // training: absorbed
		apacheSpawn("weird2.exe", t0.Add(21*time.Second)), // training: absorbed
		apacheSpawn("php-cgi.exe", t0.Add(31*time.Second)),
		apacheSpawn("php-cgi.exe", t0.Add(41*time.Second)),
	}
	if alerts := processAll(q, evs); len(alerts) != 0 {
		t.Errorf("training-phase anomalies must not alert, got %d", len(alerts))
	}
}

func TestInvariantOfflineFrozen(t *testing.T) {
	q := compile(t, "inv", invariantQuery)
	evs := []*event.Event{
		apacheSpawn("php-cgi.exe", t0.Add(1*time.Second)),
		apacheSpawn("php-cgi.exe", t0.Add(11*time.Second)),
		apacheSpawn("php-cgi.exe", t0.Add(21*time.Second)),
		// cmd.exe appears twice after training: offline invariant stays
		// frozen, so BOTH windows alert.
		apacheSpawn("cmd.exe", t0.Add(31*time.Second)),
		apacheSpawn("cmd.exe", t0.Add(41*time.Second)),
		apacheSpawn("php-cgi.exe", t0.Add(51*time.Second)),
	}
	alerts := processAll(q, evs)
	if len(alerts) != 2 {
		t.Errorf("offline invariant should alert twice, got %d", len(alerts))
	}
}

func TestInvariantOnlineAbsorbs(t *testing.T) {
	online := strings.Replace(invariantQuery, "[offline]", "[online]", 1)
	q := compile(t, "inv-online", online)
	evs := []*event.Event{
		apacheSpawn("php-cgi.exe", t0.Add(1*time.Second)),
		apacheSpawn("php-cgi.exe", t0.Add(11*time.Second)),
		apacheSpawn("php-cgi.exe", t0.Add(21*time.Second)),
		apacheSpawn("cmd.exe", t0.Add(31*time.Second)), // alerts, then absorbed
		apacheSpawn("cmd.exe", t0.Add(41*time.Second)), // now invariant: silent
		apacheSpawn("php-cgi.exe", t0.Add(51*time.Second)),
	}
	alerts := processAll(q, evs)
	if len(alerts) != 1 {
		t.Errorf("online invariant should alert once then absorb, got %d", len(alerts))
	}
}

// --- Outlier (paper Query 4) ----------------------------------------------

const outlierQuery = `
agentid = "db-server"
proc p["%sqlservr.exe"] read || write ip i as evt #time(10 min)
state ss {
  amt := sum(evt.amount)
} group by i.dstip
cluster(points=all(ss.amt), distance="ed", method="DBSCAN(100000, 3)")
alert cluster.outlier && ss.amt > 1000000
return i.dstip, ss.amt
`

func TestOutlierDetectsExfilIP(t *testing.T) {
	q := compile(t, "outlier", outlierQuery)
	if q.Kind != KindOutlier {
		t.Fatalf("kind = %v, want outlier", q.Kind)
	}
	sql := event.Process("sqlservr.exe", 50)
	var evs []*event.Event
	// 8 normal client IPs, ~50KB each within window 1.
	for i := 0; i < 8; i++ {
		conn := event.NetConn("10.0.0.2", 1433, clientIP(i), 49000)
		evs = append(evs, ev(t0.Add(time.Duration(i)*time.Second), "db-server", sql, event.OpWrite, conn, 50000+float64(i)*100))
	}
	// The exfiltration IP moves 50MB.
	exfil := event.NetConn("10.0.0.2", 1433, "172.16.0.129", 8080)
	evs = append(evs, ev(t0.Add(20*time.Second), "db-server", sql, event.OpWrite, exfil, 5e7))
	// Next-window event closes window 1.
	evs = append(evs, ev(t0.Add(11*time.Minute), "db-server", sql, event.OpWrite, event.NetConn("10.0.0.2", 1433, clientIP(0), 49000), 50000))

	alerts := processAll(q, evs)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	if alerts[0].Values[0].Val.String() != "172.16.0.129" {
		t.Errorf("outlier IP = %v", alerts[0].Values[0].Val)
	}
}

func TestOutlierQuietWindowNoAlert(t *testing.T) {
	q := compile(t, "outlier", outlierQuery)
	sql := event.Process("sqlservr.exe", 50)
	var evs []*event.Event
	for i := 0; i < 8; i++ {
		conn := event.NetConn("10.0.0.2", 1433, clientIP(i), 49000)
		evs = append(evs, ev(t0.Add(time.Duration(i)*time.Second), "db-server", sql, event.OpWrite, conn, 50000))
	}
	evs = append(evs, ev(t0.Add(11*time.Minute), "db-server", sql, event.OpWrite, event.NetConn("10.0.0.2", 1433, clientIP(0), 49000), 50000))
	if alerts := processAll(q, evs); len(alerts) != 0 {
		t.Errorf("uniform traffic should not alert, got %d", len(alerts))
	}
}

func clientIP(i int) string {
	return "10.0.1." + string(rune('0'+i))
}

// --- Engine mechanics ------------------------------------------------------

func TestFlushClosesOpenWindows(t *testing.T) {
	q := compile(t, "sma", smaQuery)
	sql := event.Process("sqlservr.exe", 50)
	evs := netWrites("db", sql, []float64{1000, 1000, 1000, 900000}, t0, 10*time.Minute)
	alerts := processAll(q, evs)
	if len(alerts) != 0 {
		t.Fatalf("spike window still open, alerts = %d", len(alerts))
	}
	alerts = q.Flush(nil)
	if len(alerts) != 1 {
		t.Errorf("flush alerts = %d, want 1", len(alerts))
	}
}

func TestStatefulCountAggregation(t *testing.T) {
	q := compile(t, "count", `
proc p start proc c as evt #time(1 min)
state ss { n := count(evt) } group by p
alert ss.n > 3
return p, ss.n`)
	var evs []*event.Event
	for i := 0; i < 5; i++ {
		evs = append(evs, ev(t0.Add(time.Duration(i)*time.Second), "h", event.Process("bash", 1), event.OpStart, event.Process("ls", int32(100+i)), 0))
	}
	evs = append(evs, ev(t0.Add(2*time.Minute), "h", event.Process("bash", 1), event.OpStart, event.Process("ls", 200), 0))
	alerts := processAll(q, evs)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	if got := alerts[0].Values[1].Val.IntVal(); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
}

func TestEngineErrorReporting(t *testing.T) {
	// A query whose alert divides by a state field that is zero in some
	// windows exercises the runtime error path.
	q := compile(t, "err", `
proc p write ip i as evt #time(1 min)
state ss { amt := sum(evt.amount) } group by p
alert 1 / (ss.amt - ss.amt) > 0
return p`)
	rep := NewErrorReporter(8, nil)
	report := func(err error) {
		if qe, ok := err.(*QueryError); ok {
			rep.Report(qe.Query, qe.Err)
		}
	}
	evs := []*event.Event{
		ev(t0, "h", event.Process("a", 1), event.OpWrite, event.NetConn("1.1.1.1", 1, "2.2.2.2", 2), 10),
		ev(t0.Add(2*time.Minute), "h", event.Process("a", 1), event.OpWrite, event.NetConn("1.1.1.1", 1, "2.2.2.2", 2), 10),
	}
	for _, e := range evs {
		q.Process(e, report)
	}
	if rep.Total() == 0 {
		t.Error("division by zero should be reported")
	}
	if len(rep.Recent()) == 0 || rep.Recent()[0].Query != "err" {
		t.Errorf("recent errors = %v", rep.Recent())
	}
	if q.Stats().EvalErrors == 0 {
		t.Error("EvalErrors counter should be > 0")
	}
}

func TestCompileRejectsBadQueries(t *testing.T) {
	bad := []string{
		`proc p start proc q as e state ss {x := count(e)} group by p alert ss.x > 0 return p`,                    // state without window
		`proc p start proc q as e #time(1 min) state ss {x := frob(e.amount)} group by p alert ss.x > 0 return p`, // unknown agg
		`proc p start proc q as e #time(1 min) state ss {x := count(e)} group by p alert ss[5].x > 0 return p`,    // index out of range
		`file f read proc p as e return p`,  // subject must be process
		`proc p start proc q as e return r`, // unknown identifier
	}
	for _, src := range bad {
		if _, err := Compile("bad", src, CompileOptions{}); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestHitsRespectGlobals(t *testing.T) {
	q := compile(t, "exfil", exfilQuery)
	e := exfilEvents("db-server", t0)[0]
	if len(q.Hits(e)) != 1 {
		t.Errorf("hits = %v, want pattern 0", q.Hits(e))
	}
	other := exfilEvents("laptop", t0)[0]
	if len(q.Hits(other)) != 0 {
		t.Error("wrong agent should yield no hits")
	}
}

func TestAlertRendering(t *testing.T) {
	a := &Alert{
		Query:     "q1",
		Kind:      KindRule,
		EventTime: t0,
		Detected:  t0.Add(time.Second),
		Values:    []NamedValue{{Name: "p1", Val: value.String("cmd.exe")}},
	}
	s := a.String()
	if !strings.Contains(s, "q1") || !strings.Contains(s, "cmd.exe") || !strings.Contains(s, "rule") {
		t.Errorf("alert string = %q", s)
	}
	if a.Latency() != time.Second {
		t.Errorf("latency = %v", a.Latency())
	}
}

func TestModelKindString(t *testing.T) {
	kinds := map[ModelKind]string{
		KindRule: "rule", KindTimeSeries: "time-series", KindInvariant: "invariant",
		KindOutlier: "outlier", KindStateful: "stateful",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%v.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestHoppingWindowQuery(t *testing.T) {
	q := compile(t, "hop", `
proc p write ip i as evt #time(10 min, 5 min)
state ss { amt := sum(evt.amount) } group by p
alert ss.amt > 100000
return p, ss.amt`)
	sql := event.Process("x.exe", 1)
	conn := event.NetConn("1.1.1.1", 1, "2.2.2.2", 2)
	evs := []*event.Event{
		ev(t0.Add(6*time.Minute), "h", sql, event.OpWrite, conn, 200000),
		ev(t0.Add(21*time.Minute), "h", sql, event.OpWrite, conn, 10),
	}
	alerts := processAll(q, evs)
	// The 200000 write at minute 6 is inside two hopping windows
	// ([0,10) and [5,15)), both of which alert.
	if len(alerts) != 2 {
		t.Errorf("hopping-window alerts = %d, want 2", len(alerts))
	}
}
