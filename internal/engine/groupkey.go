package engine

import (
	"strings"

	"saql/internal/ast"
	"saql/internal/event"
)

// keyFn extracts a group-by key directly from an event matched by one
// specific pattern, bypassing environment construction. It must produce
// byte-identical keys to evaluating the group-by expressions in the
// pattern's binding environment (run.go's slow path): the per-event hot
// path of stateful queries — and the shard-ownership test of the
// concurrent runtime — rides on it.
type keyFn func(ev *event.Event) string

// itemFn extracts one group-by item's string.
type itemFn func(ev *event.Event) string

// compileFastGroupKeys builds a per-pattern fast key extractor for the
// query's group-by clause, or nil if any item needs full expression
// evaluation (the env-based slow path stays authoritative, including its
// error reporting).
func compileFastGroupKeys(q *ast.Query) []keyFn {
	if q.State == nil || len(q.State.GroupBy) == 0 {
		return nil
	}
	out := make([]keyFn, len(q.Patterns))
	for i, p := range q.Patterns {
		items := make([]itemFn, 0, len(q.State.GroupBy))
		for _, g := range q.State.GroupBy {
			it := compileFastItem(g, p)
			if it == nil {
				return nil
			}
			items = append(items, it)
		}
		if len(items) == 1 {
			out[i] = keyFn(items[0])
			continue
		}
		out[i] = func(ev *event.Event) string {
			var sb strings.Builder
			for j, it := range items {
				if j > 0 {
					sb.WriteByte('\x1f')
				}
				sb.WriteString(it(ev))
			}
			return sb.String()
		}
	}
	return out
}

// compileFastItem compiles one group-by expression against one pattern's
// bindings. The case order mirrors expr.Eval exactly: the object binding
// shadows the subject (it is written to the environment last), entities
// shadow event aliases, and unbound identifiers evaluate to null.
func compileFastItem(g ast.Expr, p *ast.EventPattern) itemFn {
	switch x := g.(type) {
	case *ast.Ident:
		name := x.Name
		switch {
		case p.Object.Var == name && name != "":
			return func(ev *event.Event) string { return ev.Object.DefaultAttr() }
		case p.Subject.Var == name && name != "":
			return func(ev *event.Event) string { return ev.Subject.DefaultAttr() }
		case p.Alias == name && name != "":
			return nil // bare event alias is an evaluation error; slow path
		default:
			// Bound only by other patterns (or not at all): null here.
			return func(*event.Event) string { return "null" }
		}

	case *ast.FieldExpr:
		id, ok := x.Base.(*ast.Ident)
		if !ok {
			return nil
		}
		name, field := id.Name, x.Field
		if name == "cluster" {
			return nil // cluster fields in group-by: keep slow path
		}
		switch {
		case p.Object.Var == name && name != "":
			if !staticAttrOK(p.Object.Type, field) {
				return nil // invalid attribute errors must surface
			}
			return func(ev *event.Event) string {
				v, _ := ev.Object.Attr(field)
				return v.String()
			}
		case p.Subject.Var == name && name != "":
			if !staticAttrOK(p.Subject.Type, field) {
				return nil
			}
			return func(ev *event.Event) string {
				v, _ := ev.Subject.Attr(field)
				return v.String()
			}
		case p.Alias == name && name != "":
			if _, ok := (&event.Event{}).Attr(field); !ok {
				return nil
			}
			return func(ev *event.Event) string {
				v, _ := ev.Attr(field)
				return v.String()
			}
		default:
			return func(*event.Event) string { return "null" }
		}
	}
	return nil
}

// HitGroupKeys appends to dst the group keys ev yields for each hit pattern,
// using the compiled fast-key path. ok is false when the query has no fast
// extractor (some group-by item needs full expression evaluation, whose
// errors must surface through the shard replicas) — the partitioned router
// then falls back to delivering the event to every shard, where each replica
// evaluates the key itself, exactly as the broadcast router did.
//
//saql:hotpath
func (q *Query) HitGroupKeys(dst []string, ev *event.Event, hits []int) (keys []string, ok bool) {
	if q.fastKeys == nil {
		return dst, false
	}
	for _, hi := range hits {
		dst = append(dst, q.fastKeys[hi](ev))
	}
	return dst, true
}

// staticAttrOK reports whether attribute field exists for entity type t:
// validity depends only on the (type, name) pair, so it is decidable at
// compile time.
func staticAttrOK(t event.EntityType, field string) bool {
	e := event.Entity{Type: t}
	_, ok := e.Attr(field)
	return ok
}
