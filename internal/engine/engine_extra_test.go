package engine

import (
	"strings"
	"testing"
	"time"

	"saql/internal/event"
)

// Additional engine coverage: multi-field states, exotic aggregations,
// resource bounds, group eviction, and compile options.

func TestMultiFieldState(t *testing.T) {
	q := compile(t, "multi", `
proc p write ip i as evt #time(1 min)
state ss {
  total := sum(evt.amount)
  peak := max(evt.amount)
  n := count(evt)
  dsts := set(i.dstip)
} group by p
alert ss.n > 2 && ss.peak > 1000
return p, ss.total, ss.peak, ss.n, ss.dsts`)
	p := event.Process("x.exe", 1)
	evs := []*event.Event{
		ev(t0.Add(1*time.Second), "h", p, event.OpWrite, event.NetConn("1.1.1.1", 1, "2.2.2.2", 2), 500),
		ev(t0.Add(2*time.Second), "h", p, event.OpWrite, event.NetConn("1.1.1.1", 1, "3.3.3.3", 2), 2000),
		ev(t0.Add(3*time.Second), "h", p, event.OpWrite, event.NetConn("1.1.1.1", 1, "2.2.2.2", 2), 100),
		ev(t0.Add(2*time.Minute), "h", p, event.OpWrite, event.NetConn("1.1.1.1", 1, "2.2.2.2", 2), 1),
	}
	alerts := processAll(q, evs)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d", len(alerts))
	}
	vals := map[string]string{}
	for _, nv := range alerts[0].Values {
		vals[nv.Name] = nv.Val.String()
	}
	if vals["ss.total"] != "2600" {
		t.Errorf("total = %s", vals["ss.total"])
	}
	if vals["ss.peak"] != "2000" {
		t.Errorf("peak = %s", vals["ss.peak"])
	}
	if vals["ss.n"] != "3" {
		t.Errorf("n = %s", vals["ss.n"])
	}
	if !strings.Contains(vals["ss.dsts"], "3.3.3.3") {
		t.Errorf("dsts = %s", vals["ss.dsts"])
	}
}

func TestPercentileAggregationInQuery(t *testing.T) {
	q := compile(t, "pctl", `
proc p write ip i as evt #time(1 min)
state ss { p95 := percentile(evt.amount, 95) } group by p
alert ss.p95 > 90
return p, ss.p95`)
	p := event.Process("x.exe", 1)
	conn := event.NetConn("1.1.1.1", 1, "2.2.2.2", 2)
	var evs []*event.Event
	for i := 1; i <= 100; i++ {
		evs = append(evs, ev(t0.Add(time.Duration(i)*100*time.Millisecond), "h", p, event.OpWrite, conn, float64(i)))
	}
	evs = append(evs, ev(t0.Add(2*time.Minute), "h", p, event.OpWrite, conn, 1))
	alerts := processAll(q, evs)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d", len(alerts))
	}
	got, _ := alerts[0].Values[1].Val.AsFloat()
	if got < 95 || got > 96 {
		t.Errorf("p95 = %v", got)
	}
}

func TestGroupEviction(t *testing.T) {
	q, err := Compile("evict", `
proc p write ip i as evt #time(10 s)
state ss { amt := sum(evt.amount) } group by p
alert ss.amt > 1000000000
return p`, CompileOptions{GroupIdleWindows: 2})
	if err != nil {
		t.Fatal(err)
	}
	conn := event.NetConn("1.1.1.1", 1, "2.2.2.2", 2)
	// Group "old.exe" appears once, then only "new.exe" is active.
	q.Process(ev(t0.Add(1*time.Second), "h", event.Process("old.exe", 1), event.OpWrite, conn, 5), nil)
	for i := 1; i <= 6; i++ {
		q.Process(ev(t0.Add(time.Duration(i)*10*time.Second+time.Second), "h", event.Process("new.exe", 2), event.OpWrite, conn, 5), nil)
	}
	if n := q.GroupCount(); n != 1 {
		t.Errorf("groups after eviction = %d, want 1 (old.exe evicted)", n)
	}
}

func TestDistinctCapBounded(t *testing.T) {
	q, err := Compile("cap", `proc p start proc c as e return p, c`, CompileOptions{MaxDistinct: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 10 distinct parent/child pairs; the suppression table must stay
	// bounded while alerts keep flowing.
	var alerts int
	for i := 0; i < 10; i++ {
		e := ev(t0.Add(time.Duration(i)*time.Second), "h",
			event.Process("p", int32(i)), event.OpStart, event.Process("c", int32(100+i)), 0)
		alerts += len(q.Process(e, nil))
	}
	if alerts != 10 {
		t.Errorf("alerts = %d, want 10 (cap must not suppress novel alerts)", alerts)
	}
	if len(q.distinct) > 4 {
		t.Errorf("distinct table = %d entries, cap 4", len(q.distinct))
	}
}

func TestFirstLastAggregation(t *testing.T) {
	q := compile(t, "firstlast", `
proc p write file f as evt #time(1 min)
state ss {
  first_file := first(f.name)
  last_file := last(f.name)
} group by p
alert ss.first_file != ss.last_file
return p, ss.first_file, ss.last_file`)
	p := event.Process("x.exe", 1)
	evs := []*event.Event{
		ev(t0.Add(1*time.Second), "h", p, event.OpWrite, event.File("/a"), 1),
		ev(t0.Add(2*time.Second), "h", p, event.OpWrite, event.File("/b"), 1),
		ev(t0.Add(3*time.Second), "h", p, event.OpWrite, event.File("/c"), 1),
		ev(t0.Add(2*time.Minute), "h", p, event.OpWrite, event.File("/a"), 1),
	}
	alerts := processAll(q, evs)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d", len(alerts))
	}
	if alerts[0].Values[1].Val.String() != "/a" || alerts[0].Values[2].Val.String() != "/c" {
		t.Errorf("first/last = %v / %v", alerts[0].Values[1].Val, alerts[0].Values[2].Val)
	}
}

func TestMultiPatternStatefulQuery(t *testing.T) {
	// Two patterns feed the same state block: file writes and network
	// writes both count toward the total.
	q := compile(t, "multi-pattern", `
proc p write file f as e1 #time(1 min)
proc p write ip i as e2
state ss { n := count(e1) } group by p
alert ss.n > 2
return p, ss.n`)
	p := event.Process("x.exe", 1)
	evs := []*event.Event{
		ev(t0.Add(1*time.Second), "h", p, event.OpWrite, event.File("/a"), 1),
		ev(t0.Add(2*time.Second), "h", p, event.OpWrite, event.NetConn("1.1.1.1", 1, "2.2.2.2", 2), 1),
		ev(t0.Add(3*time.Second), "h", p, event.OpWrite, event.File("/b"), 1),
		ev(t0.Add(2*time.Minute), "h", p, event.OpWrite, event.File("/c"), 1),
	}
	alerts := processAll(q, evs)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1 (both patterns feed the state)", len(alerts))
	}
	if alerts[0].Values[1].Val.IntVal() != 3 {
		t.Errorf("count = %v, want 3", alerts[0].Values[1].Val)
	}
}

func TestStateHistoryDeeperThanDeclared(t *testing.T) {
	// sema/compiler widen the history ring when alerts index beyond the
	// declared state[k].
	q := compile(t, "widen", `
proc p write ip i as evt #time(10 s)
state[2] ss { amt := sum(evt.amount) } group by p
alert ss[1].amt > 10
return p, ss[1].amt`)
	if q.historyLen != 2 {
		t.Errorf("historyLen = %d", q.historyLen)
	}
	p := event.Process("x.exe", 1)
	conn := event.NetConn("1.1.1.1", 1, "2.2.2.2", 2)
	evs := []*event.Event{
		ev(t0.Add(1*time.Second), "h", p, event.OpWrite, conn, 100),
		ev(t0.Add(11*time.Second), "h", p, event.OpWrite, conn, 1),
		ev(t0.Add(21*time.Second), "h", p, event.OpWrite, conn, 1),
	}
	alerts := processAll(q, evs)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d", len(alerts))
	}
	if got, _ := alerts[0].Values[1].Val.AsFloat(); got != 100 {
		t.Errorf("ss[1].amt = %v, want 100", got)
	}
}

func TestReturnAliasNames(t *testing.T) {
	q := compile(t, "alias", `
proc p write ip i as evt #time(1 min)
state ss { amt := sum(evt.amount) } group by p
alert ss.amt > 0
return p as process, ss.amt as total_bytes`)
	conn := event.NetConn("1.1.1.1", 1, "2.2.2.2", 2)
	evs := []*event.Event{
		ev(t0.Add(time.Second), "h", event.Process("x", 1), event.OpWrite, conn, 10),
		ev(t0.Add(2*time.Minute), "h", event.Process("x", 1), event.OpWrite, conn, 10),
	}
	alerts := processAll(q, evs)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d", len(alerts))
	}
	if alerts[0].Values[0].Name != "process" || alerts[0].Values[1].Name != "total_bytes" {
		t.Errorf("names = %v", alerts[0].Values)
	}
}

func TestClockInjection(t *testing.T) {
	q := compile(t, "clock", `proc p start proc c as e return p`)
	fixed := time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)
	q.SetClock(func() time.Time { return fixed })
	alerts := q.Process(ev(t0, "h", event.Process("a", 1), event.OpStart, event.Process("b", 2), 0), nil)
	if len(alerts) != 1 || !alerts[0].Detected.Equal(fixed) {
		t.Errorf("detected = %v", alerts[0].Detected)
	}
}

func TestStatsAccounting(t *testing.T) {
	q := compile(t, "stats", `
proc p write ip i as evt #time(10 s)
state ss { amt := sum(evt.amount) } group by p
alert ss.amt > 5
return p`)
	conn := event.NetConn("1.1.1.1", 1, "2.2.2.2", 2)
	for i := 0; i < 5; i++ {
		q.Process(ev(t0.Add(time.Duration(i)*10*time.Second), "h", event.Process("x", 1), event.OpWrite, conn, 10), nil)
	}
	st := q.Stats()
	if st.Events != 5 {
		t.Errorf("events = %d", st.Events)
	}
	if st.PatternHits != 5 {
		t.Errorf("hits = %d", st.PatternHits)
	}
	if st.WindowsClosed != 4 {
		t.Errorf("windows = %d", st.WindowsClosed)
	}
	if st.Alerts != 4 {
		t.Errorf("alerts = %d", st.Alerts)
	}
}
