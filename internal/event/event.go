// Package event defines the system monitoring data model of the paper:
// system entities (processes, files, network connections) and system events
// represented as ⟨subject, operation, object⟩ (SVO) triples, each occurring on
// a particular host (agent) at a particular time and carrying the
// security-related attributes the SAQL language can constrain and return
// (exe_name, PID, file name, src/dst IP, port, amount, ...).
package event

import (
	"fmt"
	"time"

	"saql/internal/value"
)

// EntityType identifies the kind of a system entity.
type EntityType uint8

// System entity types. Following the paper's data model, subjects are
// processes and objects are files, processes, or network connections.
const (
	EntityInvalid EntityType = iota
	EntityProcess
	EntityFile
	EntityNetConn
)

// String returns the SAQL keyword for the entity type (proc, file, ip).
func (t EntityType) String() string {
	switch t {
	case EntityProcess:
		return "proc"
	case EntityFile:
		return "file"
	case EntityNetConn:
		return "ip"
	default:
		return "invalid"
	}
}

// ParseEntityType maps a SAQL keyword to an entity type.
func ParseEntityType(s string) (EntityType, error) {
	switch s {
	case "proc", "process":
		return EntityProcess, nil
	case "file":
		return EntityFile, nil
	case "ip", "conn", "netconn":
		return EntityNetConn, nil
	default:
		return EntityInvalid, fmt.Errorf("event: unknown entity type %q", s)
	}
}

// Op is a system call level operation recorded between subject and object.
type Op uint8

// Operations in the event taxonomy. File events use read/write/execute/
// delete/rename; process events use start/end; network events use
// read/write (the paper treats sends as writes to an ip entity and receives
// as reads) plus connect/accept for connection setup.
const (
	OpInvalid Op = iota
	OpRead
	OpWrite
	OpExecute
	OpStart
	OpEnd
	OpDelete
	OpRename
	OpConnect
	OpAccept
)

// String returns the SAQL keyword for the operation.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpExecute:
		return "execute"
	case OpStart:
		return "start"
	case OpEnd:
		return "end"
	case OpDelete:
		return "delete"
	case OpRename:
		return "rename"
	case OpConnect:
		return "connect"
	case OpAccept:
		return "accept"
	default:
		return "invalid"
	}
}

// ParseOp maps a SAQL keyword to an operation.
func ParseOp(s string) (Op, error) {
	switch s {
	case "read", "recv":
		return OpRead, nil
	case "write", "send":
		return OpWrite, nil
	case "execute", "exec":
		return OpExecute, nil
	case "start", "fork", "spawn":
		return OpStart, nil
	case "end", "exit", "terminate":
		return OpEnd, nil
	case "delete", "unlink":
		return OpDelete, nil
	case "rename":
		return OpRename, nil
	case "connect":
		return OpConnect, nil
	case "accept":
		return OpAccept, nil
	default:
		return OpInvalid, fmt.Errorf("event: unknown operation %q", s)
	}
}

// Type is the event category derived from the object entity.
type Type uint8

// Event categories per the paper: file events, process events, network events.
const (
	TypeInvalid Type = iota
	TypeFile
	TypeProcess
	TypeNetwork
)

// String names the event category.
func (t Type) String() string {
	switch t {
	case TypeFile:
		return "file"
	case TypeProcess:
		return "process"
	case TypeNetwork:
		return "network"
	default:
		return "invalid"
	}
}

// Entity is a system entity instance observed by a collection agent. The
// populated fields depend on Type; unset fields are zero.
type Entity struct {
	Type EntityType

	// Process attributes.
	ExeName string // executable name, e.g. "osql.exe"
	PID     int32
	User    string
	CmdLine string

	// File attributes.
	Path string // full path; the "name" attribute matches the base name too

	// Network connection attributes.
	SrcIP    string
	DstIP    string
	SrcPort  int32
	DstPort  int32
	Protocol string // "tcp" or "udp"

	// Symbol IDs for the hot string attributes above, assigned by the codec
	// intern tables from the process-global dictionary (internal/symtab).
	// Zero means "no symbol" — the value was never interned (programmatic
	// events, table overflow, non-ASCII) — and compiled predicates fall back
	// to string comparison with identical results. Symbol IDs are
	// process-local and never persisted: the wire/journal/snapshot codecs
	// serialise the named string fields only.
	ExeSym   uint32
	UserSym  uint32
	SrcIPSym uint32
	DstIPSym uint32
	ProtoSym uint32
}

// Process constructs a process entity.
func Process(exe string, pid int32) Entity {
	return Entity{Type: EntityProcess, ExeName: exe, PID: pid}
}

// File constructs a file entity.
func File(path string) Entity {
	return Entity{Type: EntityFile, Path: path}
}

// NetConn constructs a network connection entity.
func NetConn(srcIP string, srcPort int32, dstIP string, dstPort int32) Entity {
	return Entity{Type: EntityNetConn, SrcIP: srcIP, SrcPort: srcPort, DstIP: dstIP, DstPort: dstPort, Protocol: "tcp"}
}

// Key returns a stable identity string for the entity, used for joins on
// shared entity variables across event patterns (e.g. the same f1 appearing
// in two patterns of Query 1).
func (e *Entity) Key() string {
	switch e.Type {
	case EntityProcess:
		return fmt.Sprintf("p:%s/%d", e.ExeName, e.PID)
	case EntityFile:
		return "f:" + e.Path
	case EntityNetConn:
		return fmt.Sprintf("n:%s:%d>%s:%d", e.SrcIP, e.SrcPort, e.DstIP, e.DstPort)
	default:
		return "?"
	}
}

// DefaultAttr returns the value of the entity's default attribute — the one a
// bare string constraint like ["%osql.exe"] matches against: exe_name for
// processes, path for files, dstip for connections.
func (e *Entity) DefaultAttr() string {
	switch e.Type {
	case EntityProcess:
		return e.ExeName
	case EntityFile:
		return e.Path
	case EntityNetConn:
		return e.DstIP
	default:
		return ""
	}
}

// Attr resolves a SAQL attribute name on the entity. The second result
// reports whether the attribute exists for this entity type. Attribute names
// follow the paper (exe_name, pid, name, path, srcip, dstip, sport, dport)
// with common aliases accepted.
func (e *Entity) Attr(name string) (value.Value, bool) {
	switch e.Type {
	case EntityProcess:
		switch name {
		case "exe_name", "exename", "exe", "name":
			return value.String(e.ExeName), true
		case "pid":
			return value.Int(int64(e.PID)), true
		case "user", "username":
			return value.String(e.User), true
		case "cmdline", "cmd", "args":
			return value.String(e.CmdLine), true
		}
	case EntityFile:
		switch name {
		case "name", "path", "filename", "file_name":
			return value.String(e.Path), true
		case "basename":
			return value.String(baseName(e.Path)), true
		}
	case EntityNetConn:
		switch name {
		case "srcip", "src_ip", "sip":
			return value.String(e.SrcIP), true
		case "dstip", "dst_ip", "dip":
			return value.String(e.DstIP), true
		case "sport", "src_port", "srcport":
			return value.Int(int64(e.SrcPort)), true
		case "dport", "dst_port", "dstport":
			return value.Int(int64(e.DstPort)), true
		case "protocol", "proto":
			return value.String(e.Protocol), true
		}
	}
	return value.Null, false
}

func baseName(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' || p[i] == '\\' {
			return p[i+1:]
		}
	}
	return p
}

// String renders the entity compactly for alert output.
func (e *Entity) String() string {
	switch e.Type {
	case EntityProcess:
		return fmt.Sprintf("proc(%s pid=%d)", e.ExeName, e.PID)
	case EntityFile:
		return fmt.Sprintf("file(%s)", e.Path)
	case EntityNetConn:
		return fmt.Sprintf("ip(%s:%d->%s:%d)", e.SrcIP, e.SrcPort, e.DstIP, e.DstPort)
	default:
		return "entity(?)"
	}
}

// Event is a single system monitoring record: subject performed Op on object
// at Time on host AgentID. Amount carries the data size in bytes for
// read/write events (file I/O and network transfer volume).
type Event struct {
	ID      uint64 // globally unique, assigned by the feed
	Time    time.Time
	AgentID string // host identifier
	Subject Entity // always a process
	Op      Op
	Object  Entity
	Amount  float64 // bytes moved, when applicable

	// AgentSym is AgentID's process-local symbol ID (see Entity's symbol
	// fields); zero means no symbol and is always valid.
	AgentSym uint32
}

// EventType categorises the event by its object entity.
func (ev *Event) EventType() Type {
	switch ev.Object.Type {
	case EntityFile:
		return TypeFile
	case EntityProcess:
		return TypeProcess
	case EntityNetConn:
		return TypeNetwork
	default:
		return TypeInvalid
	}
}

// Attr resolves event-level attributes: amount, agentid, time (unix nanos),
// and id. Entity attributes are resolved through the bound entity variables,
// not through the event.
func (ev *Event) Attr(name string) (value.Value, bool) {
	switch name {
	case "amount", "amt", "bytes":
		return value.Float(ev.Amount), true
	case "agentid", "agent_id", "host":
		return value.String(ev.AgentID), true
	case "time", "ts", "timestamp":
		return value.Int(ev.Time.UnixNano()), true
	case "id":
		return value.Int(int64(ev.ID)), true
	case "optype", "op", "operation":
		return value.String(ev.Op.String()), true
	}
	return value.Null, false
}

// String renders the event as a single human-readable line, the format the
// command-line UI prints when echoing matched events.
func (ev *Event) String() string {
	return fmt.Sprintf("[%s %s] %s %s %s amount=%.0f",
		ev.Time.Format("15:04:05.000"), ev.AgentID, ev.Subject.String(), ev.Op, ev.Object.String(), ev.Amount)
}
