package event

import (
	"testing"
	"time"

	"saql/internal/value"
)

func TestParseEntityType(t *testing.T) {
	cases := map[string]EntityType{
		"proc": EntityProcess, "process": EntityProcess,
		"file": EntityFile,
		"ip":   EntityNetConn, "conn": EntityNetConn,
	}
	for s, want := range cases {
		got, err := ParseEntityType(s)
		if err != nil || got != want {
			t.Errorf("ParseEntityType(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseEntityType("socket"); err == nil {
		t.Error("unknown entity type should error")
	}
}

func TestParseOp(t *testing.T) {
	cases := map[string]Op{
		"read": OpRead, "recv": OpRead,
		"write": OpWrite, "send": OpWrite,
		"start": OpStart, "fork": OpStart,
		"execute": OpExecute, "exec": OpExecute,
		"end": OpEnd, "exit": OpEnd,
		"delete": OpDelete, "rename": OpRename,
		"connect": OpConnect, "accept": OpAccept,
	}
	for s, want := range cases {
		got, err := ParseOp(s)
		if err != nil || got != want {
			t.Errorf("ParseOp(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseOp("mmap"); err == nil {
		t.Error("unknown op should error")
	}
}

func TestOpRoundTrip(t *testing.T) {
	for op := OpRead; op <= OpAccept; op++ {
		parsed, err := ParseOp(op.String())
		if err != nil {
			t.Errorf("ParseOp(%q): %v", op.String(), err)
			continue
		}
		if parsed != op {
			t.Errorf("round trip %v -> %q -> %v", op, op.String(), parsed)
		}
	}
}

func TestEntityAttrProcess(t *testing.T) {
	p := Process("osql.exe", 1234)
	p.User = "dbadmin"
	p.CmdLine = "osql.exe -E"

	if v, ok := p.Attr("exe_name"); !ok || v.Str() != "osql.exe" {
		t.Errorf("exe_name = %v, %v", v, ok)
	}
	if v, ok := p.Attr("pid"); !ok || v.IntVal() != 1234 {
		t.Errorf("pid = %v, %v", v, ok)
	}
	if v, ok := p.Attr("user"); !ok || v.Str() != "dbadmin" {
		t.Errorf("user = %v, %v", v, ok)
	}
	if _, ok := p.Attr("dstip"); ok {
		t.Error("process should not have dstip")
	}
}

func TestEntityAttrFile(t *testing.T) {
	f := File(`C:\db\backup1.dmp`)
	if v, ok := f.Attr("name"); !ok || v.Str() != `C:\db\backup1.dmp` {
		t.Errorf("name = %v, %v", v, ok)
	}
	if v, ok := f.Attr("basename"); !ok || v.Str() != "backup1.dmp" {
		t.Errorf("basename = %v, %v", v, ok)
	}
	u := File("/var/log/syslog")
	if v, ok := u.Attr("basename"); !ok || v.Str() != "syslog" {
		t.Errorf("unix basename = %v, %v", v, ok)
	}
}

func TestEntityAttrNetConn(t *testing.T) {
	n := NetConn("10.0.0.5", 49152, "172.16.0.129", 443)
	if v, ok := n.Attr("dstip"); !ok || v.Str() != "172.16.0.129" {
		t.Errorf("dstip = %v, %v", v, ok)
	}
	if v, ok := n.Attr("srcip"); !ok || v.Str() != "10.0.0.5" {
		t.Errorf("srcip = %v, %v", v, ok)
	}
	if v, ok := n.Attr("dport"); !ok || v.IntVal() != 443 {
		t.Errorf("dport = %v, %v", v, ok)
	}
	if v, ok := n.Attr("protocol"); !ok || v.Str() != "tcp" {
		t.Errorf("protocol = %v, %v", v, ok)
	}
}

func TestDefaultAttr(t *testing.T) {
	p := Process("cmd.exe", 1)
	f := File("/tmp/x")
	n := NetConn("1.1.1.1", 1, "2.2.2.2", 2)
	if p.DefaultAttr() != "cmd.exe" {
		t.Errorf("proc default = %q", p.DefaultAttr())
	}
	if f.DefaultAttr() != "/tmp/x" {
		t.Errorf("file default = %q", f.DefaultAttr())
	}
	if n.DefaultAttr() != "2.2.2.2" {
		t.Errorf("conn default = %q", n.DefaultAttr())
	}
}

func TestEntityKeyUniqueness(t *testing.T) {
	a := Process("x.exe", 1)
	b := Process("x.exe", 2)
	c := Process("y.exe", 1)
	if a.Key() == b.Key() || a.Key() == c.Key() {
		t.Error("distinct processes must have distinct keys")
	}
	f1, f2 := File("/a"), File("/b")
	if f1.Key() == f2.Key() {
		t.Error("distinct files must have distinct keys")
	}
	// Same identity yields same key.
	a2 := Process("x.exe", 1)
	if a.Key() != a2.Key() {
		t.Error("identical entities must share a key")
	}
}

func TestEventType(t *testing.T) {
	ts := time.Now()
	fe := Event{Time: ts, Subject: Process("a", 1), Op: OpWrite, Object: File("/f")}
	pe := Event{Time: ts, Subject: Process("a", 1), Op: OpStart, Object: Process("b", 2)}
	ne := Event{Time: ts, Subject: Process("a", 1), Op: OpWrite, Object: NetConn("1.1.1.1", 1, "2.2.2.2", 2)}
	if fe.EventType() != TypeFile {
		t.Errorf("file event type = %v", fe.EventType())
	}
	if pe.EventType() != TypeProcess {
		t.Errorf("process event type = %v", pe.EventType())
	}
	if ne.EventType() != TypeNetwork {
		t.Errorf("network event type = %v", ne.EventType())
	}
}

func TestEventAttr(t *testing.T) {
	ev := Event{
		ID:      7,
		Time:    time.Unix(100, 0),
		AgentID: "db-server-1",
		Subject: Process("sqlservr.exe", 99),
		Op:      OpWrite,
		Object:  NetConn("10.0.0.2", 5000, "172.16.0.129", 8080),
		Amount:  1 << 20,
	}
	if v, ok := ev.Attr("amount"); !ok || v.FloatVal() != 1<<20 {
		t.Errorf("amount = %v, %v", v, ok)
	}
	if v, ok := ev.Attr("agentid"); !ok || v.Str() != "db-server-1" {
		t.Errorf("agentid = %v, %v", v, ok)
	}
	if v, ok := ev.Attr("time"); !ok || v.IntVal() != time.Unix(100, 0).UnixNano() {
		t.Errorf("time = %v, %v", v, ok)
	}
	if v, ok := ev.Attr("optype"); !ok || v.Str() != "write" {
		t.Errorf("optype = %v, %v", v, ok)
	}
	if _, ok := ev.Attr("nope"); ok {
		t.Error("unknown event attribute should fail")
	}
	if v, _ := ev.Attr("amount"); v.Kind() != value.KindFloat {
		t.Error("amount should be a float value")
	}
}

func TestStringRenderings(t *testing.T) {
	p := Process("cmd.exe", 42)
	if got := p.String(); got != "proc(cmd.exe pid=42)" {
		t.Errorf("proc string = %q", got)
	}
	ev := Event{Time: time.Unix(0, 0).UTC(), AgentID: "h1", Subject: p, Op: OpStart, Object: Process("osql.exe", 43)}
	if s := ev.String(); s == "" {
		t.Error("event string should not be empty")
	}
}
