// Package tsmodel implements the time-series anomaly models expressible in
// SAQL's sliding-window state syntax: simple, weighted, and exponential
// moving averages, plus threshold and z-score detectors. Query 2 of the
// paper encodes an SMA spike detector directly in SAQL; this package is the
// reference implementation those queries are validated against and the
// building block for programmatic detection pipelines (see the
// network-monitor example and the E4 ablation bench).
package tsmodel

import (
	"fmt"
	"math"
)

// Detector consumes a series one observation at a time and scores each for
// anomaly. Observe returns the model's score for x and whether x is
// anomalous under the model's rule.
type Detector interface {
	Observe(x float64) (score float64, anomalous bool)
	Reset()
}

// SMA is a simple-moving-average spike detector: an observation is anomalous
// when it exceeds the mean of the last N observations (including itself, as
// Query 2 does with (ss[0]+ss[1]+ss[2])/3) and also exceeds MinValue. It
// needs N observations before it starts flagging.
type SMA struct {
	N        int
	MinValue float64
	buf      []float64
}

// NewSMA creates an SMA detector over n observations with a minimum
// magnitude gate (the paper's `ss[0].avg_amount > 10000` conjunct).
func NewSMA(n int, minValue float64) (*SMA, error) {
	if n < 2 {
		return nil, fmt.Errorf("tsmodel: SMA needs n >= 2, got %d", n)
	}
	return &SMA{N: n, MinValue: minValue}, nil
}

// Observe implements Detector. The score is x / movingAverage (spike ratio).
func (s *SMA) Observe(x float64) (float64, bool) {
	s.buf = append(s.buf, x)
	if len(s.buf) > s.N {
		s.buf = s.buf[len(s.buf)-s.N:]
	}
	if len(s.buf) < s.N {
		return 0, false
	}
	var sum float64
	for _, v := range s.buf {
		sum += v
	}
	mean := sum / float64(len(s.buf))
	if mean == 0 {
		return 0, false
	}
	score := x / mean
	return score, x > mean && x > s.MinValue
}

// Reset implements Detector.
func (s *SMA) Reset() { s.buf = s.buf[:0] }

// EMA is an exponential-moving-average detector: anomalous when the
// observation exceeds Factor times the running EMA (and MinValue).
type EMA struct {
	Alpha    float64
	Factor   float64
	MinValue float64
	ema      float64
	seen     bool
}

// NewEMA creates an EMA detector. alpha in (0,1] is the smoothing factor;
// factor is the spike multiple that triggers an alert.
func NewEMA(alpha, factor, minValue float64) (*EMA, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("tsmodel: EMA alpha must be in (0,1], got %g", alpha)
	}
	if factor <= 0 {
		return nil, fmt.Errorf("tsmodel: EMA factor must be positive, got %g", factor)
	}
	return &EMA{Alpha: alpha, Factor: factor, MinValue: minValue}, nil
}

// Observe implements Detector.
func (e *EMA) Observe(x float64) (float64, bool) {
	if !e.seen {
		e.ema = x
		e.seen = true
		return 0, false
	}
	prev := e.ema
	e.ema = e.Alpha*x + (1-e.Alpha)*prev
	if prev == 0 {
		return 0, false
	}
	score := x / prev
	return score, score > e.Factor && x > e.MinValue
}

// Reset implements Detector.
func (e *EMA) Reset() { e.ema, e.seen = 0, false }

// WMA is a linearly weighted moving-average detector (recent observations
// weigh more), flagging observations above Factor times the WMA.
type WMA struct {
	N        int
	Factor   float64
	MinValue float64
	buf      []float64
}

// NewWMA creates a WMA detector over n observations.
func NewWMA(n int, factor, minValue float64) (*WMA, error) {
	if n < 2 {
		return nil, fmt.Errorf("tsmodel: WMA needs n >= 2, got %d", n)
	}
	if factor <= 0 {
		return nil, fmt.Errorf("tsmodel: WMA factor must be positive, got %g", factor)
	}
	return &WMA{N: n, Factor: factor, MinValue: minValue}, nil
}

// Observe implements Detector. The observation is scored against the WMA of
// the previous N observations (excluding itself), so a spike is not damped
// by its own weight.
func (w *WMA) Observe(x float64) (float64, bool) {
	defer func() {
		w.buf = append(w.buf, x)
		if len(w.buf) > w.N {
			w.buf = w.buf[len(w.buf)-w.N:]
		}
	}()
	if len(w.buf) < w.N {
		return 0, false
	}
	var num, den float64
	for i, v := range w.buf {
		wt := float64(i + 1)
		num += wt * v
		den += wt
	}
	wma := num / den
	if wma == 0 {
		return 0, false
	}
	score := x / wma
	return score, score > w.Factor && x > w.MinValue
}

// Reset implements Detector.
func (w *WMA) Reset() { w.buf = w.buf[:0] }

// ZScore flags observations more than K standard deviations above the mean
// of a trailing window of N observations.
type ZScore struct {
	N   int
	K   float64
	buf []float64
}

// NewZScore creates a z-score detector.
func NewZScore(n int, k float64) (*ZScore, error) {
	if n < 3 {
		return nil, fmt.Errorf("tsmodel: z-score needs n >= 3, got %d", n)
	}
	if k <= 0 {
		return nil, fmt.Errorf("tsmodel: z-score k must be positive, got %g", k)
	}
	return &ZScore{N: n, K: k}, nil
}

// Observe implements Detector. The score is the z-score of x against the
// trailing window (excluding x).
func (z *ZScore) Observe(x float64) (float64, bool) {
	defer func() {
		z.buf = append(z.buf, x)
		if len(z.buf) > z.N {
			z.buf = z.buf[len(z.buf)-z.N:]
		}
	}()
	if len(z.buf) < z.N {
		return 0, false
	}
	var sum float64
	for _, v := range z.buf {
		sum += v
	}
	mean := sum / float64(len(z.buf))
	var variance float64
	for _, v := range z.buf {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(z.buf))
	sd := math.Sqrt(variance)
	if sd == 0 {
		if x > mean {
			return math.Inf(1), true
		}
		return 0, false
	}
	score := (x - mean) / sd
	return score, score > z.K
}

// Reset implements Detector.
func (z *ZScore) Reset() { z.buf = z.buf[:0] }

// Threshold is the degenerate detector: anomalous when x > Limit. It is the
// baseline the paper's rule-based magnitude conjuncts reduce to.
type Threshold struct{ Limit float64 }

// Observe implements Detector.
func (t *Threshold) Observe(x float64) (float64, bool) {
	if t.Limit == 0 {
		return x, x > 0
	}
	return x / t.Limit, x > t.Limit
}

// Reset implements Detector.
func (t *Threshold) Reset() {}
