package tsmodel

// Checkpoint support: every detector serialises its baseline — trailing
// buffers, the running EMA — into the wire format, so programmatic detection
// pipelines built on this package (the network-monitor example's shape) can
// checkpoint alongside an engine and resume without re-warming their
// baselines. The codec mirrors the EncodeState/DecodeState split used by the
// engine's own stateful layers.

import (
	"fmt"

	"saql/internal/wire"
)

// Detector state tags.
const (
	tagSMA byte = iota + 1
	tagEMA
	tagWMA
	tagZScore
	tagThreshold
)

// AppendDetectorState appends d's baseline state to b. Configuration (N,
// alpha, factors, limits) is not encoded: it belongs to the constructed
// detector the state is restored into.
func AppendDetectorState(b []byte, d Detector) ([]byte, error) {
	switch det := d.(type) {
	case *SMA:
		b = append(b, tagSMA)
		b = appendFloats(b, det.buf)
	case *EMA:
		b = append(b, tagEMA)
		b = wire.AppendFloat64(b, det.ema)
		b = wire.AppendBool(b, det.seen)
	case *WMA:
		b = append(b, tagWMA)
		b = appendFloats(b, det.buf)
	case *ZScore:
		b = append(b, tagZScore)
		b = appendFloats(b, det.buf)
	case *Threshold:
		b = append(b, tagThreshold)
	default:
		return b, fmt.Errorf("tsmodel: cannot snapshot detector type %T", d)
	}
	return b, nil
}

// ReadDetectorState restores d's baseline state from r. d must be the same
// detector type that produced the state.
func ReadDetectorState(r *wire.Reader, d Detector) error {
	tag := r.Byte()
	switch det := d.(type) {
	case *SMA:
		if tag != tagSMA {
			return tagMismatch("SMA", tag)
		}
		det.buf = readFloats(r, det.buf)
	case *EMA:
		if tag != tagEMA {
			return tagMismatch("EMA", tag)
		}
		det.ema = r.Float64()
		det.seen = r.Bool()
	case *WMA:
		if tag != tagWMA {
			return tagMismatch("WMA", tag)
		}
		det.buf = readFloats(r, det.buf)
	case *ZScore:
		if tag != tagZScore {
			return tagMismatch("ZScore", tag)
		}
		det.buf = readFloats(r, det.buf)
	case *Threshold:
		if tag != tagThreshold {
			return tagMismatch("Threshold", tag)
		}
	default:
		return fmt.Errorf("tsmodel: cannot restore detector type %T", d)
	}
	return r.Err()
}

func appendFloats(b []byte, vals []float64) []byte {
	b = wire.AppendUvarint(b, uint64(len(vals)))
	for _, v := range vals {
		b = wire.AppendFloat64(b, v)
	}
	return b
}

func readFloats(r *wire.Reader, into []float64) []float64 {
	n := r.Count(8)
	into = into[:0]
	for i := 0; i < n && r.Err() == nil; i++ {
		into = append(into, r.Float64())
	}
	return into
}

func tagMismatch(want string, got byte) error {
	return fmt.Errorf("tsmodel: state tag %d does not match %s detector", got, want)
}
