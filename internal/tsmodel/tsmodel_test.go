package tsmodel

import (
	"math"
	"testing"
)

func feed(d Detector, xs ...float64) (alerts int, lastScore float64) {
	for _, x := range xs {
		s, a := d.Observe(x)
		lastScore = s
		if a {
			alerts++
		}
	}
	return
}

func TestSMAMatchesPaperQuery2(t *testing.T) {
	// Query 2: alert when ss[0] > (ss[0]+ss[1]+ss[2])/3 && ss[0] > 10000.
	// That is exactly SMA(3) with MinValue 10000 where the average includes
	// the current observation.
	d, err := NewSMA(3, 10000)
	if err != nil {
		t.Fatal(err)
	}
	alerts, _ := feed(d, 1000, 1200, 900) // warm-up: no alert possible on spike yet
	if alerts != 0 {
		t.Errorf("calm series alerted %d times", alerts)
	}
	_, anomalous := d.Observe(900000)
	if !anomalous {
		t.Error("spike not detected")
	}
	// After reset the detector needs warm-up again.
	d.Reset()
	if _, a := d.Observe(900000); a {
		t.Error("alert immediately after reset")
	}
}

func TestSMABelowFloor(t *testing.T) {
	d, _ := NewSMA(3, 10000)
	if alerts, _ := feed(d, 10, 12, 9, 5000); alerts != 0 {
		t.Errorf("sub-floor spike alerted")
	}
}

func TestSMAValidation(t *testing.T) {
	if _, err := NewSMA(1, 0); err == nil {
		t.Error("n=1 should fail")
	}
}

func TestEMA(t *testing.T) {
	d, err := NewEMA(0.3, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	alerts, _ := feed(d, 1000, 1100, 950, 1050)
	if alerts != 0 {
		t.Errorf("calm EMA alerted %d", alerts)
	}
	if _, a := d.Observe(50000); !a {
		t.Error("EMA spike not detected")
	}
	if _, err := NewEMA(0, 2, 0); err == nil {
		t.Error("alpha=0 should fail")
	}
	if _, err := NewEMA(1.5, 2, 0); err == nil {
		t.Error("alpha>1 should fail")
	}
	if _, err := NewEMA(0.5, 0, 0); err == nil {
		t.Error("factor=0 should fail")
	}
}

func TestWMAWeightsRecent(t *testing.T) {
	d, err := NewWMA(3, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	feed(d, 100, 100, 100)
	score, a := d.Observe(500)
	if !a {
		t.Error("WMA spike not detected")
	}
	if score <= 1 {
		t.Errorf("score = %v", score)
	}
	if _, err := NewWMA(1, 2, 0); err == nil {
		t.Error("n=1 should fail")
	}
}

func TestZScore(t *testing.T) {
	d, err := NewZScore(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	alerts, _ := feed(d, 10, 12, 11, 9, 10)
	if alerts != 0 {
		t.Errorf("warm-up alerted %d", alerts)
	}
	score, a := d.Observe(30)
	if !a || score < 3 {
		t.Errorf("z-score spike: score=%v anomalous=%v", score, a)
	}
	// Constant series with a jump: infinite z-score.
	d2, _ := NewZScore(3, 2)
	feed(d2, 5, 5, 5)
	score, a = d2.Observe(6)
	if !a || !math.IsInf(score, 1) {
		t.Errorf("constant-series jump: score=%v anomalous=%v", score, a)
	}
	if _, err := NewZScore(2, 1); err == nil {
		t.Error("n=2 should fail")
	}
	if _, err := NewZScore(5, 0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestThreshold(t *testing.T) {
	d := &Threshold{Limit: 100}
	if _, a := d.Observe(99); a {
		t.Error("below limit alerted")
	}
	if _, a := d.Observe(101); !a {
		t.Error("above limit not alerted")
	}
	d.Reset() // no-op, must not panic
}

// The SMA detector and the SAQL Query-2 alert expression must agree on an
// arbitrary series (cross-validation of the two implementations).
func TestSMAAgreesWithManualWindows(t *testing.T) {
	series := []float64{500, 800, 1200, 900, 40000, 700, 50000, 51000, 600}
	d, _ := NewSMA(3, 10000)
	var fromDetector []bool
	for _, x := range series {
		_, a := d.Observe(x)
		fromDetector = append(fromDetector, a)
	}
	// Manual evaluation of the paper's expression.
	var manual []bool
	for i := range series {
		if i < 2 {
			manual = append(manual, false)
			continue
		}
		cur, p1, p2 := series[i], series[i-1], series[i-2]
		manual = append(manual, cur > (cur+p1+p2)/3 && cur > 10000)
	}
	for i := range series {
		if fromDetector[i] != manual[i] {
			t.Errorf("index %d: detector=%v manual=%v", i, fromDetector[i], manual[i])
		}
	}
}
