package tsmodel

import (
	"testing"

	"saql/internal/wire"
)

// TestDetectorStateRoundTrip checks that a restored detector continues the
// series exactly where the snapshot left it: for every detector type, the
// scores and verdicts after restore equal those of a never-interrupted
// detector.
func TestDetectorStateRoundTrip(t *testing.T) {
	series := []float64{10, 12, 11, 13, 500, 14, 12, 900, 11, 10, 15, 1200, 9}
	const cut = 6

	fresh := map[string]func() Detector{
		"sma": func() Detector { d, _ := NewSMA(3, 5); return d },
		"ema": func() Detector { d, _ := NewEMA(0.3, 2, 5); return d },
		"wma": func() Detector { d, _ := NewWMA(4, 2, 5); return d },
		"z":   func() Detector { d, _ := NewZScore(4, 2); return d },
		"thr": func() Detector { return &Threshold{Limit: 100} },
	}
	for name, mk := range fresh {
		t.Run(name, func(t *testing.T) {
			ref := mk()
			for _, x := range series {
				ref.Observe(x)
			}

			live := mk()
			for _, x := range series[:cut] {
				live.Observe(x)
			}
			blob, err := AppendDetectorState(nil, live)
			if err != nil {
				t.Fatal(err)
			}
			restored := mk()
			if err := ReadDetectorState(wire.NewReader(blob), restored); err != nil {
				t.Fatal(err)
			}

			for i, x := range series[cut:] {
				wantScore, wantAnom := live.Observe(x)
				gotScore, gotAnom := restored.Observe(x)
				if wantScore != gotScore || wantAnom != gotAnom {
					t.Fatalf("obs %d: restored (%g, %v) != uninterrupted (%g, %v)", cut+i, gotScore, gotAnom, wantScore, wantAnom)
				}
			}
		})
	}
}

// TestDetectorStateTagMismatch pins the failure mode: state restored into
// the wrong detector type errors instead of silently misreading.
func TestDetectorStateTagMismatch(t *testing.T) {
	sma, _ := NewSMA(3, 0)
	sma.Observe(1)
	blob, err := AppendDetectorState(nil, sma)
	if err != nil {
		t.Fatal(err)
	}
	ema, _ := NewEMA(0.5, 2, 0)
	if err := ReadDetectorState(wire.NewReader(blob), ema); err == nil {
		t.Fatal("SMA state restored into an EMA detector without error")
	}
}
