package dist_test

import (
	"bytes"
	"net"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"saql"
	"saql/internal/dist"
	"saql/internal/engine"
	"saql/internal/event"
	"saql/internal/value"
	"saql/internal/wire"
)

// seedFrames builds one well-formed frame of every type, used both as the
// fuzz seed corpus and as the encode/decode round-trip fixture.
func seedFrames() []dist.Frame {
	rm := map[string][]saql.KeyRange{
		"w0": {{Lo: 0, Hi: 0x7fffffff}},
		"w1": {{Lo: 0x80000000, Hi: 0xbfffffff}, {Lo: 0xc0000000, Hi: 0xffffffff}},
	}
	evs := []*event.Event{
		{
			ID:      7,
			Time:    time.Unix(0, 1582794000000000000),
			AgentID: "db-1",
			Subject: event.Process("sqlservr.exe", 2001),
			Op:      event.OpWrite,
			Object:  event.NetConn("10.0.0.2", 1433, "10.1.0.3", 443),
			Amount:  4096,
		},
	}
	alert := &engine.Alert{
		Query:     "grouped-sum",
		Kind:      engine.KindStateful,
		EventTime: time.Unix(0, 1582794000000000000),
		Detected:  time.Unix(0, 1582794001000000000),
		GroupKey:  "proc:sqlservr.exe",
		Values: []engine.NamedValue{
			{Name: "amt", Val: value.Float(1048576)},
			{Name: "dsts", Val: value.SetOf("10.1.0.3", "10.1.0.4")},
			{Name: "n", Val: value.Int(12)},
		},
		Events: evs,
	}
	return []dist.Frame{
		{Type: dist.FrameHello, Payload: dist.EncodeHello(&dist.Hello{WorkerID: "w1", Ranges: rm})},
		{Type: dist.FrameHelloAck, Payload: dist.EncodeOffset(42)},
		{Type: dist.FrameEvents, Payload: dist.EncodeEvents(42, evs)},
		{Type: dist.FrameControl, Payload: dist.EncodeControl(&dist.Control{Kind: dist.CtlUpdate, Name: "q", Src: "proc p read file f return p", Carry: true})},
		{Type: dist.FrameControlAck, Payload: dist.EncodeErrorFrame("")},
		{Type: dist.FrameAlerts, Payload: dist.EncodeAlerts([]*engine.Alert{alert})},
		{Type: dist.FrameCheckpoint},
		{Type: dist.FrameCheckpointAck, Payload: dist.EncodeOffset(43)},
		{Type: dist.FrameHeartbeat, Payload: dist.EncodeNonce(9)},
		{Type: dist.FrameHeartbeatAck, Payload: dist.EncodeNonce(9)},
		{Type: dist.FrameStateRequest},
		{Type: dist.FrameStateBlobs, Payload: dist.EncodeStateBlobs(43, map[string][][]byte{"q": {{1, 2, 3}, {4}}})},
		{Type: dist.FrameReconfigure, Payload: dist.EncodeReconfigure(&dist.Reconfigure{
			Ranges: rm["w1"],
			States: map[string][][]byte{"q": {{5, 6}}},
		})},
		{Type: dist.FrameReconfigureAck, Payload: dist.EncodeOffset(43)},
		{Type: dist.FrameShutdown},
		{Type: dist.FrameShutdownAck, Payload: dist.EncodeOffset(43)},
		{Type: dist.FrameError, Payload: dist.EncodeErrorFrame("boom")},
	}
}

// TestFrameRoundTrip pushes every frame type through the stream writer and
// reader and through the byte-image decoder.
func TestFrameRoundTrip(t *testing.T) {
	for _, f := range seedFrames() {
		var buf bytes.Buffer
		if err := dist.WriteFrame(&buf, f); err != nil {
			t.Fatalf("%s: write: %v", f.Type, err)
		}
		img := append([]byte(nil), buf.Bytes()...)
		got, err := dist.ReadFrame(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", f.Type, err)
		}
		if got.Type != f.Type || !bytes.Equal(got.Payload, f.Payload) {
			t.Errorf("%s: stream round-trip mismatch", f.Type)
		}
		dec, n, err := dist.DecodeFrame(img)
		if err != nil {
			t.Fatalf("%s: decode: %v", f.Type, err)
		}
		if n != len(img) || dec.Type != f.Type || !bytes.Equal(dec.Payload, f.Payload) {
			t.Errorf("%s: image round-trip mismatch (consumed %d of %d)", f.Type, n, len(img))
		}
	}
}

// FuzzFrameDecode drives the full frame decoder — header validation plus
// every payload codec — with arbitrary bytes. It must never panic,
// over-allocate, or read out of bounds, and anything it accepts must
// re-encode and re-decode to the same frame.
func FuzzFrameDecode(f *testing.F) {
	for _, fr := range seedFrames() {
		f.Add(dist.AppendFrame(nil, fr))
	}
	// Structural negatives: truncations, a bad version, a bad type.
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 1})
	f.Add([]byte{1, 0, 0, 0, 99, byte(dist.FrameHello), 0})
	f.Add([]byte{1, 0, 0, 0, 1, 200, 0})
	f.Add([]byte{255, 255, 255, 255, 1, byte(dist.FrameEvents)})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := dist.DecodeFrame(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		img := dist.AppendFrame(nil, fr)
		fr2, _, err := dist.DecodeFrame(img)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if fr2.Type != fr.Type || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatal("re-encoded frame decoded differently")
		}
	})
}

// TestRangeMapRoundTrip is the property check for the range-map codec:
// any worker→ranges map encodes to a canonical byte string (workers
// sorted) and decodes back to an equal map.
func TestRangeMapRoundTrip(t *testing.T) {
	prop := func(m map[string][]saql.KeyRange) bool {
		b := dist.AppendRangeMap(nil, m)
		r := wire.NewReader(b)
		got := dist.ReadRangeMap(r)
		if r.Err() != nil || r.Len() != 0 {
			return false
		}
		if len(got) != len(m) {
			return false
		}
		for id, rs := range m {
			grs, ok := got[id]
			if !ok || len(grs) != len(rs) {
				return false
			}
			for i := range rs {
				if grs[i] != rs[i] {
					return false
				}
			}
		}
		// Canonical form: re-encoding the decoded map is byte-identical.
		return bytes.Equal(b, dist.AppendRangeMap(nil, got))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSplitRangesPartition checks that SplitRanges tiles the whole hash
// space with no gaps or overlaps for a spread of worker counts.
func TestSplitRangesPartition(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 7, 16} {
		sets := dist.SplitRanges(n)
		if len(sets) != n {
			t.Fatalf("n=%d: %d sets", n, len(sets))
		}
		var next uint64
		for i, rs := range sets {
			if len(rs) != 1 {
				t.Fatalf("n=%d worker %d: %d ranges", n, i, len(rs))
			}
			if uint64(rs[0].Lo) != next {
				t.Fatalf("n=%d worker %d: starts at %#x, want %#x", n, i, rs[0].Lo, next)
			}
			next = uint64(rs[0].Hi) + 1
		}
		if next != 1<<32 {
			t.Fatalf("n=%d: space ends at %#x", n, next)
		}
	}
}

// TestSubtractRanges exercises the migration precondition algebra.
func TestSubtractRanges(t *testing.T) {
	have := []saql.KeyRange{{Lo: 0, Hi: 99}, {Lo: 200, Hi: 299}}
	rest, err := dist.SubtractRanges(have, []saql.KeyRange{{Lo: 40, Hi: 59}})
	if err != nil {
		t.Fatal(err)
	}
	want := []saql.KeyRange{{Lo: 0, Hi: 39}, {Lo: 60, Hi: 99}, {Lo: 200, Hi: 299}}
	if !reflect.DeepEqual(rest, want) {
		t.Errorf("subtract interior: %v, want %v", rest, want)
	}
	if _, err := dist.SubtractRanges(have, []saql.KeyRange{{Lo: 90, Hi: 110}}); err == nil {
		t.Error("subtracting an unowned span succeeded")
	}
	rest, err = dist.SubtractRanges(have, []saql.KeyRange{{Lo: 200, Hi: 299}})
	if err != nil {
		t.Fatal(err)
	}
	want = []saql.KeyRange{{Lo: 0, Hi: 99}}
	if !reflect.DeepEqual(rest, want) {
		t.Errorf("subtract whole range: %v, want %v", rest, want)
	}
}

// TestAlertCodecRoundTrip checks the alert codec preserves everything the
// identity and the operator-facing fields depend on.
func TestAlertCodecRoundTrip(t *testing.T) {
	frames := seedFrames()
	var alertsPayload []byte
	for _, f := range frames {
		if f.Type == dist.FrameAlerts {
			alertsPayload = f.Payload
		}
	}
	alerts, err := dist.DecodeAlerts(alertsPayload)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 {
		t.Fatalf("%d alerts", len(alerts))
	}
	a := alerts[0]
	if a.Query != "grouped-sum" || a.Kind != engine.KindStateful || a.GroupKey != "proc:sqlservr.exe" {
		t.Errorf("header fields lost: %+v", a)
	}
	if len(a.Values) != 3 || a.Values[1].Val.String() != value.SetOf("10.1.0.3", "10.1.0.4").String() {
		t.Errorf("values lost: %+v", a.Values)
	}
	if len(a.Events) != 1 || a.Events[0].Subject.ExeName != "sqlservr.exe" {
		t.Errorf("events lost: %+v", a.Events)
	}
	if dist.AlertIdentity(a) == "" {
		t.Error("empty identity")
	}
}

// TestInProcDialUnregistered pins the transport's error path.
func TestInProcDialUnregistered(t *testing.T) {
	p := dist.NewInProc()
	if _, err := p.Dial("nope"); err == nil {
		t.Error("dialing an unregistered address succeeded")
	}
	var _ net.Conn // keep net import honest if the test grows
}
