// Package dist implements the distributed execution layer on top of the
// checkpoint substrate: a coordinator that owns the queryset, splits the
// FNV ownership hash space into contiguous key ranges, and broadcasts one
// total event order to a set of workers; and workers, each a normal
// saql.Engine restricted to its ranges (saql.WithKeyRanges) that journals
// and checkpoints independently and streams alerts back.
//
// # Equivalence model
//
// The cluster inherits the sharded runtime's argument wholesale: every
// worker observes every event in the same total order, so watermarks and
// window boundaries are identical everywhere; key-range ownership only
// gates which worker folds state and raises alerts for a given group, event
// subject, or pinned query. Worker alert sets are therefore disjoint and
// their union equals the serial engine's alert set.
//
// # Failure and rebalance model
//
// All recovery is checkpoint → restore with a new range map. A cluster
// checkpoint is a barrier frame every worker answers after writing its own
// snapshot at the same stream offset; the coordinator retains the event
// batches dispatched since the last completed barrier (the epoch). A killed
// worker is replaced by restoring from its directory — the local journal
// replays it to its death point, the coordinator re-sends the retained tail
// past it, and a per-worker alert-identity multiset suppresses the alerts
// the dead worker already delivered. A live key-range migration is a
// barrier, a state-blob transfer from the source's snapshot, and a
// reconfigure (close + restore under the new range map) of both workers;
// the target folds the source's blobs through its own ownership filters, so
// it keeps exactly the migrated range's state. Control operations (register,
// pause, update, remove) ride the same total order as events and are
// immediately followed by a barrier, so an epoch's retained tail is pure
// events and replays into a snapshot without interleaving concerns.
package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"saql"
	"saql/internal/engine"
	"saql/internal/event"
	"saql/internal/wire"
)

// ProtocolVersion is the cluster wire-protocol version. Every frame carries
// it; a mismatch fails the connection rather than guessing at a layout.
const ProtocolVersion = 1

// MaxFramePayload bounds a frame payload so a corrupted or hostile length
// prefix cannot drive an arbitrary allocation.
const MaxFramePayload = 64 << 20

// frameHeaderSize is the fixed frame prelude: u32 payload length, version
// byte, type byte.
const frameHeaderSize = 6

// FrameType identifies a frame's payload codec.
type FrameType uint8

// Frame types. Coordinator→worker frames carry the single total order
// (events, control, barriers, reconfiguration); worker→coordinator frames
// are alert returns and acks.
const (
	FrameHello          FrameType = iota + 1 // coordinator→worker: id + range map
	FrameHelloAck                            // worker→coordinator: stream position after restore
	FrameEvents                              // event fan-out batch
	FrameControl                             // queryset control op
	FrameControlAck                          // ack (empty payload, or error via FrameError)
	FrameAlerts                              // alert return batch
	FrameCheckpoint                          // checkpoint barrier request
	FrameCheckpointAck                       // barrier ack: snapshot offset
	FrameHeartbeat                           // lease ping (nonce)
	FrameHeartbeatAck                        // lease ack (echoed nonce)
	FrameStateRequest                        // request last snapshot's state blobs
	FrameStateBlobs                          // state-blob transfer
	FrameReconfigure                         // new range map (+ optional folded blobs)
	FrameReconfigureAck                      // ack: stream position under the new map
	FrameShutdown                            // graceful stop: flush, final checkpoint, close
	FrameShutdownAck                         // ack: final offset
	FrameError                               // worker-side failure report
)

// String names the frame type.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameHelloAck:
		return "hello-ack"
	case FrameEvents:
		return "events"
	case FrameControl:
		return "control"
	case FrameControlAck:
		return "control-ack"
	case FrameAlerts:
		return "alerts"
	case FrameCheckpoint:
		return "checkpoint"
	case FrameCheckpointAck:
		return "checkpoint-ack"
	case FrameHeartbeat:
		return "heartbeat"
	case FrameHeartbeatAck:
		return "heartbeat-ack"
	case FrameStateRequest:
		return "state-request"
	case FrameStateBlobs:
		return "state-blobs"
	case FrameReconfigure:
		return "reconfigure"
	case FrameReconfigureAck:
		return "reconfigure-ack"
	case FrameShutdown:
		return "shutdown"
	case FrameShutdownAck:
		return "shutdown-ack"
	case FrameError:
		return "error"
	default:
		return "frame(" + strconv.Itoa(int(t)) + ")"
	}
}

func (t FrameType) valid() bool { return t >= FrameHello && t <= FrameError }

// Frame is one length-prefixed protocol unit.
type Frame struct {
	Type    FrameType
	Payload []byte
}

// AppendFrame appends the framed encoding: u32 little-endian payload
// length, version byte, type byte, payload.
func AppendFrame(b []byte, f Frame) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(f.Payload)))
	b = append(b, ProtocolVersion, byte(f.Type))
	return append(b, f.Payload...)
}

// WriteFrame writes one frame. Callers serialise writes per connection.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxFramePayload {
		return fmt.Errorf("dist: frame payload %d exceeds limit %d", len(f.Payload), MaxFramePayload)
	}
	_, err := w.Write(AppendFrame(make([]byte, 0, frameHeaderSize+len(f.Payload)), f))
	return err
}

// ReadFrame reads one frame, validating version, type, and payload bound.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > MaxFramePayload {
		return Frame{}, fmt.Errorf("dist: frame payload %d exceeds limit %d", n, MaxFramePayload)
	}
	if hdr[4] != ProtocolVersion {
		return Frame{}, fmt.Errorf("dist: protocol version %d not supported (this build speaks %d)", hdr[4], ProtocolVersion)
	}
	t := FrameType(hdr[5])
	if !t.valid() {
		return Frame{}, fmt.Errorf("dist: unknown frame type %d", hdr[5])
	}
	f := Frame{Type: t}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, err
		}
	}
	return f, nil
}

// DecodeFrame decodes one frame from a byte image, returning the bytes
// consumed. It performs the same validation as ReadFrame and additionally
// decodes the payload through the type's codec, so a fuzzer exercises every
// decoder from one entry point. Decoding never panics and never allocates
// past the image's own size.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < frameHeaderSize {
		return Frame{}, 0, fmt.Errorf("dist: truncated frame header")
	}
	n := binary.LittleEndian.Uint32(b[:4])
	if n > MaxFramePayload {
		return Frame{}, 0, fmt.Errorf("dist: frame payload %d exceeds limit %d", n, MaxFramePayload)
	}
	if b[4] != ProtocolVersion {
		return Frame{}, 0, fmt.Errorf("dist: protocol version %d not supported (this build speaks %d)", b[4], ProtocolVersion)
	}
	t := FrameType(b[5])
	if !t.valid() {
		return Frame{}, 0, fmt.Errorf("dist: unknown frame type %d", b[5])
	}
	if uint64(len(b)-frameHeaderSize) < uint64(n) {
		return Frame{}, 0, fmt.Errorf("dist: truncated frame payload (%d < %d)", len(b)-frameHeaderSize, n)
	}
	f := Frame{Type: t, Payload: b[frameHeaderSize : frameHeaderSize+int(n)]}
	if err := decodePayload(f); err != nil {
		return Frame{}, 0, err
	}
	return f, frameHeaderSize + int(n), nil
}

// decodePayload runs the frame's payload through its codec, discarding the
// result: the structural validation half of DecodeFrame.
//
//saql:codecpair-ignore frame-type dispatcher, not a codec half; each DecodeX it calls is paired individually
func decodePayload(f Frame) error {
	var err error
	switch f.Type {
	case FrameHello:
		_, err = DecodeHello(f.Payload)
	case FrameHelloAck, FrameCheckpointAck, FrameReconfigureAck, FrameShutdownAck:
		_, err = DecodeOffset(f.Payload)
	case FrameEvents:
		_, err = DecodeEvents(f.Payload)
	case FrameControl:
		_, err = DecodeControl(f.Payload)
	case FrameAlerts:
		_, err = DecodeAlerts(f.Payload)
	case FrameHeartbeat, FrameHeartbeatAck:
		_, err = DecodeNonce(f.Payload)
	case FrameStateBlobs:
		_, _, err = DecodeStateBlobs(f.Payload)
	case FrameReconfigure:
		_, err = DecodeReconfigure(f.Payload)
	case FrameError, FrameControlAck:
		_, err = DecodeErrorFrame(f.Payload)
	case FrameCheckpoint, FrameStateRequest, FrameShutdown:
		if len(f.Payload) != 0 {
			err = errors.New("dist: unexpected payload on bare frame")
		}
	}
	return err
}

// ---------------------------------------------------------------------------
// Range-map codec
// ---------------------------------------------------------------------------

// AppendRangeMap appends a worker→key-ranges map, workers sorted by id so
// equal maps encode identically.
func AppendRangeMap(b []byte, m map[string][]saql.KeyRange) []byte {
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	b = wire.AppendUvarint(b, uint64(len(ids)))
	for _, id := range ids {
		b = wire.AppendString(b, id)
		b = AppendRanges(b, m[id])
	}
	return b
}

// ReadRangeMap decodes a worker→key-ranges map.
func ReadRangeMap(r *wire.Reader) map[string][]saql.KeyRange {
	n := r.Count(2)
	m := make(map[string][]saql.KeyRange, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		id := r.String()
		m[id] = ReadRanges(r)
	}
	return m
}

// AppendRanges appends one worker's key-range list.
func AppendRanges(b []byte, rs []saql.KeyRange) []byte {
	b = wire.AppendUvarint(b, uint64(len(rs)))
	for _, kr := range rs {
		b = wire.AppendUint32(b, kr.Lo)
		b = wire.AppendUint32(b, kr.Hi)
	}
	return b
}

// ReadRanges decodes one worker's key-range list.
func ReadRanges(r *wire.Reader) []saql.KeyRange {
	n := r.Count(8)
	out := make([]saql.KeyRange, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		out = append(out, saql.KeyRange{Lo: r.Uint32(), Hi: r.Uint32()})
	}
	return out
}

// ---------------------------------------------------------------------------
// Hello
// ---------------------------------------------------------------------------

// Hello opens a coordinator→worker session: it names the worker and carries
// the full cluster range map (the worker applies its own entry; the rest is
// observability). The worker builds or restores its engine under those
// ranges and answers with its stream position.
type Hello struct {
	WorkerID string
	Ranges   map[string][]saql.KeyRange
}

// EncodeHello encodes a hello payload.
func EncodeHello(h *Hello) []byte {
	b := wire.AppendString(nil, h.WorkerID)
	return AppendRangeMap(b, h.Ranges)
}

// DecodeHello decodes a hello payload.
func DecodeHello(p []byte) (*Hello, error) {
	r := wire.NewReader(p)
	h := &Hello{WorkerID: r.String(), Ranges: ReadRangeMap(r)}
	return h, finish(r)
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

// EncodeEvents encodes an event fan-out batch starting at stream offset
// start.
func EncodeEvents(start int64, evs []*event.Event) []byte {
	b := wire.AppendVarint(nil, start)
	b = wire.AppendUvarint(b, uint64(len(evs)))
	for _, ev := range evs {
		b = wire.AppendEvent(b, ev)
	}
	return b
}

// EventsBatch is a decoded event fan-out batch.
type EventsBatch struct {
	Start  int64
	Events []*event.Event
}

// DecodeEvents decodes an event fan-out batch.
func DecodeEvents(p []byte) (*EventsBatch, error) {
	r := wire.NewReader(p)
	eb := &EventsBatch{Start: r.Varint()}
	n := r.Count(16)
	for i := 0; i < n && r.Err() == nil; i++ {
		eb.Events = append(eb.Events, r.ReadEvent())
	}
	return eb, finish(r)
}

// ---------------------------------------------------------------------------
// Control
// ---------------------------------------------------------------------------

// ControlKind is a queryset control operation.
type ControlKind uint8

// Control operations. They ride the same total order as events: a worker
// applies one to its engine (whose own control queue orders it against the
// events submitted before and after), and the coordinator follows every
// control op with a checkpoint barrier.
const (
	CtlRegister ControlKind = iota + 1
	CtlRemove
	CtlUpdate
	CtlPause
	CtlResume
)

func (k ControlKind) String() string {
	switch k {
	case CtlRegister:
		return "register"
	case CtlRemove:
		return "remove"
	case CtlUpdate:
		return "update"
	case CtlPause:
		return "pause"
	case CtlResume:
		return "resume"
	default:
		return "control(" + strconv.Itoa(int(k)) + ")"
	}
}

// Control is one queryset control operation.
type Control struct {
	Kind  ControlKind
	Name  string
	Src   string // CtlRegister, CtlUpdate
	Carry bool   // CtlUpdate: carry compatible window state across the swap
}

// EncodeControl encodes a control payload.
func EncodeControl(c *Control) []byte {
	b := []byte{byte(c.Kind)}
	b = wire.AppendString(b, c.Name)
	b = wire.AppendString(b, c.Src)
	return wire.AppendBool(b, c.Carry)
}

// DecodeControl decodes a control payload.
func DecodeControl(p []byte) (*Control, error) {
	r := wire.NewReader(p)
	c := &Control{Kind: ControlKind(r.Byte()), Name: r.String(), Src: r.String(), Carry: r.Bool()}
	if err := finish(r); err != nil {
		return nil, err
	}
	if c.Kind < CtlRegister || c.Kind > CtlResume {
		return nil, fmt.Errorf("dist: unknown control kind %d", c.Kind)
	}
	return c, nil
}

// ---------------------------------------------------------------------------
// Alerts
// ---------------------------------------------------------------------------

// AppendAlert appends one alert: query, kind, event time, detection time,
// group key, returned values, matched events.
func AppendAlert(b []byte, a *engine.Alert) []byte {
	b = wire.AppendString(b, a.Query)
	b = append(b, byte(a.Kind))
	b = wire.AppendTime(b, a.EventTime)
	b = wire.AppendTime(b, a.Detected)
	b = wire.AppendString(b, a.GroupKey)
	b = wire.AppendUvarint(b, uint64(len(a.Values)))
	for _, nv := range a.Values {
		b = wire.AppendString(b, nv.Name)
		b = wire.AppendValue(b, nv.Val)
	}
	b = wire.AppendUvarint(b, uint64(len(a.Events)))
	for _, ev := range a.Events {
		b = wire.AppendEvent(b, ev)
	}
	return b
}

// ReadAlert decodes one alert.
func ReadAlert(r *wire.Reader) *engine.Alert {
	a := &engine.Alert{
		Query:     r.String(),
		Kind:      engine.ModelKind(r.Byte()),
		EventTime: r.Time(),
		Detected:  r.Time(),
		GroupKey:  r.String(),
	}
	nv := r.Count(2)
	for i := 0; i < nv && r.Err() == nil; i++ {
		a.Values = append(a.Values, engine.NamedValue{Name: r.String(), Val: r.ReadValue()})
	}
	ne := r.Count(16)
	for i := 0; i < ne && r.Err() == nil; i++ {
		a.Events = append(a.Events, r.ReadEvent())
	}
	return a
}

// EncodeAlerts encodes an alert return batch.
func EncodeAlerts(alerts []*engine.Alert) []byte {
	b := wire.AppendUvarint(nil, uint64(len(alerts)))
	for _, a := range alerts {
		b = AppendAlert(b, a)
	}
	return b
}

// DecodeAlerts decodes an alert return batch.
func DecodeAlerts(p []byte) ([]*engine.Alert, error) {
	r := wire.NewReader(p)
	n := r.Count(8)
	out := make([]*engine.Alert, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		out = append(out, ReadAlert(r))
	}
	return out, finish(r)
}

// AlertIdentity is the replay-stable comparison key for exactly-once alert
// delivery: event time (instant), query, group, and returned values — the
// same identity the recovery-equivalence conformance suite compares on.
// Detection time is excluded (replay re-detects at a later wall clock), as
// are matched-event IDs (journal replay re-decodes events; identity must
// not depend on pointer or ID provenance).
func AlertIdentity(a *engine.Alert) string {
	var sb strings.Builder
	sb.WriteString(strconv.FormatInt(a.EventTime.UnixNano(), 10))
	sb.WriteByte('|')
	sb.WriteString(a.Query)
	sb.WriteByte('|')
	sb.WriteString(a.GroupKey)
	for _, nv := range a.Values {
		sb.WriteByte('|')
		sb.WriteString(nv.Name)
		sb.WriteByte('=')
		sb.WriteString(nv.Val.String())
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Offsets, nonces, errors
// ---------------------------------------------------------------------------

// EncodeOffset encodes a stream-offset ack payload.
func EncodeOffset(off int64) []byte { return wire.AppendVarint(nil, off) }

// DecodeOffset decodes a stream-offset ack payload.
func DecodeOffset(p []byte) (int64, error) {
	r := wire.NewReader(p)
	off := r.Varint()
	return off, finish(r)
}

// EncodeNonce encodes a heartbeat nonce.
func EncodeNonce(n uint64) []byte { return wire.AppendUvarint(nil, n) }

// DecodeNonce decodes a heartbeat nonce.
func DecodeNonce(p []byte) (uint64, error) {
	r := wire.NewReader(p)
	n := r.Uvarint()
	return n, finish(r)
}

// EncodeErrorFrame encodes a worker failure report.
func EncodeErrorFrame(msg string) []byte { return wire.AppendString(nil, msg) }

// DecodeErrorFrame decodes a worker failure report.
func DecodeErrorFrame(p []byte) (string, error) {
	r := wire.NewReader(p)
	msg := r.String()
	return msg, finish(r)
}

// ---------------------------------------------------------------------------
// State transfer and reconfiguration
// ---------------------------------------------------------------------------

// EncodeStateBlobs encodes a barrier-consistent state transfer: the
// snapshot offset the blobs were captured at plus each query's encoded
// state blobs.
func EncodeStateBlobs(offset int64, states map[string][][]byte) []byte {
	b := wire.AppendVarint(nil, offset)
	return appendStates(b, states)
}

// DecodeStateBlobs decodes a state transfer.
func DecodeStateBlobs(p []byte) (int64, map[string][][]byte, error) {
	r := wire.NewReader(p)
	off := r.Varint()
	states := readStates(r)
	return off, states, finish(r)
}

// Reconfigure instructs a worker to re-restore under a new range map —
// sent only immediately after a checkpoint barrier, so the worker's journal
// head equals its snapshot offset and the restore replays nothing. States,
// when non-empty, are a migration source's blobs for the target to fold
// (its new ownership filters keep only the migrated range).
type Reconfigure struct {
	Ranges []saql.KeyRange
	States map[string][][]byte
}

// EncodeReconfigure encodes a reconfigure payload.
func EncodeReconfigure(rc *Reconfigure) []byte {
	b := AppendRanges(nil, rc.Ranges)
	return appendStates(b, rc.States)
}

// DecodeReconfigure decodes a reconfigure payload.
func DecodeReconfigure(p []byte) (*Reconfigure, error) {
	r := wire.NewReader(p)
	rc := &Reconfigure{Ranges: ReadRanges(r), States: readStates(r)}
	return rc, finish(r)
}

func appendStates(b []byte, states map[string][][]byte) []byte {
	names := make([]string, 0, len(states))
	for name := range states {
		names = append(names, name)
	}
	sort.Strings(names)
	b = wire.AppendUvarint(b, uint64(len(names)))
	for _, name := range names {
		b = wire.AppendString(b, name)
		blobs := states[name]
		b = wire.AppendUvarint(b, uint64(len(blobs)))
		for _, blob := range blobs {
			b = wire.AppendBytes(b, blob)
		}
	}
	return b
}

func readStates(r *wire.Reader) map[string][][]byte {
	n := r.Count(2)
	states := make(map[string][][]byte, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		name := r.String()
		nb := r.Count(1)
		blobs := make([][]byte, 0, nb)
		for j := 0; j < nb && r.Err() == nil; j++ {
			blobs = append(blobs, append([]byte(nil), r.Bytes()...))
		}
		states[name] = blobs
	}
	return states
}

// finish fails a decode that errored or left trailing bytes.
func finish(r *wire.Reader) error {
	if err := r.Err(); err != nil {
		return err
	}
	if r.Len() != 0 {
		return fmt.Errorf("dist: %d trailing bytes after payload", r.Len())
	}
	return nil
}
