package dist

// Coordinator: the cluster's single dispatch point. It owns the queryset
// model and the range map, broadcasts ONE total order of event batches and
// control operations to every worker (every worker sees every event — only
// ownership differs, which is what keeps the cluster alert-for-alert equal
// to a serial engine), and drives the recovery machinery: checkpoint
// barriers, epoch retention, worker replacement, and live key-range
// migration.
//
// Concurrency model: one dispatch mutex (mu) serialises every outbound
// frame and every membership change, so the broadcast order IS the total
// order and no post-barrier frame can exist until the barrier's acks are
// in. Each worker connection has one reader goroutine that delivers alert
// frames (through the dedup window, under amu) and routes everything else
// to the worker's ack channel. Because a worker flushes its alerts before
// writing any ack and the reader handles frames in order, an ack observed
// by the dispatcher proves that worker's pre-ack alerts have already been
// delivered — the ordering fact the barrier's dedup-window trim and the
// replacement's suppression window both rest on.
//
// Failure model: a read error, write error, worker-reported fault, or lease
// expiry marks the worker dead; its key ranges are NOT reassigned — events
// keep flowing to the survivors and into the retained epoch until
// ReplaceWorker hands the dead worker's directory to a fresh process, which
// restores the last barrier's snapshot, replays its own journaled tail, and
// receives the retained remainder. Control operations and barriers refuse
// to run while any worker is dead (a barrier the dead worker missed would
// trim exactly the epoch its replacement needs).

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"saql"
)

// Coordinator errors.
var (
	// ErrCoordinatorClosed is returned by operations on a closed coordinator.
	ErrCoordinatorClosed = errors.New("dist: coordinator closed")
	// ErrLeaseExpired marks a worker dead because its heartbeat lease ran out.
	ErrLeaseExpired = errors.New("dist: heartbeat lease expired")
)

// Config configures a Coordinator.
type Config struct {
	// OnAlert receives every cluster alert exactly once, serially.
	// It must not call back into the Coordinator.
	OnAlert func(*saql.Alert)
	// Lease is the heartbeat lease: a worker silent for longer is declared
	// dead by ExpireLeases. Zero disables lease expiry.
	Lease time.Duration
	// AckTimeout bounds each wait for a worker acknowledgement (default 30s).
	AckTimeout time.Duration
	// Logf, when set, receives diagnostic output.
	Logf func(format string, args ...any)
}

// queryModel is the coordinator's record of one registered query.
type queryModel struct {
	src    string
	paused bool
}

// retainedBatch is one event batch kept since the last completed barrier.
type retainedBatch struct {
	start int64
	evs   []*saql.Event
}

// workerState is the coordinator's view of one worker connection.
type workerState struct {
	id     string
	conn   net.Conn
	ranges []saql.KeyRange

	acks       chan Frame // non-alert worker frames, routed by the reader
	readerDone chan struct{}
	dead       atomic.Bool
	failure    atomic.Value // error
	lastSeen   atomic.Int64 // unix nanos of the last frame read

	// delivered counts, per alert identity, the alerts this logical worker
	// has delivered to OnAlert since the epoch's base barrier; suppress
	// counts deliveries still owed to a predecessor's replay. Both are
	// guarded by Coordinator.amu and cleared when a barrier completes.
	delivered map[string]int
	suppress  map[string]int
}

// Coordinator drives a worker cluster. Create with NewCoordinator, add
// workers with AddWorker, then feed events with Submit and manage the
// queryset with Register/Update/Pause/Resume/Remove. All methods are safe
// for concurrent use; operations serialise on the dispatch mutex.
type Coordinator struct {
	cfg Config

	mu        sync.Mutex // dispatch mutex: all sends + membership
	closed    bool
	closing   atomic.Bool // set by Close before conns drop: EOF is expected
	workers   map[string]*workerState
	order     []string // sorted worker ids
	queries   map[string]*queryModel
	offset    int64           // next stream offset
	epochBase int64           // offset of the last completed barrier
	epoch     []retainedBatch // batches since epochBase

	amu   sync.Mutex // alert dedup windows + serial OnAlert delivery
	nonce uint64
}

// NewCoordinator creates a coordinator with no workers.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 30 * time.Second
	}
	return &Coordinator{
		cfg:     cfg,
		workers: map[string]*workerState{},
		queries: map[string]*queryModel{},
	}
}

// ---------------------------------------------------------------------------
// Membership
// ---------------------------------------------------------------------------

// AddWorker admits a worker into a fresh cluster (no events submitted, no
// queries registered — growing a live cluster is a migration composition,
// not an admission). The connection must have a Worker serving its far end;
// the handshake assigns id and ranges and verifies the worker starts at
// offset 0.
func (c *Coordinator) AddWorker(id string, conn net.Conn, ranges []saql.KeyRange) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrCoordinatorClosed
	}
	if c.offset != 0 || len(c.queries) != 0 {
		return errors.New("dist: AddWorker on a non-fresh cluster")
	}
	if _, ok := c.workers[id]; ok {
		return fmt.Errorf("dist: worker %q already exists", id)
	}
	ranges = NormalizeRanges(ranges)
	if len(ranges) == 0 {
		return errors.New("dist: worker needs at least one key range")
	}
	ws := c.newWorkerState(id, conn, ranges)
	rm := c.rangeMapLocked()
	rm[id] = ranges
	off, err := c.handshake(ws, rm)
	if err != nil {
		_ = conn.Close()
		<-ws.readerDone
		return err
	}
	if off != 0 {
		_ = conn.Close()
		<-ws.readerDone
		return fmt.Errorf("dist: worker %q joins fresh cluster at offset %d (stale directory?)", id, off)
	}
	c.workers[id] = ws
	c.order = append(c.order, id)
	sort.Strings(c.order)
	return nil
}

// newWorkerState builds the connection state and starts its reader.
func (c *Coordinator) newWorkerState(id string, conn net.Conn, ranges []saql.KeyRange) *workerState {
	ws := &workerState{
		id:         id,
		conn:       conn,
		ranges:     ranges,
		acks:       make(chan Frame, 16),
		readerDone: make(chan struct{}),
		delivered:  map[string]int{},
		suppress:   map[string]int{},
	}
	ws.lastSeen.Store(time.Now().UnixNano()) //saql:wallclock lease heartbeat baseline
	go c.readLoop(ws)
	return ws
}

// handshake sends hello and waits for the worker's stream position.
func (c *Coordinator) handshake(ws *workerState, rm map[string][]saql.KeyRange) (int64, error) {
	hello := EncodeHello(&Hello{WorkerID: ws.id, Ranges: rm})
	if err := WriteFrame(ws.conn, Frame{Type: FrameHello, Payload: hello}); err != nil {
		return 0, fmt.Errorf("dist: hello to %q: %w", ws.id, err)
	}
	f, err := c.awaitAck(ws, FrameHelloAck)
	if err != nil {
		return 0, err
	}
	return DecodeOffset(f.Payload)
}

// readLoop is the per-worker reader: alerts are delivered through the dedup
// window, faults mark the worker dead, everything else is an ack for the
// dispatcher.
//
//saql:codecpair-ignore frame dispatcher, not a codec half; each DecodeX it calls is paired individually
func (c *Coordinator) readLoop(ws *workerState) {
	defer close(ws.readerDone)
	for {
		f, err := ReadFrame(ws.conn)
		if err != nil {
			c.markDead(ws, err)
			return
		}
		ws.lastSeen.Store(time.Now().UnixNano()) //saql:wallclock lease heartbeat
		switch f.Type {
		case FrameAlerts:
			alerts, err := DecodeAlerts(f.Payload)
			if err != nil {
				c.markDead(ws, err)
				return
			}
			c.deliverAlerts(ws, alerts)
		case FrameHeartbeatAck:
			// lastSeen already renewed; nothing else to do.
		case FrameError:
			msg, _ := DecodeErrorFrame(f.Payload)
			c.markDead(ws, fmt.Errorf("dist: worker fault: %s", msg))
			return
		default:
			select {
			case ws.acks <- f:
			default:
				// An ack nobody is waiting for (e.g. it raced a timeout).
				c.cfg.Logf("coordinator: dropping unawaited %s from %s", f.Type, ws.id)
			}
		}
	}
}

// deliverAlerts runs one worker's alert batch through its dedup window.
// Suppressed alerts were already delivered by the worker's predecessor in
// this epoch; everything else goes to OnAlert (serially, under amu) and is
// recorded so a later replacement's replay can be suppressed in turn.
func (c *Coordinator) deliverAlerts(ws *workerState, alerts []*saql.Alert) {
	c.amu.Lock()
	defer c.amu.Unlock()
	for _, a := range alerts {
		k := AlertIdentity(a)
		if ws.suppress[k] > 0 {
			ws.suppress[k]--
			continue
		}
		ws.delivered[k]++
		if c.cfg.OnAlert != nil {
			c.cfg.OnAlert(a)
		}
	}
}

func (c *Coordinator) markDead(ws *workerState, err error) {
	if ws.dead.CompareAndSwap(false, true) {
		ws.failure.Store(err)
		// Readers observe EOF when Close tears the connections down after
		// the shutdown handshake; that is teardown, not a worker death.
		if !c.closing.Load() {
			c.cfg.Logf("coordinator: worker %s dead: %v", ws.id, err)
		}
	}
}

// requireAllAliveLocked fails when any worker is dead: barriers and control
// operations need the whole membership, because a barrier a dead worker
// missed would trim exactly the retained epoch its replacement needs.
func (c *Coordinator) requireAllAliveLocked(op string) error {
	for _, id := range c.order {
		if c.workers[id].dead.Load() {
			return fmt.Errorf("dist: %s requires all workers alive; %q is dead — replace it first", op, id)
		}
	}
	return nil
}

// awaitAck waits for one frame of the wanted type from the worker.
func (c *Coordinator) awaitAck(ws *workerState, want FrameType) (Frame, error) {
	timer := time.NewTimer(c.cfg.AckTimeout) //saql:wallclock network ack timeout, not stream time
	defer timer.Stop()
	select {
	case f := <-ws.acks:
		if f.Type != want {
			err := fmt.Errorf("dist: worker %q answered %s, wanted %s", ws.id, f.Type, want)
			c.markDead(ws, err)
			return Frame{}, err
		}
		return f, nil
	case <-ws.readerDone:
		err, _ := ws.failure.Load().(error)
		if err == nil {
			err = errors.New("connection closed")
		}
		return Frame{}, fmt.Errorf("dist: worker %q lost awaiting %s: %w", ws.id, want, err)
	case <-timer.C:
		err := fmt.Errorf("dist: worker %q: no %s within %s", ws.id, want, c.cfg.AckTimeout)
		c.markDead(ws, err)
		return Frame{}, err
	}
}

// sendLocked writes one frame to a worker; a write failure marks it dead.
func (c *Coordinator) sendLocked(ws *workerState, f Frame) error {
	if ws.dead.Load() {
		return fmt.Errorf("dist: worker %q is dead", ws.id)
	}
	if err := WriteFrame(ws.conn, f); err != nil {
		c.markDead(ws, err)
		return err
	}
	return nil
}

func (c *Coordinator) rangeMapLocked() map[string][]saql.KeyRange {
	rm := make(map[string][]saql.KeyRange, len(c.workers))
	for id, ws := range c.workers {
		rm[id] = append([]saql.KeyRange(nil), ws.ranges...)
	}
	return rm
}

// ---------------------------------------------------------------------------
// Event dispatch
// ---------------------------------------------------------------------------

// Submit broadcasts one event to the cluster.
func (c *Coordinator) Submit(ev *saql.Event) error {
	return c.SubmitBatch([]*saql.Event{ev})
}

// SubmitBatch broadcasts a batch of events, in order, to every worker. The
// batch is retained until the next completed barrier so a replacement
// worker can catch up; a dead worker does not block ingest — survivors keep
// processing and the retained epoch covers the gap.
func (c *Coordinator) SubmitBatch(evs []*saql.Event) error {
	if len(evs) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrCoordinatorClosed
	}
	if len(c.workers) == 0 {
		return errors.New("dist: no workers")
	}
	batch := retainedBatch{start: c.offset, evs: append([]*saql.Event(nil), evs...)}
	c.epoch = append(c.epoch, batch)
	f := Frame{Type: FrameEvents, Payload: EncodeEvents(batch.start, batch.evs)}
	for _, id := range c.order {
		ws := c.workers[id]
		if ws.dead.Load() {
			continue
		}
		_ = c.sendLocked(ws, f) // write failure marks dead; epoch covers it
	}
	c.offset += int64(len(evs))
	return nil
}

// Offset reports the cluster stream position (events accepted so far).
func (c *Coordinator) Offset() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.offset
}

// ---------------------------------------------------------------------------
// Queryset control
// ---------------------------------------------------------------------------

// Register registers a query on every worker. Like every control
// operation it rides the event total order and is sealed by a barrier, so
// the retained epoch never contains control operations.
func (c *Coordinator) Register(name, src string) error {
	if err := saql.Validate(src); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.queries[name] != nil {
		return fmt.Errorf("dist: query %q already registered", name)
	}
	if err := c.controlLocked(&Control{Kind: CtlRegister, Name: name, Src: src}); err != nil {
		return err
	}
	c.queries[name] = &queryModel{src: src}
	return nil
}

// Update hot-swaps a query's source on every worker. carry requests
// window-state carry-over where compatible.
func (c *Coordinator) Update(name, src string, carry bool) error {
	if err := saql.Validate(src); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	q := c.queries[name]
	if q == nil {
		return fmt.Errorf("dist: query %q not registered", name)
	}
	if err := c.controlLocked(&Control{Kind: CtlUpdate, Name: name, Src: src, Carry: carry}); err != nil {
		return err
	}
	q.src = src
	return nil
}

// Pause pauses a query cluster-wide.
func (c *Coordinator) Pause(name string) error { return c.setPaused(name, true) }

// Resume resumes a paused query cluster-wide.
func (c *Coordinator) Resume(name string) error { return c.setPaused(name, false) }

func (c *Coordinator) setPaused(name string, paused bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	q := c.queries[name]
	if q == nil {
		return fmt.Errorf("dist: query %q not registered", name)
	}
	kind := CtlResume
	if paused {
		kind = CtlPause
	}
	if err := c.controlLocked(&Control{Kind: kind, Name: name}); err != nil {
		return err
	}
	q.paused = paused
	return nil
}

// Remove unregisters a query cluster-wide.
func (c *Coordinator) Remove(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.queries[name] == nil {
		return fmt.Errorf("dist: query %q not registered", name)
	}
	if err := c.controlLocked(&Control{Kind: CtlRemove, Name: name}); err != nil {
		return err
	}
	delete(c.queries, name)
	return nil
}

// Queries reports the registered queryset (name → source).
func (c *Coordinator) Queries() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]string, len(c.queries))
	for name, q := range c.queries {
		out[name] = q.src
	}
	return out
}

// controlLocked broadcasts one control op, collects every ack, and seals
// the op with a barrier. The barrier is what keeps replacement catch-up a
// pure event replay: an epoch never straddles a control operation.
func (c *Coordinator) controlLocked(ctl *Control) error {
	if c.closed {
		return ErrCoordinatorClosed
	}
	if err := c.requireAllAliveLocked("control"); err != nil {
		return err
	}
	f := Frame{Type: FrameControl, Payload: EncodeControl(ctl)}
	for _, id := range c.order {
		if err := c.sendLocked(c.workers[id], f); err != nil {
			return err
		}
	}
	for _, id := range c.order {
		ws := c.workers[id]
		ack, err := c.awaitAck(ws, FrameControlAck)
		if err != nil {
			return err
		}
		msg, err := DecodeErrorFrame(ack.Payload)
		if err != nil {
			c.markDead(ws, err)
			return err
		}
		if msg != "" {
			// The op was pre-validated; a worker-side failure means that
			// worker's queryset has diverged from the model.
			err := fmt.Errorf("dist: worker %q failed %s %q: %s", ws.id, ctl.Kind, ctl.Name, msg)
			c.markDead(ws, err)
			return err
		}
	}
	return c.checkpointLocked()
}

// ---------------------------------------------------------------------------
// Barriers
// ---------------------------------------------------------------------------

// Checkpoint drives a cluster-wide checkpoint barrier: every worker
// snapshots its own directory at the current stream offset. On success the
// retained epoch is trimmed and the alert dedup windows reset — everything
// before the barrier is durable everywhere and delivered exactly once.
func (c *Coordinator) Checkpoint() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrCoordinatorClosed
	}
	return c.checkpointLocked()
}

func (c *Coordinator) checkpointLocked() error {
	if err := c.requireAllAliveLocked("checkpoint"); err != nil {
		return err
	}
	f := Frame{Type: FrameCheckpoint}
	for _, id := range c.order {
		if err := c.sendLocked(c.workers[id], f); err != nil {
			return err
		}
	}
	for _, id := range c.order {
		ws := c.workers[id]
		ack, err := c.awaitAck(ws, FrameCheckpointAck)
		if err != nil {
			return err
		}
		off, err := DecodeOffset(ack.Payload)
		if err != nil {
			c.markDead(ws, err)
			return err
		}
		if off != c.offset {
			err := fmt.Errorf("dist: worker %q checkpointed offset %d, cluster at %d", ws.id, off, c.offset)
			c.markDead(ws, err)
			return err
		}
	}
	// Barrier complete: every pre-barrier alert has been delivered (workers
	// flush before acking; readers deliver before routing the ack), so the
	// dedup windows can reset along with the epoch.
	c.epochBase = c.offset
	c.epoch = nil
	c.amu.Lock()
	for _, ws := range c.workers {
		ws.delivered = map[string]int{}
		ws.suppress = map[string]int{}
	}
	c.amu.Unlock()
	return nil
}

// ---------------------------------------------------------------------------
// Migration and replacement
// ---------------------------------------------------------------------------

// Migrate moves key ranges from one live worker to another without
// stopping the stream: barrier (making every worker's snapshot the same
// consistent cut), pull the source's snapshot blobs, then reconfigure both
// ends under the new range map — the source restores without the migrated
// ranges (its ownership filters drop their state), the target restores
// with them and folds the source's blobs (its filters keep exactly the
// migrated ranges' state, and shared stream clocks merge idempotently).
func (c *Coordinator) Migrate(from, to string, ranges []saql.KeyRange) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrCoordinatorClosed
	}
	if from == to {
		return errors.New("dist: migration source and target are the same worker")
	}
	src, ok := c.workers[from]
	if !ok {
		return fmt.Errorf("dist: unknown worker %q", from)
	}
	dst, ok := c.workers[to]
	if !ok {
		return fmt.Errorf("dist: unknown worker %q", to)
	}
	if err := c.requireAllAliveLocked("migrate"); err != nil {
		return err
	}
	newSrc, err := SubtractRanges(src.ranges, ranges)
	if err != nil {
		return err
	}
	if len(newSrc) == 0 {
		return fmt.Errorf("dist: migration would leave worker %q with no key ranges", from)
	}
	newDst := NormalizeRanges(append(append([]saql.KeyRange(nil), dst.ranges...), ranges...))

	if err := c.checkpointLocked(); err != nil {
		return err
	}
	if err := c.sendLocked(src, Frame{Type: FrameStateRequest}); err != nil {
		return err
	}
	blobs, err := c.awaitAck(src, FrameStateBlobs)
	if err != nil {
		return err
	}
	off, states, err := DecodeStateBlobs(blobs.Payload)
	if err != nil {
		c.markDead(src, err)
		return err
	}
	if off != c.offset {
		err := fmt.Errorf("dist: worker %q shipped state at offset %d, cluster at %d", from, off, c.offset)
		c.markDead(src, err)
		return err
	}
	if err := c.sendLocked(src, Frame{Type: FrameReconfigure,
		Payload: EncodeReconfigure(&Reconfigure{Ranges: newSrc})}); err != nil {
		return err
	}
	if err := c.sendLocked(dst, Frame{Type: FrameReconfigure,
		Payload: EncodeReconfigure(&Reconfigure{Ranges: newDst, States: states})}); err != nil {
		return err
	}
	for _, ws := range []*workerState{src, dst} {
		ack, err := c.awaitAck(ws, FrameReconfigureAck)
		if err != nil {
			return err
		}
		ackOff, err := DecodeOffset(ack.Payload)
		if err != nil {
			c.markDead(ws, err)
			return err
		}
		if ackOff != c.offset {
			err := fmt.Errorf("dist: worker %q reconfigured at offset %d, cluster at %d", ws.id, ackOff, c.offset)
			c.markDead(ws, err)
			return err
		}
	}
	src.ranges = newSrc
	dst.ranges = newDst
	c.cfg.Logf("coordinator: migrated %v from %s to %s at offset %d", ranges, from, to, c.offset)
	return nil
}

// ReplaceWorker hands a dead worker's identity to a fresh connection whose
// far end serves a Worker pointed at the SAME directory. The replacement
// restores the last barrier's snapshot, replays its own journaled tail to
// the death point, and the coordinator re-sends the retained epoch past it.
// Alerts the replay re-raises are suppressed up to the count the dead
// worker (and any predecessors this epoch) already delivered — delivery
// stays exactly-once across any number of kills within one epoch.
func (c *Coordinator) ReplaceWorker(id string, conn net.Conn) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrCoordinatorClosed
	}
	old, ok := c.workers[id]
	if !ok {
		return fmt.Errorf("dist: unknown worker %q", id)
	}
	if !old.dead.Load() {
		return fmt.Errorf("dist: worker %q is alive; kill or drain it before replacing", id)
	}
	_ = old.conn.Close()
	<-old.readerDone

	ws := c.newWorkerState(id, conn, old.ranges)
	// The replacement replays the epoch from its snapshot onward: every
	// alert the dead incarnation already delivered this epoch will be
	// re-raised and must be swallowed once per prior delivery.
	c.amu.Lock()
	ws.delivered = make(map[string]int, len(old.delivered))
	ws.suppress = make(map[string]int, len(old.delivered))
	for k, n := range old.delivered {
		ws.delivered[k] = n
		ws.suppress[k] = n
	}
	c.amu.Unlock()

	off, err := c.handshake(ws, c.rangeMapLocked())
	if err != nil {
		_ = conn.Close()
		<-ws.readerDone
		return err
	}
	if off < c.epochBase || off > c.offset {
		_ = conn.Close()
		<-ws.readerDone
		return fmt.Errorf("dist: replacement %q resumed at offset %d outside epoch [%d,%d] (wrong directory?)",
			id, off, c.epochBase, c.offset)
	}
	// Re-send the retained tail the dead worker never journaled. The worker
	// skips any overlap with its own replay by offset, so slicing here is
	// an optimisation, not a correctness requirement.
	resent := 0
	for _, b := range c.epoch {
		if b.start+int64(len(b.evs)) <= off {
			continue
		}
		evs, start := b.evs, b.start
		if start < off {
			evs = evs[off-start:]
			start = off
		}
		if err := c.sendLocked(ws, Frame{Type: FrameEvents, Payload: EncodeEvents(start, evs)}); err != nil {
			return err
		}
		resent += len(evs)
	}
	c.workers[id] = ws
	c.cfg.Logf("coordinator: replaced %s (resumed at %d, re-sent %d events to reach %d)",
		id, off, resent, c.offset)
	return nil
}

// ---------------------------------------------------------------------------
// Heartbeats and leases
// ---------------------------------------------------------------------------

// Heartbeat pings every live worker. Acks renew leases asynchronously; the
// ping also serves as the idle-stream alert flush tick.
func (c *Coordinator) Heartbeat() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrCoordinatorClosed
	}
	c.nonce++
	f := Frame{Type: FrameHeartbeat, Payload: EncodeNonce(c.nonce)}
	for _, id := range c.order {
		ws := c.workers[id]
		if ws.dead.Load() {
			continue
		}
		_ = c.sendLocked(ws, f)
	}
	return nil
}

// LastSeen reports when the worker last produced a frame.
func (c *Coordinator) LastSeen(id string) (time.Time, bool) {
	c.mu.Lock()
	ws, ok := c.workers[id]
	c.mu.Unlock()
	if !ok {
		return time.Time{}, false
	}
	return time.Unix(0, ws.lastSeen.Load()), true
}

// ExpireLeases declares workers silent past the configured lease dead and
// returns their ids. Dead workers stay in the membership awaiting
// ReplaceWorker. A zero lease disables expiry.
func (c *Coordinator) ExpireLeases() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.Lease <= 0 {
		return nil
	}
	deadline := time.Now().Add(-c.cfg.Lease).UnixNano() //saql:wallclock lease expiry is wall-time by definition
	var expired []string
	for _, id := range c.order {
		ws := c.workers[id]
		if ws.dead.Load() || ws.lastSeen.Load() >= deadline {
			continue
		}
		c.markDead(ws, ErrLeaseExpired)
		_ = ws.conn.Close()
		expired = append(expired, id)
	}
	return expired
}

// DeadWorkers reports the ids of workers currently marked dead.
func (c *Coordinator) DeadWorkers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var dead []string
	for _, id := range c.order {
		if c.workers[id].dead.Load() {
			dead = append(dead, id)
		}
	}
	return dead
}

// Workers reports the cluster range map (worker id → owned key ranges).
func (c *Coordinator) Workers() map[string][]saql.KeyRange {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rangeMapLocked()
}

// ---------------------------------------------------------------------------
// Shutdown
// ---------------------------------------------------------------------------

// Close stops the cluster gracefully: every live worker flushes its
// end-of-input windows (their final alerts are delivered), takes a final
// checkpoint, and closes; then every connection is torn down. A cluster
// restarted from the worker directories resumes after the final barrier.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	c.closing.Store(true)
	var firstErr error
	f := Frame{Type: FrameShutdown}
	for _, id := range c.order {
		ws := c.workers[id]
		if ws.dead.Load() {
			continue
		}
		if err := c.sendLocked(ws, f); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, id := range c.order {
		ws := c.workers[id]
		if !ws.dead.Load() {
			if _, err := c.awaitAck(ws, FrameShutdownAck); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		_ = ws.conn.Close()
		<-ws.readerDone
	}
	return firstErr
}
