package dist

// Transports connect the coordinator to workers. TCP is the production
// path (one cmd/saql-worker process per worker); InProc runs the same
// worker code over synchronous in-memory pipes, so an entire cluster —
// coordinator, workers, kills, replacements, migrations — fits in one test
// binary with no listening sockets. Both hand back a plain net.Conn
// speaking the same frame protocol, so every layer above is
// transport-agnostic.

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Transport dials a worker.
type Transport interface {
	Dial(addr string) (net.Conn, error)
}

// TCP dials workers over TCP (addr is host:port of a cmd/saql-worker
// listener).
type TCP struct {
	// Timeout bounds connection establishment (default 10s).
	Timeout time.Duration
}

// Dial implements Transport.
func (t TCP) Dial(addr string) (net.Conn, error) {
	timeout := t.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return net.DialTimeout("tcp", addr, timeout)
}

// InProc is an in-process transport: each registered address names a worker
// configuration, and every Dial constructs a fresh Worker from it and
// serves it over one side of a net.Pipe. Re-dialing an address models
// worker-process replacement — the new Worker restores from the same
// directory the previous one journaled into.
type InProc struct {
	mu      sync.Mutex
	configs map[string]WorkerConfig
	current map[string]*Worker
}

// NewInProc creates an empty in-process transport.
func NewInProc() *InProc {
	return &InProc{
		configs: map[string]WorkerConfig{},
		current: map[string]*Worker{},
	}
}

// Register binds a worker configuration to an address.
func (p *InProc) Register(addr string, cfg WorkerConfig) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.configs[addr] = cfg
}

// Dial implements Transport: it spins up a fresh Worker for the address and
// returns the coordinator's end of the pipe.
func (p *InProc) Dial(addr string) (net.Conn, error) {
	p.mu.Lock()
	cfg, ok := p.configs[addr]
	if !ok {
		p.mu.Unlock()
		return nil, fmt.Errorf("dist: no in-process worker registered at %q", addr)
	}
	w := NewWorker(cfg)
	p.current[addr] = w
	p.mu.Unlock()
	client, server := net.Pipe()
	go func() { _ = w.Serve(server) }()
	return client, nil
}

// Worker returns the most recently dialed Worker for addr (nil before the
// first Dial) — the handle tests use to inject kills.
func (p *InProc) Worker(addr string) *Worker {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.current[addr]
}
