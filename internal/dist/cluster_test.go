package dist_test

// Distributed conformance: the cluster — three workers on the checkpoint
// substrate, driven through one coordinator — must emit exactly the same
// alerts as a never-started serial engine running the same script, while a
// seed-derived fault plan kills and replaces workers mid-stream, migrates
// key ranges live, and forces extra barriers. The serial reference never
// sees any of that: kills, replacements, migrations, and checkpoints must
// be invisible in the alert stream.

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"saql"
	"saql/internal/dist"
	"saql/internal/leakcheck"
)

var clusterStart = time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)

// clusterWorkload mirrors the root package's concurrency workload: many
// process groups inside one long window, with p%7==0 groups noisy enough to
// alert, so every worker's key ranges own real work.
func clusterWorkload(procs, perProc int) []*saql.Event {
	var evs []*saql.Event
	for p := 0; p < procs; p++ {
		proc := saql.Process(fmt.Sprintf("worker-%03d.exe", p), int32(1000+p))
		for k := 0; k < perProc; k++ {
			amount := float64(100 + p*10 + k)
			if p%7 == 0 {
				amount += 1e6
			}
			evs = append(evs, &saql.Event{
				Time:    clusterStart.Add(time.Duration(p*perProc+k) * time.Millisecond),
				AgentID: "db-1",
				Subject: proc,
				Op:      saql.OpWrite,
				Object:  saql.NetConn("10.0.0.2", 1433, fmt.Sprintf("10.1.%d.%d", p/200, p%200), 443),
				Amount:  amount,
			})
		}
	}
	return evs
}

// clusterQueryNames covers every placement a cluster splits: by-group and
// by-event queries partitioned by key range, a pinned global aggregate, a
// pinned history ring, an invariant, and a pinned clustering query.
var clusterQueryNames = []string{
	"grouped-sum", "big-write", "global-volume", "ts-history", "inv-dsts", "outlier-amt",
}

func clusterVariant(t *testing.T, name string, k int) string {
	switch name {
	case "grouped-sum":
		return fmt.Sprintf(`proc p write ip i as e #time(1 h)
state ss { amt := sum(e.amount)
           n := count(e) } group by p
alert ss.amt > %d
return p, ss.amt, ss.n`, 1000000+k*1000)
	case "big-write":
		return fmt.Sprintf(`proc p write ip i as e
alert e.amount > %d
return p, e.amount`, 1000000+k*500)
	case "global-volume":
		return fmt.Sprintf(`proc p write ip i as e #time(1 h)
state ss { total := sum(e.amount) }
alert ss.total > %d
return ss.total`, 5000000+k*10000)
	case "ts-history":
		return fmt.Sprintf(`proc p write ip i as e #time(500 ms)
state[3] ss { amt := sum(e.amount) } group by p
alert ss[0].amt > ss[1].amt + %d && ss[0].amt > 100
return p, ss[0].amt, ss[1].amt`, 50+k*10)
	case "inv-dsts":
		return fmt.Sprintf(`proc p write ip i as e #time(600 ms)
state ss { dsts := set(i.dstip) } group by e.agentid
invariant[2] {
  known := empty_set
  known = known union ss.dsts
}
alert |ss.dsts diff known| >= %d
return ss.dsts`, 1-k%2)
	case "outlier-amt":
		return fmt.Sprintf(`proc p write ip i as e #time(700 ms)
state ss { amt := sum(e.amount) } group by i.dstip
cluster(points=all(ss.amt), distance="ed", method="DBSCAN(%d, 3)")
alert cluster.outlier && ss.amt > 1000
return i.dstip, ss.amt`, 100000+k*5000)
	}
	t.Fatalf("unknown query %q", name)
	return ""
}

func conformanceSeed(t *testing.T) int64 {
	seed := time.Now().UnixNano()
	if s := os.Getenv("SAQL_CONFORMANCE_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad SAQL_CONFORMANCE_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("conformance seed = %d (set SAQL_CONFORMANCE_SEED=%d to reproduce)", seed, seed)
	return seed
}

func sortedClusterIdentities(alerts []*saql.Alert) []string {
	out := make([]string, 0, len(alerts))
	for _, a := range alerts {
		out = append(out, dist.AlertIdentity(a))
	}
	sort.Strings(out)
	return out
}

func diffIdentitySets(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: alert count: cluster=%d serial=%d", label, len(got), len(want))
	}
	for i := 0; i < len(want) && i < len(got); i++ {
		if want[i] != got[i] {
			t.Fatalf("%s: alert sets diverge at #%d:\n  cluster: %s\n  serial:  %s", label, i, got[i], want[i])
		}
	}
}

// scriptStep is one shared step: both the serial reference and the cluster
// apply it; fault injections are cluster-only.
type scriptStep struct {
	op    string // submit | pause | resume | update
	block int
	name  string
	src   string
	carry bool
}

// clusterFault is one cluster-only action injected AFTER a script step.
type clusterFault struct {
	kind   string // kill | replace | migrate | barrier
	worker int    // kill
	from   int    // migrate
	to     int    // migrate
}

// TestClusterMatchesSerial is the distributed recovery-equivalence hammer
// (the PR's acceptance test). Three in-process workers — each a real
// engine journaling and checkpointing its own directory — run a randomized
// queryset-lifecycle script against a randomized fault plan with at least
// one worker kill (with mid-epoch events before the replacement arrives)
// and at least one live key-range migration. The delivered alert multiset
// must equal the uninterrupted serial run's, alert for alert.
func TestClusterMatchesSerial(t *testing.T) {
	leakcheck.Check(t)
	seed := conformanceSeed(t)
	rng := rand.New(rand.NewSource(seed))

	const workers, procs, perProc, blocks = 3, 96, 25, 24
	events := clusterWorkload(procs, perProc)
	blockSize := len(events) / blocks

	// Shared script: event blocks interleaved with queryset control ops.
	var script []scriptStep
	paused := map[string]bool{}
	version := map[string]int{}
	for b := 0; b < blocks; b++ {
		script = append(script, scriptStep{op: "submit", block: b})
		for i := 0; i < 1+rng.Intn(2); i++ {
			name := clusterQueryNames[rng.Intn(len(clusterQueryNames))]
			switch rng.Intn(3) {
			case 0:
				if paused[name] {
					script = append(script, scriptStep{op: "resume", name: name})
					paused[name] = false
				} else {
					script = append(script, scriptStep{op: "pause", name: name})
					paused[name] = true
				}
			case 1:
				version[name]++
				carry := name != "big-write" && rng.Intn(2) == 0
				script = append(script, scriptStep{op: "update", name: name, src: clusterVariant(t, name, version[name]), carry: carry})
			case 2:
				// Spacing no-op.
			}
		}
	}

	// Cluster-only fault plan, keyed by script-step index. One kill (left
	// dead across at least the following submit, so the replacement needs
	// the retained epoch) and one migration are guaranteed; extras are
	// random. Kills land only after submit steps so death interrupts the
	// event stream, never a half-acked control op.
	var submitSteps []int
	for i, st := range script {
		if st.op == "submit" {
			submitSteps = append(submitSteps, i)
		}
	}
	faults := map[int][]clusterFault{}
	addFault := func(step int, f clusterFault) { faults[step] = append(faults[step], f) }
	mustKill := submitSteps[len(submitSteps)/4+rng.Intn(len(submitSteps)/4)]
	addFault(mustKill, clusterFault{kind: "kill", worker: rng.Intn(workers)})
	mustMigrate := submitSteps[len(submitSteps)/2+rng.Intn(len(submitSteps)/4)]
	from := rng.Intn(workers)
	addFault(mustMigrate, clusterFault{kind: "migrate", from: from, to: (from + 1 + rng.Intn(workers-1)) % workers})
	for _, step := range submitSteps {
		if len(faults[step]) > 0 {
			continue
		}
		switch rng.Intn(10) {
		case 0:
			addFault(step, clusterFault{kind: "kill", worker: rng.Intn(workers)})
		case 1:
			f := rng.Intn(workers)
			addFault(step, clusterFault{kind: "migrate", from: f, to: (f + 1 + rng.Intn(workers-1)) % workers})
		case 2:
			addFault(step, clusterFault{kind: "barrier"})
		case 3:
			addFault(step, clusterFault{kind: "replace"})
		}
	}
	t.Logf("script: %d steps, guaranteed kill after step %d, guaranteed migration after step %d, %d fault points",
		len(script), mustKill, mustMigrate, len(faults))

	register := func(eng *saql.Engine) error {
		for _, name := range clusterQueryNames {
			if _, err := eng.Register(name, clusterVariant(t, name, 0)); err != nil {
				return err
			}
		}
		return nil
	}

	// Uninterrupted serial reference.
	ref := saql.New()
	if err := register(ref); err != nil {
		t.Fatal(err)
	}
	var want []*saql.Alert
	for _, st := range script {
		switch st.op {
		case "submit":
			lo, hi := st.block*blockSize, (st.block+1)*blockSize
			if st.block == blocks-1 {
				hi = len(events)
			}
			for _, ev := range events[lo:hi] {
				want = append(want, ref.Process(ev)...)
			}
		case "pause", "resume":
			h, ok := ref.Query(st.name)
			if !ok {
				t.Fatalf("no handle for %q", st.name)
			}
			var err error
			if st.op == "pause" {
				err = h.Pause()
			} else {
				err = h.Resume()
			}
			if err != nil {
				t.Fatalf("%s %s: %v", st.op, st.name, err)
			}
		case "update":
			h, ok := ref.Query(st.name)
			if !ok {
				t.Fatalf("no handle for %q", st.name)
			}
			var opts []saql.UpdateOption
			if st.carry {
				opts = append(opts, saql.CarryWindowState())
			}
			if err := h.Update(st.src, opts...); err != nil {
				t.Fatalf("update %s: %v", st.name, err)
			}
		}
	}
	want = append(want, ref.Flush()...)
	if len(want) == 0 {
		t.Fatal("serial reference produced no alerts")
	}
	wantIDs := sortedClusterIdentities(want)

	// The cluster. Workers run in-process over synchronous pipes; each has
	// its own journal/checkpoint directory — a kill leaves the directory
	// behind for the replacement.
	ids := make([]string, workers)
	dirs := make([]string, workers)
	live := make([]*dist.Worker, workers)
	for i := range ids {
		ids[i] = fmt.Sprintf("w%d", i)
		dirs[i] = t.TempDir()
	}
	spawn := func(i int) net.Conn {
		w := dist.NewWorker(dist.WorkerConfig{Dir: dirs[i], Shards: 2, Logf: t.Logf})
		live[i] = w
		client, server := net.Pipe()
		go func() { _ = w.Serve(server) }()
		return client
	}
	var gmu sync.Mutex
	var got []*saql.Alert
	coord := dist.NewCoordinator(dist.Config{
		OnAlert:    func(a *saql.Alert) { gmu.Lock(); got = append(got, a); gmu.Unlock() },
		AckTimeout: time.Minute,
		Logf:       t.Logf,
	})
	ranges := dist.SplitRanges(workers)
	for i := range ids {
		if err := coord.AddWorker(ids[i], spawn(i), ranges[i]); err != nil {
			t.Fatalf("AddWorker(%s): %v", ids[i], err)
		}
	}
	for _, name := range clusterQueryNames {
		if err := coord.Register(name, clusterVariant(t, name, 0)); err != nil {
			t.Fatalf("Register(%s): %v", name, err)
		}
	}

	// Fault-plan driver state: at most one worker dead at a time, replaced
	// lazily so the epoch-catch-up path is exercised, but always before the
	// next control op or fault that needs full membership.
	pendingDead := -1
	waitDead := func(i int) {
		deadline := time.Now().Add(10 * time.Second)
		for {
			for _, id := range coord.DeadWorkers() {
				if id == ids[i] {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker %s never marked dead", ids[i])
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	replacePending := func() {
		if pendingDead < 0 {
			return
		}
		i := pendingDead
		pendingDead = -1
		waitDead(i)
		if err := coord.ReplaceWorker(ids[i], spawn(i)); err != nil {
			t.Fatalf("ReplaceWorker(%s): %v", ids[i], err)
		}
	}
	kills, migrations := 0, 0
	runFault := func(f clusterFault) {
		switch f.kind {
		case "kill":
			replacePending() // one dead worker at a time
			live[f.worker].Kill()
			waitDead(f.worker)
			pendingDead = f.worker
			kills++
		case "replace":
			replacePending()
		case "barrier":
			replacePending()
			if err := coord.Checkpoint(); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
		case "migrate":
			replacePending()
			fromID, toID := ids[f.from], ids[f.to]
			rs := coord.Workers()[fromID]
			if len(rs) == 0 {
				t.Fatalf("worker %s owns no ranges", fromID)
			}
			// Move the upper half of the source's widest range.
			widest := rs[0]
			for _, r := range rs[1:] {
				if r.Hi-r.Lo > widest.Hi-widest.Lo {
					widest = r
				}
			}
			if widest.Hi-widest.Lo < 2 {
				return // nothing meaningful left to split
			}
			mid := widest.Lo + (widest.Hi-widest.Lo)/2
			mig := []saql.KeyRange{{Lo: mid + 1, Hi: widest.Hi}}
			if err := coord.Migrate(fromID, toID, mig); err != nil {
				t.Fatalf("migrate %s->%s %v: %v", fromID, toID, mig, err)
			}
			migrations++
		}
	}

	for i, st := range script {
		switch st.op {
		case "submit":
			lo, hi := st.block*blockSize, (st.block+1)*blockSize
			if st.block == blocks-1 {
				hi = len(events)
			}
			if err := coord.SubmitBatch(events[lo:hi]); err != nil {
				t.Fatal(err)
			}
		case "pause":
			replacePending()
			if err := coord.Pause(st.name); err != nil {
				t.Fatalf("pause %s: %v", st.name, err)
			}
		case "resume":
			replacePending()
			if err := coord.Resume(st.name); err != nil {
				t.Fatalf("resume %s: %v", st.name, err)
			}
		case "update":
			replacePending()
			if err := coord.Update(st.name, st.src, st.carry); err != nil {
				t.Fatalf("update %s: %v", st.name, err)
			}
		}
		for _, f := range faults[i] {
			runFault(f)
		}
	}
	replacePending()
	if err := coord.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if kills == 0 || migrations == 0 {
		t.Fatalf("fault plan executed %d kills and %d migrations; both must be >= 1", kills, migrations)
	}
	t.Logf("fault plan executed: %d kills, %d migrations", kills, migrations)

	gmu.Lock()
	gotIDs := sortedClusterIdentities(got)
	gmu.Unlock()
	diffIdentitySets(t, fmt.Sprintf("seed %d", seed), wantIDs, gotIDs)
}

// TestClusterOverTCP is the wire smoke test: the same coordinator/worker
// stack over real TCP sockets — two saql-worker-equivalent loops behind a
// listener — must match serial on a plain run with a barrier in the middle.
func TestClusterOverTCP(t *testing.T) {
	leakcheck.Check(t)
	const workers = 2
	events := clusterWorkload(28, 10)
	src := clusterVariant(t, "grouped-sum", 0)

	ref := saql.New()
	if _, err := ref.Register("grouped-sum", src); err != nil {
		t.Fatal(err)
	}
	var want []*saql.Alert
	for _, ev := range events {
		want = append(want, ref.Process(ev)...)
	}
	want = append(want, ref.Flush()...)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no TCP listener available: %v", err)
	}
	defer ln.Close()
	var served sync.WaitGroup
	served.Add(workers)
	go func() {
		for i := 0; i < workers; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			w := dist.NewWorker(dist.WorkerConfig{Dir: t.TempDir(), Shards: 1})
			go func() { defer served.Done(); _ = w.Serve(conn) }()
		}
	}()

	var gmu sync.Mutex
	var got []*saql.Alert
	coord := dist.NewCoordinator(dist.Config{
		OnAlert: func(a *saql.Alert) { gmu.Lock(); got = append(got, a); gmu.Unlock() },
	})
	tr := dist.TCP{Timeout: 5 * time.Second}
	ranges := dist.SplitRanges(workers)
	for i := 0; i < workers; i++ {
		conn, err := tr.Dial(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.AddWorker(fmt.Sprintf("w%d", i), conn, ranges[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.Register("grouped-sum", src); err != nil {
		t.Fatal(err)
	}
	half := len(events) / 2
	if err := coord.SubmitBatch(events[:half]); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := coord.SubmitBatch(events[half:]); err != nil {
		t.Fatal(err)
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	served.Wait()

	gmu.Lock()
	gotIDs := sortedClusterIdentities(got)
	gmu.Unlock()
	diffIdentitySets(t, "tcp", sortedClusterIdentities(want), gotIDs)
}

// TestClusterInProcTransport drives a small cluster through the InProc
// transport — Dial constructs the worker — and exercises replacement by
// re-dialing the same address after a kill.
func TestClusterInProcTransport(t *testing.T) {
	leakcheck.Check(t)
	events := clusterWorkload(21, 8)
	src := clusterVariant(t, "grouped-sum", 0)

	ref := saql.New()
	if _, err := ref.Register("grouped-sum", src); err != nil {
		t.Fatal(err)
	}
	var want []*saql.Alert
	for _, ev := range events {
		want = append(want, ref.Process(ev)...)
	}
	want = append(want, ref.Flush()...)

	inproc := dist.NewInProc()
	inproc.Register("a", dist.WorkerConfig{Dir: t.TempDir(), Shards: 1})
	inproc.Register("b", dist.WorkerConfig{Dir: t.TempDir(), Shards: 1})

	var gmu sync.Mutex
	var got []*saql.Alert
	coord := dist.NewCoordinator(dist.Config{
		OnAlert: func(a *saql.Alert) { gmu.Lock(); got = append(got, a); gmu.Unlock() },
	})
	ranges := dist.SplitRanges(2)
	for i, addr := range []string{"a", "b"} {
		conn, err := inproc.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.AddWorker(addr, conn, ranges[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.Register("grouped-sum", src); err != nil {
		t.Fatal(err)
	}
	third := len(events) / 3
	if err := coord.SubmitBatch(events[:third]); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Kill "b" mid-epoch, keep submitting, then replace it by re-dialing.
	inproc.Worker("b").Kill()
	deadline := time.Now().Add(10 * time.Second)
	for len(coord.DeadWorkers()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("kill never observed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := coord.SubmitBatch(events[third : 2*third]); err != nil {
		t.Fatal(err)
	}
	conn, err := inproc.Dial("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.ReplaceWorker("b", conn); err != nil {
		t.Fatal(err)
	}
	if err := coord.SubmitBatch(events[2*third:]); err != nil {
		t.Fatal(err)
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}

	gmu.Lock()
	gotIDs := sortedClusterIdentities(got)
	gmu.Unlock()
	diffIdentitySets(t, "inproc", sortedClusterIdentities(want), gotIDs)
}

// TestHeartbeatLease pins the failure model's detection half: heartbeats
// renew a worker's lease; a silent worker expires, is declared dead, and
// its identity restores onto a replacement.
func TestHeartbeatLease(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	spawn := func() net.Conn {
		w := dist.NewWorker(dist.WorkerConfig{Dir: dir, Shards: 1})
		client, server := net.Pipe()
		go func() { _ = w.Serve(server) }()
		return client
	}
	coord := dist.NewCoordinator(dist.Config{Lease: 250 * time.Millisecond})
	if err := coord.AddWorker("w0", spawn(), dist.SplitRanges(1)[0]); err != nil {
		t.Fatal(err)
	}
	// Heartbeats keep the lease alive well past its duration.
	for i := 0; i < 4; i++ {
		if err := coord.Heartbeat(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(100 * time.Millisecond)
		if expired := coord.ExpireLeases(); len(expired) != 0 {
			t.Fatalf("lease expired despite heartbeats: %v", expired)
		}
	}
	// Silence expires it.
	time.Sleep(400 * time.Millisecond)
	expired := coord.ExpireLeases()
	if len(expired) != 1 || expired[0] != "w0" {
		t.Fatalf("expired = %v, want [w0]", expired)
	}
	if dead := coord.DeadWorkers(); len(dead) != 1 || dead[0] != "w0" {
		t.Fatalf("dead = %v, want [w0]", dead)
	}
	// The failure model's recovery half: replace onto the same directory.
	if err := coord.ReplaceWorker("w0", spawn()); err != nil {
		t.Fatalf("replace after lease expiry: %v", err)
	}
	if dead := coord.DeadWorkers(); len(dead) != 0 {
		t.Fatalf("dead after replacement = %v", dead)
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerShutdownJoinsGoroutines pins worker teardown: a served worker
// that ingests events and is then shut down leaves no goroutines behind —
// neither its engine's shards nor the serve loop.
func TestWorkerShutdownJoinsGoroutines(t *testing.T) {
	leakcheck.Check(t)
	events := clusterWorkload(14, 6)
	var gmu sync.Mutex
	n := 0
	coord := dist.NewCoordinator(dist.Config{
		OnAlert: func(*saql.Alert) { gmu.Lock(); n++; gmu.Unlock() },
	})
	w := dist.NewWorker(dist.WorkerConfig{Dir: t.TempDir(), Shards: 2})
	client, server := net.Pipe()
	go func() { _ = w.Serve(server) }()
	if err := coord.AddWorker("w0", client, dist.SplitRanges(1)[0]); err != nil {
		t.Fatal(err)
	}
	if err := coord.Register("grouped-sum", clusterVariant(t, "grouped-sum", 0)); err != nil {
		t.Fatal(err)
	}
	if err := coord.SubmitBatch(events); err != nil {
		t.Fatal(err)
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	gmu.Lock()
	defer gmu.Unlock()
	if n == 0 {
		t.Error("no alerts delivered")
	}
}
