package dist

// Key-range algebra over the 32-bit ownership hash space: the coordinator
// splits, migrates, and re-merges contiguous inclusive ranges, and these
// helpers keep range sets canonical (sorted, non-overlapping, adjacent
// runs coalesced) so range maps compare and encode deterministically.

import (
	"fmt"
	"math"
	"sort"

	"saql"
)

// SplitRanges partitions the full hash space [0, 1<<32) into n contiguous
// slices of near-equal width, one single-range set per worker — the default
// placement for a fresh cluster.
func SplitRanges(n int) [][]saql.KeyRange {
	if n <= 0 {
		return nil
	}
	out := make([][]saql.KeyRange, n)
	span := uint64(1) << 32
	var lo uint64
	for i := 0; i < n; i++ {
		size := span / uint64(n)
		if uint64(i) < span%uint64(n) {
			size++
		}
		hi := lo + size - 1
		out[i] = []saql.KeyRange{{Lo: uint32(lo), Hi: uint32(hi)}}
		lo = hi + 1
	}
	return out
}

// NormalizeRanges returns a canonical copy of a range set: sorted by lower
// bound with overlapping or adjacent ranges merged.
func NormalizeRanges(rs []saql.KeyRange) []saql.KeyRange {
	if len(rs) == 0 {
		return nil
	}
	out := append([]saql.KeyRange(nil), rs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Lo < out[j].Lo })
	merged := out[:1]
	for _, r := range out[1:] {
		last := &merged[len(merged)-1]
		// Adjacent (Hi+1 == Lo) or overlapping ranges coalesce; the Hi ==
		// MaxUint32 guard keeps the +1 from wrapping.
		if last.Hi != math.MaxUint32 && r.Lo <= last.Hi+1 || r.Lo <= last.Hi {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
			continue
		}
		merged = append(merged, r)
	}
	return merged
}

// SubtractRanges removes take from have, failing unless every taken range
// lies entirely inside a single held range — the migration precondition: a
// worker can only give away hash space it owns.
func SubtractRanges(have, take []saql.KeyRange) ([]saql.KeyRange, error) {
	rest := NormalizeRanges(have)
	for _, t := range NormalizeRanges(take) {
		var next []saql.KeyRange
		found := false
		for _, h := range rest {
			if !found && h.Lo <= t.Lo && t.Hi <= h.Hi {
				found = true
				if t.Lo > h.Lo {
					next = append(next, saql.KeyRange{Lo: h.Lo, Hi: t.Lo - 1})
				}
				if t.Hi < h.Hi {
					next = append(next, saql.KeyRange{Lo: t.Hi + 1, Hi: h.Hi})
				}
				continue
			}
			next = append(next, h)
		}
		if !found {
			return nil, fmt.Errorf("dist: range %v is not owned (held: %v)", t, rest)
		}
		rest = next
	}
	return NormalizeRanges(rest), nil
}
