package dist

// Worker: one cluster member. A worker is deliberately thin — a frame loop
// around a completely normal saql.Engine restricted to the key ranges it
// owns (saql.WithKeyRanges) and journaling every event to its own directory
// (the checkpoint substrate). All cluster semantics — total order, barrier
// placement, epoch retention, alert dedup — live in the coordinator; the
// worker just applies frames in the order they arrive, which IS the
// cluster's total order, and streams the alerts its ownership filters let
// through back over the same connection.
//
// Frames are handled strictly sequentially, so a checkpoint frame takes its
// barrier after every event frame before it and before every event frame
// after it — the same control-queue total order the engine gives barriers
// locally, lifted to the wire.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"saql"
	"saql/internal/snapshot"
)

// WorkerConfig configures a Worker.
type WorkerConfig struct {
	// Dir is the worker's journal + checkpoint directory: its entire
	// durable identity. A replacement worker pointed at the same directory
	// resumes the dead worker's life.
	Dir string
	// Shards is the engine's shard count (default GOMAXPROCS).
	Shards int
	// QueueSize bounds the engine ingest queue (default engine default).
	QueueSize int
	// Logf, when set, receives diagnostic output.
	Logf func(format string, args ...any)
}

// Worker runs one cluster member over one connection. Create it with
// NewWorker and drive it with Serve; it builds (or restores) its engine
// when the coordinator's hello arrives.
type Worker struct {
	cfg WorkerConfig
	id  string

	// connMu guards the conn pointer; wmu serialises frame writes on it.
	// They are distinct from amu so Kill — which must never block behind a
	// stalled pipe write — can close the connection without queueing on the
	// write path.
	connMu sync.Mutex
	conn   net.Conn
	wmu    sync.Mutex

	// amu guards the outbound alert buffer and the mute flag. The engine's
	// alert handler appends here from runtime goroutines; the serve loop
	// drains it after every frame and before every ack.
	amu     sync.Mutex
	pending []*saql.Alert
	muted   bool

	// engMu guards the engine pointer across reconfiguration and Kill.
	engMu sync.Mutex
	eng   *saql.Engine

	// off is the next expected stream offset (serve-goroutine only).
	off int64

	killed atomic.Bool
}

// NewWorker creates a worker. No engine exists until Serve receives the
// coordinator's hello.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Worker{cfg: cfg}
}

// ID reports the identity the coordinator assigned (empty before hello).
func (w *Worker) ID() string { return w.id }

// Offset reports the worker's stream position. Meaningful only between
// frames (the serve goroutine owns it); tests read it after shutdown.
func (w *Worker) Offset() int64 { return w.off }

// Kill simulates abrupt worker death: the connection drops and the engine
// closes mid-stream, exactly as a crashed process would leave things — the
// journal seals at the kill point, no final flush alerts escape, and the
// directory is restorable by a replacement. Safe to call from any
// goroutine.
func (w *Worker) Kill() {
	w.killed.Store(true)
	// Mute first: the engine close below flushes open windows, and a dead
	// worker's end-of-stream alerts must never be delivered (the serial
	// reference never saw an end of stream here).
	w.amu.Lock()
	w.muted = true
	w.pending = nil
	w.amu.Unlock()
	w.connMu.Lock()
	conn := w.conn
	w.connMu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
	w.engMu.Lock()
	eng := w.eng
	w.engMu.Unlock()
	if eng != nil {
		_ = eng.Close()
	}
}

// Serve speaks the cluster protocol on conn until clean shutdown (nil), the
// connection drops, or a fatal error occurs. On any non-clean exit the
// engine is muted and closed so the directory is immediately restorable by
// a replacement.
func (w *Worker) Serve(conn net.Conn) error {
	w.connMu.Lock()
	w.conn = conn
	w.connMu.Unlock()
	defer conn.Close()
	clean := false
	defer func() {
		if clean {
			return
		}
		w.amu.Lock()
		w.muted = true
		w.pending = nil
		w.amu.Unlock()
		w.engMu.Lock()
		eng := w.eng
		w.engMu.Unlock()
		if eng != nil {
			_ = eng.Close()
		}
	}()
	for {
		f, err := ReadFrame(conn)
		if err != nil {
			if w.killed.Load() {
				return nil
			}
			return fmt.Errorf("dist: worker %s: connection lost: %w", w.id, err)
		}
		done, err := w.handle(f)
		if err != nil {
			if !w.killed.Load() {
				w.cfg.Logf("worker %s: %s: %v", w.id, f.Type, err)
				_ = w.writeFrame(Frame{Type: FrameError, Payload: EncodeErrorFrame(err.Error())})
			}
			return err
		}
		if done {
			clean = true
			return nil
		}
	}
}

// handle applies one frame; done reports clean shutdown.
func (w *Worker) handle(f Frame) (done bool, err error) {
	switch f.Type {
	case FrameHello:
		return false, w.handleHello(f.Payload)
	case FrameEvents:
		return false, w.handleEvents(f.Payload)
	case FrameControl:
		return false, w.handleControl(f.Payload)
	case FrameCheckpoint:
		return false, w.handleCheckpoint()
	case FrameHeartbeat:
		return false, w.handleHeartbeat(f.Payload)
	case FrameStateRequest:
		return false, w.handleStateRequest()
	case FrameReconfigure:
		return false, w.handleReconfigure(f.Payload)
	case FrameShutdown:
		return true, w.handleShutdown()
	default:
		return false, fmt.Errorf("unexpected frame %s", f.Type)
	}
}

// engineOpts builds the engine options for this worker under a range set.
func (w *Worker) engineOpts(ranges []saql.KeyRange) []saql.Option {
	opts := []saql.Option{
		saql.WithKeyRanges(ranges...),
		saql.WithAlertHandler(w.onAlert),
	}
	if w.cfg.Shards > 0 {
		opts = append(opts, saql.WithShards(w.cfg.Shards))
	}
	if w.cfg.QueueSize > 0 {
		opts = append(opts, saql.WithIngestQueue(w.cfg.QueueSize))
	}
	return opts
}

// handleHello builds the worker's engine: restore from the directory's
// checkpoint when one exists (replacement), otherwise start fresh on the
// directory's journal, replaying any orphaned records a run that died
// before its first checkpoint left behind. Either way the worker answers
// with its stream position, and any replay alerts are flushed first so the
// coordinator's suppression window dedups them before the ack commits the
// position.
func (w *Worker) handleHello(p []byte) error {
	h, err := DecodeHello(p)
	if err != nil {
		return err
	}
	if w.eng != nil {
		return errors.New("duplicate hello")
	}
	w.id = h.WorkerID
	ranges := h.Ranges[w.id]
	if len(ranges) == 0 {
		return fmt.Errorf("hello assigns no key ranges to worker %q", w.id)
	}

	eng, rinfo, err := saql.Restore(w.cfg.Dir,
		saql.WithRestoreEngineOptions(w.engineOpts(ranges)...))
	var off int64
	switch {
	case err == nil:
		off = rinfo.Offset + rinfo.Replayed
		w.cfg.Logf("worker %s: restored %d queries at offset %d, replayed %d",
			w.id, rinfo.Queries, rinfo.Offset, rinfo.Replayed)
	case errors.Is(err, saql.ErrNoCheckpoint):
		// Fresh directory, or a journal whose run died before any barrier
		// completed — in which case no control op completed either (every
		// control op is followed by a barrier), so replaying the orphaned
		// records through an engine with no queries is exactly right.
		store, serr := saql.OpenStore(w.cfg.Dir, saql.StoreOptions{})
		if serr != nil {
			return serr
		}
		eng = saql.New(append(w.engineOpts(ranges), saql.WithJournal(store))...)
		if err := eng.PinJournalOffset(0); err != nil {
			_ = eng.Close()
			return err
		}
		if err := eng.Start(context.Background()); err != nil {
			_ = eng.Close()
			return err
		}
		n, rerr := eng.ReplayJournal(0)
		if rerr != nil {
			_ = eng.Close()
			return rerr
		}
		off = n
		w.cfg.Logf("worker %s: fresh engine, replayed %d orphaned records", w.id, n)
	default:
		return err
	}

	w.engMu.Lock()
	w.eng = eng
	w.engMu.Unlock()
	w.off = off
	w.flushAlerts()
	return w.writeFrame(Frame{Type: FrameHelloAck, Payload: EncodeOffset(off)})
}

// handleEvents folds one broadcast batch into the engine. Batches the
// worker has already journaled (a replacement catch-up overlapping its own
// replayed tail) are skipped by prefix; a gap is a protocol fault.
func (w *Worker) handleEvents(p []byte) error {
	eb, err := DecodeEvents(p)
	if err != nil {
		return err
	}
	evs, start := eb.Events, eb.Start
	if start+int64(len(evs)) <= w.off {
		return nil // entirely before our position: already journaled
	}
	if start < w.off {
		evs = evs[w.off-start:]
		start = w.off
	}
	if start > w.off {
		return fmt.Errorf("stream gap: at offset %d, batch starts at %d", w.off, start)
	}
	if err := w.engine().SubmitBatch(evs); err != nil {
		return err
	}
	w.off += int64(len(evs))
	w.flushAlerts()
	return nil
}

// handleControl applies one queryset control operation. Failures are
// reported in the ack rather than killing the connection: the coordinator
// decides what a diverged worker costs.
func (w *Worker) handleControl(p []byte) error {
	c, err := DecodeControl(p)
	if err != nil {
		return err
	}
	msg := ""
	if err := w.applyControl(c); err != nil {
		msg = err.Error()
	}
	w.flushAlerts()
	return w.writeFrame(Frame{Type: FrameControlAck, Payload: EncodeErrorFrame(msg)})
}

func (w *Worker) applyControl(c *Control) error {
	eng := w.engine()
	switch c.Kind {
	case CtlRegister:
		_, err := eng.Register(c.Name, c.Src)
		return err
	case CtlRemove:
		h, ok := eng.Query(c.Name)
		if !ok {
			return fmt.Errorf("query %q not registered", c.Name)
		}
		return h.Close()
	case CtlUpdate:
		h, ok := eng.Query(c.Name)
		if !ok {
			return fmt.Errorf("query %q not registered", c.Name)
		}
		if c.Carry {
			return h.Update(c.Src, saql.CarryWindowState())
		}
		return h.Update(c.Src)
	case CtlPause:
		h, ok := eng.Query(c.Name)
		if !ok {
			return fmt.Errorf("query %q not registered", c.Name)
		}
		return h.Pause()
	case CtlResume:
		h, ok := eng.Query(c.Name)
		if !ok {
			return fmt.Errorf("query %q not registered", c.Name)
		}
		return h.Resume()
	default:
		return fmt.Errorf("unknown control kind %d", c.Kind)
	}
}

// handleCheckpoint takes the barrier: checkpoint the engine into the
// worker directory, then flush alerts BEFORE acking. Checkpoint's barrier
// guarantees every pre-barrier alert has been through the handler when it
// returns, and no post-barrier event exists yet (the coordinator holds its
// dispatch lock until the ack) — so the alerts flushed here are exactly the
// epoch's, which is what lets the coordinator trim its suppression window
// at the ack.
func (w *Worker) handleCheckpoint() error {
	info, err := w.engine().Checkpoint(w.cfg.Dir)
	if err != nil {
		return err
	}
	if info.Offset != w.off {
		return fmt.Errorf("checkpoint barrier at offset %d, stream position %d", info.Offset, w.off)
	}
	w.flushAlerts()
	return w.writeFrame(Frame{Type: FrameCheckpointAck, Payload: EncodeOffset(info.Offset)})
}

// handleHeartbeat renews the lease and drains any alerts raised since the
// last frame — the flush path during idle stretches.
func (w *Worker) handleHeartbeat(p []byte) error {
	nonce, err := DecodeNonce(p)
	if err != nil {
		return err
	}
	w.flushAlerts()
	return w.writeFrame(Frame{Type: FrameHeartbeatAck, Payload: EncodeNonce(nonce)})
}

// handleStateRequest ships the directory's snapshot blobs — the migration
// source's half of a key-range transfer. The coordinator only asks
// immediately after a barrier, so the snapshot is the cluster-consistent
// cut at the current offset.
func (w *Worker) handleStateRequest() error {
	snap, err := snapshot.Read(w.cfg.Dir)
	if err != nil {
		return err
	}
	states := make(map[string][][]byte, len(snap.Queries))
	for _, q := range snap.Queries {
		if len(q.States) > 0 {
			states[q.Name] = q.States
		}
	}
	return w.writeFrame(Frame{Type: FrameStateBlobs, Payload: EncodeStateBlobs(snap.Offset, states)})
}

// handleReconfigure re-restores the engine under a new range map: close
// (muted — the close flush's end-of-stream alerts are an artifact of the
// swap, not of the stream), restore from the worker's own checkpoint, fold
// any migrated-in state blobs, unmute, ack. Sent only right after a
// barrier, so the journal head equals the snapshot offset and the restore
// replays nothing.
func (w *Worker) handleReconfigure(p []byte) error {
	rc, err := DecodeReconfigure(p)
	if err != nil {
		return err
	}
	w.amu.Lock()
	w.muted = true
	w.amu.Unlock()
	w.engMu.Lock()
	defer w.engMu.Unlock()
	if err := w.eng.Close(); err != nil {
		return err
	}
	eng, rinfo, err := saql.Restore(w.cfg.Dir,
		saql.WithRestoreEngineOptions(w.engineOpts(rc.Ranges)...))
	if err != nil {
		return err
	}
	w.eng = eng
	if rinfo.Replayed != 0 {
		return fmt.Errorf("reconfigure off-barrier: restore replayed %d events", rinfo.Replayed)
	}
	if rinfo.Offset != w.off {
		return fmt.Errorf("reconfigure snapshot at offset %d, stream position %d", rinfo.Offset, w.off)
	}
	if len(rc.States) > 0 {
		if err := eng.RestoreStateBlobs(rc.States); err != nil {
			return err
		}
	}
	w.amu.Lock()
	w.muted = false
	w.pending = nil
	w.amu.Unlock()
	return w.writeFrame(Frame{Type: FrameReconfigureAck, Payload: EncodeOffset(w.off)})
}

// handleShutdown is graceful cluster stop: flush end-of-input windows (the
// final alerts the serial reference raises at its own end of stream), take
// the final checkpoint, close, flush, ack.
func (w *Worker) handleShutdown() error {
	eng := w.engine()
	eng.Flush()
	if _, err := eng.Checkpoint(w.cfg.Dir); err != nil {
		return err
	}
	if err := eng.Close(); err != nil {
		return err
	}
	w.flushAlerts()
	return w.writeFrame(Frame{Type: FrameShutdownAck, Payload: EncodeOffset(w.off)})
}

func (w *Worker) engine() *saql.Engine {
	w.engMu.Lock()
	defer w.engMu.Unlock()
	return w.eng
}

// onAlert is the engine's alert handler: buffer unless muted. It runs on
// runtime goroutines and must never block on the connection.
func (w *Worker) onAlert(a *saql.Alert) {
	w.amu.Lock()
	if !w.muted {
		w.pending = append(w.pending, a)
	}
	w.amu.Unlock()
}

// flushAlerts ships the buffered alerts. Write failures are left to the
// read loop, which will observe the dead connection on its next read.
func (w *Worker) flushAlerts() {
	w.amu.Lock()
	alerts := w.pending
	w.pending = nil
	w.amu.Unlock()
	if len(alerts) == 0 {
		return
	}
	if err := w.writeFrame(Frame{Type: FrameAlerts, Payload: EncodeAlerts(alerts)}); err != nil {
		w.cfg.Logf("worker %s: alert flush: %v", w.id, err)
	}
}

func (w *Worker) writeFrame(f Frame) error {
	w.connMu.Lock()
	conn := w.conn
	w.connMu.Unlock()
	if conn == nil {
		return errors.New("dist: worker not serving")
	}
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return WriteFrame(conn, f)
}
