package sema

import (
	"strings"
	"testing"

	"saql/internal/parser"
)

func check(t *testing.T, src string) (*Info, error) {
	t.Helper()
	q, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse error (test wants sema errors): %v", err)
	}
	return Check(q)
}

func mustCheck(t *testing.T, src string) *Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatalf("Check failed: %v", err)
	}
	return info
}

func TestValidPaperQueries(t *testing.T) {
	queries := []string{
		`agentid = xxx
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
proc p4["%sbblv.exe"] read file f1 as evt3
proc p4 read || write ip i1[dstip="XXX.129"] as evt4
with evt1 -> evt2 -> evt3 -> evt4
return distinct p1, p2, p3, f1, p4, i1`,
		`proc p write ip i as evt #time(10 min)
state[3] ss { avg_amount := avg(evt.amount) } group by p
alert (ss[0].avg_amount > (ss[0].avg_amount + ss[1].avg_amount + ss[2].avg_amount) / 3) && (ss[0].avg_amount > 10000)
return p, ss[0].avg_amount`,
		`proc p1["%apache.exe"] start proc p2 as evt #time(10 s)
state ss { set_proc := set(p2.exe_name) } group by p1
invariant[10][offline] { a := empty_set a = a union ss.set_proc }
alert |ss.set_proc diff a| > 0
return p1, ss.set_proc`,
		`agentid = xxx
proc p["%sqlservr.exe"] read || write ip i as evt #time(10 min)
state ss { amt := sum(evt.amount) } group by i.dstip
cluster(points=all(ss.amt), distance="ed", method="DBSCAN(100000, 5)")
alert cluster.outlier && ss.amt > 1000000
return i.dstip, ss.amt`,
	}
	for i, src := range queries {
		if _, err := check(t, src); err != nil {
			t.Errorf("paper query %d rejected: %v", i+1, err)
		}
	}
}

func TestInfoContents(t *testing.T) {
	info := mustCheck(t, `proc p write ip i as evt #time(10 min)
state[3] ss { avg_amount := avg(evt.amount) } group by p
alert ss[2].avg_amount > 0
return p`)
	if info.EntityVars["p"].String() != "proc" || info.EntityVars["i"].String() != "ip" {
		t.Errorf("entity vars = %v", info.EntityVars)
	}
	if info.Aliases["evt"] != 0 {
		t.Errorf("aliases = %v", info.Aliases)
	}
	if len(info.StateFields) != 1 || info.StateFields[0] != "avg_amount" {
		t.Errorf("state fields = %v", info.StateFields)
	}
	if info.MaxStateIndex != 2 {
		t.Errorf("max state index = %d, want 2", info.MaxStateIndex)
	}
}

func TestClusterMethodParsing(t *testing.T) {
	info := mustCheck(t, `proc p write ip i as evt #time(1 min)
state ss { amt := sum(evt.amount) } group by i.dstip
cluster(points=all(ss.amt), distance="md", method="DBSCAN(500, 4)")
alert cluster.outlier
return i.dstip`)
	if info.ClusterMethod != "dbscan" {
		t.Errorf("method = %q", info.ClusterMethod)
	}
	if len(info.ClusterParams) != 2 || info.ClusterParams[0] != 500 || info.ClusterParams[1] != 4 {
		t.Errorf("params = %v", info.ClusterParams)
	}
}

func TestParseMethod(t *testing.T) {
	m, p, err := ParseMethod("KMEANS(3)")
	if err != nil || m != "kmeans" || len(p) != 1 || p[0] != 3 {
		t.Errorf("KMEANS(3) = %v %v %v", m, p, err)
	}
	bad := []string{"", "DBSCAN", "DBSCAN(1)", "DBSCAN(0, 5)", "DBSCAN(10, 0)", "DBSCAN(10, 2.5)",
		"KMEANS()", "KMEANS(0)", "FOO(1)", "DBSCAN(a, b)", "DBSCAN(1, 2"}
	for _, s := range bad {
		if _, _, err := ParseMethod(s); err == nil {
			t.Errorf("ParseMethod(%q) should fail", s)
		}
	}
}

func TestSemanticErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantErr string
	}{
		{`file f read file g as e return f`, "subject must be a process"},
		{`badattr = 1
proc p start proc q as e return p`, "global constraint"},
		{`proc p[dstip="x"] start proc q as e return p`, "no attribute"},
		{`proc p start file f[pid=1] as e return p`, "no attribute"},
		{`proc p start proc q as e
proc p read file f as e
return p`, "duplicate event alias"},
		{`proc p start proc e as x
proc p read file f as e
return p`, "collides with an entity variable"},
		{`proc p start proc q as e with e -> zz return p`, "undeclared event"},
		{`proc p start proc q as e
proc p read file f as e2
with e -> e2 -> e
return p`, "repeats event"},
		{`proc p start proc q as e state ss {x := count(e)} group by p alert ss.x > 0 return p`, "requires a #time window"},
		{`proc p start proc q as e #time(1 s)
invariant[5][offline] {a := empty_set} alert |a| > 0 return p`, "requires a state block"},
		{`proc p start proc q as e #time(1 s)
cluster(points=all(x), distance="ed", method="DBSCAN(1,2)") alert cluster.outlier return p`, "requires a state block"},
		{`proc p start proc q as e #time(1 s)
proc p read file f as e2
state ss {x := count(e)} group by p
with e -> e2
alert ss.x > 0 return p`, "cannot be combined"},
		{`proc p start proc q as e #time(1 s)
state p {x := count(e)} alert p.x > 0 return q`, "collides with an entity variable"},
		{`proc p start proc q as e #time(1 s)
state ss {x := count(e) x := count(e)} alert ss.x > 0 return p`, "duplicate state field"},
		{`proc p start proc q as e #time(1 s)
state ss {x := e.amount} alert ss.x > 0 return p`, "must be an aggregation call"},
		{`proc p start proc q as e #time(1 s)
state ss {x := bogus(e.amount)} alert ss.x > 0 return p`, "unknown aggregation"},
		{`proc p start proc q as e #time(1 s)
state ss {x := avg(ss.x)} alert ss.x > 0 return p`, "cannot reference"},
		{`proc p start proc q as e #time(1 s)
state ss {x := count(e)} group by zz alert ss.x > 0 return p`, "unknown identifier"},
		{`proc p start proc q as e #time(1 s)
state ss {x := count(e)} group by p
invariant[3][offline] {a := empty_set b = b union ss.x} alert ss.x > 0 return p`, "undeclared variable"},
		{`proc p start proc q as e #time(1 s)
state ss {x := count(e)} group by p
invariant[3][offline] {a := empty_set a := empty_set} alert ss.x > 0 return p`, "initialised twice"},
		{`proc p start proc q as e #time(1 s)
state ss {x := count(e)} group by p
cluster(points=all(ss.y), distance="ed", method="DBSCAN(1,2)") alert cluster.outlier return p`, "unknown state field"},
		{`proc p start proc q as e #time(1 s)
state ss {x := count(e)} group by p
cluster(points=all(ss.x), distance="zz", method="DBSCAN(1,2)") alert cluster.outlier return p`, "unknown cluster distance"},
		{`proc p start proc q as e #time(1 s)
state ss {x := count(e)} group by p
cluster(points=all(ss.x), distance="ed", method="SPECTRAL(2)") alert cluster.outlier return p`, "unknown cluster method"},
		{`proc p start proc q as e alert cluster.outlier return p`, "no cluster specification"},
		{`proc p start proc q as e #time(1 s)
state ss {x := count(e)} group by p
alert ss[1].x > 0 return p`, "out of range"},
		{`proc p start proc q as e #time(1 s)
state ss {x := count(e)} group by p alert ss.y > 0 return p`, "no field"},
		{`proc p start proc q as e alert avg(e.amount) > 0 return p`, "only valid inside a state block"},
		{`proc p start proc q as e return p.dstip`, "no attribute"},
		{`proc p start proc q as e return e.badfield`, "no attribute"},
		{`proc p start proc q as e return zz.f`, "unknown identifier"},
		{`proc p start proc q as e return zz`, "unknown identifier"},
		{`proc p start proc q`, "neither an alert condition nor a return"},
	}
	for _, c := range cases {
		_, err := check(t, c.src)
		if err == nil {
			t.Errorf("Check should fail for:\n%s", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("error %q does not mention %q", err.Error(), c.wantErr)
		}
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := check(t, "proc p start proc q as e\nreturn zz")
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Pos.Line != 2 {
		t.Errorf("error line = %d, want 2", se.Pos.Line)
	}
}
