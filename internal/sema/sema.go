// Package sema performs semantic analysis over parsed SAQL queries: name
// resolution (entity variables, event aliases, state names, invariant
// variables), attribute validity per entity type, aggregation-call checking
// in state blocks, state history bounds, temporal-clause validity, and
// cluster specification validation. The engine refuses to compile a query
// that has not passed Check.
package sema

import (
	"fmt"
	"strconv"
	"strings"

	"saql/internal/agg"
	"saql/internal/ast"
	"saql/internal/event"
	"saql/internal/lexer"
)

// Error is a semantic error with source position.
type Error struct {
	Pos lexer.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("semantic error at %s: %s", e.Pos, e.Msg) }

func errf(pos lexer.Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Info is the result of semantic analysis, consumed by the engine compiler
// and the concurrent query scheduler.
type Info struct {
	// EntityVars maps each entity variable to its type.
	EntityVars map[string]event.EntityType
	// Aliases maps each event alias to its pattern index.
	Aliases map[string]int
	// StateFields lists the state block field names in declaration order.
	StateFields []string
	// InvariantVars lists invariant variable names.
	InvariantVars []string
	// MaxStateIndex is the largest ss[k] index used anywhere in the query.
	MaxStateIndex int
	// ClusterMethod and ClusterParams are the parsed method spec, e.g.
	// "dbscan", [100000, 5].
	ClusterMethod string
	ClusterParams []float64
}

// Check validates q and returns analysis info.
func Check(q *ast.Query) (*Info, error) {
	info := &Info{
		EntityVars: map[string]event.EntityType{},
		Aliases:    map[string]int{},
	}

	if err := checkGlobals(q); err != nil {
		return nil, err
	}
	if err := collectPatterns(q, info); err != nil {
		return nil, err
	}
	if err := checkTemporal(q, info); err != nil {
		return nil, err
	}
	if err := checkStructure(q); err != nil {
		return nil, err
	}
	if q.State != nil {
		if err := checkState(q, info); err != nil {
			return nil, err
		}
	}
	if q.Invariant != nil {
		if err := checkInvariant(q, info); err != nil {
			return nil, err
		}
	}
	if q.Cluster != nil {
		if err := checkCluster(q, info); err != nil {
			return nil, err
		}
	}
	for _, a := range q.Alerts {
		if err := checkExpr(a, q, info, false); err != nil {
			return nil, err
		}
	}
	if q.Return != nil {
		for _, item := range q.Return.Items {
			if err := checkExpr(item.Expr, q, info, false); err != nil {
				return nil, err
			}
		}
	}
	return info, nil
}

var validGlobalAttrs = map[string]bool{
	"agentid": true, "agent_id": true, "host": true,
}

func checkGlobals(q *ast.Query) error {
	for _, g := range q.Globals {
		if !validGlobalAttrs[g.Attr] {
			return errf(g.Pos(), "unknown global constraint attribute %q (supported: agentid)", g.Attr)
		}
	}
	return nil
}

// entityAttrs lists valid attribute names per entity type (aliases included).
var entityAttrs = map[event.EntityType]map[string]bool{
	event.EntityProcess: {
		"exe_name": true, "exename": true, "exe": true, "name": true,
		"pid": true, "user": true, "username": true, "cmdline": true, "cmd": true, "args": true,
	},
	event.EntityFile: {
		"name": true, "path": true, "filename": true, "file_name": true, "basename": true,
	},
	event.EntityNetConn: {
		"srcip": true, "src_ip": true, "sip": true, "dstip": true, "dst_ip": true, "dip": true,
		"sport": true, "src_port": true, "srcport": true, "dport": true, "dst_port": true, "dstport": true,
		"protocol": true, "proto": true,
	},
}

var eventAttrs = map[string]bool{
	"amount": true, "amt": true, "bytes": true, "agentid": true, "agent_id": true,
	"host": true, "time": true, "ts": true, "timestamp": true, "id": true,
	"optype": true, "op": true, "operation": true,
}

func collectPatterns(q *ast.Query, info *Info) error {
	for i, p := range q.Patterns {
		if p.Subject.Type != event.EntityProcess {
			return errf(p.Pos(), "event subject must be a process, got %s", p.Subject.Type)
		}
		for _, ep := range []*ast.EntityPattern{p.Subject, p.Object} {
			if ep.Var != "" {
				if prev, ok := info.EntityVars[ep.Var]; ok {
					if prev != ep.Type {
						return errf(ep.Pos(), "entity variable %q re-declared with type %s (was %s)", ep.Var, ep.Type, prev)
					}
				} else {
					info.EntityVars[ep.Var] = ep.Type
				}
			}
			for _, c := range ep.Constraints {
				if c.Attr == "" {
					continue // default-attribute wildcard
				}
				if !entityAttrs[ep.Type][c.Attr] {
					return errf(ep.Pos(), "%s entity has no attribute %q", ep.Type, c.Attr)
				}
			}
		}
		if len(p.Ops) == 0 {
			return errf(p.Pos(), "event pattern declares no operation")
		}
		if p.Alias != "" {
			if _, dup := info.Aliases[p.Alias]; dup {
				return errf(p.Pos(), "duplicate event alias %q", p.Alias)
			}
			if _, isVar := info.EntityVars[p.Alias]; isVar {
				return errf(p.Pos(), "event alias %q collides with an entity variable", p.Alias)
			}
			info.Aliases[p.Alias] = i
		}
	}
	return nil
}

func checkTemporal(q *ast.Query, info *Info) error {
	if q.Temporal == nil {
		return nil
	}
	seen := map[string]bool{}
	for _, name := range q.Temporal.Order {
		if _, ok := info.Aliases[name]; !ok {
			return errf(q.Temporal.Pos(), "temporal clause references undeclared event %q", name)
		}
		if seen[name] {
			return errf(q.Temporal.Pos(), "temporal clause repeats event %q", name)
		}
		seen[name] = true
	}
	return nil
}

func checkStructure(q *ast.Query) error {
	if q.State != nil && q.Window == nil {
		return errf(q.State.Pos(), "state block requires a #time window on an event pattern")
	}
	if q.Invariant != nil && q.State == nil {
		return errf(q.Invariant.Pos(), "invariant block requires a state block")
	}
	if q.Cluster != nil && q.State == nil {
		return errf(q.Cluster.Pos(), "cluster specification requires a state block")
	}
	if q.Temporal != nil && q.State != nil {
		return errf(q.Temporal.Pos(), "temporal sequencing and stateful computation cannot be combined in one query")
	}
	if len(q.Alerts) == 0 && q.Return == nil {
		return errf(q.Pos(), "query has neither an alert condition nor a return clause")
	}
	return nil
}

func checkState(q *ast.Query, info *Info) error {
	st := q.State
	if st.Name == "cluster" {
		return errf(st.Pos(), "state name %q collides with the cluster namespace", st.Name)
	}
	if _, isVar := info.EntityVars[st.Name]; isVar {
		return errf(st.Pos(), "state name %q collides with an entity variable", st.Name)
	}
	if _, isAlias := info.Aliases[st.Name]; isAlias {
		return errf(st.Pos(), "state name %q collides with an event alias", st.Name)
	}
	seen := map[string]bool{}
	for _, f := range st.Fields {
		if seen[f.Name] {
			return errf(st.Pos(), "duplicate state field %q", f.Name)
		}
		seen[f.Name] = true
		call, ok := f.Expr.(*ast.CallExpr)
		if !ok {
			return errf(f.Expr.Pos(), "state field %q must be an aggregation call, got %s", f.Name, f.Expr)
		}
		if !agg.IsAggregator(call.Func) {
			return errf(call.Pos(), "unknown aggregation function %q (available: %s)", call.Func, strings.Join(agg.Names(), ", "))
		}
		if len(call.Args) < 1 {
			return errf(call.Pos(), "aggregation %q requires an argument", call.Func)
		}
		// First arg is the per-event expression; the rest must be literals.
		if err := checkAggArg(call.Args[0], q, info); err != nil {
			return err
		}
		for _, extra := range call.Args[1:] {
			if _, ok := extra.(*ast.Literal); !ok {
				return errf(extra.Pos(), "aggregation parameter must be a literal, got %s", extra)
			}
		}
		info.StateFields = append(info.StateFields, f.Name)
	}
	for _, g := range st.GroupBy {
		if err := checkAggArg(g, q, info); err != nil {
			return err
		}
	}
	return nil
}

// checkAggArg validates an expression evaluated per matched event (the
// argument of an aggregation or a group-by key): it may reference entity
// variables, event aliases, and literals, but not state or cluster results.
func checkAggArg(e ast.Expr, q *ast.Query, info *Info) error {
	var fail error
	ast.Walk(e, func(n ast.Expr) {
		if fail != nil {
			return
		}
		switch x := n.(type) {
		case *ast.Ident:
			if x.Name == "cluster" || (q.State != nil && x.Name == q.State.Name) {
				fail = errf(x.Pos(), "per-event expression cannot reference %q", x.Name)
				return
			}
			if _, ok := info.EntityVars[x.Name]; ok {
				return
			}
			if _, ok := info.Aliases[x.Name]; ok {
				return
			}
			fail = errf(x.Pos(), "unknown identifier %q in per-event expression", x.Name)
		case *ast.FieldExpr:
			fail = checkFieldRef(x, q, info, true)
		case *ast.IndexExpr:
			fail = errf(x.Pos(), "state history indexing is not allowed in per-event expressions")
		}
	})
	return fail
}

func checkInvariant(q *ast.Query, info *Info) error {
	inv := q.Invariant
	declared := map[string]bool{}
	for _, s := range inv.Inits {
		if declared[s.Var] {
			return errf(inv.Pos(), "invariant variable %q initialised twice", s.Var)
		}
		if _, isVar := info.EntityVars[s.Var]; isVar {
			return errf(inv.Pos(), "invariant variable %q collides with an entity variable", s.Var)
		}
		if q.State != nil && s.Var == q.State.Name {
			return errf(inv.Pos(), "invariant variable %q collides with the state name", s.Var)
		}
		declared[s.Var] = true
		info.InvariantVars = append(info.InvariantVars, s.Var)
	}
	for _, s := range inv.Updates {
		if !declared[s.Var] {
			return errf(inv.Pos(), "invariant update assigns undeclared variable %q (declare with %q)", s.Var, s.Var+" := ...")
		}
		if err := checkExpr(s.Expr, q, info, true); err != nil {
			return err
		}
	}
	return nil
}

func checkCluster(q *ast.Query, info *Info) error {
	cl := q.Cluster
	switch cl.Distance {
	case "ed", "euclidean", "md", "manhattan", "cd", "chebyshev", "cos", "cosine":
	default:
		return errf(cl.Pos(), "unknown cluster distance %q (supported: ed, md, cd, cos)", cl.Distance)
	}
	method, params, err := ParseMethod(cl.Method)
	if err != nil {
		return errf(cl.Pos(), "%v", err)
	}
	info.ClusterMethod = method
	info.ClusterParams = params
	// Points expression must reference only state fields of the current
	// window (one scalar per group becomes one clustering point).
	var fail error
	ast.Walk(cl.Points, func(n ast.Expr) {
		if fail != nil {
			return
		}
		switch x := n.(type) {
		case *ast.FieldExpr:
			if id, ok := x.Base.(*ast.Ident); ok {
				if q.State != nil && id.Name == q.State.Name {
					if !hasStateField(info, x.Field) {
						fail = errf(x.Pos(), "cluster points reference unknown state field %q", x.Field)
					}
					return
				}
			}
			fail = errf(x.Pos(), "cluster points must reference state fields (e.g. %s.amt)", stateName(q))
		case *ast.Ident:
			if q.State == nil || x.Name != q.State.Name {
				fail = errf(x.Pos(), "cluster points must reference state fields, found %q", x.Name)
			}
		case *ast.IndexExpr:
			fail = errf(x.Pos(), "cluster points cannot use state history")
		}
	})
	return fail
}

func stateName(q *ast.Query) string {
	if q.State != nil {
		return q.State.Name
	}
	return "ss"
}

// ParseMethod parses a cluster method string such as "DBSCAN(100000, 5)" or
// "KMEANS(3)" into a lower-case method name and numeric parameters.
func ParseMethod(s string) (string, []float64, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 {
		name := strings.ToLower(s)
		if name == "" {
			return "", nil, fmt.Errorf("empty cluster method")
		}
		return name, nil, validateMethod(name, nil)
	}
	if !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("malformed cluster method %q", s)
	}
	name := strings.ToLower(strings.TrimSpace(s[:open]))
	argStr := s[open+1 : len(s)-1]
	var params []float64
	if strings.TrimSpace(argStr) != "" {
		for _, part := range strings.Split(argStr, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return "", nil, fmt.Errorf("bad cluster method parameter %q in %q", part, s)
			}
			params = append(params, f)
		}
	}
	return name, params, validateMethod(name, params)
}

func validateMethod(name string, params []float64) error {
	switch name {
	case "dbscan":
		if len(params) != 2 {
			return fmt.Errorf("DBSCAN requires (eps, minPts), got %d parameters", len(params))
		}
		if params[0] <= 0 {
			return fmt.Errorf("DBSCAN eps must be positive")
		}
		if params[1] < 1 || params[1] != float64(int(params[1])) {
			return fmt.Errorf("DBSCAN minPts must be a positive integer")
		}
	case "kmeans":
		if len(params) != 1 || params[0] < 1 || params[0] != float64(int(params[0])) {
			return fmt.Errorf("KMEANS requires a positive integer k")
		}
	default:
		return fmt.Errorf("unknown cluster method %q (supported: DBSCAN, KMEANS)", name)
	}
	return nil
}

func hasStateField(info *Info, name string) bool {
	for _, f := range info.StateFields {
		if f == name {
			return true
		}
	}
	return false
}

func hasInvariantVar(info *Info, name string) bool {
	for _, v := range info.InvariantVars {
		if v == name {
			return true
		}
	}
	return false
}

// checkExpr validates an alert/return/invariant-update expression.
// inInvariant permits referencing invariant variables before detection.
func checkExpr(e ast.Expr, q *ast.Query, info *Info, inInvariant bool) error {
	var fail error
	ast.Walk(e, func(n ast.Expr) {
		if fail != nil {
			return
		}
		switch x := n.(type) {
		case *ast.Ident:
			switch {
			case x.Name == "cluster":
				if q.Cluster == nil {
					fail = errf(x.Pos(), "query has no cluster specification; cannot reference %q", x.Name)
				}
			case q.State != nil && x.Name == q.State.Name:
				// bare state reference — checked at FieldExpr level
			case hasInvariantVar(info, x.Name):
				// invariant variable
			default:
				if _, ok := info.EntityVars[x.Name]; ok {
					return
				}
				if _, ok := info.Aliases[x.Name]; ok {
					return
				}
				fail = errf(x.Pos(), "unknown identifier %q", x.Name)
			}
		case *ast.FieldExpr:
			fail = checkFieldRef(x, q, info, false)
		case *ast.IndexExpr:
			if q.State == nil {
				fail = errf(x.Pos(), "state history indexing requires a state block")
				return
			}
			id, ok := x.Base.(*ast.Ident)
			if !ok || id.Name != q.State.Name {
				fail = errf(x.Pos(), "only the state variable %q can be indexed", q.State.Name)
				return
			}
			if x.Index >= q.State.History {
				fail = errf(x.Pos(), "state index %d out of range: state[%d] retains indices 0..%d",
					x.Index, q.State.History, q.State.History-1)
				return
			}
			if x.Index > info.MaxStateIndex {
				info.MaxStateIndex = x.Index
			}
		case *ast.CallExpr:
			if agg.IsAggregator(x.Func) {
				fail = errf(x.Pos(), "aggregation %q is only valid inside a state block", x.Func)
			}
		}
	})
	return fail
}

// checkFieldRef validates base.field accesses in any expression context.
func checkFieldRef(x *ast.FieldExpr, q *ast.Query, info *Info, perEvent bool) error {
	switch base := x.Base.(type) {
	case *ast.Ident:
		name := base.Name
		if name == "cluster" {
			if q.Cluster == nil {
				return errf(x.Pos(), "query has no cluster specification; cannot reference cluster.%s", x.Field)
			}
			switch x.Field {
			case "outlier", "cluster_id", "size":
				return nil
			default:
				return errf(x.Pos(), "unknown cluster field %q (available: outlier, cluster_id, size)", x.Field)
			}
		}
		if q.State != nil && name == q.State.Name {
			if perEvent {
				return errf(x.Pos(), "per-event expression cannot reference state %q", name)
			}
			if !hasStateField(info, x.Field) {
				return errf(x.Pos(), "state %q has no field %q", name, x.Field)
			}
			return nil
		}
		if et, ok := info.EntityVars[name]; ok {
			if !entityAttrs[et][x.Field] {
				return errf(x.Pos(), "%s entity %q has no attribute %q", et, name, x.Field)
			}
			return nil
		}
		if _, ok := info.Aliases[name]; ok {
			if !eventAttrs[x.Field] {
				return errf(x.Pos(), "event %q has no attribute %q", name, x.Field)
			}
			return nil
		}
		if hasInvariantVar(info, name) {
			return errf(x.Pos(), "invariant variable %q has no fields", name)
		}
		return errf(x.Pos(), "unknown identifier %q", name)
	case *ast.IndexExpr:
		// ss[k].field: the IndexExpr branch of checkExpr validates the
		// index; validate the field here.
		if q.State == nil {
			return errf(x.Pos(), "state history indexing requires a state block")
		}
		if id, ok := base.Base.(*ast.Ident); !ok || id.Name != q.State.Name {
			return errf(x.Pos(), "only the state variable %q can be indexed", q.State.Name)
		}
		if !hasStateField(info, x.Field) {
			return errf(x.Pos(), "state %q has no field %q", q.State.Name, x.Field)
		}
		return nil
	default:
		return errf(x.Pos(), "unsupported field access base")
	}
}
