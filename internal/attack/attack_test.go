package attack

import (
	"testing"
	"time"

	"saql/internal/engine"
	"saql/internal/event"
)

var base = time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)

func TestKillChainStructure(t *testing.T) {
	s := &Scenario{
		Workstation: "ws-victim", MailServer: "mail-1", DBServer: "db-1",
		AttackerIP: "172.16.0.129", Start: base,
	}
	evs := s.Events()
	if len(evs) < 20 {
		t.Fatalf("kill chain = %d events, suspiciously few", len(evs))
	}

	// Time-ordered.
	for i := 1; i < len(evs); i++ {
		if evs[i].Event.Time.Before(evs[i-1].Event.Time) {
			t.Fatalf("event %d out of order", i)
		}
	}

	// All five steps present, in order of first occurrence.
	firstSeen := map[Step]int{}
	for i, l := range evs {
		if _, ok := firstSeen[l.Step]; !ok {
			firstSeen[l.Step] = i
		}
	}
	prev := -1
	for _, step := range Steps {
		idx, ok := firstSeen[step]
		if !ok {
			t.Fatalf("step %s missing", step)
		}
		if idx < prev {
			t.Errorf("step %s out of kill-chain order", step)
		}
		prev = idx
	}

	// c1-c3 happen on the workstation, c4-c5 on the DB server.
	for _, l := range evs {
		switch l.Step {
		case StepInitialCompromise, StepMalwareInfection, StepPrivilegeEscalation:
			if l.Event.AgentID != s.Workstation {
				t.Errorf("step %s on %s, want workstation", l.Step, l.Event.AgentID)
			}
		case StepPenetration, StepDataExfiltration:
			if l.Event.AgentID != s.DBServer {
				t.Errorf("step %s on %s, want db server", l.Step, l.Event.AgentID)
			}
		}
	}

	// The exfiltration moves tens of MB to the attacker.
	var exfil float64
	for _, l := range evs {
		if l.Step == StepDataExfiltration && l.Event.Object.Type == event.EntityNetConn &&
			l.Event.Object.DstIP == s.AttackerIP {
			exfil += l.Event.Amount
		}
	}
	if exfil < 50e6 {
		t.Errorf("exfiltrated bytes = %g, want >= 50MB", exfil)
	}

	if got := EventsOnly(evs); len(got) != len(evs) {
		t.Error("EventsOnly lost events")
	}
	if !s.End().After(s.Start) {
		t.Error("End() not after Start")
	}
}

func TestDefaultsApplied(t *testing.T) {
	s := &Scenario{Start: base}
	evs := s.Events()
	// Defaults appear in the generated events without mutating the
	// scenario (methods must be safe for concurrent use).
	if s.Workstation != "" || s.DBServer != "" || s.AttackerIP != "" {
		t.Error("Events() must not mutate the scenario")
	}
	agents := map[string]bool{}
	var attackerSeen bool
	for _, l := range evs {
		agents[l.Event.AgentID] = true
		if l.Event.Object.Type == event.EntityNetConn && l.Event.Object.DstIP == "172.16.0.129" {
			attackerSeen = true
		}
	}
	if !agents["ws-victim"] || !agents["db-1"] || !attackerSeen {
		t.Errorf("default topology missing from events: %v attacker=%v", agents, attackerSeen)
	}
}

func TestDemoQueriesCompile(t *testing.T) {
	s := &Scenario{Start: base}
	queries := s.DemoQueries(30*time.Second, 10)
	if len(queries) != 8 {
		t.Fatalf("queries = %d, want 8", len(queries))
	}
	models := map[string]int{}
	for _, nq := range queries {
		q, err := engine.Compile(nq.Name, nq.SAQL, engine.CompileOptions{})
		if err != nil {
			t.Errorf("query %s does not compile: %v", nq.Name, err)
			continue
		}
		models[nq.Model]++
		// Declared model matches the compiled kind.
		want := map[string]engine.ModelKind{
			"rule": engine.KindRule, "time-series": engine.KindTimeSeries,
			"invariant": engine.KindInvariant, "outlier": engine.KindOutlier,
		}[nq.Model]
		if q.Kind != want {
			t.Errorf("query %s kind = %v, declared %s", nq.Name, q.Kind, nq.Model)
		}
	}
	if models["rule"] != 5 || models["invariant"] != 1 || models["time-series"] != 1 || models["outlier"] != 1 {
		t.Errorf("model mix = %v", models)
	}
}

// Each rule query detects exactly its own step when run over the pure
// attack trace (no background): per-step attribution is exact.
func TestRuleQueriesDetectTheirSteps(t *testing.T) {
	s := &Scenario{Start: base}
	evs := EventsOnly(s.Events())
	for _, nq := range s.DemoQueries(30*time.Second, 10) {
		if nq.Model != "rule" {
			continue
		}
		q, err := engine.Compile(nq.Name, nq.SAQL, engine.CompileOptions{})
		if err != nil {
			t.Fatalf("%s: %v", nq.Name, err)
		}
		var alerts int
		for _, ev := range evs {
			alerts += len(q.Process(ev, nil))
		}
		if alerts == 0 {
			t.Errorf("query %s (step %s) did not fire on the attack trace", nq.Name, nq.Step)
		}
	}
}

func TestScenarioStepGap(t *testing.T) {
	fast := &Scenario{Start: base, StepGap: time.Second}
	slow := &Scenario{Start: base, StepGap: 10 * time.Minute}
	if !fast.End().Before(slow.End()) {
		t.Error("step gap has no effect")
	}
}
