package attack

import (
	"fmt"
	"time"
)

// NamedQuery pairs a SAQL query with its name and the attack step it is
// designed to detect ("" for the advanced anomaly queries constructed
// without attack knowledge).
type NamedQuery struct {
	Name  string
	Step  Step // which kill-chain step the query targets (rule queries)
	SAQL  string
	Model string // rule | time-series | invariant | outlier
}

// DemoQueries constructs the 8 SAQL queries of the paper's demonstration:
// one rule-based query per attack step (using knowledge of the attack) plus
// the three advanced anomaly queries (invariant-based, time-series, and
// outlier-based) that assume no knowledge of the attack details.
//
// window is the sliding-window length for the stateful queries; the paper
// uses 10s-10min windows. trainWindows is the invariant training count (the
// paper uses 100 for the demo; tests use smaller values for speed).
func (sc *Scenario) DemoQueries(window time.Duration, trainWindows int) []NamedQuery {
	s := sc.normalized()
	winSecs := int(window / time.Second)
	if winSecs < 1 {
		winSecs = 1
	}

	return []NamedQuery{
		{
			Name: "rule-c1-phishing-attachment", Step: StepInitialCompromise, Model: "rule",
			SAQL: fmt.Sprintf(`
agentid = %q
proc p1["%%outlook.exe"] read ip i1 as evt1
proc p1 write file f1["%%invoice%%"] as evt2
with evt1 -> evt2
return distinct p1, f1, i1`, s.Workstation),
		},
		{
			Name: "rule-c2-macro-dropper", Step: StepMalwareInfection, Model: "rule",
			SAQL: fmt.Sprintf(`
agentid = %q
proc p1["%%excel.exe"] start proc p2["%%wscript.exe"] as evt1
proc p2 read ip i1[dstip=%q] as evt2
proc p2 write file f1 as evt3
with evt1 -> evt2 -> evt3
return distinct p1, p2, f1, i1`, s.Workstation, s.AttackerIP),
		},
		{
			Name: "rule-c3-credential-theft", Step: StepPrivilegeEscalation, Model: "rule",
			SAQL: fmt.Sprintf(`
agentid = %q
proc p1 start proc p2["%%gsecdump.exe"] as evt1
proc p2 read file f1["%%SAM%%"] as evt2
proc p2 write ip i1[dstip=%q] as evt3
with evt1 -> evt2 -> evt3
return distinct p1, p2, f1, i1`, s.Workstation, s.AttackerIP),
		},
		{
			Name: "rule-c4-vbs-backdoor-drop", Step: StepPenetration, Model: "rule",
			SAQL: fmt.Sprintf(`
agentid = %q
proc p1["%%cscript.exe"] write file f1["%%.vbs"] as evt1
proc p1 write file f2["%%.exe"] as evt2
proc p1 start proc p2 as evt3
proc p2 connect ip i1[dstip=%q] as evt4
with evt1 -> evt2 -> evt3 -> evt4
return distinct p1, f1, f2, p2, i1`, s.DBServer, s.AttackerIP),
		},
		{
			Name: "rule-c5-database-exfiltration", Step: StepDataExfiltration, Model: "rule",
			SAQL: fmt.Sprintf(`
agentid = %q
proc p1["%%cmd.exe"] start proc p2["%%osql.exe"] as evt1
proc p3["%%sqlservr.exe"] write file f1["%%backup1.dmp"] as evt2
proc p4["%%sbblv.exe"] read file f1 as evt3
proc p4 read || write ip i1[dstip=%q] as evt4
with evt1 -> evt2 -> evt3 -> evt4
return distinct p1, p2, p3, f1, p4, i1`, s.DBServer, s.AttackerIP),
		},
		{
			Name: "anomaly-invariant-office-children", Model: "invariant",
			SAQL: fmt.Sprintf(`
agentid = %q
proc p1["%%excel.exe"] start proc p2 as evt #time(%d s)
state ss {
  set_proc := set(p2.exe_name)
} group by p1
invariant[%d][offline] {
  a := empty_set
  a = a union ss.set_proc
}
alert |ss.set_proc diff a| > 0
return p1, ss.set_proc`, s.Workstation, winSecs, trainWindows),
		},
		{
			Name: "anomaly-timeseries-db-network", Model: "time-series",
			SAQL: fmt.Sprintf(`
agentid = %q
proc p write ip i as evt #time(%d s)
state[3] ss {
  avg_amount := avg(evt.amount)
} group by p
alert (ss[0].avg_amount > (ss[0].avg_amount + ss[1].avg_amount + ss[2].avg_amount) / 3) && (ss[0].avg_amount > 1000000)
return p, ss[0].avg_amount, ss[1].avg_amount, ss[2].avg_amount`, s.DBServer, winSecs),
		},
		{
			// Peer comparison of outgoing destinations on the database
			// server across all processes: the exfiltration target
			// receives an order of magnitude more data than any peer.
			Name: "anomaly-outlier-db-peers", Model: "outlier",
			SAQL: fmt.Sprintf(`
agentid = %q
proc p read || write ip i as evt #time(%d s)
state ss {
  amt := sum(evt.amount)
} group by i.dstip
cluster(points=all(ss.amt), distance="ed", method="DBSCAN(1000000, 3)")
alert cluster.outlier && ss.amt > 10000000
return i.dstip, ss.amt`, s.DBServer, winSecs),
		},
	}
}
