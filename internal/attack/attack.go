// Package attack generates the paper's demonstration APT attack: a
// five-step kill chain performed across a workstation and the SQL database
// server, producing exactly the system events the paper's 8 SAQL queries
// detect. The real demo executed live exploits (e.g. CVE-2008-0081) in a
// controlled testbed; offline, this package injects the same observable
// event traces, each labelled with its attack step (c1..c5) as ground truth
// for detection-accuracy accounting.
package attack

import (
	"fmt"
	"time"

	"saql/internal/event"
)

// Step identifies an attack stage.
type Step string

// The five attack steps of the paper's demonstration (Section III).
const (
	StepInitialCompromise   Step = "c1" // crafted email with malicious Excel macro
	StepMalwareInfection    Step = "c2" // macro downloads and runs a malicious script
	StepPrivilegeEscalation Step = "c3" // port scan + gsecdump credential theft
	StepPenetration         Step = "c4" // VBScript drops a second backdoor on the DB server
	StepDataExfiltration    Step = "c5" // osql dump + exfil to the attacker host
)

// Steps lists all attack steps in order.
var Steps = []Step{
	StepInitialCompromise, StepMalwareInfection, StepPrivilegeEscalation,
	StepPenetration, StepDataExfiltration,
}

// Labeled is an attack event with its ground-truth step.
type Labeled struct {
	Event *event.Event
	Step  Step
}

// Scenario configures the kill chain: the victim hosts and the timing.
type Scenario struct {
	Workstation string    // victim workstation agent id
	MailServer  string    // mail server agent id
	DBServer    string    // SQL database server agent id
	AttackerIP  string    // external attacker address (the paper's XXX.129)
	Start       time.Time // time of the initial compromise
	// StepGap separates consecutive attack steps; zero means 90 seconds.
	StepGap time.Duration
}

func (s *Scenario) gap() time.Duration {
	if s.StepGap > 0 {
		return s.StepGap
	}
	return 90 * time.Second
}

// normalized returns a copy of the scenario with unset fields filled with
// the demo topology. Scenario methods never mutate the receiver, so a
// single Scenario value is safe to share across goroutines.
func (s *Scenario) normalized() Scenario {
	c := *s
	if c.Workstation == "" {
		c.Workstation = "ws-victim"
	}
	if c.MailServer == "" {
		c.MailServer = "mail-1"
	}
	if c.DBServer == "" {
		c.DBServer = "db-1"
	}
	if c.AttackerIP == "" {
		c.AttackerIP = "172.16.0.129"
	}
	return c
}

// Events generates the full labelled kill chain in time order.
func (sc *Scenario) Events() []Labeled {
	s := sc.normalized()
	var out []Labeled
	at := s.Start
	emit := func(step Step, agent string, subj event.Entity, op event.Op, obj event.Entity, amount float64, dt time.Duration) {
		at = at.Add(dt)
		out = append(out, Labeled{
			Step: step,
			Event: &event.Event{
				Time: at, AgentID: agent,
				Subject: subj, Op: op, Object: obj, Amount: amount,
			},
		})
	}

	wsIP := "10.0.1.50"
	dbIP := "10.0.3.10"
	conn := func(src string, dst string, dport int32) event.Entity {
		return event.NetConn(src, 49333, dst, dport)
	}

	// Processes involved.
	outlook := event.Process("outlook.exe", 2210)
	excel := event.Process("excel.exe", 2311)
	wscript := event.Process("wscript.exe", 2412)
	backdoor := event.Process("java.exe", 2513) // backdoor masquerading as java
	gsecdump := event.Process("gsecdump.exe", 2614)
	cscript := event.Process("cscript.exe", 3011)
	sbblv := event.Process("sbblv.exe", 3112)
	cmd := event.Process("cmd.exe", 3213)
	osql := event.Process("osql.exe", 3314)
	sqlservr := event.Process("sqlservr.exe", 1680)
	services := event.Process("services.exe", 620)

	// --- c1: Initial Compromise -------------------------------------------
	// The victim receives the crafted email and Outlook writes the
	// attachment with the malicious macro to disk.
	attachment := event.File(`C:\Users\victim\AppData\Outlook\invoice_q3.xls`)
	emit(StepInitialCompromise, s.Workstation, outlook, event.OpRead, conn(wsIP, "10.0.2.10", 993), 184_320, 0)
	emit(StepInitialCompromise, s.Workstation, outlook, event.OpWrite, attachment, 181_248, 2*time.Second)

	// --- c2: Malware Infection ---------------------------------------------
	// The victim opens the Excel file; the macro (CVE-2008-0081) launches
	// wscript, which downloads the payload and opens a backdoor.
	payload := event.File(`C:\Users\victim\AppData\Temp\svch0st.js`)
	emit(StepMalwareInfection, s.Workstation, outlook, event.OpStart, excel, 0, s.gap())
	emit(StepMalwareInfection, s.Workstation, excel, event.OpRead, attachment, 181_248, 3*time.Second)
	emit(StepMalwareInfection, s.Workstation, excel, event.OpStart, wscript, 0, 2*time.Second)
	emit(StepMalwareInfection, s.Workstation, wscript, event.OpRead, conn(wsIP, s.AttackerIP, 443), 421_100, 4*time.Second)
	emit(StepMalwareInfection, s.Workstation, wscript, event.OpWrite, payload, 421_100, 1*time.Second)
	emit(StepMalwareInfection, s.Workstation, wscript, event.OpStart, backdoor, 0, 2*time.Second)
	emit(StepMalwareInfection, s.Workstation, backdoor, event.OpConnect, conn(wsIP, s.AttackerIP, 8443), 512, 1*time.Second)

	// --- c3: Privilege Escalation -------------------------------------------
	// Through the backdoor the attacker scans the internal network for the
	// database server, then runs gsecdump to steal credentials.
	emitScan := func(octet int) {
		target := fmt.Sprintf("10.0.3.%d", octet)
		emit(StepPrivilegeEscalation, s.Workstation, backdoor, event.OpConnect, conn(wsIP, target, 1433), 64, 400*time.Millisecond)
	}
	at = at.Add(s.gap())
	for octet := 2; octet <= 12; octet++ {
		emitScan(octet)
	}
	emit(StepPrivilegeEscalation, s.Workstation, backdoor, event.OpStart, gsecdump, 0, 2*time.Second)
	emit(StepPrivilegeEscalation, s.Workstation, gsecdump, event.OpRead, event.File(`C:\Windows\System32\config\SAM`), 65_536, 1*time.Second)
	emit(StepPrivilegeEscalation, s.Workstation, gsecdump, event.OpWrite, conn(wsIP, s.AttackerIP, 8443), 4_096, 1*time.Second)

	// --- c4: Penetration into Database Server -------------------------------
	// With stolen credentials the attacker reaches the DB server and drops
	// a VBScript that installs the second backdoor (sbblv.exe).
	dropper := event.File(`C:\Windows\Temp\update_svc.vbs`)
	backdoor2 := event.File(`C:\Windows\Temp\sbblv.exe`)
	emit(StepPenetration, s.DBServer, services, event.OpStart, cscript, 0, s.gap())
	emit(StepPenetration, s.DBServer, cscript, event.OpWrite, dropper, 12_288, 1*time.Second)
	emit(StepPenetration, s.DBServer, cscript, event.OpWrite, backdoor2, 96_256, 2*time.Second)
	emit(StepPenetration, s.DBServer, cscript, event.OpStart, sbblv, 0, 2*time.Second)
	emit(StepPenetration, s.DBServer, sbblv, event.OpConnect, conn(dbIP, s.AttackerIP, 8443), 512, 1*time.Second)

	// --- c5: Data Exfiltration ----------------------------------------------
	// The attacker dumps the database with osql and ships the dump home.
	dump := event.File(`C:\db\backup1.dmp`)
	emit(StepDataExfiltration, s.DBServer, cmd, event.OpStart, osql, 0, s.gap())
	emit(StepDataExfiltration, s.DBServer, osql, event.OpWrite, conn(dbIP, dbIP, 1433), 2_048, 1*time.Second)
	emit(StepDataExfiltration, s.DBServer, sqlservr, event.OpWrite, dump, 52_428_800, 8*time.Second)
	emit(StepDataExfiltration, s.DBServer, sbblv, event.OpRead, dump, 52_428_800, 5*time.Second)
	// Exfiltration in chunks: several large sends to the attacker.
	for i := 0; i < 5; i++ {
		emit(StepDataExfiltration, s.DBServer, sbblv, event.OpWrite, conn(dbIP, s.AttackerIP, 8443), 10_485_760, 2*time.Second)
	}
	return out
}

// EventsOnly strips labels.
func EventsOnly(labeled []Labeled) []*event.Event {
	out := make([]*event.Event, len(labeled))
	for i, l := range labeled {
		out[i] = l.Event
	}
	return out
}

// End returns the time of the last attack event.
func (s *Scenario) End() time.Time {
	evs := s.Events()
	return evs[len(evs)-1].Event.Time
}
