package attack

import (
	"testing"
	"time"

	"saql/internal/engine"
	"saql/internal/event"
)

func TestRansomwareTraceStructure(t *testing.T) {
	r := &RansomwareScenario{Start: base, Files: 25}
	evs := r.Events()
	if len(evs) < 25*3+4 {
		t.Fatalf("trace = %d events", len(evs))
	}
	var deletes, renames, execs, lockedWrites int
	for i, l := range evs {
		if i > 0 && l.Event.Time.Before(evs[i-1].Event.Time) {
			t.Fatal("trace out of order")
		}
		switch l.Event.Op {
		case event.OpDelete:
			deletes++
		case event.OpRename:
			renames++
		case event.OpExecute:
			execs++
		case event.OpWrite:
			if l.Event.Object.Type == event.EntityFile &&
				len(l.Event.Object.Path) > 7 && l.Event.Object.Path[len(l.Event.Object.Path)-7:] == ".locked" {
				lockedWrites++
			}
		}
	}
	if deletes != 25 {
		t.Errorf("deletes = %d, want 25", deletes)
	}
	if lockedWrites != 25 {
		t.Errorf("locked writes = %d, want 25", lockedWrites)
	}
	if execs != 1 {
		t.Errorf("execs = %d, want 1", execs)
	}
	// Methods must not mutate the scenario.
	if r.Host != "" || r.AttackerIP != "" {
		t.Error("Events() mutated the scenario")
	}
}

func TestRansomwareDetection(t *testing.T) {
	r := &RansomwareScenario{Start: base.Add(time.Minute)}
	queries := r.DetectionQueries(30 * time.Second)
	if len(queries) != 3 {
		t.Fatalf("queries = %d", len(queries))
	}

	var compiled []*engine.Query
	for _, nq := range queries {
		q, err := engine.Compile(nq.Name, nq.SAQL, engine.CompileOptions{})
		if err != nil {
			t.Fatalf("%s: %v", nq.Name, err)
		}
		compiled = append(compiled, q)
	}

	// Benign prelude: a user saving and tidying a few documents must not
	// trigger the behavioural queries.
	word := event.Process("winword.exe", 900)
	var evs []*event.Event
	for i := 0; i < 5; i++ {
		at := base.Add(time.Duration(i) * 5 * time.Second)
		evs = append(evs,
			&event.Event{Time: at, AgentID: "ws-victim", Subject: word, Op: event.OpWrite,
				Object: event.File(`C:\Users\victim\Documents\draft.docx`), Amount: 80_000},
			&event.Event{Time: at.Add(time.Second), AgentID: "ws-victim", Subject: word, Op: event.OpDelete,
				Object: event.File(`C:\Users\victim\Documents\~tmp.docx`)},
		)
	}
	evs = append(evs, EventsOnly(r.Events())...)
	// Close trailing windows.
	evs = append(evs, &event.Event{Time: base.Add(10 * time.Minute), AgentID: "ws-victim",
		Subject: word, Op: event.OpRead, Object: event.File(`C:\x`)})

	counts := map[string]int{}
	for _, q := range compiled {
		for _, ev := range evs {
			counts[q.Name] += len(q.Process(ev, nil))
		}
		counts[q.Name] += len(q.Flush(nil))
	}
	for _, nq := range queries {
		if counts[nq.Name] == 0 {
			t.Errorf("query %s raised no alert", nq.Name)
		}
	}
}

func TestRansomwareBenignSilence(t *testing.T) {
	r := &RansomwareScenario{}
	queries := r.DetectionQueries(30 * time.Second)
	// Only benign editing activity: all three queries must stay silent.
	word := event.Process("winword.exe", 900)
	var evs []*event.Event
	for i := 0; i < 60; i++ {
		at := base.Add(time.Duration(i) * 10 * time.Second)
		evs = append(evs,
			&event.Event{Time: at, AgentID: "ws-victim", Subject: word, Op: event.OpWrite,
				Object: event.File(`C:\Users\victim\Documents\draft.docx`), Amount: 90_000},
			&event.Event{Time: at.Add(2 * time.Second), AgentID: "ws-victim", Subject: word, Op: event.OpDelete,
				Object: event.File(`C:\Users\victim\Documents\~autosave.tmp`)},
		)
	}
	for _, nq := range queries {
		q, err := engine.Compile(nq.Name, nq.SAQL, engine.CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var alerts int
		for _, ev := range evs {
			alerts += len(q.Process(ev, nil))
		}
		alerts += len(q.Flush(nil))
		if alerts != 0 {
			t.Errorf("query %s raised %d alerts on benign traffic", nq.Name, alerts)
		}
	}
}
