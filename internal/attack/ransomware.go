package attack

import (
	"fmt"
	"time"

	"saql/internal/event"
)

// RansomwareScenario is a second built-in attack for exercising the
// operations the APT kill chain does not use (execute, rename, delete) and
// the count-based stateful models: a phishing payload encrypts user
// documents in place (read → write .locked rename → original delete) at a
// rate no interactive application exhibits.
type RansomwareScenario struct {
	Host       string    // victim workstation agent id
	AttackerIP string    // C2 address
	Start      time.Time // execution time of the payload
	// Files is how many documents get encrypted; zero means 40.
	Files int
	// PerFile is the time spent per file; zero means 600ms.
	PerFile time.Duration
}

func (r *RansomwareScenario) normalized() RansomwareScenario {
	c := *r
	if c.Host == "" {
		c.Host = "ws-victim"
	}
	if c.AttackerIP == "" {
		c.AttackerIP = "172.16.0.129"
	}
	if c.Files <= 0 {
		c.Files = 40
	}
	if c.PerFile <= 0 {
		c.PerFile = 600 * time.Millisecond
	}
	return c
}

// Events generates the labelled ransomware trace in time order. All events
// carry the single step label "ransom".
func (rc *RansomwareScenario) Events() []Labeled {
	r := rc.normalized()
	const step = Step("ransom")
	var out []Labeled
	at := r.Start
	emit := func(subj event.Entity, op event.Op, obj event.Entity, amount float64, dt time.Duration) {
		at = at.Add(dt)
		out = append(out, Labeled{Step: step, Event: &event.Event{
			Time: at, AgentID: r.Host, Subject: subj, Op: op, Object: obj, Amount: amount,
		}})
	}

	chrome := event.Process("chrome.exe", 2290)
	payload := event.Process("inv0ice_viewer.exe", 2660)
	dropped := event.File(`C:\Users\victim\Downloads\inv0ice_viewer.exe`)

	// Delivery: drive-by download, user executes the payload.
	emit(chrome, event.OpWrite, dropped, 1_482_752, 0)
	emit(chrome, event.OpExecute, dropped, 0, 3*time.Second)
	emit(chrome, event.OpStart, payload, 0, 200*time.Millisecond)
	// Key exchange with the C2.
	emit(payload, event.OpConnect, event.NetConn("10.0.1.50", 49555, r.AttackerIP, 443), 512, time.Second)

	// Encryption loop: read doc, write doc.locked, delete doc.
	for i := 0; i < r.Files; i++ {
		doc := event.File(fmt.Sprintf(`C:\Users\victim\Documents\report_%03d.docx`, i))
		locked := event.File(doc.Path + ".locked")
		size := 200_000 + float64(i%7)*35_000
		emit(payload, event.OpRead, doc, size, r.PerFile/3)
		emit(payload, event.OpWrite, locked, size, r.PerFile/3)
		emit(payload, event.OpDelete, doc, 0, r.PerFile/3)
	}
	// The ransom note.
	emit(payload, event.OpWrite, event.File(`C:\Users\victim\Desktop\HOW_TO_RECOVER.txt`), 2_048, time.Second)
	return out
}

// DetectionQueries returns SAQL queries for the ransomware behaviour:
// a rule query for the delivery chain and two stateful queries with no
// knowledge of the malware — a mass-delete detector and an encryption-churn
// detector (high write+delete rate from one process over many distinct
// files).
func (rc *RansomwareScenario) DetectionQueries(window time.Duration) []NamedQuery {
	r := rc.normalized()
	winSecs := int(window / time.Second)
	if winSecs < 1 {
		winSecs = 1
	}
	return []NamedQuery{
		{
			Name: "ransom-delivery-chain", Step: "ransom", Model: "rule",
			SAQL: fmt.Sprintf(`
agentid = %q
proc p1 write file f1["%%.exe"] as evt1
proc p1 execute file f1 as evt2
proc p2 connect ip i1[dstip=%q] as evt3
with evt1 -> evt2 -> evt3
return distinct p1, f1, p2, i1`, r.Host, r.AttackerIP),
		},
		{
			Name: "ransom-mass-delete", Model: "stateful",
			SAQL: fmt.Sprintf(`
agentid = %q
proc p delete file f as evt #time(%d s)
state ss {
  n := count(evt)
  victims := distinct(f.name)
} group by p
alert ss.n > 10 && ss.victims > 10
return p, ss.n, ss.victims`, r.Host, winSecs),
		},
		{
			Name: "ransom-encryption-churn", Model: "stateful",
			SAQL: fmt.Sprintf(`
agentid = %q
proc p write file f["%%.locked"] as evt #time(%d s)
state ss {
  locked := count(evt)
  bytes := sum(evt.amount)
} group by p
alert ss.locked > 5
return p, ss.locked, ss.bytes`, r.Host, winSecs),
		},
	}
}
