// Package symtab maintains the process-global symbol dictionary backing the
// compiled-predicate fast path: hot low-cardinality attribute strings (exe
// names, users, agent IDs, IPs, protocols) are assigned stable small-integer
// symbol IDs, so a compiled equality predicate reduces to one uint32 compare
// instead of a case-folded string comparison per event.
//
// The dictionary is canonical under ASCII case folding — two strings share a
// symbol iff their lower-cased forms are byte-equal — which matches the
// engine's case-insensitive constraint semantics (value.WildcardMatch lowers
// both sides before comparing). Only pure-ASCII strings are admitted: Unicode
// case folding has edge cases (dotted I, Kelvin sign) where ToLower equality
// and symbol equality could diverge, so non-ASCII values simply never get a
// symbol and compiled predicates fall back to the exact string path.
//
// Symbol IDs are process-local and assignment-order dependent. They are NEVER
// persisted: the wire, journal, and snapshot codecs serialise the string
// fields only, and events decoded without symbols (ID 0) evaluate through the
// string fallback with identical results.
package symtab

import (
	"strings"
	"sync"
	"sync/atomic"
)

const (
	// MaxEntries bounds the dictionary so adversarial high-cardinality input
	// cannot grow it without limit; once full, new strings stay symbol-less.
	MaxEntries = 1 << 16
	// MaxLen bounds admitted string length, mirroring the codec intern
	// tables: values longer than this are high-cardinality by construction.
	MaxLen = 128
)

var (
	mu  sync.RWMutex
	ids = map[string]uint32{} // lower-cased canonical form -> symbol (1-based)

	// Dictionary effectiveness counters, reported through Engine.Stats.
	// hits/misses are recorded by the codec intern tables (per decoded hot
	// string); the compiled-evaluation string-fallback count lives in
	// internal/pcode next to the code that takes the fallback.
	hits   atomic.Int64
	misses atomic.Int64
)

// Intern returns the symbol ID for s, assigning one on first sight. It
// returns 0 (no symbol) for empty, over-long, or non-ASCII strings, and for
// new strings once the dictionary is full. Interning is keyed on the
// lower-cased form, so "CMD.EXE" and "cmd.exe" share a symbol.
func Intern(s string) uint32 {
	if s == "" || len(s) > MaxLen || !isASCII(s) {
		return 0
	}
	canon := strings.ToLower(s)
	mu.RLock()
	id := ids[canon]
	mu.RUnlock()
	if id != 0 {
		return id
	}
	mu.Lock()
	defer mu.Unlock()
	if id := ids[canon]; id != 0 {
		return id
	}
	if len(ids) >= MaxEntries {
		return 0
	}
	id = uint32(len(ids) + 1)
	ids[canon] = id
	return id
}

// Lookup returns s's symbol ID without assigning one: 0 when s has never
// been interned (or is inadmissible).
func Lookup(s string) uint32 {
	if s == "" || len(s) > MaxLen || !isASCII(s) {
		return 0
	}
	canon := strings.ToLower(s)
	mu.RLock()
	id := ids[canon]
	mu.RUnlock()
	return id
}

// RecordHit counts one decoder intern-table cache hit (the string resolved
// to its canonical copy and symbol without touching the global dictionary).
func RecordHit() { hits.Add(1) }

// RecordMiss counts one decoder intern-table cache miss (first sight of a
// distinct string on that stream).
func RecordMiss() { misses.Add(1) }

// Stats is a snapshot of the dictionary counters.
type Stats struct {
	Entries int   // distinct symbols assigned
	Hits    int64 // decoder intern-table cache hits
	Misses  int64 // decoder intern-table cache misses
}

// Snapshot returns the current dictionary statistics.
func Snapshot() Stats {
	mu.RLock()
	n := len(ids)
	mu.RUnlock()
	return Stats{Entries: n, Hits: hits.Load(), Misses: misses.Load()}
}

// isASCII reports whether s contains only 7-bit bytes. Only such strings are
// admitted: for them, Unicode ToLower equality coincides with ASCII case
// folding, so symbol equality exactly reproduces WildcardMatch equality.
func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}
