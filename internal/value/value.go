// Package value implements the dynamic value system used throughout the SAQL
// engine: attribute values extracted from system events, aggregation results,
// invariant variables, and the operands of every SAQL expression.
//
// A Value is a small immutable tagged union over the types the SAQL language
// manipulates: strings, integers, floats, booleans, string sets, and null.
// Numeric operations promote integers to floats when the operands mix kinds,
// matching the paper's arithmetic over amounts and moving averages.
package value

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type held by a Value.
type Kind uint8

// The value kinds supported by the SAQL expression language.
const (
	KindNull Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
	KindSet
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindSet:
		return "set"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed SAQL value. The zero Value is Null.
type Value struct {
	kind Kind
	s    string
	i    int64
	f    float64
	b    bool
	set  map[string]struct{}
}

// Null is the null value (absent attribute, empty state).
var Null = Value{kind: KindNull}

// String constructs a string value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Int constructs an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float constructs a float value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Bool constructs a boolean value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// EmptySet constructs an empty string-set value (SAQL's empty_set literal).
func EmptySet() Value { return Value{kind: KindSet, set: map[string]struct{}{}} }

// SetOf constructs a set value holding the given members.
func SetOf(members ...string) Value {
	m := make(map[string]struct{}, len(members))
	for _, s := range members {
		m[s] = struct{}{}
	}
	return Value{kind: KindSet, set: m}
}

// Kind reports the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Str returns the string payload. It is only meaningful for KindString.
func (v Value) Str() string { return v.s }

// IntVal returns the integer payload. It is only meaningful for KindInt.
func (v Value) IntVal() int64 { return v.i }

// FloatVal returns the float payload. It is only meaningful for KindFloat.
func (v Value) FloatVal() float64 { return v.f }

// BoolVal returns the boolean payload. It is only meaningful for KindBool.
func (v Value) BoolVal() bool { return v.b }

// AsFloat converts numeric values to float64. The second result reports
// whether the conversion was possible.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// AsBool interprets v as a boolean condition: booleans directly, null as
// false. Other kinds report failure.
func (v Value) AsBool() (bool, bool) {
	switch v.kind {
	case KindBool:
		return v.b, true
	case KindNull:
		return false, true
	default:
		return false, false
	}
}

// IsNumeric reports whether v holds an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// SetLen returns the cardinality of a set value (0 for non-sets).
func (v Value) SetLen() int {
	if v.kind != KindSet {
		return 0
	}
	return len(v.set)
}

// SetContains reports whether a set value contains member s.
func (v Value) SetContains(s string) bool {
	if v.kind != KindSet {
		return false
	}
	_, ok := v.set[s]
	return ok
}

// SetMembers returns the sorted members of a set value.
func (v Value) SetMembers() []string {
	if v.kind != KindSet {
		return nil
	}
	out := make([]string, 0, len(v.set))
	for s := range v.set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Union returns the set union of two set values.
func (v Value) Union(o Value) (Value, error) {
	if v.kind != KindSet || o.kind != KindSet {
		return Null, fmt.Errorf("value: union requires sets, got %s and %s", v.kind, o.kind)
	}
	m := make(map[string]struct{}, len(v.set)+len(o.set))
	for s := range v.set {
		m[s] = struct{}{}
	}
	for s := range o.set {
		m[s] = struct{}{}
	}
	return Value{kind: KindSet, set: m}, nil
}

// Diff returns the set difference v \ o.
func (v Value) Diff(o Value) (Value, error) {
	if v.kind != KindSet || o.kind != KindSet {
		return Null, fmt.Errorf("value: diff requires sets, got %s and %s", v.kind, o.kind)
	}
	m := make(map[string]struct{})
	for s := range v.set {
		if _, ok := o.set[s]; !ok {
			m[s] = struct{}{}
		}
	}
	return Value{kind: KindSet, set: m}, nil
}

// Intersect returns the set intersection of two set values.
func (v Value) Intersect(o Value) (Value, error) {
	if v.kind != KindSet || o.kind != KindSet {
		return Null, fmt.Errorf("value: intersect requires sets, got %s and %s", v.kind, o.kind)
	}
	m := make(map[string]struct{})
	for s := range v.set {
		if _, ok := o.set[s]; ok {
			m[s] = struct{}{}
		}
	}
	return Value{kind: KindSet, set: m}, nil
}

// Equal reports deep equality between two values. Numeric values compare by
// magnitude across int/float kinds; sets compare by membership.
func (v Value) Equal(o Value) bool {
	if v.IsNumeric() && o.IsNumeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		return a == b
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindString:
		return v.s == o.s
	case KindBool:
		return v.b == o.b
	case KindSet:
		if len(v.set) != len(o.set) {
			return false
		}
		for s := range v.set {
			if _, ok := o.set[s]; !ok {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Compare orders two values: -1 if v<o, 0 if equal, +1 if v>o. Only numeric
// pairs and string pairs are ordered; anything else is an error.
func (v Value) Compare(o Value) (int, error) {
	if v.IsNumeric() && o.IsNumeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if v.kind == KindString && o.kind == KindString {
		return strings.Compare(v.s, o.s), nil
	}
	return 0, fmt.Errorf("value: cannot order %s against %s", v.kind, o.kind)
}

// Arith applies a binary arithmetic operator (+ - * / %) to two numeric
// values. Division by zero and modulo by zero are errors. Integer pairs stay
// integral except for /, which always yields a float to match SAQL averaging
// semantics (Query 2 divides a sum of averages by 3).
func (v Value) Arith(op byte, o Value) (Value, error) {
	if !v.IsNumeric() || !o.IsNumeric() {
		return Null, fmt.Errorf("value: arithmetic %c requires numbers, got %s and %s", op, v.kind, o.kind)
	}
	if v.kind == KindInt && o.kind == KindInt && op != '/' {
		a, b := v.i, o.i
		switch op {
		case '+':
			return Int(a + b), nil
		case '-':
			return Int(a - b), nil
		case '*':
			return Int(a * b), nil
		case '%':
			if b == 0 {
				return Null, fmt.Errorf("value: modulo by zero")
			}
			return Int(a % b), nil
		}
	}
	a, _ := v.AsFloat()
	b, _ := o.AsFloat()
	switch op {
	case '+':
		return Float(a + b), nil
	case '-':
		return Float(a - b), nil
	case '*':
		return Float(a * b), nil
	case '/':
		if b == 0 {
			return Null, fmt.Errorf("value: division by zero")
		}
		return Float(a / b), nil
	case '%':
		if b == 0 {
			return Null, fmt.Errorf("value: modulo by zero")
		}
		return Float(math.Mod(a, b)), nil
	default:
		return Null, fmt.Errorf("value: unknown arithmetic operator %c", op)
	}
}

// Neg returns the arithmetic negation of a numeric value.
func (v Value) Neg() (Value, error) {
	switch v.kind {
	case KindInt:
		return Int(-v.i), nil
	case KindFloat:
		return Float(-v.f), nil
	default:
		return Null, fmt.Errorf("value: cannot negate %s", v.kind)
	}
}

// String renders the value the way the SAQL CLI prints alert attributes.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindString:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		// Trim trailing zeros for readability but keep precision for
		// alert thresholds such as 10000.0.
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindSet:
		return "{" + strings.Join(v.SetMembers(), ", ") + "}"
	default:
		return "?"
	}
}

// WildcardMatch reports whether s matches pattern, where '%' in pattern
// matches any run of characters (SQL LIKE-style, as used by SAQL entity
// constraints such as ["%osql.exe"]). Matching is case-insensitive, matching
// the case-insensitive file systems the paper's Windows hosts use.
func WildcardMatch(pattern, s string) bool {
	p := strings.ToLower(pattern)
	t := strings.ToLower(s)
	return likeMatch(p, t)
}

func likeMatch(p, s string) bool {
	// Dynamic-programming-free two-pointer LIKE matcher with backtracking
	// over the last '%' seen; runs in O(len(p)*len(s)) worst case but is
	// linear for the common single-wildcard patterns in queries.
	var pi, si int
	star := -1
	match := 0
	for si < len(s) {
		if pi < len(p) && (p[pi] == s[si]) {
			pi++
			si++
			continue
		}
		if pi < len(p) && p[pi] == '%' {
			star = pi
			match = si
			pi++
			continue
		}
		if star != -1 {
			pi = star + 1
			match++
			si = match
			continue
		}
		return false
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
