package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null, KindNull},
		{String("x"), KindString},
		{Int(42), KindInt},
		{Float(3.5), KindFloat},
		{Bool(true), KindBool},
		{EmptySet(), KindSet},
		{SetOf("a", "b"), KindSet},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
}

func TestAsFloat(t *testing.T) {
	if f, ok := Int(7).AsFloat(); !ok || f != 7 {
		t.Errorf("Int(7).AsFloat() = %v, %v", f, ok)
	}
	if f, ok := Float(2.5).AsFloat(); !ok || f != 2.5 {
		t.Errorf("Float(2.5).AsFloat() = %v, %v", f, ok)
	}
	if _, ok := String("x").AsFloat(); ok {
		t.Error("String.AsFloat() should fail")
	}
	if _, ok := Null.AsFloat(); ok {
		t.Error("Null.AsFloat() should fail")
	}
}

func TestAsBool(t *testing.T) {
	if b, ok := Bool(true).AsBool(); !ok || !b {
		t.Errorf("Bool(true).AsBool() = %v, %v", b, ok)
	}
	if b, ok := Null.AsBool(); !ok || b {
		t.Errorf("Null.AsBool() = %v, %v; want false, true", b, ok)
	}
	if _, ok := Int(1).AsBool(); ok {
		t.Error("Int.AsBool() should fail (SAQL has no truthy numbers)")
	}
}

func TestEqualCrossNumeric(t *testing.T) {
	if !Int(5).Equal(Float(5.0)) {
		t.Error("Int(5) should equal Float(5.0)")
	}
	if Int(5).Equal(Float(5.5)) {
		t.Error("Int(5) should not equal Float(5.5)")
	}
	if Int(5).Equal(String("5")) {
		t.Error("Int(5) should not equal String(\"5\")")
	}
	if !Null.Equal(Null) {
		t.Error("Null should equal Null")
	}
}

func TestSetOperations(t *testing.T) {
	a := SetOf("x", "y")
	b := SetOf("y", "z")

	u, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	if u.SetLen() != 3 || !u.SetContains("x") || !u.SetContains("y") || !u.SetContains("z") {
		t.Errorf("union = %v", u)
	}

	d, err := a.Diff(b)
	if err != nil {
		t.Fatal(err)
	}
	if d.SetLen() != 1 || !d.SetContains("x") {
		t.Errorf("diff = %v", d)
	}

	i, err := a.Intersect(b)
	if err != nil {
		t.Fatal(err)
	}
	if i.SetLen() != 1 || !i.SetContains("y") {
		t.Errorf("intersect = %v", i)
	}

	if _, err := a.Union(Int(1)); err == nil {
		t.Error("union with non-set should error")
	}
	if _, err := Int(1).Diff(a); err == nil {
		t.Error("diff on non-set should error")
	}
}

func TestSetMembersSorted(t *testing.T) {
	s := SetOf("c", "a", "b")
	m := s.SetMembers()
	if len(m) != 3 || m[0] != "a" || m[1] != "b" || m[2] != "c" {
		t.Errorf("SetMembers() = %v, want sorted [a b c]", m)
	}
}

func TestSetEquality(t *testing.T) {
	if !SetOf("a", "b").Equal(SetOf("b", "a")) {
		t.Error("set equality should ignore order")
	}
	if SetOf("a").Equal(SetOf("a", "b")) {
		t.Error("sets of different size should differ")
	}
}

func TestCompare(t *testing.T) {
	lt, err := Int(1).Compare(Float(2))
	if err != nil || lt != -1 {
		t.Errorf("1 vs 2.0: %d, %v", lt, err)
	}
	gt, err := String("b").Compare(String("a"))
	if err != nil || gt != 1 {
		t.Errorf("b vs a: %d, %v", gt, err)
	}
	if _, err := String("a").Compare(Int(1)); err == nil {
		t.Error("string vs int compare should error")
	}
	if _, err := Bool(true).Compare(Bool(false)); err == nil {
		t.Error("bool compare should error")
	}
}

func TestArith(t *testing.T) {
	add, err := Int(2).Arith('+', Int(3))
	if err != nil || add.Kind() != KindInt || add.IntVal() != 5 {
		t.Errorf("2+3 = %v (%v)", add, err)
	}
	// Division always yields float (Query 2 averages).
	div, err := Int(7).Arith('/', Int(2))
	if err != nil || div.Kind() != KindFloat || div.FloatVal() != 3.5 {
		t.Errorf("7/2 = %v (%v)", div, err)
	}
	mix, err := Int(2).Arith('*', Float(1.5))
	if err != nil || mix.FloatVal() != 3 {
		t.Errorf("2*1.5 = %v (%v)", mix, err)
	}
	if _, err := Int(1).Arith('/', Int(0)); err == nil {
		t.Error("division by zero should error")
	}
	if _, err := Int(1).Arith('%', Int(0)); err == nil {
		t.Error("modulo by zero should error")
	}
	if _, err := String("a").Arith('+', Int(1)); err == nil {
		t.Error("string arithmetic should error")
	}
	mod, err := Int(7).Arith('%', Int(3))
	if err != nil || mod.IntVal() != 1 {
		t.Errorf("7%%3 = %v (%v)", mod, err)
	}
	fmod, err := Float(7.5).Arith('%', Float(2))
	if err != nil || math.Abs(fmod.FloatVal()-1.5) > 1e-12 {
		t.Errorf("7.5%%2 = %v (%v)", fmod, err)
	}
}

func TestNeg(t *testing.T) {
	n, err := Int(4).Neg()
	if err != nil || n.IntVal() != -4 {
		t.Errorf("neg 4 = %v (%v)", n, err)
	}
	f, err := Float(2.5).Neg()
	if err != nil || f.FloatVal() != -2.5 {
		t.Errorf("neg 2.5 = %v (%v)", f, err)
	}
	if _, err := String("x").Neg(); err == nil {
		t.Error("negating string should error")
	}
}

func TestStringRendering(t *testing.T) {
	cases := map[string]Value{
		"null":   Null,
		"hello":  String("hello"),
		"42":     Int(42),
		"2.5":    Float(2.5),
		"true":   Bool(true),
		"{a, b}": SetOf("b", "a"),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestWildcardMatch(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"%osql.exe", `C:\tools\osql.exe`, true},
		{"%osql.exe", "osql.exe", true},
		{"%osql.exe", "osql.exe.bak", false},
		{"%cmd.exe", `C:\Windows\System32\cmd.exe`, true},
		{"backup%.dmp", "backup1.dmp", true},
		{"%", "", true},
		{"%", "anything", true},
		{"", "", true},
		{"", "x", false},
		{"a%b%c", "aXXbYYc", true},
		{"a%b%c", "abc", true},
		{"a%b%c", "acb", false},
		{"OSQL.EXE", "osql.exe", true}, // case-insensitive
		{"%excel%", `C:\Program Files\Microsoft Office\EXCEL.EXE`, true},
	}
	for _, c := range cases {
		if got := WildcardMatch(c.pattern, c.s); got != c.want {
			t.Errorf("WildcardMatch(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

// Property: a union b has cardinality >= max(|a|,|b|) and every member of a
// and b is contained in it.
func TestUnionProperty(t *testing.T) {
	f := func(as, bs []string) bool {
		a, b := SetOf(as...), SetOf(bs...)
		u, err := a.Union(b)
		if err != nil {
			return false
		}
		if u.SetLen() < a.SetLen() || u.SetLen() < b.SetLen() {
			return false
		}
		for _, m := range a.SetMembers() {
			if !u.SetContains(m) {
				return false
			}
		}
		for _, m := range b.SetMembers() {
			if !u.SetContains(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: diff removes exactly the intersection: |a diff b| = |a| - |a ∩ b|.
func TestDiffProperty(t *testing.T) {
	f := func(as, bs []string) bool {
		a, b := SetOf(as...), SetOf(bs...)
		d, err1 := a.Diff(b)
		i, err2 := a.Intersect(b)
		if err1 != nil || err2 != nil {
			return false
		}
		return d.SetLen() == a.SetLen()-i.SetLen()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: wildcard '%'+s matches any string ending in s.
func TestWildcardSuffixProperty(t *testing.T) {
	f := func(prefix, suffix string) bool {
		return WildcardMatch("%"+suffix, prefix+suffix)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: arithmetic on ints matches native arithmetic.
func TestArithProperty(t *testing.T) {
	f := func(a, b int32) bool {
		sum, err := Int(int64(a)).Arith('+', Int(int64(b)))
		if err != nil || sum.IntVal() != int64(a)+int64(b) {
			return false
		}
		prod, err := Int(int64(a)).Arith('*', Int(int64(b)))
		return err == nil && prod.IntVal() == int64(a)*int64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
