// Package window implements the sliding-window state maintainer of the SAQL
// engine: event-time window assignment (tumbling and hopping windows),
// per-group aggregation within each window, watermark-driven window closing,
// and the per-group state-history rings that back the ss[k] syntax.
package window

import (
	"fmt"
	"sort"
	"time"

	"saql/internal/agg"
	"saql/internal/event"
	"saql/internal/value"
)

// ID identifies a window by its start instant (unix nanoseconds).
type ID int64

// Start returns the window's start time.
func (id ID) Start() time.Time { return time.Unix(0, int64(id)) }

// Spec describes a window: length and hop. A zero Hop means tumbling
// (hop == length).
type Spec struct {
	Length time.Duration
	Hop    time.Duration
}

// EffectiveHop returns the hop, defaulting to Length.
func (s Spec) EffectiveHop() time.Duration {
	if s.Hop > 0 {
		return s.Hop
	}
	return s.Length
}

// eachWindow calls f with the ID of every window containing the instant ts
// (unix nanoseconds), newest first. It is the allocation-free core shared
// by AssignTo and Manager.Touch.
func (s Spec) eachWindow(ts int64, f func(ID)) {
	hop := s.EffectiveHop().Nanoseconds()
	length := s.Length.Nanoseconds()
	// Latest window start <= ts, aligned to hop.
	latest := ts - mod(ts, hop)
	for start := latest; start > ts-length; start -= hop {
		f(ID(start))
	}
}

// AssignTo returns the IDs of all windows containing t, in ascending start
// order. For tumbling windows this is exactly one ID; for hopping windows,
// ceil(Length/Hop) of them.
func (s Spec) AssignTo(t time.Time) []ID {
	return s.AssignAppend(nil, t)
}

// AssignAppend appends the IDs of all windows containing t to dst, in
// ascending start order, and returns the extended slice. It sits on the
// per-pattern-hit hot path: the tumbling case emits its single ID directly,
// and the hopping case walks starts upward from the earliest containing
// window, so neither path sorts or allocates beyond dst's growth.
//
//saql:hotpath
func (s Spec) AssignAppend(dst []ID, t time.Time) []ID {
	ts := t.UnixNano()
	hop := s.EffectiveHop().Nanoseconds()
	length := s.Length.Nanoseconds()
	// Latest window start <= ts, aligned to hop.
	latest := ts - mod(ts, hop)
	if hop >= length {
		// Tumbling (or gapped, hop > length): at most one window.
		if latest+length <= ts {
			return dst // ts falls in the gap between windows
		}
		return append(dst, ID(latest))
	}
	// Hopping: the containing starts are latest, latest-hop, ... > ts-length.
	n := (latest - (ts - length) + hop - 1) / hop
	for start := latest - (n-1)*hop; start <= latest; start += hop {
		dst = append(dst, ID(start))
	}
	return dst
}

// mod is a non-negative modulo (events before the unix epoch still align).
func mod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

// End returns the exclusive end instant of window id.
func (s Spec) End(id ID) time.Time { return id.Start().Add(s.Length) }

// FieldSpec declares one state field: its name and an aggregator factory
// invocation (name + literal params).
type FieldSpec struct {
	Name      string
	AggName   string
	AggParams []value.Value
}

// Group accumulates one group's aggregators within one window, along with
// representative entity/event bindings used later to evaluate alert and
// return expressions for the group (SAQL returns the attributes of the
// group's matched events, e.g. `return p, ss[0].avg_amount`).
type Group struct {
	Key      string
	Aggs     []agg.Aggregator
	Entities map[string]*event.Entity
	Events   map[string]*event.Event
	Count    int // events folded into this group this window
}

// Snapshot is the frozen state of one group for one closed window.
type Snapshot struct {
	WindowID ID
	Fields   map[string]value.Value
	Entities map[string]*event.Entity
	Events   map[string]*event.Event
	Count    int
}

// openWindow is one in-flight window.
type openWindow struct {
	id     ID
	groups map[string]*Group
}

// Closed describes one closed window delivered by Advance.
type Closed struct {
	ID     ID
	End    time.Time
	Groups map[string]*Group
}

// Manager assigns events to windows and closes windows as the watermark
// (max event time observed) passes their end.
type Manager struct {
	spec      Spec
	fields    []FieldSpec
	open      map[ID]*openWindow
	watermark time.Time
	hasWM     bool

	// idScratch and groupScratch are reused across GroupFor calls so
	// per-event window assignment never allocates on the hot path (a
	// Manager is single-goroutine-confined).
	idScratch    []ID
	groupScratch []*Group

	// Stats.
	LateEvents int64 // events older than an already-closed window
}

// NewManager creates a window manager for the given spec and state fields.
func NewManager(spec Spec, fields []FieldSpec) (*Manager, error) {
	if spec.Length <= 0 {
		return nil, fmt.Errorf("window: non-positive window length %v", spec.Length)
	}
	for _, f := range fields {
		// Validate the aggregator factory eagerly so a bad query fails
		// at compile time, not at the first event.
		if _, err := agg.New(f.AggName, f.AggParams); err != nil {
			return nil, err
		}
	}
	return &Manager{spec: spec, fields: fields, open: map[ID]*openWindow{}}, nil
}

// Spec returns the manager's window spec.
func (m *Manager) Spec() Spec { return m.spec }

// GroupFor returns (creating if needed) the group accumulator for groupKey in
// every window containing t. It returns nil if the event is late (belongs
// only to windows that already closed). The returned slice is reused by the
// next GroupFor call: iterate it immediately, do not retain it (the *Group
// elements themselves are stable).
func (m *Manager) GroupFor(t time.Time, groupKey string) []*Group {
	m.idScratch = m.spec.AssignAppend(m.idScratch[:0], t)
	ids := m.idScratch
	out := m.groupScratch[:0]
	for _, id := range ids {
		if m.hasWM && !m.spec.End(id).After(m.watermark) {
			// Window already closed; count as late.
			m.LateEvents++
			continue
		}
		w, ok := m.open[id]
		if !ok {
			w = &openWindow{id: id, groups: map[string]*Group{}}
			m.open[id] = w
		}
		g, ok := w.groups[groupKey]
		if !ok {
			g = &Group{
				Key:      groupKey,
				Aggs:     make([]agg.Aggregator, len(m.fields)),
				Entities: map[string]*event.Entity{},
				Events:   map[string]*event.Event{},
			}
			for i, f := range m.fields {
				a, err := agg.New(f.AggName, f.AggParams)
				if err != nil {
					// Validated in NewManager; unreachable.
					panic(err)
				}
				g.Aggs[i] = a
			}
			w.groups[groupKey] = g
		}
		out = append(out, g)
	}
	m.groupScratch = out
	if len(out) == 0 {
		return nil
	}
	return out
}

// Touch opens the windows containing t without folding any group state.
// Sharded query replicas use it for events owned by another shard: the
// window must still exist (and later close) here so that window-close
// counts and empty-snapshot cadence stay identical on every shard, but no
// group accumulates the event.
func (m *Manager) Touch(t time.Time) {
	// eachWindow keeps this allocation-free: Touch sits on the sharded
	// hot path for every non-owned pattern hit.
	m.spec.eachWindow(t.UnixNano(), func(id ID) {
		if m.hasWM && !m.spec.End(id).After(m.watermark) {
			// Closed here too (the owning shard counts it as late).
			return
		}
		if _, ok := m.open[id]; !ok {
			m.open[id] = &openWindow{id: id, groups: map[string]*Group{}}
		}
	})
}

// Advance moves the watermark to t and returns all windows whose end has
// passed, in ascending end order.
func (m *Manager) Advance(t time.Time) []Closed {
	if m.hasWM && !t.After(m.watermark) {
		return nil
	}
	m.watermark = t
	m.hasWM = true
	var closed []Closed
	for id, w := range m.open {
		if !m.spec.End(id).After(t) {
			closed = append(closed, Closed{ID: id, End: m.spec.End(id), Groups: w.groups})
			delete(m.open, id)
		}
	}
	sort.Slice(closed, func(i, j int) bool { return closed[i].ID < closed[j].ID })
	return closed
}

// Flush closes all remaining open windows (end of stream), in order.
func (m *Manager) Flush() []Closed {
	var closed []Closed
	for id, w := range m.open {
		closed = append(closed, Closed{ID: id, End: m.spec.End(id), Groups: w.groups})
		delete(m.open, id)
	}
	sort.Slice(closed, func(i, j int) bool { return closed[i].ID < closed[j].ID })
	return closed
}

// OpenWindows reports how many windows are currently open.
func (m *Manager) OpenWindows() int { return len(m.open) }

// SnapshotGroup freezes g's aggregates for closed window id.
func (m *Manager) SnapshotGroup(id ID, g *Group) *Snapshot {
	fields := make(map[string]value.Value, len(m.fields))
	for i, f := range m.fields {
		fields[f.Name] = g.Aggs[i].Result()
	}
	return &Snapshot{WindowID: id, Fields: fields, Entities: g.Entities, Events: g.Events, Count: g.Count}
}

// EmptySnapshot produces the snapshot a group would have for a window with
// no matched events (avg/sum 0, empty set, ...): used to keep state history
// contiguous for groups that temporarily go quiet.
func (m *Manager) EmptySnapshot(id ID) *Snapshot {
	fields := make(map[string]value.Value, len(m.fields))
	for _, f := range m.fields {
		a, err := agg.New(f.AggName, f.AggParams)
		if err != nil {
			panic(err) // validated in NewManager
		}
		fields[f.Name] = a.Result()
	}
	return &Snapshot{WindowID: id, Fields: fields}
}

// History is a fixed-depth ring of a group's most recent snapshots.
// Index 0 is the most recently closed window. Push runs in O(1) with zero
// allocations after the ring storage exists: one window close per group
// per window makes this a hot path at high group cardinality.
type History struct {
	depth int
	buf   []*Snapshot // ring storage, allocated on first Push
	head  int         // index of the newest snapshot in buf
	n     int         // retained count (<= depth)
	total int         // total snapshots ever pushed (training counters)
}

// NewHistory creates a history ring with the given depth (>= 1).
func NewHistory(depth int) *History {
	if depth < 1 {
		depth = 1
	}
	return &History{depth: depth}
}

// Push adds the newest snapshot, evicting the oldest beyond depth.
//
//saql:hotpath
func (h *History) Push(s *Snapshot) {
	if h.buf == nil {
		h.buf = make([]*Snapshot, h.depth)
		h.head = h.depth - 1 // first advance lands on index 0
	}
	h.head++
	if h.head == h.depth {
		h.head = 0
	}
	h.buf[h.head] = s
	if h.n < h.depth {
		h.n++
	}
	h.total++
}

// At returns the k-th most recent snapshot (0 = newest), or nil.
func (h *History) At(k int) *Snapshot {
	if k < 0 || k >= h.n {
		return nil
	}
	i := h.head - k
	if i < 0 {
		i += h.depth
	}
	return h.buf[i]
}

// Len returns the number of retained snapshots.
func (h *History) Len() int { return h.n }

// Total returns how many snapshots have ever been pushed.
func (h *History) Total() int { return h.total }

// Depth returns the ring capacity.
func (h *History) Depth() int { return h.depth }

// StateField implements expr.StateView over the history ring.
func (h *History) StateField(histIndex int, field string) (value.Value, bool) {
	s := h.At(histIndex)
	if s == nil {
		// Tolerant semantics: missing history resolves to null.
		return value.Null, true
	}
	v, ok := s.Fields[field]
	if !ok {
		return value.Null, true
	}
	return v, true
}
