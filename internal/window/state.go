package window

// Checkpoint support: the Manager serialises its open windows (per-group
// aggregator accumulators and representative bindings) and watermark, and
// History serialises its snapshot ring, into the wire format. Decoding uses
// merge semantics so a restore can fold several per-shard state blobs into
// one manager (or re-split one logical state across a different shard
// count): windows union, the watermark advances to the max observed, and a
// keep filter selects which group keys this replica owns — filtered groups
// are still fully parsed (the blob must decode as a unit) but fold no state,
// exactly like Touch during live sharded execution.

import (
	"fmt"
	"sort"
	"time"

	"saql/internal/agg"
	"saql/internal/event"
	"saql/internal/value"
	"saql/internal/wire"
)

// AppendState appends the manager's full state: watermark, late-event
// counter, and every open window's groups with their aggregator
// accumulators. Windows and groups are emitted in sorted order so equal
// states encode identically.
func (m *Manager) AppendState(b []byte) ([]byte, error) {
	b = wire.AppendBool(b, m.hasWM)
	if m.hasWM {
		b = wire.AppendTime(b, m.watermark)
	} else {
		b = wire.AppendVarint(b, 0)
	}
	b = wire.AppendVarint(b, m.LateEvents)

	ids := make([]ID, 0, len(m.open))
	for id := range m.open {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	b = wire.AppendUvarint(b, uint64(len(ids)))
	for _, id := range ids {
		w := m.open[id]
		b = wire.AppendVarint(b, int64(id))
		keys := make([]string, 0, len(w.groups))
		for k := range w.groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b = wire.AppendUvarint(b, uint64(len(keys)))
		for _, key := range keys {
			var err error
			if b, err = m.appendGroup(b, w.groups[key]); err != nil {
				return b, err
			}
		}
	}
	return b, nil
}

func (m *Manager) appendGroup(b []byte, g *Group) ([]byte, error) {
	b = wire.AppendString(b, g.Key)
	b = wire.AppendVarint(b, int64(g.Count))
	b = appendEntities(b, g.Entities)
	b = appendEvents(b, g.Events)
	b = wire.AppendUvarint(b, uint64(len(g.Aggs)))
	for _, a := range g.Aggs {
		var err error
		if b, err = agg.AppendState(b, a); err != nil {
			return b, err
		}
	}
	return b, nil
}

// ReadState folds an encoded manager state into m. keep selects the group
// keys this replica owns (nil keeps all); disjoint folds the per-owner
// counters (LateEvents) that must be restored on exactly one replica. The
// window set and watermark are merged on every replica, so window close
// cadence stays identical across shards after a restore.
func (m *Manager) ReadState(r *wire.Reader, keep func(string) bool, disjoint bool) error {
	hasWM := r.Bool()
	wmNanos := r.Varint()
	late := r.Varint()
	if r.Err() != nil {
		return r.Err()
	}
	if hasWM {
		wm := time.Unix(0, wmNanos)
		if !m.hasWM || wm.After(m.watermark) {
			m.watermark = wm
			m.hasWM = true
		}
	}
	if disjoint {
		m.LateEvents += late
	}
	nWin := r.Count(2)
	for i := 0; i < nWin && r.Err() == nil; i++ {
		id := ID(r.Varint())
		w, ok := m.open[id]
		if !ok {
			w = &openWindow{id: id, groups: map[string]*Group{}}
			m.open[id] = w
		}
		nGroups := r.Count(2)
		for j := 0; j < nGroups && r.Err() == nil; j++ {
			g, err := m.readGroup(r)
			if err != nil {
				return err
			}
			if keep == nil || keep(g.Key) {
				w.groups[g.Key] = g
			}
		}
	}
	return r.Err()
}

func (m *Manager) readGroup(r *wire.Reader) (*Group, error) {
	g := &Group{
		Key:      r.String(),
		Count:    int(r.Varint()),
		Entities: readEntities(r),
		Events:   readEvents(r),
	}
	if g.Entities == nil {
		g.Entities = map[string]*event.Entity{}
	}
	if g.Events == nil {
		g.Events = map[string]*event.Event{}
	}
	nAggs := r.Count(1)
	if r.Err() != nil {
		return nil, r.Err()
	}
	if nAggs != len(m.fields) {
		return nil, fmt.Errorf("window: snapshot has %d aggregators, manager has %d state fields", nAggs, len(m.fields))
	}
	g.Aggs = make([]agg.Aggregator, nAggs)
	for i, f := range m.fields {
		a, err := agg.New(f.AggName, f.AggParams)
		if err != nil {
			return nil, err // validated in NewManager; unreachable
		}
		if err := agg.ReadState(r, a); err != nil {
			return nil, err
		}
		g.Aggs[i] = a
	}
	return g, r.Err()
}

// ---------------------------------------------------------------------------
// Snapshot and history codec
// ---------------------------------------------------------------------------

// AppendSnapshot appends one frozen group snapshot.
func AppendSnapshot(b []byte, s *Snapshot) []byte {
	b = wire.AppendVarint(b, int64(s.WindowID))
	b = wire.AppendVarint(b, int64(s.Count))
	names := make([]string, 0, len(s.Fields))
	for n := range s.Fields {
		names = append(names, n)
	}
	sort.Strings(names)
	b = wire.AppendUvarint(b, uint64(len(names)))
	for _, n := range names {
		b = wire.AppendString(b, n)
		b = wire.AppendValue(b, s.Fields[n])
	}
	b = appendEntities(b, s.Entities)
	b = appendEvents(b, s.Events)
	return b
}

// ReadSnapshot decodes one group snapshot.
func ReadSnapshot(r *wire.Reader) *Snapshot {
	s := &Snapshot{
		WindowID: ID(r.Varint()),
		Count:    int(r.Varint()),
	}
	nFields := r.Count(2)
	if nFields > 0 {
		s.Fields = make(map[string]value.Value, nFields)
	}
	for i := 0; i < nFields && r.Err() == nil; i++ {
		n := r.String()
		s.Fields[n] = r.ReadValue()
	}
	s.Entities = readEntities(r)
	s.Events = readEvents(r)
	return s
}

// AppendState appends the history ring: depth, lifetime total, and the
// retained snapshots oldest first.
func (h *History) AppendState(b []byte) []byte {
	b = wire.AppendVarint(b, int64(h.depth))
	b = wire.AppendVarint(b, int64(h.total))
	b = wire.AppendUvarint(b, uint64(h.n))
	for k := h.n - 1; k >= 0; k-- {
		b = AppendSnapshot(b, h.At(k))
	}
	return b
}

// ReadState restores the ring from r. The encoded depth must match h's
// (histories are recreated from the same compiled query the snapshot was
// taken under).
func (h *History) ReadState(r *wire.Reader) error {
	depth := int(r.Varint())
	total := int(r.Varint())
	if r.Err() != nil {
		return r.Err()
	}
	if depth != h.depth {
		return fmt.Errorf("window: history depth mismatch: snapshot %d, query %d", depth, h.depth)
	}
	n := r.Count(4)
	for i := 0; i < n && r.Err() == nil; i++ {
		h.Push(ReadSnapshot(r))
	}
	if r.Err() == nil {
		// Total drives invariant/backfill counters; it may exceed the
		// retained count.
		h.total = total
	}
	return r.Err()
}

// ---------------------------------------------------------------------------
// Binding maps
// ---------------------------------------------------------------------------

func appendEntities(b []byte, m map[string]*event.Entity) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b = wire.AppendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		b = wire.AppendString(b, k)
		b = wire.AppendEntity(b, m[k])
	}
	return b
}

func readEntities(r *wire.Reader) map[string]*event.Entity {
	n := r.Count(2)
	if n == 0 {
		return nil
	}
	m := make(map[string]*event.Entity, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.String()
		e := r.ReadEntity()
		m[k] = &e
	}
	return m
}

func appendEvents(b []byte, m map[string]*event.Event) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b = wire.AppendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		b = wire.AppendString(b, k)
		b = wire.AppendEvent(b, m[k])
	}
	return b
}

func readEvents(r *wire.Reader) map[string]*event.Event {
	n := r.Count(2)
	if n == 0 {
		return nil
	}
	m := make(map[string]*event.Event, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.String()
		m[k] = r.ReadEvent()
	}
	return m
}
