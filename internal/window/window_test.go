package window

import (
	"testing"
	"testing/quick"
	"time"

	"saql/internal/value"
)

var base = time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)

func specFields() []FieldSpec {
	return []FieldSpec{
		{Name: "total", AggName: "sum"},
		{Name: "n", AggName: "count"},
	}
}

func TestAssignToTumbling(t *testing.T) {
	s := Spec{Length: 10 * time.Minute}
	ids := s.AssignTo(base.Add(3 * time.Minute))
	if len(ids) != 1 {
		t.Fatalf("tumbling assignment = %d windows, want 1", len(ids))
	}
	if !ids[0].Start().Equal(base) {
		t.Errorf("window start = %v, want %v", ids[0].Start(), base)
	}
	if !s.End(ids[0]).Equal(base.Add(10 * time.Minute)) {
		t.Errorf("window end = %v", s.End(ids[0]))
	}
	// Exactly on a boundary belongs to the window starting there.
	ids = s.AssignTo(base.Add(10 * time.Minute))
	if len(ids) != 1 || !ids[0].Start().Equal(base.Add(10*time.Minute)) {
		t.Errorf("boundary assignment = %v", ids)
	}
}

func TestAssignToHopping(t *testing.T) {
	s := Spec{Length: 10 * time.Minute, Hop: 5 * time.Minute}
	ids := s.AssignTo(base.Add(7 * time.Minute))
	if len(ids) != 2 {
		t.Fatalf("hopping assignment = %d windows, want 2", len(ids))
	}
	if !ids[0].Start().Equal(base) || !ids[1].Start().Equal(base.Add(5*time.Minute)) {
		t.Errorf("window starts = %v, %v", ids[0].Start(), ids[1].Start())
	}
}

// Property: every assigned window actually contains the event time, and
// tumbling windows partition time (exactly one window per instant).
func TestAssignToProperty(t *testing.T) {
	s := Spec{Length: 10 * time.Minute}
	f := func(offsetMs uint32) bool {
		at := base.Add(time.Duration(offsetMs) * time.Millisecond)
		ids := s.AssignTo(at)
		if len(ids) != 1 {
			return false
		}
		start := ids[0].Start()
		return !at.Before(start) && at.Before(s.End(ids[0]))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	hop := Spec{Length: 10 * time.Minute, Hop: 2 * time.Minute}
	g := func(offsetMs uint32) bool {
		at := base.Add(time.Duration(offsetMs) * time.Millisecond)
		ids := hop.AssignTo(at)
		if len(ids) != 5 { // Length/Hop windows contain each instant
			return false
		}
		for _, id := range ids {
			if at.Before(id.Start()) || !at.Before(hop.End(id)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestManagerLifecycle(t *testing.T) {
	m, err := NewManager(Spec{Length: time.Minute}, specFields())
	if err != nil {
		t.Fatal(err)
	}
	groups := m.GroupFor(base.Add(10*time.Second), "g1")
	if len(groups) != 1 {
		t.Fatalf("groups = %d", len(groups))
	}
	g := groups[0]
	_ = g.Aggs[0].Add(value.Float(100))
	_ = g.Aggs[1].Add(value.Int(1))

	if closed := m.Advance(base.Add(30 * time.Second)); len(closed) != 0 {
		t.Errorf("window closed early: %v", closed)
	}
	closed := m.Advance(base.Add(61 * time.Second))
	if len(closed) != 1 {
		t.Fatalf("closed = %d, want 1", len(closed))
	}
	snap := m.SnapshotGroup(closed[0].ID, closed[0].Groups["g1"])
	if got, _ := snap.Fields["total"].AsFloat(); got != 100 {
		t.Errorf("total = %v", snap.Fields["total"])
	}
	if snap.Fields["n"].IntVal() != 1 {
		t.Errorf("n = %v", snap.Fields["n"])
	}
	if m.OpenWindows() != 0 {
		t.Errorf("open windows = %d", m.OpenWindows())
	}
}

func TestManagerLateEvents(t *testing.T) {
	m, err := NewManager(Spec{Length: time.Minute}, specFields())
	if err != nil {
		t.Fatal(err)
	}
	m.GroupFor(base.Add(10*time.Second), "g")
	m.Advance(base.Add(2 * time.Minute))
	// This event belongs to the already-closed first window.
	if gs := m.GroupFor(base.Add(20*time.Second), "g"); len(gs) != 0 {
		t.Errorf("late event assigned to %d windows, want 0", len(gs))
	}
	if m.LateEvents != 1 {
		t.Errorf("late events = %d", m.LateEvents)
	}
}

func TestManagerMultipleGroupsAndWindows(t *testing.T) {
	m, _ := NewManager(Spec{Length: time.Minute}, specFields())
	for i := 0; i < 5; i++ {
		at := base.Add(time.Duration(i*30) * time.Second)
		for _, key := range []string{"a", "b"} {
			for _, g := range m.GroupFor(at, key) {
				_ = g.Aggs[0].Add(value.Float(1))
			}
		}
	}
	closed := m.Advance(base.Add(5 * time.Minute))
	if len(closed) != 3 {
		t.Fatalf("closed = %d, want 3", len(closed))
	}
	for _, c := range closed {
		if len(c.Groups) != 2 {
			t.Errorf("window %v groups = %d, want 2", c.ID.Start(), len(c.Groups))
		}
	}
	// Closure order is ascending.
	for i := 1; i < len(closed); i++ {
		if closed[i].ID < closed[i-1].ID {
			t.Error("closed windows out of order")
		}
	}
}

func TestManagerFlush(t *testing.T) {
	m, _ := NewManager(Spec{Length: time.Hour}, specFields())
	m.GroupFor(base, "g")
	closed := m.Flush()
	if len(closed) != 1 {
		t.Fatalf("flush closed = %d", len(closed))
	}
	if m.OpenWindows() != 0 {
		t.Error("flush left windows open")
	}
}

func TestEmptySnapshot(t *testing.T) {
	m, _ := NewManager(Spec{Length: time.Minute}, []FieldSpec{
		{Name: "s", AggName: "sum"},
		{Name: "st", AggName: "set"},
	})
	snap := m.EmptySnapshot(ID(base.UnixNano()))
	if got, _ := snap.Fields["s"].AsFloat(); got != 0 {
		t.Errorf("empty sum = %v", snap.Fields["s"])
	}
	if snap.Fields["st"].SetLen() != 0 {
		t.Errorf("empty set = %v", snap.Fields["st"])
	}
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(Spec{Length: 0}, nil); err == nil {
		t.Error("zero-length window should fail")
	}
	if _, err := NewManager(Spec{Length: time.Second}, []FieldSpec{{Name: "x", AggName: "bogus"}}); err == nil {
		t.Error("bad aggregator should fail at manager construction")
	}
}

func TestHistoryRing(t *testing.T) {
	h := NewHistory(3)
	for i := 1; i <= 5; i++ {
		h.Push(&Snapshot{Fields: map[string]value.Value{"x": value.Int(int64(i))}})
	}
	if h.Len() != 3 || h.Total() != 5 || h.Depth() != 3 {
		t.Errorf("len/total/depth = %d/%d/%d", h.Len(), h.Total(), h.Depth())
	}
	// Index 0 is newest.
	for k, want := range map[int]int64{0: 5, 1: 4, 2: 3} {
		v, ok := h.StateField(k, "x")
		if !ok || v.IntVal() != want {
			t.Errorf("ss[%d].x = %v, want %d", k, v, want)
		}
	}
	if h.At(3) != nil {
		t.Error("out-of-range At should be nil")
	}
	// Missing index and missing field resolve to null (tolerant).
	if v, ok := h.StateField(9, "x"); !ok || !v.IsNull() {
		t.Errorf("missing index = %v, %v", v, ok)
	}
	if v, ok := h.StateField(0, "nope"); !ok || !v.IsNull() {
		t.Errorf("missing field = %v, %v", v, ok)
	}
}

func TestHistoryDepthClamp(t *testing.T) {
	h := NewHistory(0)
	h.Push(&Snapshot{})
	if h.Depth() != 1 || h.Len() != 1 {
		t.Errorf("depth/len = %d/%d", h.Depth(), h.Len())
	}
}

func TestAssignToHoppingAscendingNoSort(t *testing.T) {
	// Dense hopping spec: every instant is in Length/Hop windows and the
	// IDs must come out in ascending order straight from the emitter.
	s := Spec{Length: 10 * time.Minute, Hop: time.Minute}
	for off := 0; off < 25; off++ {
		at := base.Add(time.Duration(off) * 37 * time.Second)
		ids := s.AssignTo(at)
		if len(ids) != 10 {
			t.Fatalf("at +%d: %d windows, want 10", off, len(ids))
		}
		for i := range ids {
			if i > 0 && ids[i] <= ids[i-1] {
				t.Fatalf("at +%d: ids not strictly ascending: %v", off, ids)
			}
			if at.Before(ids[i].Start()) || !at.Before(s.End(ids[i])) {
				t.Fatalf("at +%d: window %v does not contain event", off, ids[i].Start())
			}
		}
	}
}

func TestAssignToGappedHop(t *testing.T) {
	// Hop larger than length leaves gaps: events in a gap belong nowhere.
	s := Spec{Length: time.Minute, Hop: 5 * time.Minute}
	if ids := s.AssignTo(base.Add(30 * time.Second)); len(ids) != 1 {
		t.Errorf("in-window event assigned to %v", ids)
	}
	if ids := s.AssignTo(base.Add(3 * time.Minute)); len(ids) != 0 {
		t.Errorf("gap event assigned to %v", ids)
	}
}

// The ring must not allocate once its storage exists, and window
// assignment through the manager's scratch buffer must not allocate at all.
func TestHotPathAllocations(t *testing.T) {
	h := NewHistory(8)
	snap := &Snapshot{}
	h.Push(snap) // first push allocates the ring storage
	if allocs := testing.AllocsPerRun(100, func() { h.Push(snap) }); allocs != 0 {
		t.Errorf("History.Push allocates %.1f objects/op, want 0", allocs)
	}

	m, err := NewManager(Spec{Length: time.Minute}, nil)
	if err != nil {
		t.Fatal(err)
	}
	at := base.Add(10 * time.Second)
	m.GroupFor(at, "g") // warm: opens the window, sizes the scratch buffer
	if allocs := testing.AllocsPerRun(100, func() { m.GroupFor(at, "g") }); allocs != 0 {
		t.Errorf("tumbling GroupFor allocates %.1f objects/op, want 0", allocs)
	}

	hop, err := NewManager(Spec{Length: time.Minute, Hop: 10 * time.Second}, nil)
	if err != nil {
		t.Fatal(err)
	}
	hop.GroupFor(at, "g")
	if allocs := testing.AllocsPerRun(100, func() { hop.GroupFor(at, "g") }); allocs != 0 {
		t.Errorf("hopping GroupFor allocates %.1f objects/op, want 0", allocs)
	}
}

func BenchmarkHistoryPush(b *testing.B) {
	h := NewHistory(8)
	snap := &Snapshot{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Push(snap)
	}
}

func BenchmarkAssignAppend(b *testing.B) {
	at := base.Add(17 * time.Second)
	b.Run("tumbling", func(b *testing.B) {
		s := Spec{Length: time.Minute}
		var ids []ID
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ids = s.AssignAppend(ids[:0], at)
		}
	})
	b.Run("hopping", func(b *testing.B) {
		s := Spec{Length: time.Minute, Hop: 10 * time.Second}
		var ids []ID
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ids = s.AssignAppend(ids[:0], at)
		}
	})
}

func TestNegativeTimeAlignment(t *testing.T) {
	// Events before the epoch must still align consistently.
	s := Spec{Length: time.Minute}
	at := time.Unix(-90, 0)
	ids := s.AssignTo(at)
	if len(ids) != 1 {
		t.Fatalf("ids = %v", ids)
	}
	if at.Before(ids[0].Start()) || !at.Before(s.End(ids[0])) {
		t.Errorf("window [%v, %v) does not contain %v", ids[0].Start(), s.End(ids[0]), at)
	}
}
