// Package parser implements the recursive-descent parser for the SAQL
// language, producing internal/ast nodes. It accepts the full grammar of the
// paper's Queries 1–4: global constraints, event patterns with entity
// constraints and operation alternation, temporal relationships, sliding
// windows, state blocks with grouping, invariant blocks, cluster specs,
// alert conditions (including |set| cardinality), and return clauses.
package parser

import (
	"fmt"
	"strings"
	"time"

	"saql/internal/ast"
	"saql/internal/event"
	"saql/internal/lexer"
	"saql/internal/value"
)

// Error is a parse error with source position.
type Error struct {
	Pos lexer.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("parse error at %s: %s", e.Pos, e.Msg) }

// Parser holds the token stream and parsing state.
type Parser struct {
	toks []lexer.Token
	pos  int
	src  string
}

// Parse tokenizes and parses a complete SAQL query.
func Parse(src string) (*ast.Query, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: src}
	return p.parseQuery()
}

func (p *Parser) cur() lexer.Token { return p.toks[p.pos] }
func (p *Parser) peek() lexer.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() lexer.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) at(t lexer.TokenType) bool { return p.cur().Type == t }

func (p *Parser) accept(t lexer.TokenType) bool {
	if p.at(t) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(t lexer.TokenType) (lexer.Token, error) {
	if !p.at(t) {
		return lexer.Token{}, p.errorf("expected %s, found %s", t, p.cur())
	}
	return p.next(), nil
}

func (p *Parser) errorf(format string, args ...any) error {
	return &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

// isEntityKeyword reports whether an identifier begins an entity pattern.
func isEntityKeyword(s string) bool {
	switch strings.ToLower(s) {
	case "proc", "process", "file", "ip", "conn", "netconn":
		return true
	}
	return false
}

func (p *Parser) parseQuery() (*ast.Query, error) {
	q := &ast.Query{SourcePos: p.cur().Pos, SourceText: p.src}
	for !p.at(lexer.EOF) {
		switch {
		case p.at(lexer.SEMI):
			p.next()

		case p.at(lexer.IDENT) && isEntityKeyword(p.cur().Text):
			pat, win, err := p.parseEventPattern()
			if err != nil {
				return nil, err
			}
			q.Patterns = append(q.Patterns, pat)
			if win != nil {
				if q.Window != nil {
					return nil, p.errorf("duplicate #time window specification")
				}
				q.Window = win
			}

		case p.at(lexer.IDENT):
			// Global constraint: attr relop literal.
			g, err := p.parseGlobalConstraint()
			if err != nil {
				return nil, err
			}
			q.Globals = append(q.Globals, g)

		case p.at(lexer.KwWith):
			if q.Temporal != nil {
				return nil, p.errorf("duplicate 'with' temporal clause")
			}
			t, err := p.parseTemporal()
			if err != nil {
				return nil, err
			}
			q.Temporal = t

		case p.at(lexer.KwState):
			if q.State != nil {
				return nil, p.errorf("duplicate state block")
			}
			s, err := p.parseStateBlock()
			if err != nil {
				return nil, err
			}
			q.State = s

		case p.at(lexer.KwInvariant):
			if q.Invariant != nil {
				return nil, p.errorf("duplicate invariant block")
			}
			b, err := p.parseInvariantBlock()
			if err != nil {
				return nil, err
			}
			q.Invariant = b

		case p.at(lexer.KwCluster):
			if q.Cluster != nil {
				return nil, p.errorf("duplicate cluster specification")
			}
			c, err := p.parseClusterSpec()
			if err != nil {
				return nil, err
			}
			q.Cluster = c

		case p.at(lexer.KwAlert):
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			q.Alerts = append(q.Alerts, e)

		case p.at(lexer.KwReturn):
			if q.Return != nil {
				return nil, p.errorf("duplicate return clause")
			}
			r, err := p.parseReturn()
			if err != nil {
				return nil, err
			}
			q.Return = r

		case p.at(lexer.PARAM):
			return nil, p.errorf("parameter reference $%s is only valid inside a queryset document, where 'param' declarations define its value (see ParseQuerySet / Engine.Apply)", p.cur().Text)

		default:
			return nil, p.errorf("unexpected token %s at top level", p.cur())
		}
	}
	if len(q.Patterns) == 0 {
		return nil, &Error{Pos: q.SourcePos, Msg: "query declares no event pattern"}
	}
	return q, nil
}

// parseGlobalConstraint parses `agentid = xxx` (value may be an unquoted
// identifier, a string, or a number).
func (p *Parser) parseGlobalConstraint() (*ast.Constraint, error) {
	nameTok, _ := p.expect(lexer.IDENT)
	op, err := p.parseCompareOp()
	if err != nil {
		return nil, err
	}
	lit, err := p.parseLiteralish()
	if err != nil {
		return nil, err
	}
	return &ast.Constraint{Attr: strings.ToLower(nameTok.Text), Op: op, Val: lit, ConstPos: nameTok.Pos}, nil
}

func (p *Parser) parseCompareOp() (ast.CompareOp, error) {
	switch p.cur().Type {
	case lexer.EQ, lexer.EQEQ:
		p.next()
		return ast.CmpEq, nil
	case lexer.NEQ:
		p.next()
		return ast.CmpNe, nil
	case lexer.LT:
		p.next()
		return ast.CmpLt, nil
	case lexer.LE:
		p.next()
		return ast.CmpLe, nil
	case lexer.GT:
		p.next()
		return ast.CmpGt, nil
	case lexer.GE:
		p.next()
		return ast.CmpGe, nil
	default:
		return ast.CmpInvalid, p.errorf("expected comparison operator, found %s", p.cur())
	}
}

// parseLiteralish parses a literal where unquoted identifiers are accepted as
// strings (the paper writes `agentid = xxx` without quotes).
func (p *Parser) parseLiteralish() (*ast.Literal, error) {
	t := p.cur()
	switch t.Type {
	case lexer.STRING:
		p.next()
		return &ast.Literal{Val: value.String(t.Text), LitPos: t.Pos}, nil
	case lexer.NUMBER:
		p.next()
		if t.IsInt {
			return &ast.Literal{Val: value.Int(int64(t.Num)), LitPos: t.Pos}, nil
		}
		return &ast.Literal{Val: value.Float(t.Num), LitPos: t.Pos}, nil
	case lexer.IDENT:
		p.next()
		switch strings.ToLower(t.Text) {
		case "true":
			return &ast.Literal{Val: value.Bool(true), LitPos: t.Pos}, nil
		case "false":
			return &ast.Literal{Val: value.Bool(false), LitPos: t.Pos}, nil
		}
		return &ast.Literal{Val: value.String(t.Text), LitPos: t.Pos}, nil
	case lexer.MINUS:
		p.next()
		n, err := p.expect(lexer.NUMBER)
		if err != nil {
			return nil, err
		}
		if n.IsInt {
			return &ast.Literal{Val: value.Int(-int64(n.Num)), LitPos: t.Pos}, nil
		}
		return &ast.Literal{Val: value.Float(-n.Num), LitPos: t.Pos}, nil
	default:
		return nil, p.errorf("expected literal, found %s", t)
	}
}

// parseEventPattern parses one event clause and an optional trailing #time.
func (p *Parser) parseEventPattern() (*ast.EventPattern, *ast.WindowSpec, error) {
	pos := p.cur().Pos
	subj, err := p.parseEntityPattern()
	if err != nil {
		return nil, nil, err
	}
	var ops []event.Op
	for {
		opTok, err := p.expect(lexer.IDENT)
		if err != nil {
			return nil, nil, err
		}
		op, perr := event.ParseOp(strings.ToLower(opTok.Text))
		if perr != nil {
			return nil, nil, &Error{Pos: opTok.Pos, Msg: perr.Error()}
		}
		ops = append(ops, op)
		if !p.accept(lexer.OROR) {
			break
		}
	}
	obj, err := p.parseEntityPattern()
	if err != nil {
		return nil, nil, err
	}
	pat := &ast.EventPattern{Subject: subj, Ops: ops, Object: obj, PatPos: pos}
	if p.accept(lexer.KwAs) {
		aliasTok, err := p.expect(lexer.IDENT)
		if err != nil {
			return nil, nil, err
		}
		pat.Alias = aliasTok.Text
	}
	var win *ast.WindowSpec
	if p.at(lexer.HASH) {
		win, err = p.parseWindowSpec()
		if err != nil {
			return nil, nil, err
		}
	}
	return pat, win, nil
}

func (p *Parser) parseEntityPattern() (*ast.EntityPattern, error) {
	typeTok, err := p.expect(lexer.IDENT)
	if err != nil {
		return nil, err
	}
	etype, terr := event.ParseEntityType(strings.ToLower(typeTok.Text))
	if terr != nil {
		return nil, &Error{Pos: typeTok.Pos, Msg: terr.Error()}
	}
	ep := &ast.EntityPattern{Type: etype, EntPos: typeTok.Pos}
	// Optional variable: an IDENT that is not an operation keyword. A
	// variable can also be followed directly by '[' constraints.
	if p.at(lexer.IDENT) {
		if _, opErr := event.ParseOp(strings.ToLower(p.cur().Text)); opErr != nil {
			ep.Var = p.next().Text
		}
	}
	if p.accept(lexer.LBRACKET) {
		for {
			c, err := p.parseAttrConstraint()
			if err != nil {
				return nil, err
			}
			ep.Constraints = append(ep.Constraints, c)
			if !p.accept(lexer.COMMA) {
				break
			}
		}
		if _, err := p.expect(lexer.RBRACKET); err != nil {
			return nil, err
		}
	}
	return ep, nil
}

func (p *Parser) parseAttrConstraint() (*ast.AttrConstraint, error) {
	// Bare string: default-attribute wildcard match.
	if p.at(lexer.STRING) {
		t := p.next()
		return &ast.AttrConstraint{Op: ast.CmpEq, Val: &ast.Literal{Val: value.String(t.Text), LitPos: t.Pos}}, nil
	}
	nameTok, err := p.expect(lexer.IDENT)
	if err != nil {
		return nil, err
	}
	op, err := p.parseCompareOp()
	if err != nil {
		return nil, err
	}
	lit, err := p.parseLiteralish()
	if err != nil {
		return nil, err
	}
	return &ast.AttrConstraint{Attr: strings.ToLower(nameTok.Text), Op: op, Val: lit}, nil
}

// parseWindowSpec parses `#time(10 min)` or `#time(10 min, 1 min)`.
func (p *Parser) parseWindowSpec() (*ast.WindowSpec, error) {
	hashTok, _ := p.expect(lexer.HASH)
	kw, err := p.expect(lexer.IDENT)
	if err != nil {
		return nil, err
	}
	if strings.ToLower(kw.Text) != "time" {
		return nil, &Error{Pos: kw.Pos, Msg: fmt.Sprintf("expected 'time' after '#', found %q", kw.Text)}
	}
	if _, err := p.expect(lexer.LPAREN); err != nil {
		return nil, err
	}
	length, err := p.parseDuration()
	if err != nil {
		return nil, err
	}
	spec := &ast.WindowSpec{Length: length, WinPos: hashTok.Pos}
	if p.accept(lexer.COMMA) {
		hop, err := p.parseDuration()
		if err != nil {
			return nil, err
		}
		spec.Hop = hop
	}
	if _, err := p.expect(lexer.RPAREN); err != nil {
		return nil, err
	}
	if spec.Length <= 0 {
		return nil, &Error{Pos: hashTok.Pos, Msg: "window length must be positive"}
	}
	if spec.Hop < 0 || (spec.Hop > 0 && spec.Hop > spec.Length) {
		return nil, &Error{Pos: hashTok.Pos, Msg: "window hop must be positive and no longer than the window"}
	}
	return spec, nil
}

func (p *Parser) parseDuration() (time.Duration, error) {
	numTok, err := p.expect(lexer.NUMBER)
	if err != nil {
		return 0, err
	}
	unitTok, err := p.expect(lexer.IDENT)
	if err != nil {
		return 0, err
	}
	var unit time.Duration
	switch strings.ToLower(unitTok.Text) {
	case "ms", "msec", "millisecond", "milliseconds":
		unit = time.Millisecond
	case "s", "sec", "secs", "second", "seconds":
		unit = time.Second
	case "min", "mins", "minute", "minutes", "m":
		unit = time.Minute
	case "h", "hr", "hrs", "hour", "hours":
		unit = time.Hour
	case "d", "day", "days":
		unit = 24 * time.Hour
	default:
		return 0, &Error{Pos: unitTok.Pos, Msg: fmt.Sprintf("unknown time unit %q", unitTok.Text)}
	}
	return time.Duration(numTok.Num * float64(unit)), nil
}

func (p *Parser) parseTemporal() (*ast.TemporalClause, error) {
	withTok, _ := p.expect(lexer.KwWith)
	t := &ast.TemporalClause{TemPos: withTok.Pos}
	first, err := p.expect(lexer.IDENT)
	if err != nil {
		return nil, err
	}
	t.Order = append(t.Order, first.Text)
	for p.accept(lexer.ARROW) {
		id, err := p.expect(lexer.IDENT)
		if err != nil {
			return nil, err
		}
		t.Order = append(t.Order, id.Text)
	}
	if len(t.Order) < 2 {
		return nil, &Error{Pos: withTok.Pos, Msg: "temporal clause needs at least two events"}
	}
	return t, nil
}

func (p *Parser) parseStateBlock() (*ast.StateBlock, error) {
	stTok, _ := p.expect(lexer.KwState)
	blk := &ast.StateBlock{History: 1, StatePos: stTok.Pos}
	if p.accept(lexer.LBRACKET) {
		n, err := p.expect(lexer.NUMBER)
		if err != nil {
			return nil, err
		}
		if !n.IsInt || n.Num < 1 {
			return nil, &Error{Pos: n.Pos, Msg: "state history must be a positive integer"}
		}
		blk.History = int(n.Num)
		if _, err := p.expect(lexer.RBRACKET); err != nil {
			return nil, err
		}
	}
	nameTok, err := p.expect(lexer.IDENT)
	if err != nil {
		return nil, err
	}
	blk.Name = nameTok.Text
	if _, err := p.expect(lexer.LBRACE); err != nil {
		return nil, err
	}
	for !p.at(lexer.RBRACE) {
		if p.accept(lexer.SEMI) {
			continue
		}
		fname, err := p.expect(lexer.IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.ASSIGN); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		blk.Fields = append(blk.Fields, &ast.StateField{Name: fname.Text, Expr: e})
	}
	if _, err := p.expect(lexer.RBRACE); err != nil {
		return nil, err
	}
	if len(blk.Fields) == 0 {
		return nil, &Error{Pos: stTok.Pos, Msg: "state block declares no fields"}
	}
	if p.accept(lexer.KwGroup) {
		if _, err := p.expect(lexer.KwBy); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			blk.GroupBy = append(blk.GroupBy, e)
			if !p.accept(lexer.COMMA) {
				break
			}
		}
	}
	return blk, nil
}

func (p *Parser) parseInvariantBlock() (*ast.InvariantBlock, error) {
	invTok, _ := p.expect(lexer.KwInvariant)
	blk := &ast.InvariantBlock{Offline: true, InvPos: invTok.Pos}
	if _, err := p.expect(lexer.LBRACKET); err != nil {
		return nil, err
	}
	n, err := p.expect(lexer.NUMBER)
	if err != nil {
		return nil, err
	}
	if !n.IsInt || n.Num < 1 {
		return nil, &Error{Pos: n.Pos, Msg: "invariant training window count must be a positive integer"}
	}
	blk.TrainWindows = int(n.Num)
	if _, err := p.expect(lexer.RBRACKET); err != nil {
		return nil, err
	}
	if p.accept(lexer.LBRACKET) {
		switch {
		case p.accept(lexer.KwOffline):
			blk.Offline = true
		case p.accept(lexer.KwOnline):
			blk.Offline = false
		default:
			return nil, p.errorf("expected 'offline' or 'online', found %s", p.cur())
		}
		if _, err := p.expect(lexer.RBRACKET); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(lexer.LBRACE); err != nil {
		return nil, err
	}
	for !p.at(lexer.RBRACE) {
		if p.accept(lexer.SEMI) {
			continue
		}
		name, err := p.expect(lexer.IDENT)
		if err != nil {
			return nil, err
		}
		var init bool
		switch {
		case p.accept(lexer.ASSIGN):
			init = true
		case p.accept(lexer.EQ):
			init = false
		default:
			return nil, p.errorf("expected ':=' or '=' in invariant statement, found %s", p.cur())
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt := &ast.InvariantStmt{Var: name.Text, Expr: e, Init: init}
		if init {
			blk.Inits = append(blk.Inits, stmt)
		} else {
			blk.Updates = append(blk.Updates, stmt)
		}
	}
	if _, err := p.expect(lexer.RBRACE); err != nil {
		return nil, err
	}
	if len(blk.Inits) == 0 {
		return nil, &Error{Pos: invTok.Pos, Msg: "invariant block declares no variables (use 'a := empty_set')"}
	}
	return blk, nil
}

func (p *Parser) parseClusterSpec() (*ast.ClusterSpec, error) {
	cluTok, _ := p.expect(lexer.KwCluster)
	spec := &ast.ClusterSpec{Distance: "ed", CluPos: cluTok.Pos}
	if _, err := p.expect(lexer.LPAREN); err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for !p.at(lexer.RPAREN) {
		key, err := p.expect(lexer.IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.EQ); err != nil {
			return nil, err
		}
		k := strings.ToLower(key.Text)
		if seen[k] {
			return nil, &Error{Pos: key.Pos, Msg: fmt.Sprintf("duplicate cluster parameter %q", k)}
		}
		seen[k] = true
		switch k {
		case "points":
			// points = all(expr)
			fn, err := p.expect(lexer.IDENT)
			if err != nil {
				return nil, err
			}
			if strings.ToLower(fn.Text) != "all" {
				return nil, &Error{Pos: fn.Pos, Msg: "cluster points must use all(...)"}
			}
			if _, err := p.expect(lexer.LPAREN); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(lexer.RPAREN); err != nil {
				return nil, err
			}
			spec.Points = e
		case "distance":
			t, err := p.expect(lexer.STRING)
			if err != nil {
				return nil, err
			}
			spec.Distance = strings.ToLower(t.Text)
		case "method":
			t, err := p.expect(lexer.STRING)
			if err != nil {
				return nil, err
			}
			spec.Method = t.Text
		default:
			return nil, &Error{Pos: key.Pos, Msg: fmt.Sprintf("unknown cluster parameter %q", k)}
		}
		if !p.accept(lexer.COMMA) {
			break
		}
	}
	if _, err := p.expect(lexer.RPAREN); err != nil {
		return nil, err
	}
	if spec.Points == nil {
		return nil, &Error{Pos: cluTok.Pos, Msg: "cluster specification requires points=all(...)"}
	}
	if spec.Method == "" {
		return nil, &Error{Pos: cluTok.Pos, Msg: "cluster specification requires method=..."}
	}
	return spec, nil
}

func (p *Parser) parseReturn() (*ast.ReturnClause, error) {
	retTok, _ := p.expect(lexer.KwReturn)
	r := &ast.ReturnClause{RetPos: retTok.Pos}
	if p.accept(lexer.KwDistinct) {
		r.Distinct = true
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item := &ast.ReturnItem{Expr: e}
		if p.accept(lexer.KwAs) {
			alias, err := p.expect(lexer.IDENT)
			if err != nil {
				return nil, err
			}
			item.Alias = alias.Text
		}
		r.Items = append(r.Items, item)
		if !p.accept(lexer.COMMA) {
			break
		}
	}
	return r, nil
}
