package parser

import (
	"strings"
	"testing"
)

// FuzzParseQuerySet asserts the queryset parser contract under arbitrary
// input: no panics, no hangs, and a successful parse yields well-formed
// queries (non-empty names, parseable substituted sources — the property
// Engine.Apply and snapshot restore both rely on). `go test` runs the seed
// corpus on every CI run; `go test -fuzz=FuzzParseQuerySet` explores
// further.
func FuzzParseQuerySet(f *testing.F) {
	seeds := []string{
		"",
		"param threshold = 1000000\n\nquery exfil {\n  proc p write ip i as e #time(10 min)\n  state ss { amt := sum(e.amount) } group by p\n  alert ss.amt > $threshold\n  return p, ss.amt\n}",
		"query a { proc p read file f return p }\nquery b { proc p write file f return f }",
		"param x = \"db-1\"\nquery g { agentid = $x\nproc p read file f return p }",
		"query dup { proc p read file f return p }\nquery dup { proc p read file f return p }",
		"param p = ",
		"query {",
		"query name { proc p read file f return p",
		"// comment only",
		"param a = 1\nparam a = 2",
		"query q { $missing }",
		"proc p read file f return p", // bare query, not a set
		strings.Repeat("query q { proc p read file f return p }\n", 3),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := ParseQuerySetDoc(src)
		if err != nil {
			return
		}
		seen := map[string]bool{}
		for _, q := range doc.Queries {
			if q.Name == "" {
				t.Fatal("parsed query with empty name")
			}
			if seen[q.Name] {
				t.Fatalf("duplicate query name %q survived parsing", q.Name)
			}
			seen[q.Name] = true
			if q.AST == nil {
				t.Fatalf("query %q has nil AST", q.Name)
			}
			// The substituted source must itself re-parse: restore and
			// SIGHUP reload both re-feed it through Parse.
			if _, err := Parse(q.Src); err != nil {
				t.Fatalf("substituted source of %q does not re-parse: %v\n%s", q.Name, err, q.Src)
			}
		}
	})
}
