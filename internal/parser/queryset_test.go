package parser

import (
	"strings"
	"testing"
	"time"
)

const sampleSet = `
// shared tuning knobs
param threshold = 1000000
param db = "db-1"

query exfil-volume {
  agentid = $db
  proc p write ip i as e #time(10 min)
  state ss { amt := sum(e.amount) } group by p
  alert ss.amt > $threshold
  return p, ss.amt
}

query big-write {
  proc p write ip i as e
  alert e.amount > $threshold
  return p, e.amount
}

// params may be declared after their uses
param late = 5
query uses-late {
  proc p read file f as e #time(1 min)
  state ss { n := count(e) } group by p
  alert ss.n > $late
  return p, ss.n
}
`

func TestParseQuerySetDoc(t *testing.T) {
	doc, err := ParseQuerySetDoc(sampleSet)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Params) != 3 {
		t.Errorf("params = %d, want 3", len(doc.Params))
	}
	if len(doc.Queries) != 3 {
		t.Fatalf("queries = %d, want 3", len(doc.Queries))
	}
	if doc.Queries[0].Name != "exfil-volume" || doc.Queries[1].Name != "big-write" {
		t.Errorf("query names = %q, %q", doc.Queries[0].Name, doc.Queries[1].Name)
	}
	// Substitution splices the literal source forms.
	if !strings.Contains(doc.Queries[0].Src, `agentid = "db-1"`) {
		t.Errorf("string param not substituted:\n%s", doc.Queries[0].Src)
	}
	if !strings.Contains(doc.Queries[0].Src, "ss.amt > 1000000") {
		t.Errorf("numeric param not substituted:\n%s", doc.Queries[0].Src)
	}
	if !strings.Contains(doc.Queries[2].Src, "ss.n > 5") {
		t.Errorf("late-declared param not substituted:\n%s", doc.Queries[2].Src)
	}
	for _, q := range doc.Queries {
		if q.AST == nil {
			t.Errorf("query %s: nil AST", q.Name)
		}
		if strings.Contains(q.Src, "$") {
			t.Errorf("query %s: unsubstituted reference remains:\n%s", q.Name, q.Src)
		}
	}
}

func TestParseQuerySetDocTenants(t *testing.T) {
	doc, err := ParseQuerySetDoc(`
param threshold = 10

tenant acme {
  quota max_queries  = 10
  quota alert_budget = 100 / 30 min
  quota ingest_rate  = 5000
  quota max_state_kb = 64

  query exfil-volume {
    proc p write ip i as e #time(10 min)
    state ss { amt := sum(e.amount) } group by p
    alert ss.amt > $threshold
    return p, ss.amt
  }
}

tenant globex {
  quota alert_budget = 7
  query watch { proc p read file f return p }
}

query unscoped { proc p read file f return p }
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Tenants) != 2 {
		t.Fatalf("tenants = %d, want 2", len(doc.Tenants))
	}
	acme := doc.Tenants[0]
	if acme.Name != "acme" {
		t.Errorf("tenant name = %q, want acme", acme.Name)
	}
	if acme.Quotas.MaxQueries != 10 || acme.Quotas.AlertBudget != 100 ||
		acme.Quotas.IngestRate != 5000 || acme.Quotas.MaxStateKB != 64 {
		t.Errorf("acme quotas = %+v", acme.Quotas)
	}
	if acme.Quotas.AlertWindow != 30*time.Minute {
		t.Errorf("acme alert window = %v, want 30m", acme.Quotas.AlertWindow)
	}
	if w := doc.Tenants[1].Quotas.AlertWindow; w != 0 {
		t.Errorf("globex alert window = %v, want 0 (engine default)", w)
	}
	names := make([]string, len(doc.Queries))
	for i, q := range doc.Queries {
		names[i] = q.Name
	}
	want := []string{"acme/exfil-volume", "globex/watch", "unscoped"}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Errorf("query %q missing from %v", w, names)
		}
	}
	// Params declared at top level substitute into tenant-scoped bodies.
	for _, q := range doc.Queries {
		if q.Name == "acme/exfil-volume" && !strings.Contains(q.Src, "ss.amt > 10") {
			t.Errorf("param not substituted into tenant query:\n%s", q.Src)
		}
	}
	if !LooksLikeQuerySet(`tenant acme { query q { proc p read file f return p } }`) {
		t.Error("tenant-first document not recognised as queryset")
	}
}

func TestParseQuerySetDocTenantErrors(t *testing.T) {
	cases := []struct{ name, src, wantErr string }{
		{"dup-tenant", `tenant a { } tenant a { }`, "duplicate tenant"},
		{"dup-quota", `tenant a { quota max_queries = 1 quota max_queries = 2 }`, "duplicate quota"},
		{"bad-key", `tenant a { quota max_elephants = 1 }`, "unknown quota key"},
		{"zero-value", `tenant a { quota max_queries = 0 }`, "positive integer"},
		{"window-on-wrong-key", `tenant a { quota ingest_rate = 5 / 1 h }`, "does not take a window"},
		{"bad-unit", `tenant a { quota alert_budget = 5 / 1 fortnight }`, "unknown time unit"},
		{"unterminated", `tenant a { quota max_queries = 1`, "expected 'quota', 'param', or 'query'"},
		{"dup-in-tenant", `tenant a {
  query q { proc p read file f return p }
  query q { proc p read file f return p }
}`, "duplicate query name"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseQuerySetDoc(c.src)
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error = %v, want containing %q", err, c.wantErr)
			}
		})
	}
}

func TestParseQuerySetDocErrors(t *testing.T) {
	cases := []struct{ name, src, wantErr string }{
		{"undeclared-param", `query q { proc p read file f return $oops }`, "undeclared parameter $oops"},
		{"dup-param", "param a = 1\nparam a = 2\nquery q { proc p read file f return p }", "duplicate parameter"},
		{"dup-query", `query q { proc p read file f return p } query q { proc p read file f return p }`, "duplicate query name"},
		{"unterminated", `query q { proc p read file f return p`, "unterminated body"},
		{"bad-body", `query q { this is not saql }`, `query "q"`},
		{"bare-query-mixed", "param a = 1\nproc p read file f return p", "expected 'param', 'query', or 'tenant'"},
		{"non-literal-param", `param a = (1 + 2)
query q { proc p read file f return p }`, "must be a literal"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseQuerySetDoc(c.src)
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error = %v, want containing %q", err, c.wantErr)
			}
		})
	}
}

// Query names may contain SAQL keywords as '-'/'.'-joined segments (rule
// names like exfil-state or detect-in mirror file names).
func TestQuerySetKeywordNames(t *testing.T) {
	doc, err := ParseQuerySetDoc(`query exfil-state { proc p read file f return p }
query detect-in.v2 { proc p write file f return p }
query state { proc p read file f return f }`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"exfil-state", "detect-in.v2", "state"}
	for i, q := range doc.Queries {
		if q.Name != want[i] {
			t.Errorf("query %d name = %q, want %q", i, q.Name, want[i])
		}
	}
	if !LooksLikeQuerySet(`query state-x { proc p read file f return p }`) {
		t.Error("keyword-leading name not recognised as queryset")
	}
}

func TestLooksLikeQuerySet(t *testing.T) {
	if !LooksLikeQuerySet(sampleSet) {
		t.Error("queryset document not recognised")
	}
	if !LooksLikeQuerySet(`query q { proc p read file f return p }`) {
		t.Error("query-first document not recognised")
	}
	if LooksLikeQuerySet(`proc p read file f return p`) {
		t.Error("bare query misclassified as queryset")
	}
	if LooksLikeQuerySet(`agentid = "db-1"
proc p read file f return p`) {
		t.Error("global-constraint query misclassified as queryset")
	}
}

// Dollar signs inside string literals and comments must survive
// substitution untouched.
func TestQuerySetDollarInString(t *testing.T) {
	doc, err := ParseQuerySetDoc(`param x = 7
query q {
  // $x in a comment stays
  proc p read file f["%$x%"] as e #time(1 min)
  state ss { n := count(e) } group by p
  alert ss.n > $x
  return p
}`)
	if err != nil {
		t.Fatal(err)
	}
	src := doc.Queries[0].Src
	if !strings.Contains(src, `"%$x%"`) {
		t.Errorf("string literal rewritten:\n%s", src)
	}
	if !strings.Contains(src, "ss.n > 7") {
		t.Errorf("reference outside string not substituted:\n%s", src)
	}
}

// A stray $ref in a plain query gets the friendly redirect error.
func TestPlainQueryParamError(t *testing.T) {
	_, err := Parse(`proc p read file f
alert $threshold > 1
return p`)
	if err == nil || !strings.Contains(err.Error(), "queryset") {
		t.Errorf("error = %v, want queryset hint", err)
	}
}
