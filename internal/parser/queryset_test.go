package parser

import (
	"strings"
	"testing"
)

const sampleSet = `
// shared tuning knobs
param threshold = 1000000
param db = "db-1"

query exfil-volume {
  agentid = $db
  proc p write ip i as e #time(10 min)
  state ss { amt := sum(e.amount) } group by p
  alert ss.amt > $threshold
  return p, ss.amt
}

query big-write {
  proc p write ip i as e
  alert e.amount > $threshold
  return p, e.amount
}

// params may be declared after their uses
param late = 5
query uses-late {
  proc p read file f as e #time(1 min)
  state ss { n := count(e) } group by p
  alert ss.n > $late
  return p, ss.n
}
`

func TestParseQuerySetDoc(t *testing.T) {
	doc, err := ParseQuerySetDoc(sampleSet)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Params) != 3 {
		t.Errorf("params = %d, want 3", len(doc.Params))
	}
	if len(doc.Queries) != 3 {
		t.Fatalf("queries = %d, want 3", len(doc.Queries))
	}
	if doc.Queries[0].Name != "exfil-volume" || doc.Queries[1].Name != "big-write" {
		t.Errorf("query names = %q, %q", doc.Queries[0].Name, doc.Queries[1].Name)
	}
	// Substitution splices the literal source forms.
	if !strings.Contains(doc.Queries[0].Src, `agentid = "db-1"`) {
		t.Errorf("string param not substituted:\n%s", doc.Queries[0].Src)
	}
	if !strings.Contains(doc.Queries[0].Src, "ss.amt > 1000000") {
		t.Errorf("numeric param not substituted:\n%s", doc.Queries[0].Src)
	}
	if !strings.Contains(doc.Queries[2].Src, "ss.n > 5") {
		t.Errorf("late-declared param not substituted:\n%s", doc.Queries[2].Src)
	}
	for _, q := range doc.Queries {
		if q.AST == nil {
			t.Errorf("query %s: nil AST", q.Name)
		}
		if strings.Contains(q.Src, "$") {
			t.Errorf("query %s: unsubstituted reference remains:\n%s", q.Name, q.Src)
		}
	}
}

func TestParseQuerySetDocErrors(t *testing.T) {
	cases := []struct{ name, src, wantErr string }{
		{"undeclared-param", `query q { proc p read file f return $oops }`, "undeclared parameter $oops"},
		{"dup-param", "param a = 1\nparam a = 2\nquery q { proc p read file f return p }", "duplicate parameter"},
		{"dup-query", `query q { proc p read file f return p } query q { proc p read file f return p }`, "duplicate query name"},
		{"unterminated", `query q { proc p read file f return p`, "unterminated body"},
		{"bad-body", `query q { this is not saql }`, `query "q"`},
		{"bare-query-mixed", "param a = 1\nproc p read file f return p", "expected 'param' or 'query'"},
		{"non-literal-param", `param a = (1 + 2)
query q { proc p read file f return p }`, "must be a literal"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseQuerySetDoc(c.src)
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error = %v, want containing %q", err, c.wantErr)
			}
		})
	}
}

// Query names may contain SAQL keywords as '-'/'.'-joined segments (rule
// names like exfil-state or detect-in mirror file names).
func TestQuerySetKeywordNames(t *testing.T) {
	doc, err := ParseQuerySetDoc(`query exfil-state { proc p read file f return p }
query detect-in.v2 { proc p write file f return p }
query state { proc p read file f return f }`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"exfil-state", "detect-in.v2", "state"}
	for i, q := range doc.Queries {
		if q.Name != want[i] {
			t.Errorf("query %d name = %q, want %q", i, q.Name, want[i])
		}
	}
	if !LooksLikeQuerySet(`query state-x { proc p read file f return p }`) {
		t.Error("keyword-leading name not recognised as queryset")
	}
}

func TestLooksLikeQuerySet(t *testing.T) {
	if !LooksLikeQuerySet(sampleSet) {
		t.Error("queryset document not recognised")
	}
	if !LooksLikeQuerySet(`query q { proc p read file f return p }`) {
		t.Error("query-first document not recognised")
	}
	if LooksLikeQuerySet(`proc p read file f return p`) {
		t.Error("bare query misclassified as queryset")
	}
	if LooksLikeQuerySet(`agentid = "db-1"
proc p read file f return p`) {
		t.Error("global-constraint query misclassified as queryset")
	}
}

// Dollar signs inside string literals and comments must survive
// substitution untouched.
func TestQuerySetDollarInString(t *testing.T) {
	doc, err := ParseQuerySetDoc(`param x = 7
query q {
  // $x in a comment stays
  proc p read file f["%$x%"] as e #time(1 min)
  state ss { n := count(e) } group by p
  alert ss.n > $x
  return p
}`)
	if err != nil {
		t.Fatal(err)
	}
	src := doc.Queries[0].Src
	if !strings.Contains(src, `"%$x%"`) {
		t.Errorf("string literal rewritten:\n%s", src)
	}
	if !strings.Contains(src, "ss.n > 7") {
		t.Errorf("reference outside string not substituted:\n%s", src)
	}
}

// A stray $ref in a plain query gets the friendly redirect error.
func TestPlainQueryParamError(t *testing.T) {
	_, err := Parse(`proc p read file f
alert $threshold > 1
return p`)
	if err == nil || !strings.Contains(err.Error(), "queryset") {
		t.Errorf("error = %v, want queryset hint", err)
	}
}
