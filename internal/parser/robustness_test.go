package parser

import (
	"strings"
	"testing"
	"testing/quick"
)

// The parser must never panic, whatever the input: it either produces a
// query or an error. This guards the interactive CLI against hostile or
// garbled input.
func TestParserNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on input %q: %v", src, r)
				ok = false
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Mutations of a valid query — truncations at every byte offset and token
// deletions — must parse or fail cleanly, never panic or hang.
func TestParserTruncations(t *testing.T) {
	const src = `agentid = "db-1"
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
with evt1 -> evt2
state[3] ss { amt := sum(evt1.amount) } group by p1
invariant[10][offline] { a := empty_set a = a union ss.amt }
cluster(points=all(ss.amt), distance="ed", method="DBSCAN(1, 2)")
alert |ss.amt| > 0 && cluster.outlier
return distinct p1, ss[0].amt`
	for i := 0; i <= len(src); i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at truncation %d: %v", i, r)
				}
			}()
			_, _ = Parse(src[:i])
		}()
	}
	// Word deletions.
	words := strings.Fields(src)
	for i := range words {
		mutated := strings.Join(append(append([]string{}, words[:i]...), words[i+1:]...), " ")
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic deleting word %d (%q): %v", i, words[i], r)
				}
			}()
			_, _ = Parse(mutated)
		}()
	}
}

// Repeated operators, unbalanced delimiters, and deep nesting must error
// out cleanly.
func TestParserPathologicalInputs(t *testing.T) {
	inputs := []string{
		strings.Repeat("(", 5000),
		strings.Repeat("proc p start proc q as e\n", 200),
		"proc p start proc q as e alert " + strings.Repeat("1+", 2000) + "1 > 0",
		"proc p[" + strings.Repeat(`"x",`, 500) + `"x"] start proc q`,
		"alert " + strings.Repeat("|", 99),
		"proc p start proc q as e with " + strings.Repeat("e ->", 50) + " e",
		"#time(1 s) #time(2 s)",
		"state state state",
		"proc proc proc",
		"\x00\x01\x02",
	}
	for _, src := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("panic on pathological input %.40q...: %v", src, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}

// Deep expression nesting parses correctly and round-trips.
func TestDeepNesting(t *testing.T) {
	depth := 100
	expr := strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth)
	q, err := Parse("proc p start proc q as e alert " + expr + " > 0")
	if err != nil {
		t.Fatalf("deep nesting rejected: %v", err)
	}
	if len(q.Alerts) != 1 {
		t.Fatal("alert missing")
	}
}
