package parser

import (
	"strings"

	"saql/internal/ast"
	"saql/internal/lexer"
	"saql/internal/value"
)

// Expression parsing with precedence climbing.
//
// Precedence (low to high):
//
//	1  ||
//	2  &&
//	3  == != < <= > >= in  (also '=' in expression position, treated as ==)
//	4  union diff intersect
//	5  + -
//	6  * / %
//	7  unary ! -
//	8  postfix .field [index]
//	9  primary: literal, ident, call, (expr), |expr|
func (p *Parser) parseExpr() (ast.Expr, error) { return p.parseBinary(1) }

func binPrec(t lexer.TokenType) (ast.BinOp, int) {
	switch t {
	case lexer.OROR:
		return ast.OpOr, 1
	case lexer.ANDAND:
		return ast.OpAnd, 2
	case lexer.EQEQ, lexer.EQ:
		return ast.OpEq, 3
	case lexer.NEQ:
		return ast.OpNe, 3
	case lexer.LT:
		return ast.OpLt, 3
	case lexer.LE:
		return ast.OpLe, 3
	case lexer.GT:
		return ast.OpGt, 3
	case lexer.GE:
		return ast.OpGe, 3
	case lexer.KwIn:
		return ast.OpIn, 3
	case lexer.KwUnion:
		return ast.OpUnion, 4
	case lexer.KwDiff:
		return ast.OpDiff, 4
	case lexer.KwIntersect:
		return ast.OpIntersect, 4
	case lexer.PLUS:
		return ast.OpAdd, 5
	case lexer.MINUS:
		return ast.OpSub, 5
	case lexer.STAR:
		return ast.OpMul, 6
	case lexer.SLASH:
		return ast.OpDiv, 6
	case lexer.PERCENT:
		return ast.OpMod, 6
	default:
		return ast.OpInvalid, 0
	}
}

func (p *Parser) parseBinary(minPrec int) (ast.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op, prec := binPrec(p.cur().Type)
		if op == ast.OpInvalid || prec < minPrec {
			return left, nil
		}
		p.next()
		right, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &ast.BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseUnary() (ast.Expr, error) {
	switch p.cur().Type {
	case lexer.NOT:
		t := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Op: '!', X: x, UPos: t.Pos}, nil
	case lexer.MINUS:
		t := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Op: '-', X: x, UPos: t.Pos}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (ast.Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Type {
		case lexer.DOT:
			p.next()
			f, err := p.expect(lexer.IDENT)
			if err != nil {
				return nil, err
			}
			x = &ast.FieldExpr{Base: x, Field: strings.ToLower(f.Text)}
		case lexer.LBRACKET:
			p.next()
			n, err := p.expect(lexer.NUMBER)
			if err != nil {
				return nil, err
			}
			if !n.IsInt || n.Num < 0 {
				return nil, &Error{Pos: n.Pos, Msg: "state index must be a non-negative integer"}
			}
			if _, err := p.expect(lexer.RBRACKET); err != nil {
				return nil, err
			}
			x = &ast.IndexExpr{Base: x, Index: int(n.Num)}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (ast.Expr, error) {
	t := p.cur()
	switch t.Type {
	case lexer.NUMBER:
		p.next()
		if t.IsInt {
			return &ast.Literal{Val: value.Int(int64(t.Num)), LitPos: t.Pos}, nil
		}
		return &ast.Literal{Val: value.Float(t.Num), LitPos: t.Pos}, nil

	case lexer.STRING:
		p.next()
		return &ast.Literal{Val: value.String(t.Text), LitPos: t.Pos}, nil

	case lexer.KwEmptySet:
		p.next()
		return &ast.Literal{Val: value.EmptySet(), LitPos: t.Pos}, nil

	case lexer.KwCluster:
		// `cluster` appears in expressions as a namespace: cluster.outlier.
		p.next()
		return &ast.Ident{Name: "cluster", IdPos: t.Pos}, nil

	case lexer.KwDistinct:
		// `distinct` is a keyword for `return distinct`, but also the name
		// of the distinct-count aggregation: distinct(i.dstip).
		p.next()
		if !p.at(lexer.LPAREN) {
			return nil, p.errorf("'distinct' in expression position must be a call: distinct(expr)")
		}
		p.next()
		call := &ast.CallExpr{Func: "distinct", CallPos: t.Pos}
		for !p.at(lexer.RPAREN) {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
			if !p.accept(lexer.COMMA) {
				break
			}
		}
		if _, err := p.expect(lexer.RPAREN); err != nil {
			return nil, err
		}
		return call, nil

	case lexer.IDENT:
		p.next()
		name := t.Text
		switch strings.ToLower(name) {
		case "true":
			return &ast.Literal{Val: value.Bool(true), LitPos: t.Pos}, nil
		case "false":
			return &ast.Literal{Val: value.Bool(false), LitPos: t.Pos}, nil
		case "null":
			return &ast.Literal{Val: value.Null, LitPos: t.Pos}, nil
		}
		if p.at(lexer.LPAREN) {
			p.next()
			call := &ast.CallExpr{Func: strings.ToLower(name), CallPos: t.Pos}
			if !p.at(lexer.RPAREN) {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(lexer.COMMA) {
						break
					}
				}
			}
			if _, err := p.expect(lexer.RPAREN); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &ast.Ident{Name: name, IdPos: t.Pos}, nil

	case lexer.LPAREN:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RPAREN); err != nil {
			return nil, err
		}
		return x, nil

	case lexer.PIPE:
		// |expr| — set cardinality / absolute value.
		p.next()
		x, err := p.parseCardInner()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.PIPE); err != nil {
			return nil, err
		}
		return &ast.CardExpr{X: x, CPos: t.Pos}, nil
	}
	if t.Type == lexer.PARAM {
		return nil, p.errorf("parameter reference $%s is only valid inside a queryset document, where 'param' declarations define its value (see ParseQuerySet / Engine.Apply)", t.Text)
	}
	return nil, p.errorf("expected expression, found %s", t)
}

// parseCardInner parses the expression between | ... |. Logical || cannot
// appear inside a cardinality form (it would be ambiguous with the closing
// delimiter), so parsing starts above the OR level.
func (p *Parser) parseCardInner() (ast.Expr, error) { return p.parseBinary(2) }
