package parser

// Queryset documents: the declarative multi-query grammar behind
// Engine.Apply. A queryset declares named queries plus shared parameters
// that are substituted into the query bodies at compile time:
//
//	param threshold = 1000000
//	param db        = "db-1"
//
//	query exfil-volume {
//	  agentid = $db
//	  proc p write ip i as e #time(10 min)
//	  state ss { amt := sum(e.amount) } group by p
//	  alert ss.amt > $threshold
//	  return p, ss.amt
//	}
//
// Parameter references ($name) are resolved token-wise — a '$' inside a
// string literal or a comment is left alone — and the substituted text is
// the parameter's literal exactly as it would be written in SAQL source, so
// the result of substitution is ordinary SAQL that the normal parser
// compiles. Parameters may be declared anywhere at top level (before or
// after their uses); duplicate parameters, duplicate query names, and
// references to undeclared parameters are document errors.
//
// Tenant blocks group queries into a namespace and declare its quotas:
//
//	tenant acme {
//	  quota max_queries  = 10
//	  quota alert_budget = 100 / 1 h
//	  quota ingest_rate  = 5000
//
//	  query exfil-volume { ... }
//	}
//
// A query declared inside `tenant acme` is named "acme/exfil-volume";
// params declared inside a tenant block are document-global like top-level
// ones. Quota keys are max_queries, max_state_kb, alert_budget (optionally
// windowed with `/ N unit`, default one hour), and ingest_rate (events per
// second of stream time).

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"saql/internal/ast"
	"saql/internal/lexer"
)

// SetParam is one shared `param name = literal` declaration.
type SetParam struct {
	Name string
	// Raw is the literal in SAQL source form (strings re-quoted), exactly
	// the text spliced in place of each $Name reference.
	Raw string
	Pos lexer.Pos
}

// SetQuery is one named query of a queryset document.
type SetQuery struct {
	Name string
	// Src is the query body after parameter substitution: standalone SAQL
	// source accepted by Parse.
	Src string
	// AST is the parsed body (substituted). Semantic checking is left to
	// the caller so the parser package stays independent of sema.
	AST *ast.Query
	Pos lexer.Pos
}

// SetQuotas are one tenant block's quota declarations. Zero values mean the
// quota was not declared (unlimited).
type SetQuotas struct {
	MaxQueries  int64
	MaxStateKB  int64
	AlertBudget int64
	// AlertWindow is the alert-budget window (0: the engine default, one
	// hour). Only meaningful alongside AlertBudget.
	AlertWindow time.Duration
	IngestRate  int64
}

// SetTenant is one `tenant name { ... }` block: the namespace's quotas. The
// block's queries land in QuerySetDoc.Queries under their qualified
// "tenant/query" names.
type SetTenant struct {
	Name   string
	Quotas SetQuotas
	Pos    lexer.Pos
}

// QuerySetDoc is a parsed queryset document.
type QuerySetDoc struct {
	Params  []*SetParam
	Queries []*SetQuery
	Tenants []*SetTenant
}

// LooksLikeQuerySet reports whether src begins with a queryset declaration
// (`query name {` or `param name =`) rather than a bare SAQL query. It is a
// cheap sniff used to route mixed inputs (files that hold either one query
// or a whole set) to the right parser.
func LooksLikeQuerySet(src string) bool {
	toks, err := lexer.Tokenize(src)
	if err != nil || len(toks) < 3 {
		return false
	}
	if toks[0].Type != lexer.IDENT {
		return false
	}
	switch strings.ToLower(toks[0].Text) {
	case "query":
		// `query name` never begins a bare SAQL query (a leading identifier
		// there must be a global constraint, i.e. followed by a comparator).
		return wordTok(toks[1])
	case "param":
		return toks[1].Type == lexer.IDENT && toks[2].Type == lexer.EQ
	case "tenant":
		return wordTok(toks[1])
	}
	return false
}

// ParseQuerySetDoc parses a queryset document: any interleaving of `param`
// and `query` declarations. Every query body is substituted and parsed; the
// first error is returned with the query's name attached.
func ParseQuerySetDoc(src string) (*QuerySetDoc, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	doc := &QuerySetDoc{}
	params := map[string]*SetParam{}

	// First pass: declarations. Query bodies are delimited as token spans
	// so params declared after a query still substitute into it.
	type bodySpan struct {
		name     string
		pos      lexer.Pos
		from, to int // token indices: body tokens are toks[from:to]
		lbrace   lexer.Token
		rbrace   lexer.Token
	}
	var spans []bodySpan
	i := 0
	expectTok := func(t lexer.TokenType, what string) (lexer.Token, error) {
		if toks[i].Type != t {
			return lexer.Token{}, &Error{Pos: toks[i].Pos, Msg: fmt.Sprintf("expected %s, found %s", what, toks[i])}
		}
		tok := toks[i]
		i++
		return tok, nil
	}
	parseParam := func() error {
		name, err := expectTok(lexer.IDENT, "parameter name")
		if err != nil {
			return err
		}
		if _, err := expectTok(lexer.EQ, "'='"); err != nil {
			return err
		}
		raw, err := paramLiteral(toks, &i)
		if err != nil {
			return err
		}
		if _, dup := params[name.Text]; dup {
			return &Error{Pos: name.Pos, Msg: fmt.Sprintf("duplicate parameter %q", name.Text)}
		}
		p := &SetParam{Name: name.Text, Raw: raw, Pos: name.Pos}
		params[name.Text] = p
		doc.Params = append(doc.Params, p)
		return nil
	}
	parseQuery := func(prefix string) error {
		name, err := parseSetName(toks, &i)
		if err != nil {
			return err
		}
		lb, err := expectTok(lexer.LBRACE, "'{' to open the query body")
		if err != nil {
			return err
		}
		from := i
		depth := 1
		for depth > 0 {
			switch toks[i].Type {
			case lexer.LBRACE:
				depth++
			case lexer.RBRACE:
				depth--
			case lexer.EOF:
				return &Error{Pos: lb.Pos, Msg: fmt.Sprintf("query %q: unterminated body (missing '}')", name.Text)}
			}
			if depth > 0 {
				i++
			}
		}
		rb := toks[i]
		i++
		spans = append(spans, bodySpan{name: prefix + name.Text, pos: name.Pos, from: from, to: i - 1, lbrace: lb, rbrace: rb})
		return nil
	}
	parseTenant := func() error {
		nameTok, err := parseSetName(toks, &i)
		if err != nil {
			return &Error{Pos: toks[i].Pos, Msg: fmt.Sprintf("expected tenant name, found %s", toks[i])}
		}
		for _, t := range doc.Tenants {
			if t.Name == nameTok.Text {
				return &Error{Pos: nameTok.Pos, Msg: fmt.Sprintf("duplicate tenant %q", nameTok.Text)}
			}
		}
		ten := &SetTenant{Name: nameTok.Text, Pos: nameTok.Pos}
		if _, err := expectTok(lexer.LBRACE, "'{' to open the tenant block"); err != nil {
			return err
		}
		for toks[i].Type != lexer.RBRACE {
			if toks[i].Type == lexer.SEMI {
				i++
				continue
			}
			kw := toks[i]
			if kw.Type == lexer.EOF || kw.Type != lexer.IDENT {
				return &Error{Pos: kw.Pos, Msg: fmt.Sprintf("tenant %q: expected 'quota', 'param', or 'query' declaration, found %s", ten.Name, kw)}
			}
			switch strings.ToLower(kw.Text) {
			case "quota":
				i++
				if err := parseQuota(toks, &i, ten); err != nil {
					return err
				}
			case "param":
				i++
				if err := parseParam(); err != nil {
					return err
				}
			case "query":
				i++
				if err := parseQuery(ten.Name + "/"); err != nil {
					return err
				}
			default:
				return &Error{Pos: kw.Pos, Msg: fmt.Sprintf("tenant %q: expected 'quota', 'param', or 'query' declaration, found %s", ten.Name, kw)}
			}
		}
		i++ // consume '}'
		doc.Tenants = append(doc.Tenants, ten)
		return nil
	}
	for toks[i].Type != lexer.EOF {
		if toks[i].Type == lexer.SEMI {
			i++
			continue
		}
		kw := toks[i]
		if kw.Type != lexer.IDENT {
			return nil, &Error{Pos: kw.Pos, Msg: fmt.Sprintf("expected 'param', 'query', or 'tenant' declaration, found %s", kw)}
		}
		switch strings.ToLower(kw.Text) {
		case "param":
			i++
			if err := parseParam(); err != nil {
				return nil, err
			}
		case "query":
			i++
			if err := parseQuery(""); err != nil {
				return nil, err
			}
		case "tenant":
			i++
			if err := parseTenant(); err != nil {
				return nil, err
			}
		default:
			return nil, &Error{Pos: kw.Pos, Msg: fmt.Sprintf("expected 'param', 'query', or 'tenant' declaration, found %s (a bare query cannot be mixed into a queryset document)", kw)}
		}
	}

	// Second pass: substitute and parse each body.
	seen := map[string]bool{}
	for _, sp := range spans {
		if seen[sp.name] {
			return nil, &Error{Pos: sp.pos, Msg: fmt.Sprintf("duplicate query name %q", sp.name)}
		}
		seen[sp.name] = true
		bodyStart := sp.lbrace.Pos.Off + 1
		bodyEnd := sp.rbrace.Pos.Off
		var sb strings.Builder
		last := bodyStart
		for _, tok := range toks[sp.from:sp.to] {
			if tok.Type != lexer.PARAM {
				continue
			}
			p, ok := params[tok.Text]
			if !ok {
				return nil, &Error{Pos: tok.Pos, Msg: fmt.Sprintf("query %q references undeclared parameter $%s (declared: %s)", sp.name, tok.Text, paramNames(params))}
			}
			sb.WriteString(src[last:tok.Pos.Off])
			sb.WriteString(p.Raw)
			last = tok.Pos.Off + 1 + len(tok.Text) // "$" + name
		}
		sb.WriteString(src[last:bodyEnd])
		q := &SetQuery{Name: sp.name, Src: strings.TrimSpace(sb.String()), Pos: sp.pos}
		parsed, err := Parse(q.Src)
		if err != nil {
			return nil, fmt.Errorf("query %q: %w", sp.name, err)
		}
		q.AST = parsed
		doc.Queries = append(doc.Queries, q)
	}
	return doc, nil
}

// parseQuota parses one `quota key = N` declaration (the keyword itself is
// already consumed). alert_budget optionally takes a window: `= N / M unit`
// with the same unit vocabulary as SAQL durations. Quota values must be
// positive — zero would be indistinguishable from "not declared" (unlimited).
func parseQuota(toks []lexer.Token, i *int, ten *SetTenant) error {
	keyTok := toks[*i]
	if keyTok.Type != lexer.IDENT {
		return &Error{Pos: keyTok.Pos, Msg: fmt.Sprintf("expected quota key, found %s", keyTok)}
	}
	*i++
	if toks[*i].Type != lexer.EQ {
		return &Error{Pos: toks[*i].Pos, Msg: fmt.Sprintf("expected '=', found %s", toks[*i])}
	}
	*i++
	numTok := toks[*i]
	if numTok.Type != lexer.NUMBER {
		return &Error{Pos: numTok.Pos, Msg: fmt.Sprintf("quota %s: expected a number, found %s", keyTok.Text, numTok)}
	}
	*i++
	n := int64(numTok.Num)
	if n < 1 || float64(n) != numTok.Num {
		return &Error{Pos: numTok.Pos, Msg: fmt.Sprintf("quota %s: value must be a positive integer", keyTok.Text)}
	}
	key := strings.ToLower(keyTok.Text)
	dst := map[string]*int64{
		"max_queries":  &ten.Quotas.MaxQueries,
		"max_state_kb": &ten.Quotas.MaxStateKB,
		"alert_budget": &ten.Quotas.AlertBudget,
		"ingest_rate":  &ten.Quotas.IngestRate,
	}[key]
	if dst == nil {
		return &Error{Pos: keyTok.Pos, Msg: fmt.Sprintf("unknown quota key %q (want max_queries, max_state_kb, alert_budget, or ingest_rate)", keyTok.Text)}
	}
	if *dst != 0 {
		return &Error{Pos: keyTok.Pos, Msg: fmt.Sprintf("tenant %q: duplicate quota %s", ten.Name, key)}
	}
	*dst = n
	if toks[*i].Type == lexer.SLASH {
		if key != "alert_budget" {
			return &Error{Pos: toks[*i].Pos, Msg: fmt.Sprintf("quota %s does not take a window (only alert_budget does)", key)}
		}
		*i++
		winNum := toks[*i]
		if winNum.Type != lexer.NUMBER {
			return &Error{Pos: winNum.Pos, Msg: fmt.Sprintf("alert_budget window: expected a number, found %s", winNum)}
		}
		*i++
		unitTok := toks[*i]
		if unitTok.Type != lexer.IDENT {
			return &Error{Pos: unitTok.Pos, Msg: fmt.Sprintf("alert_budget window: expected a time unit, found %s", unitTok)}
		}
		*i++
		var unit time.Duration
		switch strings.ToLower(unitTok.Text) {
		case "ms", "msec", "millisecond", "milliseconds":
			unit = time.Millisecond
		case "s", "sec", "secs", "second", "seconds":
			unit = time.Second
		case "min", "mins", "minute", "minutes", "m":
			unit = time.Minute
		case "h", "hr", "hrs", "hour", "hours":
			unit = time.Hour
		case "d", "day", "days":
			unit = 24 * time.Hour
		default:
			return &Error{Pos: unitTok.Pos, Msg: fmt.Sprintf("unknown time unit %q", unitTok.Text)}
		}
		w := time.Duration(winNum.Num * float64(unit))
		if w <= 0 {
			return &Error{Pos: winNum.Pos, Msg: "alert_budget window must be positive"}
		}
		ten.Quotas.AlertWindow = w
	}
	return nil
}

// wordTok reports whether t is usable as a query-name segment: an
// identifier, or a SAQL keyword (rule names like exfil-state or detect-in
// legitimately contain words the lexer reserves).
func wordTok(t lexer.Token) bool {
	return t.Type == lexer.IDENT || t.Type.IsKeyword()
}

// parseSetName parses a query name: a word optionally extended with
// adjacent '-'/'.'-joined word or number segments (query names commonly
// mirror rule file names like exfil-volume or lateral.move). Adjacency is
// byte-exact, so `query a - b` is still a syntax error.
func parseSetName(toks []lexer.Token, i *int) (lexer.Token, error) {
	if !wordTok(toks[*i]) {
		return lexer.Token{}, &Error{Pos: toks[*i].Pos, Msg: fmt.Sprintf("expected query name, found %s", toks[*i])}
	}
	name := toks[*i]
	end := name.Pos.Off + len(name.Text)
	*i++
	for {
		sep := toks[*i]
		if (sep.Type != lexer.MINUS && sep.Type != lexer.DOT) || sep.Pos.Off != end {
			break
		}
		seg := toks[*i+1]
		if (!wordTok(seg) && seg.Type != lexer.NUMBER) || seg.Pos.Off != end+1 {
			break
		}
		name.Text += sep.Text + seg.Text
		end = seg.Pos.Off + len(seg.Text)
		*i += 2
	}
	return name, nil
}

// paramLiteral consumes one literal token sequence at toks[*i] and returns
// its SAQL source form.
func paramLiteral(toks []lexer.Token, i *int) (string, error) {
	t := toks[*i]
	switch t.Type {
	case lexer.STRING:
		*i++
		return strconv.Quote(t.Text), nil
	case lexer.NUMBER, lexer.IDENT:
		*i++
		return t.Text, nil
	case lexer.MINUS:
		if toks[*i+1].Type == lexer.NUMBER {
			*i += 2
			return "-" + toks[*i-1].Text, nil
		}
	}
	return "", &Error{Pos: t.Pos, Msg: fmt.Sprintf("parameter value must be a literal (string, number, or identifier), found %s", t)}
}

func paramNames(params map[string]*SetParam) string {
	if len(params) == 0 {
		return "none"
	}
	names := make([]string, 0, len(params))
	for n := range params {
		names = append(names, "$"+n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
